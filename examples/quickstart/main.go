// Quickstart: two small hand-built ISPs negotiate interconnections for
// the flows they exchange, using the distance metric of paper §5.1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/geo"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// buildISP makes a simple east-west backbone across four US cities.
func buildISP(name string, asn int, cities []string, coords []geo.Point) *topology.ISP {
	isp := &topology.ISP{Name: name, ASN: asn}
	for i, c := range cities {
		isp.PoPs = append(isp.PoPs, topology.PoP{
			ID: i, City: c, Loc: coords[i], Population: 1e6,
		})
	}
	for i := 0; i+1 < len(cities); i++ {
		d := geo.DistanceKm(coords[i], coords[i+1])
		isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: d, LengthKm: d})
	}
	return isp
}

func main() {
	coords := []geo.Point{
		{Lat: 47.61, Lon: -122.33}, // seattle
		{Lat: 39.74, Lon: -104.99}, // denver
		{Lat: 41.88, Lon: -87.63},  // chicago
		{Lat: 40.71, Lon: -74.01},  // new york
	}
	cities := []string{"seattle", "denver", "chicago", "new york"}
	ispA := buildISP("transcontinental-a", 65001, cities, coords)
	// ISP B has no Denver PoP: its backbone hops Seattle-Chicago
	// directly, so the two networks genuinely differ and negotiation has
	// real trades to find.
	ispB := buildISP("transcontinental-b", 65002,
		[]string{"seattle", "chicago", "new york"},
		[]geo.Point{coords[0], coords[2], coords[3]})

	// The ISPs interconnect wherever both have a PoP — three cities.
	pair := topology.NewPair(ispA, ispB)
	sys := pairsim.New(pair, nil)
	rev := sys.Reverse()
	fmt.Printf("%s\n\n", pair)

	// One flow per PoP pair, in both directions.
	wAB := traffic.New(ispA, ispB, traffic.Identical, nil)
	wBA := traffic.New(ispB, ispA, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)

	// Default routing: early exit (hot potato) by the upstream.
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = sys.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}

	// Negotiate with the paper's default configuration: opaque classes
	// in [-10, 10], alternating turns, max-sum proposals, early
	// termination.
	evalA := nexit.NewDistanceEvaluator(sys, nexit.SideA, 10)
	evalB := nexit.NewDistanceEvaluator(sys, nexit.SideB, 10)
	res, err := nexit.Negotiate(nexit.DefaultDistanceConfig(), evalA, evalB, items, defaults, sys.NumAlternatives())
	if err != nil {
		log.Fatal(err)
	}

	dist := func(assign []int) (total float64) {
		for i, it := range items {
			if it.Dir == nexit.AtoB {
				total += sys.TotalDistKm(it.Flow, assign[i])
			} else {
				total += rev.TotalDistKm(it.Flow, assign[i])
			}
		}
		return total
	}

	optimal := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			optimal[i] = sys.BestTotal(it.Flow)
		} else {
			optimal[i] = rev.BestTotal(it.Flow)
		}
	}

	fmt.Printf("total flow distance, default (early-exit): %8.0f km\n", dist(defaults))
	fmt.Printf("total flow distance, negotiated:           %8.0f km\n", dist(res.Assign))
	fmt.Printf("total flow distance, globally optimal:     %8.0f km\n\n", dist(optimal))
	fmt.Printf("negotiation: %d rounds, stop reason %v, preference gains A=%d B=%d\n\n",
		res.Rounds, res.Stopped, res.GainA, res.GainB)

	fmt.Println("flows moved off their default interconnection:")
	for i, it := range items {
		if res.Assign[i] == defaults[i] {
			continue
		}
		from := pair.Interconnections[defaults[i]].City
		to := pair.Interconnections[res.Assign[i]].City
		var src, dst string
		if it.Dir == nexit.AtoB {
			src, dst = ispA.PoPs[it.Flow.Src].City, ispB.PoPs[it.Flow.Dst].City
		} else {
			src, dst = ispB.PoPs[it.Flow.Src].City, ispA.PoPs[it.Flow.Dst].City
		}
		fmt.Printf("  %-6s %-10s -> %-10s: exit %-10s -> %-10s\n", it.Dir, src, dst, from, to)
	}
}

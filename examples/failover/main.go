// Failover reproduces the paper's motivating incident (§2.2, Figures 2
// and 3): after an interconnection failure, two flows (f2, f3) must be
// rerouted over the surviving north/south interconnections.
//
//   - ISP-A can tolerate f3 on the north link but not f2 (f2 would cross
//     A's loaded backbone end to end).
//   - ISP-B is overloaded when both flows enter via the south link, but
//     from its purely local view the two flows are indistinguishable —
//     it has "no basis for preferring" to move one rather than the other.
//
// Reacting unilaterally (MED-style), ISP-B keeps moving f2 — the one
// flow ISP-A must push back — and the two ISPs chase each other in a
// cycle of influence, exactly like the two-day incident the paper
// reports. Nexit finds the mutually acceptable split (f3 north, f2
// south) in two rounds.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

const (
	flowSize = 0.6
	north    = 1 // alternative index after sorting by city name
	south    = 2
	// The "middle" interconnection (index 0) is the one that fails.
)

func buildPair() *topology.Pair {
	mkA := func() *topology.ISP {
		isp := &topology.ISP{Name: "isp-a", ASN: 64512}
		// mid sits close to south so early-exit (distance-based) sends
		// mid-sourced traffic south.
		cities := []struct {
			name string
			lat  float64
		}{{"middle", 36.5}, {"north", 47}, {"mid", 36}, {"south", 33}}
		for i, c := range cities {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c.name, Loc: geo.Point{Lat: c.lat, Lon: -100}, Population: 1e6,
			})
		}
		d := func(i, j int) float64 { return geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[j].Loc) }
		isp.Links = []topology.Link{
			{A: 1, B: 2, Weight: d(1, 2), LengthKm: d(1, 2)}, // north-mid
			{A: 2, B: 3, Weight: d(2, 3), LengthKm: d(2, 3)}, // mid-south
			{A: 0, B: 2, Weight: d(0, 2), LengthKm: d(0, 2)}, // middle-mid
		}
		return isp
	}
	mkB := func() *topology.ISP {
		isp := &topology.ISP{Name: "isp-b", ASN: 64513}
		cities := []struct {
			name string
			lat  float64
		}{{"middle", 36.5}, {"north", 47}, {"bmid", 40}, {"south", 33}}
		for i, c := range cities {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c.name, Loc: geo.Point{Lat: c.lat, Lon: -99}, Population: 1e6,
			})
		}
		d := func(i, j int) float64 { return geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[j].Loc) }
		isp.Links = []topology.Link{
			{A: 1, B: 2, Weight: d(1, 2), LengthKm: d(1, 2)}, // north-bmid
			{A: 2, B: 3, Weight: d(2, 3), LengthKm: d(2, 3)}, // bmid-south
			{A: 0, B: 2, Weight: d(0, 2), LengthKm: d(0, 2)}, // middle-bmid
		}
		return isp
	}
	return topology.NewPair(mkA(), mkB())
}

func main() {
	pair := buildPair()
	// Interconnections (shared cities, sorted): middle(0), north(1), south(2).
	fmt.Printf("%s\n", pair)
	fmt.Printf("failing the %q interconnection\n\n", pair.Interconnections[0].City)
	s2 := pairsim.New(pair.WithoutInterconnection(0), nil)
	// After removal: north is alternative 0, south alternative 1.
	altNorth, altSouth := 0, 1

	// The two impacted flows, both destined to B's interior PoP "bmid":
	// f2 from A's south PoP (3), f3 from A's mid PoP (2). For ISP-B they
	// are indistinguishable (same size, same entry->destination paths);
	// for ISP-A they differ sharply.
	f2 := traffic.Flow{ID: 0, Src: 3, Dst: 2, Size: flowSize}
	f3 := traffic.Flow{ID: 1, Src: 2, Dst: 2, Size: flowSize}
	flows := []traffic.Flow{f2, f3}

	// Background load and capacities (the paper's "current state of the
	// network" collected by the negotiation agents): A's backbone is
	// partially loaded, B's south entry link is the tight one.
	fixedUp := []float64{0.5, 0.6, 0} // A: north-mid, mid-south, middle stub
	capUp := []float64{1.2, 1.0, 1.0}
	fixedDown := []float64{0, 0, 0} // B: north-bmid, bmid-south, middle stub
	capDown := []float64{2.0, 1.0, 1.0}

	mels := func(assign []int) (a, b float64) {
		lu := append([]float64(nil), fixedUp...)
		ld := append([]float64(nil), fixedDown...)
		for _, f := range flows {
			s2.AddFlowLoad(lu, ld, f, assign[f.ID])
		}
		return metrics.MEL(lu, capUp), metrics.MEL(ld, capDown)
	}
	name := func(k int) string { return s2.Pair.Interconnections[k].City }

	// Default routing after the failure: early exit sends both flows
	// south (f2's source is at the south exit; f3's mid is nearer south).
	defaults := []int{s2.EarlyExit(f2), s2.EarlyExit(f3)}
	if defaults[0] != altSouth || defaults[1] != altSouth {
		log.Fatalf("setup: expected both defaults south, got %v", defaults)
	}

	// --- The cycle of influence (Figure 2b-2d) ------------------------
	fmt.Println("unilateral reactions:")
	assign := append([]int(nil), defaults...)
	seen := map[string]int{}
	for round := 0; round < 7; round++ {
		a, b := mels(assign)
		fmt.Printf("  step %d: f2->%s f3->%s   MEL A=%.2f B=%.2f\n",
			round, name(assign[0]), name(assign[1]), a, b)
		key := fmt.Sprint(assign)
		if prev, ok := seen[key]; ok {
			fmt.Printf("  -> state repeats (step %d == step %d): the ISPs oscillate indefinitely\n", round, prev)
			break
		}
		seen[key] = round
		if round%2 == 0 {
			// ISP-B's move: if overloaded, shift a south-entering flow
			// north. Locally both flows look identical, so its static
			// MED policy always picks the lowest flow ID — f2.
			if b > 1 {
				for _, f := range flows {
					if assign[f.ID] == altSouth {
						assign[f.ID] = altNorth
						break
					}
				}
			}
		} else {
			// ISP-A's move: if overloaded, pull its worst north-exiting
			// flow back south (f2 crossing A's whole backbone is always
			// the worst).
			if a > 1 && assign[f2.ID] == altNorth {
				assign[f2.ID] = altSouth
			}
		}
	}

	// --- Nexit (Figure 3) ----------------------------------------------
	fmt.Println("\nnegotiated (Nexit, bandwidth metric, reassignment after each flow):")
	items := []nexit.Item{
		{ID: 0, Flow: f2, Dir: nexit.AtoB},
		{ID: 1, Flow: f3, Dir: nexit.AtoB},
	}
	evalA := nexit.NewBandwidthEvaluator(s2, nexit.SideA, 10, fixedUp, capUp)
	evalB := nexit.NewBandwidthEvaluator(s2, nexit.SideB, 10, fixedDown, capDown)
	cfg := nexit.DefaultBandwidthConfig()
	cfg.ReassignFraction = 0.5 // reassess after each of the two flows
	res, err := nexit.Negotiate(cfg, evalA, evalB, items, defaults, s2.NumAlternatives())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Transcript {
		flow := "f2"
		if p.ItemID == 1 {
			flow = "f3"
		}
		fmt.Printf("  round %d: ISP-%v proposes %s -> %s (classes A=%+d B=%+d)\n",
			p.Round, p.Proposer, flow, name(p.Alt), p.PrefA, p.PrefB)
	}
	a, b := mels(res.Assign)
	fmt.Printf("  outcome: f2->%s f3->%s   MEL A=%.2f B=%.2f\n",
		name(res.Assign[0]), name(res.Assign[1]), a, b)
	if res.Assign[0] == altSouth && res.Assign[1] == altNorth {
		fmt.Println("  -> the mutually acceptable split of Figure 2e, found in a handful of rounds")
	}
}

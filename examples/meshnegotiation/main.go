// Meshnegotiation demonstrates the paper's §6 deployment model at the
// scale it was meant for: every ISP runs a persistent agent
// (internal/agentd) that negotiates continually with every neighbor.
// The mesh harness (internal/mesh) spins up one agent per ISP of a
// 12-ISP synthetic dataset, wires them into an all-pairs mesh over
// in-memory pipes, and drives six epochs of drifting traffic through
// concurrent wire sessions. The outcome is byte-identical to running
// every pair serially in-process — the harness's determinism contract.
// The same harness is then re-run with the bandwidth objective
// (mesh.Options.Metric): the daemon path is metric-generic, and every
// wire Hello carries the objective so mismatched daemons cannot pair.
//
// Run with: go run ./examples/meshnegotiation
package main

import (
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"repro/internal/continuous"
	"repro/internal/mesh"
)

func main() {
	opt := mesh.Options{
		NumISPs:  12,
		Seed:     1,
		Epochs:   6,
		Sessions: runtime.GOMAXPROCS(0),
		Timeout:  30 * time.Second,
	}
	res, err := mesh.Run(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d agents, %d neighbor pairs, %d epochs of drifting traffic\n",
		res.ISPs, len(res.Pairs), opt.Epochs)
	fmt.Printf("completed %d concurrent wire sessions in %v (%.0f sessions/s)\n\n",
		res.Sessions, res.Elapsed.Round(time.Millisecond), res.SessionsPerSec)

	fmt.Println("pair        flows  negotiated  moved  gainA  gainB  ledger  distance vs early-exit")
	for _, p := range res.Pairs {
		last := p.Reports[len(p.Reports)-1]
		saving := 0.0
		if last.DistanceDefault > 0 {
			saving = 100 * (last.DistanceDefault - last.DistanceApplied) / last.DistanceDefault
		}
		fmt.Printf("(%2d,%2d)  %8d  %10d  %5d  %+5d  %+5d  %+6d  %+6.2f%%\n",
			p.I, p.J, last.Observed, last.Negotiated, last.Moved,
			last.GainA, last.GainB, last.LedgerBalance, saving)
	}

	// The serial reference reproduces the concurrent mesh exactly.
	serial, err := mesh.RunSerial(opt)
	if err != nil {
		log.Fatal(err)
	}
	matches := 0
	for k, p := range res.Pairs {
		sp := serial.Pairs[k]
		same := true
		for e := range p.Reports {
			if p.Reports[e].GainA != sp.Reports[e].GainA ||
				p.Reports[e].GainB != sp.Reports[e].GainB ||
				p.Reports[e].Moved != sp.Reports[e].Moved {
				same = false
			}
		}
		if same {
			matches++
		}
	}
	fmt.Printf("\ndeterminism: %d of %d pairs identical to the serial in-process run\n",
		matches, len(res.Pairs))

	st := res.Agents[0]
	fmt.Printf("\nsample agent status (%s): %d initiated, %d served, %d failed sessions\n",
		st.Name, st.SessionsInitiated, st.SessionsServed, st.SessionsFailed)
	for _, peer := range st.Peers {
		role := "serves"
		if peer.Initiator {
			role = "initiates to"
		}
		fmt.Printf("  %s %s [%s]: %d epochs, %d rounds, gains %+d us / %+d peer, ledger %+d (%s)\n",
			role, peer.Name, peer.Metric, peer.Epochs, peer.Rounds,
			peer.GainUs, peer.GainPeer, peer.LedgerBalance, peer.LastStop)
	}

	// The daemon path is metric-generic: the same mesh renegotiates the
	// bandwidth objective — stateful evaluators, mid-session preference
	// reassignment — over the wire, still matching its serial reference.
	bwOpt := opt
	bwOpt.Metric = continuous.MetricBandwidth
	bwOpt.MaxPairs = 6
	bw, err := mesh.Run(bwOpt)
	if err != nil {
		log.Fatal(err)
	}
	bwSerial, err := mesh.RunSerial(bwOpt)
	if err != nil {
		log.Fatal(err)
	}
	matches = 0
	for k, p := range bw.Pairs {
		if reflect.DeepEqual(p.Reports, bwSerial.Pairs[k].Reports) {
			matches++
		}
	}
	fmt.Printf("\nbandwidth metric: %d pairs, %d wire sessions, %d of %d identical to serial\n",
		len(bw.Pairs), bw.Sessions, matches, len(bw.Pairs))
}

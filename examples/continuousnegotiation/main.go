// Continuousnegotiation demonstrates the paper's §6 deployment model:
// negotiation is not a one-shot event but a continuous process. Traffic
// drifts every epoch; the controller observes flows through the §6 flow
// registry (new flows must stay above a size threshold before they are
// negotiated, idle flows expire), renegotiates the stable set, and
// settles a credit ledger (§3) so lopsided epochs are repaid in later
// ones.
//
// Run with: go run ./examples/continuousnegotiation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/continuous"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

func main() {
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 14
	ds, err := experiments.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pairs := ds.DistancePairs()
	if len(pairs) == 0 {
		log.Fatal("no eligible pairs")
	}
	pair := pairs[0]
	sys := pairsim.New(pair, ds.Cache)
	fmt.Printf("%s — continuous negotiation over 8 epochs of drifting traffic\n\n", pair)

	ctl := continuous.New(sys, 10)
	rng := rand.New(rand.NewSource(7))
	baseAB := traffic.New(pair.A, pair.B, traffic.Gravity, nil)
	baseBA := traffic.New(pair.B, pair.A, traffic.Gravity, nil)

	fmt.Println("epoch  observed  negotiable  moved  gainA  gainB  ledger  distance vs early-exit")
	for epoch := 0; epoch < 8; epoch++ {
		wAB := continuous.Drift(baseAB, 0.25, rng)
		wBA := continuous.Drift(baseBA, 0.25, rng)
		rep, err := ctl.Epoch(wAB, wBA)
		if err != nil {
			log.Fatal(err)
		}
		saving := 100 * (rep.DistanceDefault - rep.DistanceApplied) / rep.DistanceDefault
		fmt.Printf("%5d  %8d  %10d  %5d  %+5d  %+5d  %+6d  %+6.2f%%\n",
			rep.Epoch, rep.Observed, rep.Negotiated, rep.Moved,
			rep.GainA, rep.GainB, rep.LedgerBalance, saving)
	}
	fmt.Println("\nepoch 0-1: flows must prove stable before they reach the table;")
	fmt.Println("afterwards the controller keeps the pair near its negotiated optimum")
	fmt.Println("while the credit ledger carries any gain imbalance forward.")
}

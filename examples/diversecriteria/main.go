// Diversecriteria demonstrates paper §5.3: the two ISPs negotiate with
// different optimization objectives — the upstream wants to control
// overload after a failure (bandwidth metric), the downstream wants to
// shorten the distance traffic travels in its network (distance metric).
// Opaque preference classes make the two comparable without either ISP
// revealing its objective.
//
// Run with: go run ./examples/diversecriteria
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/capacity"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

func main() {
	// Take a pair with several interconnections from the standard
	// synthetic dataset.
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 20
	ds, err := experiments.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pairs := ds.BandwidthPairs()
	if len(pairs) == 0 {
		log.Fatal("no pairs with >=3 interconnections in dataset")
	}
	pair := pairs[0]
	sys := pairsim.New(pair, ds.Cache)
	fmt.Printf("%s\n", pair)

	// Gravity-model traffic A -> B; capacities matched to pre-failure
	// load; fail interconnection 0 and renegotiate the impacted flows.
	w := traffic.New(pair.A, pair.B, traffic.Gravity, nil)
	pre := baseline.EarlyExit(sys, w.Flows)
	loadUp, loadDown := sys.Loads(w.Flows, pre)
	capUp := capacity.Assign(loadUp, capacity.Options{})
	_ = loadDown // the downstream negotiates on distance, not load

	const failed = 0
	fmt.Printf("failing interconnection %q\n\n", pair.Interconnections[failed].City)
	s2 := pairsim.New(pair.WithoutInterconnection(failed), ds.Cache)
	fixedUp := make([]float64, len(pair.A.Links))
	fixedDown := make([]float64, len(pair.B.Links))
	var impacted []traffic.Flow
	for _, f := range w.Flows {
		k := pre[f.ID]
		if k == failed {
			f.ID = len(impacted)
			impacted = append(impacted, f)
			continue
		}
		if k > failed {
			k--
		}
		s2.AddFlowLoad(fixedUp, fixedDown, f, k)
	}
	fmt.Printf("%d flows impacted by the failure\n", len(impacted))

	items := make([]nexit.Item, len(impacted))
	defaults := make([]int, len(impacted))
	for i, f := range impacted {
		items[i] = nexit.Item{ID: i, Flow: f, Dir: nexit.AtoB}
		defaults[i] = s2.EarlyExit(f)
	}

	// Upstream optimizes bandwidth headroom; downstream optimizes
	// distance. Neither knows the other's objective.
	evalUp := nexit.NewBandwidthEvaluator(s2, nexit.SideA, 10, fixedUp, capUp)
	evalDown := nexit.NewDistanceEvaluator(s2, nexit.SideB, 10)
	res, err := nexit.Negotiate(nexit.DefaultBandwidthConfig(), evalUp, evalDown, items, defaults, s2.NumAlternatives())
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, assign []int) {
		lu := append([]float64(nil), fixedUp...)
		ld := append([]float64(nil), fixedDown...)
		var downDist float64
		for _, f := range impacted {
			s2.AddFlowLoad(lu, ld, f, assign[f.ID])
			downDist += s2.DownDistKm(f, assign[f.ID])
		}
		fmt.Printf("  %-12s upstream MEL %.3f   downstream distance %8.0f km\n",
			name, metrics.MEL(lu, capUp), downDist)
	}
	fmt.Println("\nupstream metric: maximum excess load; downstream metric: distance")
	report("default:", defaults)
	report("negotiated:", res.Assign)
	fmt.Printf("\nnegotiation: %d rounds, stop %v, class gains up=%d down=%d\n",
		res.Rounds, res.Stopped, res.GainA, res.GainB)
	fmt.Println("both ISPs improved their own metric without sharing objectives.")
}

// Tcpnegotiation runs two negotiation agents (paper §6, Figure 12) in
// one process, connected over localhost TCP, and prints the session from
// both sides. The responder agent could equally be the nexitagent binary
// on another machine.
//
// Run with: go run ./examples/tcpnegotiation
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

func main() {
	// Build the shared negotiation universe: both agents must agree on
	// the pair, the flows, and the defaults (in deployment this comes
	// from both ISPs observing the same traffic).
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 12
	ds, err := experiments.Load(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pairs := ds.DistancePairs()
	if len(pairs) == 0 {
		log.Fatal("no eligible pairs")
	}
	pair := pairs[0]
	sys := pairsim.New(pair, ds.Cache)
	rev := sys.Reverse()
	wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = sys.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	fmt.Printf("%s: %d flows on the table\n", pair, len(items))

	// Responder agent (ISP B) listens on localhost.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("agent-b listening on %s\n", ln.Addr())

	type sessionOut struct {
		res *nexitwire.SessionResult
		err error
	}
	done := make(chan sessionOut, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- sessionOut{nil, err}
			return
		}
		defer conn.Close()
		resp := &nexitwire.Responder{
			Name:     "agent-b",
			Eval:     nexit.NewDistanceEvaluator(sys, nexit.SideB, 10),
			Items:    items,
			Defaults: defaults,
			NumAlts:  sys.NumAlternatives(),
		}
		r, err := resp.ServeConn(conn)
		done <- sessionOut{r, err}
	}()

	// Initiator agent (ISP A) dials and drives the session.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	ini := &nexitwire.Initiator{
		Name: "agent-a",
		Cfg:  nexit.DefaultDistanceConfig(),
		Eval: nexit.NewDistanceEvaluator(sys, nexit.SideA, 10),
	}
	res, err := ini.Run(conn, items, defaults, sys.NumAlternatives())
	if err != nil {
		log.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		log.Fatal(out.err)
	}

	fmt.Printf("\ninitiator view: %d rounds, stop %v, gains A=%d B=%d\n",
		res.Rounds, res.Stopped, res.GainA, res.GainB)
	fmt.Printf("responder view: %d rounds, stop %v, our gain %d (audited against commits)\n",
		out.res.Rounds, out.res.StopReason, out.res.GainB)

	moved := 0
	for i := range res.Assign {
		if res.Assign[i] != defaults[i] {
			moved++
		}
	}
	fmt.Printf("\n%d of %d flows moved off their default interconnection\n", moved, len(items))
	fmt.Println("first proposals on the wire:")
	for i, p := range res.Transcript {
		if i == 8 {
			fmt.Printf("  ... %d more rounds\n", len(res.Transcript)-8)
			break
		}
		verdict := "accepted"
		if !p.Accepted {
			verdict = "vetoed"
		}
		fmt.Printf("  round %2d: ISP-%v proposes flow %3d -> %q (A %+d, B %+d) %s\n",
			p.Round, p.Proposer, p.ItemID, sys.Pair.Interconnections[p.Alt].City,
			p.PrefA, p.PrefB, verdict)
	}
}

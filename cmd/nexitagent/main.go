// Command nexitagent runs one ISP's negotiation agent (paper §6, Figure
// 12): a process that sits next to the ISP's routing infrastructure,
// maps routing alternatives to opaque preference classes, and negotiates
// with the neighboring ISP's agent over TCP.
//
// Both agents must be configured with the same dataset seed and pair so
// they agree on the negotiation universe (in deployment this agreement
// comes from observing the same flows; see DESIGN.md). The responder
// listens, the initiator dials:
//
//	nexitagent -role b -listen 127.0.0.1:4179 -pair 0,1
//	nexitagent -role a -connect 127.0.0.1:4179 -pair 0,1
//
// Flags -metric distance|bandwidth select the evaluator.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/capacity"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		role    = flag.String("role", "", "which ISP this agent represents: a (initiator) or b (responder)")
		listen  = flag.String("listen", "", "listen address (role b)")
		connect = flag.String("connect", "", "peer address to dial (role a)")
		seed    = flag.Int64("seed", 1, "dataset seed (must match the peer)")
		isps    = flag.Int("isps", 65, "dataset size (must match the peer)")
		pairStr = flag.String("pair", "0,1", "ISP indices forming the pair, e.g. 3,7")
		metric  = flag.String("metric", "distance", "optimization metric: distance or bandwidth")
		pBound  = flag.Int("p", 10, "preference class bound P")
	)
	flag.Parse()

	s, items, defaults, err := buildUniverse(*seed, *isps, *pairStr)
	if err != nil {
		fatal(err)
	}
	numAlts := s.NumAlternatives()
	fmt.Printf("pair %v: %d flows, %d interconnections\n", s.Pair, len(items), numAlts)

	mkEval := func(side nexit.Side) nexit.Evaluator {
		if *metric == "bandwidth" {
			w := traffic.New(s.Pair.A, s.Pair.B, traffic.Gravity, nil)
			pre := baseline.EarlyExit(s, w.Flows)
			loadUp, loadDown := s.Loads(w.Flows, pre)
			capUp := capacity.Assign(loadUp, capacity.Options{})
			capDown := capacity.Assign(loadDown, capacity.Options{})
			if side == nexit.SideA {
				return nexit.NewBandwidthEvaluator(s, side, *pBound, loadUp, capUp)
			}
			return nexit.NewBandwidthEvaluator(s, side, *pBound, loadDown, capDown)
		}
		return nexit.NewDistanceEvaluator(s, side, *pBound)
	}

	switch *role {
	case "a":
		if *connect == "" {
			fatal(fmt.Errorf("role a requires -connect"))
		}
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		ini := &nexitwire.Initiator{
			Name: "agent-a",
			Cfg:  nexit.DefaultDistanceConfig(),
			Eval: mkEval(nexit.SideA),
		}
		ini.Cfg.PrefBound = *pBound
		res, err := ini.Run(conn, items, defaults, numAlts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("negotiated %d of %d flows in %d rounds (%v); gains A=%d B=%d\n",
			res.Negotiated, len(items), res.Rounds, res.Stopped, res.GainA, res.GainB)
		printMoves(res.Assign, defaults)
	case "b":
		if *listen == "" {
			fatal(fmt.Errorf("role b requires -listen"))
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("listening on %s\n", ln.Addr())
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		resp := &nexitwire.Responder{
			Name:     "agent-b",
			Eval:     mkEval(nexit.SideB),
			Items:    items,
			Defaults: defaults,
			NumAlts:  numAlts,
		}
		sess, err := resp.ServeConn(conn)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("session complete after %d rounds (%v); our gain %d, peer gain %d\n",
			sess.Rounds, sess.StopReason, sess.GainB, sess.GainA)
		printMoves(sess.Assign, defaults)
	default:
		fatal(fmt.Errorf("role must be a or b"))
	}
}

// buildUniverse reconstructs the shared negotiation universe from the
// dataset seed and pair indices.
func buildUniverse(seed int64, numISPs int, pairStr string) (*pairsim.System, []nexit.Item, []int, error) {
	parts := strings.Split(pairStr, ",")
	if len(parts) != 2 {
		return nil, nil, nil, fmt.Errorf("bad -pair %q, want i,j", pairStr)
	}
	i, err1 := strconv.Atoi(parts[0])
	j, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return nil, nil, nil, fmt.Errorf("bad -pair %q", pairStr)
	}
	cfg := gen.DefaultConfig()
	cfg.Seed = seed
	cfg.NumISPs = numISPs
	isps, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if i < 0 || i >= len(isps) || j < 0 || j >= len(isps) || i == j {
		return nil, nil, nil, fmt.Errorf("pair indices out of range")
	}
	pair := topology.NewPair(isps[i], isps[j])
	if pair.NumInterconnections() < 2 {
		return nil, nil, nil, fmt.Errorf("ISPs %d and %d share %d interconnections; need >=2",
			i, j, pair.NumInterconnections())
	}
	s := pairsim.New(pair, nil)
	rev := s.Reverse()
	wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for k, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[k] = s.EarlyExit(it.Flow)
		} else {
			defaults[k] = rev.EarlyExit(it.Flow)
		}
	}
	return s, items, defaults, nil
}

func printMoves(assign, defaults []int) {
	moved := 0
	for i := range assign {
		if assign[i] != defaults[i] {
			moved++
		}
	}
	fmt.Printf("%d of %d flows moved off their default interconnection\n", moved, len(assign))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexitagent:", err)
	os.Exit(1)
}

// Command nexitagent runs one ISP's negotiation daemon (paper §6,
// Figure 12): a long-running process that represents one ISP and
// negotiates continually with every configured neighbor over TCP, built
// on internal/agentd. Each epoch it renegotiates the (drifting) traffic
// of every pair through the continuous controller, settles the credit
// ledger, and keeps per-peer statistics (expvar/JSON).
//
// Each neighbor pair is oriented by dataset index: the lower-index
// agent initiates the pair's sessions, the higher-index one serves
// them. Peers this agent initiates to need an address; peers that dial
// in are listed bare. All daemons of a mesh must share -seed, -isps,
// -p, and -volatility so they derive identical negotiation universes
// (in deployment this agreement comes from observing the same flows;
// see DESIGN.md §6). A three-ISP mesh on one machine (ISPs 1, 2, and 3
// of the 12-ISP dataset are mutual neighbors; not every index pair
// shares the >=2 interconnections a pair needs):
//
//	nexitagent -isp 3 -isps 12 -listen 127.0.0.1:4181 -peer 1 -peer 2 -epochs 8
//	nexitagent -isp 2 -isps 12 -listen 127.0.0.1:4180 -peer 1 -peer 3=127.0.0.1:4181 -epochs 8
//	nexitagent -isp 1 -isps 12 -peer 2=127.0.0.1:4180 -peer 3=127.0.0.1:4181 -epochs 8
//
// Negotiation is metric-generic: -metric selects the objective for
// every pair (distance, bandwidth, or fortz-thorup), and a per-peer
// override — -peer index/metric[=addr] — lets one daemon negotiate
// different objectives with different neighbors. Both endpoints of a
// pair must configure the same metric; the wire Hello carries it and a
// mismatch is rejected cleanly at session open (DESIGN.md §7). A
// bandwidth-negotiating pair:
//
//	nexitagent -isp 2 -isps 12 -listen 127.0.0.1:4180 -metric bandwidth -peer 1 -epochs 8
//	nexitagent -isp 1 -isps 12 -metric bandwidth -peer 2=127.0.0.1:4180 -epochs 8
//
// The daemon runs until every initiated peer has completed -epochs
// epochs (0 = until interrupted), pacing rounds by -interval, and shuts
// down gracefully on SIGINT/SIGTERM. With -debug-addr it serves live
// status at /debug/vars (including each peer's metric and resync
// count) and the Go profiling endpoints at /debug/pprof/ — the probes
// the wire/session hot-path work was profiled with (DESIGN.md §9).
//
// Failures self-heal (the epoch-resync handshake, DESIGN.md §7): each
// round drives the lowest epoch any peer still needs, so a failed
// session is simply retried next round, and a restarted daemon — this
// one or a neighbor — fast-forwards by deterministic local replay and
// rejoins without operator intervention. A daemon restarted mid-mesh
// starts again at epoch 0, learns its neighbors' epoch from their skew
// rejections, catches up, and continues; no other daemon needs a
// restart. With -state-dir the daemon additionally persists per-peer
// snapshots every -snapshot-interval epochs (checksummed, atomically
// renamed — safe against SIGKILL mid-write) and a restart over the same
// directory resumes from the newest usable snapshot, replaying only the
// tail since it instead of the whole history (DESIGN.md §11).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/agentd"
	"repro/internal/continuous"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/snapshot"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// peerSpec is one -peer flag: a dataset index, an optional per-peer
// metric override, and an address when this agent initiates toward it.
type peerSpec struct {
	index  int
	addr   string
	metric string // empty = the global -metric
}

func main() {
	var (
		ispIdx     = flag.Int("isp", 0, "dataset index of the ISP this agent represents")
		listen     = flag.String("listen", "", "listen address for inbound peers (required when any peer dials in)")
		seed       = flag.Int64("seed", 1, "dataset seed (must match all neighbors)")
		isps       = flag.Int("isps", 65, "dataset size (must match all neighbors)")
		pBound     = flag.Int("p", 10, "preference class bound P")
		epochs     = flag.Int("epochs", 8, "negotiation epochs to run (0 = until interrupted)")
		interval   = flag.Duration("interval", 0, "pause between epochs (set identically on serving daemons so their idle window covers the cadence)")
		volatility = flag.Float64("volatility", 0.25, "per-epoch traffic drift (must match all neighbors)")
		metricFlag = flag.String("metric", "distance", "negotiation objective for every peer: distance, bandwidth, or fortz-thorup (override per peer with -peer index/metric)")
		maxSess    = flag.Int("max-sessions", 0, "bound on concurrent sessions per direction (0 = GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-exchange wire deadline")
		debugAddr  = flag.String("debug-addr", "", "serve expvar status (/debug/vars) and pprof (/debug/pprof/) on this address")
		quiet      = flag.Bool("quiet", false, "suppress per-epoch report lines")
		stateDir   = flag.String("state-dir", "", "directory for per-peer controller snapshots; a restarted daemon resumes from them and replays only the epochs since the newest snapshot")
		snapEvery  = flag.Int("snapshot-interval", 0, "epochs between snapshot writes (default 16; needs -state-dir)")
	)
	var specs []peerSpec
	flag.Func("peer", "neighbor `index[/metric][=addr]` (repeatable); addr required when our index is lower (we initiate); /metric overrides -metric for this peer", func(v string) error {
		idx, addr, metric := v, "", ""
		if eq := strings.IndexByte(idx, '='); eq >= 0 {
			idx, addr = idx[:eq], idx[eq+1:]
		}
		if sl := strings.IndexByte(idx, '/'); sl >= 0 {
			idx, metric = idx[:sl], idx[sl+1:]
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			return fmt.Errorf("bad peer index %q", idx)
		}
		specs = append(specs, peerSpec{index: n, addr: addr, metric: metric})
		return nil
	})
	flag.Parse()
	if len(specs) == 0 {
		fatal(fmt.Errorf("no -peer configured"))
	}

	cfg := gen.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumISPs = *isps
	dataset, err := gen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if *ispIdx < 0 || *ispIdx >= len(dataset) {
		fatal(fmt.Errorf("-isp %d out of range for a %d-ISP dataset", *ispIdx, len(dataset)))
	}

	// A serving connection must survive the initiator's epoch pacing:
	// keep the idle window comfortably above -interval, or a slow
	// cadence would time out every responder between epochs.
	idle := agentd.DefaultIdleTimeout
	if min := 2**interval + *timeout; min > idle {
		idle = min
	}
	// With -state-dir the daemon persists per-peer snapshots and — on a
	// restart over the same directory — resumes from them, turning
	// crash-recovery replay from O(lifetime) into O(epochs since the
	// last snapshot). Corrupt or missing snapshots only degrade to the
	// old epoch-0 replay (DESIGN.md §11).
	var store *snapshot.Store
	if *stateDir != "" {
		if store, err = snapshot.NewStore(*stateDir, 0); err != nil {
			fatal(err)
		}
	} else if *snapEvery > 0 {
		fatal(fmt.Errorf("-snapshot-interval needs -state-dir"))
	}
	agent := agentd.New(agentd.Config{
		Name:             agentd.AgentName(*ispIdx),
		MaxSessions:      *maxSess,
		Timeout:          *timeout,
		IdleTimeout:      idle,
		Snapshots:        store,
		SnapshotInterval: *snapEvery,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	cache := pairsim.NewTableCache()
	initiating, serving := 0, 0
	for _, spec := range specs {
		if spec.index == *ispIdx || spec.index < 0 || spec.index >= len(dataset) {
			fatal(fmt.Errorf("peer index %d invalid", spec.index))
		}
		lo, hi := *ispIdx, spec.index
		if lo > hi {
			lo, hi = hi, lo
		}
		pair := topology.NewPair(dataset[lo], dataset[hi])
		if pair.NumInterconnections() < 2 {
			fatal(fmt.Errorf("ISPs %d and %d share %d interconnections; need >=2", lo, hi, pair.NumInterconnections()))
		}
		side := nexit.SideA
		if *ispIdx == hi {
			side = nexit.SideB
		}
		metricName := spec.metric
		if metricName == "" {
			metricName = *metricFlag
		}
		metric, err := continuous.ParseMetric(metricName)
		if err != nil {
			fatal(fmt.Errorf("peer %d: %w", spec.index, err))
		}
		ctl, err := continuous.NewWithMetric(pairsim.New(pair, cache), *pBound, metric)
		if err != nil {
			fatal(err)
		}
		key := agentd.PairKey(lo, hi, len(dataset))
		peer := agentd.Peer{
			Name: agentd.AgentName(spec.index),
			Side: side,
			Ctl:  ctl,
			Workloads: func(epoch int) (*traffic.Workload, *traffic.Workload) {
				return agentd.EpochWorkloads(pair, *seed, key, epoch, *volatility)
			},
		}
		if side == nexit.SideA {
			if spec.addr == "" {
				fatal(fmt.Errorf("peer %d: our index is lower, we initiate — an address is required (-peer %d=host:port)", spec.index, spec.index))
			}
			addr := spec.addr
			peer.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
			initiating++
		} else {
			if spec.addr != "" {
				fatal(fmt.Errorf("peer %d: their index is lower, they dial us — drop the address (-peer %d) and set -listen", spec.index, spec.index))
			}
			serving++
		}
		if err := agent.AddPeer(peer); err != nil {
			fatal(err)
		}
	}

	var ln net.Listener
	if serving > 0 || *listen != "" {
		if *listen == "" {
			fatal(fmt.Errorf("%d peers dial in; -listen is required", serving))
		}
		if ln, err = net.Listen("tcp", *listen); err != nil {
			fatal(err)
		}
		go func() {
			if err := agent.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, "nexitagent: serve:", err)
			}
		}()
		fmt.Printf("%s listening on %s (%d inbound peers)\n", agent.Name(), ln.Addr(), serving)
	}
	if *debugAddr != "" {
		agent.PublishExpvar("agentd")
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				if err := agent.WriteMetrics(w); err != nil {
					fmt.Fprintln(os.Stderr, "nexitagent: /metrics:", err)
				}
			})
			// The daemon uses a private mux, so the net/http/pprof
			// handlers must be wired explicitly (the package's init only
			// touches http.DefaultServeMux). Index serves every profile
			// (heap, goroutine, ...); the named routes cover the handlers
			// that are not plain profile lookups.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "nexitagent: debug server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Drive the peers we initiate to, epoch by epoch; serving peers
	// advance when their initiators call. Each round runs the lowest
	// epoch any initiated peer still needs (NextEpoch), so a failed
	// epoch is retried until it heals — RunEpoch is idempotent, so
	// peers that already negotiated it are skipped — and a daemon
	// restarted mid-mesh resyncs to its neighbors and continues.
	// -epochs 0 runs until SIGINT.
	for initiating > 0 && ctx.Err() == nil {
		epoch := agent.NextEpoch()
		if *epochs > 0 && epoch >= *epochs {
			break
		}
		reports, err := agent.RunEpoch(ctx, epoch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexitagent: epoch %d: %v\n", epoch, err)
		}
		if !*quiet {
			printEpoch(reports)
		}
		if done := *epochs > 0 && agent.NextEpoch() >= *epochs; !done {
			pause := *interval
			if err != nil && pause < time.Second {
				// Failed rounds must not spin: retry at a gentle pace
				// even when -interval is zero.
				pause = time.Second
			}
			if pause > 0 {
				select {
				case <-time.After(pause):
				case <-ctx.Done():
				}
			}
		}
	}

	// A serving agent stays up until its initiators are done (-epochs
	// reached on every inbound peer) or it is interrupted.
	if serving > 0 {
		fmt.Printf("%s serving; press Ctrl-C to stop\n", agent.Name())
		for ctx.Err() == nil && !servedAll(agent, *epochs) {
			select {
			case <-time.After(200 * time.Millisecond):
			case <-ctx.Done():
			}
		}
	}

	if ln != nil {
		ln.Close()
	}
	agent.Close()
	agent.Wait()
	fmt.Printf("final status:\n%s\n", agent.StatusJSON())
}

// servedAll reports whether every inbound peer has completed the target
// number of epochs (never true when the target is 0 = run forever).
func servedAll(a *agentd.Agent, epochs int) bool {
	if epochs <= 0 {
		return false
	}
	for _, p := range a.Status().Peers {
		if !p.Initiator && p.Epochs < epochs {
			return false
		}
	}
	return true
}

// printEpoch writes one line per peer for the epoch. A peer that
// resynced past the driven epoch (skew recovery) reports the epoch it
// actually negotiated, so each line shows its report's own index.
func printEpoch(reports map[string]*continuous.EpochReport) {
	peers := make([]string, 0, len(reports))
	for name := range reports {
		peers = append(peers, name)
	}
	sort.Strings(peers)
	for _, name := range peers {
		rep := reports[name]
		saving := 0.0
		if rep.DistanceDefault > 0 {
			saving = 100 * (rep.DistanceDefault - rep.DistanceApplied) / rep.DistanceDefault
		}
		fmt.Printf("epoch %2d  %s: observed %3d, negotiated %3d, moved %3d, gains %+d/%+d, ledger %+d, %+.2f%% vs early-exit\n",
			rep.Epoch, name, rep.Observed, rep.Negotiated, rep.Moved,
			rep.GainA, rep.GainB, rep.LedgerBalance, saving)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexitagent:", err)
	os.Exit(1)
}

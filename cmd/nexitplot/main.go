// Command nexitplot is the consumer of the streaming pipeline: it
// folds `nexitsim -stream` NDJSON back into the paper's figure tables,
// and watches a running mesh live.
//
// Fold mode (the default) reads NDJSON from the named files (or stdin
// when none are given), folds every record through constant-memory
// online CDFs, and prints the figure sections for the experiments the
// input carries — byte-identical to `nexitsim` figure mode for the
// same run while the per-curve digests are uncompacted. Passing
// several files merges shards of one run: the fold is
// order-independent, so
//
//	nexitsim -stream -out full.ndjson
//	nexitplot full.ndjson
//	nexitplot shard1.ndjson shard2.ndjson   # any line split of full
//
// print the same bytes. Experiment summary lines merge through their
// embedded digests (DESIGN.md §10).
//
// Watch mode polls one or more agentd debug endpoints and renders
// mesh-wide progress — sessions/s, the epoch frontier, resync and
// failure counts, and session-latency quantiles:
//
//	nexitplot -watch 127.0.0.1:8171,127.0.0.1:8172 -interval 2s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/agentd"
	"repro/internal/mesh"
	"repro/internal/plot"
)

func main() {
	var (
		points   = flag.Int("points", 16, "points per CDF series (match nexitsim -points)")
		watch    = flag.String("watch", "", "comma-separated agentd debug addresses to poll instead of folding NDJSON")
		interval = flag.Duration("interval", 2*time.Second, "watch poll interval")
		polls    = flag.Int("polls", 0, "stop watching after N polls (0 = until interrupted)")
	)
	flag.Parse()

	if *watch != "" {
		if flag.NArg() > 0 {
			fatal(fmt.Errorf("-watch polls live agents and takes no NDJSON files"))
		}
		if err := runWatch(strings.Split(*watch, ","), *interval, *polls); err != nil {
			fatal(err)
		}
		return
	}

	fold := plot.NewFold(*points)
	if flag.NArg() == 0 {
		if err := fold.ReadLines(os.Stdin); err != nil {
			fatal(fmt.Errorf("stdin: %w", err))
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = fold.ReadLines(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	if fold.Unknown > 0 {
		fmt.Fprintf(os.Stderr, "nexitplot: skipped %d records of unknown experiments\n", fold.Unknown)
	}
	if err := fold.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// runWatch polls every address each interval, folds the statuses into
// one mesh-wide rollup, and prints a progress line. Endpoints that
// fail a poll are reported and skipped for that round; the watch keeps
// going as long as anything answers.
func runWatch(addrs []string, interval time.Duration, polls int) error {
	client := &http.Client{Timeout: interval}
	var prev mesh.Progress
	var prevAt time.Time
	for n := 0; polls <= 0 || n < polls; n++ {
		if n > 0 {
			time.Sleep(interval)
		}
		var statuses []agentd.Status
		for _, addr := range addrs {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			sts, err := fetchVars(client, addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nexitplot: %s: %v\n", addr, err)
				continue
			}
			statuses = append(statuses, sts...)
		}
		now := time.Now()
		pr, err := mesh.AggregateStatuses(statuses)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexitplot: aggregate: %v\n", err)
			continue
		}
		rate := plot.SessionRate(prev, pr, now.Sub(prevAt).Seconds())
		fmt.Printf("[%s] %s\n", now.Format("15:04:05"), plot.FormatProgress(pr, rate))
		prev, prevAt = pr, now
	}
	return nil
}

// fetchVars retrieves one endpoint's /debug/vars and extracts every
// agentd status it publishes (a process may host several agents).
func fetchVars(client *http.Client, addr string) ([]agentd.Status, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/vars: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return plot.DecodeVars(body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexitplot:", err)
	os.Exit(1)
}

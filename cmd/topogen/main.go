// Command topogen generates the synthetic ISP dataset that substitutes
// for the paper's 65 measured Rocketfuel topologies (see DESIGN.md §4)
// and writes it in the .topo text format.
//
// Usage:
//
//	topogen [-seed N] [-isps N] [-workers N] [-out FILE] [-inventory]
//
// With -inventory the dataset is summarized (ISP sizes, eligible pair
// counts) instead of serialized.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/topology"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "generator seed")
		isps      = flag.Int("isps", 65, "number of ISPs to generate")
		workers   = flag.Int("workers", 0, "generation goroutines (0 = GOMAXPROCS; output is identical for any value)")
		out       = flag.String("out", "", "output file (default stdout)")
		inventory = flag.Bool("inventory", false, "print dataset inventory instead of topologies")
	)
	flag.Parse()

	cfg := gen.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumISPs = *isps
	generated, err := gen.GenerateWorkers(cfg, *workers)
	if err != nil {
		fatal(err)
	}

	if *inventory {
		ds := experiments.FromISPs(generated)
		fmt.Print(ds.Inventory())
		for _, isp := range generated {
			mesh := ""
			if isp.IsMesh() {
				mesh = " (mesh)"
			}
			fmt.Printf("  %-8s ASN %d: %2d PoPs, %2d links%s\n",
				isp.Name, isp.ASN, isp.NumPoPs(), len(isp.Links), mesh)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := topology.Write(w, generated); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}

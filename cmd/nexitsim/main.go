// Command nexitsim reproduces the paper's evaluation (§5): it runs the
// default, negotiated, and globally optimal routing over the synthetic
// dataset and prints each figure's CDF series as an aligned text table.
//
// Usage:
//
//	nexitsim [-fig all|4|5|6|7|8|9|10|11|extras] [-max-pairs N]
//	         [-max-failures N] [-seed N] [-points N] [-workers N]
//	         [-dataset FILE] [-isps N] [-inventory]
//	         [-stream] [-out FILE]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// Each printed block corresponds to one figure panel of the paper; the
// x-grid matches the paper's axes. EXPERIMENTS.md records a full run.
//
// With -stream (or -out), nexitsim switches to the streaming pipeline
// (DESIGN.md §8): per-pair / per-failure-case results are emitted
// incrementally as NDJSON — one {"experiment","index","data"} object
// per line, in deterministic pair order, followed by one summary line
// per experiment computed with the constant-memory accumulators in
// internal/stats. Nothing is buffered, so arbitrarily large datasets
// run in O(workers) memory. One batch-only exception: the §5
// preference-range ablation (part of figure-mode -fig extras) is a
// derived sweep of full experiment re-runs, not a per-pair stream, and
// has no streaming form.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "figure to reproduce: all, 4, 5, 6, 7, 8, 9, 10, 11, extras")
		maxPairs    = flag.Int("max-pairs", 0, "limit ISP pairs (0 = all)")
		maxFailures = flag.Int("max-failures", 0, "limit bandwidth failure cases (0 = all)")
		seed        = flag.Int64("seed", 1, "experiment seed")
		points      = flag.Int("points", 16, "points per CDF series")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0),
			"goroutines evaluating ISP pairs (results are identical for any value)")
		dataset   = flag.String("dataset", "", "load .topo dataset instead of generating")
		isps      = flag.Int("isps", 0, "generate a dataset of N ISPs instead of the default 65")
		inventory = flag.Bool("inventory", false, "print dataset inventory and exit")
		stream    = flag.Bool("stream", false, "emit per-pair results incrementally as NDJSON instead of figure tables")
		out       = flag.String("out", "", "write streaming NDJSON to FILE (implies -stream; default stdout)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memprof   = flag.String("memprofile", "", "write a heap profile to FILE at exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Profiles cover the normal exit paths (including the early
		// -stream/-inventory returns); fatal() skips defers by design.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // report live objects, not GC-collectible garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	ds, err := loadDataset(*dataset, *isps, *workers)
	if err != nil {
		fatal(err)
	}
	if *inventory {
		fmt.Print(ds.Inventory())
		return
	}
	// Shard the cold start (per-ISP Dijkstra) across the worker pool
	// before any experiment asks for a routing table. Only for
	// effectively-full runs: a biting -max-pairs subset touches few
	// ISPs, and warming all of them would make cold start O(dataset)
	// again — the lazy TableCache computes exactly the tables the
	// subset needs. A cap at or above every eligible pair count selects
	// everything, so warm then too.
	if n := *maxPairs; n <= 0 || (n >= len(ds.DistancePairs()) && n >= len(ds.BandwidthPairs())) {
		ds.Warm(*workers)
	}

	opt := experiments.Options{MaxPairs: *maxPairs, Seed: *seed, Workers: *workers}
	bopt := experiments.BandwidthOptions{
		Options:     opt,
		Workload:    traffic.Gravity,
		MaxFailures: *maxFailures,
	}

	if *stream || *out != "" {
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}()
			w = f
		}
		if err := runStreaming(w, ds, *fig, opt, bopt); err != nil {
			fatal(err)
		}
		return
	}

	needDistance := has(*fig, "all", "4", "5", "6", "extras")
	needBandwidth := has(*fig, "all", "7", "8", "9", "11")
	needCheatDist := has(*fig, "all", "10")

	var dres *experiments.DistanceResult
	var bres *experiments.BandwidthResult
	var cres *experiments.DistanceCheatResult

	if needDistance {
		if dres, err = experiments.Distance(ds, opt); err != nil {
			fatal(err)
		}
	}
	if needBandwidth {
		if bres, err = experiments.Bandwidth(ds, bopt); err != nil {
			fatal(err)
		}
	}
	if needCheatDist {
		if cres, err = experiments.DistanceCheat(ds, opt); err != nil {
			fatal(err)
		}
	}

	n := *points
	if has(*fig, "all", "4") {
		section("Figure 4a — distance: total gain over default routing (CDF of ISP pairs)")
		fmt.Printf("pairs: %d\n", dres.Pairs)
		printSeries("% gain", 0, 15, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(dres.PairGainNeg),
			"optimal":    stats.NewCDF(dres.PairGainOpt),
		}, []string{"negotiated", "optimal"})

		section("Figure 4b — distance: individual ISP gain (CDF of ISPs)")
		printSeries("% gain", -20, 40, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(dres.IndGainNeg),
			"optimal":    stats.NewCDF(dres.IndGainOpt),
		}, []string{"negotiated", "optimal"})
		losers := 0
		for _, g := range dres.IndGainOpt {
			if g < 0 {
				losers++
			}
		}
		fmt.Printf("ISPs losing under global optimum: %d/%d (paper: roughly a third)\n",
			losers, len(dres.IndGainOpt))
	}
	if has(*fig, "all", "5") {
		section("Figure 5 — flow-local strategies: total gain (CDF of ISP pairs)")
		printSeries("% gain", 0, 15, n, map[string]*stats.CDF{
			"flow-both-better": stats.NewCDF(dres.PairGainBothBetter),
			"flow-Pareto":      stats.NewCDF(dres.PairGainPareto),
		}, []string{"flow-both-better", "flow-Pareto"})
	}
	if has(*fig, "all", "6") {
		section("Figure 6 — distance: per-flow gain (CDF of flows, all pairs pooled)")
		printSeries("% gain", 0, 60, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(dres.FlowGainNeg),
			"optimal":    stats.NewCDF(dres.FlowGainOpt),
		}, []string{"negotiated", "optimal"})
		neg := stats.NewCDF(dres.FlowGainNeg)
		fmt.Printf("flows gaining >20%%: %.1f%%   >50%%: %.1f%% (paper: 7%% and 1%%)\n",
			100*neg.FractionAbove(20), 100*neg.FractionAbove(50))
	}
	if has(*fig, "all", "7") {
		section("Figure 7 — bandwidth: MEL relative to optimal after a failure (CDF of failure cases)")
		fmt.Printf("failure cases: %d\n", bres.FailureCases)
		fmt.Println("upstream ISP:")
		printSeries("load ratio", 0, 6, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(bres.UpNeg),
			"default":    stats.NewCDF(bres.UpDef),
		}, []string{"negotiated", "default"})
		fmt.Println("downstream ISP:")
		printSeries("load ratio", 0, 6, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(bres.DownNeg),
			"default":    stats.NewCDF(bres.DownDef),
		}, []string{"negotiated", "default"})
	}
	if has(*fig, "all", "8") {
		section("Figure 8 — unilateral upstream optimization: downstream MEL vs default (CDF)")
		printSeries("load ratio", 1, 6, n, map[string]*stats.CDF{
			"upstream-optimized": stats.NewCDF(bres.UnilateralDownRatio),
		}, []string{"upstream-optimized"})
		hurt := stats.NewCDF(bres.UnilateralDownRatio).FractionAbove(2)
		fmt.Printf("cases where downstream MEL more than doubles: %.1f%% (paper: ~10%%)\n", 100*hurt)
	}
	if has(*fig, "all", "9") {
		section("Figure 9 — diverse criteria: upstream bandwidth vs downstream distance")
		fmt.Println("upstream ISP (MEL ratio to optimal):")
		printSeries("load ratio", 0, 6, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(bres.DiverseUpNeg),
			"default":    stats.NewCDF(bres.DiverseUpDef),
		}, []string{"negotiated", "default"})
		fmt.Println("downstream ISP (distance gain over default):")
		printSeries("% gain", 0, 80, n, map[string]*stats.CDF{
			"negotiated": stats.NewCDF(bres.DiverseDownGain),
		}, []string{"negotiated"})
	}
	if has(*fig, "all", "10") {
		section("Figure 10a — cheating (distance): total gain (CDF of ISP pairs)")
		fmt.Printf("pairs: %d\n", cres.Pairs)
		printSeries("% gain", 0, 15, n, map[string]*stats.CDF{
			"both truthful": stats.NewCDF(cres.TotalTruthful),
			"one cheater":   stats.NewCDF(cres.TotalCheat),
		}, []string{"both truthful", "one cheater"})
		section("Figure 10b — cheating (distance): individual gain (CDF of ISPs)")
		printSeries("% gain", 0, 15, n, map[string]*stats.CDF{
			"both truthful": stats.NewCDF(cres.IndTruthful),
			"cheater":       stats.NewCDF(cres.IndCheater),
			"truthful":      stats.NewCDF(cres.IndVictim),
		}, []string{"both truthful", "cheater", "truthful"})
		delta := stats.NewCDF(cres.CheaterDelta)
		fmt.Printf("paired effect of cheating on the cheater itself: mean %+.2f%%, hurts in %.0f%% of pairs\n",
			delta.Mean(), 100*delta.At(-1e-9))
	}
	if has(*fig, "all", "11") {
		section("Figure 11 — cheating (bandwidth): MEL ratio to optimal (CDF of failure cases)")
		fmt.Println("upstream ISP (the cheater):")
		printSeries("load ratio", 0, 6, n, map[string]*stats.CDF{
			"both truthful": stats.NewCDF(bres.UpNeg),
			"one cheater":   stats.NewCDF(bres.CheatUpNeg),
			"default":       stats.NewCDF(bres.UpDef),
		}, []string{"both truthful", "one cheater", "default"})
		fmt.Println("downstream ISP (truthful):")
		printSeries("load ratio", 0, 6, n, map[string]*stats.CDF{
			"both truthful": stats.NewCDF(bres.DownNeg),
			"one cheater":   stats.NewCDF(bres.CheatDownNeg),
			"default":       stats.NewCDF(bres.DownDef),
		}, []string{"both truthful", "one cheater", "default"})
	}
	if has(*fig, "all", "extras") {
		printExtras(ds, dres, opt, bopt)
	}
}

// extrasFractions is the §6 scalability sweep both extras modes run.
var extrasFractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// extrasOptions bounds the extras sweeps — these renegotiate pairs
// repeatedly, so unbounded runs are capped. One definition shared by
// figure mode (printExtras) and streaming mode keeps the two paths
// covering identical work for identical flags.
func extrasOptions(opt experiments.Options, bopt experiments.BandwidthOptions) (dOpt, sOpt experiments.Options, stOpt experiments.BandwidthOptions) {
	dOpt = opt // destination-based comparison
	if dOpt.MaxPairs == 0 || dOpt.MaxPairs > 100 {
		dOpt.MaxPairs = 100
	}
	sOpt = opt // scalability sweep renegotiates each pair 6 times
	if sOpt.MaxPairs == 0 || sOpt.MaxPairs > 60 {
		sOpt.MaxPairs = 60
	}
	stOpt = bopt // stability replay: respect -max-failures up to 300
	if stOpt.MaxFailures == 0 || stOpt.MaxFailures > 300 {
		stOpt.MaxFailures = 300
	}
	if stOpt.MaxPairs == 0 || stOpt.MaxPairs > 40 {
		stOpt.MaxPairs = 40
	}
	return dOpt, sOpt, stOpt
}

// printExtras reproduces the analyses the paper describes in text but
// omits from figures for space.
func printExtras(ds *experiments.Dataset, dres *experiments.DistanceResult, opt experiments.Options, bopt experiments.BandwidthOptions) {
	section("Extra — negotiated gain vs number of interconnections (§5.1 text)")
	var counts []int
	for k := range dres.GainVsInterconnections {
		counts = append(counts, k)
	}
	sort.Ints(counts)
	for _, k := range counts {
		c := stats.NewCDF(dres.GainVsInterconnections[k])
		fmt.Printf("  %2d interconnections: %s\n", k, stats.Summary(c))
	}

	section("Extra — fraction of flows moved off the default (§5.1 text, ~20%)")
	fmt.Printf("  %s\n", stats.Summary(stats.NewCDF(dres.NonDefaultFraction)))

	section("Extra — negotiating in 4 separate groups (§5.1 text)")
	fmt.Printf("  whole table: %s\n", stats.Summary(stats.NewCDF(dres.PairGainNeg)))
	fmt.Printf("  4 groups:    %s\n", stats.Summary(stats.NewCDF(dres.GroupGain4)))

	section("Extra — preference range ablation (§5 text: beyond [-10,10] no gain)")
	bounds := []int{1, 2, 3, 5, 10, 20, 50}
	abl, err := experiments.PreferenceRangeAblation(ds, opt, bounds)
	if err != nil {
		fatal(err)
	}
	for _, p := range bounds {
		fmt.Printf("  P=%-3d median total gain: %.2f%%\n", p, abl[p])
	}

	dOpt, sOpt, stOpt := extrasOptions(opt, bopt)

	section("Extra — negotiating only the biggest flows (§6 scalability)")
	fractions := extrasFractions
	sc, err := experiments.Scalability(ds, sOpt, fractions)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  pairs: %d (gravity flow sizes)\n", sc.Pairs)
	for i, f := range fractions {
		fmt.Printf("  top flows covering %3.0f%% of traffic = %4.1f%% of flows -> %3.0f%% of the full gain\n",
			100*f, 100*sc.FlowShare[i], 100*sc.GainShare[i])
	}

	section("Extra — destination-based routing (footnote 2)")
	db, err := experiments.DestinationBased(ds, dOpt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  pairs: %d; gains measured against each regime's own default\n", db.Pairs)
	fmt.Printf("  source-destination routing: %s\n", stats.Summary(stats.NewCDF(db.GainSrcDst)))
	fmt.Printf("  destination-based routing:  %s\n", stats.Summary(stats.NewCDF(db.GainDstOnly)))

	section("Extra — cycles of influence under reactive unilateral routing (§1/§2.2)")
	st, err := experiments.Stability(ds, stOpt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  failure cases: %d\n", st.FailureCases)
	fmt.Printf("  reactive best-response dynamics: %d converged, %d oscillated, %d exhausted\n",
		st.Converged, st.Oscillated, st.Exhausted)
	fmt.Printf("  negotiation: always terminates (by construction)\n")
	fmt.Printf("  reactive end-state worst MEL:   %s\n", stats.Summary(stats.NewCDF(st.ReactiveWorst)))
	fmt.Printf("  negotiated worst MEL:           %s\n", stats.Summary(stats.NewCDF(st.NegotiatedWorst)))
}

// runStreaming drives the figure selection through the streaming
// drivers, emitting one NDJSON object per result as it is produced and
// one constant-memory summary line per experiment. Output order is
// deterministic (the runner's ordered reducer), so two runs with the
// same flags are byte-identical regardless of -workers.
func runStreaming(w io.Writer, ds *experiments.Dataset, fig string, opt experiments.Options, bopt experiments.BandwidthOptions) error {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)

	type envelope struct {
		Experiment string `json:"experiment"`
		Index      int    `json:"index"`
		Data       any    `json:"data"`
	}
	emit := func(exp string, idx int, data any) error {
		if err := enc.Encode(envelope{Experiment: exp, Index: idx, Data: data}); err != nil {
			return err
		}
		return bw.Flush() // one line out per result: truly incremental
	}
	type summary struct {
		Experiment string            `json:"experiment"`
		Results    int               `json:"results"`
		Series     map[string]string `json:"series"`
		// Digests carries each series' mergeable state, so nexitplot can
		// fold sharded runs back into one whole-run summary (run
		// elsewhere, aggregate here — DESIGN.md §10).
		Digests map[string]*stats.Digest `json:"digests,omitempty"`
	}
	emitSummary := func(exp string, n int, digests map[string]*stats.Digest) error {
		s := summary{Experiment: exp, Results: n, Series: map[string]string{}, Digests: digests}
		for name, d := range digests {
			s.Series[name] = d.Summary()
		}
		if err := enc.Encode(s); err != nil {
			return err
		}
		return bw.Flush()
	}

	if has(fig, "all", "4", "5", "6", "extras") {
		neg, opt2 := stats.NewDigest(), stats.NewDigest()
		n := 0
		err := experiments.DistanceStream(ds, opt, func(idx int, r *experiments.DistancePairResult) error {
			neg.Add(r.GainNeg)
			opt2.Add(r.GainOpt)
			n++
			return emit("distance", idx, r)
		})
		if err != nil {
			return err
		}
		if err := emitSummary("distance", n, map[string]*stats.Digest{
			"gain_negotiated": neg, "gain_optimal": opt2,
		}); err != nil {
			return err
		}
	}
	if has(fig, "all", "7", "8", "9", "11") {
		upNeg, downNeg := stats.NewDigest(), stats.NewDigest()
		cases, err := experiments.BandwidthStream(ds, bopt, func(idx int, r *experiments.BandwidthCaseResult) error {
			upNeg.Add(r.UpNeg)
			downNeg.Add(r.DownNeg)
			return emit("bandwidth", idx, r)
		})
		if err != nil {
			return err
		}
		if err := emitSummary("bandwidth", cases, map[string]*stats.Digest{
			"up_negotiated": upNeg, "down_negotiated": downNeg,
		}); err != nil {
			return err
		}
	}
	if has(fig, "all", "10") {
		truthful, cheat := stats.NewDigest(), stats.NewDigest()
		n := 0
		err := experiments.DistanceCheatStream(ds, opt, func(idx int, r *experiments.CheatPairResult) error {
			truthful.Add(r.TotalTruthful)
			cheat.Add(r.TotalCheat)
			n++
			return emit("distance-cheat", idx, r)
		})
		if err != nil {
			return err
		}
		if err := emitSummary("distance-cheat", n, map[string]*stats.Digest{
			"total_truthful": truthful, "total_cheat": cheat,
		}); err != nil {
			return err
		}
	}
	if has(fig, "all", "extras") {
		// The shared extrasOptions bounds mean batch and streaming
		// extras cover the same work for the same flags — except the
		// preference-range ablation (a derived sweep of full re-runs,
		// figure mode only; see the package comment).
		dOpt, sOpt, stOpt := extrasOptions(opt, bopt)

		dst := stats.NewDigest()
		n := 0
		err := experiments.DestinationStream(ds, dOpt, func(idx int, r *experiments.DestinationPairResult) error {
			dst.Add(r.GainDstOnly)
			n++
			return emit("destination", idx, r)
		})
		if err != nil {
			return err
		}
		if err := emitSummary("destination", n, map[string]*stats.Digest{"gain_dst_only": dst}); err != nil {
			return err
		}

		// Same fraction sweep as batch extras, so streamed records carry
		// the full §6 curve.
		first := stats.NewDigest()
		n = 0
		err = experiments.ScalabilityStream(ds, sOpt, extrasFractions,
			func(idx int, r *experiments.ScalabilityPairResult) error {
				first.Add(r.GainShares[0])
				n++
				return emit("scalability", idx, r)
			})
		if err != nil {
			return err
		}
		if err := emitSummary("scalability", n, map[string]*stats.Digest{"gain_share_20pct_traffic": first}); err != nil {
			return err
		}

		worst := stats.NewDigest()
		cases, err := experiments.StabilityStream(ds, stOpt, func(idx int, r *experiments.StabilityCaseResult) error {
			worst.Add(r.ReactiveWorst)
			return emit("stability", idx, r)
		})
		if err != nil {
			return err
		}
		if err := emitSummary("stability", cases, map[string]*stats.Digest{"reactive_worst_mel": worst}); err != nil {
			return err
		}
	}
	return nil
}

func loadDataset(path string, isps, workers int) (*experiments.Dataset, error) {
	if path != "" && isps > 0 {
		return nil, fmt.Errorf("-isps sizes the generated dataset and conflicts with -dataset %s", path)
	}
	if path == "" {
		cfg := gen.DefaultConfig()
		if isps > 0 {
			cfg.NumISPs = isps
		}
		// Generation shards per ISP (dataset format v2) over the same
		// worker pool the experiments use; the dataset is identical at
		// every -workers value.
		return experiments.LoadWorkers(cfg, workers)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	loaded, err := topology.Read(f)
	if err != nil {
		return nil, err
	}
	return experiments.FromISPs(loaded), nil
}

func has(v string, options ...string) bool {
	for _, o := range options {
		if v == o {
			return true
		}
	}
	return false
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func printSeries(xLabel string, min, max float64, n int, curves map[string]*stats.CDF, order []string) {
	fmt.Print(stats.FormatSeries(xLabel, min, max, n, curves, order))
	for _, name := range order {
		fmt.Printf("  %s: %s\n", name, stats.Summary(curves[name]))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexitsim:", err)
	os.Exit(1)
}

// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (§5). Each benchmark runs the corresponding
// experiment driver on a deterministic slice of the synthetic dataset
// and reports the figure's headline statistics as custom metrics, so
// `go test -bench . -benchmem` reproduces the paper end to end. The
// full-dataset series (exact CDF rows) are printed by cmd/nexitsim; the
// recorded output lives in EXPERIMENTS.md.
package main

import (
	"fmt"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/pairsim"
	"repro/internal/runner"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// benchDataset caches the generated dataset across benchmarks.
var (
	benchOnce sync.Once
	benchDS   *experiments.Dataset
)

func dataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		cfg := gen.DefaultConfig()
		cfg.NumISPs = 30 // a representative slice; cmd/nexitsim runs all 65
		ds, err := experiments.Load(cfg)
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	})
	return benchDS
}

// distanceOpts bounds the distance experiments for benchmarking.
var distanceOpts = experiments.Options{MaxPairs: 25, Seed: 1}

// bandwidthOpts bounds the failure experiments for benchmarking.
var bandwidthOpts = experiments.BandwidthOptions{
	Options:     experiments.Options{MaxPairs: 8, Seed: 1},
	Workload:    traffic.Gravity,
	MaxFailures: 30,
}

func median(xs []float64) float64 {
	c := stats.NewCDF(xs)
	if c.N() == 0 {
		return 0
	}
	return c.Median()
}

// BenchmarkFig4DistanceGain regenerates Figure 4: total and individual
// distance gains of negotiated vs globally optimal routing.
func BenchmarkFig4DistanceGain(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.PairGainNeg), "negotiated-median-%gain")
	b.ReportMetric(median(res.PairGainOpt), "optimal-median-%gain")
	b.ReportMetric(stats.NewCDF(res.IndGainNeg).Min(), "negotiated-worst-ISP-%gain")
	losers := 0
	for _, g := range res.IndGainOpt {
		if g < 0 {
			losers++
		}
	}
	b.ReportMetric(100*float64(losers)/float64(len(res.IndGainOpt)), "optimal-%ISPs-losing")
}

// BenchmarkFig5FlowLocalStrategies regenerates Figure 5: the flow-local
// strategies that discard bad alternatives per flow.
func BenchmarkFig5FlowLocalStrategies(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.PairGainPareto), "flow-pareto-median-%gain")
	b.ReportMetric(median(res.PairGainBothBetter), "flow-both-better-median-%gain")
	b.ReportMetric(median(res.PairGainNeg), "negotiated-median-%gain")
}

// BenchmarkFig6FlowLevel regenerates Figure 6: per-flow gains pooled
// across pairs (7% of flows gain >20%, 1% gain >50% in the paper).
func BenchmarkFig6FlowLevel(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	neg := stats.NewCDF(res.FlowGainNeg)
	b.ReportMetric(100*neg.FractionAbove(20), "%flows-gaining-over-20%")
	b.ReportMetric(100*neg.FractionAbove(50), "%flows-gaining-over-50%")
}

// BenchmarkFig7BandwidthMEL regenerates Figure 7: post-failure maximum
// excess load relative to the fractional LP optimum.
func BenchmarkFig7BandwidthMEL(b *testing.B) {
	ds := dataset(b)
	var res *experiments.BandwidthResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Bandwidth(ds, bandwidthOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.UpDef), "upstream-default-median-ratio")
	b.ReportMetric(median(res.UpNeg), "upstream-negotiated-median-ratio")
	b.ReportMetric(median(res.DownDef), "downstream-default-median-ratio")
	b.ReportMetric(median(res.DownNeg), "downstream-negotiated-median-ratio")
}

// BenchmarkFig8Unilateral regenerates Figure 8: the downstream's MEL
// when the upstream optimizes unilaterally.
func BenchmarkFig8Unilateral(b *testing.B) {
	ds := dataset(b)
	var res *experiments.BandwidthResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Bandwidth(ds, bandwidthOpts); err != nil {
			b.Fatal(err)
		}
	}
	c := stats.NewCDF(res.UnilateralDownRatio)
	b.ReportMetric(c.Median(), "downstream-ratio-median")
	b.ReportMetric(100*c.FractionAbove(2), "%cases-downstream-doubles")
}

// BenchmarkFig9DiverseCriteria regenerates Figure 9: upstream bandwidth
// vs downstream distance objectives.
func BenchmarkFig9DiverseCriteria(b *testing.B) {
	ds := dataset(b)
	var res *experiments.BandwidthResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Bandwidth(ds, bandwidthOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.DiverseUpNeg), "upstream-negotiated-median-ratio")
	b.ReportMetric(median(res.DiverseUpDef), "upstream-default-median-ratio")
	b.ReportMetric(median(res.DiverseDownGain), "downstream-median-%gain")
}

// BenchmarkFig10CheatDistance regenerates Figure 10: the impact of one
// ISP lying about its distance preferences.
func BenchmarkFig10CheatDistance(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceCheatResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.DistanceCheat(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.TotalTruthful), "truthful-total-median-%gain")
	b.ReportMetric(median(res.TotalCheat), "cheater-total-median-%gain")
	b.ReportMetric(median(res.IndCheater), "cheater-individual-median-%gain")
	b.ReportMetric(median(res.IndVictim), "victim-individual-median-%gain")
}

// BenchmarkFig11CheatBandwidth regenerates Figure 11: the upstream
// cheats in the bandwidth experiment.
func BenchmarkFig11CheatBandwidth(b *testing.B) {
	ds := dataset(b)
	var res *experiments.BandwidthResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Bandwidth(ds, bandwidthOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.UpNeg), "truthful-upstream-median-ratio")
	b.ReportMetric(median(res.CheatUpNeg), "cheater-upstream-median-ratio")
	b.ReportMetric(median(res.DownNeg), "truthful-downstream-median-ratio")
	b.ReportMetric(median(res.CheatDownNeg), "cheated-downstream-median-ratio")
}

// BenchmarkExtraGainVsInterconnections regenerates the §5.1 textual
// analysis: ISPs with more interconnections gain more.
func BenchmarkExtraGainVsInterconnections(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	var few, many []float64
	for k, gains := range res.GainVsInterconnections {
		if k <= 3 {
			few = append(few, gains...)
		} else {
			many = append(many, gains...)
		}
	}
	b.ReportMetric(median(few), "median-%gain-(<=3-ix)")
	b.ReportMetric(median(many), "median-%gain-(>3-ix)")
}

// BenchmarkExtraFlowFraction regenerates the §5.1/§5.2 textual claim
// that only ~20% of flows need non-default routing.
func BenchmarkExtraFlowFraction(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*median(res.NonDefaultFraction), "%flows-moved-median")
}

// BenchmarkExtraGroupNegotiation regenerates the §5.1 group ablation:
// negotiating within separate groups loses part of the benefit.
func BenchmarkExtraGroupNegotiation(b *testing.B) {
	ds := dataset(b)
	var res *experiments.DistanceResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Distance(ds, distanceOpts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.PairGainNeg), "whole-table-median-%gain")
	b.ReportMetric(median(res.GroupGain4), "4-groups-median-%gain")
}

// BenchmarkExtraPreferenceRange regenerates the §5 textual claim that
// increasing the class range beyond [-10, 10] does not help.
func BenchmarkExtraPreferenceRange(b *testing.B) {
	ds := dataset(b)
	opt := distanceOpts
	opt.MaxPairs = 10
	var abl map[int]float64
	var err error
	for i := 0; i < b.N; i++ {
		if abl, err = experiments.PreferenceRangeAblation(ds, opt, []int{1, 3, 10, 50}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(abl[1], "P=1-median-%gain")
	b.ReportMetric(abl[3], "P=3-median-%gain")
	b.ReportMetric(abl[10], "P=10-median-%gain")
	b.ReportMetric(abl[50], "P=50-median-%gain")
}

// BenchmarkAblationScaleMode compares the cardinal-mapping scale modes
// called out in DESIGN.md: global (quantile) vs per-flow normalization.
func BenchmarkAblationScaleMode(b *testing.B) {
	ds := dataset(b)
	pairs := ds.DistancePairs()
	if len(pairs) > 10 {
		pairs = pairs[:10]
	}
	for _, mode := range []struct {
		name  string
		scale nexit.Scale
	}{{"global", nexit.ScaleGlobal}, {"per-flow", nexit.ScalePerFlow}} {
		b.Run(mode.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = 0
				for _, pair := range pairs {
					g := negotiatedGainWithScale(b, ds, pair, mode.scale)
					total += g
				}
			}
			b.ReportMetric(total/float64(len(pairs)), "mean-%gain")
		})
	}
}

// BenchmarkEngineThroughput measures the raw negotiation engine on one
// large pair (flows negotiated per second).
func BenchmarkEngineThroughput(b *testing.B) {
	ds := dataset(b)
	pairs := ds.DistancePairs()
	// Pick the pair with the most flows.
	best := pairs[0]
	bestFlows := 0
	for _, p := range pairs {
		if f := p.A.NumPoPs() * p.B.NumPoPs() * 2; f > bestFlows {
			best, bestFlows = p, f
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		negotiatedGainWithScale(b, ds, best, nexit.ScaleGlobal)
	}
	b.ReportMetric(float64(bestFlows), "flows-per-op")
}

// negotiatedGainWithScale runs one distance negotiation over a pair with
// the given cardinal scale mode and returns the total gain percentage.
func negotiatedGainWithScale(b *testing.B, ds *experiments.Dataset, pair *topology.Pair, scale nexit.Scale) float64 {
	b.Helper()
	s := pairsim.New(pair, ds.Cache)
	rev := s.Reverse()
	wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	evalA := nexit.NewDistanceEvaluator(s, nexit.SideA, 10)
	evalA.Scale = scale
	evalB := nexit.NewDistanceEvaluator(s, nexit.SideB, 10)
	evalB.Scale = scale
	res, err := nexit.Negotiate(nexit.DefaultDistanceConfig(), evalA, evalB, items, defaults, s.NumAlternatives())
	if err != nil {
		b.Fatal(err)
	}
	dist := func(assign []int) (t float64) {
		for i, it := range items {
			if it.Dir == nexit.AtoB {
				t += s.TotalDistKm(it.Flow, assign[i])
			} else {
				t += rev.TotalDistKm(it.Flow, assign[i])
			}
		}
		return t
	}
	return metrics.GainPercent(dist(defaults), dist(res.Assign))
}

// BenchmarkEvaluatorPrefs measures the evaluator hot path in isolation:
// steady-state Prefs calls (full preference-table recomputation for
// every item on the table) per metric on the dataset's largest pair.
// prefs/s counts preference rows (items) evaluated per second.
// ReportAllocs tracks the scratch-reuse contract (DESIGN.md §12): after
// the first call warms the evaluator's buffers, Prefs must not allocate,
// so allocs/op stays near zero. Tracked across PRs in BENCH_runner.json.
func BenchmarkEvaluatorPrefs(b *testing.B) {
	ds := dataset(b)
	pairs := ds.DistancePairs()
	best := pairs[0]
	bestFlows := 0
	for _, p := range pairs {
		if f := p.A.NumPoPs() * p.B.NumPoPs() * 2; f > bestFlows {
			best, bestFlows = p, f
		}
	}
	s := pairsim.New(best, ds.Cache)
	rev := s.Reverse()
	wAB := traffic.New(best.A, best.B, traffic.Identical, nil)
	wBA := traffic.New(best.B, best.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	nl := len(best.A.Links)
	ones := make([]float64, nl)
	for i := range ones {
		ones[i] = 1
	}
	for _, m := range []struct {
		name string
		eval nexit.Evaluator
	}{
		{"distance", nexit.NewDistanceEvaluator(s, nexit.SideA, 10)},
		{"bandwidth", nexit.NewBandwidthEvaluator(s, nexit.SideA, 10, make([]float64, nl), ones)},
		{"fortz-thorup", nexit.NewFortzThorupEvaluator(s, nexit.SideA, 10, make([]float64, nl), ones)},
	} {
		b.Run(m.name, func(b *testing.B) {
			m.eval.Prefs(items, defaults) // warm the evaluator scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prefs := m.eval.Prefs(items, defaults)
				if len(prefs) != len(items) {
					b.Fatalf("%d pref rows for %d items", len(prefs), len(items))
				}
			}
			b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds(), "prefs/s")
		})
	}
}

// BenchmarkGenerate measures dataset-format-v2 generation throughput
// (ISPs generated per second) on a 1000-ISP universe at 1, 2, and 8
// workers. Per-ISP streams make generation embarrassingly parallel:
// every worker count yields byte-identical output
// (TestGenerateParallelParity), so the spread between the worker counts
// is pure sharding speedup — near-linear on multi-core hardware, flat
// on a single-core runner. Tracked across PRs in BENCH_runner.json.
func BenchmarkGenerate(b *testing.B) {
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 1000
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				isps, err := gen.GenerateWorkers(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if len(isps) != cfg.NumISPs {
					b.Fatalf("generated %d ISPs, want %d", len(isps), cfg.NumISPs)
				}
			}
			b.ReportMetric(float64(cfg.NumISPs)*float64(b.N)/b.Elapsed().Seconds(), "isps/s")
		})
	}
}

// BenchmarkRunnerWorkers measures the concurrent pair-runner's
// experiment throughput (ISP pairs negotiated per second) at 1, 2, and
// GOMAXPROCS workers, so later PRs have a perf trajectory for the
// parallel layer. Every worker count produces identical results; only
// wall-clock changes.
func BenchmarkRunnerWorkers(b *testing.B) {
	ds := dataset(b)
	// Warm the shared routing-table cache so the benchmark measures
	// negotiation throughput, not one-time Dijkstra cost.
	if _, err := experiments.Distance(ds, distanceOpts); err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := distanceOpts
			opt.Workers = w
			pairs := 0
			for i := 0; i < b.N; i++ {
				res, err := experiments.Distance(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				pairs += res.Pairs
			}
			b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkRunnerStream measures the streaming pipeline's experiment
// throughput (pairs/s) at 1, 2, and GOMAXPROCS workers: the same
// Distance workload as BenchmarkRunnerWorkers, but delivered through
// DistanceStream into a constant-memory digest instead of a batch
// result — so the two benchmarks bracket the cost of the streaming
// path. ReportAllocs tracks that per-pair allocation stays flat.
// Tracked across PRs in BENCH_runner.json.
func BenchmarkRunnerStream(b *testing.B) {
	ds := dataset(b)
	ds.Warm(0) // measure negotiation throughput, not Dijkstra cold start
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := distanceOpts
			opt.Workers = w
			b.ReportAllocs()
			pairs := 0
			for i := 0; i < b.N; i++ {
				digest := stats.NewDigest()
				err := experiments.DistanceStream(ds, opt, func(_ int, r *experiments.DistancePairResult) error {
					digest.Add(r.GainNeg)
					pairs++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if digest.Stream.N() == 0 {
					b.Fatal("stream delivered nothing")
				}
			}
			b.ReportMetric(float64(pairs)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// BenchmarkMeshSessions measures the daemon layer's negotiation
// throughput: a 14-ISP all-pairs mesh of agentd daemons (17 pairs, 4
// epochs = 68 wire sessions per iteration) at 1, 2, and GOMAXPROCS
// concurrent sessions per agent. sessions/s is computed over the
// negotiation window only (daemon startup and Dijkstra cold start
// excluded); every bound produces identical pair outcomes, only
// wall-clock changes. Tracked across PRs in BENCH_runner.json alongside
// BenchmarkRunnerWorkers.
func BenchmarkMeshSessions(b *testing.B) {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var sessions int64
			var window time.Duration
			for i := 0; i < b.N; i++ {
				res, err := mesh.Run(mesh.Options{
					NumISPs:  14,
					Seed:     1,
					Epochs:   4,
					Sessions: w,
					Timeout:  30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				sessions += res.Sessions
				window += res.Elapsed
			}
			b.ReportMetric(float64(sessions)/window.Seconds(), "sessions/s")
		})
	}
}

// BenchmarkWireSession measures one wire session end to end over an
// in-memory pipe: a single initiator/responder pair renegotiating the
// same distance table, connection reused across sessions exactly as the
// daemons reuse theirs. It isolates the protocol hot path — framing,
// codec, batched proposals, per-session state — from the mesh
// scheduler, so allocs/op here is the wire layer's own budget (tracked
// in BENCH_runner.json; the buffer-reuse contract is DESIGN.md §9).
func BenchmarkWireSession(b *testing.B) {
	ds := dataset(b)
	pair := ds.DistancePairs()[0]
	s := pairsim.New(pair, ds.Cache)
	rev := s.Reverse()
	wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	numAlts := s.NumAlternatives()

	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	cA, cB := nexitwire.NewConn(connA), nexitwire.NewConn(connB)

	// Distance evaluators are stateless across sessions, so both sides
	// reuse one — the same shape as a daemon pair with cached
	// controllers.
	resp := &nexitwire.Responder{
		Name:     "agent-b",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  30 * time.Second,
	}
	ini := &nexitwire.Initiator{
		Name:    "agent-a",
		Cfg:     nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 30 * time.Second,
	}

	b.ReportAllocs()
	b.ResetTimer()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < b.N; i++ {
			hello, err := nexitwire.AcceptHelloConn(cB, 30*time.Second)
			if err != nil {
				done <- err
				return
			}
			if _, err := resp.ServeSessionConn(cB, hello); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < b.N; i++ {
		if _, err := ini.RunConn(cA, items, defaults, numAlts); err != nil {
			b.Fatalf("initiator: %v", err)
		}
	}
	if err := <-done; err != nil {
		b.Fatalf("responder: %v", err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/s")
}

// BenchmarkSeekEpochFromSnapshot measures crash recovery at the
// controller layer: fast-forwarding a fresh controller to epoch 200
// by full deterministic replay (SeekEpoch) versus restoring the newest
// on-disk snapshot and replaying only the tail (SeekEpochFrom,
// DESIGN.md §11). The store holds snapshots every 20 epochs up to 180,
// so the snapshot path decodes one file and replays 20 epochs where
// the full path replays 200 — recovery cost is O(epochs since the
// last snapshot), not O(controller lifetime). The acceptance bar is
// from-snapshot ≥5× the full-replay seeks/s; tracked across PRs in
// BENCH_runner.json.
func BenchmarkSeekEpochFromSnapshot(b *testing.B) {
	const (
		target   = 200
		interval = 20
		newest   = 180
	)
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	cfg.Seed = 1
	isps, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		b.Fatal("no pairs")
	}
	sys := pairsim.New(pairs[0], nil)
	wl := func(epoch int) (*traffic.Workload, *traffic.Workload) {
		baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
		baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
		rng := runner.PairRand(1, epoch)
		return continuous.Drift(baseAB, 0.25, rng), continuous.Drift(baseBA, 0.25, rng)
	}

	// A lived controller runs to the target, persisting a snapshot every
	// interval epochs but none past the newest — exactly the on-disk
	// state a daemon killed shortly before epoch 200 leaves behind.
	store, err := snapshot.NewStore(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	lived := continuous.New(sys, 10)
	for epoch := 0; epoch < target; epoch++ {
		if _, err := lived.Epoch(wl(epoch)); err != nil {
			b.Fatal(err)
		}
		if idx := lived.EpochIndex(); idx%interval == 0 && idx <= newest {
			if err := store.Save("bench", lived.Snapshot()); err != nil {
				b.Fatal(err)
			}
		}
	}
	src := store.Peer("bench")

	// Both recovery paths must land on the lived controller's exact
	// state before their cost is worth comparing.
	full := continuous.New(sys, 10)
	if err := full.SeekEpoch(target, wl); err != nil {
		b.Fatal(err)
	}
	fast := continuous.New(sys, 10)
	if restored, err := fast.SeekEpochFrom(target, wl, src); err != nil {
		b.Fatal(err)
	} else if restored != newest {
		b.Fatalf("restored from epoch %d, want %d", restored, newest)
	}
	if want := lived.Snapshot(); !reflect.DeepEqual(full.Snapshot(), want) ||
		!reflect.DeepEqual(fast.Snapshot(), want) {
		b.Fatal("recovery paths diverged from the lived controller")
	}

	b.Run("full-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := continuous.New(sys, 10)
			if err := c.SeekEpoch(target, wl); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "seeks/s")
	})
	b.Run("from-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := continuous.New(sys, 10)
			if restored, err := c.SeekEpochFrom(target, wl, src); err != nil {
				b.Fatal(err)
			} else if restored != newest {
				b.Fatalf("restored from epoch %d, want %d", restored, newest)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "seeks/s")
	})
}

// BenchmarkExtraScalability regenerates the §6 claim that negotiating
// only the biggest flows retains most of the benefit.
func BenchmarkExtraScalability(b *testing.B) {
	ds := dataset(b)
	opt := distanceOpts
	opt.MaxPairs = 10
	var res *experiments.ScalabilityResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Scalability(ds, opt, []float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.FlowShare[0], "%flows-for-half-the-traffic")
	b.ReportMetric(100*res.GainShare[0], "%gain-retained-at-half-traffic")
}

// BenchmarkExtraDestinationBased regenerates footnote 2: negotiation
// works under destination-based routing too.
func BenchmarkExtraDestinationBased(b *testing.B) {
	ds := dataset(b)
	opt := distanceOpts
	opt.MaxPairs = 10
	var res *experiments.DestinationResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.DestinationBased(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(median(res.GainSrcDst), "src-dst-median-%gain")
	b.ReportMetric(median(res.GainDstOnly), "dst-only-median-%gain")
}

// BenchmarkExtraStability regenerates the motivation-section analysis:
// how often reactive unilateral routing enters a cycle of influence
// after a failure, versus negotiation which terminates by construction.
func BenchmarkExtraStability(b *testing.B) {
	ds := dataset(b)
	opt := experiments.BandwidthOptions{
		Options:     experiments.Options{MaxPairs: 6, Seed: 1},
		Workload:    traffic.Gravity,
		MaxFailures: 24,
	}
	var res *experiments.StabilityResult
	var err error
	for i := 0; i < b.N; i++ {
		if res, err = experiments.Stability(ds, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*float64(res.Oscillated)/float64(res.FailureCases), "%cases-oscillating")
	b.ReportMetric(median(res.ReactiveWorst), "reactive-worst-MEL-median")
	b.ReportMetric(median(res.NegotiatedWorst), "negotiated-worst-MEL-median")
}

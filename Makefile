# Convenience targets mirroring CI (.github/workflows/ci.yml).

.PHONY: test smoke bench

# Tier-1 verification: build plus the full race-enabled test suite.
test:
	go build ./...
	go test -race -timeout 20m ./...

# CI's mesh-smoke job: the daemon path end to end, including the
# fault-injection / epoch-resync recovery variants (replay and
# snapshot-based) and a short snapshot-decode fuzz burst.
smoke:
	go test -short -race -run 'TestMeshMatchesSerial/distance|TestMeshOverTCP|TestMeshNeighborGraph|TestMeshRecovery' ./internal/mesh/...
	go test -short -race -run 'TestMeshMatchesSerial/bandwidth' ./internal/mesh/...
	go test -run '^$$' -fuzz 'FuzzSnapshotDecode' -fuzztime 20s ./internal/snapshot/

# Regenerate BENCH_runner.json the way its comment describes and append
# a PR-tagged history entry: make bench PR=4
bench:
	./scripts/bench.sh $(PR)

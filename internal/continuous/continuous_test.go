package continuous

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func testSystem(t *testing.T) *pairsim.System {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	return pairsim.New(pairs[0], nil)
}

func TestControllerEpochs(t *testing.T) {
	sys := testSystem(t)
	c := New(sys, 10)
	rng := rand.New(rand.NewSource(3))
	baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)

	var lastApplied float64
	for epoch := 0; epoch < 6; epoch++ {
		wAB := Drift(baseAB, 0.3, rng)
		wBA := Drift(baseBA, 0.3, rng)
		rep, err := c.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Epoch != epoch {
			t.Errorf("epoch counter = %d, want %d", rep.Epoch, epoch)
		}
		if rep.Observed != len(wAB.Flows)+len(wBA.Flows) {
			t.Errorf("observed %d flows, want %d", rep.Observed, len(wAB.Flows)+len(wBA.Flows))
		}
		// Applied routing is never worse than pure early-exit.
		if rep.DistanceApplied > rep.DistanceDefault*1.0001 {
			t.Errorf("epoch %d: applied distance %.0f exceeds default %.0f",
				epoch, rep.DistanceApplied, rep.DistanceDefault)
		}
		lastApplied = rep.DistanceApplied
		if epoch == 0 && rep.Negotiated != 0 {
			t.Errorf("epoch 0 negotiated %d flows before stability window", rep.Negotiated)
		}
		if epoch >= 2 && rep.Negotiated == 0 {
			t.Errorf("epoch %d: registry never promoted flows", epoch)
		}
	}
	if lastApplied == 0 {
		t.Error("no distance accounted")
	}
}

func TestControllerImprovesSteadyState(t *testing.T) {
	sys := testSystem(t)
	c := New(sys, 10)
	wAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	wBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
	var first, last *EpochReport
	for epoch := 0; epoch < 4; epoch++ {
		rep, err := c.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			first = rep
		}
		last = rep
	}
	if first.DistanceApplied != first.DistanceDefault {
		t.Error("before any negotiation the applied routing should equal early-exit")
	}
	if last.DistanceApplied >= last.DistanceDefault {
		t.Errorf("steady state: applied %.0f not better than default %.0f",
			last.DistanceApplied, last.DistanceDefault)
	}
}

// TestMetricEpochsDeterministic runs every supported metric through
// several drifting epochs twice and requires identical trajectories —
// the determinism the wire parity tests build on — plus real
// negotiation once the registry warms up.
func TestMetricEpochsDeterministic(t *testing.T) {
	sys := testSystem(t)
	for _, metric := range Metrics() {
		t.Run(string(metric), func(t *testing.T) {
			run := func() []*EpochReport {
				c, err := NewWithMetric(sys, 10, metric)
				if err != nil {
					t.Fatal(err)
				}
				if c.Metric != metric {
					t.Fatalf("controller metric = %q, want %q", c.Metric, metric)
				}
				rng := rand.New(rand.NewSource(7))
				baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
				baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
				var reps []*EpochReport
				for epoch := 0; epoch < 5; epoch++ {
					rep, err := c.Epoch(Drift(baseAB, 0.3, rng), Drift(baseBA, 0.3, rng))
					if err != nil {
						t.Fatal(err)
					}
					reps = append(reps, rep)
				}
				return reps
			}
			first, second := run(), run()
			negotiated := false
			for e := range first {
				if !reflect.DeepEqual(first[e], second[e]) {
					t.Errorf("epoch %d not deterministic:\n  %+v\n  %+v", e, first[e], second[e])
				}
				if first[e].Negotiated > 0 {
					negotiated = true
				}
			}
			if !negotiated {
				t.Error("registry never promoted a flow; the metric was not exercised")
			}
		})
	}
}

// epochWorkloads is a deterministic per-epoch workload source: the
// drift stream is keyed by the epoch index alone, as SeekEpoch's replay
// contract requires.
func epochWorkloads(sys *pairsim.System) WorkloadFunc {
	baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
	return func(epoch int) (*traffic.Workload, *traffic.Workload) {
		rng := rand.New(rand.NewSource(int64(epoch)*2654435761 + 11))
		return Drift(baseAB, 0.3, rng), Drift(baseBA, 0.3, rng)
	}
}

// TestSeekEpochReplaysExactly is the fast-forward rule: a fresh
// controller sought to epoch k must be indistinguishable — report for
// report — from one that lived through epochs 0..k-1, for every metric.
func TestSeekEpochReplaysExactly(t *testing.T) {
	sys := testSystem(t)
	for _, metric := range Metrics() {
		t.Run(string(metric), func(t *testing.T) {
			wl := epochWorkloads(sys)
			const seek, total = 3, 6

			lived, err := NewWithMetric(sys, 10, metric)
			if err != nil {
				t.Fatal(err)
			}
			var want []*EpochReport
			for epoch := 0; epoch < total; epoch++ {
				rep, err := lived.Epoch(wl(epoch))
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, rep)
			}

			sought, err := NewWithMetric(sys, 10, metric)
			if err != nil {
				t.Fatal(err)
			}
			if err := sought.SeekEpoch(seek, wl); err != nil {
				t.Fatal(err)
			}
			if got := sought.EpochIndex(); got != seek {
				t.Fatalf("sought controller is at epoch %d, want %d", got, seek)
			}
			// Everything after the seek point must match the lived-through
			// controller exactly: registry, ledger, and applied state were
			// reconstructed, not just the counter.
			for epoch := seek; epoch < total; epoch++ {
				rep, err := sought.Epoch(wl(epoch))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rep, want[epoch]) {
					t.Errorf("epoch %d after seek diverged:\n  sought %+v\n  lived  %+v", epoch, rep, want[epoch])
				}
			}
			if sought.Ledger.Balance != lived.Ledger.Balance {
				t.Errorf("ledger balance %d after seek, lived-through %d", sought.Ledger.Balance, lived.Ledger.Balance)
			}
		})
	}
}

// TestSeekEpochGuards pins the edges: seeking to the current epoch is a
// no-op, seeking backwards is an error, and a seek never leaves a
// Negotiate hook clobbered.
func TestSeekEpochGuards(t *testing.T) {
	sys := testSystem(t)
	c := New(sys, 10)
	wl := epochWorkloads(sys)
	if err := c.SeekEpoch(0, wl); err != nil || c.EpochIndex() != 0 {
		t.Errorf("seek to current epoch: err=%v, index=%d", err, c.EpochIndex())
	}
	marker := func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
		t.Error("SeekEpoch replay invoked the wire negotiator")
		return nil, nil
	}
	c.Negotiate = marker
	if err := c.SeekEpoch(2, wl); err != nil {
		t.Fatal(err)
	}
	if c.EpochIndex() != 2 {
		t.Errorf("seek stopped at epoch %d, want 2", c.EpochIndex())
	}
	if c.Negotiate == nil {
		t.Error("SeekEpoch cleared the Negotiate hook instead of restoring it")
	}
	if err := c.SeekEpoch(1, wl); err == nil {
		t.Error("seek backwards succeeded")
	}
}

// TestMetricConfig pins the per-metric engine configuration and the
// metric name round-trip.
func TestMetricConfig(t *testing.T) {
	sys := testSystem(t)
	for _, tc := range []struct {
		metric   Metric
		reassign float64
	}{
		{MetricDistance, 0},
		{MetricBandwidth, 0.05},
		{MetricFortzThorup, 0.05},
	} {
		c, err := NewWithMetric(sys, 10, tc.metric)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cfg.ReassignFraction != tc.reassign {
			t.Errorf("%s: ReassignFraction = %v, want %v", tc.metric, c.Cfg.ReassignFraction, tc.reassign)
		}
		if got, err := ParseMetric(string(tc.metric)); err != nil || got != tc.metric {
			t.Errorf("ParseMetric(%q) = %q, %v", tc.metric, got, err)
		}
	}
	if m, err := ParseMetric(""); err != nil || m != MetricDistance {
		t.Errorf("ParseMetric(\"\") = %q, %v; want distance", m, err)
	}
	if _, err := ParseMetric("latency"); err == nil {
		t.Error("ParseMetric accepted an unknown metric")
	}
	if New(sys, 10).Metric != MetricDistance {
		t.Error("New did not default to the distance metric")
	}
}

func TestDrift(t *testing.T) {
	sys := testSystem(t)
	w := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Identical, nil)
	rng := rand.New(rand.NewSource(1))
	d := Drift(w, 0.5, rng)
	if len(d.Flows) != len(w.Flows) {
		t.Fatal("drift changed flow count")
	}
	changed := 0
	for i := range d.Flows {
		if d.Flows[i].Size != w.Flows[i].Size {
			changed++
		}
		if d.Flows[i].Size <= 0 {
			t.Error("drift produced non-positive size")
		}
		if d.Flows[i].Src != w.Flows[i].Src || d.Flows[i].Dst != w.Flows[i].Dst {
			t.Error("drift changed endpoints")
		}
	}
	if changed == 0 {
		t.Error("drift changed nothing")
	}
	// Original untouched.
	if w.Flows[0].Size != 1 {
		t.Error("drift mutated the input workload")
	}
}

// TestCapacityCacheShared pins the shared base-capacity path: both
// endpoints of a pair (and a "restarted" controller) draw the exact
// capacity vector instances from one cache, concurrent construction is
// exactly-once (run under -race), and cached controllers negotiate
// identically to uncached ones.
func TestCapacityCacheShared(t *testing.T) {
	sys := testSystem(t)
	caps := NewCapacityCache()

	// Race many controller constructions on the same pair.
	ctls := make([]*Controller, 8)
	var wg sync.WaitGroup
	for g := range ctls {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := NewWithMetricShared(pairsim.New(sys.Pair, nil), 10, MetricBandwidth, caps)
			if err != nil {
				t.Error(err)
				return
			}
			ctls[g] = c
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(ctls); g++ {
		if &ctls[g].capA[0] != &ctls[0].capA[0] || &ctls[g].capB[0] != &ctls[0].capB[0] {
			t.Fatalf("controller %d derived its own capacity vectors; cache not shared", g)
		}
	}

	// Cached == uncached, vector by vector and epoch by epoch.
	plain, err := NewWithMetric(sys, 10, MetricBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.capA, ctls[0].capA) || !reflect.DeepEqual(plain.capB, ctls[0].capB) {
		t.Fatal("cached capacities differ from uncached")
	}
	wAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	wBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
	for epoch := 0; epoch < 3; epoch++ {
		a, err := plain.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ctls[0].Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d: cached controller diverged from uncached", epoch)
		}
	}

	// Distance controllers don't touch the cache (no capacities).
	if c, err := NewWithMetricShared(sys, 10, MetricDistance, caps); err != nil || c.capA != nil {
		t.Fatalf("distance controller built capacities (err=%v)", err)
	}
}

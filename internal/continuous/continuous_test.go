package continuous

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func testSystem(t *testing.T) *pairsim.System {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	return pairsim.New(pairs[0], nil)
}

func TestControllerEpochs(t *testing.T) {
	sys := testSystem(t)
	c := New(sys, 10)
	rng := rand.New(rand.NewSource(3))
	baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)

	var lastApplied float64
	for epoch := 0; epoch < 6; epoch++ {
		wAB := Drift(baseAB, 0.3, rng)
		wBA := Drift(baseBA, 0.3, rng)
		rep, err := c.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Epoch != epoch {
			t.Errorf("epoch counter = %d, want %d", rep.Epoch, epoch)
		}
		if rep.Observed != len(wAB.Flows)+len(wBA.Flows) {
			t.Errorf("observed %d flows, want %d", rep.Observed, len(wAB.Flows)+len(wBA.Flows))
		}
		// Applied routing is never worse than pure early-exit.
		if rep.DistanceApplied > rep.DistanceDefault*1.0001 {
			t.Errorf("epoch %d: applied distance %.0f exceeds default %.0f",
				epoch, rep.DistanceApplied, rep.DistanceDefault)
		}
		lastApplied = rep.DistanceApplied
		if epoch == 0 && rep.Negotiated != 0 {
			t.Errorf("epoch 0 negotiated %d flows before stability window", rep.Negotiated)
		}
		if epoch >= 2 && rep.Negotiated == 0 {
			t.Errorf("epoch %d: registry never promoted flows", epoch)
		}
	}
	if lastApplied == 0 {
		t.Error("no distance accounted")
	}
}

func TestControllerImprovesSteadyState(t *testing.T) {
	sys := testSystem(t)
	c := New(sys, 10)
	wAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	wBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
	var first, last *EpochReport
	for epoch := 0; epoch < 4; epoch++ {
		rep, err := c.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			first = rep
		}
		last = rep
	}
	if first.DistanceApplied != first.DistanceDefault {
		t.Error("before any negotiation the applied routing should equal early-exit")
	}
	if last.DistanceApplied >= last.DistanceDefault {
		t.Errorf("steady state: applied %.0f not better than default %.0f",
			last.DistanceApplied, last.DistanceDefault)
	}
}

func TestDrift(t *testing.T) {
	sys := testSystem(t)
	w := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Identical, nil)
	rng := rand.New(rand.NewSource(1))
	d := Drift(w, 0.5, rng)
	if len(d.Flows) != len(w.Flows) {
		t.Fatal("drift changed flow count")
	}
	changed := 0
	for i := range d.Flows {
		if d.Flows[i].Size != w.Flows[i].Size {
			changed++
		}
		if d.Flows[i].Size <= 0 {
			t.Error("drift produced non-positive size")
		}
		if d.Flows[i].Src != w.Flows[i].Src || d.Flows[i].Dst != w.Flows[i].Dst {
			t.Error("drift changed endpoints")
		}
	}
	if changed == 0 {
		t.Error("drift changed nothing")
	}
	// Original untouched.
	if w.Flows[0].Size != 1 {
		t.Error("drift mutated the input workload")
	}
}

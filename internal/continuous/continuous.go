// Package continuous implements the paper's §6 deployment model of
// negotiation as an ongoing process rather than a one-shot event: "ISPs
// inform each other of their updated preferences for each flow being
// exchanged. These would be used to continually find routing patterns
// that benefit both ISPs."
//
// A Controller manages one ISP pair across epochs. Each epoch it
// observes the (drifting) traffic through a flow registry (internal/
// flowid), selects the stable, negotiable flows, renegotiates them with
// fresh preferences, applies the outcome, and settles the credit ledger
// (internal/credits) so lopsided epochs are repaid later.
package continuous

import (
	"fmt"
	"math/rand"

	"repro/internal/credits"
	"repro/internal/flowid"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

// Negotiator runs one epoch's negotiation session over an assembled
// table. cfg is the ledger-adjusted configuration for this epoch; items,
// defaults, and numAlts define the universe exactly as for
// nexit.Negotiate. The result's GainA/GainB must be oriented like the
// controller's system (GainA is Sys.Pair.A's gain).
type Negotiator func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error)

// Controller drives continuous negotiation for one pair.
type Controller struct {
	Sys *pairsim.System
	Rev *pairsim.System
	Cfg nexit.Config
	// P is the preference class bound used by the evaluators.
	P int
	// Registry tracks flow stability; only promoted flows are
	// renegotiated ("in the interest of stability").
	Registry *flowid.Registry
	// Ledger carries gain imbalances across epochs.
	Ledger *credits.Ledger

	// Negotiate, when non-nil, replaces the in-process engine call for
	// each epoch: agentd points it at a nexitwire session so the other
	// ISP's preferences come from a remote evaluator instead of a local
	// one. It is invoked even for an empty table, so two daemons driving
	// the same pair stay in epoch lockstep (the empty session doubles as
	// a heartbeat). Nil negotiates in-process with both sides' distance
	// evaluators, as the simulations do.
	Negotiate Negotiator

	// applied is the currently installed interconnection per flow key.
	applied map[key]int
	epoch   int
}

// key identifies a flow across epochs.
type key struct {
	dir      nexit.Direction
	src, dst int
}

// EpochReport summarizes one controller epoch.
type EpochReport struct {
	Epoch           int
	Observed        int // flows seen this epoch
	Negotiated      int // flows on the table
	Moved           int // flows whose interconnection changed
	Expired         int // flows timed out of the registry
	DistanceDefault float64
	DistanceApplied float64
	GainA, GainB    int
	LedgerBalance   int
	// Assign is the negotiated table's assignment for this epoch (one
	// interconnection index per negotiated item, in table order); nil
	// when nothing reached the table. The mesh harness compares it
	// pair-by-pair against the serial reference.
	Assign []int
}

// New builds a controller with the paper's §5.1 defaults.
func New(sys *pairsim.System, p int) *Controller {
	cfg := nexit.DefaultDistanceConfig()
	cfg.PrefBound = p
	return &Controller{
		Sys:      sys,
		Rev:      sys.Reverse(),
		Cfg:      cfg,
		P:        p,
		Registry: flowid.NewRegistry(0.5, 1, 3),
		Ledger:   credits.NewLedger(2 * p),
		applied:  make(map[key]int),
	}
}

// Epoch processes one epoch's workloads (both directions) and returns
// the report. The controller observes every flow, negotiates the stable
// ones, and leaves the rest on their current (or early-exit) path.
func (c *Controller) Epoch(wAB, wBA *traffic.Workload) (*EpochReport, error) {
	rep := &EpochReport{Epoch: c.epoch}

	// 1. Observe traffic; the registry decides which flows are stable
	// enough to negotiate.
	type obs struct {
		k    key
		flow traffic.Flow
		sig  flowid.Signature
	}
	var all []obs
	record := func(f traffic.Flow, dir nexit.Direction) {
		k := key{dir: dir, src: f.Src, dst: f.Dst}
		sig := flowid.Signature{
			Src:     flowid.Prefix{Addr: uint32(f.Src) << 16, Bits: 16},
			Dst:     flowid.Prefix{Addr: 0x80000000 | uint32(f.Dst)<<16, Bits: 16},
			Ingress: uint64(dir)<<32 | uint64(f.Src)<<16 | uint64(f.Dst),
		}
		c.Registry.Observe(sig, f.Size, c.epoch)
		all = append(all, obs{k: k, flow: f, sig: sig})
	}
	for _, f := range wAB.Flows {
		record(f, nexit.AtoB)
	}
	for _, f := range wBA.Flows {
		record(f, nexit.BtoA)
	}
	rep.Observed = len(all)
	rep.Expired = len(c.Registry.Expire(c.epoch))

	// 2. Build the negotiation table from the stable flows.
	negotiable := make(map[flowid.Signature]bool)
	for _, fi := range c.Registry.Negotiable() {
		negotiable[fi.Sig] = true
	}
	var items []nexit.Item
	var defaults []int
	var keys []key
	for _, o := range all {
		if !negotiable[o.sig] {
			continue
		}
		f := o.flow
		f.ID = len(items)
		items = append(items, nexit.Item{ID: f.ID, Flow: f, Dir: o.k.dir})
		defaults = append(defaults, c.currentChoice(o.k, f))
		keys = append(keys, o.k)
	}
	rep.Negotiated = len(items)

	// 3. Negotiate with the ledger-adjusted configuration. A remote
	// Negotiator runs even over an empty table (epoch lockstep); the
	// in-process default skips the no-op session.
	if len(items) > 0 || c.Negotiate != nil {
		cfg := c.Ledger.Apply(c.Cfg)
		negotiate := c.Negotiate
		if negotiate == nil {
			negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
				evalA := nexit.NewDistanceEvaluator(c.Sys, nexit.SideA, c.P)
				evalB := nexit.NewDistanceEvaluator(c.Sys, nexit.SideB, c.P)
				return nexit.Negotiate(cfg, evalA, evalB, items, defaults, numAlts)
			}
		}
		res, err := negotiate(cfg, items, defaults, c.Sys.NumAlternatives())
		if err != nil {
			return nil, fmt.Errorf("continuous: epoch %d: %w", c.epoch, err)
		}
		if len(res.Assign) != len(items) {
			return nil, fmt.Errorf("continuous: epoch %d: negotiator returned %d assignments for %d items",
				c.epoch, len(res.Assign), len(items))
		}
		if len(items) > 0 {
			c.Ledger.Settle(c.epoch, res)
			rep.Assign = append([]int(nil), res.Assign...)
		}
		rep.GainA, rep.GainB = res.GainA, res.GainB
		for i, k := range keys {
			if res.Assign[i] != defaults[i] {
				rep.Moved++
			}
			c.applied[k] = res.Assign[i]
		}
	}
	rep.LedgerBalance = c.Ledger.Balance

	// 4. Account the epoch: distance under pure early-exit vs under the
	// applied assignments.
	for _, o := range all {
		f := o.flow
		sys := c.Sys
		if o.k.dir == nexit.BtoA {
			sys = c.Rev
		}
		rep.DistanceDefault += sys.TotalDistKm(f, sys.EarlyExit(f))
		rep.DistanceApplied += sys.TotalDistKm(f, c.currentChoice(o.k, f))
	}
	c.epoch++
	return rep, nil
}

// EpochIndex returns the number of epochs processed so far (the index
// the next Epoch call will report).
func (c *Controller) EpochIndex() int { return c.epoch }

// currentChoice returns the installed interconnection for a flow, or its
// early-exit default when it has never been negotiated.
func (c *Controller) currentChoice(k key, f traffic.Flow) int {
	if alt, ok := c.applied[k]; ok {
		return alt
	}
	if k.dir == nexit.AtoB {
		return c.Sys.EarlyExit(f)
	}
	return c.Rev.EarlyExit(f)
}

// Drift returns a copy of the workload with flow sizes perturbed
// multiplicatively by up to ±volatility — the "changes to traffic
// matrices" of §5.2/§6 that keep renegotiation necessary.
func Drift(w *traffic.Workload, volatility float64, rng *rand.Rand) *traffic.Workload {
	out := &traffic.Workload{Upstream: w.Upstream, Downstream: w.Downstream}
	out.Flows = append([]traffic.Flow(nil), w.Flows...)
	for i := range out.Flows {
		f := 1 + (rng.Float64()*2-1)*volatility
		if f < 0.05 {
			f = 0.05
		}
		out.Flows[i].Size *= f
	}
	return out
}

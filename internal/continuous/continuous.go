// Package continuous implements the paper's §6 deployment model of
// negotiation as an ongoing process rather than a one-shot event: "ISPs
// inform each other of their updated preferences for each flow being
// exchanged. These would be used to continually find routing patterns
// that benefit both ISPs."
//
// A Controller manages one ISP pair across epochs. Each epoch it
// observes the (drifting) traffic through a flow registry (internal/
// flowid), selects the stable, negotiable flows, renegotiates them with
// fresh preferences, applies the outcome, and settles the credit ledger
// (internal/credits) so lopsided epochs are repaid later.
//
// The controller is metric-generic: the epoch's negotiation objective
// is a named Metric (distance, bandwidth, Fortz–Thorup), and
// NewEvaluator supplies the matching evaluator for either protocol
// side, reset to a clean slate at the start of every epoch. Invariants
// the daemon layer builds
// on: epochs are deterministic in (system, metric, workloads) — no
// hidden RNG, no wall-clock — and an epoch that errors does not
// advance, so both endpoints of a wire pair stay in lockstep; a
// concurrent wire run must therefore reproduce the serial in-process
// reference exactly, per metric (the mesh harness pins this).
package continuous

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/baseline"
	"repro/internal/capacity"
	"repro/internal/credits"
	"repro/internal/flowid"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

// Metric names a negotiation objective the controller can drive — one
// of the paper's §5 preference metrics. The name is the identity that
// travels in the nexitwire Hello, so two daemons configured for
// different objectives reject each other at session open instead of
// silently negotiating over incomparable preferences.
type Metric string

// Supported metrics.
const (
	// MetricDistance is the §5.1 objective: the distance a flow travels
	// inside the ISP's own network, shorter is better.
	MetricDistance Metric = "distance"
	// MetricBandwidth is the §5.2 objective: the maximum increase in
	// link load (relative to capacity) along the flow's own-network
	// path, with preference reassignment after each 5% of traffic.
	MetricBandwidth Metric = "bandwidth"
	// MetricFortzThorup is the paper's alternate bandwidth objective:
	// the increase in total piecewise-linear Fortz–Thorup link cost.
	MetricFortzThorup Metric = "fortz-thorup"
)

// Metrics lists every supported metric in canonical order.
func Metrics() []Metric {
	return []Metric{MetricDistance, MetricBandwidth, MetricFortzThorup}
}

// ParseMetric resolves a metric name as used by CLI flags and wire
// Hellos. The empty string selects MetricDistance, the paper's primary
// objective.
func ParseMetric(s string) (Metric, error) {
	switch Metric(s) {
	case "", MetricDistance:
		return MetricDistance, nil
	case MetricBandwidth:
		return MetricBandwidth, nil
	case MetricFortzThorup:
		return MetricFortzThorup, nil
	}
	return "", fmt.Errorf("continuous: unknown metric %q (have %v)", s, Metrics())
}

// WorkloadFunc supplies the two directional workloads of one epoch, in
// the pair's A->B orientation. It must be deterministic in the epoch
// index alone — no scheduling, no wall clock — which is what makes
// SeekEpoch's local replay reconstruct state exactly.
type WorkloadFunc func(epoch int) (wAB, wBA *traffic.Workload)

// Negotiator runs one epoch's negotiation session over an assembled
// table. cfg is the ledger-adjusted configuration for this epoch; items,
// defaults, and numAlts define the universe exactly as for
// nexit.Negotiate. The result's GainA/GainB must be oriented like the
// controller's system (GainA is Sys.Pair.A's gain).
type Negotiator func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error)

// Controller drives continuous negotiation for one pair.
type Controller struct {
	Sys *pairsim.System
	Rev *pairsim.System
	Cfg nexit.Config
	// P is the preference class bound used by the evaluators.
	P int
	// Metric is the pair's negotiation objective; NewEvaluator builds
	// its evaluators. Set by New (distance) or NewWithMetric.
	Metric Metric
	// Registry tracks flow stability; only promoted flows are
	// renegotiated ("in the interest of stability").
	Registry *flowid.Registry
	// Ledger carries gain imbalances across epochs.
	Ledger *credits.Ledger

	// Negotiate, when non-nil, replaces the in-process engine call for
	// each epoch: agentd points it at a nexitwire session so the other
	// ISP's preferences come from a remote evaluator instead of a local
	// one. It is invoked even for an empty table, so two daemons driving
	// the same pair stay in epoch lockstep (the empty session doubles as
	// a heartbeat). Nil negotiates in-process with both sides' metric
	// evaluators (NewEvaluator), as the simulations do.
	Negotiate Negotiator

	// applied is the currently installed interconnection per flow key.
	applied map[key]int
	epoch   int

	// capA and capB are the per-link capacities of each ISP's own
	// network (A's links, B's links), derived once from the pair's base
	// undrifted traffic under early-exit routing — the §5.2 "capacity
	// proportional to steady-state load" rule. Only the load-based
	// metrics use them; both endpoints of a wire pair derive the same
	// vectors because they depend on the system alone.
	capA, capB []float64

	// evalA and evalB cache the per-side evaluators across epochs.
	// Sessions are serialized per controller (the daemon layer holds its
	// pair lock across each epoch; simulations run epochs sequentially),
	// and the stateful evaluators reset to their pre-session loads
	// between uses, so reuse is observationally identical to building
	// fresh ones — it only drops the per-epoch view/scratch rebuild from
	// the session hot path (DESIGN.md §9).
	evalA, evalB nexit.Evaluator

	// Per-epoch scratch reused across Epoch calls under the same
	// serialization guarantee. The engine and wire layer never retain
	// these past the epoch's session.
	obsScratch      []obs
	negotiableSet   map[flowid.Signature]bool
	itemsScratch    []nexit.Item
	defaultsScratch []int
	keysScratch     []key
}

// obs is one observed flow of an epoch (see Epoch step 1).
type obs struct {
	k    key
	flow traffic.Flow
	sig  flowid.Signature
}

// key identifies a flow across epochs.
type key struct {
	dir      nexit.Direction
	src, dst int
}

// EpochReport summarizes one controller epoch.
type EpochReport struct {
	Epoch           int
	Observed        int // flows seen this epoch
	Negotiated      int // flows on the table
	Moved           int // flows whose interconnection changed
	Expired         int // flows timed out of the registry
	DistanceDefault float64
	DistanceApplied float64
	GainA, GainB    int
	LedgerBalance   int
	// Assign is the negotiated table's assignment for this epoch (one
	// interconnection index per negotiated item, in table order); nil
	// when nothing reached the table. The mesh harness compares it
	// pair-by-pair against the serial reference.
	Assign []int
}

// New builds a distance-metric controller with the paper's §5.1
// defaults. It is NewWithMetric(sys, p, MetricDistance).
func New(sys *pairsim.System, p int) *Controller {
	c, err := NewWithMetric(sys, p, MetricDistance)
	if err != nil {
		panic(err) // unreachable: distance always constructs
	}
	return c
}

// CapacityCache memoizes the base capacities load-based metrics derive
// from a pair's steady state, so the many controllers sharing a pair —
// both endpoints of every wire pair, every agent restart — reuse one
// computation instead of rebuilding it per controller. It is safe for
// concurrent use in the same way as pairsim.TableCache: a sync.Map slot
// per pair plus a per-pair sync.Once makes each derivation exactly-once
// even when both endpoints race on the same pair. The cached vectors
// are shared read-only (evaluators copy load state, never capacities),
// and caching changes no result: capacities are deterministic in the
// pair alone.
type CapacityCache struct {
	caps sync.Map // *topology.Pair -> *capEntry
}

// capEntry is one pair's slot in the cache.
type capEntry struct {
	once       sync.Once
	capA, capB []float64
}

// NewCapacityCache returns an empty cache.
func NewCapacityCache() *CapacityCache {
	return &CapacityCache{}
}

// get returns the pair's base capacities, computing them on first use.
// A nil cache computes fresh vectors (the uncached path).
func (c *CapacityCache) get(sys, rev *pairsim.System) (capA, capB []float64) {
	if c == nil {
		return baseCapacities(sys, rev)
	}
	e, ok := c.caps.Load(sys.Pair)
	if !ok {
		e, _ = c.caps.LoadOrStore(sys.Pair, new(capEntry))
	}
	entry := e.(*capEntry)
	entry.once.Do(func() { entry.capA, entry.capB = baseCapacities(sys, rev) })
	return entry.capA, entry.capB
}

// NewWithMetric builds a controller negotiating the named metric. The
// metric selects both the evaluator family (see NewEvaluator) and the
// engine configuration: load-based metrics renegotiate preferences
// after each 5% of traffic (nexit.DefaultBandwidthConfig), distance
// never does. An empty metric means distance.
func NewWithMetric(sys *pairsim.System, p int, metric Metric) (*Controller, error) {
	return NewWithMetricShared(sys, p, metric, nil)
}

// NewWithMetricShared is NewWithMetric drawing load-metric base
// capacities from a shared CapacityCache (nil computes them fresh).
// Pass one cache per mesh/daemon so pairs negotiated by several
// controllers derive their capacity vectors once.
func NewWithMetricShared(sys *pairsim.System, p int, metric Metric, caps *CapacityCache) (*Controller, error) {
	metric, err := ParseMetric(string(metric))
	if err != nil {
		return nil, err
	}
	var cfg nexit.Config
	if metric == MetricDistance {
		cfg = nexit.DefaultDistanceConfig()
	} else {
		cfg = nexit.DefaultBandwidthConfig()
	}
	cfg.PrefBound = p
	c := &Controller{
		Sys:      sys,
		Rev:      sys.Reverse(),
		Cfg:      cfg,
		P:        p,
		Metric:   metric,
		Registry: flowid.NewRegistry(0.5, 1, 3),
		Ledger:   credits.NewLedger(2 * p),
		applied:  make(map[key]int),
	}
	if metric != MetricDistance {
		c.capA, c.capB = caps.get(c.Sys, c.Rev)
	}
	return c, nil
}

// baseCapacities derives each ISP's own-network link capacities from
// the pair's base (undrifted) gravity traffic in both directions,
// routed early-exit — the steady state the network was provisioned
// for. Deterministic in the system alone.
func baseCapacities(sys, rev *pairsim.System) (capA, capB []float64) {
	wAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
	wBA := traffic.New(rev.Pair.A, rev.Pair.B, traffic.Gravity, nil)
	upAB, downAB := sys.Loads(wAB.Flows, baseline.EarlyExit(sys, wAB.Flows))
	upBA, downBA := rev.Loads(wBA.Flows, baseline.EarlyExit(rev, wBA.Flows))
	loadA := make([]float64, len(upAB)) // A's links: A->B upstream + B->A downstream
	for i := range loadA {
		loadA[i] = upAB[i] + downBA[i]
	}
	loadB := make([]float64, len(downAB)) // B's links: A->B downstream + B->A upstream
	for i := range loadB {
		loadB[i] = downAB[i] + upBA[i]
	}
	return capacity.Assign(loadA, capacity.Options{}), capacity.Assign(loadB, capacity.Options{})
}

// NewEvaluator returns the evaluator for one epoch's session on the
// given protocol side (SideA is the pair's A / wire initiator). The
// load-based evaluators are stateful within a session — commits move
// link load — so every epoch starts from a clean slate over the
// controller's fixed base capacities: the controller builds each side's
// evaluator once and resets it to zero load between epochs, which is
// indistinguishable from constructing fresh (sessions are serialized
// per controller). Both endpoints of a wire pair and the serial
// in-process reference start each epoch from the identical evaluator
// state, which is what keeps the concurrent wire outcome pinned to the
// serial reference for every metric.
func (c *Controller) NewEvaluator(side nexit.Side) nexit.Evaluator {
	cached := &c.evalA
	if side == nexit.SideB {
		cached = &c.evalB
	}
	if *cached != nil {
		switch e := (*cached).(type) {
		case *nexit.BandwidthEvaluator:
			e.Reset(nil)
		case *nexit.FortzThorupEvaluator:
			e.Reset(nil)
		}
		return *cached
	}
	capv := c.capA
	if side == nexit.SideB {
		capv = c.capB
	}
	var eval nexit.Evaluator
	switch c.Metric {
	case MetricBandwidth:
		eval = nexit.NewBandwidthEvaluator(c.Sys, side, c.P, make([]float64, len(capv)), capv)
	case MetricFortzThorup:
		eval = nexit.NewFortzThorupEvaluator(c.Sys, side, c.P, make([]float64, len(capv)), capv)
	default:
		eval = nexit.NewDistanceEvaluator(c.Sys, side, c.P)
	}
	*cached = eval
	return eval
}

// Epoch processes one epoch's workloads (both directions) and returns
// the report. The controller observes every flow, negotiates the stable
// ones, and leaves the rest on their current (or early-exit) path.
func (c *Controller) Epoch(wAB, wBA *traffic.Workload) (*EpochReport, error) {
	rep := &EpochReport{Epoch: c.epoch}

	// 1. Observe traffic; the registry decides which flows are stable
	// enough to negotiate.
	all := c.obsScratch[:0]
	record := func(f traffic.Flow, dir nexit.Direction) {
		k := key{dir: dir, src: f.Src, dst: f.Dst}
		sig := flowid.Signature{
			Src:     flowid.Prefix{Addr: uint32(f.Src) << 16, Bits: 16},
			Dst:     flowid.Prefix{Addr: 0x80000000 | uint32(f.Dst)<<16, Bits: 16},
			Ingress: uint64(dir)<<32 | uint64(f.Src)<<16 | uint64(f.Dst),
		}
		c.Registry.Observe(sig, f.Size, c.epoch)
		all = append(all, obs{k: k, flow: f, sig: sig})
	}
	for _, f := range wAB.Flows {
		record(f, nexit.AtoB)
	}
	for _, f := range wBA.Flows {
		record(f, nexit.BtoA)
	}
	c.obsScratch = all
	rep.Observed = len(all)
	rep.Expired = len(c.Registry.Expire(c.epoch))

	// 2. Build the negotiation table from the stable flows.
	if c.negotiableSet == nil {
		c.negotiableSet = make(map[flowid.Signature]bool)
	}
	negotiable := c.negotiableSet
	clear(negotiable)
	for _, fi := range c.Registry.Negotiable() {
		negotiable[fi.Sig] = true
	}
	items := c.itemsScratch[:0]
	defaults := c.defaultsScratch[:0]
	keys := c.keysScratch[:0]
	for _, o := range all {
		if !negotiable[o.sig] {
			continue
		}
		f := o.flow
		f.ID = len(items)
		items = append(items, nexit.Item{ID: f.ID, Flow: f, Dir: o.k.dir})
		defaults = append(defaults, c.currentChoice(o.k, f))
		keys = append(keys, o.k)
	}
	c.itemsScratch, c.defaultsScratch, c.keysScratch = items, defaults, keys
	rep.Negotiated = len(items)

	// 3. Negotiate with the ledger-adjusted configuration. A remote
	// Negotiator runs even over an empty table (epoch lockstep); the
	// in-process default skips the no-op session.
	if len(items) > 0 || c.Negotiate != nil {
		cfg := c.Ledger.Apply(c.Cfg)
		negotiate := c.Negotiate
		if negotiate == nil {
			negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
				evalA := c.NewEvaluator(nexit.SideA)
				evalB := c.NewEvaluator(nexit.SideB)
				return nexit.Negotiate(cfg, evalA, evalB, items, defaults, numAlts)
			}
		}
		res, err := negotiate(cfg, items, defaults, c.Sys.NumAlternatives())
		if err != nil {
			return nil, fmt.Errorf("continuous: epoch %d: %w", c.epoch, err)
		}
		if len(res.Assign) != len(items) {
			return nil, fmt.Errorf("continuous: epoch %d: negotiator returned %d assignments for %d items",
				c.epoch, len(res.Assign), len(items))
		}
		if len(items) > 0 {
			c.Ledger.Settle(c.epoch, res)
			rep.Assign = append([]int(nil), res.Assign...)
		}
		rep.GainA, rep.GainB = res.GainA, res.GainB
		for i, k := range keys {
			if res.Assign[i] != defaults[i] {
				rep.Moved++
			}
			c.applied[k] = res.Assign[i]
		}
	}
	rep.LedgerBalance = c.Ledger.Balance

	// 4. Account the epoch: distance under pure early-exit vs under the
	// applied assignments.
	for _, o := range all {
		f := o.flow
		sys := c.Sys
		if o.k.dir == nexit.BtoA {
			sys = c.Rev
		}
		rep.DistanceDefault += sys.TotalDistKm(f, sys.EarlyExit(f))
		rep.DistanceApplied += sys.TotalDistKm(f, c.currentChoice(o.k, f))
	}
	c.epoch++
	return rep, nil
}

// EpochIndex returns the number of epochs processed so far (the index
// the next Epoch call will report).
func (c *Controller) EpochIndex() int { return c.epoch }

// SeekEpoch fast-forwards the controller to epoch n by replaying the
// intervening epochs locally with the in-process negotiator. Because
// epochs are deterministic in (system, metric, workloads) and a wire
// session reproduces the in-process outcome exactly (the mesh parity
// invariant), the replay reconstructs the registry, ledger, and applied
// assignments of a controller that lived through those epochs — this is
// the epoch-resync handshake's fast-forward rule (DESIGN.md §7): a
// restarted or lagging daemon catches up to its peer without any wire
// traffic. Seeking to the current epoch is a no-op; seeking backwards
// is an error (deterministic replay cannot rewind).
func (c *Controller) SeekEpoch(n int, workloads WorkloadFunc) error {
	if n < c.epoch {
		return fmt.Errorf("continuous: cannot seek backwards from epoch %d to %d", c.epoch, n)
	}
	saved := c.Negotiate
	c.Negotiate = nil
	defer func() { c.Negotiate = saved }()
	for c.epoch < n {
		wAB, wBA := workloads(c.epoch)
		if _, err := c.Epoch(wAB, wBA); err != nil {
			return fmt.Errorf("continuous: seek to epoch %d: %w", n, err)
		}
	}
	return nil
}

// currentChoice returns the installed interconnection for a flow, or its
// early-exit default when it has never been negotiated.
func (c *Controller) currentChoice(k key, f traffic.Flow) int {
	if alt, ok := c.applied[k]; ok {
		return alt
	}
	if k.dir == nexit.AtoB {
		return c.Sys.EarlyExit(f)
	}
	return c.Rev.EarlyExit(f)
}

// Drift returns a copy of the workload with flow sizes perturbed
// multiplicatively by up to ±volatility — the "changes to traffic
// matrices" of §5.2/§6 that keep renegotiation necessary.
func Drift(w *traffic.Workload, volatility float64, rng *rand.Rand) *traffic.Workload {
	out := &traffic.Workload{Upstream: w.Upstream, Downstream: w.Downstream}
	out.Flows = append([]traffic.Flow(nil), w.Flows...)
	for i := range out.Flows {
		f := 1 + (rng.Float64()*2-1)*volatility
		if f < 0.05 {
			f = 0.05
		}
		out.Flows[i].Size *= f
	}
	return out
}

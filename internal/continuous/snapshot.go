package continuous

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/credits"
	"repro/internal/flowid"
	"repro/internal/nexit"
	"repro/internal/snapshot"
)

// Snapshot captures the controller's complete mutable epoch state —
// flow registry, credit ledger, applied assignments, nonce counter,
// epoch index — as a pure-data snapshot.State. Everything derived from
// (system, metric) alone (routing tables, base capacities, evaluator
// caches) is excluded and rebuilt on restore, so a snapshot is small
// and the determinism contract reduces to: RestoreSnapshot(Snapshot())
// is observationally the identity.
//
// The returned state shares nothing with the controller (deep copies
// throughout), so the caller may encode or persist it off the hot path
// while the controller keeps negotiating.
func (c *Controller) Snapshot() *snapshot.State {
	flows, nonce := c.Registry.Export()
	st := &snapshot.State{
		Metric: string(c.Metric),
		Epoch:  uint64(c.epoch),
		Registry: snapshot.Registry{
			SizeThreshold: c.Registry.SizeThreshold,
			StableTicks:   int64(c.Registry.StableTicks),
			IdleTimeout:   int64(c.Registry.IdleTimeout),
			Nonce:         nonce,
		},
		Ledger: snapshot.Ledger{
			Balance:   int64(c.Ledger.Balance),
			MaxCredit: int64(c.Ledger.MaxCredit),
		},
	}
	if len(flows) > 0 {
		st.Registry.Flows = make([]snapshot.Flow, len(flows))
		for i, f := range flows {
			st.Registry.Flows[i] = snapshot.Flow{
				SrcAddr:     f.Sig.Src.Addr,
				SrcBits:     uint8(f.Sig.Src.Bits),
				DstAddr:     f.Sig.Dst.Addr,
				DstBits:     uint8(f.Sig.Dst.Bits),
				Ingress:     f.Sig.Ingress,
				Size:        f.Size,
				LastSeen:    int64(f.LastSeen),
				AboveSince:  int64(f.AboveSince),
				EverStable:  f.EverStable,
				Negotiable:  f.Negotiable,
				AnnouncedAt: int64(f.AnnouncedAt),
			}
		}
	}
	if len(c.Ledger.History) > 0 {
		st.Ledger.History = make([]snapshot.LedgerEntry, len(c.Ledger.History))
		for i, e := range c.Ledger.History {
			st.Ledger.History[i] = snapshot.LedgerEntry{
				Session:      int64(e.Session),
				GainA:        int64(e.GainA),
				GainB:        int64(e.GainB),
				BalanceAfter: int64(e.BalanceAfter),
			}
		}
	}
	if len(c.applied) > 0 {
		st.Applied = make([]snapshot.Assignment, 0, len(c.applied))
		for k, alt := range c.applied {
			st.Applied = append(st.Applied, snapshot.Assignment{
				Dir: uint8(k.dir), Src: int64(k.src), Dst: int64(k.dst), Alt: int64(alt),
			})
		}
		sort.Slice(st.Applied, func(i, j int) bool {
			a, b := st.Applied[i], st.Applied[j]
			if a.Dir != b.Dir {
				return a.Dir < b.Dir
			}
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.Dst < b.Dst
		})
	}
	return st
}

// RestoreSnapshot replaces the controller's mutable epoch state with a
// previously captured snapshot, leaving everything derived from
// (system, metric) — capacities, cached evaluators, scratch — alone.
// The snapshot must have been captured under the same configuration:
// metric, registry policy knobs, and credit cap are all validated, and
// a mismatch is rejected without touching any state (the caller falls
// back to an older snapshot or epoch-0 replay).
func (c *Controller) RestoreSnapshot(st *snapshot.State) error {
	switch {
	case st == nil:
		return fmt.Errorf("continuous: restore of a nil snapshot")
	case st.Metric != string(c.Metric):
		return fmt.Errorf("continuous: snapshot negotiates %q, controller negotiates %q", st.Metric, c.Metric)
	case st.Registry.SizeThreshold != c.Registry.SizeThreshold ||
		int(st.Registry.StableTicks) != c.Registry.StableTicks ||
		int(st.Registry.IdleTimeout) != c.Registry.IdleTimeout:
		return fmt.Errorf("continuous: snapshot registry policy (%v,%d,%d) differs from controller (%v,%d,%d)",
			st.Registry.SizeThreshold, st.Registry.StableTicks, st.Registry.IdleTimeout,
			c.Registry.SizeThreshold, c.Registry.StableTicks, c.Registry.IdleTimeout)
	case int(st.Ledger.MaxCredit) != c.Ledger.MaxCredit:
		return fmt.Errorf("continuous: snapshot credit cap %d differs from controller %d",
			st.Ledger.MaxCredit, c.Ledger.MaxCredit)
	case st.Epoch > math.MaxInt/2:
		return fmt.Errorf("continuous: snapshot epoch %d out of range", st.Epoch)
	}

	flows := make([]flowid.FlowRecord, len(st.Registry.Flows))
	for i, f := range st.Registry.Flows {
		flows[i] = flowid.FlowRecord{
			Sig: flowid.Signature{
				Src:     flowid.Prefix{Addr: f.SrcAddr, Bits: int(f.SrcBits)},
				Dst:     flowid.Prefix{Addr: f.DstAddr, Bits: int(f.DstBits)},
				Ingress: f.Ingress,
			},
			Size:        f.Size,
			LastSeen:    int(f.LastSeen),
			AboveSince:  int(f.AboveSince),
			EverStable:  f.EverStable,
			Negotiable:  f.Negotiable,
			AnnouncedAt: int(f.AnnouncedAt),
		}
	}
	c.Registry.Restore(flows, st.Registry.Nonce)

	c.Ledger.Balance = int(st.Ledger.Balance)
	c.Ledger.History = nil
	for _, e := range st.Ledger.History {
		c.Ledger.History = append(c.Ledger.History, credits.Entry{
			Session:      int(e.Session),
			GainA:        int(e.GainA),
			GainB:        int(e.GainB),
			BalanceAfter: int(e.BalanceAfter),
		})
	}

	c.applied = make(map[key]int, len(st.Applied))
	for _, a := range st.Applied {
		c.applied[key{dir: nexit.Direction(a.Dir), src: int(a.Src), dst: int(a.Dst)}] = int(a.Alt)
	}
	c.epoch = int(st.Epoch)
	return nil
}

// SnapshotSource supplies previously captured snapshots — usually a
// snapshot.Store bound to one peer (Store.Peer). LoadLatest returns the
// newest usable snapshot at or below maxEpoch, or nil when none exists;
// corrupt snapshots must already have been skipped (the store's
// fallback ladder).
type SnapshotSource interface {
	LoadLatest(maxEpoch int) (*snapshot.State, error)
}

// RestoreLatest fast-forwards the controller by snapshot alone: it
// restores the newest usable snapshot at or below maxEpoch, provided
// the snapshot is ahead of the controller's current epoch, and returns
// the epoch restored to (-1 when no snapshot was used). A snapshot the
// controller's configuration rejects is treated like a missing one —
// recovery degrades to replay, never fails outright. A nil source is a
// no-op.
func (c *Controller) RestoreLatest(maxEpoch int, src SnapshotSource) (int, error) {
	if src == nil {
		return -1, nil
	}
	st, err := src.LoadLatest(maxEpoch)
	if err != nil {
		return -1, fmt.Errorf("continuous: loading snapshot: %w", err)
	}
	if st == nil || st.Epoch <= uint64(c.epoch) {
		return -1, nil
	}
	if err := c.RestoreSnapshot(st); err != nil {
		return -1, nil // configuration mismatch: pretend it wasn't there
	}
	return c.epoch, nil
}

// SeekEpochFrom is SeekEpoch with snapshot acceleration: the newest
// usable snapshot at or below n is restored first and only the tail
// since it is replayed, turning restart cost from O(lifetime) into
// O(epochs-since-snapshot). It returns the epoch restored from (-1 when
// the whole distance was replayed) so callers can report tail-only
// recovery. With a nil source it degrades to plain SeekEpoch.
func (c *Controller) SeekEpochFrom(n int, workloads WorkloadFunc, src SnapshotSource) (int, error) {
	if n < c.epoch {
		return -1, fmt.Errorf("continuous: cannot seek backwards from epoch %d to %d", c.epoch, n)
	}
	restored, err := c.RestoreLatest(n, src)
	if err != nil {
		return -1, err
	}
	return restored, c.SeekEpoch(n, workloads)
}

package continuous

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

// TestSnapshotTailReplayParity is the snapshot determinism contract:
// for every metric and snapshot interval, a fresh controller restored
// from the newest on-disk snapshot plus a tail replay must be
// DeepEqual-identical — registry, ledger, applied assignments, nonce
// position, epoch counter — to one that fully replayed from epoch 0,
// and every subsequent epoch report must match a controller that lived
// through the whole history. (The wire-session half of the contract —
// that a restored agent's sessions are byte-identical on the wire — is
// pinned by the mesh recovery tests, which run real nexitwire sessions
// against snapshot-restored agents and compare with the serial
// reference.)
func TestSnapshotTailReplayParity(t *testing.T) {
	sys := testSystem(t)
	const total = 7
	for _, metric := range Metrics() {
		for _, interval := range []int{1, 3} {
			t.Run(string(metric)+"/interval"+string(rune('0'+interval)), func(t *testing.T) {
				wl := epochWorkloads(sys)
				store, err := snapshot.NewStore(filepath.Join(t.TempDir(), "snaps"), 100)
				if err != nil {
					t.Fatal(err)
				}

				// The lived controller both defines ground truth and writes
				// the snapshots, exactly like a long-running agent would.
				lived, err := NewWithMetric(sys, 10, metric)
				if err != nil {
					t.Fatal(err)
				}
				var want []*EpochReport
				for epoch := 0; epoch < total; epoch++ {
					rep, err := lived.Epoch(wl(epoch))
					if err != nil {
						t.Fatal(err)
					}
					want = append(want, rep)
					if lived.EpochIndex()%interval == 0 {
						if err := store.Save("pair", lived.Snapshot()); err != nil {
							t.Fatal(err)
						}
					}
				}

				for _, target := range []int{4, total} {
					wantRestore := target - target%interval // newest snapshot ≤ target
					full, err := NewWithMetric(sys, 10, metric)
					if err != nil {
						t.Fatal(err)
					}
					if err := full.SeekEpoch(target, wl); err != nil {
						t.Fatal(err)
					}
					fast, err := NewWithMetric(sys, 10, metric)
					if err != nil {
						t.Fatal(err)
					}
					restored, err := fast.SeekEpochFrom(target, wl, store.Peer("pair"))
					if err != nil {
						t.Fatal(err)
					}
					if restored != wantRestore {
						t.Fatalf("target %d: restored from epoch %d, want %d (tail-only replay)",
							target, restored, wantRestore)
					}
					if fast.EpochIndex() != target {
						t.Fatalf("target %d: fast controller at epoch %d", target, fast.EpochIndex())
					}
					// State parity: the snapshot-restored controller is
					// indistinguishable from the full replay...
					if !reflect.DeepEqual(full.Snapshot(), fast.Snapshot()) {
						t.Fatalf("target %d: restore+tail state diverged from full replay:\n full %+v\n fast %+v",
							target, full.Snapshot(), fast.Snapshot())
					}
					// ...and stays indistinguishable: every later epoch matches
					// the lived-through history report for report.
					for epoch := target; epoch < total; epoch++ {
						fullRep, err := full.Epoch(wl(epoch))
						if err != nil {
							t.Fatal(err)
						}
						fastRep, err := fast.Epoch(wl(epoch))
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(fastRep, want[epoch]) {
							t.Errorf("epoch %d after restore diverged from lived history:\n fast  %+v\n lived %+v",
								epoch, fastRep, want[epoch])
						}
						if !reflect.DeepEqual(fullRep, want[epoch]) {
							t.Errorf("epoch %d after full replay diverged from lived history", epoch)
						}
					}
				}
			})
		}
	}
}

// TestSnapshotRestoreIdentity: RestoreSnapshot(Snapshot()) onto a fresh
// controller reproduces the original exactly, including the nonce
// position (a restored registry must not mint colliding ingress IDs).
func TestSnapshotRestoreIdentity(t *testing.T) {
	sys := testSystem(t)
	wl := epochWorkloads(sys)
	c := New(sys, 10)
	for epoch := 0; epoch < 4; epoch++ {
		if _, err := c.Epoch(wl(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Snapshot()
	r := New(sys, 10)
	if err := r.RestoreSnapshot(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), st) {
		t.Fatal("RestoreSnapshot(Snapshot()) is not the identity")
	}
	if got, want := r.Registry.NewNonce(), c.Registry.NewNonce(); got != want {
		t.Fatalf("nonce position after restore = %d, want %d", got, want)
	}
	if r.EpochIndex() != c.EpochIndex() {
		t.Fatalf("epoch %d after restore, want %d", r.EpochIndex(), c.EpochIndex())
	}
	// The snapshot is a deep copy: mutating the restored controller
	// must not reach back into the captured state.
	if _, err := r.Epoch(wl(r.EpochIndex())); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != uint64(c.EpochIndex()) {
		t.Fatal("advancing the restored controller mutated the captured snapshot")
	}
}

// TestRestoreSnapshotRejectsMismatch: a snapshot captured under a
// different configuration is rejected outright by RestoreSnapshot and
// treated as missing by RestoreLatest — recovery degrades to replay,
// never restores wrong state.
func TestRestoreSnapshotRejectsMismatch(t *testing.T) {
	sys := testSystem(t)
	wl := epochWorkloads(sys)
	c := New(sys, 10)
	for epoch := 0; epoch < 3; epoch++ {
		if _, err := c.Epoch(wl(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Snapshot()

	if err := New(sys, 10).RestoreSnapshot(nil); err == nil {
		t.Error("nil snapshot restored")
	}
	bw, err := NewWithMetric(sys, 10, MetricBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.RestoreSnapshot(st); err == nil {
		t.Error("distance snapshot restored into a bandwidth controller")
	}
	if err := New(sys, 5).RestoreSnapshot(st); err == nil {
		t.Error("snapshot restored across a different credit cap")
	}
	bad := c.Snapshot()
	bad.Registry.StableTicks++
	if err := New(sys, 10).RestoreSnapshot(bad); err == nil {
		t.Error("snapshot restored across different registry policy")
	}

	// RestoreLatest: mismatch behaves like no snapshot at all.
	mismatched := New(sys, 5)
	restored, err := mismatched.RestoreLatest(10, sourceOf(st))
	if err != nil || restored != -1 || mismatched.EpochIndex() != 0 {
		t.Errorf("mismatched RestoreLatest = (%d, %v) at epoch %d, want (-1, nil) at 0",
			restored, err, mismatched.EpochIndex())
	}
	// A stale snapshot (at or behind the controller) is ignored too.
	ahead := New(sys, 10)
	if err := ahead.SeekEpoch(5, wl); err != nil {
		t.Fatal(err)
	}
	if restored, err := ahead.RestoreLatest(10, sourceOf(st)); err != nil || restored != -1 {
		t.Errorf("stale snapshot restore = (%d, %v), want (-1, nil)", restored, err)
	}
	// And a nil source is a clean no-op.
	if restored, err := New(sys, 10).RestoreLatest(10, nil); err != nil || restored != -1 {
		t.Errorf("nil source restore = (%d, %v), want (-1, nil)", restored, err)
	}
}

// sourceOf wraps a fixed state as a SnapshotSource.
type fixedSource struct{ st *snapshot.State }

func sourceOf(st *snapshot.State) SnapshotSource { return fixedSource{st} }

func (f fixedSource) LoadLatest(maxEpoch int) (*snapshot.State, error) {
	if f.st != nil && f.st.Epoch <= uint64(maxEpoch) {
		return f.st, nil
	}
	return nil, nil
}

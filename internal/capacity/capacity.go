// Package capacity assigns link capacities from steady-state loads,
// implementing the paper's §5.2 model and its alternates.
//
// The paper's primary model: "link capacities are proportional to the
// load on the link before the failure", i.e. a well-designed network is
// roughly matched to its traffic. Links that carry no traffic before the
// failure are backup links and get the median capacity of the loaded
// links; links below the median are upgraded to the median so results are
// not dominated by links that carry little traffic. The alternate models
// (maximum/mean for unused links, power-of-two discretization) are those
// the paper reports testing for robustness.
package capacity

import (
	"fmt"
	"math"
	"sort"
)

// UnusedRule selects the capacity assigned to links with zero
// pre-failure load.
type UnusedRule int

// Rules for unused (backup) links.
const (
	// UnusedMedian assigns the median load of the non-zero links
	// (paper's primary choice).
	UnusedMedian UnusedRule = iota
	// UnusedMax assigns the maximum load of the non-zero links.
	UnusedMax
	// UnusedMean assigns the mean load of the non-zero links.
	UnusedMean
)

// String names the rule.
func (r UnusedRule) String() string {
	switch r {
	case UnusedMedian:
		return "median"
	case UnusedMax:
		return "max"
	case UnusedMean:
		return "mean"
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// Options configures capacity assignment. The zero value is the paper's
// primary model: median rule, upgrade-to-median, no discretization.
type Options struct {
	Unused          UnusedRule
	NoUpgrade       bool // if set, do NOT raise below-median links to the median
	RoundToPowerOf2 bool // discretize capacities by rounding up to a power of two
}

// Assign computes per-link capacities from pre-failure loads. The input
// is not modified. If every link has zero load (degenerate), all
// capacities are 1.
func Assign(load []float64, opts Options) []float64 {
	capv := make([]float64, len(load))
	nonzero := make([]float64, 0, len(load))
	for _, l := range load {
		if l > 0 {
			nonzero = append(nonzero, l)
		}
	}
	if len(nonzero) == 0 {
		for i := range capv {
			capv[i] = 1
		}
		return capv
	}
	med := median(nonzero)
	unused := med
	switch opts.Unused {
	case UnusedMax:
		unused = maxOf(nonzero)
	case UnusedMean:
		unused = meanOf(nonzero)
	}
	for i, l := range load {
		c := l
		if l <= 0 {
			c = unused
		}
		if !opts.NoUpgrade && c < med {
			c = med
		}
		if opts.RoundToPowerOf2 {
			c = roundUpPow2(c)
		}
		capv[i] = c
	}
	return capv
}

// median returns the median of xs (xs is copied, not modified).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// roundUpPow2 rounds a positive value up to the next power of two.
func roundUpPow2(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Pow(2, math.Ceil(math.Log2(x)))
}

package capacity

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAssignPrimaryModel(t *testing.T) {
	// loads: {0, 2, 4, 10}; nonzero = {2,4,10}; median = 4.
	load := []float64{0, 2, 4, 10}
	capv := Assign(load, Options{})
	want := []float64{4, 4, 4, 10} // unused->median, below-median upgraded
	for i := range want {
		if capv[i] != want[i] {
			t.Errorf("cap[%d] = %v, want %v", i, capv[i], want[i])
		}
	}
}

func TestAssignNoUpgrade(t *testing.T) {
	load := []float64{0, 2, 4, 10}
	capv := Assign(load, Options{NoUpgrade: true})
	want := []float64{4, 2, 4, 10}
	for i := range want {
		if capv[i] != want[i] {
			t.Errorf("cap[%d] = %v, want %v", i, capv[i], want[i])
		}
	}
}

func TestAssignUnusedMax(t *testing.T) {
	load := []float64{0, 2, 4, 10}
	capv := Assign(load, Options{Unused: UnusedMax})
	if capv[0] != 10 {
		t.Errorf("unused link cap = %v, want 10", capv[0])
	}
}

func TestAssignUnusedMean(t *testing.T) {
	load := []float64{0, 2, 4, 12}
	capv := Assign(load, Options{Unused: UnusedMean})
	if capv[0] != 6 { // mean of 2,4,12
		t.Errorf("unused link cap = %v, want 6", capv[0])
	}
}

func TestAssignPow2(t *testing.T) {
	load := []float64{3, 5, 8}
	capv := Assign(load, Options{RoundToPowerOf2: true})
	// median = 5 → caps before rounding: {5,5,8} → {8,8,8}
	want := []float64{8, 8, 8}
	for i := range want {
		if capv[i] != want[i] {
			t.Errorf("cap[%d] = %v, want %v", i, capv[i], want[i])
		}
	}
}

func TestAssignAllZero(t *testing.T) {
	capv := Assign([]float64{0, 0, 0}, Options{})
	for i, c := range capv {
		if c != 1 {
			t.Errorf("cap[%d] = %v, want 1", i, c)
		}
	}
}

func TestAssignEmpty(t *testing.T) {
	if got := Assign(nil, Options{}); len(got) != 0 {
		t.Errorf("Assign(nil) = %v", got)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{1, 3, 5, 7}); m != 4 {
		t.Errorf("median = %v, want 4", m)
	}
	if m := median([]float64{5}); m != 5 {
		t.Errorf("median = %v, want 5", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	median(xs)
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Error("median mutated its input")
	}
}

func TestRoundUpPow2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {0.3, 0.5}, {1024, 1024}, {-1, 1}, {0, 1},
	}
	for _, c := range cases {
		if got := roundUpPow2(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("roundUpPow2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: with the primary model, every capacity is >= the link's load
// is false in general (zero-load links get median regardless), but every
// capacity is >= min(load, median) and >= median when upgrade is on, and
// capacities never decrease when switching from median to max rule.
func TestAssignProperties(t *testing.T) {
	sanitize := func(raw []float64) []float64 {
		load := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			load = append(load, math.Abs(x))
		}
		return load
	}
	f := func(raw []float64) bool {
		load := sanitize(raw)
		if len(load) == 0 {
			return true
		}
		capMed := Assign(load, Options{})
		capMax := Assign(load, Options{Unused: UnusedMax})
		var nonzero []float64
		for _, l := range load {
			if l > 0 {
				nonzero = append(nonzero, l)
			}
		}
		var med float64 = 1
		if len(nonzero) > 0 {
			s := append([]float64(nil), nonzero...)
			sort.Float64s(s)
			if len(s)%2 == 1 {
				med = s[len(s)/2]
			} else {
				med = (s[len(s)/2-1] + s[len(s)/2]) / 2
			}
		}
		for i := range load {
			if capMed[i] < med-1e-12 {
				return false // upgrade rule violated
			}
			if load[i] > 0 && capMed[i] < load[i]-1e-12 && load[i] > med {
				return false // above-median links keep their load as capacity
			}
			if capMax[i] < capMed[i]-1e-12 {
				return false // max rule dominates median rule
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRuleString(t *testing.T) {
	if UnusedMedian.String() != "median" || UnusedMax.String() != "max" || UnusedMean.String() != "mean" {
		t.Error("rule names wrong")
	}
	if UnusedRule(9).String() == "" {
		t.Error("unknown rule should stringify")
	}
}

// Package traffic generates the workloads of the paper's evaluation: one
// flow per (upstream PoP, downstream PoP) pair, with sizes drawn from a
// gravity model over city populations (§5.2) or from the alternate models
// the paper reports trying (identical weights, uniform random weights).
//
// A Flow is directed: Src is a PoP in the upstream ISP, Dst a PoP in the
// downstream ISP. All packets of a flow take the same path through both
// networks (paper §4); choosing the interconnection for each flow is
// exactly what the negotiation decides.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/topology"
)

// Flow is a stream of packets from a source PoP in the upstream ISP to a
// destination PoP in the downstream ISP.
type Flow struct {
	ID   int     // dense index, stable within a workload
	Src  int     // PoP ID in the upstream ISP
	Dst  int     // PoP ID in the downstream ISP
	Size float64 // offered load in arbitrary units (mean 1 across the workload)
}

// Model selects the flow-size model.
type Model int

// Flow-size models from paper §5.2.
const (
	// Gravity sizes flows proportionally to the product of the source
	// and destination city populations (the paper's primary model,
	// following Zhang et al. and Medina et al.).
	Gravity Model = iota
	// Identical gives every flow the same size (alternate model).
	Identical
	// UniformRandom draws PoP weights uniformly from [0.5, 1.5) and
	// sizes flows by the product of endpoint weights (alternate model).
	UniformRandom
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Gravity:
		return "gravity"
	case Identical:
		return "identical"
	case UniformRandom:
		return "uniform-random"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Workload is the set of flows from the upstream ISP to the downstream
// ISP of a pair, in one direction.
type Workload struct {
	Upstream, Downstream *topology.ISP
	Flows                []Flow
}

// TotalSize returns the sum of flow sizes.
func (w *Workload) TotalSize() float64 {
	var sum float64
	for _, f := range w.Flows {
		sum += f.Size
	}
	return sum
}

// New builds the workload for traffic flowing from upstream to
// downstream: one flow per (src PoP, dst PoP) pair, sized by the model
// and normalized to mean size 1. rng is only used by UniformRandom; it
// may be nil for the other models.
func New(upstream, downstream *topology.ISP, model Model, rng *rand.Rand) *Workload {
	w := &Workload{Upstream: upstream, Downstream: downstream}
	srcW := popWeights(upstream, model, rng)
	dstW := popWeights(downstream, model, rng)
	id := 0
	var total float64
	for s := range upstream.PoPs {
		for d := range downstream.PoPs {
			size := srcW[s] * dstW[d]
			w.Flows = append(w.Flows, Flow{ID: id, Src: s, Dst: d, Size: size})
			total += size
			id++
		}
	}
	// Normalize to mean 1 so metrics are comparable across models.
	if total > 0 {
		scale := float64(len(w.Flows)) / total
		for i := range w.Flows {
			w.Flows[i].Size *= scale
		}
	}
	return w
}

// popWeights returns the per-PoP gravity weight under the given model.
func popWeights(isp *topology.ISP, model Model, rng *rand.Rand) []float64 {
	w := make([]float64, len(isp.PoPs))
	switch model {
	case Gravity:
		for i, p := range isp.PoPs {
			if p.Population > 0 {
				w[i] = p.Population
			} else {
				w[i] = 1
			}
		}
	case Identical:
		for i := range w {
			w[i] = 1
		}
	case UniformRandom:
		if rng == nil {
			panic("traffic: UniformRandom model requires a rand source")
		}
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
	default:
		panic(fmt.Sprintf("traffic: unknown model %d", model))
	}
	return w
}

// FilterImpacted returns the subset of flows whose current
// interconnection assignment (given by assign, mapping flow ID to
// interconnection index) equals failed. This models the paper's §5.2
// scenario where, after an interconnection failure, only the impacted
// flows are renegotiated — "in the interest of stability, ISPs are likely
// to reroute only such flows."
func FilterImpacted(flows []Flow, assign []int, failed int) []Flow {
	var out []Flow
	for _, f := range flows {
		if assign[f.ID] == failed {
			out = append(out, f)
		}
	}
	return out
}

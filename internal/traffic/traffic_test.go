package traffic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/topology"
)

func twoISPs() (*topology.ISP, *topology.ISP) {
	a := &topology.ISP{
		Name: "a", ASN: 1,
		PoPs: []topology.PoP{
			{ID: 0, City: "x", Loc: geo.Point{Lat: 1}, Population: 1e6},
			{ID: 1, City: "y", Loc: geo.Point{Lat: 2}, Population: 4e6},
		},
		Links: []topology.Link{{A: 0, B: 1, Weight: 1, LengthKm: 1}},
	}
	b := &topology.ISP{
		Name: "b", ASN: 2,
		PoPs: []topology.PoP{
			{ID: 0, City: "p", Loc: geo.Point{Lat: 3}, Population: 2e6},
			{ID: 1, City: "q", Loc: geo.Point{Lat: 4}, Population: 2e6},
			{ID: 2, City: "r", Loc: geo.Point{Lat: 5}, Population: 6e6},
		},
		Links: []topology.Link{{A: 0, B: 1, Weight: 1, LengthKm: 1}, {A: 1, B: 2, Weight: 1, LengthKm: 1}},
	}
	return a, b
}

func TestNewProducesAllFlows(t *testing.T) {
	a, b := twoISPs()
	w := New(a, b, Gravity, nil)
	if len(w.Flows) != 6 {
		t.Fatalf("got %d flows, want 6", len(w.Flows))
	}
	seen := map[[2]int]bool{}
	for i, f := range w.Flows {
		if f.ID != i {
			t.Errorf("flow %d has ID %d", i, f.ID)
		}
		if f.Src < 0 || f.Src >= 2 || f.Dst < 0 || f.Dst >= 3 {
			t.Errorf("flow %d endpoints out of range: %+v", i, f)
		}
		key := [2]int{f.Src, f.Dst}
		if seen[key] {
			t.Errorf("duplicate flow %v", key)
		}
		seen[key] = true
		if f.Size <= 0 {
			t.Errorf("flow %d has non-positive size", i)
		}
	}
}

func TestGravityProportionality(t *testing.T) {
	a, b := twoISPs()
	w := New(a, b, Gravity, nil)
	// size(src,dst) proportional to pop(src)*pop(dst):
	// flow (1,2) / flow (0,0) = (4e6*6e6)/(1e6*2e6) = 12.
	var f00, f12 float64
	for _, f := range w.Flows {
		if f.Src == 0 && f.Dst == 0 {
			f00 = f.Size
		}
		if f.Src == 1 && f.Dst == 2 {
			f12 = f.Size
		}
	}
	if math.Abs(f12/f00-12) > 1e-9 {
		t.Errorf("gravity ratio = %v, want 12", f12/f00)
	}
}

func TestNormalizationMeanOne(t *testing.T) {
	a, b := twoISPs()
	for _, m := range []Model{Gravity, Identical, UniformRandom} {
		w := New(a, b, m, rand.New(rand.NewSource(3)))
		mean := w.TotalSize() / float64(len(w.Flows))
		if math.Abs(mean-1) > 1e-9 {
			t.Errorf("%v: mean flow size = %v, want 1", m, mean)
		}
	}
}

func TestIdenticalAllEqual(t *testing.T) {
	a, b := twoISPs()
	w := New(a, b, Identical, nil)
	for _, f := range w.Flows {
		if math.Abs(f.Size-1) > 1e-9 {
			t.Errorf("identical model produced size %v", f.Size)
		}
	}
}

func TestUniformRandomDeterministicPerSeed(t *testing.T) {
	a, b := twoISPs()
	w1 := New(a, b, UniformRandom, rand.New(rand.NewSource(5)))
	w2 := New(a, b, UniformRandom, rand.New(rand.NewSource(5)))
	for i := range w1.Flows {
		if w1.Flows[i].Size != w2.Flows[i].Size {
			t.Fatal("same seed gave different workloads")
		}
	}
	w3 := New(a, b, UniformRandom, rand.New(rand.NewSource(6)))
	same := true
	for i := range w1.Flows {
		if w1.Flows[i].Size != w3.Flows[i].Size {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
}

func TestUniformRandomNeedsRNG(t *testing.T) {
	a, b := twoISPs()
	defer func() {
		if recover() == nil {
			t.Error("expected panic without rng")
		}
	}()
	New(a, b, UniformRandom, nil)
}

func TestModelString(t *testing.T) {
	if Gravity.String() != "gravity" || Identical.String() != "identical" || UniformRandom.String() != "uniform-random" {
		t.Error("model names wrong")
	}
	if Model(42).String() == "" {
		t.Error("unknown model should still stringify")
	}
}

func TestFilterImpacted(t *testing.T) {
	flows := []Flow{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	assign := []int{1, 0, 1, 2}
	got := FilterImpacted(flows, assign, 1)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 2 {
		t.Errorf("FilterImpacted = %+v", got)
	}
	if got := FilterImpacted(flows, assign, 9); len(got) != 0 {
		t.Errorf("expected no impacted flows, got %d", len(got))
	}
}

package experiments

import (
	"math/rand"

	"repro/internal/nexit"
	"repro/internal/stability"
)

// StabilityResult quantifies the paper's motivating claim (§1/§2.2):
// reactive unilateral routing after failures can enter cycles of
// influence, while negotiation terminates by construction and settles at
// a mutually acceptable point.
type StabilityResult struct {
	Converged, Oscillated, Exhausted int
	// ReactiveWorst and NegotiatedWorst are, per failure case, the
	// worst-ISP MEL of the reactive end state (or cycling state) and of
	// the negotiated outcome.
	ReactiveWorst, NegotiatedWorst []float64
	FailureCases                   int
}

// StabilityCaseResult is one failure case's streamed contribution to
// the stability comparison.
type StabilityCaseResult struct {
	// Pair names the ISP pair ("ispA-ispB") and FailedInterconnection
	// the hypothesized failure.
	Pair                  string `json:"pair"`
	FailedInterconnection int    `json:"failed_interconnection"`
	// Outcome is the reactive dynamics' fate for this case
	// (stability.Converged / Oscillated / Exhausted).
	Outcome         stability.Outcome `json:"outcome"`
	ReactiveWorst   float64           `json:"reactive_worst_mel"`
	NegotiatedWorst float64           `json:"negotiated_worst_mel"`
}

// StabilityStream replays the bandwidth failure cases under reactive
// best-response dynamics and under Nexit, delivering each case's result
// to sink in (pair, interconnection) order without retaining it.
// Returns the number of cases delivered.
func StabilityStream(ds *Dataset, opt BandwidthOptions, sink func(idx int, r *StabilityCaseResult) error) (int, error) {
	opt.Options = opt.Options.withDefaults()
	cfg := nexit.DefaultBandwidthConfig()
	cfg.PrefBound = opt.PrefBound

	return forEachFailureCase(ds, opt, saltStability,
		func(fc *failureCase, rng *rand.Rand) (*StabilityCaseResult, error) {
			sim := &stability.Simulator{
				S:               fc.s2,
				Flows:           fc.impacted,
				FixedUp:         fc.fixedUp,
				FixedDown:       fc.fixedDown,
				CapUp:           fc.capUp,
				CapDown:         fc.capDown,
				DownstreamFirst: true,
			}
			r := sim.Run(fc.defAssign)

			evalA := fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, false)
			evalB := fc.newBandwidthEvaluator(nexit.SideB, opt.PrefBound, false)
			neg, err := nexit.Negotiate(cfg, evalA, evalB, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			up, down := fc.mels(neg.Assign)
			return &StabilityCaseResult{
				Pair:                  pairLabel(fc.pair),
				FailedInterconnection: fc.failed,
				Outcome:               r.Outcome,
				ReactiveWorst:         r.FinalWorstMEL,
				NegotiatedWorst:       maxFloat(up, down),
			}, nil
		},
		sink)
}

// Stability replays the bandwidth failure cases under best-response
// reactive dynamics (downstream first, as in the paper's incident) and
// under Nexit, comparing stability and outcome quality — a fold over
// StabilityStream. Failure cases are evaluated concurrently per pair
// (Options.Workers) with identical results for every worker count.
func Stability(ds *Dataset, opt BandwidthOptions) (*StabilityResult, error) {
	res := &StabilityResult{}
	cases, err := StabilityStream(ds, opt, func(_ int, o *StabilityCaseResult) error {
		switch o.Outcome {
		case stability.Converged:
			res.Converged++
		case stability.Oscillated:
			res.Oscillated++
		default:
			res.Exhausted++
		}
		res.ReactiveWorst = append(res.ReactiveWorst, o.ReactiveWorst)
		res.NegotiatedWorst = append(res.NegotiatedWorst, o.NegotiatedWorst)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FailureCases = cases
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

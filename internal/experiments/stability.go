package experiments

import (
	"math/rand"

	"repro/internal/nexit"
	"repro/internal/stability"
)

// StabilityResult quantifies the paper's motivating claim (§1/§2.2):
// reactive unilateral routing after failures can enter cycles of
// influence, while negotiation terminates by construction and settles at
// a mutually acceptable point.
type StabilityResult struct {
	Converged, Oscillated, Exhausted int
	// ReactiveWorst and NegotiatedWorst are, per failure case, the
	// worst-ISP MEL of the reactive end state (or cycling state) and of
	// the negotiated outcome.
	ReactiveWorst, NegotiatedWorst []float64
	FailureCases                   int
}

// stabilityCaseOut is one failure case's contribution to
// StabilityResult.
type stabilityCaseOut struct {
	outcome         stability.Outcome
	reactiveWorst   float64
	negotiatedWorst float64
}

// Stability replays the bandwidth failure cases under best-response
// reactive dynamics (downstream first, as in the paper's incident) and
// under Nexit, comparing stability and outcome quality. Failure cases
// are evaluated concurrently per pair (Options.Workers) with identical
// results for every worker count.
func Stability(ds *Dataset, opt BandwidthOptions) (*StabilityResult, error) {
	opt.Options = opt.Options.withDefaults()
	res := &StabilityResult{}
	cfg := nexit.DefaultBandwidthConfig()
	cfg.PrefBound = opt.PrefBound

	cases, err := forEachFailureCase(ds, opt, saltStability,
		func(fc *failureCase, rng *rand.Rand) (*stabilityCaseOut, error) {
			sim := &stability.Simulator{
				S:               fc.s2,
				Flows:           fc.impacted,
				FixedUp:         fc.fixedUp,
				FixedDown:       fc.fixedDown,
				CapUp:           fc.capUp,
				CapDown:         fc.capDown,
				DownstreamFirst: true,
			}
			r := sim.Run(fc.defAssign)

			evalA := fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, false)
			evalB := fc.newBandwidthEvaluator(nexit.SideB, opt.PrefBound, false)
			neg, err := nexit.Negotiate(cfg, evalA, evalB, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			up, down := fc.mels(neg.Assign)
			return &stabilityCaseOut{
				outcome:         r.Outcome,
				reactiveWorst:   r.FinalWorstMEL,
				negotiatedWorst: maxFloat(up, down),
			}, nil
		},
		func(o *stabilityCaseOut) {
			switch o.outcome {
			case stability.Converged:
				res.Converged++
			case stability.Oscillated:
				res.Oscillated++
			default:
				res.Exhausted++
			}
			res.ReactiveWorst = append(res.ReactiveWorst, o.reactiveWorst)
			res.NegotiatedWorst = append(res.NegotiatedWorst, o.negotiatedWorst)
		})
	if err != nil {
		return nil, err
	}
	res.FailureCases = cases
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"math/rand"

	"repro/internal/nexit"
	"repro/internal/stability"
)

// StabilityResult quantifies the paper's motivating claim (§1/§2.2):
// reactive unilateral routing after failures can enter cycles of
// influence, while negotiation terminates by construction and settles at
// a mutually acceptable point.
type StabilityResult struct {
	Converged, Oscillated, Exhausted int
	// ReactiveWorst and NegotiatedWorst are, per failure case, the
	// worst-ISP MEL of the reactive end state (or cycling state) and of
	// the negotiated outcome.
	ReactiveWorst, NegotiatedWorst []float64
	FailureCases                   int
}

// Stability replays the bandwidth failure cases under best-response
// reactive dynamics (downstream first, as in the paper's incident) and
// under Nexit, comparing stability and outcome quality.
func Stability(ds *Dataset, opt BandwidthOptions) (*StabilityResult, error) {
	opt.Options = opt.Options.withDefaults()
	pairs := selectPairs(ds.BandwidthPairs(), opt.Options)
	rng := rand.New(rand.NewSource(opt.Seed + 3))
	res := &StabilityResult{}
	cfg := nexit.DefaultBandwidthConfig()
	cfg.PrefBound = opt.PrefBound

	for _, pair := range pairs {
		for k := 0; k < pair.NumInterconnections(); k++ {
			if opt.MaxFailures > 0 && res.FailureCases >= opt.MaxFailures {
				return res, nil
			}
			fc := buildFailureCase(pair, ds.Cache, k, opt.Workload, opt.Capacity, rng)
			if fc == nil {
				continue
			}
			sim := &stability.Simulator{
				S:               fc.s2,
				Flows:           fc.impacted,
				FixedUp:         fc.fixedUp,
				FixedDown:       fc.fixedDown,
				CapUp:           fc.capUp,
				CapDown:         fc.capDown,
				DownstreamFirst: true,
			}
			r := sim.Run(fc.defAssign)
			switch r.Outcome {
			case stability.Converged:
				res.Converged++
			case stability.Oscillated:
				res.Oscillated++
			default:
				res.Exhausted++
			}
			res.ReactiveWorst = append(res.ReactiveWorst, r.FinalWorstMEL)

			evalA := fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, false)
			evalB := fc.newBandwidthEvaluator(nexit.SideB, opt.PrefBound, false)
			neg, err := nexit.Negotiate(cfg, evalA, evalB, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			up, down := fc.mels(neg.Assign)
			res.NegotiatedWorst = append(res.NegotiatedWorst, maxFloat(up, down))
			res.FailureCases++
		}
	}
	return res, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

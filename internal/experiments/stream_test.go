package experiments

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// The streaming pipeline's contract (DESIGN.md §8): every driver's
// streamed records are identical pair-by-pair for every worker count
// (serial == parallel == streaming), the batch driver is a pure fold of
// the stream, and the stream retains nothing — steady-state memory is
// O(workers), not O(pairs).

// streamRecords collects a streaming driver's records via a generic
// sink, checking the idx sequence is dense and ordered.
func streamRecords[R any](t *testing.T, stream func(sink func(int, *R) error) error) []*R {
	t.Helper()
	var out []*R
	err := stream(func(idx int, r *R) error {
		if idx != len(out) {
			t.Fatalf("sink saw idx %d, want %d (order broken)", idx, len(out))
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertStreamParity pins records identical between the serial path
// and one contended parallel run. (The batch parity tests already
// exercise the same streaming core at a second worker count — every
// batch driver is a fold of its stream — so one pairing here keeps the
// -race bill bounded.)
func assertStreamParity[R any](t *testing.T, name string, run func(workers int) []*R) {
	t.Helper()
	serial := run(1)
	if len(serial) == 0 {
		t.Fatalf("%s: no records streamed", name)
	}
	parallel := run(8)
	if len(parallel) != len(serial) {
		t.Fatalf("%s: workers=8 streamed %d records, serial %d", name, len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("%s: workers=8 record %d differs:\nserial:   %+v\nparallel: %+v",
				name, i, serial[i], parallel[i])
		}
	}
}

func TestDistanceStreamParity(t *testing.T) {
	ds := smallDataset(t)
	records := func(workers int) []*DistancePairResult {
		opt := Options{MaxPairs: 8, Seed: 5, Workers: workers}
		return streamRecords(t, func(sink func(int, *DistancePairResult) error) error {
			return DistanceStream(ds, opt, sink)
		})
	}
	assertStreamParity(t, "Distance", records)

	// The batch driver is a fold of the same stream: its sample sets
	// must be the streamed records, in order.
	serial := records(1)
	batch, err := Distance(ds, Options{MaxPairs: 8, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Pairs != len(serial) {
		t.Fatalf("batch folded %d pairs, stream delivered %d", batch.Pairs, len(serial))
	}
	for i, r := range serial {
		if batch.PairGainNeg[i] != r.GainNeg || batch.PairGainOpt[i] != r.GainOpt ||
			batch.NonDefaultFraction[i] != r.NonDefaultFraction {
			t.Fatalf("batch sample %d diverges from streamed record", i)
		}
	}
}

func TestDistanceCheatStreamParity(t *testing.T) {
	ds := smallDataset(t)
	assertStreamParity(t, "DistanceCheat", func(workers int) []*CheatPairResult {
		opt := Options{MaxPairs: 6, Seed: 5, Workers: workers}
		return streamRecords(t, func(sink func(int, *CheatPairResult) error) error {
			return DistanceCheatStream(ds, opt, sink)
		})
	})
}

func TestBandwidthStreamParity(t *testing.T) {
	ds := smallDataset(t)
	assertStreamParity(t, "Bandwidth", func(workers int) []*BandwidthCaseResult {
		opt := BandwidthOptions{
			Options:     Options{MaxPairs: 3, Seed: 5, Workers: workers},
			Workload:    traffic.Gravity,
			MaxFailures: 9,
		}
		return streamRecords(t, func(sink func(int, *BandwidthCaseResult) error) error {
			_, err := BandwidthStream(ds, opt, sink)
			return err
		})
	})
}

func TestDestinationStreamParity(t *testing.T) {
	ds := smallDataset(t)
	assertStreamParity(t, "DestinationBased", func(workers int) []*DestinationPairResult {
		opt := Options{MaxPairs: 5, Seed: 5, Workers: workers}
		return streamRecords(t, func(sink func(int, *DestinationPairResult) error) error {
			return DestinationStream(ds, opt, sink)
		})
	})
}

func TestScalabilityStreamParity(t *testing.T) {
	ds := smallDataset(t)
	fractions := []float64{0.5, 1.0}
	assertStreamParity(t, "Scalability", func(workers int) []*ScalabilityPairResult {
		opt := Options{MaxPairs: 8, Seed: 5, Workers: workers}
		return streamRecords(t, func(sink func(int, *ScalabilityPairResult) error) error {
			return ScalabilityStream(ds, opt, fractions, sink)
		})
	})
}

func TestStabilityStreamParity(t *testing.T) {
	ds := smallDataset(t)
	assertStreamParity(t, "Stability", func(workers int) []*StabilityCaseResult {
		opt := BandwidthOptions{
			Options:     Options{MaxPairs: 2, Seed: 5, Workers: workers},
			Workload:    traffic.Gravity,
			MaxFailures: 6,
		}
		return streamRecords(t, func(sink func(int, *StabilityCaseResult) error) error {
			_, err := StabilityStream(ds, opt, sink)
			return err
		})
	})
}

// A sink returning runner.ErrStop cancels the stream cleanly.
func TestStreamEarlyStop(t *testing.T) {
	ds := smallDataset(t)
	got := 0
	err := DistanceStream(ds, Options{MaxPairs: 10, Seed: 5, Workers: 4},
		func(idx int, r *DistancePairResult) error {
			got++
			if got == 3 {
				return runner.ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop surfaced as an error: %v", err)
	}
	if got != 3 {
		t.Fatalf("sink saw %d records after stopping at 3", got)
	}

	cases, err := BandwidthStream(ds, BandwidthOptions{
		Options:  Options{MaxPairs: 4, Seed: 5, Workers: 4},
		Workload: traffic.Gravity,
	}, func(idx int, r *BandwidthCaseResult) error {
		if idx == 4 {
			return runner.ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop surfaced as an error: %v", err)
	}
	if cases != 5 {
		t.Fatalf("delivered %d cases, want 5 (stop after idx 4)", cases)
	}
}

// BenchmarkScalabilityStream measures the Scalability driver on the
// streaming path with a constant-memory digest sink. ReportAllocs
// tracks that allocation per op stays flat: the stream allocates
// per-pair scratch that dies young, never an O(pairs) result.
func BenchmarkScalabilityStream(b *testing.B) {
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 18
	ds, err := Load(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ds.Warm(0)
	opt := Options{MaxPairs: 10, Seed: 5}
	fractions := []float64{0.5, 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		digest := stats.NewDigest()
		err := ScalabilityStream(ds, opt, fractions, func(_ int, r *ScalabilityPairResult) error {
			digest.Add(r.GainShares[0])
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if digest.Stream.N() == 0 {
			b.Fatal("stream delivered nothing")
		}
	}
}

// TestScalabilityStreamConstantMemory pins the streaming pipeline's
// memory contract: records streamed through a constant-memory sink
// become garbage almost immediately — retention is O(workers), not
// O(pairs). Each record gets a finalizer; after the run, (almost) every
// record must be collectable. A pipeline that secretly retained results
// (the pre-streaming materialize-then-reduce idiom) keeps all of them
// live and fails this test.
func TestScalabilityStreamConstantMemory(t *testing.T) {
	ds := smallDataset(t)
	ds.Warm(0)

	var streamed, finalized atomic.Int64
	digest := stats.NewDigest()
	err := ScalabilityStream(ds, Options{MaxPairs: 16, Seed: 5, Workers: 4}, []float64{0.5, 1.0},
		func(idx int, r *ScalabilityPairResult) error {
			streamed.Add(1)
			runtime.SetFinalizer(r, func(*ScalabilityPairResult) { finalized.Add(1) })
			digest.Add(r.GainShares[1]) // constant-memory aggregation
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := streamed.Load()
	if total < 10 {
		t.Fatalf("only %d records streamed; dataset too small for the retention check", total)
	}

	// Allow a small constant number of records to linger (the last few
	// can be pinned by the final GC cycle); O(pairs) retention keeps all
	// of them and trips the bound.
	const slack = 4
	deadline := time.Now().Add(10 * time.Second)
	for finalized.Load() < total-slack && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := finalized.Load(); got < total-slack {
		t.Fatalf("only %d of %d streamed records were collectable; results are being retained", got, total)
	}
	if digest.Stream.N() != total {
		t.Fatalf("digest folded %d samples, want %d", digest.Stream.N(), total)
	}
}

package experiments

import (
	"math"
	"sort"

	"repro/internal/baseline"
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// DistanceResult aggregates every sample the distance experiments plot
// (Figures 4, 5, 6 and the §5.1 textual analyses).
type DistanceResult struct {
	// Figure 4a: percentage reduction in total (both-ISP) distance
	// relative to default routing, one sample per ISP pair.
	PairGainNeg, PairGainOpt []float64
	// Figure 4b: per-ISP distance gain, two samples per pair. Under the
	// global optimum individual ISPs can lose (negative gain); under
	// negotiation they should not.
	IndGainNeg, IndGainOpt []float64
	// Figure 5: total gain of the flow-local strategies.
	PairGainPareto, PairGainBothBetter []float64
	// Figure 6: per-flow distance gain, pooled across all pairs.
	FlowGainNeg, FlowGainOpt []float64
	// GainVsInterconnections buckets pair total negotiated gain by the
	// pair's interconnection count (§5.1: "ISPs with more
	// interconnections gain more through negotiation").
	GainVsInterconnections map[int][]float64
	// NonDefaultFraction is, per pair, the fraction of flows negotiation
	// moved off their default path (§5.1: "only a fraction of flows —
	// roughly 20% — need to be non-default routed").
	NonDefaultFraction []float64
	// GroupGain4 is the total gain when negotiating in 4 separate groups
	// (§5.1 ablation).
	GroupGain4 []float64
	// Pairs is the number of ISP pairs processed.
	Pairs int
}

// pairSetup holds the per-pair state shared by distance experiments.
type pairSetup struct {
	s        *pairsim.System
	rev      *pairsim.System
	items    []nexit.Item
	defaults []int
}

// newPairSetupWithModel builds flows in both directions with early-exit
// defaults under the given flow-size model (distance metrics use
// traffic.Identical since they are size-independent; the scalability
// analysis needs skewed gravity sizes).
func newPairSetupWithModel(pair *topology.Pair, cache *pairsim.TableCache, model traffic.Model) pairSetup {
	s := pairsim.New(pair, cache)
	rev := s.Reverse()
	wAB := traffic.New(pair.A, pair.B, model, nil)
	wBA := traffic.New(pair.B, pair.A, model, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	return pairSetup{s: s, rev: rev, items: items, defaults: defaults}
}

// itemDist returns the end-to-end distance of an item under alternative
// k, and the split inside ISP A and ISP B.
func (ps pairSetup) itemDist(it nexit.Item, k int) (total, inA, inB float64) {
	if it.Dir == nexit.AtoB {
		inA, inB = ps.s.UpDistKm(it.Flow, k), ps.s.DownDistKm(it.Flow, k)
	} else {
		inB, inA = ps.rev.UpDistKm(it.Flow, k), ps.rev.DownDistKm(it.Flow, k)
	}
	total = inA + inB + ps.s.Pair.Interconnections[k].LengthKm
	return total, inA, inB
}

// distances sums end-to-end and per-ISP distances of an assignment.
func (ps pairSetup) distances(assign []int) (total, inA, inB float64) {
	for i, it := range ps.items {
		t, a, b := ps.itemDist(it, assign[i])
		total += t
		inA += a
		inB += b
	}
	return total, inA, inB
}

// DistancePairResult is one ISP pair's streamed contribution to the
// §5.1 experiments: every per-pair sample of Figures 4, 5, 6 and the
// text analyses, computed concurrently and delivered in pair order.
type DistancePairResult struct {
	// Pair names the ISP pair ("ispA-ispB"), making streamed records
	// self-describing.
	Pair string `json:"pair"`
	// Interconnections is the pair's alternative count.
	Interconnections int `json:"interconnections"`
	// Total-gain percentages over default routing (Figures 4a, 5 and
	// the group ablation).
	GainNeg        float64 `json:"gain_negotiated"`
	GainOpt        float64 `json:"gain_optimal"`
	GainPareto     float64 `json:"gain_flow_pareto"`
	GainBothBetter float64 `json:"gain_flow_both_better"`
	GainGroup4     float64 `json:"gain_group4"`
	// Individual per-ISP gains (Figure 4b).
	IndNegA float64 `json:"ind_negotiated_a"`
	IndNegB float64 `json:"ind_negotiated_b"`
	IndOptA float64 `json:"ind_optimal_a"`
	IndOptB float64 `json:"ind_optimal_b"`
	// Per-flow gains inside this pair (Figure 6 pools them).
	FlowGainNeg []float64 `json:"flow_gain_negotiated"`
	FlowGainOpt []float64 `json:"flow_gain_optimal"`
	// NonDefaultFraction is the fraction of flows negotiation moved off
	// their default path.
	NonDefaultFraction float64 `json:"non_default_fraction"`
}

// DistanceStream runs the §5.1 experiments, delivering each pair's
// result to sink strictly in pair order without retaining it — the
// constant-memory form of Distance. sink may return runner.ErrStop to
// cancel the remaining pairs without error. Results are identical for
// every worker count, pair by pair.
func DistanceStream(ds *Dataset, opt Options, sink func(idx int, r *DistancePairResult) error) error {
	opt = opt.withDefaults()
	pairs := selectPairs(ds.DistancePairs(), opt)
	return forEachPair(pairs, ds, opt, saltDistance, traffic.Identical,
		func(job pairJob) (*DistancePairResult, error) {
			ps := job.ps
			na := ps.s.NumAlternatives()

			// Globally optimal: per-item best end-to-end alternative.
			optAssign := make([]int, len(ps.items))
			for i, it := range ps.items {
				best, bestD := 0, math.Inf(1)
				for k := 0; k < na; k++ {
					if d, _, _ := ps.itemDist(it, k); d < bestD {
						best, bestD = k, d
					}
				}
				optAssign[i] = best
			}

			// Negotiated: Nexit with distance evaluators on both sides.
			cfg := nexit.DefaultDistanceConfig()
			cfg.PrefBound = opt.PrefBound
			evalA := nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound)
			evalB := nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound)
			neg, err := nexit.Negotiate(cfg, evalA, evalB, ps.items, ps.defaults, na)
			if err != nil {
				return nil, err
			}

			// Flow-local strategies (Figure 5), drawing from the pair's
			// private RNG.
			dA, dB := baseline.DistanceDeltas(ps.s, ps.items, ps.defaults)
			paretoAssign := baseline.FlowLocal(baseline.FlowPareto, dA, dB, ps.defaults, job.rng)
			bothAssign := baseline.FlowLocal(baseline.FlowBothBetter, dA, dB, ps.defaults, job.rng)

			// Group negotiation ablation (4 groups).
			groupAssign, err := baseline.GroupNegotiate(cfg,
				nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound),
				nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound),
				ps.items, ps.defaults, na, 4)
			if err != nil {
				return nil, err
			}

			optTotal, optA, optB := ps.distances(optAssign)
			negTotal, negA, negB := ps.distances(neg.Assign)
			parTotal, _, _ := ps.distances(paretoAssign)
			bothTotal, _, _ := ps.distances(bothAssign)
			grpTotal, _, _ := ps.distances(groupAssign)

			out := &DistancePairResult{
				Pair:             pairLabel(ps.s.Pair),
				Interconnections: na,
				GainOpt:          metrics.GainPercent(job.defTotal, optTotal),
				GainNeg:          metrics.GainPercent(job.defTotal, negTotal),
				GainPareto:       metrics.GainPercent(job.defTotal, parTotal),
				GainBothBetter:   metrics.GainPercent(job.defTotal, bothTotal),
				GainGroup4:       metrics.GainPercent(job.defTotal, grpTotal),
				IndOptA:          metrics.GainPercent(job.defA, optA),
				IndOptB:          metrics.GainPercent(job.defB, optB),
				IndNegA:          metrics.GainPercent(job.defA, negA),
				IndNegB:          metrics.GainPercent(job.defB, negB),
			}
			nonDefault := 0
			for i, it := range ps.items {
				dDef, _, _ := ps.itemDist(it, ps.defaults[i])
				dNeg, _, _ := ps.itemDist(it, neg.Assign[i])
				dOpt, _, _ := ps.itemDist(it, optAssign[i])
				if dDef > 0 {
					out.FlowGainNeg = append(out.FlowGainNeg, metrics.GainPercent(dDef, dNeg))
					out.FlowGainOpt = append(out.FlowGainOpt, metrics.GainPercent(dDef, dOpt))
				}
				if neg.Assign[i] != ps.defaults[i] {
					nonDefault++
				}
			}
			out.NonDefaultFraction = float64(nonDefault) / float64(len(ps.items))
			return out, nil
		},
		sink)
}

// Distance runs the §5.1 experiments (Figures 4, 5, 6 and text
// analyses) over the dataset and collects the figures' sample sets. It
// is a fold over DistanceStream — the streaming path is the only
// evaluation path, so batch and streaming results agree pair by pair by
// construction (and the parity tests pin it). Pairs are evaluated
// concurrently (Options.Workers) with identical results for every
// worker count.
func Distance(ds *Dataset, opt Options) (*DistanceResult, error) {
	res := &DistanceResult{GainVsInterconnections: map[int][]float64{}}
	err := DistanceStream(ds, opt, func(_ int, o *DistancePairResult) error {
		res.PairGainOpt = append(res.PairGainOpt, o.GainOpt)
		res.PairGainNeg = append(res.PairGainNeg, o.GainNeg)
		res.PairGainPareto = append(res.PairGainPareto, o.GainPareto)
		res.PairGainBothBetter = append(res.PairGainBothBetter, o.GainBothBetter)
		res.GroupGain4 = append(res.GroupGain4, o.GainGroup4)
		res.IndGainOpt = append(res.IndGainOpt, o.IndOptA, o.IndOptB)
		res.IndGainNeg = append(res.IndGainNeg, o.IndNegA, o.IndNegB)
		res.GainVsInterconnections[o.Interconnections] = append(
			res.GainVsInterconnections[o.Interconnections], o.GainNeg)
		res.FlowGainNeg = append(res.FlowGainNeg, o.FlowGainNeg...)
		res.FlowGainOpt = append(res.FlowGainOpt, o.FlowGainOpt...)
		res.NonDefaultFraction = append(res.NonDefaultFraction, o.NonDefaultFraction)
		res.Pairs++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// DistanceCheatResult aggregates the Figure 10 samples.
type DistanceCheatResult struct {
	// Total gain across both ISPs: both truthful vs one cheater.
	TotalTruthful, TotalCheat []float64
	// Individual gains: with both truthful (pooled over both ISPs), the
	// cheater's gain, and the truthful victim's gain.
	IndTruthful, IndCheater, IndVictim []float64
	// CheaterDelta is the paired comparison the paper's conclusion rests
	// on: per pair, the cheating ISP's gain minus the gain the same ISP
	// obtains when truthful. Negative values mean cheating backfired.
	CheaterDelta []float64
	Pairs        int
}

// CheatPairResult is one ISP pair's streamed contribution to the §5.4
// distance-cheating experiment (Figure 10).
type CheatPairResult struct {
	// Pair names the ISP pair ("ispA-ispB").
	Pair          string  `json:"pair"`
	TotalTruthful float64 `json:"total_truthful"`
	TotalCheat    float64 `json:"total_cheat"`
	IndTruthfulA  float64 `json:"ind_truthful_a"`
	IndTruthfulB  float64 `json:"ind_truthful_b"`
	IndCheater    float64 `json:"ind_cheater"`
	IndVictim     float64 `json:"ind_victim"`
	// CheaterDelta is the cheater's gain minus the same ISP's truthful
	// gain; negative means cheating backfired.
	CheaterDelta float64 `json:"cheater_delta"`
}

// DistanceCheatStream runs the §5.4 distance experiment (ISP A cheats
// using the inflate-best strategy with perfect knowledge of B's
// preferences), delivering each pair's result to sink in pair order
// without retaining it.
func DistanceCheatStream(ds *Dataset, opt Options, sink func(idx int, r *CheatPairResult) error) error {
	opt = opt.withDefaults()
	pairs := selectPairs(ds.DistancePairs(), opt)
	return forEachPair(pairs, ds, opt, saltCheat, traffic.Identical,
		func(job pairJob) (*CheatPairResult, error) {
			ps := job.ps
			na := ps.s.NumAlternatives()
			cfg := nexit.DefaultDistanceConfig()
			cfg.PrefBound = opt.PrefBound
			run := func(evalA nexit.Evaluator) (*nexit.Result, error) {
				evalB := nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound)
				return nexit.Negotiate(cfg, evalA, evalB, ps.items, ps.defaults, na)
			}
			honest, err := run(nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound))
			if err != nil {
				return nil, err
			}
			cheat, err := run(&nexit.CheatEvaluator{
				Truthful: nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound),
				Other:    nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound),
				P:        opt.PrefBound,
			})
			if err != nil {
				return nil, err
			}

			hTotal, hA, hB := ps.distances(honest.Assign)
			cTotal, cA, cB := ps.distances(cheat.Assign)
			return &CheatPairResult{
				Pair:          pairLabel(ps.s.Pair),
				TotalTruthful: metrics.GainPercent(job.defTotal, hTotal),
				TotalCheat:    metrics.GainPercent(job.defTotal, cTotal),
				IndTruthfulA:  metrics.GainPercent(job.defA, hA),
				IndTruthfulB:  metrics.GainPercent(job.defB, hB),
				IndCheater:    metrics.GainPercent(job.defA, cA),
				IndVictim:     metrics.GainPercent(job.defB, cB),
				CheaterDelta:  metrics.GainPercent(job.defA, cA) - metrics.GainPercent(job.defA, hA),
			}, nil
		},
		sink)
}

// DistanceCheat runs the §5.4 distance experiment and collects the
// Figure 10 sample sets — a fold over DistanceCheatStream.
func DistanceCheat(ds *Dataset, opt Options) (*DistanceCheatResult, error) {
	res := &DistanceCheatResult{}
	err := DistanceCheatStream(ds, opt, func(_ int, o *CheatPairResult) error {
		res.TotalTruthful = append(res.TotalTruthful, o.TotalTruthful)
		res.TotalCheat = append(res.TotalCheat, o.TotalCheat)
		res.IndTruthful = append(res.IndTruthful, o.IndTruthfulA, o.IndTruthfulB)
		res.IndCheater = append(res.IndCheater, o.IndCheater)
		res.IndVictim = append(res.IndVictim, o.IndVictim)
		res.CheaterDelta = append(res.CheaterDelta, o.CheaterDelta)
		res.Pairs++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PreferenceRangeAblation reruns the negotiated distance experiment for
// several preference bounds P and returns median total gain per P — the
// paper's observation that "increasing the range [beyond -10,10] does
// not lead to noticeable increase in performance".
func PreferenceRangeAblation(ds *Dataset, opt Options, bounds []int) (map[int]float64, error) {
	opt = opt.withDefaults()
	out := make(map[int]float64, len(bounds))
	for _, p := range bounds {
		o := opt
		o.PrefBound = p
		r, err := Distance(ds, o)
		if err != nil {
			return nil, err
		}
		sorted := append([]float64(nil), r.PairGainNeg...)
		sort.Float64s(sorted)
		if len(sorted) > 0 {
			out[p] = sorted[len(sorted)/2]
		}
	}
	return out, nil
}

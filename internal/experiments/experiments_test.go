package experiments

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// smallDataset generates a reduced dataset so tests stay fast.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 18
	ds, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestInventory(t *testing.T) {
	ds := smallDataset(t)
	inv := ds.Inventory()
	if !strings.Contains(inv, "ISPs: 18") {
		t.Errorf("inventory = %q", inv)
	}
}

func TestDistanceExperiment(t *testing.T) {
	ds := smallDataset(t)
	res, err := Distance(ds, Options{MaxPairs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs processed")
	}
	if len(res.PairGainNeg) != res.Pairs || len(res.PairGainOpt) != res.Pairs {
		t.Fatalf("per-pair sample counts wrong: %d/%d/%d",
			len(res.PairGainNeg), len(res.PairGainOpt), res.Pairs)
	}
	if len(res.IndGainNeg) != 2*res.Pairs {
		t.Fatalf("individual samples = %d, want %d", len(res.IndGainNeg), 2*res.Pairs)
	}

	for i := range res.PairGainNeg {
		// The optimal is a true optimum: no method may beat it.
		if res.PairGainNeg[i] > res.PairGainOpt[i]+1e-9 {
			t.Errorf("pair %d: negotiated gain %.3f exceeds optimal %.3f",
				i, res.PairGainNeg[i], res.PairGainOpt[i])
		}
		if res.PairGainPareto[i] > res.PairGainOpt[i]+1e-9 ||
			res.PairGainBothBetter[i] > res.PairGainOpt[i]+1e-9 {
			t.Errorf("pair %d: flow-local strategy beats the optimum", i)
		}
		// Negotiated total gain is never negative (defaults are always
		// available).
		if res.PairGainNeg[i] < -1e-9 {
			t.Errorf("pair %d: negotiated total gain %.3f negative", i, res.PairGainNeg[i])
		}
	}
	// Paper §5.1 headline: negotiation captures most of the optimal
	// gain. Check the aggregate shape: median negotiated gain at least
	// half the median optimal gain.
	neg := stats.NewCDF(res.PairGainNeg)
	opt := stats.NewCDF(res.PairGainOpt)
	if opt.Median() > 0.5 && neg.Median() < 0.4*opt.Median() {
		t.Errorf("negotiated median %.2f%% far below optimal median %.2f%%",
			neg.Median(), opt.Median())
	}
	// Individual ISPs essentially never lose under negotiation (paper
	// Figure 4b); allow a tiny numerical tolerance.
	indNeg := stats.NewCDF(res.IndGainNeg)
	if indNeg.Min() < -1.0 {
		t.Errorf("an ISP lost %.2f%% under negotiation", -indNeg.Min())
	}
	// Flow-level samples exist and no flow-level negotiated gain beats
	// optimal in aggregate count terms.
	if len(res.FlowGainNeg) == 0 || len(res.FlowGainNeg) != len(res.FlowGainOpt) {
		t.Fatalf("flow-level samples missing: %d/%d", len(res.FlowGainNeg), len(res.FlowGainOpt))
	}
}

func TestDistanceFlowLocalWeaker(t *testing.T) {
	// Figure 5's point: flow-local strategies achieve much less than
	// negotiation. Compare means over the sample.
	ds := smallDataset(t)
	res, err := Distance(ds, Options{MaxPairs: 12})
	if err != nil {
		t.Fatal(err)
	}
	neg := stats.NewCDF(res.PairGainNeg).Mean()
	both := stats.NewCDF(res.PairGainBothBetter).Mean()
	if both > neg+1e-9 {
		t.Errorf("flow-both-better mean %.3f exceeds negotiated %.3f", both, neg)
	}
}

func TestDistanceCheatExperiment(t *testing.T) {
	ds := smallDataset(t)
	// 12+ pairs: the cheating-backfires direction is a population claim
	// and single-digit subsets can sample against it.
	res, err := DistanceCheat(ds, Options{MaxPairs: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs processed")
	}
	// Figure 10's point: cheating reduces the total gain.
	truthful := stats.NewCDF(res.TotalTruthful).Mean()
	cheat := stats.NewCDF(res.TotalCheat).Mean()
	if cheat > truthful+1e-9 {
		t.Errorf("cheating increased mean total gain: %.3f > %.3f", cheat, truthful)
	}
}

func TestBandwidthExperiment(t *testing.T) {
	ds := smallDataset(t)
	res, err := Bandwidth(ds, BandwidthOptions{
		Options:     Options{MaxPairs: 8},
		Workload:    traffic.Gravity,
		MaxFailures: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureCases == 0 {
		t.Fatal("no failure cases processed")
	}
	// Per-ISP MEL ratios can legitimately dip below 1 (the LP minimizes
	// the global worst link, so one ISP's realized MEL need not be
	// individually minimal), but they cannot be wildly below, and in
	// aggregate the default should be clearly worse than negotiated.
	for i := 0; i < res.FailureCases; i++ {
		for _, r := range []float64{res.UpDef[i], res.UpNeg[i], res.DownDef[i], res.DownNeg[i]} {
			if r < 0 {
				t.Errorf("case %d: negative MEL ratio %.6f", i, r)
			}
		}
	}
	// Figure 7's headline: negotiated MELs cluster nearer the optimum
	// than default MELs. Compare means over the sample (individual
	// failure cases are noisy).
	negUp := stats.NewCDF(res.UpNeg)
	defUp := stats.NewCDF(res.UpDef)
	if negUp.Mean() > defUp.Mean()+0.05 {
		t.Errorf("negotiated upstream mean ratio %.3f worse than default %.3f",
			negUp.Mean(), defUp.Mean())
	}
	negDown := stats.NewCDF(res.DownNeg)
	defDown := stats.NewCDF(res.DownDef)
	if negDown.Mean() > defDown.Mean()+0.05 {
		t.Errorf("negotiated downstream mean ratio %.3f worse than default %.3f",
			negDown.Mean(), defDown.Mean())
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestBandwidthAlternateModels(t *testing.T) {
	// The paper reports qualitatively similar results under alternate
	// workload/capacity models; here we just verify the drivers run.
	ds := smallDataset(t)
	for _, w := range []traffic.Model{traffic.Identical, traffic.UniformRandom} {
		res, err := Bandwidth(ds, BandwidthOptions{
			Options:     Options{MaxPairs: 2},
			Workload:    w,
			MaxFailures: 4,
		})
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if res.FailureCases == 0 {
			t.Fatalf("%v: no failure cases", w)
		}
	}
	res, err := Bandwidth(ds, BandwidthOptions{
		Options:        Options{MaxPairs: 2},
		MaxFailures:    4,
		UseFortzThorup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureCases == 0 {
		t.Fatal("fortz-thorup: no failure cases")
	}
}

func TestPreferenceRangeAblation(t *testing.T) {
	ds := smallDataset(t)
	out, err := PreferenceRangeAblation(ds, Options{MaxPairs: 6}, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("ablation returned %d entries", len(out))
	}
	// More preference classes can only help (weakly) in aggregate; allow
	// small sampling noise.
	if out[1] > out[10]+2.0 {
		t.Errorf("P=1 median gain %.3f much higher than P=10 %.3f", out[1], out[10])
	}
}

func TestSelectPairs(t *testing.T) {
	ds := smallDataset(t)
	pairs := ds.DistancePairs()
	if len(pairs) < 3 {
		t.Skip("dataset too small")
	}
	sub := selectPairs(pairs, Options{MaxPairs: 2, Seed: 9})
	if len(sub) != 2 {
		t.Fatalf("got %d pairs, want 2", len(sub))
	}
	sub2 := selectPairs(pairs, Options{MaxPairs: 2, Seed: 9})
	if sub[0] != sub2[0] || sub[1] != sub2[1] {
		t.Error("subsampling not deterministic")
	}
	all := selectPairs(pairs, Options{MaxPairs: 0})
	if len(all) != len(pairs) {
		t.Error("MaxPairs=0 should return all pairs")
	}
}

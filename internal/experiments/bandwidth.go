package experiments

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/capacity"
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/optimal"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BandwidthOptions extends Options with the §5.2 modeling knobs the
// paper reports testing for robustness.
type BandwidthOptions struct {
	Options
	// Workload selects the flow-size model (default Gravity).
	Workload traffic.Model
	// Capacity configures link-capacity assignment (default: median rule
	// with upgrade, no discretization).
	Capacity capacity.Options
	// MaxFailures bounds the number of failure cases processed (0 = all).
	MaxFailures int
	// UseFortzThorup switches the ISPs' bandwidth preference metric from
	// max-load-increase to the Fortz–Thorup piecewise-linear cost (the
	// paper's alternate metric).
	UseFortzThorup bool
}

// BandwidthResult aggregates samples for Figures 7, 8, 9 and 11. Each
// sample corresponds to one hypothesized interconnection failure.
type BandwidthResult struct {
	// Figure 7: MEL relative to the MEL of optimal routing.
	UpDef, UpNeg     []float64 // upstream ISP panel
	DownDef, DownNeg []float64 // downstream ISP panel
	// Figure 8: downstream MEL under unilateral upstream optimization
	// relative to downstream MEL under default routing.
	UnilateralDownRatio []float64
	// Figure 9: diverse criteria — upstream optimizes bandwidth,
	// downstream distance.
	DiverseUpDef, DiverseUpNeg []float64 // MEL ratio to optimal
	DiverseDownGain            []float64 // downstream distance gain % over default
	// Figure 11: the upstream ISP cheats (bandwidth experiment).
	CheatUpNeg, CheatDownNeg []float64 // MEL ratios with one cheater
	// FailureCases is the number of (pair, failed interconnection)
	// observations processed.
	FailureCases int
	// NegotiatedNonDefault is the fraction of impacted flows negotiation
	// moved off the post-failure default, per failure case.
	NegotiatedNonDefault []float64
}

// failureCase holds the state of one (pair, failed interconnection)
// scenario: survivor system, impacted flows re-indexed densely, fixed
// loads from unaffected traffic, and capacities.
type failureCase struct {
	pair               *topology.Pair // the original (pre-failure) pair
	failed             int            // index of the failed interconnection
	s2                 *pairsim.System
	impacted           []traffic.Flow
	items              []nexit.Item
	defaults           []int
	fixedUp, fixedDown []float64
	capUp, capDown     []float64
	defAssign          pairsim.Assignment
	defUp, defDown     float64 // post-failure MELs under default routing
}

// buildFailureCase simulates the failure of interconnection k of the
// pair for traffic flowing A->B, per the paper's §5.2 methodology.
// Returns nil when no flow is impacted.
func buildFailureCase(pair *topology.Pair, cache *pairsim.TableCache, k int, model traffic.Model, capOpts capacity.Options, rng *rand.Rand) *failureCase {
	s := pairsim.New(pair, cache)
	w := traffic.New(pair.A, pair.B, model, rng)

	// Pre-failure: early-exit routing of all flows determines loads,
	// which in turn determine capacities ("capacities proportional to
	// the load before the failure").
	pre := baseline.EarlyExit(s, w.Flows)
	loadUp0, loadDown0 := s.Loads(w.Flows, pre)
	fc := &failureCase{
		pair:    pair,
		failed:  k,
		capUp:   capacity.Assign(loadUp0, capOpts),
		capDown: capacity.Assign(loadDown0, capOpts),
	}

	// Partition flows into impacted (were using the failed
	// interconnection) and unaffected.
	var unaffected []traffic.Flow
	for _, f := range w.Flows {
		if pre[f.ID] == k {
			fc.impacted = append(fc.impacted, f)
		} else {
			unaffected = append(unaffected, f)
		}
	}
	if len(fc.impacted) == 0 {
		return nil
	}

	// Survivor system: interconnection k removed; unaffected flows keep
	// their paths (indices above k shift down by one).
	fc.s2 = pairsim.New(pair.WithoutInterconnection(k), cache)
	fc.fixedUp = make([]float64, len(pair.A.Links))
	fc.fixedDown = make([]float64, len(pair.B.Links))
	for _, f := range unaffected {
		newIdx := pre[f.ID]
		if newIdx > k {
			newIdx--
		}
		fc.s2.AddFlowLoad(fc.fixedUp, fc.fixedDown, f, newIdx)
	}

	// Re-index impacted flows densely for the negotiation items.
	fc.items = make([]nexit.Item, len(fc.impacted))
	fc.defaults = make([]int, len(fc.impacted))
	reIndexed := make([]traffic.Flow, len(fc.impacted))
	for i, f := range fc.impacted {
		f.ID = i
		reIndexed[i] = f
		fc.items[i] = nexit.Item{ID: i, Flow: f, Dir: nexit.AtoB}
		fc.defaults[i] = fc.s2.EarlyExit(f)
	}
	fc.impacted = reIndexed

	// Default post-failure routing: early exit over survivors.
	fc.defAssign = append(pairsim.Assignment(nil), fc.defaults...)
	fc.defUp, fc.defDown = fc.mels(fc.defAssign)
	return fc
}

// mels computes the post-failure MELs in both ISPs for an assignment of
// the impacted flows.
func (fc *failureCase) mels(assign pairsim.Assignment) (up, down float64) {
	loadUp := append([]float64(nil), fc.fixedUp...)
	loadDown := append([]float64(nil), fc.fixedDown...)
	for _, f := range fc.impacted {
		fc.s2.AddFlowLoad(loadUp, loadDown, f, assign[f.ID])
	}
	return metrics.MEL(loadUp, fc.capUp), metrics.MEL(loadDown, fc.capDown)
}

// downDistance sums the impacted flows' distance inside the downstream
// ISP under an assignment (for the Figure 9 right panel).
func (fc *failureCase) downDistance(assign pairsim.Assignment) float64 {
	var sum float64
	for _, f := range fc.impacted {
		sum += fc.s2.DownDistKm(f, assign[f.ID])
	}
	return sum
}

// newBandwidthEvaluator builds the upstream or downstream bandwidth
// evaluator for a failure case.
func (fc *failureCase) newBandwidthEvaluator(side nexit.Side, p int, useFT bool) nexit.Evaluator {
	load, capv := fc.fixedUp, fc.capUp
	if side == nexit.SideB {
		load, capv = fc.fixedDown, fc.capDown
	}
	if useFT {
		return nexit.NewFortzThorupEvaluator(fc.s2, side, p, load, capv)
	}
	return nexit.NewBandwidthEvaluator(fc.s2, side, p, load, capv)
}

// BandwidthCaseResult is one failure case's streamed contribution to
// the §5.2 experiments (Figures 7, 8, 9, 11), computed concurrently and
// delivered in (pair, interconnection) order.
type BandwidthCaseResult struct {
	// Pair names the ISP pair ("ispA-ispB") and FailedInterconnection
	// the hypothesized failure, making streamed records
	// self-describing.
	Pair                  string `json:"pair"`
	FailedInterconnection int    `json:"failed_interconnection"`
	// Figure 7: MEL ratios to the LP optimum.
	UpDef   float64 `json:"up_default"`
	UpNeg   float64 `json:"up_negotiated"`
	DownDef float64 `json:"down_default"`
	DownNeg float64 `json:"down_negotiated"`
	// NonDefault is the fraction of impacted flows negotiation moved off
	// the post-failure default.
	NonDefault float64 `json:"non_default_fraction"`
	// Figure 8: downstream MEL under unilateral upstream optimization,
	// relative to default.
	UnilateralDownRatio float64 `json:"unilateral_down_ratio"`
	// Figure 9: diverse criteria. The diverse default baseline is UpDef
	// (the same pre-negotiation state), so the record carries it once.
	DiverseUpNeg    float64 `json:"diverse_up_negotiated"`
	DiverseDownGain float64 `json:"diverse_down_gain"`
	// Figure 11: the upstream cheats.
	CheatUp   float64 `json:"cheat_up"`
	CheatDown float64 `json:"cheat_down"`
}

// BandwidthStream runs the §5.2 failure experiments, delivering each
// failure case's result to sink strictly in (pair, interconnection)
// order without retaining it — the constant-memory form of Bandwidth.
// sink may return runner.ErrStop to cancel the remaining cases without
// error. Returns the number of cases delivered.
func BandwidthStream(ds *Dataset, opt BandwidthOptions, sink func(idx int, r *BandwidthCaseResult) error) (int, error) {
	opt.Options = opt.Options.withDefaults()
	cfg := nexit.DefaultBandwidthConfig()
	cfg.PrefBound = opt.PrefBound

	return forEachFailureCase(ds, opt, saltBandwidth,
		func(fc *failureCase, rng *rand.Rand) (*BandwidthCaseResult, error) {
			// Globally optimal (fractional LP across both ISPs).
			lp, err := optimal.Bandwidth(fc.s2, fc.impacted, fc.fixedUp, fc.fixedDown, fc.capUp, fc.capDown)
			if err != nil {
				return nil, err
			}

			// Negotiated: both ISPs use the bandwidth metric.
			evalA := fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, opt.UseFortzThorup)
			evalB := fc.newBandwidthEvaluator(nexit.SideB, opt.PrefBound, opt.UseFortzThorup)
			neg, err := nexit.Negotiate(cfg, evalA, evalB, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			negUp, negDown := fc.mels(neg.Assign)

			out := &BandwidthCaseResult{
				Pair:                  pairLabel(fc.pair),
				FailedInterconnection: fc.failed,
				UpDef:                 metrics.Ratio(fc.defUp, lp.MELUp, 1),
				UpNeg:                 metrics.Ratio(negUp, lp.MELUp, 1),
				DownDef:               metrics.Ratio(fc.defDown, lp.MELDown, 1),
				DownNeg:               metrics.Ratio(negDown, lp.MELDown, 1),
			}
			nonDef := 0
			for i := range fc.items {
				if neg.Assign[i] != fc.defaults[i] {
					nonDef++
				}
			}
			out.NonDefault = float64(nonDef) / float64(len(fc.items))

			// Figure 8: unilateral upstream optimization.
			uni := baseline.UnilateralUpstream(fc.s2, fc.impacted, fc.fixedUp, fc.capUp)
			_, uniDown := fc.mels(uni)
			out.UnilateralDownRatio = metrics.Ratio(uniDown, fc.defDown, 1)

			// Figure 9: diverse criteria — upstream bandwidth,
			// downstream distance.
			evalA9 := fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, opt.UseFortzThorup)
			evalB9 := nexit.NewDistanceEvaluator(fc.s2, nexit.SideB, opt.PrefBound)
			div, err := nexit.Negotiate(cfg, evalA9, evalB9, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			divUp, _ := fc.mels(div.Assign)
			out.DiverseUpNeg = metrics.Ratio(divUp, lp.MELUp, 1)
			out.DiverseDownGain = metrics.GainPercent(
				fc.downDistance(fc.defAssign), fc.downDistance(div.Assign))

			// Figure 11: the upstream cheats.
			// The cheater's "perfect knowledge" reads the victim's live
			// evaluator, so it stays current as loads change.
			victim := fc.newBandwidthEvaluator(nexit.SideB, opt.PrefBound, opt.UseFortzThorup)
			cheater := &nexit.CheatEvaluator{
				Truthful: fc.newBandwidthEvaluator(nexit.SideA, opt.PrefBound, opt.UseFortzThorup),
				Other:    victim,
				P:        opt.PrefBound,
			}
			cheat, err := nexit.Negotiate(cfg, cheater, victim, fc.items, fc.defaults, fc.s2.NumAlternatives())
			if err != nil {
				return nil, err
			}
			cheatUp, cheatDown := fc.mels(cheat.Assign)
			out.CheatUp = metrics.Ratio(cheatUp, lp.MELUp, 1)
			out.CheatDown = metrics.Ratio(cheatDown, lp.MELDown, 1)
			return out, nil
		},
		sink)
}

// Bandwidth runs the §5.2 failure experiments (Figures 7, 8, 9, 11) and
// collects the figures' sample sets — a fold over BandwidthStream.
// Failure cases are evaluated concurrently per pair (Options.Workers)
// with identical results for every worker count.
func Bandwidth(ds *Dataset, opt BandwidthOptions) (*BandwidthResult, error) {
	res := &BandwidthResult{}
	cases, err := BandwidthStream(ds, opt, func(_ int, o *BandwidthCaseResult) error {
		res.UpDef = append(res.UpDef, o.UpDef)
		res.UpNeg = append(res.UpNeg, o.UpNeg)
		res.DownDef = append(res.DownDef, o.DownDef)
		res.DownNeg = append(res.DownNeg, o.DownNeg)
		res.NegotiatedNonDefault = append(res.NegotiatedNonDefault, o.NonDefault)
		res.UnilateralDownRatio = append(res.UnilateralDownRatio, o.UnilateralDownRatio)
		res.DiverseUpDef = append(res.DiverseUpDef, o.UpDef) // diverse default == default baseline
		res.DiverseUpNeg = append(res.DiverseUpNeg, o.DiverseUpNeg)
		res.DiverseDownGain = append(res.DiverseDownGain, o.DiverseDownGain)
		res.CheatUpNeg = append(res.CheatUpNeg, o.CheatUp)
		res.CheatDownNeg = append(res.CheatDownNeg, o.CheatDown)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FailureCases = cases
	return res, nil
}

package experiments

import (
	"testing"

	"repro/internal/stats"
)

func TestDestinationBased(t *testing.T) {
	ds := smallDataset(t)
	res, err := DestinationBased(ds, Options{MaxPairs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs processed")
	}
	if len(res.GainSrcDst) != res.Pairs || len(res.GainDstOnly) != res.Pairs {
		t.Fatalf("sample counts wrong")
	}
	src := stats.NewCDF(res.GainSrcDst)
	dst := stats.NewCDF(res.GainDstOnly)
	// The paper's footnote 2: destination-based results are "similar".
	// Grouping constrains the solution space, so some gain is lost, but
	// most should survive: destination-based keeps at least a third of
	// the source-destination median and never goes negative in median.
	if dst.Median() < 0 {
		t.Errorf("destination-based median gain %.2f%% negative", dst.Median())
	}
	if src.Median() > 1 && dst.Median() < 0.33*src.Median() {
		t.Errorf("destination-based median %.2f%% far below source-destination %.2f%%",
			dst.Median(), src.Median())
	}
	t.Logf("src-dst median %.2f%%, dst-only median %.2f%%", src.Median(), dst.Median())
}

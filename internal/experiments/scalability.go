package experiments

import (
	"sort"

	"repro/internal/nexit"
	"repro/internal/traffic"
)

// ScalabilityResult measures how much of the negotiation benefit remains
// when, for scalability, the ISPs only put their biggest flows on the
// table (paper §6: "to improve scalability ISPs can decide to negotiate
// over only the set of long-lived and high-bandwidth flows. ...
// Optimizing the small fraction of high-bandwidth flows can optimize
// most of the traffic").
type ScalabilityResult struct {
	// Fractions are the traffic fractions negotiated (e.g. 0.5 = the
	// biggest flows covering half the bytes).
	Fractions []float64
	// GainShare[i] is, per traffic fraction, the median share of the
	// full-negotiation gain retained (1 = all of it), over ISP pairs.
	GainShare []float64
	// FlowShare[i] is the median fraction of FLOWS that covers
	// Fractions[i] of the traffic (the "small fraction" claim).
	FlowShare []float64
	Pairs     int
}

// scalabilityPairOut is one pair's per-fraction gain and flow shares.
type scalabilityPairOut struct {
	shares, flowShares []float64
}

// Scalability runs the distance experiment negotiating only the largest
// flows covering each traffic fraction; flow sizes follow the gravity
// model so sizes are skewed as in real traffic. Pairs are evaluated
// concurrently (Options.Workers) with identical results for every
// worker count.
func Scalability(ds *Dataset, opt Options, fractions []float64) (*ScalabilityResult, error) {
	opt = opt.withDefaults()
	pairs := selectPairs(ds.DistancePairs(), opt)
	res := &ScalabilityResult{Fractions: fractions}
	shares := make([][]float64, len(fractions))
	flowShares := make([][]float64, len(fractions))

	err := forEachPair(pairs, ds, opt, saltScalability, traffic.Gravity,
		func(job pairJob) (*scalabilityPairOut, error) {
			ps := job.ps
			na := ps.s.NumAlternatives()
			// The §6 claim is about optimizing most of the TRAFFIC, so
			// the quality measure here is traffic-weighted: bytes x km.
			weighted := func(assign []int) float64 {
				var sum float64
				for i, it := range ps.items {
					d, _, _ := ps.itemDist(it, assign[i])
					sum += it.Flow.Size * d
				}
				return sum
			}
			defTotal := weighted(ps.defaults)
			if defTotal == 0 {
				return nil, nil
			}
			cfg := nexit.DefaultDistanceConfig()
			cfg.PrefBound = opt.PrefBound

			negotiate := func(items []nexit.Item, defaults []int) ([]int, error) {
				evalA := nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound)
				evalB := nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound)
				r, err := nexit.Negotiate(cfg, evalA, evalB, items, defaults, na)
				if err != nil {
					return nil, err
				}
				return r.Assign, nil
			}

			// Full-table benchmark.
			full, err := negotiate(ps.items, ps.defaults)
			if err != nil {
				return nil, err
			}
			fullGain := defTotal - weighted(full)
			if fullGain <= 0 {
				return nil, nil
			}

			// Items sorted by size, biggest first.
			order := make([]int, len(ps.items))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return ps.items[order[a]].Flow.Size > ps.items[order[b]].Flow.Size
			})
			var totalSize float64
			for _, it := range ps.items {
				totalSize += it.Flow.Size
			}

			out := &scalabilityPairOut{
				shares:     make([]float64, len(fractions)),
				flowShares: make([]float64, len(fractions)),
			}
			for fi, frac := range fractions {
				// Select the biggest flows covering frac of the traffic.
				var acc float64
				cut := 0
				for cut < len(order) && acc < frac*totalSize {
					acc += ps.items[order[cut]].Flow.Size
					cut++
				}
				sub := make([]nexit.Item, cut)
				subDef := make([]int, cut)
				for i := 0; i < cut; i++ {
					it := ps.items[order[i]]
					sub[i] = nexit.Item{ID: i, Flow: it.Flow, Dir: it.Dir}
					subDef[i] = ps.defaults[it.ID]
				}
				subAssign, err := negotiate(sub, subDef)
				if err != nil {
					return nil, err
				}
				// Apply the partial outcome on top of the defaults.
				assign := append([]int(nil), ps.defaults...)
				for i := 0; i < cut; i++ {
					assign[order[i]] = subAssign[i]
				}
				out.shares[fi] = (defTotal - weighted(assign)) / fullGain
				out.flowShares[fi] = float64(cut) / float64(len(ps.items))
			}
			return out, nil
		},
		func(o *scalabilityPairOut) {
			for fi := range fractions {
				shares[fi] = append(shares[fi], o.shares[fi])
				flowShares[fi] = append(flowShares[fi], o.flowShares[fi])
			}
			res.Pairs++
		})
	if err != nil {
		return nil, err
	}
	res.GainShare = make([]float64, len(fractions))
	res.FlowShare = make([]float64, len(fractions))
	for fi := range fractions {
		res.GainShare[fi] = medianOf(shares[fi])
		res.FlowShare[fi] = medianOf(flowShares[fi])
	}
	return res, nil
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

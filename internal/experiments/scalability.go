package experiments

import (
	"sort"

	"repro/internal/nexit"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// ScalabilityResult measures how much of the negotiation benefit remains
// when, for scalability, the ISPs only put their biggest flows on the
// table (paper §6: "to improve scalability ISPs can decide to negotiate
// over only the set of long-lived and high-bandwidth flows. ...
// Optimizing the small fraction of high-bandwidth flows can optimize
// most of the traffic").
type ScalabilityResult struct {
	// Fractions are the traffic fractions negotiated (e.g. 0.5 = the
	// biggest flows covering half the bytes).
	Fractions []float64
	// GainShare[i] is, per traffic fraction, the median share of the
	// full-negotiation gain retained (1 = all of it), over ISP pairs.
	GainShare []float64
	// FlowShare[i] is the median fraction of FLOWS that covers
	// Fractions[i] of the traffic (the "small fraction" claim).
	FlowShare []float64
	Pairs     int
}

// ScalabilityPairResult is one ISP pair's streamed contribution: the
// share of the full-negotiation gain retained and the fraction of flows
// involved, per requested traffic fraction.
type ScalabilityPairResult struct {
	// Pair names the ISP pair ("ispA-ispB").
	Pair       string    `json:"pair"`
	GainShares []float64 `json:"gain_shares"`
	FlowShares []float64 `json:"flow_shares"`
}

// ScalabilityStream runs the §6 partial-negotiation experiment,
// delivering each pair's per-fraction shares to sink in pair order
// without retaining them — the constant-memory form of Scalability.
func ScalabilityStream(ds *Dataset, opt Options, fractions []float64, sink func(idx int, r *ScalabilityPairResult) error) error {
	opt = opt.withDefaults()
	pairs := selectPairs(ds.DistancePairs(), opt)
	return forEachPair(pairs, ds, opt, saltScalability, traffic.Gravity,
		func(job pairJob) (*ScalabilityPairResult, error) {
			ps := job.ps
			na := ps.s.NumAlternatives()
			// The §6 claim is about optimizing most of the TRAFFIC, so
			// the quality measure here is traffic-weighted: bytes x km.
			weighted := func(assign []int) float64 {
				var sum float64
				for i, it := range ps.items {
					d, _, _ := ps.itemDist(it, assign[i])
					sum += it.Flow.Size * d
				}
				return sum
			}
			defTotal := weighted(ps.defaults)
			if defTotal == 0 {
				return nil, nil
			}
			cfg := nexit.DefaultDistanceConfig()
			cfg.PrefBound = opt.PrefBound

			negotiate := func(items []nexit.Item, defaults []int) ([]int, error) {
				evalA := nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound)
				evalB := nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound)
				r, err := nexit.Negotiate(cfg, evalA, evalB, items, defaults, na)
				if err != nil {
					return nil, err
				}
				return r.Assign, nil
			}

			// Full-table benchmark.
			full, err := negotiate(ps.items, ps.defaults)
			if err != nil {
				return nil, err
			}
			fullGain := defTotal - weighted(full)
			if fullGain <= 0 {
				return nil, nil
			}

			// Items sorted by size, biggest first.
			order := make([]int, len(ps.items))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool {
				return ps.items[order[a]].Flow.Size > ps.items[order[b]].Flow.Size
			})
			var totalSize float64
			for _, it := range ps.items {
				totalSize += it.Flow.Size
			}

			out := &ScalabilityPairResult{
				Pair:       pairLabel(ps.s.Pair),
				GainShares: make([]float64, len(fractions)),
				FlowShares: make([]float64, len(fractions)),
			}
			for fi, frac := range fractions {
				// Select the biggest flows covering frac of the traffic.
				var acc float64
				cut := 0
				for cut < len(order) && acc < frac*totalSize {
					acc += ps.items[order[cut]].Flow.Size
					cut++
				}
				sub := make([]nexit.Item, cut)
				subDef := make([]int, cut)
				for i := 0; i < cut; i++ {
					it := ps.items[order[i]]
					sub[i] = nexit.Item{ID: i, Flow: it.Flow, Dir: it.Dir}
					subDef[i] = ps.defaults[it.ID]
				}
				subAssign, err := negotiate(sub, subDef)
				if err != nil {
					return nil, err
				}
				// Apply the partial outcome on top of the defaults.
				assign := append([]int(nil), ps.defaults...)
				for i := 0; i < cut; i++ {
					assign[order[i]] = subAssign[i]
				}
				out.GainShares[fi] = (defTotal - weighted(assign)) / fullGain
				out.FlowShares[fi] = float64(cut) / float64(len(ps.items))
			}
			return out, nil
		},
		sink)
}

// Scalability runs the §6 partial-negotiation experiment and reduces it
// to per-fraction medians — a fold over ScalabilityStream into
// streaming quantile sketches (internal/stats), so nothing per-pair is
// retained: memory is O(fractions), not O(pairs). Medians follow the
// stats toolkit's nearest-rank convention and are exact up to the
// sketch capacity (far above any dataset this repo generates). Pairs
// are evaluated concurrently (Options.Workers) with identical results
// for every worker count.
func Scalability(ds *Dataset, opt Options, fractions []float64) (*ScalabilityResult, error) {
	res := &ScalabilityResult{Fractions: fractions}
	shares := make([]*stats.QuantileSketch, len(fractions))
	flowShares := make([]*stats.QuantileSketch, len(fractions))
	for fi := range fractions {
		shares[fi] = stats.NewQuantileSketch(0)
		flowShares[fi] = stats.NewQuantileSketch(0)
	}
	err := ScalabilityStream(ds, opt, fractions, func(_ int, o *ScalabilityPairResult) error {
		for fi := range fractions {
			shares[fi].Add(o.GainShares[fi])
			flowShares[fi].Add(o.FlowShares[fi])
		}
		res.Pairs++
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.GainShare = make([]float64, len(fractions))
	res.FlowShare = make([]float64, len(fractions))
	for fi := range fractions {
		if shares[fi].N() > 0 {
			res.GainShare[fi] = shares[fi].Median()
			res.FlowShare[fi] = flowShares[fi].Median()
		}
	}
	return res, nil
}

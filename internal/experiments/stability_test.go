package experiments

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/traffic"
)

func TestStabilityExperiment(t *testing.T) {
	ds := smallDataset(t)
	res, err := Stability(ds, BandwidthOptions{
		Options:     Options{MaxPairs: 6},
		Workload:    traffic.Gravity,
		MaxFailures: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureCases == 0 {
		t.Fatal("no failure cases")
	}
	if res.Converged+res.Oscillated+res.Exhausted != res.FailureCases {
		t.Fatalf("outcome counts %d+%d+%d != %d cases",
			res.Converged, res.Oscillated, res.Exhausted, res.FailureCases)
	}
	if len(res.ReactiveWorst) != res.FailureCases || len(res.NegotiatedWorst) != res.FailureCases {
		t.Fatal("sample counts wrong")
	}
	// Negotiation terminates by construction (no Exhausted analogue) and
	// its worst-ISP MEL should not be worse than the reactive end state
	// in aggregate.
	reactive := stats.NewCDF(res.ReactiveWorst)
	negotiated := stats.NewCDF(res.NegotiatedWorst)
	if negotiated.Mean() > reactive.Mean()+0.25 {
		t.Errorf("negotiated mean worst-MEL %.3f much worse than reactive %.3f",
			negotiated.Mean(), reactive.Mean())
	}
	t.Logf("converged=%d oscillated=%d exhausted=%d | reactive %s | negotiated %s",
		res.Converged, res.Oscillated, res.Exhausted,
		stats.Summary(reactive), stats.Summary(negotiated))
}

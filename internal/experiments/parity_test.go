package experiments

import (
	"reflect"
	"testing"

	"repro/internal/traffic"
)

// The runner's determinism contract: every experiment driver returns
// byte-identical results regardless of worker count, because each pair
// draws from its own (Seed, pair index)-derived RNG and results are
// reduced in pair order. These tests pin that contract for the drivers
// named in the roadmap (run them under -race to also exercise the
// concurrent TableCache).

func parityOpts(workers int) Options {
	return Options{MaxPairs: 10, Seed: 5, Workers: workers}
}

func TestDistanceParity(t *testing.T) {
	ds := smallDataset(t)
	serial, err := Distance(ds, parityOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Distance(ds, parityOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Distance results differ between Workers=1 and Workers=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestScalabilityParity(t *testing.T) {
	ds := smallDataset(t)
	fractions := []float64{0.5, 1.0}
	serial, err := Scalability(ds, parityOpts(1), fractions)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Scalability(ds, parityOpts(8), fractions)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Scalability results differ between Workers=1 and Workers=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestBandwidthParity(t *testing.T) {
	ds := smallDataset(t)
	run := func(workers int) *BandwidthResult {
		res, err := Bandwidth(ds, BandwidthOptions{
			Options:     Options{MaxPairs: 4, Seed: 5, Workers: workers},
			Workload:    traffic.Gravity,
			MaxFailures: 12, // exercise the early-stop path under contention
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Bandwidth results differ between Workers=1 and Workers=8:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestDistanceCheatParity(t *testing.T) {
	ds := smallDataset(t)
	serial, err := DistanceCheat(ds, parityOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DistanceCheat(ds, parityOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("DistanceCheat results differ between Workers=1 and Workers=8")
	}
}

func TestStabilityParity(t *testing.T) {
	ds := smallDataset(t)
	run := func(workers int) *StabilityResult {
		res, err := Stability(ds, BandwidthOptions{
			Options:     Options{MaxPairs: 3, Seed: 5, Workers: workers},
			Workload:    traffic.Gravity,
			MaxFailures: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Error("Stability results differ between Workers=1 and Workers=8")
	}
}

func TestDestinationParity(t *testing.T) {
	ds := smallDataset(t)
	run := func(workers int) *DestinationResult {
		res, err := DestinationBased(ds, Options{MaxPairs: 6, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Error("DestinationBased results differ between Workers=1 and Workers=8")
	}
}

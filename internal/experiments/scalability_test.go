package experiments

import "testing"

func TestScalability(t *testing.T) {
	ds := smallDataset(t)
	fractions := []float64{0.2, 0.5, 1.0}
	res, err := Scalability(ds, Options{MaxPairs: 8}, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs processed")
	}
	if len(res.GainShare) != 3 || len(res.FlowShare) != 3 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	// Negotiating more traffic keeps (weakly) more of the gain, and the
	// full fraction recovers essentially everything.
	for i := 1; i < len(fractions); i++ {
		if res.GainShare[i] < res.GainShare[i-1]-0.15 {
			t.Errorf("gain share dropped from %.2f to %.2f at fraction %.1f",
				res.GainShare[i-1], res.GainShare[i], fractions[i])
		}
	}
	if res.GainShare[2] < 0.9 {
		t.Errorf("full-traffic share = %.2f, want ~1", res.GainShare[2])
	}
	// Gravity sizes are skewed: covering 50% of traffic needs well under
	// 50% of the flows.
	if res.FlowShare[1] >= 0.5 {
		t.Errorf("50%% of traffic needed %.0f%% of flows; expected skew", 100*res.FlowShare[1])
	}
	// Flow shares grow with the traffic fraction.
	if !(res.FlowShare[0] <= res.FlowShare[1] && res.FlowShare[1] <= res.FlowShare[2]) {
		t.Errorf("flow shares not monotone: %v", res.FlowShare)
	}
}

package experiments

import (
	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/traffic"
)

// The paper's footnote 2: "By using more flexible flow definitions,
// Nexit can be extended to destination-based routing ... Empirical
// evaluation with destination-based routing yields results similar to
// those in Section 5." Under destination-based routing an ISP cannot
// route flows with the same destination but different sources
// independently (no MPLS), so the negotiation items are destinations:
// all flows toward one destination PoP share an interconnection.

// destEvaluator aggregates a side's distance preferences over all flows
// of a destination group: the metric of a group alternative is the sum
// of the member flows' distances inside the own network.
type destEvaluator struct {
	inner  *nexit.DistanceEvaluator
	groups [][]nexit.Item // member flows per group item ID
	p      int
}

// Prefs implements nexit.Evaluator: group deltas are sums of member
// deltas (classes stay composable exactly as for single flows), and all
// group rows are quantized together so classes remain comparable across
// groups.
func (e *destEvaluator) Prefs(items []nexit.Item, defaults []int) [][]int {
	deltas := make([][]float64, len(items))
	for gi, g := range items {
		members := e.groups[g.ID]
		memberDefaults := make([]int, len(members))
		for i := range members {
			memberDefaults[i] = defaults[gi]
		}
		memberDeltas := e.inner.RawDeltas(members, memberDefaults)
		sum := make([]float64, len(memberDeltas[0]))
		for _, row := range memberDeltas {
			for k, d := range row {
				sum[k] += d
			}
		}
		deltas[gi] = sum
	}
	return nexit.MapDeltas(deltas, e.p)
}

// Commit implements nexit.Evaluator (distance is stateless).
func (e *destEvaluator) Commit(nexit.Item, int) {}

// DestinationResult compares source-destination routing (the paper's
// main mode) with destination-based routing on the same pairs. Each
// regime's gain is measured against its own default: per-flow early
// exit for source-destination routing, one (majority early-exit)
// interconnection per destination for destination-based routing —
// negotiation cannot be credited or blamed for paths the regime cannot
// express.
type DestinationResult struct {
	// Per pair: total distance gain of negotiation within each regime.
	GainSrcDst, GainDstOnly []float64
	Pairs                   int
}

// DestinationPairResult is one ISP pair's streamed contribution to the
// footnote-2 comparison.
type DestinationPairResult struct {
	// Pair names the ISP pair ("ispA-ispB").
	Pair        string  `json:"pair"`
	GainSrcDst  float64 `json:"gain_src_dst"`
	GainDstOnly float64 `json:"gain_dst_only"`
}

// DestinationStream runs the footnote-2 comparison, delivering each
// pair's result to sink in pair order without retaining it.
func DestinationStream(ds *Dataset, opt Options, sink func(idx int, r *DestinationPairResult) error) error {
	opt = opt.withDefaults()
	pairs := selectPairs(ds.DistancePairs(), opt)
	return forEachPair(pairs, ds, opt, saltDestination, traffic.Identical,
		func(job pairJob) (*DestinationPairResult, error) {
			ps := job.ps
			na := ps.s.NumAlternatives()
			cfg := nexit.DefaultDistanceConfig()
			cfg.PrefBound = opt.PrefBound

			// Source-destination (per-flow) negotiation.
			evalA := nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound)
			evalB := nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound)
			perFlow, err := nexit.Negotiate(cfg, evalA, evalB, ps.items, ps.defaults, na)
			if err != nil {
				return nil, err
			}

			// Destination-based: group items by (direction, destination).
			// A group's default is the majority default of its members (a
			// destination-routed network has ONE current exit per
			// destination; majority is the closest single approximation of
			// the per-flow early-exit state).
			type gkey struct {
				dir nexit.Direction
				dst int
			}
			groupIdx := map[gkey]int{}
			var groups [][]nexit.Item
			var groupDefaultVotes []map[int]int
			for i, it := range ps.items {
				k := gkey{dir: it.Dir, dst: it.Flow.Dst}
				gi, ok := groupIdx[k]
				if !ok {
					gi = len(groups)
					groupIdx[k] = gi
					groups = append(groups, nil)
					groupDefaultVotes = append(groupDefaultVotes, map[int]int{})
				}
				groups[gi] = append(groups[gi], it)
				groupDefaultVotes[gi][ps.defaults[i]]++
			}
			groupItems := make([]nexit.Item, len(groups))
			groupDefaults := make([]int, len(groups))
			for gi, members := range groups {
				var size float64
				for _, m := range members {
					size += m.Flow.Size
				}
				groupItems[gi] = nexit.Item{
					ID:   gi,
					Flow: members[0].Flow, // representative; evaluators use groups
					Dir:  members[0].Dir,
				}
				groupItems[gi].Flow.ID = gi
				groupItems[gi].Flow.Size = size
				best, bestVotes := 0, -1
				for alt, votes := range groupDefaultVotes[gi] {
					if votes > bestVotes || (votes == bestVotes && alt < best) {
						best, bestVotes = alt, votes
					}
				}
				groupDefaults[gi] = best
			}
			gEvalA := &destEvaluator{inner: nexit.NewDistanceEvaluator(ps.s, nexit.SideA, opt.PrefBound), groups: groups, p: opt.PrefBound}
			gEvalB := &destEvaluator{inner: nexit.NewDistanceEvaluator(ps.s, nexit.SideB, opt.PrefBound), groups: groups, p: opt.PrefBound}
			grouped, err := nexit.Negotiate(cfg, gEvalA, gEvalB, groupItems, groupDefaults, na)
			if err != nil {
				return nil, err
			}

			// Expand group assignments (negotiated and default) to flows.
			expand := func(groupAssign []int) []int {
				flowAssign := make([]int, len(ps.items))
				for gi, members := range groups {
					for _, m := range members {
						flowAssign[m.ID] = groupAssign[gi]
					}
				}
				return flowAssign
			}
			perFlowTotal, _, _ := ps.distances(perFlow.Assign)
			groupedTotal, _, _ := ps.distances(expand(grouped.Assign))
			groupedDefTotal, _, _ := ps.distances(expand(groupDefaults))
			return &DestinationPairResult{
				Pair:        pairLabel(ps.s.Pair),
				GainSrcDst:  metrics.GainPercent(job.defTotal, perFlowTotal),
				GainDstOnly: metrics.GainPercent(groupedDefTotal, groupedTotal),
			}, nil
		},
		sink)
}

// DestinationBased runs the footnote-2 comparison over the dataset and
// collects the sample sets — a fold over DestinationStream. Pairs are
// evaluated concurrently (Options.Workers) with identical results for
// every worker count.
func DestinationBased(ds *Dataset, opt Options) (*DestinationResult, error) {
	res := &DestinationResult{}
	err := DestinationStream(ds, opt, func(_ int, o *DestinationPairResult) error {
		res.GainSrcDst = append(res.GainSrcDst, o.GainSrcDst)
		res.GainDstOnly = append(res.GainDstOnly, o.GainDstOnly)
		res.Pairs++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

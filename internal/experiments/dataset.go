// Package experiments contains one driver per figure of the paper's
// evaluation (§5). Each driver runs the default, negotiated, and globally
// optimal routing over the synthetic ISP dataset and returns the samples
// that make up the corresponding figure's CDF curves. See DESIGN.md §3
// for the experiment index.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/pairsim"
	"repro/internal/runner"
	"repro/internal/topology"
)

// Dataset is the loaded ISP dataset plus a shared routing-table cache.
type Dataset struct {
	ISPs  []*topology.ISP
	Cache *pairsim.TableCache
}

// LoadDefault generates the default 65-ISP dataset (DESIGN.md §4).
func LoadDefault() (*Dataset, error) {
	return Load(gen.DefaultConfig())
}

// Load generates a dataset from the given generator configuration,
// sharding per-ISP generation across GOMAXPROCS cores (dataset format
// v2; the result is identical at every worker count).
func Load(cfg gen.Config) (*Dataset, error) {
	return LoadWorkers(cfg, 0)
}

// LoadWorkers is Load with an explicit generation worker count (<=0 =
// GOMAXPROCS). Workers change wall-clock time only, never the dataset.
func LoadWorkers(cfg gen.Config, workers int) (*Dataset, error) {
	isps, err := gen.GenerateWorkers(cfg, workers)
	if err != nil {
		return nil, err
	}
	return &Dataset{ISPs: isps, Cache: pairsim.NewTableCache()}, nil
}

// FromISPs wraps an existing ISP list (e.g. parsed from a .topo file).
func FromISPs(isps []*topology.ISP) *Dataset {
	return &Dataset{ISPs: isps, Cache: pairsim.NewTableCache()}
}

// DistancePairs returns the pairs eligible for the distance experiments:
// at least two interconnections, logical-mesh topologies excluded
// (paper §5.1; 229 pairs in the measured dataset).
func (d *Dataset) DistancePairs() []*topology.Pair {
	return topology.AllPairs(d.ISPs, 2, true)
}

// BandwidthPairs returns the pairs eligible for the failure experiments:
// at least three interconnections, so at least two survive a failure
// (paper §5.2; 247 pairs in the measured dataset).
func (d *Dataset) BandwidthPairs() []*topology.Pair {
	return topology.AllPairs(d.ISPs, 3, true)
}

// Options bounds an experiment run.
type Options struct {
	// MaxPairs limits the number of ISP pairs processed (0 = all). When
	// limiting, pairs are chosen by seeded keyed selection (see
	// selectPairs): subsets are unbiased, reproducible in Seed alone,
	// and nest as MaxPairs grows.
	MaxPairs int
	// Seed drives pair subsampling and any randomized strategy (the
	// flow-local baselines pick among candidates at random).
	Seed int64
	// PrefBound is the preference class bound P (default 10, as in the
	// paper).
	PrefBound int
	// Workers is the number of goroutines evaluating ISP pairs
	// concurrently (0 = runtime.GOMAXPROCS(0)). Results are identical
	// for every worker count: each pair draws from its own
	// (Seed, pair index)-derived RNG and results are reduced in pair
	// order. See internal/runner.
	Workers int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.PrefBound == 0 {
		o.PrefBound = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Warm precomputes every ISP's routing table, sharding the per-ISP
// all-pairs Dijkstra across workers goroutines (0 = GOMAXPROCS).
// Without warming, tables are computed lazily by the first pair that
// touches each ISP, which serializes most of the dataset's cold-start
// cost behind the first few pairs of the first experiment. Warming is
// idempotent and changes no result.
func (d *Dataset) Warm(workers int) { d.Cache.Warm(d.ISPs, workers) }

// selectPairs applies MaxPairs subsampling. Selection is keyed rather
// than shuffled: each pair index draws a deterministic key from
// (Seed, index) via the runner's splitmix64 mix — computed across
// Options.Workers goroutines — and the MaxPairs smallest keys win, in
// dataset order. Like the historical seeded shuffle, subsets are
// unbiased and reproducible in Seed alone; unlike it, key derivation
// has no serial RNG stream, so cold-start scales with cores, and
// subsets nest (the MaxPairs=k selection is a prefix-by-key of the
// MaxPairs=k+1 selection).
func selectPairs(pairs []*topology.Pair, opt Options) []*topology.Pair {
	if opt.MaxPairs <= 0 || opt.MaxPairs >= len(pairs) {
		return pairs
	}
	keys := make([]int64, len(pairs))
	runner.ForEachIndex(len(pairs), opt.Workers, func(i int) {
		keys[i] = runner.PairSeed(opt.Seed, i)
	})
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return order[a] < order[b]
	})
	sel := append([]int(nil), order[:opt.MaxPairs]...)
	sort.Ints(sel) // present the subset in dataset order
	out := make([]*topology.Pair, len(sel))
	for i, idx := range sel {
		out[i] = pairs[idx]
	}
	return out
}

// Inventory summarizes the dataset, mirroring the counts the paper
// reports for its measured dataset.
func (d *Dataset) Inventory() string {
	meshes := 0
	for _, isp := range d.ISPs {
		if isp.IsMesh() {
			meshes++
		}
	}
	dp := d.DistancePairs()
	bp := d.BandwidthPairs()
	failures := 0
	for _, p := range bp {
		failures += p.NumInterconnections()
	}
	return fmt.Sprintf(
		"ISPs: %d (%d logical meshes, excluded like the paper's 8)\n"+
			"Distance experiment pairs (>=2 interconnections): %d (paper: 229)\n"+
			"Bandwidth experiment pairs (>=3 interconnections): %d (paper: 247)\n"+
			"Bandwidth failure cases (one per interconnection): %d\n",
		len(d.ISPs), meshes, len(dp), len(bp), failures)
}

package experiments

import (
	"errors"
	"math/rand"

	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Per-experiment seed salts keep the RNG streams of different drivers
// decorrelated when they run with the same Options.Seed. They mirror
// the seed offsets the serial drivers used historically.
const (
	saltDistance    = 1
	saltBandwidth   = 2
	saltStability   = 3
	saltCheat       = 4
	saltDestination = 5
	saltScalability = 6
)

// runnerOptions builds the runner configuration for one experiment
// phase; salt decorrelates its per-pair RNG stream from other phases.
func (o Options) runnerOptions(salt int64) runner.Options {
	return runner.Options{Workers: o.Workers, Seed: o.Seed + salt}
}

// pairLabel is the self-describing identity streamed records carry:
// NDJSON consumers join a record back to its ISP pair by name rather
// than by stream position (delivery indices are dense over delivered
// records — degenerate pairs are skipped — so position is not a key).
func pairLabel(p *topology.Pair) string {
	return p.A.Name + "-" + p.B.Name
}

// pairJob is the prepared state handed to a distance-family per-pair
// function: the pair's System/workload/defaults, the default
// assignment's distances (degenerate zero-distance pairs are filtered
// before the function runs), and the pair's private RNG.
type pairJob struct {
	ps                   pairSetup
	defTotal, defA, defB float64
	rng                  *rand.Rand
}

// forEachPair evaluates fn over the pairs on the concurrent runner,
// hoisting the setup every distance-family driver shares: build the
// pair setup with the given flow-size model, compute the default
// distances, and skip degenerate co-located pairs (zero default
// distance). fn may also skip a pair by returning nil. Non-nil results
// stream to sink strictly in pair order and are not retained: steady-
// state memory is O(workers), not O(pairs). sink's idx counts delivered
// results (dense, starting at 0); returning runner.ErrStop cancels the
// remaining pairs without error, any other error aborts the run.
func forEachPair[R any](pairs []*topology.Pair, ds *Dataset, opt Options, salt int64, model traffic.Model,
	fn func(job pairJob) (*R, error), sink func(idx int, r *R) error) error {
	delivered := 0
	return runner.ForEachPair(pairs, opt.runnerOptions(salt),
		func(i int, pair *topology.Pair, rng *rand.Rand) (*R, error) {
			ps := newPairSetupWithModel(pair, ds.Cache, model)
			defTotal, defA, defB := ps.distances(ps.defaults)
			if defTotal == 0 {
				return nil, nil // degenerate co-located pair
			}
			return fn(pairJob{ps: ps, defTotal: defTotal, defA: defA, defB: defB, rng: rng})
		},
		func(i int, r *R) error {
			if r == nil {
				return nil
			}
			err := sink(delivered, r)
			delivered++
			return err
		})
}

// failureOut is one failure case's outcome: the result, or the error
// fn produced for it. Errors travel to the reducer instead of aborting
// the pair so that an error in a case beyond the MaxFailures cap never
// fails a run whose capped result is already complete.
type failureOut[R any] struct {
	res R
	err error
}

// forEachFailureCase evaluates fn over every (pair, failed
// interconnection) case of the bandwidth-family experiments on the
// concurrent runner. Cases of one pair are evaluated in interconnection
// order by the pair's worker (sharing the pair's RNG), streamed to sink
// strictly in (pair, interconnection) order, and capped at
// opt.MaxFailures via early stop. The only retained state is one pair's
// cases in flight per worker — O(workers x interconnections), never
// O(total cases). sink's idx is the running case count; returning
// runner.ErrStop cancels the remaining cases without error. Returns the
// number of cases delivered.
func forEachFailureCase[R any](ds *Dataset, opt BandwidthOptions, salt int64,
	fn func(fc *failureCase, rng *rand.Rand) (R, error), sink func(idx int, r R) error) (int, error) {
	pairs := selectPairs(ds.BandwidthPairs(), opt.Options)
	cases := 0
	err := runner.ForEachPair(pairs, opt.runnerOptions(salt),
		func(i int, pair *topology.Pair, rng *rand.Rand) ([]failureOut[R], error) {
			var out []failureOut[R]
			for k := 0; k < pair.NumInterconnections(); k++ {
				// One pair alone can never contribute more reduced
				// cases than the cap, so stop evaluating beyond it.
				if opt.MaxFailures > 0 && len(out) >= opt.MaxFailures {
					break
				}
				fc := buildFailureCase(pair, ds.Cache, k, opt.Workload, opt.Capacity, rng)
				if fc == nil {
					continue
				}
				r, err := fn(fc, rng)
				out = append(out, failureOut[R]{res: r, err: err})
				if err != nil {
					break // later cases of this pair would not have run serially either
				}
			}
			return out, nil
		},
		func(i int, rs []failureOut[R]) error {
			for _, r := range rs {
				if opt.MaxFailures > 0 && cases >= opt.MaxFailures {
					return runner.ErrStop
				}
				if r.err != nil {
					return r.err
				}
				if err := sink(cases, r.res); err != nil {
					if !errors.Is(err, runner.ErrStop) {
						return err
					}
					cases++
					return runner.ErrStop
				}
				cases++
			}
			return nil
		})
	return cases, err
}

package nexit_test

import (
	"fmt"

	"repro/internal/nexit"
	"repro/internal/traffic"
)

// Example negotiates two flows between ISPs with hand-written preference
// tables: one flow is a mutual win, the other a trade where A concedes a
// little for B's large gain. The engine clears the trade first (largest
// joint gain) while A still has its own win to look forward to — the
// paper's "trade minor losses on some flows for significant gains on
// others".
func Example() {
	evalA := &nexit.StaticEvaluator{NumAlts: 2, Table: map[int][]int{
		0: {0, 4},  // flow 0: A gains 4 on alternative 1
		1: {0, -1}, // flow 1: A concedes 1
	}}
	evalB := &nexit.StaticEvaluator{NumAlts: 2, Table: map[int][]int{
		0: {0, 2}, // flow 0: B gains too
		1: {0, 8}, // flow 1: B gains 8
	}}
	items := []nexit.Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	defaults := []int{0, 0}

	res, err := nexit.Negotiate(nexit.DefaultDistanceConfig(), evalA, evalB, items, defaults, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("assignment:", res.Assign)
	fmt.Println("gains:", res.GainA, res.GainB)
	for _, p := range res.Transcript {
		fmt.Printf("round %d: ISP-%v proposes item %d -> alt %d (A %+d, B %+d)\n",
			p.Round, p.Proposer, p.ItemID, p.Alt, p.PrefA, p.PrefB)
	}
	// Output:
	// assignment: [1 1]
	// gains: 3 10
	// round 0: ISP-A proposes item 1 -> alt 1 (A -1, B +8)
	// round 1: ISP-B proposes item 0 -> alt 1 (A +4, B +2)
}

// ExampleConfig_policies shows the five contractually agreed protocol
// knobs of paper §4.
func ExampleConfig() {
	cfg := nexit.Config{
		PrefBound:        10,
		Turn:             nexit.LowerGain,
		Propose:          nexit.MaxSum,
		Accept:           nexit.VetoIfLoss,
		Stop:             nexit.StopWhilePositive,
		ReassignFraction: 0.05,
	}
	fmt.Println(cfg.Turn, cfg.Propose, cfg.Accept, cfg.Stop)
	// Output: lower-gain max-sum veto-if-loss while-positive
}

package nexit

// CheatEvaluator implements the lying strategy of paper §5.4. It wraps
// the cheater's truthful evaluator and, assuming perfect knowledge of the
// other ISP's preferences (which "overestimates the cheater's ability"),
// distorts the disclosed list so that for each flow the cheater's best
// alternative attains the maximum combined preference sum and therefore
// gets selected under the MaxSum propose policy:
//
//   - The preference of the cheater's best alternative is inflated just
//     enough to reach the maximum sum (preserving, as far as possible,
//     the relative ordering of the cheater's original preferences so
//     better alternatives are still picked first).
//   - If the inflation would exceed the class bound P, the preferences
//     of the other alternatives are decreased instead.
//
// The cheater's realized outcome must be measured with its true metric
// (the experiments recompute distance/MEL from the final assignment), not
// with the disclosed classes.
type CheatEvaluator struct {
	// Truthful is the cheater's honest evaluator (its true metric).
	Truthful Evaluator
	// Other is the victim's evaluator, giving the cheater its assumed
	// perfect knowledge of the other side's preferences.
	Other Evaluator
	// P is the preference class bound.
	P int
}

// Prefs implements Evaluator: it discloses the distorted list.
func (c *CheatEvaluator) Prefs(items []Item, defaults []int) [][]int {
	own := c.Truthful.Prefs(items, defaults)
	other := c.Other.Prefs(items, defaults)
	out := make([][]int, len(items))
	for i := range items {
		out[i] = distortPrefs(own[i], other[i], c.P)
	}
	return out
}

// Commit implements Evaluator, keeping the truthful evaluator's internal
// state (loads) consistent with reality.
func (c *CheatEvaluator) Commit(it Item, alt int) {
	c.Truthful.Commit(it, alt)
	// The victim's evaluator is shared with the engine and committed by
	// it; committing again here would double-count.
}

// distortPrefs computes the disclosed preferences for one flow.
func distortPrefs(own, other []int, p int) []int {
	n := len(own)
	out := make([]int, n)
	copy(out, own)
	if n == 0 {
		return out
	}
	// The cheater's best alternative (ties to the lowest index, matching
	// the engine's determinism).
	best := 0
	for k := 1; k < n; k++ {
		if own[k] > own[best] {
			best = k
		}
	}
	// Target: make best attain the maximum combined sum.
	maxSum := own[0] + other[0]
	for k := 1; k < n; k++ {
		if s := own[k] + other[k]; s > maxSum {
			maxSum = s
		}
	}
	need := maxSum - other[best] // disclosed own[best] needed to reach maxSum
	if need <= own[best] {
		return out // already maximal; disclose truthfully
	}
	if need <= p {
		out[best] = need
		return out
	}
	// Inflating past the bound is impossible; clamp the best to P and
	// deflate every other alternative so best still wins:
	// out[k] <= P + other[best] - other[k] for all k != best.
	out[best] = p
	for k := 0; k < n; k++ {
		if k == best {
			continue
		}
		limit := p + other[best] - other[k]
		if out[k] > limit {
			out[k] = limit
		}
		if out[k] < -p {
			out[k] = -p
		}
	}
	return out
}

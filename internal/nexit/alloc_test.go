package nexit

import (
	"testing"

	"repro/internal/traffic"
)

// TestEvaluatorSteadyStateDoesNotAllocate pins the scratch-reuse
// contract (DESIGN.md §12): once an evaluator's buffers are warm, the
// steady-state negotiation hot path — Prefs over the full table plus a
// Commit — performs zero heap allocations, for all three load/distance
// evaluators. The fixture is deliberately small so forEachItem stays on
// its serial path; the parallel path pays a bounded goroutine fan-out
// cost by design and is exercised elsewhere.
//
// testing.AllocsPerRun is exact under -race too (the race runtime does
// not add Go-visible allocations to these paths), so the guard holds in
// both CI modes.
func TestEvaluatorSteadyStateDoesNotAllocate(t *testing.T) {
	_, s := linePair(t)
	nl := 2
	ones := []float64{1, 1}

	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 0.3}, Dir: AtoB},
		{ID: 1, Flow: traffic.Flow{ID: 1, Src: 2, Dst: 0, Size: 0.2}, Dir: BtoA},
		{ID: 2, Flow: traffic.Flow{ID: 2, Src: 1, Dst: 1, Size: 0.1}, Dir: AtoB},
	}
	defaults := []int{2, 0, 1}

	evals := []struct {
		name string
		eval Evaluator
	}{
		{"distance", NewDistanceEvaluator(s, SideA, 10)},
		{"bandwidth", NewBandwidthEvaluator(s, SideA, 10, make([]float64, nl), ones)},
		{"fortz-thorup", NewFortzThorupEvaluator(s, SideA, 10, make([]float64, nl), ones)},
	}
	for _, e := range evals {
		t.Run(e.name, func(t *testing.T) {
			e.eval.Prefs(items, defaults) // warm the scratch buffers
			if n := testing.AllocsPerRun(100, func() {
				prefs := e.eval.Prefs(items, defaults)
				if len(prefs) != len(items) {
					t.Fatalf("%d pref rows for %d items", len(prefs), len(items))
				}
				e.eval.Commit(items[0], 1)
			}); n != 0 {
				t.Errorf("steady-state Prefs+Commit allocated %.1f times per run, want 0", n)
			}
		})
	}
}

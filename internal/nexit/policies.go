package nexit

import "fmt"

// TurnPolicy decides which ISP proposes in a round (paper §4, "Decide
// turn").
type TurnPolicy int

// Turn policies.
const (
	// Alternate has the ISPs take turns, A first (the paper's choice
	// for its experiments).
	Alternate TurnPolicy = iota
	// LowerGain gives the turn to the ISP with the lower cumulative
	// gain, letting it catch up (the paper notes this approximates
	// max-min fairness when metrics are compatible).
	LowerGain
	// CoinToss picks the proposer uniformly at random each round.
	CoinToss
)

// String names the policy.
func (p TurnPolicy) String() string {
	switch p {
	case Alternate:
		return "alternate"
	case LowerGain:
		return "lower-gain"
	case CoinToss:
		return "coin-toss"
	}
	return fmt.Sprintf("turn(%d)", int(p))
}

// ProposePolicy decides which (flow, alternative) the proposer offers
// (paper §4, "Propose an alternative").
type ProposePolicy int

// Propose policies.
const (
	// MaxSum proposes from the set that maximizes the sum of both ISPs'
	// preferences, breaking ties with the proposer's own preference
	// (the paper's choice; approximates Pareto-optimal outcomes).
	MaxSum ProposePolicy = iota
	// BestLocal proposes the proposer's best local alternative with
	// minimal negative impact on the other ISP (the paper's listed
	// alternative).
	BestLocal
)

// String names the policy.
func (p ProposePolicy) String() string {
	switch p {
	case MaxSum:
		return "max-sum"
	case BestLocal:
		return "best-local"
	}
	return fmt.Sprintf("propose(%d)", int(p))
}

// AcceptPolicy decides whether the non-proposing ISP accepts (paper §4,
// "Accept alternative?").
type AcceptPolicy int

// Accept policies.
const (
	// AlwaysAccept accepts every proposal (the paper's experimental
	// setting, evaluating fully cooperative ISPs).
	AlwaysAccept AcceptPolicy = iota
	// VetoIfLoss rejects a proposal whose acceptance would make the
	// acceptor's cumulative gain negative. This is the veto power the
	// paper gives ISPs so that "negotiating carries no risk": a truthful
	// ISP can never end below the default.
	VetoIfLoss
)

// String names the policy.
func (p AcceptPolicy) String() string {
	switch p {
	case AlwaysAccept:
		return "always-accept"
	case VetoIfLoss:
		return "veto-if-loss"
	}
	return fmt.Sprintf("accept(%d)", int(p))
}

// StopPolicy decides when negotiation ends (paper §4, "Stop?").
type StopPolicy int

// Stop policies.
const (
	// StopEarly is the paper's "early termination": an ISP stops when it
	// perceives no additional gain in continuing — implemented as no
	// positive preference class remaining anywhere on its table.
	// Negotiation also stops when no remaining alternative has positive
	// combined gain.
	StopEarly StopPolicy = iota
	// StopWhilePositive is the paper's "full termination": ISPs continue
	// as long as their cumulative gain stays positive, even if lower
	// than under early termination — preferred for social welfare.
	StopWhilePositive
	// StopNever negotiates every flow on the table ("the socially best
	// outcome occurs when ISPs negotiate for all the flows").
	StopNever
)

// String names the policy.
func (p StopPolicy) String() string {
	switch p {
	case StopEarly:
		return "early"
	case StopWhilePositive:
		return "while-positive"
	case StopNever:
		return "never"
	}
	return fmt.Sprintf("stop(%d)", int(p))
}

// decideTurn applies the turn policy.
func (n *negotiation) decideTurn() Side {
	var s Side
	switch n.cfg.Turn {
	case LowerGain:
		switch {
		case n.result.GainA < n.result.GainB:
			s = SideA
		case n.result.GainB < n.result.GainA:
			s = SideB
		default:
			if n.haveTurn {
				s = n.lastTurn.Other()
			} else {
				s = SideA
			}
		}
	case CoinToss:
		if n.cfg.Rng.Intn(2) == 0 {
			s = SideA
		} else {
			s = SideB
		}
	default: // Alternate
		if n.haveTurn {
			s = n.lastTurn.Other()
		} else {
			s = SideA
		}
	}
	n.lastTurn, n.haveTurn = s, true
	return s
}

// affordable reports whether (item, alt) may be proposed given the
// cumulative-gain protections in force.
//
// Under early termination, a side may dip into a bounded cumulative
// deficit — at most one full class unit (-P) below the default — and the
// propose scan then prioritizes its recovery. The dip-and-recover
// pattern is the paper's "trade minor losses on some flows for
// significant gains on others" realized with alternating turns; the
// bound keeps the worst case at one class unit, which in real-metric
// terms is a single q90 delta — negligible against a whole workload, so
// "negotiating carries no risk" holds in practice even though proposals
// are always accepted.
//
// Under VetoIfLoss the proposer additionally self-censors candidates it
// cannot strictly afford (the acceptor protects itself in accept()).
func (n *negotiation) affordable(proposer Side, id, alt int) bool {
	if n.cfg.Stop == StopEarly {
		pa, pb := n.prefsA[id][alt], n.prefsB[id][alt]
		boundA := -n.cfg.PrefBound - n.cfg.ExtraDeficitA
		boundB := -n.cfg.PrefBound - n.cfg.ExtraDeficitB
		if n.result.GainA+pa < boundA || n.result.GainB+pb < boundB {
			return false
		}
	}
	if n.cfg.Accept == VetoIfLoss {
		if proposer == SideA {
			return n.result.GainA+n.prefsA[id][alt] >= 0
		}
		return n.result.GainB+n.prefsB[id][alt] >= 0
	}
	return true
}

// propose applies the propose policy for the given proposer and returns
// the chosen (item, alternative). ok is false when nothing proposable
// remains.
func (n *negotiation) propose(proposer Side) (id, alt int, ok bool) {
	own, other := n.prefsA, n.prefsB
	if proposer == SideB {
		own, other = n.prefsB, n.prefsA
	}
	switch n.cfg.Propose {
	case BestLocal:
		// Maximize own preference; break ties by minimizing harm to the
		// other ISP, then by item/alternative index.
		bestOwn, bestOther := -1<<30, -1<<30
		id, alt = -1, -1
		for _, cand := range n.order {
			for k := 0; k < n.numAlts; k++ {
				if (n.nVetoed > 0 && n.vetoed[[2]int{cand, k}]) || !n.affordable(proposer, cand, k) {
					continue
				}
				o, t := own[cand][k], other[cand][k]
				if o > bestOwn || (o == bestOwn && t > bestOther) {
					bestOwn, bestOther, id, alt = o, t, cand, k
				}
			}
		}
		return id, alt, id >= 0
	default: // MaxSum
		// When a side is in cumulative deficit (it dipped to enable a
		// large joint win), recovery comes first: restrict the scan to
		// candidates strictly positive for the deficit side so its gain
		// is repaired before further trades. Fall back to the normal
		// scan if no recovery candidate is proposable.
		if n.cfg.Stop == StopEarly {
			if n.result.GainA < 0 {
				if id, alt, ok := n.scanMaxSumDeficit(proposer, own, other, SideA); ok {
					return id, alt, true
				}
			} else if n.result.GainB < 0 {
				if id, alt, ok := n.scanMaxSumDeficit(proposer, own, other, SideB); ok {
					return id, alt, true
				}
			}
		}
		return n.scanMaxSum(proposer, own, other, nil)
	}
}

// debugScanChecks enables cross-verification of the cached fast scan and
// the histogram-backed stop check against their direct reference loops,
// panicking on any divergence. Tests flip it on; it stays false in
// normal runs.
var debugScanChecks = false

// scanFastEligible reports whether the cached fast scan is exact in the
// current gain state. With both cumulative gains non-negative, clamped
// preferences (|p| <= P) can never trip the StopEarly deficit bounds in
// affordable, and under VetoIfLoss gains of at least P make the
// proposer's self-censoring vacuous — so affordability holds for every
// candidate and the scan outcome depends on the gains only through the
// sum-zero admission rule, which the cache evaluates exactly. Outside
// these regimes scanMaxSum falls back to the reference loop.
func (n *negotiation) scanFastEligible() bool {
	if n.result.GainA < 0 || n.result.GainB < 0 {
		return false
	}
	if n.cfg.Accept == VetoIfLoss &&
		(n.result.GainA < n.cfg.PrefBound || n.result.GainB < n.cfg.PrefBound) {
		return false
	}
	return true
}

// scanMaxSum finds the affordable, non-vetoed candidate maximizing the
// combined preference sum, breaking ties with the proposer's own
// preference, then the lowest item/alternative index. An optional extra
// filter restricts the candidate set.
//
// The unfiltered scan in the common gain regimes dispatches to the
// cached fast path; anything else runs the direct reference loop.
func (n *negotiation) scanMaxSum(proposer Side, own, other [][]int, filter func(cand, k int) bool) (id, alt int, ok bool) {
	if filter == nil && n.scanFastEligible() {
		id, alt, ok = n.scanMaxSumFast(proposer)
		if debugScanChecks {
			wantID, wantAlt, wantOK := n.scanMaxSumRef(proposer, own, other, nil)
			if id != wantID || alt != wantAlt || ok != wantOK {
				panic(fmt.Sprintf("nexit: scanMaxSum mismatch: fast (%d,%d,%v) ref (%d,%d,%v)",
					id, alt, ok, wantID, wantAlt, wantOK))
			}
		}
		return id, alt, ok
	}
	return n.scanMaxSumRef(proposer, own, other, filter)
}

// scanMaxSumFast evaluates each candidate from its scanEntry: an O(1)
// lookup of the cached strict-set best plus a walk of the (typically
// empty) sum-zero list against the current gains, instead of an
// O(numAlts) pass over both preference tables. Selection rule and
// tie-breaks replicate the reference loop exactly; see scanEntry for the
// argument.
func (n *negotiation) scanMaxSumFast(proposer Side) (id, alt int, ok bool) {
	id, alt = -1, -1
	bestSum, bestOwn := -1<<30, -1<<30
	ga, gb := n.result.GainA, n.result.GainB
	for _, cand := range n.order {
		if id >= 0 {
			if _, s := n.bestAlt(cand); s < bestSum {
				break
			}
		}
		e := &n.scanCache[cand]
		if !e.ok {
			e = n.buildScanEntry(cand)
		}
		cOK, cs, cOwn, ck := e.strictOK, e.strictS, e.ownA, e.kA
		if proposer == SideB {
			cOwn, ck = e.ownB, e.kB
		}
		// Sum-zero candidates only matter while the strict best is not
		// strictly positive. With prefA + prefB == 0 the both-gains-stay-
		// non-negative admission collapses to -GainA <= prefA <= GainB.
		if e.zeroLen > 0 && cs <= 0 {
			zo := cand * n.numAlts
			for i := 0; i < int(e.zeroLen); i++ {
				pa := int(n.zeroPaBuf[zo+i])
				if pa < -ga || pa > gb {
					continue
				}
				zOwn, zk := pa, n.zeroKBuf[zo+i]
				if proposer == SideB {
					zOwn = -pa
				}
				switch {
				case !cOK || cs < 0:
					cOK, cs, cOwn, ck = true, 0, zOwn, zk
				case zOwn > cOwn || (zOwn == cOwn && zk < ck):
					// Equal (sum, own) resolves to the lowest k, matching
					// the reference loop's first-wins updates.
					cOwn, ck = zOwn, zk
				}
			}
		}
		if cOK && (cs > bestSum || (cs == bestSum && cOwn > bestOwn)) {
			bestSum, bestOwn, id, alt = cs, cOwn, cand, int(ck)
		}
	}
	return id, alt, id >= 0
}

// scanMaxSumDeficit is the recovery pass of propose: the max-sum scan
// restricted to candidates the deficit side (dside, whose cumulative
// gain is negative) strictly gains on. It dispatches to a cached fast
// path when that is exact:
//
//   - the filter p_deficit > 0 plus the invariant that the deficit
//     side's gain never fell below its own bound make the StopEarly
//     affordability check vacuous for the deficit side;
//   - the OTHER side's bound is vacuous whenever its gain is
//     non-negative (clamped preferences cannot dip it past -P);
//   - sum-zero candidates are admitted by the same gain window as the
//     unfiltered scan, and with the deficit gain negative that window
//     already forces the deficit side's preference positive — so the
//     shared zero list applies unchanged.
//
// VetoIfLoss self-censoring and a doubly-negative gain state are not
// covered by the cache; those run the reference loop.
func (n *negotiation) scanMaxSumDeficit(proposer Side, own, other [][]int, dside Side) (id, alt int, ok bool) {
	deficit := n.prefsA
	otherGain := n.result.GainB
	if dside == SideB {
		deficit = n.prefsB
		otherGain = n.result.GainA
	}
	if n.cfg.Accept == VetoIfLoss || otherGain < 0 {
		return n.scanMaxSumRef(proposer, own, other, func(cand, k int) bool {
			return deficit[cand][k] > 0
		})
	}
	id, alt, ok = n.scanMaxSumDeficitFast(proposer, dside)
	if debugScanChecks {
		wantID, wantAlt, wantOK := n.scanMaxSumRef(proposer, own, other, func(cand, k int) bool {
			return deficit[cand][k] > 0
		})
		if id != wantID || alt != wantAlt || ok != wantOK {
			panic(fmt.Sprintf("nexit: scanMaxSumDeficit mismatch: fast (%d,%d,%v) ref (%d,%d,%v)",
				id, alt, ok, wantID, wantAlt, wantOK))
		}
	}
	return id, alt, ok
}

// scanMaxSumDeficitFast is scanMaxSumFast for the deficit-filtered scan,
// reading the dA/dB strict tuples of the cache instead of the unfiltered
// ones.
func (n *negotiation) scanMaxSumDeficitFast(proposer Side, dside Side) (id, alt int, ok bool) {
	id, alt = -1, -1
	bestSum, bestOwn := -1<<30, -1<<30
	ga, gb := n.result.GainA, n.result.GainB
	for _, cand := range n.order {
		if id >= 0 {
			if _, s := n.bestAlt(cand); s < bestSum {
				break
			}
		}
		e := &n.scanCache[cand]
		if !e.ok {
			e = n.buildScanEntry(cand)
		}
		var (
			cOK      bool
			cs, cOwn int
			ck       int32
		)
		if dside == SideA {
			cOK, cs, cOwn, ck = e.dAOK, e.dAS, e.dAOwnA, e.dAKA
			if proposer == SideB {
				cOwn, ck = e.dAOwnB, e.dAKB
			}
		} else {
			cOK, cs, cOwn, ck = e.dBOK, e.dBS, e.dBOwnA, e.dBKA
			if proposer == SideB {
				cOwn, ck = e.dBOwnB, e.dBKB
			}
		}
		if e.zeroLen > 0 && cs <= 0 {
			zo := cand * n.numAlts
			for i := 0; i < int(e.zeroLen); i++ {
				pa := int(n.zeroPaBuf[zo+i])
				if pa < -ga || pa > gb {
					continue
				}
				zOwn, zk := pa, n.zeroKBuf[zo+i]
				if proposer == SideB {
					zOwn = -pa
				}
				switch {
				case !cOK || cs < 0:
					cOK, cs, cOwn, ck = true, 0, zOwn, zk
				case zOwn > cOwn || (zOwn == cOwn && zk < ck):
					cOwn, ck = zOwn, zk
				}
			}
		}
		if cOK && (cs > bestSum || (cs == bestSum && cOwn > bestOwn)) {
			bestSum, bestOwn, id, alt = cs, cOwn, cand, int(ck)
		}
	}
	return id, alt, id >= 0
}

// scanMaxSumRef is the direct scan over the preference tables — the
// reference semantics for scanMaxSumFast and the fallback for filtered
// scans and uncommon gain regimes. The affordability conditions (see
// affordable) are inlined with their gain- and config-derived bounds
// hoisted out of the loop; the per-candidate preference rows are loaded
// once. Check order within an iteration is immaterial — every clause is
// a pure filter — so this computes exactly what the method-call form
// did, just without re-deriving invariants per (candidate, alternative).
func (n *negotiation) scanMaxSumRef(proposer Side, own, other [][]int, filter func(cand, k int) bool) (id, alt int, ok bool) {
	// The order slice is sorted by best combined gain; once a candidate
	// group can no longer match the best affordable sum found, stop
	// scanning.
	id, alt = -1, -1
	bestSum, bestOwn := -1<<30, -1<<30
	gA, gB := n.result.GainA, n.result.GainB
	stopEarly := n.cfg.Stop == StopEarly
	boundA := -n.cfg.PrefBound - n.cfg.ExtraDeficitA
	boundB := -n.cfg.PrefBound - n.cfg.ExtraDeficitB
	vetoIfLoss := n.cfg.Accept == VetoIfLoss
	for _, cand := range n.order {
		if id >= 0 {
			if _, s := n.bestAlt(cand); s < bestSum {
				break
			}
		}
		pa, pb, po := n.prefsA[cand], n.prefsB[cand], own[cand]
		def := n.defaults[cand]
		for k := 0; k < n.numAlts; k++ {
			if n.nVetoed > 0 && n.vetoed[[2]int{cand, k}] {
				continue
			}
			pak, pbk := pa[k], pb[k]
			if stopEarly && (gA+pak < boundA || gB+pbk < boundB) {
				continue
			}
			if vetoIfLoss {
				// The proposer self-censors candidates it cannot afford.
				if proposer == SideA {
					if gA+pak < 0 {
						continue
					}
				} else if gB+pbk < 0 {
					continue
				}
			}
			if filter != nil && !filter(cand, k) {
				continue
			}
			s := pak + pbk
			// Moving a flow off its default requires non-negative joint
			// gain. (With the asymmetric cardinal rounding, a class is
			// never an underestimate of a loss, so a sum-zero move is
			// at worst marginally harmful and usually beneficial.)
			if k != def && s < 0 {
				continue
			}
			// Sum-zero trades bring no joint class gain, so unlike
			// positive-sum trades they may not dip either side into a
			// deficit: both cumulative gains must stay non-negative.
			if k != def && s == 0 && (gA+pak < 0 || gB+pbk < 0) {
				continue
			}
			if s > bestSum || (s == bestSum && po[k] > bestOwn) {
				bestSum, bestOwn, id, alt = s, po[k], cand, k
			}
		}
	}
	return id, alt, id >= 0
}

// accept applies the accept policy for the given acceptor.
func (n *negotiation) accept(acceptor Side, id, alt int) bool {
	if n.cfg.AcceptHook != nil {
		return n.cfg.AcceptHook(acceptor, Proposal{
			Round: n.result.Rounds, ItemID: id, Alt: alt,
			Proposer: acceptor.Other(),
			PrefA:    n.prefsA[id][alt], PrefB: n.prefsB[id][alt],
		})
	}
	if n.cfg.Accept == AlwaysAccept {
		return true
	}
	// VetoIfLoss: reject if acceptance would push cumulative gain
	// negative.
	var pref, gain int
	if acceptor == SideA {
		pref, gain = n.prefsA[id][alt], n.result.GainA
	} else {
		pref, gain = n.prefsB[id][alt], n.result.GainB
	}
	return gain+pref >= 0
}

package nexit

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
	"repro/internal/pairsim"
	"repro/internal/routing"
)

// Mapping selects how an ISP's internal metric deltas are mapped to
// preference classes. The paper notes ISPs can reduce information
// disclosure by using ordinal preferences or fewer classes (§4).
type Mapping int

// Preference mappings.
const (
	// Cardinal maps metric deltas linearly onto [-P, P] with floor
	// rounding (a class is a lower bound on the real improvement).
	Cardinal Mapping = iota
	// Ordinal discloses only the rank of each alternative relative to
	// the default: better alternatives get +1, +2, ... in order of
	// improvement, worse ones -1, -2, ...; magnitudes carry no metric
	// information beyond order.
	Ordinal
)

// Scale selects the normalization denominator for the Cardinal mapping.
type Scale int

// Scaling modes.
const (
	// ScalePerFlow normalizes each flow's deltas by that flow's own
	// largest absolute delta, so every flow with any improvement at all
	// gets non-zero classes. This resolution is what lets negotiation
	// track the global optimum closely (paper Figures 4 and 6) with only
	// P=10 classes; it is the default. Class magnitudes are comparable
	// across flows only in relative terms.
	ScalePerFlow Scale = iota
	// ScaleGlobal normalizes all deltas by the ISP-wide largest absolute
	// delta, making classes strictly additive across flows (one unit is
	// the same real quantity everywhere) at the cost of quantizing small
	// flows' preferences to zero. The ablation bench compares the two.
	ScaleGlobal
)

// String names the scale mode.
func (s Scale) String() string {
	if s == ScalePerFlow {
		return "per-flow"
	}
	if s == ScaleGlobal {
		return "global"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// String names the mapping.
func (m Mapping) String() string {
	if m == Cardinal {
		return "cardinal"
	}
	if m == Ordinal {
		return "ordinal"
	}
	return fmt.Sprintf("mapping(%d)", int(m))
}

// view resolves items to path endpoints within one ISP's own network.
type view struct {
	side  Side
	table *routing.Table
	ixOwn []int // own PoP of each interconnection

	// idx is the CSR path index over ixOwn, resolved from the table's
	// memo by the load-based evaluators (distance never needs paths, so
	// it skips the build). Lookups are zero-allocation subslices.
	idx *routing.PathIndex
}

func newView(s *pairsim.System, side Side) view {
	v := view{side: side}
	if side == SideA {
		v.table = s.Up
	} else {
		v.table = s.Down
	}
	v.ixOwn = make([]int, len(s.Pair.Interconnections))
	for k, ix := range s.Pair.Interconnections {
		if side == SideA {
			v.ixOwn[k] = ix.APoP
		} else {
			v.ixOwn[k] = ix.BPoP
		}
	}
	return v
}

// endpoints returns the (from, to) PoPs of the item's path inside this
// ISP when using interconnection k.
func (v view) endpoints(it Item, k int) (from, to int) {
	upstream := (v.side == SideA && it.Dir == AtoB) || (v.side == SideB && it.Dir == BtoA)
	if upstream {
		return it.Flow.Src, v.ixOwn[k]
	}
	return v.ixOwn[k], it.Flow.Dst
}

// distKm returns the distance the item travels inside this ISP via
// interconnection k — the §5.1 per-flow metric.
func (v view) distKm(it Item, k int) float64 {
	from, to := v.endpoints(it, k)
	return v.table.LengthKm(from, to)
}

// pathLinks returns the own-network links used by the item via
// interconnection k as a zero-allocation view into the path index
// (valid for the table's lifetime; callers must not modify it). The
// caller must have resolved v.idx (load-based evaluators do so at
// construction).
func (v view) pathLinks(it Item, k int) []int32 {
	upstream := (v.side == SideA && it.Dir == AtoB) || (v.side == SideB && it.Dir == BtoA)
	if upstream {
		return v.idx.To(k, it.Flow.Src)
	}
	return v.idx.From(k, it.Flow.Dst)
}

// cardinalDenominator picks the normalization unit for cardinal classes.
// ScaleGlobal uses the 90th percentile of the non-zero absolute deltas
// (outliers saturate at +/-P) so the bulk of flows retain resolution;
// ScalePerFlow is handled by the caller contract but falls back to the
// same table-wide unit when a flow has no non-zero delta. buf, when
// non-nil, is the reusable sort buffer (its backing array is grown once
// and then reused across calls).
func cardinalDenominator(deltas [][]float64, scale Scale, buf *[]float64) float64 {
	var mags []float64
	if buf != nil {
		mags = (*buf)[:0]
	}
	for _, ds := range deltas {
		for _, d := range ds {
			if a := math.Abs(d); a > 0 {
				mags = append(mags, a)
			}
		}
	}
	if buf != nil {
		*buf = mags
	}
	if len(mags) == 0 {
		return 0
	}
	if scale == ScalePerFlow {
		// Retained for the ablation bench: per-flow max magnitude is
		// applied per item by mapDeltas' caller semantics; as a single
		// denominator it degenerates to the global max.
		max := mags[0]
		for _, m := range mags[1:] {
			if m > max {
				max = m
			}
		}
		return max
	}
	sort.Float64s(mags)
	i := int(0.9 * float64(len(mags)-1))
	d := mags[i]
	if d == 0 {
		d = mags[len(mags)-1]
	}
	return d
}

// mapDeltas converts per-item, per-alternative metric deltas (positive =
// better than default) to preference classes. When s is non-nil the
// returned rows live on the scratch and are valid only until the next
// mapDeltas call with the same scratch.
func mapDeltas(deltas [][]float64, p int, mapping Mapping, scale Scale, s *evalScratch) [][]int {
	var out [][]int
	if s != nil {
		out = s.intRows(deltas)
	} else {
		out = makeIntRows(deltas)
	}
	switch mapping {
	case Ordinal:
		for i, ds := range deltas {
			for k, d := range ds {
				// Rank = number of strictly-between deltas of the same
				// sign plus one, clamped to P.
				if d == 0 {
					continue
				}
				rank := 1
				for _, e := range ds {
					if d > 0 && e > 0 && e < d {
						rank++
					}
					if d < 0 && e < 0 && e > d {
						rank++
					}
				}
				if rank > p {
					rank = p
				}
				if d > 0 {
					out[i][k] = rank
				} else {
					out[i][k] = -rank
				}
			}
		}
		return out
	default: // Cardinal
		var buf *[]float64
		if s != nil {
			buf = &s.mags
		}
		denom := cardinalDenominator(deltas, scale, buf)
		if denom == 0 {
			return out
		}
		for i, ds := range deltas {
			for k, d := range ds {
				// Floor rounding throughout: a class is a certified
				// LOWER bound on the real improvement, for losses and
				// gains alike. Summing bounds, a non-negative cumulative
				// class gain implies the real metric change is bounded
				// below by the (one-class-unit) deficit allowance — the
				// engine-level mechanism behind the paper's "negotiating
				// carries no risk" (Figure 4b shows no negotiated
				// losses). Round-to-nearest on gains would leak half a
				// unit per traded flow, which accumulates into real
				// losses over hundreds of flows.
				cls := int(math.Floor(float64(p) * d / denom))
				if cls > p {
					cls = p
				}
				if cls < -p {
					cls = -p
				}
				out[i][k] = cls
			}
		}
		return out
	}
}

// DistanceEvaluator maps alternatives to preferences using the distance
// a flow travels inside the ISP's own network (§5.1): shorter is better.
// It is stateless; Commit is a no-op.
type DistanceEvaluator struct {
	view    view
	P       int
	Mapping Mapping
	Scale   Scale
	scratch evalScratch
	fn      func(i int)
}

// NewDistanceEvaluator builds the evaluator for the given side of the
// (A->B oriented) system.
func NewDistanceEvaluator(s *pairsim.System, side Side, p int) *DistanceEvaluator {
	e := &DistanceEvaluator{view: newView(s, side), P: p}
	// One closure for the evaluator's lifetime; per-call state flows
	// through the scratch so steady-state Prefs allocates nothing.
	e.fn = func(i int) {
		it := e.scratch.items[i]
		row := e.scratch.deltaRows[i]
		base := e.view.distKm(it, e.scratch.defaults[i])
		for k := range row {
			row[k] = base - e.view.distKm(it, k)
		}
	}
	return e
}

// Prefs implements Evaluator. The returned rows live on the evaluator's
// scratch: they are valid until the next Prefs or RawDeltas call on this
// evaluator (see evalScratch).
func (e *DistanceEvaluator) Prefs(items []Item, defaults []int) [][]int {
	return mapDeltas(e.RawDeltas(items, defaults), e.P, e.Mapping, e.Scale, &e.scratch)
}

// RawDeltas returns the unquantized per-alternative distance
// improvements over each item's default (positive = shorter own-network
// path). Aggregating evaluators (e.g. destination-based routing) sum
// these before quantizing. The rows live on the evaluator's scratch and
// are valid until the next Prefs or RawDeltas call.
func (e *DistanceEvaluator) RawDeltas(items []Item, defaults []int) [][]float64 {
	na := len(e.view.ixOwn)
	deltas := e.scratch.deltas(len(items), na)
	e.scratch.items, e.scratch.defaults = items, defaults
	forEachItem(len(items), na, e.fn)
	return deltas
}

// MapDeltas quantizes raw metric deltas to preference classes with the
// default cardinal mapping (floor rounding, q90 scaling). It is exported
// for evaluators composed outside this package and returns freshly
// allocated rows (no scratch, so no ownership caveats).
func MapDeltas(deltas [][]float64, p int) [][]int {
	return mapDeltas(deltas, p, Cardinal, ScaleGlobal, nil)
}

// Commit implements Evaluator (distance preferences are independent
// across flows, so there is no state to update).
func (e *DistanceEvaluator) Commit(Item, int) {}

// BandwidthEvaluator maps alternatives to preferences using "the maximum
// increase in link load along the path" (§5.2): the evaluator tracks the
// ISP's own link loads, scores each alternative by the worst
// load-to-capacity ratio the flow would cause on its own-network path,
// and updates loads as flows are committed. With the engine's
// reassignment policy this reproduces the paper's recomputation of
// preferences after each 5% of traffic.
type BandwidthEvaluator struct {
	view    view
	P       int
	Mapping Mapping
	Scale   Scale
	Load    []float64 // current per-link load in the own network
	Cap     []float64 // per-link capacity
	scratch evalScratch
	fn      func(i int)
}

// NewBandwidthEvaluator builds the evaluator; load is the ISP's current
// per-link load (copied), capv its link capacities.
func NewBandwidthEvaluator(s *pairsim.System, side Side, p int, load, capv []float64) *BandwidthEvaluator {
	v := newView(s, side)
	if len(load) != len(v.table.ISP.Links) || len(capv) != len(v.table.ISP.Links) {
		panic(fmt.Sprintf("nexit: load/cap vectors (%d/%d) do not match %d links",
			len(load), len(capv), len(v.table.ISP.Links)))
	}
	v.idx = v.table.PathIndexFor(v.ixOwn)
	e := &BandwidthEvaluator{
		view: v, P: p,
		Load: append([]float64(nil), load...),
		Cap:  append([]float64(nil), capv...),
	}
	// One closure for the evaluator's lifetime; per-call state flows
	// through the scratch so steady-state Prefs allocates nothing.
	e.fn = func(i int) {
		it := e.scratch.items[i]
		row := e.scratch.deltaRows[i]
		base := e.alternativeCost(it, e.scratch.defaults[i])
		for k := range row {
			row[k] = base - e.alternativeCost(it, k)
		}
	}
	return e
}

// alternativeCost is the worst post-placement load ratio on the item's
// own-network path for alternative k; an empty path (the flow enters and
// leaves at the same PoP) costs nothing.
func (e *BandwidthEvaluator) alternativeCost(it Item, k int) float64 {
	links := e.view.pathLinks(it, k)
	if len(links) == 0 {
		return 0
	}
	return metrics.MaxIncreaseOnPath32(e.Load, e.Cap, links, it.Flow.Size)
}

// Prefs implements Evaluator. Link loads are only read here, so the
// per-item loop is sharded by forEachItem when large. The returned rows
// live on the evaluator's scratch: valid until the next Prefs call.
func (e *BandwidthEvaluator) Prefs(items []Item, defaults []int) [][]int {
	na := len(e.view.ixOwn)
	deltas := e.scratch.deltas(len(items), na)
	e.scratch.items, e.scratch.defaults = items, defaults
	forEachItem(len(items), na, e.fn)
	return mapDeltas(deltas, e.P, e.Mapping, e.Scale, &e.scratch)
}

// Reset restores the evaluator to the given pre-session link loads (or
// all-zero when load is nil), letting callers reuse one evaluator
// across epochs instead of reconstructing it.
func (e *BandwidthEvaluator) Reset(load []float64) {
	setLoad(e.Load, load)
}

// Commit implements Evaluator: the committed flow's size is added to its
// own-network path links.
func (e *BandwidthEvaluator) Commit(it Item, alt int) {
	for _, li := range e.view.pathLinks(it, alt) {
		e.Load[li] += it.Flow.Size
	}
}

// Revert implements Reverter: the terminal unwind moves the flow back to
// its default alternative, so its load moves with it.
func (e *BandwidthEvaluator) Revert(it Item, alt, def int) {
	for _, li := range e.view.pathLinks(it, alt) {
		e.Load[li] -= it.Flow.Size
	}
	for _, li := range e.view.pathLinks(it, def) {
		e.Load[li] += it.Flow.Size
	}
}

// FortzThorupEvaluator scores alternatives by the increase in total
// Fortz–Thorup link cost on the ISP's own network — the paper's alternate
// bandwidth metric ("a metric based on a linear programming formulation
// of optimal routing [10] ... the sum of link costs, where the cost is a
// piecewise linear function of load with increasing slope").
type FortzThorupEvaluator struct {
	view    view
	P       int
	Mapping Mapping
	Scale   Scale
	Load    []float64
	Cap     []float64
	scratch evalScratch
	fn      func(i int)
}

// NewFortzThorupEvaluator builds the evaluator.
func NewFortzThorupEvaluator(s *pairsim.System, side Side, p int, load, capv []float64) *FortzThorupEvaluator {
	v := newView(s, side)
	if len(load) != len(v.table.ISP.Links) || len(capv) != len(v.table.ISP.Links) {
		panic("nexit: load/cap vectors do not match link count")
	}
	v.idx = v.table.PathIndexFor(v.ixOwn)
	e := &FortzThorupEvaluator{
		view: v, P: p,
		Load: append([]float64(nil), load...),
		Cap:  append([]float64(nil), capv...),
	}
	// One closure for the evaluator's lifetime; per-call state flows
	// through the scratch so steady-state Prefs allocates nothing.
	e.fn = func(i int) {
		it := e.scratch.items[i]
		row := e.scratch.deltaRows[i]
		base := e.alternativeCost(it, e.scratch.defaults[i])
		for k := range row {
			row[k] = base - e.alternativeCost(it, k)
		}
	}
	return e
}

// alternativeCost is the marginal Fortz–Thorup cost of placing the flow
// on alternative k.
func (e *FortzThorupEvaluator) alternativeCost(it Item, k int) float64 {
	var cost float64
	for _, li := range e.view.pathLinks(it, k) {
		cost += metrics.FortzThorupLink(e.Load[li]+it.Flow.Size, e.Cap[li]) -
			metrics.FortzThorupLink(e.Load[li], e.Cap[li])
	}
	return cost
}

// Prefs implements Evaluator. Link loads are only read here, so the
// per-item loop is sharded by forEachItem when large. The returned rows
// live on the evaluator's scratch: valid until the next Prefs call.
func (e *FortzThorupEvaluator) Prefs(items []Item, defaults []int) [][]int {
	na := len(e.view.ixOwn)
	deltas := e.scratch.deltas(len(items), na)
	e.scratch.items, e.scratch.defaults = items, defaults
	forEachItem(len(items), na, e.fn)
	return mapDeltas(deltas, e.P, e.Mapping, e.Scale, &e.scratch)
}

// Reset restores the evaluator to the given pre-session link loads (or
// all-zero when load is nil), letting callers reuse one evaluator
// across epochs instead of reconstructing it.
func (e *FortzThorupEvaluator) Reset(load []float64) {
	setLoad(e.Load, load)
}

// Commit implements Evaluator.
func (e *FortzThorupEvaluator) Commit(it Item, alt int) {
	for _, li := range e.view.pathLinks(it, alt) {
		e.Load[li] += it.Flow.Size
	}
}

// Revert implements Reverter.
func (e *FortzThorupEvaluator) Revert(it Item, alt, def int) {
	for _, li := range e.view.pathLinks(it, alt) {
		e.Load[li] -= it.Flow.Size
	}
	for _, li := range e.view.pathLinks(it, def) {
		e.Load[li] += it.Flow.Size
	}
}

// setLoad copies src into dst, zero-filling when src is nil.
func setLoad(dst, src []float64) {
	if src == nil {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	if len(src) != len(dst) {
		panic(fmt.Sprintf("nexit: reset load vector has %d entries for %d links", len(src), len(dst)))
	}
	copy(dst, src)
}

// StaticEvaluator discloses fixed preference lists; it is used by tests
// and by the worked example of the paper's Figure 3, where preference
// tables are given directly.
type StaticEvaluator struct {
	NumAlts int
	// Table maps item ID to its preference list. Missing items get
	// all-zero preferences (indifferent).
	Table map[int][]int
}

// Prefs implements Evaluator.
func (e *StaticEvaluator) Prefs(items []Item, defaults []int) [][]int {
	out := make([][]int, len(items))
	for i, it := range items {
		if p, ok := e.Table[it.ID]; ok {
			out[i] = append([]int(nil), p...)
		} else {
			out[i] = make([]int, e.NumAlts)
		}
	}
	return out
}

// Commit implements Evaluator.
func (e *StaticEvaluator) Commit(Item, int) {}

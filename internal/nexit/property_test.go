package nexit

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// randomPair builds a random pair of ISPs sharing at least two cities:
// random city sets with coordinates, spanning-tree backbones plus
// shortcuts.
func randomPair(rng *rand.Rand) *topology.Pair {
	nShared := 2 + rng.Intn(3)
	mk := func(name string, asn, extra int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		n := nShared + extra
		for i := 0; i < n; i++ {
			city := string(rune('a'+i%26)) + string(rune('0'+i/26))
			var loc geo.Point
			if i < nShared {
				// Shared cities: same coordinates in both ISPs, seeded
				// deterministically from the index.
				loc = geo.Point{Lat: float64(10 + 7*i%60), Lon: float64(-120 + 13*i%100)}
			} else {
				loc = geo.Point{Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*300 - 150}
			}
			isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: city, Loc: loc, Population: 1e6})
		}
		// Random spanning tree + shortcuts.
		perm := rng.Perm(n)
		have := map[[2]int]bool{}
		add := func(a, b int) {
			if a > b {
				a, b = b, a
			}
			if a == b || have[[2]int{a, b}] {
				return
			}
			have[[2]int{a, b}] = true
			d := geo.DistanceKm(isp.PoPs[a].Loc, isp.PoPs[b].Loc)
			if d < 1 {
				d = 1
			}
			isp.Links = append(isp.Links, topology.Link{A: a, B: b, Weight: d, LengthKm: d})
		}
		for i := 1; i < n; i++ {
			add(perm[i], perm[rng.Intn(i)])
		}
		for e := 0; e < n/2; e++ {
			add(rng.Intn(n), rng.Intn(n))
		}
		return isp
	}
	a := mk("pa", 100, rng.Intn(6))
	b := mk("pb", 200, rng.Intn(6))
	return topology.NewPair(a, b)
}

// TestNoRealLossProperty is the repository's core invariant: over random
// topologies and workloads, truthful distance negotiation never leaves
// either ISP carrying more distance than the default. Floor-rounded
// classes are lower bounds on real improvements and the terminal unwind
// guarantees non-negative final class gains, so real losses are
// impossible up to floating-point noise.
func TestNoRealLossProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		pair := randomPair(rng)
		if err := pair.A.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := pair.B.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if pair.NumInterconnections() < 2 {
			continue
		}
		s := pairsim.New(pair, nil)
		rev := s.Reverse()
		wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
		wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
		items := Items(wAB.Flows, wBA.Flows)
		defaults := make([]int, len(items))
		for i, it := range items {
			if it.Dir == AtoB {
				defaults[i] = s.EarlyExit(it.Flow)
			} else {
				defaults[i] = rev.EarlyExit(it.Flow)
			}
		}
		evalA := NewDistanceEvaluator(s, SideA, 10)
		evalB := NewDistanceEvaluator(s, SideB, 10)
		res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, defaults, s.NumAlternatives())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		dist := func(assign []int) (inA, inB float64) {
			for i, it := range items {
				k := assign[i]
				if it.Dir == AtoB {
					inA += s.UpDistKm(it.Flow, k)
					inB += s.DownDistKm(it.Flow, k)
				} else {
					inB += rev.UpDistKm(it.Flow, k)
					inA += rev.DownDistKm(it.Flow, k)
				}
			}
			return inA, inB
		}
		defA, defB := dist(defaults)
		negA, negB := dist(res.Assign)
		if defA > 0 && negA > defA*1.0001 {
			t.Errorf("trial %d: ISP A lost %.3f%% real distance",
				trial, 100*(negA-defA)/defA)
		}
		if defB > 0 && negB > defB*1.0001 {
			t.Errorf("trial %d: ISP B lost %.3f%% real distance",
				trial, 100*(negB-defB)/defB)
		}
		// Joint total never degrades at all (every adopted move has
		// non-negative combined class gain and classes floor losses).
		if defA+defB > 0 && negA+negB > (defA+defB)*1.0001 {
			t.Errorf("trial %d: joint distance grew from %.0f to %.0f",
				trial, defA+defB, negA+negB)
		}
	}
}

// TestTerminationProperty: the engine always terminates and assigns a
// valid alternative to every item, across random preference tables and
// all policy combinations.
func TestTerminationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	turns := []TurnPolicy{Alternate, LowerGain, CoinToss}
	proposes := []ProposePolicy{MaxSum, BestLocal}
	accepts := []AcceptPolicy{AlwaysAccept, VetoIfLoss}
	stops := []StopPolicy{StopEarly, StopWhilePositive, StopNever}
	for trial := 0; trial < 120; trial++ {
		na := 2 + rng.Intn(4)
		n := 1 + rng.Intn(12)
		mk := func() *StaticEvaluator {
			ev := &StaticEvaluator{NumAlts: na, Table: map[int][]int{}}
			for i := 0; i < n; i++ {
				prefs := make([]int, na)
				for k := range prefs {
					prefs[k] = rng.Intn(21) - 10
				}
				prefs[i%na] = 0 // default class 0 somewhere
				ev.Table[i] = prefs
			}
			return ev
		}
		items := make([]Item, n)
		defaults := make([]int, n)
		for i := 0; i < n; i++ {
			items[i] = Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1 + rng.Float64()}}
			defaults[i] = i % na
		}
		cfg := Config{
			PrefBound: 10,
			Turn:      turns[trial%len(turns)],
			Propose:   proposes[trial%len(proposes)],
			Accept:    accepts[trial%len(accepts)],
			Stop:      stops[trial%len(stops)],
			Rng:       rand.New(rand.NewSource(int64(trial))),
		}
		if trial%4 == 0 {
			cfg.ReassignFraction = 0.25
		}
		res, err := Negotiate(cfg, mk(), mk(), items, defaults, na)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, a := range res.Assign {
			if a < 0 || a >= na {
				t.Fatalf("trial %d: item %d assigned %d (na=%d)", trial, i, a, na)
			}
		}
		if res.Rounds > n*na*4+16 {
			t.Fatalf("trial %d: %d rounds for %d items (runaway)", trial, res.Rounds, n)
		}
	}
}

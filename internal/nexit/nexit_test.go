package nexit

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// scriptedEvaluator lets tests provide preference lists that change as
// flows are committed, like ISP-B in the paper's Figure 3 example.
type scriptedEvaluator struct {
	prefs   func(committed map[int]int, it Item) []int
	commits map[int]int // item ID -> alt
}

func newScripted(f func(committed map[int]int, it Item) []int) *scriptedEvaluator {
	return &scriptedEvaluator{prefs: f, commits: map[int]int{}}
}

func (e *scriptedEvaluator) Prefs(items []Item, defaults []int) [][]int {
	out := make([][]int, len(items))
	for i, it := range items {
		out[i] = e.prefs(e.commits, it)
	}
	return out
}

func (e *scriptedEvaluator) Commit(it Item, alt int) { e.commits[it.ID] = alt }

// TestFigure3Example reproduces the paper's worked example (§4.1, Figures
// 2 and 3). Two flows f2 (item 0) and f3 (item 1), two alternatives: top
// (alt 0) and bottom (alt 1); both default to bottom. ISP-A is averse to
// f2 using the top interconnection; ISP-B is initially indifferent but,
// once f2 is committed to the bottom link, prefers f3 on top. The
// expected outcome is Figure 2e: f2 on bottom, f3 on top.
func TestFigure3Example(t *testing.T) {
	// ISP-A's preferences are static: f2 = (-1 top, 0 bottom), f3 = (0,0).
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{
		0: {-1, 0},
		1: {0, 0},
	}}
	// ISP-B reassigns: indifferent until f2 is on the bottom link, then
	// prefers f3 on top (+1) over bottom (0).
	evalB := newScripted(func(committed map[int]int, it Item) []int {
		if it.ID == 1 {
			if alt, ok := committed[0]; ok && alt == 1 {
				return []int{1, 0}
			}
		}
		return []int{0, 0}
	})

	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}, Dir: AtoB},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}, Dir: AtoB},
	}
	defaults := []int{1, 1} // both flows default to the bottom link

	cfg := Config{
		PrefBound: 1, // the example uses preference range [-1, 1]
		Turn:      Alternate,
		Propose:   MaxSum,
		Accept:    AlwaysAccept,
		Stop:      StopEarly,
		// Reassign after every flow (each is 50% of the traffic).
		ReassignFraction: 0.5,
	}
	res, err := Negotiate(cfg, evalA, evalB, items, defaults, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 1 {
		t.Errorf("f2 assigned to alt %d, want bottom (1)", res.Assign[0])
	}
	if res.Assign[1] != 0 {
		t.Errorf("f3 assigned to alt %d, want top (0) — Figure 2e", res.Assign[1])
	}
	if res.GainA != 0 || res.GainB != 1 {
		t.Errorf("gains = (%d, %d), want (0, 1)", res.GainA, res.GainB)
	}
	// Round 1 is proposed by A (f2 -> bottom), round 2 by B (f3 -> top).
	if len(res.Transcript) != 2 {
		t.Fatalf("transcript has %d rounds, want 2", len(res.Transcript))
	}
	if res.Transcript[0].Proposer != SideA || res.Transcript[0].ItemID != 0 || res.Transcript[0].Alt != 1 {
		t.Errorf("round 1 = %+v, want A proposing f2 bottom", res.Transcript[0])
	}
	if res.Transcript[1].Proposer != SideB || res.Transcript[1].ItemID != 1 || res.Transcript[1].Alt != 0 {
		t.Errorf("round 2 = %+v, want B proposing f3 top", res.Transcript[1])
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{PrefBound: 0},
		{PrefBound: 10, ReassignFraction: -0.1},
		{PrefBound: 10, ReassignFraction: 1.5},
		{PrefBound: 10, Turn: CoinToss}, // no rng
	}
	ev := &StaticEvaluator{NumAlts: 1}
	for i, cfg := range cases {
		if _, err := Negotiate(cfg, ev, ev, nil, nil, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNegotiateInputValidation(t *testing.T) {
	cfg := DefaultDistanceConfig()
	ev := &StaticEvaluator{NumAlts: 2}
	items := []Item{{ID: 0, Flow: traffic.Flow{Size: 1}}}
	if _, err := Negotiate(cfg, ev, ev, items, []int{0, 1}, 2); err == nil {
		t.Error("mismatched defaults accepted")
	}
	if _, err := Negotiate(cfg, ev, ev, items, []int{5}, 2); err == nil {
		t.Error("out-of-range default accepted")
	}
	if _, err := Negotiate(cfg, ev, ev, items, []int{0}, 0); err == nil {
		t.Error("zero alternatives accepted")
	}
	bad := []Item{{ID: 7, Flow: traffic.Flow{Size: 1}}}
	if _, err := Negotiate(cfg, ev, ev, bad, []int{0}, 2); err == nil {
		t.Error("non-dense item IDs accepted")
	}
}

func TestMaxSumPicksJointBest(t *testing.T) {
	evalA := &StaticEvaluator{NumAlts: 3, Table: map[int][]int{
		0: {0, 2, -1},
		1: {0, 1, 1},
	}}
	evalB := &StaticEvaluator{NumAlts: 3, Table: map[int][]int{
		0: {0, 3, 1},
		1: {0, -1, 4},
	}}
	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, []int{0, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Item 0 best sum = alt 1 (2+3=5); item 1 best sum = alt 2 (1+4=5).
	if res.Assign[0] != 1 || res.Assign[1] != 2 {
		t.Errorf("assign = %v, want [1 2]", res.Assign)
	}
	if res.GainA != 3 || res.GainB != 7 {
		t.Errorf("gains = (%d,%d), want (3,7)", res.GainA, res.GainB)
	}
	if res.Stopped != StopAllNegotiated {
		t.Errorf("stop reason = %v", res.Stopped)
	}
}

func TestStopEarlyBlocksDraggedLosses(t *testing.T) {
	// A has nothing to gain anywhere and the best joint proposal is
	// -1 for A / +3 for B: with early termination A walks away.
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, -1}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 3}}}
	items := []Item{{ID: 0, Flow: traffic.Flow{Size: 1}}}
	res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 0 {
		t.Errorf("assign = %v, want default", res.Assign)
	}
	if res.GainA != 0 {
		t.Errorf("GainA = %d, want 0 (A protected)", res.GainA)
	}
	// With StopNever the same table is traded through.
	cfg := DefaultDistanceConfig()
	cfg.Stop = StopNever
	res, err = Negotiate(cfg, evalA, evalB, items, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 1 {
		t.Errorf("StopNever: assign = %v, want [1]", res.Assign)
	}
}

func TestStopEarlyAllowsNeutralCompromise(t *testing.T) {
	// A gains nothing anywhere but the proposal is neutral for it; the
	// negotiation must proceed (Figure 3 depends on this).
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 0}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 2}}}
	items := []Item{{ID: 0, Flow: traffic.Flow{Size: 1}}}
	res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 1 {
		t.Errorf("assign = %v, want [1]", res.Assign)
	}
}

func TestHarmfulAlternativeFallsBackToDefault(t *testing.T) {
	// The only non-default alternative has combined gain -3; the
	// max-sum proposal is the (harmless) default, which is committed,
	// leaving the flow on its default route.
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, -5}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 2}}}
	items := []Item{{ID: 0, Flow: traffic.Flow{Size: 1}}}
	res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 0 {
		t.Errorf("assign = %v, want default", res.Assign)
	}
	if res.GainA != 0 || res.GainB != 0 {
		t.Errorf("gains = (%d,%d), want (0,0)", res.GainA, res.GainB)
	}
	if res.Stopped != StopAllNegotiated {
		t.Errorf("stop reason = %v, want all-negotiated", res.Stopped)
	}
}

func TestStopWhilePositive(t *testing.T) {
	// Item 0: A +1 / B +1 (sum 2). Item 1: A -2 / B +3 (sum 1).
	// Full termination takes item 0, then stops before item 1 would
	// push A's cumulative gain to -1.
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 1}, 1: {0, -2}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 1}, 1: {0, 3}}}
	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	cfg := DefaultDistanceConfig()
	cfg.Stop = StopWhilePositive
	res, err := Negotiate(cfg, evalA, evalB, items, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 1 || res.Assign[1] != 0 {
		t.Errorf("assign = %v, want [1 0]", res.Assign)
	}
	if res.Stopped != StopCumulativeLoss {
		t.Errorf("stop reason = %v, want cumulative-loss", res.Stopped)
	}
}

func TestVetoProtectsFromLoss(t *testing.T) {
	// Best joint proposal hurts A badly. With VetoIfLoss A rejects it
	// and its cumulative gain never goes negative.
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, -4}, 1: {0, 1}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 10}, 1: {0, 1}}}
	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	cfg := DefaultDistanceConfig()
	cfg.Accept = VetoIfLoss
	cfg.Stop = StopNever
	res, err := Negotiate(cfg, evalA, evalB, items, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.GainA < 0 {
		t.Errorf("GainA = %d; veto should prevent loss", res.GainA)
	}
	if res.Assign[0] == 1 {
		t.Error("vetoed alternative was adopted")
	}
	if res.Assign[1] != 1 {
		t.Error("harmless alternative should still be adopted")
	}
	vetoes := 0
	for _, p := range res.Transcript {
		if !p.Accepted {
			vetoes++
		}
	}
	if vetoes == 0 {
		t.Error("expected a rejected proposal in the transcript")
	}
}

func TestAlternateTurns(t *testing.T) {
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{
		0: {0, 1}, 1: {0, 1}, 2: {0, 1}, 3: {0, 1},
	}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{
		0: {0, 1}, 1: {0, 1}, 2: {0, 1}, 3: {0, 1},
	}}
	var items []Item
	for i := 0; i < 4; i++ {
		items = append(items, Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}})
	}
	res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, []int{0, 0, 0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Side{SideA, SideB, SideA, SideB}
	for i, p := range res.Transcript {
		if p.Proposer != want[i] {
			t.Errorf("round %d proposer = %v, want %v", i, p.Proposer, want[i])
		}
	}
}

func TestLowerGainTurns(t *testing.T) {
	// Item 0 gives A +5/B +1; afterwards B (lower gain) proposes.
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 5}, 1: {0, 1}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 1}, 1: {0, 1}}}
	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	cfg := DefaultDistanceConfig()
	cfg.Turn = LowerGain
	res, err := Negotiate(cfg, evalA, evalB, items, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcript) != 2 {
		t.Fatalf("want 2 rounds, got %d", len(res.Transcript))
	}
	if res.Transcript[1].Proposer != SideB {
		t.Errorf("round 2 proposer = %v, want B (lower gain)", res.Transcript[1].Proposer)
	}
}

func TestCoinTossDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []Side {
		evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{
			0: {0, 1}, 1: {0, 1}, 2: {0, 1}, 3: {0, 1}, 4: {0, 1}, 5: {0, 1},
		}}
		evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{
			0: {0, 1}, 1: {0, 1}, 2: {0, 1}, 3: {0, 1}, 4: {0, 1}, 5: {0, 1},
		}}
		var items []Item
		var defaults []int
		for i := 0; i < 6; i++ {
			items = append(items, Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}})
			defaults = append(defaults, 0)
		}
		cfg := DefaultDistanceConfig()
		cfg.Turn = CoinToss
		cfg.Rng = rand.New(rand.NewSource(seed))
		res, err := Negotiate(cfg, evalA, evalB, items, defaults, 2)
		if err != nil {
			t.Fatal(err)
		}
		var sides []Side
		for _, p := range res.Transcript {
			sides = append(sides, p.Proposer)
		}
		return sides
	}
	a, b := mk(1), mk(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different turn sequences")
		}
	}
}

func TestBestLocalPropose(t *testing.T) {
	// A's best local alternative is item 0 alt 1 (+3), even though the
	// joint best is item 1 alt 1 (sum 4 vs 3).
	evalA := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 3}, 1: {0, 1}}}
	evalB := &StaticEvaluator{NumAlts: 2, Table: map[int][]int{0: {0, 0}, 1: {0, 3}}}
	items := []Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Size: 1}},
		{ID: 1, Flow: traffic.Flow{ID: 1, Size: 1}},
	}
	cfg := DefaultDistanceConfig()
	cfg.Propose = BestLocal
	res, err := Negotiate(cfg, evalA, evalB, items, []int{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transcript[0].ItemID != 0 || res.Transcript[0].Alt != 1 {
		t.Errorf("round 1 = %+v, want A's local best (item 0 alt 1)", res.Transcript[0])
	}
}

func TestItemsBuilder(t *testing.T) {
	ab := []traffic.Flow{{ID: 0, Size: 1}, {ID: 1, Size: 2}}
	ba := []traffic.Flow{{ID: 0, Size: 3}}
	items := Items(ab, ba)
	if len(items) != 3 {
		t.Fatalf("got %d items", len(items))
	}
	for i, it := range items {
		if it.ID != i {
			t.Errorf("item %d has ID %d", i, it.ID)
		}
	}
	if items[0].Dir != AtoB || items[2].Dir != BtoA {
		t.Error("directions wrong")
	}
	if items[2].Flow.Size != 3 {
		t.Error("flow payload lost")
	}
}

func TestStringers(t *testing.T) {
	names := []string{
		AtoB.String(), BtoA.String(), SideA.String(), SideB.String(),
		Alternate.String(), LowerGain.String(), CoinToss.String(),
		MaxSum.String(), BestLocal.String(),
		AlwaysAccept.String(), VetoIfLoss.String(),
		StopEarly.String(), StopWhilePositive.String(), StopNever.String(),
		StopAllNegotiated.String(), StopNoJointGain.String(),
		StopSideCannotGain.String(), StopCumulativeLoss.String(),
		Cardinal.String(), Ordinal.String(),
	}
	for i, n := range names {
		if n == "" {
			t.Errorf("stringer %d returned empty", i)
		}
	}
	if SideA.Other() != SideB || SideB.Other() != SideA {
		t.Error("Side.Other wrong")
	}
}

// --- evaluator tests over a real topology ---

// linePair builds two parallel 3-city backbones sharing all cities.
func linePair(t *testing.T) (*topology.Pair, *pairsim.System) {
	t.Helper()
	mk := func(name string, asn int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		for i, c := range []string{"west", "mid", "east"} {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c, Loc: geo.Point{Lat: 40, Lon: -120 + 20*float64(i)}, Population: 1e6,
			})
		}
		for i := 0; i+1 < 3; i++ {
			d := geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[i+1].Loc)
			isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: d, LengthKm: d})
		}
		return isp
	}
	pair := topology.NewPair(mk("a", 1), mk("b", 2))
	return pair, pairsim.New(pair, nil)
}

func TestDistanceEvaluatorPrefs(t *testing.T) {
	_, s := linePair(t)
	evalA := NewDistanceEvaluator(s, SideA, 10)
	// Flow from A's west PoP (0) to B's east PoP (2), A->B.
	// Interconnections sorted by city: east(0), mid(1), west(2).
	it := Item{ID: 0, Flow: traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 1}, Dir: AtoB}
	prefs := evalA.Prefs([]Item{it}, []int{2}) // default = west exit (early exit)
	if prefs[0][2] != 0 {
		t.Errorf("default alternative pref = %d, want 0", prefs[0][2])
	}
	// Exiting further from the source is worse for A (longer in-A path):
	// east exit carries the flow across A's whole backbone.
	if prefs[0][0] >= 0 {
		t.Errorf("east exit pref = %d, want negative", prefs[0][0])
	}
	if prefs[0][1] >= 0 || prefs[0][1] <= prefs[0][0] {
		t.Errorf("mid exit pref = %d, want between east (%d) and 0", prefs[0][1], prefs[0][0])
	}
	// The farthest alternative maps to -P under cardinal scaling.
	if prefs[0][0] != -10 {
		t.Errorf("east exit pref = %d, want -10", prefs[0][0])
	}
	// B's preferences mirror A's: east exit is best for B.
	evalB := NewDistanceEvaluator(s, SideB, 10)
	prefsB := evalB.Prefs([]Item{it}, []int{2})
	if prefsB[0][0] != 10 {
		t.Errorf("B's east exit pref = %d, want +10", prefsB[0][0])
	}
}

func TestDistanceEvaluatorReverseDirection(t *testing.T) {
	_, s := linePair(t)
	evalA := NewDistanceEvaluator(s, SideA, 10)
	// B->A flow from B's east PoP to A's west PoP. For A (downstream),
	// the east entry is worst (full backbone traversal).
	it := Item{ID: 0, Flow: traffic.Flow{ID: 0, Src: 2, Dst: 0, Size: 1}, Dir: BtoA}
	prefs := evalA.Prefs([]Item{it}, []int{0}) // default: east entry (B's early exit)
	if prefs[0][0] != 0 {
		t.Errorf("default pref = %d, want 0", prefs[0][0])
	}
	if prefs[0][2] != 10 {
		t.Errorf("west entry pref = %d, want +10 (A carries nothing)", prefs[0][2])
	}
}

func TestOrdinalMapping(t *testing.T) {
	deltas := [][]float64{{0, -3, 5, 2, -8}}
	prefs := mapDeltas(deltas, 10, Ordinal, ScalePerFlow, nil)
	want := []int{0, -1, 2, 1, -2}
	for k, w := range want {
		if prefs[0][k] != w {
			t.Errorf("ordinal[%d] = %d, want %d", k, prefs[0][k], w)
		}
	}
	// Clamped at P.
	prefs = mapDeltas([][]float64{{0, 1, 2, 3}}, 2, Ordinal, ScalePerFlow, nil)
	if prefs[0][3] != 2 {
		t.Errorf("ordinal clamp = %d, want 2", prefs[0][3])
	}
}

func TestCardinalMappingScale(t *testing.T) {
	// Non-zero magnitudes {50, 100, 25}: the q90 denominator is 50, so
	// +50 maps to the full +10, -100 saturates at -10 (outliers clamp),
	// and +25 maps to +5.
	deltas := [][]float64{{0, 50, -100}, {0, 25, 0}}
	prefs := mapDeltas(deltas, 10, Cardinal, ScaleGlobal, nil)
	if prefs[0][1] != 10 || prefs[0][2] != -10 || prefs[1][1] != 5 {
		t.Errorf("cardinal mapping = %v", prefs)
	}
	// All-zero deltas map to all-zero prefs.
	zero := mapDeltas([][]float64{{0, 0}}, 10, Cardinal, ScaleGlobal, nil)
	if zero[0][0] != 0 || zero[0][1] != 0 {
		t.Error("zero deltas should map to zero prefs")
	}
	// Asymmetric rounding: losses are never underestimated (floor), so
	// any strictly negative delta gets a class <= -1, while a tiny gain
	// rounds to 0.
	asym := mapDeltas([][]float64{{0, -1, 100, 4}, {0, 100, 100, 100}, {0, 100, 100, 100}, {0, 100, 100, 100}}, 10, Cardinal, ScaleGlobal, nil)
	if asym[0][1] != -1 {
		t.Errorf("tiny loss mapped to class %d, want -1", asym[0][1])
	}
	if asym[0][3] != 0 {
		t.Errorf("tiny gain mapped to class %d, want 0", asym[0][3])
	}
}

func TestBandwidthEvaluatorTracksLoad(t *testing.T) {
	pair, s := linePair(t)
	nl := len(pair.A.Links)
	load := make([]float64, nl)
	capv := []float64{1, 1}
	evalA := NewBandwidthEvaluator(s, SideA, 10, load, capv)

	// Flow west->east via the east interconnection crosses both A links.
	it := Item{ID: 0, Flow: traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 0.6}, Dir: AtoB}
	prefs := evalA.Prefs([]Item{it}, []int{2})
	// Default (west exit) has empty own path: cost 0. East exit loads
	// both links to 0.6: delta = -0.6 -> negative pref.
	if prefs[0][2] != 0 || prefs[0][0] >= 0 {
		t.Errorf("prefs = %v", prefs[0])
	}
	evalA.Commit(it, 0) // commit to east exit: both links now 0.6
	if evalA.Load[0] != 0.6 || evalA.Load[1] != 0.6 {
		t.Errorf("loads after commit = %v", evalA.Load)
	}
	// A second identical flow now sees higher cost on the east path.
	it2 := Item{ID: 1, Flow: traffic.Flow{ID: 1, Src: 0, Dst: 2, Size: 0.6}, Dir: AtoB}
	prefs2 := evalA.Prefs([]Item{it2}, []int{2})
	if prefs2[0][0] >= prefs[0][0] {
		// Scale is recomputed per call, but with a single item the
		// worst alternative is pinned at -P both times; check the raw
		// costs instead.
		c1 := evalA.alternativeCost(it2, 0)
		if c1 <= 0.6 {
			t.Errorf("post-commit cost = %v, want > 0.6", c1)
		}
	}
}

func TestBandwidthEvaluatorPanicsOnBadVectors(t *testing.T) {
	_, s := linePair(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched vectors")
		}
	}()
	NewBandwidthEvaluator(s, SideA, 10, []float64{1}, []float64{1, 1})
}

func TestFortzThorupEvaluator(t *testing.T) {
	pair, s := linePair(t)
	nl := len(pair.A.Links)
	evalA := NewFortzThorupEvaluator(s, SideA, 10, make([]float64, nl), []float64{1, 1})
	it := Item{ID: 0, Flow: traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 0.5}, Dir: AtoB}
	prefs := evalA.Prefs([]Item{it}, []int{2})
	if prefs[0][2] != 0 {
		t.Errorf("default pref = %d, want 0", prefs[0][2])
	}
	if prefs[0][0] >= 0 {
		t.Errorf("costly alternative pref = %d, want negative", prefs[0][0])
	}
	evalA.Commit(it, 0)
	if evalA.Load[0] != 0.5 {
		t.Errorf("load after commit = %v", evalA.Load)
	}
}

func TestCheatDistortion(t *testing.T) {
	// own = {0, 2, 5}, other = {0, 8, -3}: max sum = 10 at alt 1;
	// cheater's best alt is 2 (own 5); needs disclosed 10-(-3)=13 > P=10,
	// so clamp best to 10 and deflate alt 1 to P + other[2] - other[1]
	// = 10 - 3 - 8 = -1.
	got := distortPrefs([]int{0, 2, 5}, []int{0, 8, -3}, 10)
	if got[2] != 10 {
		t.Errorf("best alt disclosed = %d, want 10", got[2])
	}
	if got[1] != -1 {
		t.Errorf("competing alt disclosed = %d, want -1", got[1])
	}
	if got[2]+(-3) < got[1]+8 || got[2]+(-3) < got[0]+0 {
		t.Error("cheater's best alternative does not attain max sum")
	}

	// Small inflation case: own = {0, 1}, other = {3, 0}: best alt 1,
	// need 3-0 = 3 <= P: disclose {0, 3}.
	got = distortPrefs([]int{0, 1}, []int{3, 0}, 10)
	if got[1] != 3 || got[0] != 0 {
		t.Errorf("got %v, want [0 3]", got)
	}

	// Already maximal: disclose truthfully.
	got = distortPrefs([]int{0, 5}, []int{0, 0}, 10)
	if got[0] != 0 || got[1] != 5 {
		t.Errorf("got %v, want [0 5]", got)
	}
}

func TestCheatEvaluatorSteersOutcome(t *testing.T) {
	// Without cheating, item 0 goes to alt 1 (sum 6). The cheater's own
	// best is alt 2; with distortion alt 2 must be selected.
	truthA := &StaticEvaluator{NumAlts: 3, Table: map[int][]int{0: {0, 1, 4}}}
	evalB := &StaticEvaluator{NumAlts: 3, Table: map[int][]int{0: {0, 5, 1}}}
	cheater := &CheatEvaluator{Truthful: truthA, Other: evalB, P: 10}
	items := []Item{{ID: 0, Flow: traffic.Flow{Size: 1}}}
	res, err := Negotiate(DefaultDistanceConfig(), cheater, evalB, items, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 2 {
		t.Errorf("assign = %v, cheater failed to steer to alt 2", res.Assign)
	}
}

func TestNegotiationDeterminism(t *testing.T) {
	_, s := linePair(t)
	w := traffic.New(s.Pair.A, s.Pair.B, traffic.Gravity, nil)
	wRev := traffic.New(s.Pair.B, s.Pair.A, traffic.Gravity, nil)
	items := Items(w.Flows, wRev.Flows)
	defaults := make([]int, len(items))
	rev := s.Reverse()
	for i, it := range items {
		if it.Dir == AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	run := func() *Result {
		evalA := NewDistanceEvaluator(s, SideA, 10)
		evalB := NewDistanceEvaluator(s, SideB, 10)
		res, err := Negotiate(DefaultDistanceConfig(), evalA, evalB, items, defaults, s.NumAlternatives())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("negotiation is not deterministic")
		}
	}
	if r1.GainA != r2.GainA || r1.GainB != r2.GainB {
		t.Fatal("gains differ across runs")
	}
}

func TestNegotiationNeverWorseWithVeto(t *testing.T) {
	// Property over random preference tables: with VetoIfLoss both
	// cumulative gains are >= 0 at every point, regardless of tables.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		na := 2 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		mk := func() *StaticEvaluator {
			ev := &StaticEvaluator{NumAlts: na, Table: map[int][]int{}}
			for i := 0; i < n; i++ {
				prefs := make([]int, na)
				def := rng.Intn(na)
				for k := range prefs {
					if k != def {
						prefs[k] = rng.Intn(21) - 10
					}
				}
				ev.Table[i] = prefs
			}
			return ev
		}
		var items []Item
		defaults := make([]int, n)
		for i := 0; i < n; i++ {
			items = append(items, Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}})
		}
		cfg := DefaultDistanceConfig()
		cfg.Accept = VetoIfLoss
		cfg.Stop = StopNever
		res, err := Negotiate(cfg, mk(), mk(), items, defaults, na)
		if err != nil {
			t.Fatal(err)
		}
		if res.GainA < 0 || res.GainB < 0 {
			t.Fatalf("trial %d: gains (%d,%d) negative despite veto", trial, res.GainA, res.GainB)
		}
	}
}

func TestReassignmentTriggersByTrafficFraction(t *testing.T) {
	// Count Prefs calls: with ReassignFraction 0.25 over 4 unit flows,
	// prefs are recomputed after each flow: 1 initial + 3 reassignments
	// (the 4th commit empties the table; refresh on empty is harmless).
	calls := 0
	mkEval := func() Evaluator {
		return newScripted(func(map[int]int, Item) []int { return []int{0, 1} })
	}
	evalA := mkEval().(*scriptedEvaluator)
	base := evalA.prefs
	evalA.prefs = func(c map[int]int, it Item) []int {
		return base(c, it)
	}
	countingA := &countingEvaluator{inner: evalA, calls: &calls}
	var items []Item
	defaults := make([]int, 4)
	for i := 0; i < 4; i++ {
		items = append(items, Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}})
	}
	cfg := DefaultDistanceConfig()
	cfg.ReassignFraction = 0.25
	if _, err := Negotiate(cfg, countingA, mkEval(), items, defaults, 2); err != nil {
		t.Fatal(err)
	}
	if calls < 4 {
		t.Errorf("Prefs called %d times, want >= 4 (initial + reassignments)", calls)
	}
}

type countingEvaluator struct {
	inner Evaluator
	calls *int
}

func (c *countingEvaluator) Prefs(items []Item, defaults []int) [][]int {
	*c.calls++
	return c.inner.Prefs(items, defaults)
}
func (c *countingEvaluator) Commit(it Item, alt int) { c.inner.Commit(it, alt) }

package nexit

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/traffic"
)

// TestBatchAcceptHookMatchesSerial pins the batched engine path's core
// guarantee: for any deterministic accept/veto predicate, running with
// BatchAcceptHook (whole runs of proposals decided at once, vetoes
// truncating the batch) produces a Result identical to asking the same
// predicate one proposal at a time through AcceptHook — assignments,
// gains, rounds, transcript, stop reason, everything.
func TestBatchAcceptHookMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	turns := []TurnPolicy{Alternate, LowerGain, CoinToss}
	stops := []StopPolicy{StopEarly, StopWhilePositive, StopNever}
	for trial := 0; trial < 200; trial++ {
		na := 2 + rng.Intn(4)
		n := 1 + rng.Intn(14)
		mkTable := func() map[int][]int {
			tbl := map[int][]int{}
			for i := 0; i < n; i++ {
				prefs := make([]int, na)
				for k := range prefs {
					prefs[k] = rng.Intn(21) - 10
				}
				prefs[i%na] = 0 // default class 0
				tbl[i] = prefs
			}
			return tbl
		}
		tblA, tblB := mkTable(), mkTable()
		items := make([]Item, n)
		defaults := make([]int, n)
		for i := 0; i < n; i++ {
			items[i] = Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1 + rng.Float64()}}
			defaults[i] = i % na
		}
		// A deterministic veto predicate over the proposal fields both
		// paths present identically; every third trial accepts all.
		vetoes := trial%3 != 0
		veto := func(p Proposal) bool {
			return vetoes && (p.ItemID*31+p.Alt*7+p.Round)%5 == 0
		}
		base := Config{
			PrefBound: 10,
			Turn:      turns[trial%len(turns)],
			Propose:   MaxSum,
			Accept:    AlwaysAccept,
			Stop:      stops[trial%len(stops)],
		}
		if trial%4 == 1 {
			base.ReassignFraction = 0.2
		}

		serialCfg := base
		serialCfg.Rng = rand.New(rand.NewSource(int64(trial)))
		serialCfg.AcceptHook = func(_ Side, p Proposal) bool { return !veto(p) }
		serial, err := Negotiate(serialCfg, &StaticEvaluator{NumAlts: na, Table: tblA},
			&StaticEvaluator{NumAlts: na, Table: tblB}, items, defaults, na)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}

		batchCfg := base
		batchCfg.Rng = rand.New(rand.NewSource(int64(trial)))
		batchCfg.BatchAcceptHook = func(batch []Proposal) int {
			for i, p := range batch {
				if veto(p) {
					return i
				}
			}
			return len(batch)
		}
		batched, err := Negotiate(batchCfg, &StaticEvaluator{NumAlts: na, Table: tblA},
			&StaticEvaluator{NumAlts: na, Table: tblB}, items, defaults, na)
		if err != nil {
			t.Fatalf("trial %d batched: %v", trial, err)
		}

		if !reflect.DeepEqual(serial, batched) {
			t.Fatalf("trial %d (turn=%v stop=%v reassign=%v vetoes=%v): batched result diverged\nserial:  %+v\nbatched: %+v",
				trial, base.Turn, base.Stop, base.ReassignFraction > 0, vetoes, serial, batched)
		}
	}
}

// TestBatchAcceptHookBatchShapes checks the batching itself (not just
// the outcome): under Alternate turns with no vetoes the whole
// negotiation should arrive in large batches (one per reassignment
// window), while CoinToss must degrade to single-proposal batches to
// keep Rng draws aligned with the serial reference.
func TestBatchAcceptHookBatchShapes(t *testing.T) {
	na, n := 3, 12
	tbl := map[int][]int{}
	for i := 0; i < n; i++ {
		prefs := make([]int, na)
		for k := range prefs {
			prefs[k] = (i*7+k*3)%5 + 1
		}
		prefs[i%na] = 0
		tbl[i] = prefs
	}
	items := make([]Item, n)
	defaults := make([]int, n)
	for i := 0; i < n; i++ {
		items[i] = Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}}
		defaults[i] = i % na
	}
	run := func(cfg Config) (sizes []int) {
		cfg.PrefBound = 10
		cfg.BatchAcceptHook = func(batch []Proposal) int {
			sizes = append(sizes, len(batch))
			return len(batch)
		}
		ev := func() *StaticEvaluator { return &StaticEvaluator{NumAlts: na, Table: tbl} }
		if _, err := Negotiate(cfg, ev(), ev(), items, defaults, na); err != nil {
			t.Fatal(err)
		}
		return sizes
	}

	sizes := run(Config{Turn: Alternate, Stop: StopNever})
	if len(sizes) != 1 || sizes[0] != n {
		t.Fatalf("Alternate/no-reassign: want one batch of %d, got %v", n, sizes)
	}
	sizes = run(Config{Turn: CoinToss, Stop: StopNever, Rng: rand.New(rand.NewSource(1))})
	for _, s := range sizes {
		if s != 1 {
			t.Fatalf("CoinToss: want single-proposal batches, got %v", sizes)
		}
	}
}

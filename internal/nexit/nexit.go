// Package nexit implements the paper's primary contribution: the Nexit
// negotiation framework (§4), in which two neighboring ISPs disclose only
// coarse, opaque preference classes in [-P, P] and jointly agree on an
// interconnection for every traffic flow they exchange.
//
// The package separates three concerns:
//
//   - Evaluators (evaluator.go) map an ISP's private optimization metric
//     (distance, bandwidth headroom, Fortz–Thorup cost, ...) to opaque
//     preference classes, relative to the default alternative (class 0).
//   - Policies (policies.go) are the five contractually agreed knobs of
//     the round protocol: decide turn, propose, accept, reassign, stop.
//   - The engine (this file) runs the rounds and produces the negotiated
//     assignment plus a full transcript.
//
// The engine is used directly by simulations and, via internal/nexitwire,
// by negotiation agents speaking a TCP protocol (paper §6, Figure 12).
package nexit

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/traffic"
)

// Direction orients a flow between the two ISPs of a pair.
type Direction int

// Flow directions. The pair's ISP A is upstream for AtoB flows and
// downstream for BtoA flows.
const (
	AtoB Direction = iota
	BtoA
)

// String names the direction.
func (d Direction) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// Side identifies one of the two negotiating ISPs.
type Side int

// The two sides of a negotiation.
const (
	SideA Side = iota
	SideB
)

// String names the side.
func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

// Other returns the opposite side.
func (s Side) Other() Side {
	if s == SideA {
		return SideB
	}
	return SideA
}

// Item is one negotiable flow. ID is a dense index in the negotiation
// (distinct from Flow.ID, which indexes the flow within its directional
// workload). Negotiating over flows of both directions at once is
// deliberate: the paper finds that mutual wins require "keeping all the
// traffic on the negotiating table" (§3).
type Item struct {
	ID   int
	Flow traffic.Flow
	Dir  Direction
}

// Items builds the negotiation set from the two directional workloads.
// Either may be nil.
func Items(ab, ba []traffic.Flow) []Item {
	items := make([]Item, 0, len(ab)+len(ba))
	for _, f := range ab {
		items = append(items, Item{ID: len(items), Flow: f, Dir: AtoB})
	}
	for _, f := range ba {
		items = append(items, Item{ID: len(items), Flow: f, Dir: BtoA})
	}
	return items
}

// Config collects the contractually agreed parameters of a negotiation.
type Config struct {
	PrefBound int // P: preferences live in [-P, P]; the paper uses 10

	Turn    TurnPolicy
	Propose ProposePolicy
	Accept  AcceptPolicy
	Stop    StopPolicy
	// ReassignFraction, when positive, triggers preference reassignment
	// after each such fraction of the total traffic size has been
	// negotiated (the paper reassigns every 5% for bandwidth metrics and
	// never for distance metrics).
	ReassignFraction float64

	// Rng drives coin-toss turn decisions and random tie-breaks. Nil
	// selects fully deterministic behavior (lowest index wins ties).
	Rng *rand.Rand

	// AcceptHook, when non-nil, replaces the accept policy: it is asked
	// whether the given side accepts the proposal. The wire protocol
	// uses this to forward accept/veto decisions to the remote agent.
	AcceptHook func(acceptor Side, p Proposal) bool

	// BatchAcceptHook, when non-nil, takes precedence over AcceptHook
	// and receives whole runs of proposals at once: the engine plans the
	// maximal sequence of proposals it would make if every one were
	// accepted (the sequence is deterministic in the current preference
	// state, so it can be computed without committing anything), and the
	// hook returns how many leading proposals the counterpart accepted.
	// A return short of the batch means proposal [n] was vetoed and the
	// tail was never considered; the engine records the veto and
	// replans, exactly as if the proposals had been asked one by one.
	// The wire protocol uses this to collapse per-item accept/commit
	// round trips into one frame exchange per batch; the negotiation
	// outcome (assignment, gains, rounds, transcript, stop reason) is
	// identical to the unbatched run by construction.
	BatchAcceptHook func(batch []Proposal) int

	// ExtraDeficitA and ExtraDeficitB widen the respective side's
	// cumulative-deficit allowance under early termination. They
	// implement the credit mechanism the paper sketches in §3
	// ("compromises can be decoupled in time using credits"): a side
	// that banked a surplus in earlier sessions extends its deficit
	// bound in later ones to repay. See internal/credits.
	ExtraDeficitA, ExtraDeficitB int
}

// DefaultDistanceConfig returns the configuration the paper uses for the
// distance experiments (§5.1): P=10, alternating turns, max-sum
// proposals with local tie-break, always accept, no reassignment, early
// termination.
func DefaultDistanceConfig() Config {
	return Config{
		PrefBound: 10,
		Turn:      Alternate,
		Propose:   MaxSum,
		Accept:    AlwaysAccept,
		Stop:      StopEarly,
	}
}

// DefaultBandwidthConfig returns the §5.2 configuration: as distance,
// plus preference reassignment after each 5% of traffic.
func DefaultBandwidthConfig() Config {
	c := DefaultDistanceConfig()
	c.ReassignFraction = 0.05
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PrefBound <= 0 {
		return fmt.Errorf("nexit: PrefBound must be positive")
	}
	if c.ReassignFraction < 0 || c.ReassignFraction > 1 {
		return fmt.Errorf("nexit: ReassignFraction must be in [0,1]")
	}
	if c.Turn == CoinToss && c.Rng == nil {
		return fmt.Errorf("nexit: CoinToss turn policy requires an Rng")
	}
	return nil
}

// Proposal records one round of the negotiation transcript.
type Proposal struct {
	Round    int
	Proposer Side
	ItemID   int
	Alt      int
	PrefA    int // A's disclosed preference for the chosen alternative
	PrefB    int
	Accepted bool
}

// Result is the outcome of a negotiation.
type Result struct {
	// Assign maps Item.ID to the agreed interconnection. Items left on
	// the table when negotiation stopped keep their default.
	Assign []int
	// GainA and GainB are cumulative disclosed preference gains.
	GainA, GainB int
	// Rounds is the number of proposal rounds executed.
	Rounds int
	// Negotiated counts items agreed through proposals (as opposed to
	// falling back to the default at termination).
	Negotiated int
	// Reverted counts trades undone by the terminal unwind (see below):
	// when negotiation ends with one side in its bounded deficit and no
	// way to recover, its most harmful trades are rolled back to the
	// default until neither side is below zero. With floor-rounded
	// classes this guarantees no real loss for either ISP.
	Reverted int
	// Transcript lists every proposal in order. Nil unless
	// Config.RecordTranscript was set... recorded always (small).
	Transcript []Proposal
	// Stopped describes why negotiation ended.
	Stopped StopReason
}

// StopReason says why the negotiation terminated.
type StopReason int

// Termination causes.
const (
	StopAllNegotiated  StopReason = iota // every item was agreed
	StopNoJointGain                      // best remaining combined gain <= 0
	StopSideCannotGain                   // one side has no positive preference left
	StopCumulativeLoss                   // continuing would push a side's cumulative gain negative
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopAllNegotiated:
		return "all-negotiated"
	case StopNoJointGain:
		return "no-joint-gain"
	case StopSideCannotGain:
		return "side-cannot-gain"
	case StopCumulativeLoss:
		return "cumulative-loss"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Evaluator is one ISP's private view: it maps flow alternatives to
// opaque preference classes and tracks internal state (such as link
// loads) as flows are committed.
type Evaluator interface {
	// Prefs returns, for each item, the preference class of every
	// alternative, relative to the item's default alternative (which
	// must map to class 0). Preferences must lie in [-P, P].
	//
	// Ownership contract: the returned rows may live on evaluator-owned
	// scratch buffers and are only guaranteed valid until the next Prefs
	// (or RawDeltas) call on the same evaluator. Callers that retain
	// preferences across calls must copy them — the engine copies every
	// row via clampPrefsInto before the counterpart evaluator runs.
	Prefs(items []Item, defaults []int) [][]int
	// Commit informs the evaluator that an item was agreed to use alt.
	Commit(item Item, alt int)
}

// Reverter is implemented by stateful evaluators that can undo a Commit
// when the terminal unwind moves an item back to its default
// alternative.
type Reverter interface {
	// Revert undoes a prior Commit of alt and re-commits the item to
	// def.
	Revert(item Item, alt, def int)
}

// negotiation is the engine's mutable state.
type negotiation struct {
	cfg      Config
	items    []Item
	defaults []int
	evalA    Evaluator
	evalB    Evaluator

	prefsA, prefsB [][]int
	remaining      []bool
	vetoed         map[[2]int]bool // (itemID, alt) pairs rejected by veto
	nVetoed        int             // live veto count; skips map lookups when zero
	numAlts        int

	// order holds remaining item IDs sorted by best combined gain,
	// descending; rebuilt after reassignment or veto.
	order []int

	// bestCache memoizes bestAlt per item ID: proposal scans call it
	// O(order) times per round but its inputs (prefs, vetoes) only
	// change on reassignment or veto, so entries survive whole runs of
	// commits. Invalidated per ID on veto, wholesale on refreshPrefs.
	bestCache []bestEntry

	// scanCache memoizes, per item, the gain-independent outcome of the
	// propose scan's inner alternative loop (see scanEntry); zeroPaBuf/
	// zeroKBuf hold each item's sum-zero candidates in segment
	// [id*numAlts, id*numAlts+zeroLen). Invalidated like bestCache.
	scanCache []scanEntry
	zeroPaBuf []int32
	zeroKBuf  []int32

	// Selected-class histograms back maxSelectedPref: selA/selB record
	// each remaining item's class at its currently selected (bestAlt)
	// alternative, histA/histB count them per class (index p+PrefBound),
	// and selCount tracks how many items are in. Maintained across
	// commits so the per-round stop check is O(P) instead of O(items).
	selA, selB   []int
	selIn        []bool
	histA, histB []int32
	selCount     int
	// orderSums is rebuildOrder's per-ID sort-key scratch.
	orderSums []int
	// remScratch and defScratch are refreshPrefs' working sets.
	remScratch []Item
	defScratch []int

	// commits records accepted trades with their historical classes for
	// the terminal unwind.
	commits []commitRecord

	result *Result

	totalSize      float64
	negotiatedSize float64
	sinceReassign  float64
	lastTurn       Side
	haveTurn       bool
}

// bestEntry caches one bestAlt result.
type bestEntry struct {
	alt, sum int
	ok       bool
}

// scanEntry caches the gain-independent part of one item's inner loop in
// scanMaxSum. The admissible alternatives split into:
//
//   - the strict set — the default alternative plus every k with
//     combined sum > 0. Its best (sum, own-pref) under the scan's
//     selection rule depends only on prefs and vetoes, never on the
//     cumulative gains, so it is cached per proposer side (the own-pref
//     tie-break differs between sides).
//   - the zero set — non-default alternatives with combined sum == 0.
//     Their admissibility DOES depend on the gains (both cumulative
//     gains must stay non-negative), but with prefA + prefB == 0 the
//     condition collapses to -GainA <= prefA <= GainB, so the scan
//     evaluates the cached (prefA, k) list against the current gains in
//     O(list) with no prefs-table loads.
//
// The deficit-recovery scan (propose's filtered pass when one side's
// cumulative gain is negative) gets its own cached strict sets dA/dB:
// the best strict candidate restricted to alternatives the deficit side
// strictly gains on (prefsA[k] > 0 for dA, prefsB[k] > 0 for dB). The
// zero list is shared — when the deficit side's gain is negative, the
// sum-zero admission window -GainA <= prefA <= GainB already implies the
// deficit side's preference is positive, so no filtered copy is needed.
//
// Entries are exact only in the regimes scanFastEligible (or the
// deficit-scan eligibility in scanMaxSumDeficit) admits; any other state
// falls back to the reference loop.
type scanEntry struct {
	ok       bool
	strictOK bool
	strictS  int
	ownA     int
	ownB     int
	kA, kB   int32
	zeroLen  int32

	dAOK, dBOK     bool
	dAS, dBS       int
	dAOwnA, dAOwnB int
	dBOwnA, dBOwnB int
	dAKA, dAKB     int32
	dBKA, dBKB     int32
}

// buildScanEntry fills the cache entry for one item from the current
// preference tables and veto set.
func (n *negotiation) buildScanEntry(id int) *scanEntry {
	e := &n.scanCache[id]
	def := n.defaults[id]
	pa, pb := n.prefsA[id], n.prefsB[id]
	e.strictOK, e.dAOK, e.dBOK = false, false, false
	e.strictS, e.dAS, e.dBS = -1<<30, -1<<30, -1<<30
	zo := id * n.numAlts
	zl := 0
	for k := 0; k < n.numAlts; k++ {
		if n.nVetoed > 0 && n.vetoed[[2]int{id, k}] {
			continue
		}
		s := pa[k] + pb[k]
		switch {
		case k == def || s > 0:
			if !e.strictOK || s > e.strictS {
				e.strictOK = true
				e.strictS = s
				e.ownA, e.kA = pa[k], int32(k)
				e.ownB, e.kB = pb[k], int32(k)
			} else if s == e.strictS {
				// Ascending k with strictly-greater updates keeps the
				// first alternative attaining the per-side maximum —
				// the reference loop's tie-break.
				if pa[k] > e.ownA {
					e.ownA, e.kA = pa[k], int32(k)
				}
				if pb[k] > e.ownB {
					e.ownB, e.kB = pb[k], int32(k)
				}
			}
			if pa[k] > 0 {
				if !e.dAOK || s > e.dAS {
					e.dAOK = true
					e.dAS = s
					e.dAOwnA, e.dAKA = pa[k], int32(k)
					e.dAOwnB, e.dAKB = pb[k], int32(k)
				} else if s == e.dAS {
					if pa[k] > e.dAOwnA {
						e.dAOwnA, e.dAKA = pa[k], int32(k)
					}
					if pb[k] > e.dAOwnB {
						e.dAOwnB, e.dAKB = pb[k], int32(k)
					}
				}
			}
			if pb[k] > 0 {
				if !e.dBOK || s > e.dBS {
					e.dBOK = true
					e.dBS = s
					e.dBOwnA, e.dBKA = pa[k], int32(k)
					e.dBOwnB, e.dBKB = pb[k], int32(k)
				} else if s == e.dBS {
					if pa[k] > e.dBOwnA {
						e.dBOwnA, e.dBKA = pa[k], int32(k)
					}
					if pb[k] > e.dBOwnB {
						e.dBOwnB, e.dBKB = pb[k], int32(k)
					}
				}
			}
		case s == 0:
			n.zeroPaBuf[zo+zl] = int32(pa[k])
			n.zeroKBuf[zo+zl] = int32(k)
			zl++
		}
	}
	e.zeroLen = int32(zl)
	e.ok = true
	return e
}

// Negotiate runs the protocol and returns the result. numAlts is the
// number of interconnections (alternatives per item); defaults[i] is the
// default alternative of items[i] (what the flow uses absent agreement).
func Negotiate(cfg Config, evalA, evalB Evaluator, items []Item, defaults []int, numAlts int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(items) != len(defaults) {
		return nil, fmt.Errorf("nexit: %d items but %d defaults", len(items), len(defaults))
	}
	if numAlts <= 0 {
		return nil, fmt.Errorf("nexit: numAlts must be positive")
	}
	for i, it := range items {
		if it.ID != i {
			return nil, fmt.Errorf("nexit: item %d has ID %d; IDs must be dense", i, it.ID)
		}
		if defaults[i] < 0 || defaults[i] >= numAlts {
			return nil, fmt.Errorf("nexit: item %d default %d out of range", i, defaults[i])
		}
	}

	n := &negotiation{
		cfg:      cfg,
		items:    items,
		defaults: defaults,
		evalA:    evalA,
		evalB:    evalB,
		numAlts:  numAlts,
		vetoed:   make(map[[2]int]bool),
		result:   &Result{Assign: append([]int(nil), defaults...)},
	}
	n.remaining = make([]bool, len(items))
	for i := range n.remaining {
		n.remaining[i] = true
	}
	n.bestCache = make([]bestEntry, len(items))
	n.scanCache = make([]scanEntry, len(items))
	n.zeroPaBuf = make([]int32, len(items)*numAlts)
	n.zeroKBuf = make([]int32, len(items)*numAlts)
	n.selA = make([]int, len(items))
	n.selB = make([]int, len(items))
	n.selIn = make([]bool, len(items))
	n.histA = make([]int32, 2*cfg.PrefBound+1)
	n.histB = make([]int32, 2*cfg.PrefBound+1)
	for _, it := range items {
		n.totalSize += it.Flow.Size
	}
	n.refreshPrefs()
	if cfg.BatchAcceptHook != nil {
		n.runBatched()
	} else {
		n.run()
	}
	n.unwindDeficits()
	return n.result, nil
}

// commitRecord pairs a committed item with the classes it was accepted
// at (preferences may be reassigned later, so gains must be reverted at
// their historical values).
type commitRecord struct {
	id, alt  int
	pA, pB   int
	reverted bool
}

// unwindDeficits rolls back trades at termination while either side's
// cumulative gain is negative: the deficit side's most harmful committed
// trade (ties: cheapest for the other side) reverts to the default. Each
// record reverts at most once, so the loop terminates; afterwards both
// gains are >= 0 because a negative cumulative gain always contains a
// negative-class trade. Combined with floor-rounded classes (every class
// is a lower bound on the real improvement), non-negative final class
// gains imply neither ISP's real metric ends worse than the default.
func (n *negotiation) unwindDeficits() {
	if n.cfg.Stop == StopNever {
		return // all-flows mode trades social welfare deliberately
	}
	for {
		var deficit *int
		sideA := false
		switch {
		case n.result.GainA < -n.cfg.ExtraDeficitA:
			deficit, sideA = &n.result.GainA, true
		case n.result.GainB < -n.cfg.ExtraDeficitB:
			deficit, sideA = &n.result.GainB, false
		default:
			return
		}
		_ = deficit
		best := -1
		for i, rec := range n.commits {
			if rec.reverted || n.result.Assign[rec.id] != rec.alt || rec.alt == n.defaults[rec.id] {
				continue
			}
			own, other := rec.pA, rec.pB
			if !sideA {
				own, other = rec.pB, rec.pA
			}
			if own >= 0 {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			bOwn, bOther := n.commits[best].pA, n.commits[best].pB
			if !sideA {
				bOwn, bOther = n.commits[best].pB, n.commits[best].pA
			}
			if own < bOwn || (own == bOwn && other < bOther) {
				best = i
			}
		}
		if best == -1 {
			return // no revertible harmful trade (cannot happen with gains < 0 over non-reverted trades)
		}
		rec := &n.commits[best]
		rec.reverted = true
		n.result.Assign[rec.id] = n.defaults[rec.id]
		n.result.GainA -= rec.pA
		n.result.GainB -= rec.pB
		n.result.Reverted++
		it := n.items[rec.id]
		if r, ok := n.evalA.(Reverter); ok {
			r.Revert(it, rec.alt, n.defaults[rec.id])
		}
		if r, ok := n.evalB.(Reverter); ok {
			r.Revert(it, rec.alt, n.defaults[rec.id])
		}
	}
}

// refreshPrefs (re)collects preference lists from both evaluators for
// the remaining items and rebuilds the selection order.
func (n *negotiation) refreshPrefs() {
	rem := n.remScratch[:0]
	for _, it := range n.items {
		if n.remaining[it.ID] {
			rem = append(rem, it)
		}
	}
	defaults := n.defScratch[:0]
	for _, it := range rem {
		defaults = append(defaults, n.defaults[it.ID])
	}
	n.remScratch, n.defScratch = rem, defaults
	if n.prefsA == nil {
		n.prefsA = make([][]int, len(n.items))
		n.prefsB = make([][]int, len(n.items))
	}
	// Clamp each side's rows into negotiation-owned storage before the
	// counterpart evaluator runs: evaluators hand out views of reusable
	// scratch (see the Evaluator ownership contract), so the returned
	// slices are never adopted directly and never read after another
	// Prefs call that might share their backing.
	pa := n.evalA.Prefs(rem, defaults)
	for i, it := range rem {
		n.prefsA[it.ID] = clampPrefsInto(n.prefsA[it.ID], pa[i], n.cfg.PrefBound)
	}
	pb := n.evalB.Prefs(rem, defaults)
	for i, it := range rem {
		n.prefsB[it.ID] = clampPrefsInto(n.prefsB[it.ID], pb[i], n.cfg.PrefBound)
	}
	for i := range n.bestCache {
		n.bestCache[i].ok = false
		n.scanCache[i].ok = false
	}
	n.selRebuild()
	n.rebuildOrder()
}

// selRebuild repopulates the selected-class histograms for the remaining
// items from scratch (after a wholesale preference refresh).
func (n *negotiation) selRebuild() {
	for i := range n.histA {
		n.histA[i] = 0
		n.histB[i] = 0
	}
	for i := range n.selIn {
		n.selIn[i] = false
	}
	n.selCount = 0
	for id := range n.items {
		if n.remaining[id] {
			n.selAdd(id)
		}
	}
}

// selAdd counts item id into the selected-class histograms at its
// current bestAlt classes.
func (n *negotiation) selAdd(id int) {
	alt, _ := n.bestAlt(id)
	a, b := n.prefsA[id][alt], n.prefsB[id][alt]
	n.selA[id], n.selB[id] = a, b
	n.histA[a+n.cfg.PrefBound]++
	n.histB[b+n.cfg.PrefBound]++
	n.selIn[id] = true
	n.selCount++
}

// selRemove removes item id from the histograms (no-op if absent).
func (n *negotiation) selRemove(id int) {
	if !n.selIn[id] {
		return
	}
	n.histA[n.selA[id]+n.cfg.PrefBound]--
	n.histB[n.selB[id]+n.cfg.PrefBound]--
	n.selIn[id] = false
	n.selCount--
}

func clampPrefsInto(dst, p []int, bound int) []int {
	if cap(dst) < len(p) {
		dst = make([]int, len(p))
	}
	dst = dst[:len(p)]
	for i, v := range p {
		if v > bound {
			v = bound
		}
		if v < -bound {
			v = -bound
		}
		dst[i] = v
	}
	return dst
}

// bestAlt returns the best non-vetoed alternative of an item under the
// max-sum criterion and its combined gain.
func (n *negotiation) bestAlt(id int) (alt, sum int) {
	if e := n.bestCache[id]; e.ok {
		return e.alt, e.sum
	}
	alt, sum = n.defaults[id], 0
	bestSum := -1 << 30
	for k := 0; k < n.numAlts; k++ {
		if n.nVetoed > 0 && n.vetoed[[2]int{id, k}] {
			continue
		}
		s := n.prefsA[id][k] + n.prefsB[id][k]
		if s > bestSum {
			bestSum, alt = s, k
		}
	}
	n.bestCache[id] = bestEntry{alt: alt, sum: bestSum, ok: true}
	return alt, bestSum
}

// rebuildOrder sorts remaining item IDs by best combined gain descending
// (ties by ID for determinism).
func (n *negotiation) rebuildOrder() {
	n.order = n.order[:0]
	for id := range n.items {
		if n.remaining[id] {
			n.order = append(n.order, id)
		}
	}
	if n.orderSums == nil {
		n.orderSums = make([]int, len(n.items))
	}
	for _, id := range n.order {
		_, s := n.bestAlt(id)
		n.orderSums[id] = s
	}
	sort.SliceStable(n.order, func(i, j int) bool {
		if n.orderSums[n.order[i]] != n.orderSums[n.order[j]] {
			return n.orderSums[n.order[i]] > n.orderSums[n.order[j]]
		}
		return n.order[i] < n.order[j]
	})
}

// run executes rounds until a stop condition fires or everything is
// negotiated.
func (n *negotiation) run() {
	for {
		n.compactOrder()
		if len(n.order) == 0 {
			n.result.Stopped = StopAllNegotiated
			return
		}
		proposer := n.decideTurn()
		id, alt, ok := n.propose(proposer)
		if !ok {
			// The proposer has nothing it can afford to propose; give
			// the other side one chance before concluding.
			proposer = proposer.Other()
			n.lastTurn = proposer
			id, alt, ok = n.propose(proposer)
		}
		if !ok {
			// No proposable alternative left on either side.
			n.result.Stopped = StopNoJointGain
			return
		}
		if reason, stop := n.shouldStop(id, alt); stop {
			n.result.Stopped = reason
			return
		}
		pA, pB := n.prefsA[id][alt], n.prefsB[id][alt]
		accepted := n.accept(proposer.Other(), id, alt)
		n.result.Transcript = append(n.result.Transcript, Proposal{
			Round: n.result.Rounds, Proposer: proposer, ItemID: id, Alt: alt,
			PrefA: pA, PrefB: pB, Accepted: accepted,
		})
		n.result.Rounds++
		if !accepted {
			// Veto: exclude this (item, alt) pair and re-evaluate.
			n.veto(id, alt)
			continue
		}
		n.commit(id, alt, pA, pB)
	}
}

// veto excludes an (item, alt) pair and re-evaluates the order.
func (n *negotiation) veto(id, alt int) {
	n.vetoed[[2]int{id, alt}] = true
	n.nVetoed++
	n.selRemove(id)
	n.bestCache[id].ok = false
	n.scanCache[id].ok = false
	n.selAdd(id) // re-count at the post-veto selected alternative
	n.rebuildOrder()
}

// engineSnap captures the engine state planBatch mutates while
// simulating rounds, so runBatched can restore it before applying the
// counterpart's decisions for real.
type engineSnap struct {
	gainA, gainB, rounds          int
	negotiatedSize, sinceReassign float64
	lastTurn                      Side
	haveTurn                      bool
}

func (n *negotiation) snapshot() engineSnap {
	return engineSnap{
		gainA: n.result.GainA, gainB: n.result.GainB, rounds: n.result.Rounds,
		negotiatedSize: n.negotiatedSize, sinceReassign: n.sinceReassign,
		lastTurn: n.lastTurn, haveTurn: n.haveTurn,
	}
}

func (n *negotiation) restore(s engineSnap, committed, orderSnap []int) {
	n.result.GainA, n.result.GainB, n.result.Rounds = s.gainA, s.gainB, s.rounds
	n.negotiatedSize, n.sinceReassign = s.negotiatedSize, s.sinceReassign
	n.lastTurn, n.haveTurn = s.lastTurn, s.haveTurn
	for _, id := range committed {
		n.remaining[id] = true
		// Prefs, vetoes, and bestAlt are untouched by planning, so
		// re-counting restores the histograms to the pre-plan state.
		n.selAdd(id)
	}
	n.order = append(n.order[:0], orderSnap...)
}

// runBatched is run() when Config.BatchAcceptHook is set: instead of
// asking the counterpart about one proposal per round, the engine plans
// the maximal run of proposals it would make if every one were accepted
// and submits them as a batch. The plan is a faithful simulation of the
// round loop (same decideTurn/propose/shouldStop code over the same
// state), so applying the accepted prefix reproduces the unbatched
// negotiation exactly; a veto truncates the batch at the vetoed
// proposal, which is recorded and replanned around just as in run().
//
// A batch ends early at a reassignment boundary (preferences must be
// recollected before further rounds can be planned) and is capped at
// one proposal under CoinToss turns: planning ahead would draw turn
// decisions from the Rng for proposals a veto may discard, desyncing
// the stream from the serial reference.
func (n *negotiation) runBatched() {
	maxBatch := 0 // unlimited
	if n.cfg.Turn == CoinToss {
		maxBatch = 1
	}
	var (
		batch     []Proposal
		committed []int
		orderSnap []int
	)
	for {
		n.compactOrder()
		if len(n.order) == 0 {
			n.result.Stopped = StopAllNegotiated
			return
		}
		snap := n.snapshot()
		orderSnap = append(orderSnap[:0], n.order...)
		batch, committed = batch[:0], committed[:0]
		reason, stopped := n.planBatch(&batch, &committed, maxBatch)
		n.restore(snap, committed, orderSnap)
		if len(batch) == 0 {
			// The very next round stops; no proposal ever reaches the
			// counterpart.
			n.result.Stopped = reason
			return
		}
		accepted := n.cfg.BatchAcceptHook(batch)
		if accepted > len(batch) {
			accepted = len(batch)
		}
		if accepted < 0 {
			accepted = 0
		}
		for _, p := range batch[:accepted] {
			n.result.Transcript = append(n.result.Transcript, p)
			n.result.Rounds++
			n.lastTurn, n.haveTurn = p.Proposer, true
			n.commit(p.ItemID, p.Alt, p.PrefA, p.PrefB)
		}
		if accepted < len(batch) {
			// Proposal [accepted] was vetoed and the tail discarded.
			p := batch[accepted]
			p.Accepted = false
			n.result.Transcript = append(n.result.Transcript, p)
			n.result.Rounds++
			n.lastTurn, n.haveTurn = p.Proposer, true
			n.veto(p.ItemID, p.Alt)
			continue
		}
		if stopped {
			// Fully accepted and the simulation saw the stop condition
			// fire on the round after the batch; the state after apply
			// equals the simulated state, so the stop holds as derived.
			n.result.Stopped = reason
			return
		}
	}
}

// planBatch simulates rounds assuming every proposal is accepted,
// appending to batch, until a stop condition fires (returned with
// stopped=true), a reassignment boundary is crossed, or maxBatch
// proposals are planned (stopped=false: more rounds may follow once the
// batch is applied). Simulated commits touch only the bookkeeping that
// decideTurn/propose/shouldStop read — gains, rounds, remaining, order,
// traffic counters — never evaluators, assignments, or the transcript;
// committed collects the IDs taken off the table so restore can put
// them back.
func (n *negotiation) planBatch(batch *[]Proposal, committed *[]int, maxBatch int) (StopReason, bool) {
	for {
		n.compactOrder()
		if len(n.order) == 0 {
			return StopAllNegotiated, true
		}
		proposer := n.decideTurn()
		id, alt, ok := n.propose(proposer)
		if !ok {
			proposer = proposer.Other()
			n.lastTurn = proposer
			id, alt, ok = n.propose(proposer)
		}
		if !ok {
			return StopNoJointGain, true
		}
		if reason, stop := n.shouldStop(id, alt); stop {
			return reason, true
		}
		pA, pB := n.prefsA[id][alt], n.prefsB[id][alt]
		*batch = append(*batch, Proposal{
			Round: n.result.Rounds, Proposer: proposer, ItemID: id, Alt: alt,
			PrefA: pA, PrefB: pB, Accepted: true,
		})
		n.result.Rounds++
		n.remaining[id] = false
		n.selRemove(id)
		*committed = append(*committed, id)
		n.result.GainA += pA
		n.result.GainB += pB
		size := n.items[id].Flow.Size
		n.negotiatedSize += size
		n.sinceReassign += size
		if n.cfg.ReassignFraction > 0 && n.totalSize > 0 &&
			n.sinceReassign >= n.cfg.ReassignFraction*n.totalSize {
			// The real commit of this proposal refreshes preferences;
			// nothing past it can be planned from the current tables.
			return 0, false
		}
		if maxBatch > 0 && len(*batch) >= maxBatch {
			return 0, false
		}
	}
}

// compactOrder drops already-negotiated IDs from the head of the order.
func (n *negotiation) compactOrder() {
	live := n.order[:0]
	for _, id := range n.order {
		if n.remaining[id] {
			live = append(live, id)
		}
	}
	n.order = live
}

// maxSelectedPref returns each side's highest preference class over the
// alternatives that WOULD be selected for the remaining items under the
// agreed (max-sum) criterion. This is what an ISP "perceives" about the
// rest of the negotiation: alternatives the criterion will never pick do
// not count as potential gain. With a cheating counterpart this is what
// makes the truthful ISP walk away — its favorable alternatives are
// still on the table but the distorted sums ensure they are never
// selected (paper §5.4: "the negotiation terminates prematurely as the
// truthful ISP stops when it sees no benefit for itself").
// The histograms are maintained incrementally over exactly the items in
// n.order (order is compacted to the remaining set before every caller),
// so the scan is O(P) per round instead of O(remaining items).
func (n *negotiation) maxSelectedPref() (maxA, maxB int) {
	maxA, maxB = n.maxSelectedPrefHist()
	if debugScanChecks {
		wantA, wantB := n.maxSelectedPrefRef()
		if maxA != wantA || maxB != wantB {
			panic(fmt.Sprintf("nexit: maxSelectedPref mismatch: hist (%d,%d) ref (%d,%d)", maxA, maxB, wantA, wantB))
		}
	}
	return maxA, maxB
}

func (n *negotiation) maxSelectedPrefHist() (maxA, maxB int) {
	maxA, maxB = -1<<30, -1<<30
	if n.selCount == 0 {
		return maxA, maxB
	}
	for p := len(n.histA) - 1; p >= 0; p-- {
		if n.histA[p] > 0 {
			maxA = p - n.cfg.PrefBound
			break
		}
	}
	for p := len(n.histB) - 1; p >= 0; p-- {
		if n.histB[p] > 0 {
			maxB = p - n.cfg.PrefBound
			break
		}
	}
	return maxA, maxB
}

// maxSelectedPrefRef is the direct reference implementation, retained
// for the debugScanChecks cross-verification.
func (n *negotiation) maxSelectedPrefRef() (maxA, maxB int) {
	maxA, maxB = -1<<30, -1<<30
	for _, id := range n.order {
		alt, _ := n.bestAlt(id)
		if p := n.prefsA[id][alt]; p > maxA {
			maxA = p
		}
		if p := n.prefsB[id][alt]; p > maxB {
			maxB = p
		}
	}
	return maxA, maxB
}

// shouldStop applies the stop policy to the concrete next proposal
// (id, alt). See policies.go for the semantics.
func (n *negotiation) shouldStop(id, alt int) (StopReason, bool) {
	if n.cfg.Stop == StopNever {
		return 0, false
	}
	pA, pB := n.prefsA[id][alt], n.prefsB[id][alt]
	// If even the best remaining combined gain is strictly negative, no
	// joint gain remains. (Neutral, sum-zero proposals are allowed
	// through: the default alternative always sums to zero, and with
	// reassignment a neutral commitment can unlock later gains — the
	// paper's Figure 3 walkthrough starts with exactly such a proposal.)
	bestSum := pA + pB
	if n.cfg.Propose != MaxSum && len(n.order) > 0 {
		_, bestSum = n.bestAlt(n.order[0])
		for _, cand := range n.order[1:] {
			if _, s := n.bestAlt(cand); s > bestSum {
				bestSum = s
			}
		}
	}
	if bestSum < 0 {
		return StopNoJointGain, true
	}
	switch n.cfg.Stop {
	case StopEarly:
		// "Negotiation stops when one of the ISPs cannot gain more": a
		// side that has no positive preference anywhere left on the
		// table stops rather than absorb a strictly negative proposal.
		// Neutral proposals (class 0) are let through — the paper's
		// Figure 3 walkthrough depends on an indifferent ISP accepting.
		maxA, maxB := n.maxSelectedPref()
		walkA := maxA <= 0 && pA < 0
		if walkA && n.cfg.ExtraDeficitA > 0 {
			// The side is repaying credit banked in earlier sessions
			// (internal/credits): it keeps conceding down to its
			// extended deficit bound instead of stopping at its peak.
			walkA = n.result.GainA+pA < -n.cfg.ExtraDeficitA
		}
		walkB := maxB <= 0 && pB < 0
		if walkB && n.cfg.ExtraDeficitB > 0 {
			walkB = n.result.GainB+pB < -n.cfg.ExtraDeficitB
		}
		if walkA || walkB {
			return StopSideCannotGain, true
		}
	case StopWhilePositive:
		// Full termination: continue while both cumulative gains would
		// stay non-negative after this proposal.
		if n.result.GainA+pA < 0 || n.result.GainB+pB < 0 {
			return StopCumulativeLoss, true
		}
	}
	return 0, false
}

// commit finalizes an accepted proposal.
func (n *negotiation) commit(id, alt, pA, pB int) {
	n.commits = append(n.commits, commitRecord{id: id, alt: alt, pA: pA, pB: pB})
	n.remaining[id] = false
	n.selRemove(id)
	n.result.Assign[id] = alt
	n.result.GainA += pA
	n.result.GainB += pB
	n.result.Negotiated++
	it := n.items[id]
	n.evalA.Commit(it, alt)
	n.evalB.Commit(it, alt)
	n.negotiatedSize += it.Flow.Size
	n.sinceReassign += it.Flow.Size
	if n.cfg.ReassignFraction > 0 && n.totalSize > 0 &&
		n.sinceReassign >= n.cfg.ReassignFraction*n.totalSize {
		n.sinceReassign = 0
		n.refreshPrefs()
	}
}

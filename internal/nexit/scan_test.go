package nexit

import (
	"math/rand"
	"testing"

	"repro/internal/traffic"
)

// TestScanFastMatchesReference drives the engine across randomized
// preference tables and every policy combination with debugScanChecks
// enabled, so every propose scan cross-checks the cached fast path
// against the direct reference loop and every stop check cross-checks
// the histogram against the O(items) scan. Any divergence panics inside
// the engine, failing the test.
//
// The trials deliberately cover the regimes the cache must survive:
// vetoes (via AcceptHook and VetoIfLoss), batched planning with partial
// accepts, preference reassignment, extra deficit allowances, and
// preference tables whose default class is nonzero (the engine clamps
// but does not normalize evaluator output).
func TestScanFastMatchesReference(t *testing.T) {
	debugScanChecks = true
	defer func() { debugScanChecks = false }()

	turns := []TurnPolicy{Alternate, LowerGain, CoinToss}
	proposes := []ProposePolicy{MaxSum, BestLocal}
	accepts := []AcceptPolicy{AlwaysAccept, VetoIfLoss}
	stops := []StopPolicy{StopEarly, StopWhilePositive, StopNever}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		na := 1 + rng.Intn(5)
		n := 1 + rng.Intn(40)
		p := 10
		if trial%3 == 0 {
			p = 3
		}
		mk := func() *StaticEvaluator {
			ev := &StaticEvaluator{NumAlts: na, Table: map[int][]int{}}
			for i := 0; i < n; i++ {
				prefs := make([]int, na)
				for k := range prefs {
					prefs[k] = rng.Intn(2*p+1) - p
				}
				if trial%5 != 0 {
					prefs[i%na] = 0 // honest default; every 5th trial leaves it random
				}
				ev.Table[i] = prefs
			}
			return ev
		}
		items := make([]Item, n)
		defaults := make([]int, n)
		for i := 0; i < n; i++ {
			items[i] = Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1 + rng.Float64()}, Dir: Direction(i % 2)}
			defaults[i] = i % na
		}
		cfg := Config{
			PrefBound: p,
			Turn:      turns[trial%len(turns)],
			Propose:   proposes[(trial/2)%len(proposes)],
			Accept:    accepts[(trial/3)%len(accepts)],
			Stop:      stops[(trial/4)%len(stops)],
			Rng:       rand.New(rand.NewSource(int64(trial))),
		}
		switch trial % 4 {
		case 0:
			cfg.ReassignFraction = 0.25
		case 1:
			cfg.ExtraDeficitA = rng.Intn(2 * p)
			cfg.ExtraDeficitB = rng.Intn(2 * p)
		}
		switch trial % 7 {
		case 2:
			// Deterministic vetoes exercise scanCache invalidation.
			cfg.AcceptHook = func(acceptor Side, pr Proposal) bool {
				return (pr.ItemID+pr.Alt)%3 != 0
			}
		case 3:
			// Random accepted prefixes exercise planBatch's simulated
			// commits and the histogram restore path.
			hookRng := rand.New(rand.NewSource(int64(trial) * 31))
			cfg.BatchAcceptHook = func(batch []Proposal) int {
				return hookRng.Intn(len(batch) + 1)
			}
		}
		res, err := Negotiate(cfg, mk(), mk(), items, defaults, na)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, a := range res.Assign {
			if a < 0 || a >= na {
				t.Fatalf("trial %d: item %d assigned %d (na=%d)", trial, i, a, na)
			}
		}
		if res.Rounds > n*na*6+32 {
			t.Fatalf("trial %d: %d rounds for %d items (runaway)", trial, res.Rounds, n)
		}
	}
}

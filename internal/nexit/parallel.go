package nexit

import (
	"runtime"
	"sync"
)

// parallelEvalThreshold is the minimum number of (item, alternative)
// evaluations before sharding the per-item loop pays for the goroutine
// handoff. Below it the serial loop wins on every machine.
const parallelEvalThreshold = 4096

// maxEvalWorkers bounds the per-pair worker set so one large pair
// cannot monopolize the scheduler when many pairs negotiate at once.
const maxEvalWorkers = 4

// forEachItem runs fn(i) for 0 <= i < n. Rounds are inherently
// sequential but per-item preference evaluation is not, so when the
// work is large enough and more than one CPU is available the loop is
// sharded across a bounded worker set. fn must write only to
// index-disjoint state; the shards then compose to exactly the serial
// result regardless of scheduling.
func forEachItem(n, perItem int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > maxEvalWorkers {
		workers = maxEvalWorkers
	}
	if workers <= 1 || n*perItem < parallelEvalThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(start int) {
			defer wg.Done()
			for i := start; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// makeDeltaRows carves an items x alts delta matrix out of one backing
// allocation.
func makeDeltaRows(items, alts int) [][]float64 {
	rows := make([][]float64, items)
	flat := make([]float64, items*alts)
	for i := range rows {
		rows[i], flat = flat[:alts:alts], flat[alts:]
	}
	return rows
}

// makeIntRows carves a zeroed class matrix matching the shape of deltas
// out of one backing allocation.
func makeIntRows(deltas [][]float64) [][]int {
	total := 0
	for _, ds := range deltas {
		total += len(ds)
	}
	flat := make([]int, total)
	rows := make([][]int, len(deltas))
	for i, ds := range deltas {
		rows[i], flat = flat[:len(ds):len(ds)], flat[len(ds):]
	}
	return rows
}

package nexit

import (
	"runtime"
	"sync"
)

// parallelEvalThreshold is the minimum number of (item, alternative)
// evaluations before sharding the per-item loop pays for the goroutine
// handoff. Below it the serial loop wins on every machine.
const parallelEvalThreshold = 4096

// maxEvalWorkers bounds the per-pair worker set so one large pair
// cannot monopolize the scheduler when many pairs negotiate at once.
const maxEvalWorkers = 4

// forEachItem runs fn(i) for 0 <= i < n. Rounds are inherently
// sequential but per-item preference evaluation is not, so when the
// work is large enough and more than one CPU is available the loop is
// sharded across a bounded worker set. fn must write only to
// index-disjoint state; the shards then compose to exactly the serial
// result regardless of scheduling.
func forEachItem(n, perItem int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > maxEvalWorkers {
		workers = maxEvalWorkers
	}
	if workers <= 1 || n*perItem < parallelEvalThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		// stride is passed, not captured: capturing workers would move it
		// to the heap at function entry, costing the serial fast path an
		// allocation per call.
		go func(start, stride int) {
			defer wg.Done()
			for i := start; i < n; i += stride {
				fn(i)
			}
		}(w, workers)
	}
	wg.Wait()
}

// evalScratch is the per-evaluator buffer set reused across Prefs and
// RawDeltas calls: the delta matrix, the class matrix, and the
// cardinalDenominator sort buffer. Backing arrays grow to the largest
// shape seen and are then reused, so steady-state preference evaluation
// allocates nothing.
//
// Ownership contract: rows handed out by Prefs/RawDeltas point into the
// scratch and stay valid only until the NEXT Prefs or RawDeltas call on
// the same evaluator. Callers that retain preferences across calls must
// copy (the engine does, via clampPrefsInto; the wire responder copies
// into its own per-item buffer).
type evalScratch struct {
	deltaFlat []float64
	deltaRows [][]float64
	intFlat   []int
	intRows_  [][]int
	mags      []float64

	// items/defaults are the per-call view read by the evaluators'
	// construction-time item closures (see e.g. NewDistanceEvaluator):
	// allocating the closure once and passing call state through the
	// scratch keeps steady-state Prefs free of the per-call capture
	// allocation a fresh closure would cost. Set before the item loop,
	// read (never written) by its shards.
	items    []Item
	defaults []int
}

// deltas returns the items x alts delta matrix, zeroed.
func (s *evalScratch) deltas(items, alts int) [][]float64 {
	need := items * alts
	if cap(s.deltaFlat) < need {
		s.deltaFlat = make([]float64, need)
	}
	flat := s.deltaFlat[:need]
	for i := range flat {
		flat[i] = 0
	}
	if cap(s.deltaRows) < items {
		s.deltaRows = make([][]float64, items)
	}
	rows := s.deltaRows[:items]
	for i := range rows {
		rows[i], flat = flat[:alts:alts], flat[alts:]
	}
	return rows
}

// intRows returns a zeroed class matrix matching the shape of deltas.
func (s *evalScratch) intRows(deltas [][]float64) [][]int {
	total := 0
	for _, ds := range deltas {
		total += len(ds)
	}
	if cap(s.intFlat) < total {
		s.intFlat = make([]int, total)
	}
	flat := s.intFlat[:total]
	for i := range flat {
		flat[i] = 0
	}
	if cap(s.intRows_) < len(deltas) {
		s.intRows_ = make([][]int, len(deltas))
	}
	rows := s.intRows_[:len(deltas)]
	for i, ds := range deltas {
		rows[i], flat = flat[:len(ds):len(ds)], flat[len(ds):]
	}
	return rows
}

// makeDeltaRows carves an items x alts delta matrix out of one backing
// allocation.
func makeDeltaRows(items, alts int) [][]float64 {
	rows := make([][]float64, items)
	flat := make([]float64, items*alts)
	for i := range rows {
		rows[i], flat = flat[:alts:alts], flat[alts:]
	}
	return rows
}

// makeIntRows carves a zeroed class matrix matching the shape of deltas
// out of one backing allocation.
func makeIntRows(deltas [][]float64) [][]int {
	total := 0
	for _, ds := range deltas {
		total += len(ds)
	}
	flat := make([]int, total)
	rows := make([][]int, len(deltas))
	for i, ds := range deltas {
		rows[i], flat = flat[:len(ds):len(ds)], flat[len(ds):]
	}
	return rows
}

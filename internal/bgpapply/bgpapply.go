// Package bgpapply implements the paper's §6 integration with ISP
// routing: "once the path has been negotiated, low-level BGP mechanisms
// such as local-prefs are used to implement it."
//
// The downstream ISP announces each of its prefixes over every
// interconnection; the upstream's negotiation agent compiles the agreed
// assignment into per-flow pinning entries (source-destination routing,
// which the paper assumes via MPLS) layered over a standard BGP decision
// process (local-pref, AS-path length, MED, tie-break). The package also
// provides the compliance checking of §6: "ISPs can easily verify
// whether the traffic exchange complies with what was negotiated", with
// detected unilateral deviations triggering a rollback recommendation.
package bgpapply

import (
	"fmt"
	"sort"

	"repro/internal/flowid"
	"repro/internal/nexit"
	"repro/internal/topology"
)

// Route is a BGP-style advertisement for a destination prefix as heard
// over one interconnection.
type Route struct {
	Dst             flowid.Prefix
	Interconnection int   // which interconnection the route was heard on
	ASPath          []int // AS numbers, nearest first (prepending shows up here)
	MED             int   // multi-exit discriminator set by the announcer
	LocalPref       int   // local preference set by the receiver's policy
}

// Announce produces the downstream ISP's advertisements: every PoP
// prefix announced over every interconnection with a plain AS path. MEDs
// are zero; negotiated preferences are expressed by the upstream's
// compiled policy instead (the paper's point is precisely that MEDs
// alone cannot express the agreed pattern).
func Announce(downstream *topology.ISP, plan *flowid.Plan, numInterconnections int) []Route {
	var out []Route
	for pop := range downstream.PoPs {
		for k := 0; k < numInterconnections; k++ {
			out = append(out, Route{
				Dst:             plan.ByPoP[pop],
				Interconnection: k,
				ASPath:          []int{downstream.ASN},
			})
		}
	}
	return out
}

// FlowKey identifies a pinned flow: source and destination prefixes.
type FlowKey struct {
	Src flowid.Prefix
	Dst flowid.Prefix
}

// Config is the compiled routing policy of the upstream ISP.
type Config struct {
	// Pins maps a flow to its agreed interconnection — the MPLS-style
	// source-destination entries that implement the negotiated paths.
	Pins map[FlowKey]int
	// DefaultLocalPref applies to routes not covered by a pin.
	DefaultLocalPref int
}

// Compile turns a negotiated assignment into the upstream's Config.
// items/assign are the negotiation outcome restricted to one direction
// (upstream -> downstream); srcPlan and dstPlan map PoPs to prefixes.
// Only flows moved off their default need pinning — default-routed flows
// follow plain BGP — which keeps the policy small (the paper: ~20% of
// flows need non-default routing).
func Compile(items []nexit.Item, assign, defaults []int, srcPlan, dstPlan *flowid.Plan) (*Config, error) {
	cfg := &Config{Pins: make(map[FlowKey]int), DefaultLocalPref: 100}
	for i, it := range items {
		if it.Dir != nexit.AtoB {
			return nil, fmt.Errorf("bgpapply: item %d flows %v; Compile wants a single direction", i, it.Dir)
		}
		if assign[i] == defaults[i] {
			continue
		}
		if it.Flow.Src >= len(srcPlan.ByPoP) || it.Flow.Dst >= len(dstPlan.ByPoP) {
			return nil, fmt.Errorf("bgpapply: item %d references PoPs outside the prefix plans", i)
		}
		key := FlowKey{Src: srcPlan.ByPoP[it.Flow.Src], Dst: dstPlan.ByPoP[it.Flow.Dst]}
		if prev, ok := cfg.Pins[key]; ok && prev != assign[i] {
			return nil, fmt.Errorf("bgpapply: conflicting pins for %v/%v", key.Src, key.Dst)
		}
		cfg.Pins[key] = assign[i]
	}
	return cfg, nil
}

// Select runs the BGP decision process over candidate routes for one
// destination: highest local-pref, shortest AS path, lowest MED, lowest
// interconnection index (the router-ID tie-break). It returns the
// winning route's interconnection, or -1 when no route is given.
func Select(routes []Route) int {
	best := -1
	for i, r := range routes {
		if best == -1 || better(r, routes[best]) {
			best = i
		}
	}
	if best == -1 {
		return -1
	}
	return routes[best].Interconnection
}

// better reports whether a beats b in the decision process.
func better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.ASPath) != len(b.ASPath) {
		return len(a.ASPath) < len(b.ASPath)
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return a.Interconnection < b.Interconnection
}

// Forward resolves the interconnection a flow takes under the config:
// pinned flows use their pin; everything else runs the BGP decision over
// the routes for the destination prefix with the default early-exit
// preference expressed through defaultChoice (the upstream's IGP-closest
// exit, which hot-potato routing realizes via IGP metric — modeled here
// as a local-pref bump).
func (c *Config) Forward(key FlowKey, routes []Route, defaultChoice int) int {
	if k, ok := c.Pins[key]; ok {
		return k
	}
	candidates := make([]Route, 0, len(routes))
	for _, r := range routes {
		if r.Dst.ContainsPrefix(key.Dst) {
			r.LocalPref = c.DefaultLocalPref
			if r.Interconnection == defaultChoice {
				// Hot-potato: the IGP-closest exit wins among equals.
				r.LocalPref++
			}
			candidates = append(candidates, r)
		}
	}
	return Select(candidates)
}

// Verify checks that forwarding every item under the config reproduces
// the negotiated assignment. It returns the mismatching item IDs (empty
// means the config implements the agreement exactly).
func Verify(cfg *Config, items []nexit.Item, assign, defaults []int, srcPlan, dstPlan *flowid.Plan, routes []Route) []int {
	var bad []int
	for i, it := range items {
		key := FlowKey{Src: srcPlan.ByPoP[it.Flow.Src], Dst: dstPlan.ByPoP[it.Flow.Dst]}
		if got := cfg.Forward(key, routes, defaults[i]); got != assign[i] {
			bad = append(bad, it.ID)
		}
	}
	return bad
}

// Violation describes one flow observed off its agreed interconnection.
type Violation struct {
	ItemID   int
	Agreed   int
	Observed int
}

// CheckCompliance compares observed routing against the agreement and
// returns the violations, implementing §6's "if unilateral changes are
// detected (without a renegotiation request), the ISP can partially or
// fully roll back the compromises made in return".
func CheckCompliance(agreed, observed []int) []Violation {
	var out []Violation
	for i := range agreed {
		if observed[i] != agreed[i] {
			out = append(out, Violation{ItemID: i, Agreed: agreed[i], Observed: observed[i]})
		}
	}
	return out
}

// RollbackPlan selects the compromises to revoke in response to
// violations: the flows where the complying ISP conceded (its own
// preference for the agreed alternative was negative), up to the total
// magnitude of the violations — a proportional response rather than full
// abandonment. ownPrefs[i][k] are the complying ISP's preference classes
// and the returned item IDs should be reverted to their defaults.
func RollbackPlan(violations []Violation, agreed, defaults []int, ownPrefs [][]int) []int {
	if len(violations) == 0 {
		return nil
	}
	type concession struct {
		item int
		cost int // how much the complying ISP gave up (positive)
	}
	var concessions []concession
	for i := range agreed {
		if agreed[i] == defaults[i] {
			continue
		}
		if p := ownPrefs[i][agreed[i]]; p < 0 {
			concessions = append(concessions, concession{item: i, cost: -p})
		}
	}
	sort.Slice(concessions, func(i, j int) bool {
		if concessions[i].cost != concessions[j].cost {
			return concessions[i].cost > concessions[j].cost
		}
		return concessions[i].item < concessions[j].item
	})
	budget := 0
	for _, v := range violations {
		// Each violation justifies revoking concessions of comparable
		// magnitude; use the complying ISP's loss estimate if available.
		cost := 1
		if v.ItemID < len(ownPrefs) && v.Observed < len(ownPrefs[v.ItemID]) {
			if p := ownPrefs[v.ItemID][v.Observed] - ownPrefs[v.ItemID][v.Agreed]; p < 0 {
				cost = -p
			}
		}
		budget += cost
	}
	var out []int
	for _, c := range concessions {
		if budget <= 0 {
			break
		}
		out = append(out, c.item)
		budget -= c.cost
	}
	return out
}

package bgpapply

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/flowid"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func TestSelectDecisionProcess(t *testing.T) {
	cases := []struct {
		name   string
		routes []Route
		want   int
	}{
		{"empty", nil, -1},
		{"local pref wins", []Route{
			{Interconnection: 0, LocalPref: 100, ASPath: []int{1, 2, 3}},
			{Interconnection: 1, LocalPref: 200, ASPath: []int{1, 2, 3, 4, 5}},
		}, 1},
		{"as path breaks tie", []Route{
			{Interconnection: 0, LocalPref: 100, ASPath: []int{1, 2}},
			{Interconnection: 1, LocalPref: 100, ASPath: []int{1}},
		}, 1},
		{"prepending loses", []Route{
			{Interconnection: 0, LocalPref: 100, ASPath: []int{7, 7, 7}},
			{Interconnection: 1, LocalPref: 100, ASPath: []int{7}},
		}, 1},
		{"med breaks tie", []Route{
			{Interconnection: 0, LocalPref: 100, ASPath: []int{1}, MED: 50},
			{Interconnection: 1, LocalPref: 100, ASPath: []int{1}, MED: 10},
		}, 1},
		{"index as final tie-break", []Route{
			{Interconnection: 2, LocalPref: 100, ASPath: []int{1}},
			{Interconnection: 1, LocalPref: 100, ASPath: []int{1}},
		}, 1},
	}
	for _, c := range cases {
		if got := Select(c.routes); got != c.want {
			t.Errorf("%s: Select = %d, want %d", c.name, got, c.want)
		}
	}
}

// universe builds a real negotiated outcome over a generated pair, one
// direction only (A -> B), as Compile expects.
func universe(t *testing.T) (s *pairsim.System, items []nexit.Item, assign, defaults []int, srcPlan, dstPlan *flowid.Plan) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	pair := pairs[0]
	s = pairsim.New(pair, nil)
	w := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	items = nexit.Items(w.Flows, nil)
	defaults = make([]int, len(items))
	for i, it := range items {
		defaults[i] = s.EarlyExit(it.Flow)
	}
	evalA := nexit.NewDistanceEvaluator(s, nexit.SideA, 10)
	evalB := nexit.NewDistanceEvaluator(s, nexit.SideB, 10)
	res, err := nexit.Negotiate(nexit.DefaultDistanceConfig(), evalA, evalB, items, defaults, s.NumAlternatives())
	if err != nil {
		t.Fatal(err)
	}
	assign = res.Assign
	if srcPlan, err = flowid.NewPlan(pair.A); err != nil {
		t.Fatal(err)
	}
	if dstPlan, err = flowid.NewPlan(pair.B); err != nil {
		t.Fatal(err)
	}
	return s, items, assign, defaults, srcPlan, dstPlan
}

func TestCompileAndVerify(t *testing.T) {
	s, items, assign, defaults, srcPlan, dstPlan := universe(t)
	cfg, err := Compile(items, assign, defaults, srcPlan, dstPlan)
	if err != nil {
		t.Fatal(err)
	}
	// Only moved flows get pins.
	moved := 0
	for i := range items {
		if assign[i] != defaults[i] {
			moved++
		}
	}
	if len(cfg.Pins) > moved {
		t.Errorf("config has %d pins for %d moved flows", len(cfg.Pins), moved)
	}
	routes := Announce(s.Pair.B, dstPlan, s.NumAlternatives())
	if want := len(s.Pair.B.PoPs) * s.NumAlternatives(); len(routes) != want {
		t.Fatalf("Announce produced %d routes, want %d", len(routes), want)
	}
	// The compiled config must reproduce the negotiated assignment for
	// every flow.
	if bad := Verify(cfg, items, assign, defaults, srcPlan, dstPlan, routes); len(bad) != 0 {
		t.Errorf("%d flows forward off their negotiated path: %v", len(bad), bad)
	}
}

func TestCompileRejectsMixedDirections(t *testing.T) {
	_, items, assign, defaults, srcPlan, dstPlan := universe(t)
	bad := append([]nexit.Item(nil), items...)
	bad[0].Dir = nexit.BtoA
	if _, err := Compile(bad, assign, defaults, srcPlan, dstPlan); err == nil {
		t.Error("mixed-direction items accepted")
	}
}

func TestForwardUnpinnedUsesEarlyExit(t *testing.T) {
	s, items, _, defaults, srcPlan, dstPlan := universe(t)
	cfg := &Config{Pins: map[FlowKey]int{}, DefaultLocalPref: 100}
	routes := Announce(s.Pair.B, dstPlan, s.NumAlternatives())
	for i, it := range items[:10] {
		key := FlowKey{Src: srcPlan.ByPoP[it.Flow.Src], Dst: dstPlan.ByPoP[it.Flow.Dst]}
		if got := cfg.Forward(key, routes, defaults[i]); got != defaults[i] {
			t.Errorf("flow %d: unpinned forwarding = %d, want early-exit %d", i, got, defaults[i])
		}
	}
}

func TestBaselineSanity(t *testing.T) {
	// The early-exit defaults used above match the baseline package's.
	s, items, _, defaults, _, _ := universe(t)
	flows := make([]traffic.Flow, len(items))
	for i, it := range items {
		flows[i] = it.Flow
	}
	early := baseline.EarlyExit(s, flows)
	for i := range flows {
		if early[flows[i].ID] != defaults[i] {
			t.Fatalf("default mismatch at %d", i)
		}
	}
}

func TestCheckCompliance(t *testing.T) {
	agreed := []int{0, 1, 2, 1}
	observed := []int{0, 2, 2, 0}
	v := CheckCompliance(agreed, observed)
	if len(v) != 2 {
		t.Fatalf("violations = %+v", v)
	}
	if v[0].ItemID != 1 || v[0].Agreed != 1 || v[0].Observed != 2 {
		t.Errorf("violation 0 = %+v", v[0])
	}
	if len(CheckCompliance(agreed, agreed)) != 0 {
		t.Error("compliant routing reported violations")
	}
}

func TestRollbackPlan(t *testing.T) {
	// Items 0,1 are concessions (own pref negative for the agreed alt);
	// item 2 is a win. One violation of magnitude 3 justifies revoking
	// the largest concession first.
	agreed := []int{1, 1, 1}
	defaults := []int{0, 0, 0}
	ownPrefs := [][]int{
		{0, -2}, // concession, cost 2
		{0, -1}, // concession, cost 1
		{0, 5},  // our win
	}
	violations := []Violation{{ItemID: 2, Agreed: 1, Observed: 0}}
	// The violation cost from our perspective: prefs[2][0]-prefs[2][1] =
	// -5 -> cost 5; budget 5 covers both concessions.
	plan := RollbackPlan(violations, agreed, defaults, ownPrefs)
	if len(plan) != 2 || plan[0] != 0 || plan[1] != 1 {
		t.Errorf("RollbackPlan = %v, want [0 1]", plan)
	}
	if RollbackPlan(nil, agreed, defaults, ownPrefs) != nil {
		t.Error("no violations should mean no rollback")
	}
}

func TestRollbackProportional(t *testing.T) {
	agreed := []int{1, 1}
	defaults := []int{0, 0}
	ownPrefs := [][]int{
		{0, -5}, // big concession
		{0, -1}, // small concession
	}
	// A tiny violation (cost 1) revokes only the largest concession.
	violations := []Violation{{ItemID: 1, Agreed: 1, Observed: 1}} // cost defaults to >=1
	plan := RollbackPlan(violations, agreed, defaults, ownPrefs)
	if len(plan) != 1 || plan[0] != 0 {
		t.Errorf("RollbackPlan = %v, want [0]", plan)
	}
}

package mesh

import (
	"net"
	"sync"
)

// pipeListener is an in-memory net.Listener over net.Pipe, so mesh
// tests and benchmarks exercise the full listener/dialer path without
// consuming TCP ports. Dial hands the server half of a fresh pipe to
// Accept.
type pipeListener struct {
	name string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener(name string) *pipeListener {
	return &pipeListener{name: name, ch: make(chan net.Conn), done: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *pipeListener) Addr() net.Addr { return pipeAddr(l.name) }

// Dial opens a connection to the listener.
func (l *pipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		return nil, net.ErrClosed
	}
}

// pipeAddr names a pipe listener.
type pipeAddr string

// Network implements net.Addr.
func (a pipeAddr) Network() string { return "pipe" }

// String implements net.Addr.
func (a pipeAddr) String() string { return string(a) }

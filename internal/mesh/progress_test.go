package mesh

import (
	"encoding/json"
	"testing"
)

// A clean mesh run's rollup must reconcile exactly with the per-agent
// statuses it folds: counter totals are sums, the latency histogram
// accounts for every session from both ends, and the epoch frontier is
// in lockstep at the configured epoch count.
func TestResultProgress(t *testing.T) {
	opt := testOptions()
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := res.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Agents != res.ISPs {
		t.Errorf("rollup covers %d agents, mesh had %d", pr.Agents, res.ISPs)
	}
	if pr.Pairs != len(res.Pairs) {
		t.Errorf("rollup sees %d pairs, mesh ran %d", pr.Pairs, len(res.Pairs))
	}

	// Totals are sums of the snapshots.
	var initiated, served, failed, frames int64
	for _, st := range res.Agents {
		initiated += st.SessionsInitiated
		served += st.SessionsServed
		failed += st.SessionsFailed
		frames += st.Wire.FramesSent
	}
	if pr.SessionsInitiated != initiated || pr.SessionsServed != served || pr.SessionsFailed != failed {
		t.Errorf("session totals diverge: rollup %+v, sums %d/%d/%d", pr, initiated, served, failed)
	}
	if pr.Wire.FramesSent != frames || pr.Wire.FramesSent == 0 {
		t.Errorf("wire frames %d, want nonzero sum %d", pr.Wire.FramesSent, frames)
	}

	// A clean run: every pair completes every epoch, both ends observe
	// each session, nothing is in flight at the end.
	wantSessions := int64(len(res.Pairs) * opt.Epochs)
	if pr.SessionsInitiated != wantSessions || pr.SessionsServed != wantSessions {
		t.Errorf("initiated/served %d/%d, want %d each", pr.SessionsInitiated, pr.SessionsServed, wantSessions)
	}
	if pr.SessionsActive != 0 {
		t.Errorf("%d sessions still active at quiescence", pr.SessionsActive)
	}
	if pr.EpochMin != opt.Epochs || pr.EpochMax != opt.Epochs {
		t.Errorf("epoch frontier [%d,%d], want lockstep at %d", pr.EpochMin, pr.EpochMax, opt.Epochs)
	}
	// The merged histogram saw every session twice: once from the
	// initiator's clock, once from the responder's.
	if pr.Latency.Count != initiated+served {
		t.Errorf("latency count %d != sessions %d", pr.Latency.Count, initiated+served)
	}
	if pr.Wire.HelloUs <= 0 || pr.Wire.ProposeUs <= 0 {
		t.Errorf("phase time missing from rollup: %+v", pr.Wire)
	}

	// The rollup is the watch-mode wire format: it must survive JSON.
	b, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	var back Progress
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Latency.Count != pr.Latency.Count || back.EpochMax != pr.EpochMax {
		t.Errorf("JSON round-trip lost data: %+v -> %+v", pr, back)
	}
}

// A serial run has no agents: the rollup is empty, not an error.
func TestProgressSerialEmpty(t *testing.T) {
	res, err := RunSerial(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := res.Progress()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Agents != 0 || pr.Latency.Count != 0 || pr.Pairs != 0 {
		t.Errorf("serial rollup not empty: %+v", pr)
	}
}

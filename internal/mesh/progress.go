package mesh

import (
	"fmt"

	"repro/internal/agentd"
	"repro/internal/telemetry"
)

// Progress is a mesh-wide rollup of per-agent status snapshots: the
// live answer to "how far along is the mesh, and how healthy is it".
// cmd/nexitplot's watch mode polls agent debug endpoints and folds the
// statuses through AggregateStatuses; batch runs get the same view
// from Result.Progress.
type Progress struct {
	// Agents counts the snapshots folded in.
	Agents int `json:"agents"`
	// Counter sums across all agents. Initiated and Served count the
	// same sessions from the two ends, so on a clean symmetric mesh
	// Initiated == Served.
	SessionsActive    int64 `json:"sessions_active"`
	SessionsInitiated int64 `json:"sessions_initiated"`
	SessionsServed    int64 `json:"sessions_served"`
	SessionsFailed    int64 `json:"sessions_failed"`
	Resyncs           int64 `json:"resyncs"`
	DialRetries       int64 `json:"dial_retries"`
	// Wire sums every agent's cumulative wire traffic.
	Wire agentd.WireStatus `json:"wire"`
	// Pairs counts initiator-side peer entries — each negotiating pair
	// exactly once.
	Pairs int `json:"pairs"`
	// EpochMin and EpochMax bound the epoch frontier over initiator
	// peers: the slowest and fastest pair's completed-epoch count. The
	// mesh is in lockstep when they are equal.
	EpochMin int `json:"epoch_min"`
	EpochMax int `json:"epoch_max"`
	// Latency merges every agent's per-peer session-latency histogram
	// (both sides of every pair share telemetry.DefaultLatencyBuckets,
	// so the snapshots always merge on an un-tampered mesh).
	Latency telemetry.HistogramSnapshot `json:"latency"`
}

// AggregateStatuses folds per-agent snapshots into the mesh-wide view.
// It errors only if latency histograms disagree on bucket bounds —
// impossible for agents built from this package, but watch mode feeds
// it snapshots from remote processes.
func AggregateStatuses(statuses []agentd.Status) (Progress, error) {
	var pr Progress
	pr.Agents = len(statuses)
	for _, st := range statuses {
		pr.SessionsActive += st.SessionsActive
		pr.SessionsInitiated += st.SessionsInitiated
		pr.SessionsServed += st.SessionsServed
		pr.SessionsFailed += st.SessionsFailed
		pr.Resyncs += st.Resyncs
		pr.DialRetries += st.DialRetries
		pr.Wire.FramesSent += st.Wire.FramesSent
		pr.Wire.FramesRecv += st.Wire.FramesRecv
		pr.Wire.BytesSent += st.Wire.BytesSent
		pr.Wire.BytesRecv += st.Wire.BytesRecv
		pr.Wire.HelloUs += st.Wire.HelloUs
		pr.Wire.PrefsUs += st.Wire.PrefsUs
		pr.Wire.ProposeUs += st.Wire.ProposeUs
		pr.Wire.CommitUs += st.Wire.CommitUs
		for _, p := range st.Peers {
			if p.Latency != nil {
				if err := pr.Latency.Merge(*p.Latency); err != nil {
					return Progress{}, fmt.Errorf("agent %s peer %s: %w", st.Name, p.Name, err)
				}
			}
			if !p.Initiator {
				continue
			}
			if pr.Pairs == 0 || p.Epochs < pr.EpochMin {
				pr.EpochMin = p.Epochs
			}
			if p.Epochs > pr.EpochMax {
				pr.EpochMax = p.Epochs
			}
			pr.Pairs++
		}
	}
	return pr, nil
}

// Progress rolls the run's final agent snapshots into the mesh-wide
// view. Serial runs carry no agent statuses, so the rollup is empty.
func (r *Result) Progress() (Progress, error) {
	return AggregateStatuses(r.Agents)
}

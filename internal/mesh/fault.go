package mesh

import (
	"fmt"
	"net"
	"sync/atomic"
)

// FaultPlan injects deterministic failures into a wire run so tests and
// CI can prove the mesh self-heals: after every injected fault the run
// must still converge to the exact serial reference result, pair by
// pair, with zero operator intervention (the epoch-resync handshake,
// DESIGN.md §7). Faults target the mesh's first pair — its initiator's
// connection and its responder agent — which keeps runs reproducible.
//
// Epoch indices are zero-based and epoch 0 is a valid target; set a
// field negative to disable that fault.
type FaultPlan struct {
	// KillConnEpoch kills the first pair's connection mid-session
	// during that epoch: the session fails on both ends, neither
	// controller advances, and the pair must redial and re-run the
	// epoch on a retry.
	KillConnEpoch int
	// RestartEpoch tears the first pair's responder agent down after
	// that epoch completes and rebuilds it from scratch — fresh
	// controllers at epoch 0, new listener — so every pair involving it
	// must epoch-resync to continue.
	RestartEpoch int
}

// faultAttempts bounds how many times a faulted run re-drives one epoch
// before giving up. One retry heals any single injected fault; the
// headroom covers a kill and a restart landing near each other.
const faultAttempts = 4

// dialHolder routes dials to an agent's current listener, so a
// restarted agent (new listener, possibly a new TCP port) is reachable
// through the dial closures its peers captured at wiring time.
type dialHolder struct {
	fn atomic.Value // func() (net.Conn, error)
}

func (h *dialHolder) set(fn func() (net.Conn, error)) { h.fn.Store(fn) }

func (h *dialHolder) dial() (net.Conn, error) {
	return h.fn.Load().(func() (net.Conn, error))()
}

// killSwitch arms a one-shot mid-session connection kill. The first
// write after arming passes (it lets the session's Hello out), the
// second fails and closes the transport — so the kill always lands
// inside an in-flight session, for every table size.
type killSwitch struct {
	armed  atomic.Bool
	writes atomic.Int32
}

func (k *killSwitch) arm() {
	k.writes.Store(0)
	k.armed.Store(true)
}

// wrap instruments a connection with the switch.
func (k *killSwitch) wrap(c net.Conn) net.Conn { return &killConn{Conn: c, k: k} }

type killConn struct {
	net.Conn
	k *killSwitch
}

func (c *killConn) Write(b []byte) (int, error) {
	if c.k.armed.Load() && c.k.writes.Add(1) >= 2 {
		c.k.armed.Store(false)
		c.Conn.Close()
		return 0, fmt.Errorf("mesh: injected connection kill")
	}
	return c.Conn.Write(b)
}

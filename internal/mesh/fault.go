package mesh

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// FaultPlan injects deterministic failures into a wire run so tests and
// CI can prove the mesh self-heals: after every injected fault the run
// must still converge to the exact serial reference result, pair by
// pair, with zero operator intervention (the epoch-resync handshake,
// DESIGN.md §7). Each fault names its target pair by index into the
// mesh's deterministic pair list (the zero value targets the first
// pair, the historical schedule), so seeded schedules can spread faults
// over many pairs while staying reproducible.
//
// Epoch indices are zero-based and epoch 0 is a valid target; set an
// epoch field negative to disable that fault.
type FaultPlan struct {
	// KillConnEpoch kills the KillPair-th pair's connection mid-session
	// during that epoch: the session fails on both ends, neither
	// controller advances, and the pair must redial and re-run the
	// epoch on a retry.
	KillConnEpoch int
	// RestartEpoch tears the RestartPair-th pair's responder agent down
	// after that epoch completes and rebuilds it from scratch — fresh
	// controllers at epoch 0, new listener — so every pair involving it
	// must epoch-resync to continue.
	RestartEpoch int
	// KillPair and RestartPair select the target pairs. Indices are
	// normalized modulo the mesh's pair count, so a seeded plan works
	// for any mesh size.
	KillPair    int
	RestartPair int
}

// faultTarget normalizes a pair index against the mesh's pair count.
func faultTarget(idx, n int) int {
	if n <= 0 {
		return 0
	}
	idx %= n
	if idx < 0 {
		idx += n
	}
	return idx
}

// RandomFaultPlan derives a seeded fault schedule: the connection kill
// lands in a seed-chosen epoch on a seed-chosen pair, and the agent
// restart tears down a seed-chosen pair's responder after an epoch
// early enough that the mesh must keep negotiating through the
// recovery. The plan is deterministic in (seed, epochs) alone — the
// splitmix64 derivation is the runner's — so a failing schedule is
// replayable from its seed.
//
// A single-epoch mesh cannot exercise the restart fault at all: the
// restart fires after an epoch completes, and with epochs <= 1 the
// only candidate is the final one, making the restart a no-op (and a
// wire.Resyncs > 0 expectation unsatisfiable). Use epochs >= 2 for a
// meaningful schedule.
func RandomFaultPlan(seed int64, epochs int) *FaultPlan {
	draw := func(k, n int) int {
		if n <= 0 {
			return 0
		}
		return int(uint64(runner.PairSeed(seed, k)) % uint64(n))
	}
	// Leave at least one epoch after the restart so the restarted agent
	// actually has to resync and serve again.
	restartSpan := epochs - 1
	if restartSpan < 1 {
		restartSpan = 1
	}
	const anyPair = 1 << 20 // normalized modulo the pair count at run time
	return &FaultPlan{
		KillConnEpoch: draw(0, epochs),
		KillPair:      draw(1, anyPair),
		RestartEpoch:  draw(2, restartSpan),
		RestartPair:   draw(3, anyPair),
	}
}

// faultAttempts bounds how many times a faulted run re-drives one epoch
// before giving up. One retry heals any single injected fault; the
// headroom covers a kill and a restart landing near each other.
const faultAttempts = 4

// quiesceWait bounds how long Run waits after the final epoch for
// responder-side session handlers to finish their bookkeeping before
// the per-agent statuses are frozen into the Result.
const quiesceWait = 5 * time.Second

// dialHolder routes dials to an agent's current listener, so a
// restarted agent (new listener, possibly a new TCP port) is reachable
// through the dial closures its peers captured at wiring time.
type dialHolder struct {
	fn atomic.Value // func() (net.Conn, error)
}

func (h *dialHolder) set(fn func() (net.Conn, error)) { h.fn.Store(fn) }

func (h *dialHolder) dial() (net.Conn, error) {
	return h.fn.Load().(func() (net.Conn, error))()
}

// killSwitch arms a one-shot mid-session connection kill. The first
// write after arming passes (it lets the session's Hello out), the
// second fails and closes the transport — so the kill always lands
// inside an in-flight session, for every table size.
type killSwitch struct {
	armed  atomic.Bool
	writes atomic.Int32
}

func (k *killSwitch) arm() {
	k.writes.Store(0)
	k.armed.Store(true)
}

// wrap instruments a connection with the switch.
func (k *killSwitch) wrap(c net.Conn) net.Conn { return &killConn{Conn: c, k: k} }

type killConn struct {
	net.Conn
	k *killSwitch
}

func (c *killConn) Write(b []byte) (int, error) {
	if c.k.armed.Load() && c.k.writes.Add(1) >= 2 {
		c.k.armed.Store(false)
		c.Conn.Close()
		return 0, fmt.Errorf("mesh: injected connection kill")
	}
	return c.Conn.Write(b)
}

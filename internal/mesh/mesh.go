// Package mesh spins up a whole neighborhood of negotiation daemons in
// one process and drives them to convergence: one internal/agentd Agent
// per ISP, wired into an all-pairs (or topology-filtered) mesh over
// in-memory pipes or loopback TCP, negotiating concurrent epochs of
// drifting traffic. Options.Metric selects the negotiation objective
// mesh-wide (distance, bandwidth, Fortz–Thorup), making the harness a
// multi-workload testbed for the daemon path.
//
// It is the test and benchmark harness for the §6 deployment model,
// and the keeper of its central invariant: Run's concurrent wire
// outcome must match RunSerial's in-process reference pair by pair,
// deterministically, for every concurrency bound and every metric.
// Epoch workloads derive from (seed, pair key, epoch) alone, so
// neither scheduling nor session interleaving can perturb a result.
package mesh

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/agentd"
	"repro/internal/continuous"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/snapshot"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Options configures a mesh run.
type Options struct {
	// NumISPs sizes the generated dataset (default 10).
	NumISPs int
	// Seed roots the dataset and every drift stream (default 1).
	Seed int64
	// P is the preference class bound (default 10).
	P int
	// Metric is the negotiation objective every pair drives (default
	// continuous.MetricDistance). It parameterizes the controllers on
	// both sides and travels in every wire Hello.
	Metric continuous.Metric
	// Epochs is how many renegotiation epochs to run (default 4).
	Epochs int
	// MaxPairs caps the number of neighbor pairs (0 = all eligible).
	MaxPairs int
	// Sessions bounds each agent's concurrent sessions, per direction
	// (0 = GOMAXPROCS). Results are identical for every bound; only
	// wall-clock changes.
	Sessions int
	// Volatility is the per-epoch multiplicative traffic drift
	// (default 0.25).
	Volatility float64
	// Neighbors, when non-nil, restricts the mesh to pairs whose
	// dataset indices it approves (i < j); nil keeps every eligible
	// pair — the paper's all-pairs evaluation.
	Neighbors func(i, j int) bool
	// UseTCP moves the transport from in-memory pipes to loopback TCP.
	UseTCP bool
	// Timeout bounds each wire exchange (nexitwire default when zero).
	Timeout time.Duration
	// Faults, when non-nil, injects deterministic failures (a mid-epoch
	// connection kill, an agent restart) into the wire run; the run
	// retries failed epochs and must still converge to the serial
	// reference through the epoch-resync handshake. Ignored by
	// RunSerial.
	Faults *FaultPlan
	// StateDir, when non-empty, gives every agent a snapshot store under
	// <StateDir>/<agent name> (the daemon's -state-dir): controllers
	// snapshot every SnapshotInterval epochs and a restarted agent
	// resumes from its persisted snapshots, replaying only the tail
	// since the newest one instead of its whole lifetime. Ignored by
	// RunSerial (the reference needs no durability).
	StateDir string
	// SnapshotInterval is the epoch distance between snapshot writes
	// (agentd.DefaultSnapshotInterval when zero; ignored without
	// StateDir).
	SnapshotInterval int
	// Logf, when non-nil, receives agent diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.NumISPs == 0 {
		o.NumISPs = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.P == 0 {
		o.P = 10
	}
	if o.Metric == "" {
		o.Metric = continuous.MetricDistance
	}
	if o.Epochs == 0 {
		o.Epochs = 4
	}
	if o.Volatility == 0 {
		o.Volatility = 0.25
	}
	return o
}

// PairResult is one neighbor pair's trajectory through the run.
type PairResult struct {
	// I and J are the pair's dataset indices (I < J; agent I initiated).
	I, J int
	Pair *topology.Pair
	// Reports holds one epoch report per epoch, in order, as seen by
	// the initiating agent's controller.
	Reports []*continuous.EpochReport
}

// Result is the outcome of a mesh run.
type Result struct {
	// ISPs counts the agents that participated (dataset members with at
	// least one eligible neighbor).
	ISPs int
	// Pairs lists every negotiated pair in dataset order.
	Pairs []PairResult
	// Sessions counts completed wire sessions (pairs x epochs on a
	// clean run); zero for RunSerial. After an agent restart the count
	// omits the torn-down agent's history (its counters restart too).
	Sessions int64
	// Resyncs counts epoch fast-forwards across all agents — how often
	// the epoch-resync handshake healed a pair (zero on a clean run).
	Resyncs int64
	// ReplayedEpochs counts the epochs those fast-forwards actually
	// replayed. With StateDir set, restarts restore snapshots first, so
	// this stays bounded by the snapshot interval per resync instead of
	// growing with the mesh's lifetime.
	ReplayedEpochs int64
	// SnapshotSaves and SnapshotRestores count snapshot activity across
	// all agents (zero without StateDir). Restart counters: like
	// Sessions, the totals omit agents torn down by a fault plan.
	SnapshotSaves    int64
	SnapshotRestores int64
	// Elapsed and SessionsPerSec measure throughput (wire runs only).
	Elapsed        time.Duration
	SessionsPerSec float64
	// Agents snapshots every agent's final status (wire runs only).
	Agents []agentd.Status
}

// meshPair is the internal wiring of one neighbor pair.
type meshPair struct {
	i, j int
	pair *topology.Pair
	wl   agentd.WorkloadFunc
}

// buildPairs generates the dataset and selects the mesh's neighbor
// pairs in deterministic dataset order.
func buildPairs(opt Options) ([]*topology.ISP, []meshPair, error) {
	cfg := gen.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.NumISPs = opt.NumISPs
	isps, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	index := make(map[*topology.ISP]int, len(isps))
	for i, isp := range isps {
		index[isp] = i
	}
	var pairs []meshPair
	for _, p := range topology.AllPairs(isps, 2, true) {
		i, j := index[p.A], index[p.B]
		if opt.Neighbors != nil && !opt.Neighbors(i, j) {
			continue
		}
		if opt.MaxPairs > 0 && len(pairs) >= opt.MaxPairs {
			break
		}
		p := p
		key := agentd.PairKey(i, j, opt.NumISPs)
		pairs = append(pairs, meshPair{
			i: i, j: j, pair: p,
			wl: func(epoch int) (*traffic.Workload, *traffic.Workload) {
				return agentd.EpochWorkloads(p, opt.Seed, key, epoch, opt.Volatility)
			},
		})
	}
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("mesh: no eligible neighbor pairs in a %d-ISP dataset", opt.NumISPs)
	}
	return isps, pairs, nil
}

// Run builds the mesh of daemons, negotiates opt.Epochs concurrent
// epochs, and returns every pair's trajectory plus throughput. With a
// FaultPlan, injected failures are healed by the epoch-resync
// handshake: failed epochs are re-driven (agentd.RunEpoch is idempotent
// per epoch, so only the pairs that actually missed an epoch negotiate
// again) and the outcome must still match the serial reference.
func Run(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	_, pairs, err := buildPairs(opt)
	if err != nil {
		return nil, err
	}
	cache := pairsim.NewTableCache()
	// Load-metric base capacities are per pair, not per controller: both
	// endpoints (and any restarted agent) share one derivation.
	caps := continuous.NewCapacityCache()

	// One agent per participating ISP, each with a listener. Dials are
	// routed through per-agent holders so a restarted agent's fresh
	// listener is reachable via the closures its peers already hold.
	agents := make(map[int]*agentd.Agent)
	listeners := make(map[int]net.Listener)
	holders := make(map[int]*dialHolder)
	nameToIdx := make(map[string]int)
	var kill killSwitch
	// Resolve the fault schedule's target pairs once (indices are seeded
	// and normalized modulo the pair count).
	killPair, restartPair := -1, -1
	if opt.Faults != nil {
		killPair = faultTarget(opt.Faults.KillPair, len(pairs))
		restartPair = faultTarget(opt.Faults.RestartPair, len(pairs))
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
		for _, a := range agents {
			a.Close()
		}
		for _, a := range agents {
			a.Wait()
		}
	}()
	for _, mp := range pairs {
		for _, i := range []int{mp.i, mp.j} {
			if holders[i] == nil {
				nameToIdx[agentd.AgentName(i)] = i
				holders[i] = &dialHolder{}
			}
		}
	}

	serveErr := make(chan error, 2*len(holders))
	// startAgent (re)builds agent i from scratch — fresh controllers
	// for every pair it participates in, a fresh listener — and starts
	// serving. Used once per agent at startup and again by the restart
	// fault; a restarted agent rejoins through the resync handshake.
	startAgent := func(i int) error {
		cfg := agentd.Config{
			Name:        agentd.AgentName(i),
			MaxSessions: opt.Sessions,
			Timeout:     opt.Timeout,
			Logf:        opt.Logf,
		}
		if opt.StateDir != "" {
			// One store per agent, keyed by name, exactly as the daemon's
			// -state-dir flag wires it: a restarted agent reopens the same
			// directory and resumes from its snapshots.
			store, err := snapshot.NewStore(filepath.Join(opt.StateDir, cfg.Name), 0)
			if err != nil {
				return err
			}
			cfg.Snapshots = store
			cfg.SnapshotInterval = opt.SnapshotInterval
		}
		a := agentd.New(cfg)
		for pi, mp := range pairs {
			if mp.i != i && mp.j != i {
				continue
			}
			ctl, err := continuous.NewWithMetricShared(pairsim.New(mp.pair, cache), opt.P, opt.Metric, caps)
			if err != nil {
				return err
			}
			if mp.i == i {
				// The lower-index agent initiates (it is Pair.A, hence
				// protocol side A); the higher-index one serves.
				dial := holders[mp.j].dial
				if pi == killPair {
					target := holders[mp.j]
					dial = func() (net.Conn, error) {
						c, err := target.dial()
						if err != nil {
							return nil, err
						}
						return kill.wrap(c), nil
					}
				}
				err = a.AddPeer(agentd.Peer{
					Name: agentd.AgentName(mp.j), Side: nexit.SideA,
					Ctl: ctl, Workloads: mp.wl, Dial: dial,
				})
			} else {
				err = a.AddPeer(agentd.Peer{
					Name: agentd.AgentName(mp.i), Side: nexit.SideB,
					Ctl: ctl, Workloads: mp.wl,
				})
			}
			if err != nil {
				return err
			}
		}
		var ln net.Listener
		if opt.UseTCP {
			tln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			addr := tln.Addr().String()
			holders[i].set(func() (net.Conn, error) { return net.Dial("tcp", addr) })
			ln = tln
		} else {
			pln := newPipeListener(agentd.AgentName(i))
			holders[i].set(pln.Dial)
			ln = pln
		}
		agents[i], listeners[i] = a, ln
		go func() {
			serveErr <- a.Serve(ln)
		}()
		return nil
	}
	restartAgent := func(i int) error {
		listeners[i].Close()
		agents[i].Close()
		agents[i].Wait()
		return startAgent(i)
	}
	for i := range holders {
		if err := startAgent(i); err != nil {
			return nil, err
		}
	}

	// Negotiate the epochs: all agents in parallel, a barrier per
	// epoch. A clean run drives each epoch exactly once; a faulted run
	// re-drives the agents that failed (bounded attempts) and relies on
	// RunEpoch's idempotency so healed pairs are not renegotiated.
	attempts := 1
	if opt.Faults != nil {
		attempts = faultAttempts
	}
	reports := make(map[[2]int][]*continuous.EpochReport, len(pairs))
	start := time.Now()
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		if f := opt.Faults; f != nil && epoch == f.KillConnEpoch {
			kill.arm()
		}
		pending := make([]int, 0, len(agents))
		for i := range agents {
			pending = append(pending, i)
		}
		var errs []error
		for attempt := 0; attempt < attempts && len(pending) > 0; attempt++ {
			var (
				wg     sync.WaitGroup
				mu     sync.Mutex
				failed []int
			)
			errs = nil
			for _, i := range pending {
				wg.Add(1)
				go func(i int, a *agentd.Agent) {
					defer wg.Done()
					reps, err := a.RunEpoch(context.Background(), epoch)
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						errs = append(errs, fmt.Errorf("agent %s epoch %d: %w", a.Name(), epoch, err))
						failed = append(failed, i)
					}
					for peer, rep := range reps {
						if j, ok := nameToIdx[peer]; ok {
							reports[[2]int{i, j}] = append(reports[[2]int{i, j}], rep)
						}
					}
				}(i, agents[i])
			}
			wg.Wait()
			pending = failed
		}
		// Surface listener failures (a Serve goroutine that returned an
		// error) rather than letting them masquerade as dial timeouts.
		for drained := false; !drained; {
			select {
			case err := <-serveErr:
				if err != nil {
					errs = append(errs, fmt.Errorf("mesh: listener: %w", err))
				}
			default:
				drained = true
			}
		}
		if len(errs) > 0 {
			return nil, errors.Join(errs...)
		}
		if f := opt.Faults; f != nil && epoch == f.RestartEpoch {
			if err := restartAgent(pairs[restartPair].j); err != nil {
				return nil, err
			}
		}
	}
	elapsed := time.Since(start)

	// RunEpoch returns when each initiator holds its session's final
	// frame; the responder's handler can still be an instruction shy of
	// its own bookkeeping (served counter, latency, active gauge). The
	// gauge is decremented last on that path, so waiting for every
	// agent's active count to reach zero freezes statuses only after a
	// clean run reconciles exactly (served == initiated, none active).
	// The wait is bounded and best-effort: a faulted run may legitimately
	// leave a session wedged, and its statuses are diagnostic anyway.
	for deadline := time.Now().Add(quiesceWait); ; {
		active := int64(0)
		for i := range agents {
			active += agents[i].Status().SessionsActive
		}
		if active == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}

	res := &Result{ISPs: len(agents), Elapsed: elapsed}
	for _, mp := range pairs {
		res.Pairs = append(res.Pairs, PairResult{
			I: mp.i, J: mp.j, Pair: mp.pair,
			Reports: reports[[2]int{mp.i, mp.j}],
		})
	}
	indices := make([]int, 0, len(agents))
	for i := range agents {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		st := agents[i].Status()
		res.Sessions += st.SessionsInitiated
		res.Resyncs += st.Resyncs
		res.ReplayedEpochs += st.ReplayedEpochs
		res.SnapshotSaves += st.SnapshotSaves
		res.SnapshotRestores += st.SnapshotRestores
		res.Agents = append(res.Agents, st)
	}
	if elapsed > 0 {
		res.SessionsPerSec = float64(res.Sessions) / elapsed.Seconds()
	}
	return res, nil
}

// RunSerial negotiates the same mesh entirely in-process, one pair at a
// time on one goroutine — the reference a wire run must reproduce.
func RunSerial(opt Options) (*Result, error) {
	opt = opt.withDefaults()
	_, pairs, err := buildPairs(opt)
	if err != nil {
		return nil, err
	}
	cache := pairsim.NewTableCache()
	caps := continuous.NewCapacityCache()
	res := &Result{}
	seen := make(map[int]bool)
	for _, mp := range pairs {
		seen[mp.i], seen[mp.j] = true, true
		ctl, err := continuous.NewWithMetricShared(pairsim.New(mp.pair, cache), opt.P, opt.Metric, caps)
		if err != nil {
			return nil, err
		}
		pr := PairResult{I: mp.i, J: mp.j, Pair: mp.pair}
		for epoch := 0; epoch < opt.Epochs; epoch++ {
			wAB, wBA := mp.wl(epoch)
			rep, err := ctl.Epoch(wAB, wBA)
			if err != nil {
				return nil, fmt.Errorf("mesh: serial pair (%d,%d) epoch %d: %w", mp.i, mp.j, epoch, err)
			}
			pr.Reports = append(pr.Reports, rep)
		}
		res.Pairs = append(res.Pairs, pr)
	}
	res.ISPs = len(seen)
	return res, nil
}

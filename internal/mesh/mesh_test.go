package mesh

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/agentd"
	"repro/internal/continuous"
)

// testOptions is the shared mesh configuration: a 10-ISP dataset yields
// 12 eligible pairs across 9 agents — above the issue's N>=6 floor —
// and 4 epochs take the registry from cold start into steady-state
// renegotiation.
func testOptions() Options {
	return Options{
		NumISPs: 10,
		Seed:    1,
		Epochs:  4,
		Timeout: 20 * time.Second,
	}
}

// checkParity requires the wire mesh to reproduce the serial reference
// pair by pair, epoch by epoch — assignments, gains, distances, ledger.
func checkParity(t *testing.T, serial, wire *Result) {
	t.Helper()
	if len(wire.Pairs) != len(serial.Pairs) {
		t.Fatalf("wire mesh ran %d pairs, serial ran %d", len(wire.Pairs), len(serial.Pairs))
	}
	for k, sp := range serial.Pairs {
		wp := wire.Pairs[k]
		if wp.I != sp.I || wp.J != sp.J {
			t.Fatalf("pair %d is (%d,%d) on the wire, (%d,%d) serially", k, wp.I, wp.J, sp.I, sp.J)
		}
		if len(wp.Reports) != len(sp.Reports) {
			t.Fatalf("pair (%d,%d): %d wire epochs, %d serial", wp.I, wp.J, len(wp.Reports), len(sp.Reports))
		}
		for e := range sp.Reports {
			if !reflect.DeepEqual(wp.Reports[e], sp.Reports[e]) {
				t.Errorf("pair (%d,%d) epoch %d diverged:\n  wire   %+v\n  serial %+v",
					wp.I, wp.J, e, wp.Reports[e], sp.Reports[e])
			}
		}
	}
}

// TestMeshMatchesSerial is the acceptance test, run as a parity
// matrix: for every supported metric, a >=6-agent mesh with concurrent
// sessions produces, for every pair, the identical assignments and
// gains as the serial in-process negotiation for the same seed — at
// every session bound.
func TestMeshMatchesSerial(t *testing.T) {
	for _, metric := range continuous.Metrics() {
		t.Run(string(metric), func(t *testing.T) {
			opt := testOptions()
			opt.Metric = metric
			serial, err := RunSerial(opt)
			if err != nil {
				t.Fatal(err)
			}
			if serial.ISPs < 6 {
				t.Fatalf("mesh has %d agents, want >= 6", serial.ISPs)
			}

			// The steady state must negotiate for real: some pair
			// reaches the table, so the metric's wire path (prefs,
			// commits, reassignment for load metrics) is exercised.
			negotiated := false
			for _, p := range serial.Pairs {
				last := p.Reports[len(p.Reports)-1]
				if last.Negotiated > 0 && last.Assign != nil {
					negotiated = true
				}
			}
			if !negotiated {
				t.Fatal("no pair ever negotiated; the mesh exercises nothing")
			}

			bounds := []int{1, runtime.GOMAXPROCS(0)}
			for _, sessions := range bounds {
				opt := opt
				opt.Sessions = sessions
				wire, err := Run(opt)
				if err != nil {
					t.Fatalf("sessions=%d: %v", sessions, err)
				}
				if wire.ISPs != serial.ISPs {
					t.Errorf("sessions=%d: %d agents, serial had %d", sessions, wire.ISPs, serial.ISPs)
				}
				wantSessions := int64(len(serial.Pairs) * opt.Epochs)
				if wire.Sessions != wantSessions {
					t.Errorf("sessions=%d: completed %d wire sessions, want %d", sessions, wire.Sessions, wantSessions)
				}
				if wire.Resyncs != 0 {
					t.Errorf("sessions=%d: clean run resynced %d times", sessions, wire.Resyncs)
				}
				for _, st := range wire.Agents {
					if st.SessionsFailed != 0 {
						t.Errorf("sessions=%d: agent %s failed %d sessions", sessions, st.Name, st.SessionsFailed)
					}
					for _, peer := range st.Peers {
						if peer.Metric != string(metric) {
							t.Errorf("agent %s peer %s reports metric %q, want %q", st.Name, peer.Name, peer.Metric, metric)
						}
					}
				}
				checkParity(t, serial, wire)

				// The same mesh under injected faults — a connection
				// killed mid-session, an agent restarted cold — must
				// still converge to the identical serial reference: the
				// post-recovery outcome is exact, not merely plausible.
				fopt := opt
				fopt.Faults = &FaultPlan{KillConnEpoch: 1, RestartEpoch: 2}
				faulted, err := Run(fopt)
				if err != nil {
					t.Fatalf("sessions=%d faulted: %v", sessions, err)
				}
				checkParity(t, serial, faulted)
				if faulted.Resyncs == 0 {
					t.Errorf("sessions=%d: faulted run healed without a single resync — the faults were not injected", sessions)
				}
				var failures int64
				for _, st := range faulted.Agents {
					failures += st.SessionsFailed
				}
				if failures == 0 {
					t.Errorf("sessions=%d: faulted run recorded no session failures", sessions)
				}
			}
		})
	}
}

// TestMeshRecovery is the CI smoke variant of the fault-injection
// matrix: a reduced mesh with a mid-session connection kill and a cold
// agent restart must converge to the exact serial reference with zero
// operator intervention, and both the failures and the resyncs must be
// visible in the agents' status surface.
func TestMeshRecovery(t *testing.T) {
	opt := testOptions()
	opt.MaxPairs = 4
	serial, err := RunSerial(opt)
	if err != nil {
		t.Fatal(err)
	}
	// The same kill-and-restart schedule twice: once healing by pure
	// epoch-0 replay, once with a state directory so the cold restart
	// resumes from persisted snapshots and replays only the tail.
	for _, mode := range []string{"replay", "snapshots"} {
		t.Run(mode, func(t *testing.T) {
			fopt := opt
			fopt.Faults = &FaultPlan{KillConnEpoch: 1, RestartEpoch: 2}
			if mode == "snapshots" {
				fopt.StateDir = t.TempDir()
				// Interval 2 with the restart after epoch 2 leaves a
				// snapshot at epoch index 2 on disk: recovery restores it
				// and replays exactly the remaining tail, so resyncs stay
				// observable while full replays would be caught below.
				fopt.SnapshotInterval = 2
			}
			wire, err := Run(fopt)
			if err != nil {
				t.Fatal(err)
			}
			checkParity(t, serial, wire)
			if wire.Resyncs == 0 {
				t.Error("recovery left no resync trace in the status surface")
			}
			restarted := agentdStatusByName(wire, wire.Pairs[0].J)
			if restarted == nil {
				t.Fatalf("no status snapshot for the restarted agent %d", wire.Pairs[0].J)
			}
			// The restarted responder's fast-forward is counted against
			// the pair it serves.
			resynced := false
			for _, p := range restarted.Peers {
				if p.Resyncs > 0 {
					resynced = true
				}
			}
			if !resynced {
				t.Errorf("restarted agent shows no per-peer resync: %+v", restarted)
			}
			if mode != "snapshots" {
				return
			}
			if wire.SnapshotSaves == 0 {
				t.Error("no agent ever persisted a snapshot")
			}
			if restarted.SnapshotRestores == 0 {
				t.Errorf("restarted agent never restored a snapshot: %+v", restarted)
			}
			// Tail-only recovery: at the restart (after epoch 2, epoch
			// index 3) a full replay would reconstruct 3 epochs per pair;
			// with the epoch-2 snapshot restored, each resync replays at
			// most interval-1 epochs.
			fullReplay := int64(fopt.Faults.RestartEpoch + 1)
			for _, p := range restarted.Peers {
				if p.Resyncs > 0 && p.ReplayedEpochs >= fullReplay*p.Resyncs {
					t.Errorf("peer %s replayed %d epochs over %d resyncs — a full replay, not tail-only",
						p.Name, p.ReplayedEpochs, p.Resyncs)
				}
				if p.Resyncs > 0 && p.SnapshotRestores == 0 {
					t.Errorf("peer %s resynced without touching its snapshot: %+v", p.Name, p)
				}
			}
		})
	}
}

// TestMeshRecoveryRandomized hardens the recovery matrix with seeded
// fault schedules over many pairs (not just the historical first-pair
// targets): for every seed, the kill and restart land on seed-chosen
// pairs and epochs, and the run must still converge to the exact serial
// reference with the recovery visible in the status surface. A failing
// schedule is replayable from its seed.
func TestMeshRecoveryRandomized(t *testing.T) {
	opt := testOptions()
	serial, err := RunSerial(opt)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{2, 3, 5, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	// Derive every schedule up front (not inside t.Run) so the
	// randomization check below holds even when -run selects a single
	// seed subtest for replay.
	targets := map[[2]int]bool{}
	for _, seed := range seeds {
		plan := RandomFaultPlan(seed, opt.Epochs)
		targets[[2]int{
			faultTarget(plan.KillPair, len(serial.Pairs)),
			faultTarget(plan.RestartPair, len(serial.Pairs)),
		}] = true
	}
	if len(targets) < 2 {
		t.Errorf("every seed targeted the same pairs %v; the schedule is not randomized", targets)
	}
	for _, seed := range seeds {
		seed := seed
		// Every seeded schedule runs twice: pure-replay recovery and
		// snapshot-backed recovery over a state directory. Both must
		// converge to the same serial reference.
		for _, mode := range []string{"replay", "snapshots"} {
			mode := mode
			t.Run(fmt.Sprintf("seed=%d/%s", seed, mode), func(t *testing.T) {
				fopt := opt
				fopt.Faults = RandomFaultPlan(seed, opt.Epochs)
				if mode == "snapshots" {
					fopt.StateDir = t.TempDir()
					fopt.SnapshotInterval = 2
				}
				t.Logf("schedule: kill pair %d epoch %d, restart pair %d after epoch %d",
					faultTarget(fopt.Faults.KillPair, len(serial.Pairs)), fopt.Faults.KillConnEpoch,
					faultTarget(fopt.Faults.RestartPair, len(serial.Pairs)), fopt.Faults.RestartEpoch)
				wire, err := Run(fopt)
				if err != nil {
					t.Fatal(err)
				}
				checkParity(t, serial, wire)
				if mode == "snapshots" {
					// A snapshot restore can land the restarted agent exactly
					// on the driven epoch, eliminating the resync entirely —
					// the recovery trace is then the restore counter.
					if wire.Resyncs == 0 && wire.SnapshotRestores == 0 {
						t.Error("randomized faults healed without a resync or a snapshot restore — nothing was injected")
					}
					if wire.SnapshotSaves == 0 {
						t.Error("state-dir run never persisted a snapshot")
					}
					// A snapshot exists by the time of any restart at epoch
					// >= 1 (interval 2), so recovery must have used one.
					if fopt.Faults.RestartEpoch >= 1 && wire.SnapshotRestores == 0 {
						t.Error("restart past the first snapshot interval never restored one")
					}
				} else if wire.Resyncs == 0 {
					t.Error("randomized faults healed without a single resync — nothing was injected")
				}
			})
		}
	}
}

// agentdStatusByName finds one agent's final status snapshot.
func agentdStatusByName(res *Result, idx int) *agentd.Status {
	for i := range res.Agents {
		if res.Agents[i].Name == agentd.AgentName(idx) {
			return &res.Agents[i]
		}
	}
	return nil
}

// TestMeshOverTCP smoke-tests the loopback-TCP transport on a reduced
// mesh.
func TestMeshOverTCP(t *testing.T) {
	opt := testOptions()
	opt.MaxPairs = 4
	opt.Epochs = 3
	opt.UseTCP = true
	serial, err := RunSerial(opt)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, serial, wire)
}

// TestMeshNeighborGraph restricts the mesh to a sparse neighbor graph
// and checks only approved pairs negotiate.
func TestMeshNeighborGraph(t *testing.T) {
	opt := testOptions()
	opt.Epochs = 2
	opt.Neighbors = func(i, j int) bool { return j-i <= 2 }
	wire, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire.Pairs) == 0 {
		t.Fatal("neighbor graph filtered out every pair")
	}
	for _, p := range wire.Pairs {
		if p.J-p.I > 2 {
			t.Errorf("pair (%d,%d) negotiated despite the neighbor graph", p.I, p.J)
		}
	}
	serial, err := RunSerial(opt)
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, serial, wire)
}

// Package credits implements the credit mechanism the paper sketches as
// future work in §3: "For systems where simultaneous, mutual compromises
// are hard to find, compromises can be decoupled in time using
// 'credits'."
//
// Negotiation is a continuous process between neighbors (§6, "When to
// negotiate?"). Some sessions end lopsided — one ISP collected most of
// the class gain because the flows on the table that day happened to
// favor it. A credit ledger carries the imbalance forward: the side that
// banked the surplus enters the next session with a widened deficit
// allowance (it can afford concessions now), and the side that fell
// behind gets priority to catch up. Over a sequence of sessions the
// cumulative gains converge even when any single session cannot be
// balanced.
package credits

import (
	"fmt"

	"repro/internal/nexit"
)

// Ledger tracks the running imbalance between the two ISPs of a pair.
// A positive balance means ISP A is ahead (A owes concessions to B).
type Ledger struct {
	// Balance is A's cumulative class-gain surplus over B.
	Balance int
	// MaxCredit caps how much imbalance is carried into a session as
	// extra deficit allowance; the cap bounds each side's worst-case
	// exposure exactly like the base deficit bound does.
	MaxCredit int
	// History records settled sessions.
	History []Entry
}

// Entry is one settled session.
type Entry struct {
	Session      int
	GainA, GainB int
	BalanceAfter int
}

// NewLedger returns a ledger capping carried credit at maxCredit class
// units per session.
func NewLedger(maxCredit int) *Ledger {
	if maxCredit < 0 {
		maxCredit = 0
	}
	return &Ledger{MaxCredit: maxCredit}
}

// Apply configures a negotiation session with the current balance: the
// side that is ahead may dip further below its default (repaying), up to
// MaxCredit.
func (l *Ledger) Apply(cfg nexit.Config) nexit.Config {
	credit := l.Balance
	if credit > l.MaxCredit {
		credit = l.MaxCredit
	}
	if credit < -l.MaxCredit {
		credit = -l.MaxCredit
	}
	cfg.ExtraDeficitA, cfg.ExtraDeficitB = 0, 0
	if credit > 0 {
		cfg.ExtraDeficitA = credit // A is ahead: A absorbs more now
	} else if credit < 0 {
		cfg.ExtraDeficitB = -credit
	}
	return cfg
}

// Settle records a session outcome and updates the balance.
func (l *Ledger) Settle(session int, res *nexit.Result) {
	l.Balance += res.GainA - res.GainB
	l.History = append(l.History, Entry{
		Session: session, GainA: res.GainA, GainB: res.GainB, BalanceAfter: l.Balance,
	})
}

// Imbalance returns |cumulative gain difference| across all settled
// sessions.
func (l *Ledger) Imbalance() int {
	if l.Balance < 0 {
		return -l.Balance
	}
	return l.Balance
}

// String summarizes the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("credits: balance %+d over %d sessions (cap %d)",
		l.Balance, len(l.History), l.MaxCredit)
}

// RunSessions negotiates a sequence of sessions, applying the ledger
// before each and settling it after. Each element of universes supplies
// one session's items and defaults; evaluators are built fresh per
// session by the callbacks (stateful metrics must not leak across
// sessions unless the caller wants them to).
func RunSessions(base nexit.Config, ledger *Ledger, universes []Universe) ([]*nexit.Result, error) {
	var out []*nexit.Result
	for i, u := range universes {
		cfg := ledger.Apply(base)
		res, err := nexit.Negotiate(cfg, u.EvalA(), u.EvalB(), u.Items, u.Defaults, u.NumAlts)
		if err != nil {
			return nil, fmt.Errorf("credits: session %d: %w", i, err)
		}
		ledger.Settle(i, res)
		out = append(out, res)
	}
	return out, nil
}

// Universe is one session's negotiation setup.
type Universe struct {
	Items    []nexit.Item
	Defaults []int
	NumAlts  int
	EvalA    func() nexit.Evaluator
	EvalB    func() nexit.Evaluator
}

package credits_test

import (
	"fmt"

	"repro/internal/credits"
	"repro/internal/nexit"
)

// Example shows the §3 credit mechanism: a lopsided session leaves a
// balance that widens the leading side's deficit allowance in the next
// session, letting deferred compromises clear.
func Example() {
	ledger := credits.NewLedger(20)

	// Session 1 favored ISP A heavily.
	ledger.Settle(0, &nexit.Result{GainA: 30, GainB: 2})
	fmt.Println("balance after session 1:", ledger.Balance)

	// Session 2's configuration lets A dip further to repay.
	cfg := ledger.Apply(nexit.DefaultDistanceConfig())
	fmt.Println("A's extra deficit allowance:", cfg.ExtraDeficitA)
	fmt.Println("B's extra deficit allowance:", cfg.ExtraDeficitB)
	// Output:
	// balance after session 1: 28
	// A's extra deficit allowance: 20
	// B's extra deficit allowance: 0
}

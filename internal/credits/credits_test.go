package credits

import (
	"testing"

	"repro/internal/nexit"
	"repro/internal/traffic"
)

// staticUniverse builds a session where every flow's non-default
// alternative has the given (prefA, prefB) classes.
func staticUniverse(n int, prefA, prefB int) Universe {
	items := make([]nexit.Item, n)
	defaults := make([]int, n)
	tableA := map[int][]int{}
	tableB := map[int][]int{}
	for i := 0; i < n; i++ {
		items[i] = nexit.Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}}
		tableA[i] = []int{0, prefA}
		tableB[i] = []int{0, prefB}
	}
	return Universe{
		Items: items, Defaults: defaults, NumAlts: 2,
		EvalA: func() nexit.Evaluator { return &nexit.StaticEvaluator{NumAlts: 2, Table: tableA} },
		EvalB: func() nexit.Evaluator { return &nexit.StaticEvaluator{NumAlts: 2, Table: tableB} },
	}
}

func TestLedgerApply(t *testing.T) {
	l := NewLedger(5)
	cfg := nexit.DefaultDistanceConfig()
	// Balanced ledger: no extra deficit.
	c := l.Apply(cfg)
	if c.ExtraDeficitA != 0 || c.ExtraDeficitB != 0 {
		t.Errorf("balanced apply = %d/%d", c.ExtraDeficitA, c.ExtraDeficitB)
	}
	// A ahead by 3: A may dip 3 further.
	l.Balance = 3
	c = l.Apply(cfg)
	if c.ExtraDeficitA != 3 || c.ExtraDeficitB != 0 {
		t.Errorf("A-ahead apply = %d/%d", c.ExtraDeficitA, c.ExtraDeficitB)
	}
	// B ahead by 9, capped at 5.
	l.Balance = -9
	c = l.Apply(cfg)
	if c.ExtraDeficitA != 0 || c.ExtraDeficitB != 5 {
		t.Errorf("B-ahead apply = %d/%d", c.ExtraDeficitA, c.ExtraDeficitB)
	}
}

func TestLedgerSettle(t *testing.T) {
	l := NewLedger(10)
	l.Settle(0, &nexit.Result{GainA: 7, GainB: 2})
	if l.Balance != 5 || l.Imbalance() != 5 {
		t.Errorf("balance = %d", l.Balance)
	}
	l.Settle(1, &nexit.Result{GainA: 1, GainB: 8})
	if l.Balance != -2 || l.Imbalance() != 2 {
		t.Errorf("balance = %d", l.Balance)
	}
	if len(l.History) != 2 || l.History[1].BalanceAfter != -2 {
		t.Errorf("history = %+v", l.History)
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestNegativeCapClamped(t *testing.T) {
	if l := NewLedger(-3); l.MaxCredit != 0 {
		t.Errorf("MaxCredit = %d, want 0", l.MaxCredit)
	}
}

// TestCreditsUnlockDeferredCompromise is the core scenario from the
// paper's §3: session 1 only contains flows that favor A (B concedes a
// little for A's big win — B ends at 0 because of its own protection);
// session 2 only contains flows that favor B, but they cost A more than
// A's base deficit bound allows. Without credits, session 2 cannot
// clear those trades; with the banked surplus from session 1, A's
// widened bound lets B collect.
func TestCreditsUnlockDeferredCompromise(t *testing.T) {
	base := nexit.DefaultDistanceConfig()
	base.PrefBound = 10

	// Session 1: 4 flows, each +9 for A, 0 for B -> A banks 36.
	// Session 2: 4 flows, each -4 for A, +9 for B: each trade is
	// jointly good (+5) but 4 of them dip A to -16, beyond the base
	// bound of -10.
	mkUniverses := func() []Universe {
		return []Universe{
			staticUniverse(4, 9, 0),
			staticUniverse(4, -4, 9),
		}
	}

	// Without credits: A has nothing to gain in session 2, so it walks
	// away before conceding anything (early termination at its peak).
	noCredit := NewLedger(0)
	res, err := RunSessions(base, noCredit, mkUniverses())
	if err != nil {
		t.Fatal(err)
	}
	gainB0 := res[1].GainB

	// With credits: A banked +36 in session 1 (capped at 20), so its
	// session-2 bound is -30 and all 4 trades clear.
	withCredit := NewLedger(20)
	res, err = RunSessions(base, withCredit, mkUniverses())
	if err != nil {
		t.Fatal(err)
	}
	gainB1 := res[1].GainB

	if gainB1 <= gainB0 {
		t.Errorf("credits did not help B catch up: %d <= %d", gainB1, gainB0)
	}
	if gainB1 != 36 { // all 4 trades at +9
		t.Errorf("with credits B gained %d, want 36", gainB1)
	}
	// And the ledger converged toward balance.
	if withCredit.Imbalance() >= noCredit.Imbalance() {
		t.Errorf("imbalance with credits %d >= without %d",
			withCredit.Imbalance(), noCredit.Imbalance())
	}
}

func TestRunSessionsPropagatesErrors(t *testing.T) {
	base := nexit.DefaultDistanceConfig()
	bad := staticUniverse(1, 1, 1)
	bad.NumAlts = 0 // invalid
	if _, err := RunSessions(base, NewLedger(5), []Universe{bad}); err == nil {
		t.Error("invalid universe accepted")
	}
}

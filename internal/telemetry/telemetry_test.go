package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Counter.Add did not panic")
			}
		}()
		c.Add(-1)
	}()
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}; <=2: {1.5}; <=4: {3}; overflow: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", s.Count)
	}
	if s.Sum != 0.5+1+1.5+3+100 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // first bucket
	}
	for i := 0; i < 50; i++ {
		h.Observe(3) // third bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.25); q != 1 {
		t.Fatalf("p25 = %v, want 1", q)
	}
	if q := s.Quantile(0.9); q != 4 {
		t.Fatalf("p90 = %v, want 4", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotMergeAndJSON(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(1.5)

	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 || sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Fatalf("merged = %+v", sa)
	}

	// JSON round trip (the shape that travels in agentd status).
	raw, err := json.Marshal(sa)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != sa.Count || back.Sum != sa.Sum || len(back.Counts) != len(sa.Counts) {
		t.Fatalf("round trip = %+v, want %+v", back, sa)
	}

	// Merging into an empty snapshot adopts the other side.
	var empty HistogramSnapshot
	if err := empty.Merge(sa); err != nil {
		t.Fatal(err)
	}
	if empty.Count != sa.Count {
		t.Fatalf("empty merge count = %d, want %d", empty.Count, sa.Count)
	}

	// Mismatched bounds refuse to merge.
	c := NewHistogram([]float64{1, 3}).Snapshot()
	if err := sa.Merge(c); err == nil {
		t.Fatal("merge across different bounds did not error")
	}
}

func TestRegistryIdempotentAndKinds(t *testing.T) {
	r := NewRegistry(Label{"agent", "isp001"})
	c1 := r.CounterOf("sessions_total", Label{"peer", "isp002"})
	c2 := r.CounterOf("sessions_total", Label{"peer", "isp002"})
	if c1 != c2 {
		t.Fatal("same (name, labels) returned different counters")
	}
	if c3 := r.CounterOf("sessions_total", Label{"peer", "isp003"}); c3 == c1 {
		t.Fatal("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.GaugeOf("sessions_total", Label{"peer", "isp002"})
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(Label{"agent", "isp001"})
	r.CounterOf("agentd_sessions_total").Add(3)
	r.GaugeOf("agentd_sessions_active").Set(1)
	h := r.HistogramOf("agentd_session_seconds", []float64{0.01, 0.1}, Label{"peer", "isp002"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE agentd_sessions_total counter",
		`agentd_sessions_total{agent="isp001"} 3`,
		"# TYPE agentd_sessions_active gauge",
		`agentd_sessions_active{agent="isp001"} 1`,
		"# TYPE agentd_session_seconds histogram",
		`agentd_session_seconds_bucket{agent="isp001",peer="isp002",le="0.01"} 1`,
		`agentd_session_seconds_bucket{agent="isp001",peer="isp002",le="0.1"} 2`,
		`agentd_session_seconds_bucket{agent="isp001",peer="isp002",le="+Inf"} 3`,
		`agentd_session_seconds_sum{agent="isp001",peer="isp002"} 5.055`,
		`agentd_session_seconds_count{agent="isp001",peer="isp002"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.CounterOf("z_total")
	r.CounterOf("a_total")
	r.HistogramOf("m_seconds", nil)
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a_total" || snap[1].Name != "m_seconds" || snap[2].Name != "z_total" {
		t.Fatalf("snapshot order: %+v", snap)
	}
}

// TestConcurrentObserve drives writers against snapshot readers under
// -race: counters must be monotone between successive snapshots and the
// final state must account for every event.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.CounterOf("events_total")
	h := r.HistogramOf("lat_seconds", nil)
	const writers, events = 4, 1000

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // snapshot reader: monotone counters, no torn reads
		defer close(readerDone)
		var lastC, lastH int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := c.Value(); v < lastC {
				t.Errorf("counter went backwards: %d -> %d", lastC, v)
				return
			} else {
				lastC = v
			}
			s := h.Snapshot()
			if s.Count < lastH {
				t.Errorf("histogram count went backwards: %d -> %d", lastH, s.Count)
				return
			}
			lastH = s.Count
			var bucketSum int64
			for _, n := range s.Counts {
				bucketSum += n
			}
			if bucketSum < 0 || bucketSum > writers*events {
				t.Errorf("bucket sum %d out of range", bucketSum)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1000)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-readerDone

	if got := c.Value(); got != writers*events {
		t.Fatalf("counter = %d, want %d", got, writers*events)
	}
	s := h.Snapshot()
	if s.Count != writers*events {
		t.Fatalf("histogram count = %d, want %d", s.Count, writers*events)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d at quiescence", bucketSum, s.Count)
	}
}

// BenchmarkHotPath pins the allocation contract: Counter.Add and
// Histogram.Observe allocate nothing.
func BenchmarkHotPath(b *testing.B) {
	r := NewRegistry(Label{"agent", "bench"})
	c := r.CounterOf("events_total")
	h := r.HistogramOf("lat_seconds", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.003)
	}
	if testing.AllocsPerRun(100, func() { c.Inc(); h.Observe(0.003) }) != 0 {
		b.Fatal("hot path allocates")
	}
}

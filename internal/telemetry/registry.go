package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one key="value" dimension of a metric.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Registry holds named metrics and renders them. Registration (the
// CounterOf/GaugeOf/HistogramOf lookups) takes a lock and may allocate;
// callers hold on to the returned handles and write through them on the
// hot path, where no registry code runs at all.
//
// A (name, labels) pair identifies a metric: registering it twice
// returns the same handle (so a restarted component re-attaches to its
// series instead of panicking), and registering the same name as a
// different kind panics (a programming error worth failing loudly on).
type Registry struct {
	// base labels are appended to every metric of this registry — the
	// identity of the process/agent that owns it.
	base []Label

	mu      sync.Mutex
	entries map[string]*entry
	order   []*entry
}

type entry struct {
	name   string
	labels []Label
	key    string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (e *entry) kind() string {
	switch {
	case e.counter != nil:
		return "counter"
	case e.gauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// NewRegistry builds an empty registry. The base labels are attached to
// every metric it serves (e.g. agent="isp003").
func NewRegistry(base ...Label) *Registry {
	return &Registry{base: base, entries: make(map[string]*entry)}
}

// metricKey renders the canonical identity of (name, labels).
func metricKey(name string, labels []Label) string {
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('\x00')
		sb.WriteString(l.Key)
		sb.WriteByte('\x00')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func (r *Registry) lookup(name string, labels []Label) (*entry, string) {
	all := labels
	if len(r.base) > 0 {
		all = append(append([]Label(nil), r.base...), labels...)
	}
	key := metricKey(name, all)
	if e, ok := r.entries[key]; ok {
		return e, key
	}
	e := &entry{name: name, labels: all, key: key}
	r.entries[key] = e
	r.order = append(r.order, e)
	return e, key
}

// CounterOf returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) CounterOf(name string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _ := r.lookup(name, labels)
	if e.gauge != nil || e.hist != nil {
		panic(fmt.Sprintf("telemetry: %s already registered as a %s", name, e.kind()))
	}
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// GaugeOf returns the gauge registered under (name, labels), creating
// it on first use.
func (r *Registry) GaugeOf(name string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _ := r.lookup(name, labels)
	if e.counter != nil || e.hist != nil {
		panic(fmt.Sprintf("telemetry: %s already registered as a %s", name, e.kind()))
	}
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// HistogramOf returns the histogram registered under (name, labels),
// creating it with the given bounds on first use (nil bounds select
// DefaultLatencyBuckets). Later calls ignore bounds — the first
// registration fixes them, as merging requires.
func (r *Registry) HistogramOf(name string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, _ := r.lookup(name, labels)
	if e.counter != nil || e.gauge != nil {
		panic(fmt.Sprintf("telemetry: %s already registered as a %s", name, e.kind()))
	}
	if e.hist == nil {
		e.hist = NewHistogram(bounds)
	}
	return e.hist
}

// MetricSnapshot is one metric's point-in-time value, JSON-friendly so
// a whole registry snapshot can travel through a status endpoint.
type MetricSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind  string             `json:"kind"`
	Value int64              `json:"value,omitempty"`
	Hist  *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot captures every registered metric, sorted by name then
// labels so output is deterministic.
func (r *Registry) Snapshot() []MetricSnapshot {
	entries := r.sortedEntries()
	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		m := MetricSnapshot{Name: e.name, Labels: e.labels, Kind: e.kind()}
		switch {
		case e.counter != nil:
			m.Value = e.counter.Value()
		case e.gauge != nil:
			m.Value = e.gauge.Value()
		case e.hist != nil:
			s := e.hist.Snapshot()
			m.Hist = &s
		}
		out = append(out, m)
	}
	return out
}

func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	entries := append([]*entry(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].key < entries[j].key
	})
	return entries
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (one # TYPE line per metric name, histogram
// buckets cumulative with an le label, _sum and _count series). The
// output is sorted and deterministic for fixed values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	entries := r.sortedEntries()
	lastType := ""
	for _, e := range entries {
		if e.name != lastType {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind()); err != nil {
				return err
			}
			lastType = e.name
		}
		switch {
		case e.counter != nil:
			if err := writeSample(w, e.name, e.labels, "", strconv.FormatInt(e.counter.Value(), 10)); err != nil {
				return err
			}
		case e.gauge != nil:
			if err := writeSample(w, e.name, e.labels, "", strconv.FormatInt(e.gauge.Value(), 10)); err != nil {
				return err
			}
		case e.hist != nil:
			s := e.hist.Snapshot()
			var cum int64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				le := Label{Key: "le", Value: formatFloat(bound)}
				if err := writeSample(w, e.name, append(append([]Label(nil), e.labels...), le), "_bucket", strconv.FormatInt(cum, 10)); err != nil {
					return err
				}
			}
			cum += s.Counts[len(s.Bounds)]
			inf := Label{Key: "le", Value: "+Inf"}
			if err := writeSample(w, e.name, append(append([]Label(nil), e.labels...), inf), "_bucket", strconv.FormatInt(cum, 10)); err != nil {
				return err
			}
			if err := writeSample(w, e.name, e.labels, "_sum", formatFloat(s.Sum)); err != nil {
				return err
			}
			if err := writeSample(w, e.name, e.labels, "_count", strconv.FormatInt(s.Count, 10)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name string, labels []Label, suffix, value string) error {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString(suffix)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Key)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Package telemetry is the repo's small, allocation-conscious metrics
// core: atomic counters and gauges, fixed-bucket histograms with
// mergeable snapshots, and a named registry that renders both to a
// Prometheus-style text exposition. It is the instrumentation substrate
// of the §6 deployment story — long-lived daemons (agentd), the wire
// protocol under them (nexitwire), and the mesh harness above them all
// record into it, and cmd/nexitplot's watch mode reads it back out —
// in the spirit of the fleet-operations literature (TerraServer,
// MSR-TR-2004-67): a persistent process that cannot be observed cannot
// be operated.
//
// Design constraints, in order:
//
//   - Hot-path writes are wait-free and allocation-free: Counter.Add,
//     Gauge.Set, and Histogram.Observe are a handful of atomic
//     operations on pre-allocated state. Metric handles are created
//     once (registration takes a lock and builds strings) and then
//     written through directly — never looked up per event.
//   - Reads never block writes. Snapshots load each cell atomically;
//     a snapshot taken mid-update may split one event between a bucket
//     and the total, but every cell is monotone, so two successive
//     snapshots never observe a counter moving backwards.
//   - Snapshots are mergeable and JSON-serializable, so per-peer and
//     per-agent views aggregate into mesh-wide ones (internal/mesh's
//     Progress) and travel through the expvar/JSON status surface.
package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotone event counter. The zero value is ready to use,
// but most callers obtain one from a Registry so it is also exported.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative; negative
// deltas would break the monotonicity snapshots rely on).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: negative Counter.Add")
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value (sessions in flight, queue depth).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative deltas allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets is the histogram bound ladder used for session
// latencies, in seconds: roughly exponential from 500µs to 10s, which
// brackets everything a wire session does — an in-memory mesh session
// runs low milliseconds, a TCP one tens of milliseconds, and anything
// beyond seconds is a stall about to hit the exchange deadline.
// Everything in a mesh must share one ladder or the per-peer snapshots
// stop merging, so it is a package constant, not per-call tuning.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations <= Bounds[i] (and greater than Bounds[i-1]); one
// overflow bucket counts the rest. Bounds are fixed at construction —
// there is no rebucketing, which is what makes snapshots from
// different processes mergeable and Observe a single atomic add after
// a short scan of a pre-sized array.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Nil or empty bounds select DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation. NaN observations are dropped (they
// would poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot captures the histogram's current state. Cells are loaded
// atomically but not as one transaction: a concurrent Observe may land
// in the bucket array and not yet in Count (or vice versa), so
// Snapshot.Count and the bucket sum may differ transiently by in-flight
// observations — both only ever grow.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; shared
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// with snapshots taken over the same bounds and serializable to JSON
// (it is what travels in agentd's status surface).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] counts observations
	// in (Bounds[i-1], Bounds[i]], with Counts[len(Bounds)] the
	// overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge folds another snapshot into this one. Both must share bounds
// (or one side may be empty/zero, which adopts the other's bounds).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(o.Counts) == 0 {
		return nil
	}
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]int64(nil), o.Counts...)
		s.Count = o.Count
		s.Sum = o.Sum
		return nil
	}
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("telemetry: merging histograms with %d vs %d bounds", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("telemetry: merging histograms with different bounds at %d", i)
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts: the upper bound of the bucket holding the target rank (the
// lowest bound for the first bucket, +Inf capped to the last bound for
// the overflow bucket). It is a bucket-resolution estimate, not an
// exact sample quantile; an empty snapshot returns 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] // overflow: best we can say
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

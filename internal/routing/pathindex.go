package routing

import (
	"encoding/binary"
)

// PathIndex is a CSR-style (compressed sparse row) index of the link
// paths between every PoP of one table and a fixed endpoint set — in
// practice the ISP's own PoPs of the pair's interconnections. The nexit
// evaluators and the optimal-routing LP only ever need paths with one
// end pinned to an interconnection PoP, so the full path structure for a
// negotiation is an (endpoints × 2n) family of rows: for endpoint k,
//
//	To(k, src)   — links on the path src → endpoints[k]
//	From(k, dst) — links on the path endpoints[k] → dst
//
// All rows share one flat links array with an offsets table, making each
// lookup a zero-allocation subslice. Rows for unreachable pairs (and for
// src == endpoint) are empty, matching Table.PathLinks semantics.
//
// Build cost is one parent-chain walk per row — the same walks
// Table.PathLinks would do — paid once per (table, endpoint set) and
// memoized on the Table (see PathIndexFor), then amortized across every
// Prefs/Commit/Revert of every session sharing the table.
type PathIndex struct {
	n         int
	endpoints []int
	links     []int32 // concatenated per-row link paths
	off       []int32 // row r occupies links[off[r]:off[r+1]]; len = numRows+1
}

// row maps (endpoint k, direction, pop) to the CSR row id. Direction 0
// is "to the endpoint" (pop is the source), 1 is "from the endpoint"
// (pop is the destination).
func (ix *PathIndex) row(k, dir, pop int) int {
	return k*2*ix.n + dir*ix.n + pop
}

// To returns the links (indices into ISP.Links, in path order) on the
// shortest path from src to endpoints[k].
func (ix *PathIndex) To(k, src int) []int32 {
	r := ix.row(k, 0, src)
	return ix.links[ix.off[r]:ix.off[r+1]]
}

// From returns the links on the shortest path from endpoints[k] to dst.
func (ix *PathIndex) From(k, dst int) []int32 {
	r := ix.row(k, 1, dst)
	return ix.links[ix.off[r]:ix.off[r+1]]
}

// NumEndpoints returns the size of the indexed endpoint set.
func (ix *PathIndex) NumEndpoints() int { return len(ix.endpoints) }

// buildPathIndex constructs the index for the given endpoint set.
func (t *Table) buildPathIndex(endpoints []int) *PathIndex {
	n := t.n
	ix := &PathIndex{
		n:         n,
		endpoints: append([]int(nil), endpoints...),
		off:       make([]int32, len(endpoints)*2*n+1),
	}
	// Pass 1: count hops per row into off[r+1].
	for k, ep := range ix.endpoints {
		parentFromEp := t.parent[ep*n:]
		for p := 0; p < n; p++ {
			// To-row: path p → ep uses p's parent tree.
			if p != ep && t.Reachable(p, ep) {
				parent := t.parent[p*n:]
				hops := 0
				for v := ep; v != p; v = int(parent[v]) {
					hops++
				}
				ix.off[ix.row(k, 0, p)+1] = int32(hops)
			}
			// From-row: path ep → p uses ep's parent tree.
			if p != ep && t.Reachable(ep, p) {
				hops := 0
				for v := p; v != ep; v = int(parentFromEp[v]) {
					hops++
				}
				ix.off[ix.row(k, 1, p)+1] = int32(hops)
			}
		}
	}
	for r := 1; r < len(ix.off); r++ {
		ix.off[r] += ix.off[r-1]
	}
	ix.links = make([]int32, ix.off[len(ix.off)-1])
	// Pass 2: fill each row by walking the parent chain destination →
	// source, writing backwards so the stored row is in forward path
	// order — exactly Table.PathLinks' output.
	for k, ep := range ix.endpoints {
		parentFromEp := t.parent[ep*n:]
		plinkFromEp := t.plink[ep*n:]
		for p := 0; p < n; p++ {
			if p != ep && t.Reachable(p, ep) {
				parent := t.parent[p*n:]
				plink := t.plink[p*n:]
				r := ix.row(k, 0, p)
				i := ix.off[r+1]
				for v := ep; v != p; v = int(parent[v]) {
					i--
					ix.links[i] = plink[v]
				}
			}
			if p != ep && t.Reachable(ep, p) {
				r := ix.row(k, 1, p)
				i := ix.off[r+1]
				for v := p; v != ep; v = int(parentFromEp[v]) {
					i--
					ix.links[i] = plinkFromEp[v]
				}
			}
		}
	}
	return ix
}

// PathIndexFor returns the path index for the given endpoint set,
// building it on first use and memoizing it on the table. Tables are
// shared across sessions and worker goroutines, so both negotiation
// sides and the optimal-routing layer resolve to the same index for the
// same interconnection list; concurrent first calls may race to build
// but agree on one winner (the build is deterministic, so either copy
// is identical).
func (t *Table) PathIndexFor(endpoints []int) *PathIndex {
	key := make([]byte, 4*len(endpoints))
	for i, ep := range endpoints {
		binary.LittleEndian.PutUint32(key[4*i:], uint32(ep))
	}
	if v, ok := t.pathIndexes.Load(string(key)); ok {
		return v.(*PathIndex)
	}
	ix := t.buildPathIndex(endpoints)
	actual, _ := t.pathIndexes.LoadOrStore(string(key), ix)
	return actual.(*PathIndex)
}

package routing

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topology"
)

func sameLinks(t *testing.T, ctx string, got []int32, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", ctx, got, want)
	}
	for i := range want {
		if int(got[i]) != want[i] {
			t.Fatalf("%s: got %v, want %v", ctx, got, want)
		}
	}
}

// TestPathIndexMatchesPathLinks is the property test pinning the CSR
// index to fresh parent-chain extraction: over randomized topologies and
// endpoint sets, every To/From row must equal Table.PathLinks for the
// same (src, dst, interconnection) triple.
func TestPathIndexMatchesPathLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		isp := randomConnectedISP(rng, 4+rng.Intn(20), rng.Intn(25))
		tab := New(isp)
		n := len(isp.PoPs)
		na := 1 + rng.Intn(4)
		endpoints := make([]int, na)
		for k := range endpoints {
			endpoints[k] = rng.Intn(n)
		}
		ix := tab.PathIndexFor(endpoints)
		if ix.NumEndpoints() != na {
			t.Fatalf("trial %d: NumEndpoints = %d, want %d", trial, ix.NumEndpoints(), na)
		}
		for probe := 0; probe < 200; probe++ {
			k := rng.Intn(na)
			src, dst := rng.Intn(n), rng.Intn(n)
			sameLinks(t, "To", ix.To(k, src), tab.PathLinks(src, endpoints[k]))
			sameLinks(t, "From", ix.From(k, dst), tab.PathLinks(endpoints[k], dst))
		}
		// Exhaustive sweep on top of the random probes: every row.
		for k := range endpoints {
			for p := 0; p < n; p++ {
				sameLinks(t, "To", ix.To(k, p), tab.PathLinks(p, endpoints[k]))
				sameLinks(t, "From", ix.From(k, p), tab.PathLinks(endpoints[k], p))
			}
		}
	}
}

func TestPathIndexUnreachableRowsEmpty(t *testing.T) {
	isp := &topology.ISP{
		Name: "disc", ASN: 6,
		PoPs: []topology.PoP{
			{ID: 0, City: "a"}, {ID: 1, City: "b"}, {ID: 2, City: "c"},
		},
		Links: []topology.Link{{A: 0, B: 1, Weight: 1, LengthKm: 1}},
	}
	tab := New(isp)
	ix := tab.PathIndexFor([]int{0})
	if len(ix.To(0, 2)) != 0 || len(ix.From(0, 2)) != 0 {
		t.Errorf("rows touching unreachable PoP 2 should be empty: To=%v From=%v", ix.To(0, 2), ix.From(0, 2))
	}
	if len(ix.To(0, 0)) != 0 {
		t.Errorf("src == endpoint row should be empty, got %v", ix.To(0, 0))
	}
	sameLinks(t, "To(0,1)", ix.To(0, 1), tab.PathLinks(1, 0))
}

// TestPathIndexForConcurrent exercises the memo under -race: many
// goroutines resolving the same and different endpoint sets must agree
// on one index per set.
func TestPathIndexForConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	isp := randomConnectedISP(rng, 24, 30)
	tab := New(isp)
	sets := [][]int{{0, 3, 7}, {0, 3, 7}, {1, 2}, {5}, {0, 3, 7}, {1, 2}}
	got := make([]*PathIndex, len(sets))
	var wg sync.WaitGroup
	for i, eps := range sets {
		wg.Add(1)
		go func(i int, eps []int) {
			defer wg.Done()
			got[i] = tab.PathIndexFor(eps)
		}(i, eps)
	}
	wg.Wait()
	// Same endpoint set resolves to the same memoized index.
	again := tab.PathIndexFor([]int{0, 3, 7})
	for i, eps := range sets {
		if len(eps) == 3 && got[i] != again {
			t.Fatalf("set %d: expected memoized index pointer", i)
		}
		for k := range eps {
			for p := range isp.PoPs {
				sameLinks(t, "concurrent To", got[i].To(k, p), tab.PathLinks(p, eps[k]))
			}
		}
	}
}

// Package routing computes intra-ISP routing state: shortest paths over
// link weights (OSPF-style), path extraction, and per-link load
// accumulation.
//
// The paper assumes each ISP routes internally along its IGP shortest
// paths; a flow's path through the two-ISP system is the concatenation of
// the upstream's internal path to the chosen interconnection, the
// interconnection link, and the downstream's internal path from the
// interconnection to the destination. This package supplies the internal
// halves; interconnection choice is made by the negotiation, baseline, or
// optimal routing layers.
package routing

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// Table holds all-pairs shortest-path state for one ISP. Shortest paths
// minimize the sum of link weights; ties are broken deterministically
// (prefer the path whose previous hop has the smaller PoP ID) so the
// entire simulator is reproducible.
//
// All four per-pair matrices live in single contiguous n*n backing
// arrays (row src at [src*n : (src+1)*n]) rather than per-source row
// allocations: the evaluator hot loops walk rows for many (src, dst)
// pairs in sequence, and one flat allocation keeps them on adjacent
// cache lines and off the allocator entirely.
type Table struct {
	ISP *topology.ISP

	n      int
	dist   []float64 // dist[src*n+dst]: sum of link weights
	length []float64 // length[src*n+dst]: geographic km along the chosen path
	parent []int32   // parent[src*n+dst]: previous hop on the path from src, -1 at src/unreachable
	plink  []int32   // plink[src*n+dst]: link index used to reach dst from parent

	// pathIndexes memoizes PathIndexFor results keyed by the encoded
	// endpoint list. Tables are shared across pairs and worker
	// goroutines (pairsim.TableCache), so the memo must be safe for
	// concurrent first use.
	pathIndexes sync.Map // string -> *PathIndex
}

// New builds the routing table by running Dijkstra from every PoP.
func New(isp *topology.ISP) *Table {
	n := len(isp.PoPs)
	t := &Table{
		ISP:    isp,
		n:      n,
		dist:   make([]float64, n*n),
		length: make([]float64, n*n),
		parent: make([]int32, n*n),
		plink:  make([]int32, n*n),
	}
	adj := isp.Adjacency()
	var s dijkstraScratch
	s.init(n)
	for src := 0; src < n; src++ {
		r := src * n
		dijkstra(isp, adj, src, t.dist[r:r+n], t.length[r:r+n], t.parent[r:r+n], t.plink[r:r+n], &s)
	}
	return t
}

// dijkstraScratch is the per-source working set, reused across the n
// single-source runs of one table build.
type dijkstraScratch struct {
	done []bool
	pq   popHeap
}

func (s *dijkstraScratch) init(n int) {
	s.done = make([]bool, n)
	s.pq = make(popHeap, 0, n)
}

// dijkstra computes single-source shortest paths with deterministic
// tie-breaking on (distance, previous-hop ID), writing into the caller's
// row views.
func dijkstra(isp *topology.ISP, adj [][]topology.Edge, src int, dist, length []float64, parent, plink []int32, s *dijkstraScratch) {
	n := len(isp.PoPs)
	done := s.done
	for i := 0; i < n; i++ {
		dist[i] = math.Inf(1)
		length[i] = 0
		parent[i] = -1
		plink[i] = -1
		done[i] = false
	}
	dist[src] = 0
	pq := s.pq[:0]
	pq.push(popItem{dist: 0, pop: int32(src)})
	for len(pq) > 0 {
		item := pq.pop()
		u := int(item.pop)
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range adj[u] {
			l := isp.Links[e.Link]
			nd := dist[u] + l.Weight
			v := e.To
			if done[v] {
				continue
			}
			better := nd < dist[v]
			// Deterministic tie-break: equal distance, smaller previous hop.
			if !better && nd == dist[v] && (parent[v] == -1 || int32(u) < parent[v]) {
				better = true
			}
			if better {
				dist[v] = nd
				length[v] = length[u] + l.LengthKm
				parent[v] = int32(u)
				plink[v] = int32(e.Link)
				pq.push(popItem{dist: nd, pop: int32(v)})
			}
		}
	}
	s.pq = pq[:0]
}

type popItem struct {
	dist float64
	pop  int32
}

// popHeap is a typed binary min-heap ordered by (dist, pop). The order
// is total, so the pop sequence — and with it every tie-break — is
// identical to the previous container/heap implementation, without the
// interface{} boxing per push/pop. Entries with equal keys are duplicate
// relaxations of the same PoP and are interchangeable (the done flag
// skips all but the first).
type popHeap []popItem

func itemLess(a, b popItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.pop < b.pop
}

func (h *popHeap) push(it popItem) {
	a := append(*h, it)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
	*h = a
}

func (h *popHeap) pop() popItem {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a = a[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(a) {
			break
		}
		m := l
		if r := l + 1; r < len(a) && itemLess(a[r], a[l]) {
			m = r
		}
		if !itemLess(a[m], a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	*h = a
	return top
}

// Dist returns the shortest-path weight between src and dst.
// It is +Inf if dst is unreachable.
func (t *Table) Dist(src, dst int) float64 { return t.dist[src*t.n+dst] }

// LengthKm returns the geographic length in kilometers of the chosen
// shortest (by weight) path between src and dst. This is the paper's
// distance metric for the portion of a flow inside one ISP (§5.1).
func (t *Table) LengthKm(src, dst int) float64 { return t.length[src*t.n+dst] }

// Reachable reports whether dst is reachable from src.
func (t *Table) Reachable(src, dst int) bool { return !math.IsInf(t.dist[src*t.n+dst], 1) }

// Path returns the PoP sequence of the shortest path from src to dst,
// inclusive of both endpoints. It returns nil if dst is unreachable.
func (t *Table) Path(src, dst int) []int {
	if !t.Reachable(src, dst) {
		return nil
	}
	parent := t.parent[src*t.n:]
	hops := 0
	for v := dst; v != src; v = int(parent[v]) {
		hops++
	}
	out := make([]int, hops+1)
	out[0] = src
	i := hops
	for v := dst; v != src; v = int(parent[v]) {
		out[i] = v
		i--
	}
	return out
}

// PathLinks returns the indices (into ISP.Links) of the links along the
// shortest path from src to dst, in order. It returns nil for src == dst
// or unreachable destinations.
func (t *Table) PathLinks(src, dst int) []int {
	if src == dst || !t.Reachable(src, dst) {
		return nil
	}
	parent := t.parent[src*t.n:]
	plink := t.plink[src*t.n:]
	hops := 0
	for v := dst; v != src; v = int(parent[v]) {
		hops++
	}
	out := make([]int, hops)
	i := hops
	for v := dst; v != src; v = int(parent[v]) {
		i--
		out[i] = int(plink[v])
	}
	return out
}

// AddLoad adds amount to every link on the shortest path from src to dst
// in the per-link load vector (indexed like ISP.Links). The parent chain
// is walked directly — no intermediate path slice is built.
func (t *Table) AddLoad(load []float64, src, dst int, amount float64) {
	if len(load) != len(t.ISP.Links) {
		panic(fmt.Sprintf("routing: load vector has %d entries for %d links", len(load), len(t.ISP.Links)))
	}
	if src == dst || !t.Reachable(src, dst) {
		return
	}
	parent := t.parent[src*t.n:]
	plink := t.plink[src*t.n:]
	for v := dst; v != src; v = int(parent[v]) {
		load[plink[v]] += amount
	}
}

// MaxLinkRatio returns the maximum over links of load[i]/cap[i], skipping
// links with non-positive capacity. It is the building block for the MEL
// metric (§5.2) and delegates to metrics.MEL, the single implementation.
func MaxLinkRatio(load, capacity []float64) float64 {
	return metrics.MEL(load, capacity)
}

// Package routing computes intra-ISP routing state: shortest paths over
// link weights (OSPF-style), path extraction, and per-link load
// accumulation.
//
// The paper assumes each ISP routes internally along its IGP shortest
// paths; a flow's path through the two-ISP system is the concatenation of
// the upstream's internal path to the chosen interconnection, the
// interconnection link, and the downstream's internal path from the
// interconnection to the destination. This package supplies the internal
// halves; interconnection choice is made by the negotiation, baseline, or
// optimal routing layers.
package routing

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topology"
)

// Table holds all-pairs shortest-path state for one ISP. Shortest paths
// minimize the sum of link weights; ties are broken deterministically
// (prefer the path whose previous hop has the smaller PoP ID) so the
// entire simulator is reproducible.
type Table struct {
	ISP *topology.ISP

	dist   [][]float64 // dist[src][dst]: sum of link weights
	length [][]float64 // length[src][dst]: geographic km along the chosen path
	parent [][]int32   // parent[src][dst]: previous hop on the path from src, -1 at src/unreachable
	plink  [][]int32   // plink[src][dst]: link index used to reach dst from parent
}

// New builds the routing table by running Dijkstra from every PoP.
func New(isp *topology.ISP) *Table {
	n := len(isp.PoPs)
	t := &Table{
		ISP:    isp,
		dist:   make([][]float64, n),
		length: make([][]float64, n),
		parent: make([][]int32, n),
		plink:  make([][]int32, n),
	}
	adj := isp.Adjacency()
	for src := 0; src < n; src++ {
		t.dist[src], t.length[src], t.parent[src], t.plink[src] = dijkstra(isp, adj, src)
	}
	return t
}

// dijkstra computes single-source shortest paths with deterministic
// tie-breaking on (distance, previous-hop ID).
func dijkstra(isp *topology.ISP, adj [][]topology.Edge, src int) ([]float64, []float64, []int32, []int32) {
	n := len(isp.PoPs)
	dist := make([]float64, n)
	length := make([]float64, n)
	parent := make([]int32, n)
	plink := make([]int32, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
		plink[i] = -1
	}
	dist[src] = 0
	pq := &popHeap{{dist: 0, pop: src}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(popItem)
		u := item.pop
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range adj[u] {
			l := isp.Links[e.Link]
			nd := dist[u] + l.Weight
			v := e.To
			if done[v] {
				continue
			}
			better := nd < dist[v]
			// Deterministic tie-break: equal distance, smaller previous hop.
			if !better && nd == dist[v] && (parent[v] == -1 || int32(u) < parent[v]) {
				better = true
			}
			if better {
				dist[v] = nd
				length[v] = length[u] + l.LengthKm
				parent[v] = int32(u)
				plink[v] = int32(e.Link)
				heap.Push(pq, popItem{dist: nd, pop: v})
			}
		}
	}
	return dist, length, parent, plink
}

type popItem struct {
	dist float64
	pop  int
}

type popHeap []popItem

func (h popHeap) Len() int { return len(h) }
func (h popHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].pop < h[j].pop
}
func (h popHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *popHeap) Push(x interface{}) { *h = append(*h, x.(popItem)) }
func (h *popHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dist returns the shortest-path weight between src and dst.
// It is +Inf if dst is unreachable.
func (t *Table) Dist(src, dst int) float64 { return t.dist[src][dst] }

// LengthKm returns the geographic length in kilometers of the chosen
// shortest (by weight) path between src and dst. This is the paper's
// distance metric for the portion of a flow inside one ISP (§5.1).
func (t *Table) LengthKm(src, dst int) float64 { return t.length[src][dst] }

// Reachable reports whether dst is reachable from src.
func (t *Table) Reachable(src, dst int) bool { return !math.IsInf(t.dist[src][dst], 1) }

// Path returns the PoP sequence of the shortest path from src to dst,
// inclusive of both endpoints. It returns nil if dst is unreachable.
func (t *Table) Path(src, dst int) []int {
	if !t.Reachable(src, dst) {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		rev = append(rev, v)
		v = int(t.parent[src][v])
	}
	out := make([]int, 0, len(rev)+1)
	out = append(out, src)
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// PathLinks returns the indices (into ISP.Links) of the links along the
// shortest path from src to dst, in order. It returns nil for src == dst
// or unreachable destinations.
func (t *Table) PathLinks(src, dst int) []int {
	if src == dst || !t.Reachable(src, dst) {
		return nil
	}
	var rev []int
	for v := dst; v != src; {
		rev = append(rev, int(t.plink[src][v]))
		v = int(t.parent[src][v])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AddLoad adds amount to every link on the shortest path from src to dst
// in the per-link load vector (indexed like ISP.Links).
func (t *Table) AddLoad(load []float64, src, dst int, amount float64) {
	if len(load) != len(t.ISP.Links) {
		panic(fmt.Sprintf("routing: load vector has %d entries for %d links", len(load), len(t.ISP.Links)))
	}
	for _, li := range t.PathLinks(src, dst) {
		load[li] += amount
	}
}

// MaxLinkRatio returns the maximum over links of load[i]/cap[i], skipping
// links with non-positive capacity. It is the building block for the MEL
// metric (§5.2).
func MaxLinkRatio(load, capacity []float64) float64 {
	var maxRatio float64
	for i := range load {
		if capacity[i] <= 0 {
			continue
		}
		if r := load[i] / capacity[i]; r > maxRatio {
			maxRatio = r
		}
	}
	return maxRatio
}

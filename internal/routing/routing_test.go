package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/topology"
)

// lineISP builds a path topology 0-1-2-...-n-1 with unit weights.
func lineISP(n int) *topology.ISP {
	isp := &topology.ISP{Name: "line", ASN: 1}
	for i := 0; i < n; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: city(i), Loc: geo.Point{Lat: float64(i)}})
	}
	for i := 0; i+1 < n; i++ {
		isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: 1, LengthKm: 100})
	}
	return isp
}

func city(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestLineDistances(t *testing.T) {
	tab := New(lineISP(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := math.Abs(float64(i - j))
			if got := tab.Dist(i, j); got != want {
				t.Errorf("Dist(%d,%d) = %v, want %v", i, j, got, want)
			}
			if got := tab.LengthKm(i, j); got != want*100 {
				t.Errorf("LengthKm(%d,%d) = %v, want %v", i, j, got, want*100)
			}
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	tab := New(lineISP(6))
	p := tab.Path(1, 4)
	want := []int{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("Path(1,4) = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path(1,4) = %v, want %v", p, want)
		}
	}
	if got := tab.Path(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("Path(3,3) = %v, want [3]", got)
	}
	links := tab.PathLinks(1, 4)
	if len(links) != 3 {
		t.Fatalf("PathLinks(1,4) = %v", links)
	}
	if tab.PathLinks(2, 2) != nil {
		t.Error("PathLinks(x,x) should be nil")
	}
}

// weightedISP builds a diamond where the weighted shortest path differs
// from the hop-count shortest path.
func weightedISP() *topology.ISP {
	isp := &topology.ISP{Name: "diamond", ASN: 2}
	for i := 0; i < 4; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: city(i), Loc: geo.Point{Lat: float64(i)}})
	}
	isp.Links = []topology.Link{
		{A: 0, B: 1, Weight: 1, LengthKm: 10}, // 0
		{A: 1, B: 3, Weight: 1, LengthKm: 10}, // 1
		{A: 0, B: 3, Weight: 5, LengthKm: 5},  // 2: direct but heavy
		{A: 0, B: 2, Weight: 1, LengthKm: 10}, // 3
		{A: 2, B: 3, Weight: 2, LengthKm: 10}, // 4
	}
	return isp
}

func TestWeightedShortestPath(t *testing.T) {
	tab := New(weightedISP())
	if got := tab.Dist(0, 3); got != 2 {
		t.Errorf("Dist(0,3) = %v, want 2 (via PoP 1)", got)
	}
	// LengthKm follows the weight-shortest path (20km), not the direct 5km link.
	if got := tab.LengthKm(0, 3); got != 20 {
		t.Errorf("LengthKm(0,3) = %v, want 20", got)
	}
	p := tab.Path(0, 3)
	if len(p) != 3 || p[1] != 1 {
		t.Errorf("Path(0,3) = %v, want [0 1 3]", p)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths 0->1->3 and 0->2->3; the tie-break should
	// prefer previous hop 1 (smaller ID) and be stable across runs.
	isp := &topology.ISP{Name: "tie", ASN: 3}
	for i := 0; i < 4; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: city(i), Loc: geo.Point{Lat: float64(i)}})
	}
	isp.Links = []topology.Link{
		{A: 0, B: 1, Weight: 1, LengthKm: 1},
		{A: 0, B: 2, Weight: 1, LengthKm: 1},
		{A: 1, B: 3, Weight: 1, LengthKm: 1},
		{A: 2, B: 3, Weight: 1, LengthKm: 1},
	}
	for run := 0; run < 5; run++ {
		tab := New(isp)
		p := tab.Path(0, 3)
		if len(p) != 3 || p[1] != 1 {
			t.Fatalf("run %d: Path(0,3) = %v, want [0 1 3]", run, p)
		}
	}
}

// randomConnectedISP builds a random connected graph: a random spanning
// tree plus extra random edges, with random positive weights.
func randomConnectedISP(rng *rand.Rand, n, extra int) *topology.ISP {
	isp := &topology.ISP{Name: "rand", ASN: 4}
	for i := 0; i < n; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: city(i), Loc: geo.Point{Lat: float64(i % 90)}})
	}
	have := map[[2]int]bool{}
	addLink := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || have[[2]int{a, b}] {
			return
		}
		have[[2]int{a, b}] = true
		w := 1 + rng.Float64()*99
		isp.Links = append(isp.Links, topology.Link{A: a, B: b, Weight: w, LengthKm: w})
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addLink(perm[i], perm[rng.Intn(i)])
	}
	for e := 0; e < extra; e++ {
		addLink(rng.Intn(n), rng.Intn(n))
	}
	return isp
}

// floydWarshall is an independent all-pairs implementation used as the
// oracle for the property test.
func floydWarshall(isp *topology.ISP) [][]float64 {
	n := len(isp.PoPs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, l := range isp.Links {
		if l.Weight < d[l.A][l.B] {
			d[l.A][l.B] = l.Weight
			d[l.B][l.A] = l.Weight
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		isp := randomConnectedISP(rng, 5+rng.Intn(20), rng.Intn(30))
		tab := New(isp)
		want := floydWarshall(isp)
		for i := range isp.PoPs {
			for j := range isp.PoPs {
				if math.Abs(tab.Dist(i, j)-want[i][j]) > 1e-9 {
					t.Fatalf("trial %d: Dist(%d,%d) = %v, want %v", trial, i, j, tab.Dist(i, j), want[i][j])
				}
			}
		}
	}
}

func TestPathConsistency(t *testing.T) {
	// Property: the weight along Path(i,j) equals Dist(i,j), the path is
	// a valid walk, and LengthKm equals the sum of link lengths.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		isp := randomConnectedISP(rng, 4+rng.Intn(15), rng.Intn(20))
		tab := New(isp)
		for i := range isp.PoPs {
			for j := range isp.PoPs {
				links := tab.PathLinks(i, j)
				var w, km float64
				at := i
				for _, li := range links {
					l := isp.Links[li]
					switch at {
					case l.A:
						at = l.B
					case l.B:
						at = l.A
					default:
						t.Fatalf("path link %d does not continue from PoP %d", li, at)
					}
					w += l.Weight
					km += l.LengthKm
				}
				if at != j {
					t.Fatalf("path from %d ends at %d, want %d", i, at, j)
				}
				if math.Abs(w-tab.Dist(i, j)) > 1e-9 {
					t.Fatalf("path weight %v != Dist %v", w, tab.Dist(i, j))
				}
				if math.Abs(km-tab.LengthKm(i, j)) > 1e-9 {
					t.Fatalf("path length %v != LengthKm %v", km, tab.LengthKm(i, j))
				}
			}
		}
	}
}

func TestAddLoad(t *testing.T) {
	isp := lineISP(4)
	tab := New(isp)
	load := make([]float64, len(isp.Links))
	tab.AddLoad(load, 0, 3, 2.5)
	tab.AddLoad(load, 1, 2, 1.0)
	want := []float64{2.5, 3.5, 2.5}
	for i := range want {
		if load[i] != want[i] {
			t.Errorf("load[%d] = %v, want %v", i, load[i], want[i])
		}
	}
}

func TestAddLoadPanicsOnBadVector(t *testing.T) {
	tab := New(lineISP(3))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong-size load vector")
		}
	}()
	tab.AddLoad(make([]float64, 99), 0, 1, 1)
}

func TestMaxLinkRatio(t *testing.T) {
	load := []float64{1, 4, 9}
	capacity := []float64{2, 2, 0} // zero-capacity link skipped
	if got := MaxLinkRatio(load, capacity); got != 2 {
		t.Errorf("MaxLinkRatio = %v, want 2", got)
	}
	if got := MaxLinkRatio(nil, nil); got != 0 {
		t.Errorf("MaxLinkRatio(empty) = %v, want 0", got)
	}
}

func TestUnreachable(t *testing.T) {
	// Build a technically invalid (disconnected) topology directly to
	// exercise the unreachable code paths; Table does not validate.
	isp := &topology.ISP{
		Name: "disc", ASN: 5,
		PoPs: []topology.PoP{
			{ID: 0, City: "a"}, {ID: 1, City: "b"}, {ID: 2, City: "c"},
		},
		Links: []topology.Link{{A: 0, B: 1, Weight: 1, LengthKm: 1}},
	}
	tab := New(isp)
	if tab.Reachable(0, 2) {
		t.Error("PoP 2 should be unreachable")
	}
	if tab.Path(0, 2) != nil || tab.PathLinks(0, 2) != nil {
		t.Error("paths to unreachable destinations should be nil")
	}
	if !math.IsInf(tab.Dist(0, 2), 1) {
		t.Error("Dist to unreachable should be +Inf")
	}
}

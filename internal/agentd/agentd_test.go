package agentd

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/pairsim"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// testSystem builds a deterministic pair from the generator.
func testSystem(t testing.TB, seed int64) *pairsim.System {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	cfg.Seed = seed
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	return pairsim.New(pairs[0], nil)
}

// testWorkloads derives deterministic drifting epoch workloads; both
// endpoints (and the serial reference) share it.
func testWorkloads(sys *pairsim.System, seed int64) WorkloadFunc {
	return func(epoch int) (*traffic.Workload, *traffic.Workload) {
		baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
		baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
		rng := runner.PairRand(seed, epoch)
		return continuous.Drift(baseAB, 0.25, rng), continuous.Drift(baseBA, 0.25, rng)
	}
}

// startResponder builds and serves agent "b" for the given system,
// returning the agent and its dial address.
func startResponder(t *testing.T, sys *pairsim.System, wl WorkloadFunc) (*Agent, string) {
	t.Helper()
	b := New(Config{Name: "b", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := b.AddPeer(Peer{
		Name:      "a",
		Side:      nexit.SideB,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		b.Close()
		b.Wait()
	})
	return b, ln.Addr().String()
}

// TestTwoAgentEpochs runs several epochs between two daemons over
// loopback TCP and pins the outcome to the serial in-process controller.
func TestTwoAgentEpochs(t *testing.T) {
	const epochs = 4
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Serial in-process reference: same controller inputs, no wire.
	ref := continuous.New(sys, 10)

	for epoch := 0; epoch < epochs; epoch++ {
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		rep := reports["b"]
		if rep == nil {
			t.Fatalf("epoch %d: no report for peer b", epoch)
		}
		wAB, wBA := wl(epoch)
		want, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("epoch %d: wire report %+v, serial reference %+v", epoch, rep, want)
		}
	}

	// The daemon negotiated for real in later epochs.
	if st := a.Status(); st.SessionsInitiated != epochs || st.SessionsFailed != 0 {
		t.Errorf("initiator status: %+v", st)
	}
	stB := waitServed(t, b, epochs)
	if stB.Peers[0].Epochs != epochs {
		t.Errorf("responder advanced to epoch %d, want %d", stB.Peers[0].Epochs, epochs)
	}
	if stB.Peers[0].GainUs == 0 {
		t.Error("responder never gained; epochs likely never negotiated")
	}
}

// waitServed polls until the responder has served n sessions (the
// initiator returns before the responder's bookkeeping completes).
func waitServed(t *testing.T, b *Agent, n int64) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := b.Status()
		if st.SessionsServed >= n || time.Now().After(deadline) {
			if st.SessionsServed != n {
				t.Errorf("responder served %d sessions, want %d", st.SessionsServed, n)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTwoAgentBandwidthEpochs drives a bandwidth-metric pair over
// loopback TCP — stateful evaluators, mid-session reassignment, metric
// carried in every Hello — and pins the outcome to the serial
// in-process controller for the same metric.
func TestTwoAgentBandwidthEpochs(t *testing.T) {
	const epochs = 4
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)

	newCtl := func() *continuous.Controller {
		ctl, err := continuous.NewWithMetric(sys, 10, continuous.MetricBandwidth)
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	b := New(Config{Name: "b", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := b.AddPeer(Peer{
		Name: "a", Side: nexit.SideB, Ctl: newCtl(), Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	defer func() {
		ln.Close()
		b.Close()
		b.Wait()
	}()
	addr := ln.Addr().String()

	a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: newCtl(), Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ref := newCtl()
	negotiated := false
	for epoch := 0; epoch < epochs; epoch++ {
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		wAB, wBA := wl(epoch)
		want, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports["b"], want) {
			t.Errorf("epoch %d: wire report %+v, serial reference %+v", epoch, reports["b"], want)
		}
		if want.Negotiated > 0 {
			negotiated = true
		}
	}
	if !negotiated {
		t.Error("no epoch negotiated; the bandwidth wire path was not exercised")
	}
	if st := a.Status(); st.Peers[0].Metric != string(continuous.MetricBandwidth) {
		t.Errorf("status reports metric %q, want bandwidth", st.Peers[0].Metric)
	}
}

// TestMetricMismatchRejected crosses a bandwidth-metric initiator with
// a distance-metric responder: the session must be rejected cleanly at
// Hello time with a labelled reason on both sides, and neither
// controller may advance an epoch (a mismatch is a refusal, not a
// desync).
func TestMetricMismatchRejected(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl) // distance metric

	bwCtl, err := continuous.NewWithMetric(sys, 10, continuous.MetricBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Name: "a", Timeout: 5 * time.Second})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: bwCtl, Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	_, err = a.RunEpoch(context.Background(), 0)
	if err == nil {
		t.Fatal("mismatched metrics negotiated successfully")
	}
	if !strings.Contains(err.Error(), "metric mismatch") ||
		!strings.Contains(err.Error(), `"bandwidth"`) || !strings.Contains(err.Error(), `"distance"`) {
		t.Errorf("rejection reason is not labelled with both metrics: %v", err)
	}
	// No desync: neither controller advanced, and the failure is
	// recorded — not a half-run epoch.
	if got := bwCtl.EpochIndex(); got != 0 {
		t.Errorf("initiator controller advanced to epoch %d on a rejected session", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Status().SessionsFailed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := b.Status()
	if st.SessionsFailed == 0 {
		t.Errorf("responder did not record the rejected session: %+v", st)
	}
	if st.Peers[0].Epochs != 0 {
		t.Errorf("responder controller advanced to epoch %d on a rejected session", st.Peers[0].Epochs)
	}
	if st := a.Status(); st.SessionsFailed == 0 || !strings.Contains(st.Peers[0].LastError, "metric mismatch") {
		t.Errorf("initiator status does not carry the labelled failure: %+v", st)
	}
}

// flakyConn kills the connection mid-session: once armed, the second
// write fails (the first lets the session's Hello out, so the kill
// lands inside an in-flight session, not between sessions).
type flakyConn struct {
	net.Conn
	kill   *atomic.Bool
	writes int
}

func (c *flakyConn) Write(b []byte) (int, error) {
	if c.kill.Load() {
		if c.writes++; c.writes >= 2 {
			c.kill.Store(false)
			c.Conn.Close()
			return 0, net.ErrClosed
		}
	}
	return c.Conn.Write(b)
}

// newResponder builds agent "b" with a fresh controller and serves it,
// returning the agent, its address, and a stopper. Unlike
// startResponder it leaves the lifecycle to the caller, so tests can
// kill and replace the daemon mid-run.
func newResponder(t *testing.T, sys *pairsim.System, wl WorkloadFunc) (*Agent, string, func()) {
	t.Helper()
	b := New(Config{Name: "b", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := b.AddPeer(Peer{
		Name: "a", Side: nexit.SideB, Ctl: continuous.New(sys, 10), Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ln.Close()
			b.Close()
			b.Wait()
		})
	}
	t.Cleanup(stop)
	return b, ln.Addr().String(), stop
}

// TestResponderRestartResync is the recovery path end to end: the
// responder's connection is killed mid-session, the responder daemon is
// then torn down entirely and replaced by a cold restart (fresh
// controller at epoch 0), and the next RunEpoch must fast-forward the
// newcomer and produce the exact serial-reference outcome — no operator
// intervention, resync visible in status.
func TestResponderRestartResync(t *testing.T) {
	const healthy, total = 3, 5
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr1, stop1 := newResponder(t, sys, wl)

	var addr atomic.Value
	addr.Store(addr1)
	var kill atomic.Bool
	a := New(Config{
		Name: "a", Timeout: 5 * time.Second,
		DialBackoff: time.Millisecond, Logf: t.Logf,
	})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr.Load().(string))
			if err != nil {
				return nil, err
			}
			return &flakyConn{Conn: c, kill: &kill}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ref := continuous.New(sys, 10)
	wantEpoch := func(epoch int) *continuous.EpochReport {
		wAB, wBA := wl(epoch)
		rep, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	runEpoch := func(epoch int) {
		t.Helper()
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if !reflect.DeepEqual(reports["b"], wantEpoch(epoch)) {
			t.Errorf("epoch %d diverged from the serial reference", epoch)
		}
	}
	for epoch := 0; epoch < healthy; epoch++ {
		runEpoch(epoch)
	}

	// Kill the wire mid-session: the epoch must fail on both sides
	// without advancing either controller.
	kill.Store(true)
	if _, err := a.RunEpoch(context.Background(), healthy); err == nil {
		t.Fatal("epoch with a killed connection succeeded")
	}

	// Replace the responder with a cold restart on a new address.
	stop1()
	b2, addr2, _ := newResponder(t, sys, wl)
	addr.Store(addr2)

	// The very next RunEpoch heals the pair: the restarted responder
	// fast-forwards from epoch 0 and the outcome matches the reference.
	for epoch := healthy; epoch < total; epoch++ {
		runEpoch(epoch)
	}
	st := waitServed(t, b2, total-healthy)
	if st.Peers[0].Epochs != total {
		t.Errorf("restarted responder is at epoch %d, want %d", st.Peers[0].Epochs, total)
	}
	if st.Resyncs != 1 || st.Peers[0].Resyncs != 1 {
		t.Errorf("restarted responder counted %d/%d resyncs, want 1/1", st.Resyncs, st.Peers[0].Resyncs)
	}
	if ast := a.Status(); ast.SessionsFailed == 0 || ast.Resyncs != 0 {
		t.Errorf("initiator status after recovery: %+v", ast)
	}
}

// TestInitiatorRestartResync restarts the initiating daemon: its fresh
// controller is behind the epoch its driver asks for, so it must
// fast-forward locally before dialing and then negotiate normally.
func TestInitiatorRestartResync(t *testing.T) {
	const healthy = 3
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	newInitiator := func() *Agent {
		a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
		if err := a.AddPeer(Peer{
			Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := newInitiator()
	for epoch := 0; epoch < healthy; epoch++ {
		if _, err := a1.RunEpoch(context.Background(), epoch); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	a1.Close()
	waitServed(t, b, healthy)

	// The restarted initiator is driven at the epoch the mesh is on.
	a2 := newInitiator()
	defer a2.Close()
	ref := continuous.New(sys, 10)
	if err := ref.SeekEpoch(healthy, wl); err != nil {
		t.Fatal(err)
	}
	wAB, wBA := wl(healthy)
	want, err := ref.Epoch(wAB, wBA)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := a2.RunEpoch(context.Background(), healthy)
	if err != nil {
		t.Fatalf("post-restart epoch: %v", err)
	}
	if !reflect.DeepEqual(reports["b"], want) {
		t.Errorf("post-restart epoch diverged:\n  wire %+v\n  ref  %+v", reports["b"], want)
	}
	if st := a2.Status(); st.Resyncs != 1 || st.Peers[0].Resyncs != 1 {
		t.Errorf("restarted initiator counted %d resyncs, want 1: %+v", st.Resyncs, st)
	}
	if a2.NextEpoch() != healthy+1 {
		t.Errorf("NextEpoch = %d after epoch %d", a2.NextEpoch(), healthy)
	}
}

// TestInitiatorSkewRetryResync covers the responder-ahead case: a
// restarted initiator whose driver also restarted (epoch 0) meets a
// responder that lived through several epochs. The responder cannot
// rewind; it rejects with the typed skew, and the initiator must
// fast-forward to the responder's epoch and retry within the same
// RunEpoch call.
func TestInitiatorSkewRetryResync(t *testing.T) {
	const lived = 3
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	newInitiator := func() *Agent {
		a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
		if err := a.AddPeer(Peer{
			Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
		}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := newInitiator()
	for epoch := 0; epoch < lived; epoch++ {
		if _, err := a1.RunEpoch(context.Background(), epoch); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	a1.Close()
	waitServed(t, b, lived)

	ref := continuous.New(sys, 10)
	if err := ref.SeekEpoch(lived, wl); err != nil {
		t.Fatal(err)
	}
	wAB, wBA := wl(lived)
	want, err := ref.Epoch(wAB, wBA)
	if err != nil {
		t.Fatal(err)
	}

	// Fully cold restart: the driver starts over at epoch 0.
	a2 := newInitiator()
	defer a2.Close()
	reports, err := a2.RunEpoch(context.Background(), 0)
	if err != nil {
		t.Fatalf("cold-restart epoch: %v", err)
	}
	rep := reports["b"]
	if rep == nil {
		t.Fatal("cold-restart epoch produced no report")
	}
	if rep.Epoch != lived {
		t.Errorf("recovered at epoch %d, want the responder's epoch %d", rep.Epoch, lived)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Errorf("recovered epoch diverged:\n  wire %+v\n  ref  %+v", rep, want)
	}
	st := a2.Status()
	if st.Resyncs != 1 || st.SessionsFailed == 0 {
		t.Errorf("skew retry not visible in status: %+v", st)
	}
	if !strings.Contains(st.Peers[0].LastError, "epoch skew") {
		t.Errorf("last error does not name the skew: %q", st.Peers[0].LastError)
	}
	// Idempotency: re-driving an already-negotiated epoch is a no-op.
	reports, err = a2.RunEpoch(context.Background(), 1)
	if err != nil || len(reports) != 0 {
		t.Errorf("re-driven epoch was not skipped: %v %v", reports, err)
	}
}

// TestResyncBoundRejected pins the replay bound: a peer demanding an
// absurd fast-forward (the epoch comes from the remote end) must get a
// labelled refusal, and the responder's controller must not move — not
// hours of synchronous replay and an unrewindable controller.
func TestResyncBoundRejected(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ini := &nexitwire.Initiator{
		Name: "a", Cfg: nexit.DefaultDistanceConfig(),
		Epoch:   MaxEpochSeek + 1,
		Eval:    nexit.NewDistanceEvaluator(sys, nexit.SideA, 10),
		Timeout: 5 * time.Second,
	}
	_, err = ini.Run(conn, nil, nil, sys.NumAlternatives())
	if err == nil {
		t.Fatal("an absurd epoch fast-forward was served")
	}
	if !strings.Contains(err.Error(), "replay bound") {
		t.Errorf("refusal is not labelled with the bound: %v", err)
	}
	st := b.Status()
	if st.Peers[0].Epochs != 0 || st.Resyncs != 0 {
		t.Errorf("bounded seek still moved the controller: %+v", st)
	}
}

// encodeHelloV2 hand-builds a v2 Hello frame (u16 version, string
// name, u16 alts, u32 items, u64 hash, string metric) — the bytes an
// old, pre-resync daemon would send.
func encodeHelloV2(name string, numAlts, numItems int, hash uint64, metric string) []byte {
	var p []byte
	p = binary.BigEndian.AppendUint16(p, 2) // version
	p = binary.BigEndian.AppendUint16(p, uint16(len(name)))
	p = append(p, name...)
	p = binary.BigEndian.AppendUint16(p, uint16(numAlts))
	p = binary.BigEndian.AppendUint32(p, uint32(numItems))
	p = binary.BigEndian.AppendUint64(p, hash)
	p = binary.BigEndian.AppendUint16(p, uint16(len(metric)))
	p = append(p, metric...)
	frame := binary.BigEndian.AppendUint32(nil, uint32(1+len(p)))
	frame = append(frame, 1) // MsgHello
	return append(frame, p...)
}

// TestOldVersionRejectedBeforeEpoch pins the check order: a v2 peer —
// whose Hello has no epoch field — must get the labelled version
// reject, and its zero-valued epoch must never reach the resync logic
// (no skew reason, no controller movement), even when the responder is
// mid-mesh at a later epoch.
func TestOldVersionRejectedBeforeEpoch(t *testing.T) {
	const lived = 2
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < lived; epoch++ {
		if _, err := a.RunEpoch(context.Background(), epoch); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
	}
	a.Close()
	waitServed(t, b, lived)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeHelloV2("a", sys.NumAlternatives(), 0, 0, "distance")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(reply)
	if err != nil {
		t.Fatalf("no reject frame: %v", err)
	}
	got := string(reply[:n])
	if !strings.Contains(got, "version 2") {
		t.Errorf("v2 hello not rejected with the version reason: %q", got)
	}
	if strings.Contains(got, "epoch skew") {
		t.Errorf("v2 hello reached the epoch check before the version check: %q", got)
	}
	if st := b.Status(); st.Peers[0].Epochs != lived || st.Resyncs != 0 {
		t.Errorf("old-version hello moved the controller: %+v", st)
	}
}

// TestRunEpochCancelCounted pins the cancellation path: an epoch
// cancelled before its session starts must surface as a counted,
// labelled failure, not vanish from the status surface.
func TestRunEpochCancelCounted(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	a := New(Config{Name: "a", Timeout: time.Second, MaxSessions: 1})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) { return nil, net.ErrClosed },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.RunEpoch(ctx, 0); err == nil {
		t.Fatal("cancelled epoch succeeded")
	}
	st := a.Status()
	if st.SessionsFailed != 1 {
		t.Errorf("cancelled epoch not counted: %+v", st)
	}
	// The cancellation can land in the session-slot wait ("cancelled")
	// or the dial ladder ("context canceled"); both must be labelled.
	if !strings.Contains(st.Peers[0].LastError, "cancel") {
		t.Errorf("cancelled epoch not labelled: %q", st.Peers[0].LastError)
	}
}

// TestDialBackoffCancelled pins satellite semantics for SIGINT: a
// context cancelled during the dial-backoff ladder must interrupt the
// wait promptly instead of sleeping out the full ladder.
func TestDialBackoffCancelled(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	a := New(Config{
		Name: "a", Timeout: time.Second,
		DialAttempts: 10, DialBackoff: 10 * time.Second, // ladder would sleep minutes
	})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) { return nil, net.ErrClosed },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := a.RunEpoch(ctx, 0)
	if err == nil {
		t.Fatal("epoch against a dead dialer succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not carry the cancellation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the backoff sleep ignored ctx", elapsed)
	}
}

// TestDialBackoffPersistsAndResets pins the backoff ladder contract:
// the delay escalates across failed epochs (a down neighbor is not
// hammered from the base delay each time) and resets after a
// successful session (one old failure does not slow future redials).
func TestDialBackoffPersistsAndResets(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr := startResponder(t, sys, wl)

	var down atomic.Bool
	a := New(Config{
		Name: "a", Timeout: 10 * time.Second,
		DialAttempts: 2, DialBackoff: time.Millisecond,
	})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) {
			if down.Load() {
				return nil, net.ErrClosed
			}
			return net.Dial("tcp", addr)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	p := a.peer("b")
	down.Store(true)
	for i := 0; i < 3; i++ {
		if _, err := a.RunEpoch(context.Background(), 0); err == nil {
			t.Fatal("epoch against a down neighbor succeeded")
		}
	}
	p.mu.Lock()
	escalated := p.backoff
	p.mu.Unlock()
	if escalated <= time.Millisecond {
		t.Errorf("backoff did not escalate across failed epochs: %v", escalated)
	}
	down.Store(false)
	if _, err := a.RunEpoch(context.Background(), 0); err != nil {
		t.Fatalf("epoch after recovery: %v", err)
	}
	p.mu.Lock()
	reset := p.backoff
	p.mu.Unlock()
	if reset != 0 {
		t.Errorf("successful session did not reset the backoff ladder: %v", reset)
	}
}

// TestDialRetryBackoff proves the outbound dialer retries with backoff
// until the neighbor comes up.
func TestDialRetryBackoff(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr := startResponder(t, sys, wl)

	var attempts atomic.Int64
	a := New(Config{
		Name: "a", Timeout: 10 * time.Second,
		DialAttempts: 5, DialBackoff: time.Millisecond,
	})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial: func() (net.Conn, error) {
			if attempts.Add(1) < 3 {
				return nil, net.ErrClosed // transient failure, twice
			}
			return net.Dial("tcp", addr)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if _, err := a.RunEpoch(context.Background(), 0); err != nil {
		t.Fatalf("epoch with flaky dialer: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("dialed %d times, want 3 (two failures, one success)", got)
	}
	// The connection is cached: another epoch must not redial.
	if _, err := a.RunEpoch(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("cached connection was redialed (%d dials)", got)
	}
}

// TestWorkloadMismatch crosses two agents configured with different
// workload seeds: the session must fail fast at Hello time with the
// workload-hash mismatch surfaced on both sides.
func TestWorkloadMismatch(t *testing.T) {
	sys := testSystem(t, 1)
	b, addr := startResponder(t, sys, testWorkloads(sys, 42))

	a := New(Config{Name: "a", Timeout: 5 * time.Second})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: testWorkloads(sys, 43), // different universe
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Epoch 0 tables are empty on both sides (no flows promoted yet), so
	// the hashes agree; run it to let the registries diverge.
	if _, err := a.RunEpoch(context.Background(), 0); err != nil {
		t.Fatalf("empty epoch: %v", err)
	}
	var err error
	for epoch := 1; epoch < 4 && err == nil; epoch++ {
		_, err = a.RunEpoch(context.Background(), epoch)
	}
	if err == nil {
		t.Fatal("mismatched universes negotiated successfully")
	}
	// The universes differ in table size or hash; either way the abort
	// reason must travel back to the initiator.
	if !strings.Contains(err.Error(), "peer error") {
		t.Errorf("error does not surface the peer's abort reason: %v", err)
	}
	if st := a.Status(); st.SessionsFailed == 0 || st.Peers[0].LastError == "" {
		t.Errorf("failure not recorded in status: %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Status().SessionsFailed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := b.Status(); st.SessionsFailed == 0 {
		t.Errorf("responder did not record the aborted session: %+v", st)
	}
}

// TestUnknownPeerRejected sends a Hello naming a peer the responder is
// not configured for and expects a protocol-level rejection.
func TestUnknownPeerRejected(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr := startResponder(t, sys, wl)

	stranger := New(Config{Name: "stranger", Timeout: 5 * time.Second})
	if err := stranger.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()

	_, err := stranger.RunEpoch(context.Background(), 0)
	if err == nil {
		t.Fatal("unknown peer was served")
	}
	if !strings.Contains(err.Error(), "not configured") {
		t.Errorf("rejection reason not surfaced: %v", err)
	}
}

package agentd

import (
	"context"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// testSystem builds a deterministic pair from the generator.
func testSystem(t testing.TB, seed int64) *pairsim.System {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	cfg.Seed = seed
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	return pairsim.New(pairs[0], nil)
}

// testWorkloads derives deterministic drifting epoch workloads; both
// endpoints (and the serial reference) share it.
func testWorkloads(sys *pairsim.System, seed int64) WorkloadFunc {
	return func(epoch int) (*traffic.Workload, *traffic.Workload) {
		baseAB := traffic.New(sys.Pair.A, sys.Pair.B, traffic.Gravity, nil)
		baseBA := traffic.New(sys.Pair.B, sys.Pair.A, traffic.Gravity, nil)
		rng := runner.PairRand(seed, epoch)
		return continuous.Drift(baseAB, 0.25, rng), continuous.Drift(baseBA, 0.25, rng)
	}
}

// startResponder builds and serves agent "b" for the given system,
// returning the agent and its dial address.
func startResponder(t *testing.T, sys *pairsim.System, wl WorkloadFunc) (*Agent, string) {
	t.Helper()
	b := New(Config{Name: "b", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := b.AddPeer(Peer{
		Name:      "a",
		Side:      nexit.SideB,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		b.Close()
		b.Wait()
	})
	return b, ln.Addr().String()
}

// TestTwoAgentEpochs runs several epochs between two daemons over
// loopback TCP and pins the outcome to the serial in-process controller.
func TestTwoAgentEpochs(t *testing.T) {
	const epochs = 4
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl)

	a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Serial in-process reference: same controller inputs, no wire.
	ref := continuous.New(sys, 10)

	for epoch := 0; epoch < epochs; epoch++ {
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		rep := reports["b"]
		if rep == nil {
			t.Fatalf("epoch %d: no report for peer b", epoch)
		}
		wAB, wBA := wl(epoch)
		want, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("epoch %d: wire report %+v, serial reference %+v", epoch, rep, want)
		}
	}

	// The daemon negotiated for real in later epochs.
	if st := a.Status(); st.SessionsInitiated != epochs || st.SessionsFailed != 0 {
		t.Errorf("initiator status: %+v", st)
	}
	stB := waitServed(t, b, epochs)
	if stB.Peers[0].Epochs != epochs {
		t.Errorf("responder advanced to epoch %d, want %d", stB.Peers[0].Epochs, epochs)
	}
	if stB.Peers[0].GainUs == 0 {
		t.Error("responder never gained; epochs likely never negotiated")
	}
}

// waitServed polls until the responder has served n sessions (the
// initiator returns before the responder's bookkeeping completes).
func waitServed(t *testing.T, b *Agent, n int64) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := b.Status()
		if st.SessionsServed >= n || time.Now().After(deadline) {
			if st.SessionsServed != n {
				t.Errorf("responder served %d sessions, want %d", st.SessionsServed, n)
			}
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTwoAgentBandwidthEpochs drives a bandwidth-metric pair over
// loopback TCP — stateful evaluators, mid-session reassignment, metric
// carried in every Hello — and pins the outcome to the serial
// in-process controller for the same metric.
func TestTwoAgentBandwidthEpochs(t *testing.T) {
	const epochs = 4
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)

	newCtl := func() *continuous.Controller {
		ctl, err := continuous.NewWithMetric(sys, 10, continuous.MetricBandwidth)
		if err != nil {
			t.Fatal(err)
		}
		return ctl
	}
	b := New(Config{Name: "b", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := b.AddPeer(Peer{
		Name: "a", Side: nexit.SideB, Ctl: newCtl(), Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	defer func() {
		ln.Close()
		b.Close()
		b.Wait()
	}()
	addr := ln.Addr().String()

	a := New(Config{Name: "a", Timeout: 10 * time.Second, Logf: t.Logf})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: newCtl(), Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ref := newCtl()
	negotiated := false
	for epoch := 0; epoch < epochs; epoch++ {
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		wAB, wBA := wl(epoch)
		want, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports["b"], want) {
			t.Errorf("epoch %d: wire report %+v, serial reference %+v", epoch, reports["b"], want)
		}
		if want.Negotiated > 0 {
			negotiated = true
		}
	}
	if !negotiated {
		t.Error("no epoch negotiated; the bandwidth wire path was not exercised")
	}
	if st := a.Status(); st.Peers[0].Metric != string(continuous.MetricBandwidth) {
		t.Errorf("status reports metric %q, want bandwidth", st.Peers[0].Metric)
	}
}

// TestMetricMismatchRejected crosses a bandwidth-metric initiator with
// a distance-metric responder: the session must be rejected cleanly at
// Hello time with a labelled reason on both sides, and neither
// controller may advance an epoch (a mismatch is a refusal, not a
// desync).
func TestMetricMismatchRejected(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	b, addr := startResponder(t, sys, wl) // distance metric

	bwCtl, err := continuous.NewWithMetric(sys, 10, continuous.MetricBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{Name: "a", Timeout: 5 * time.Second})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: bwCtl, Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	_, err = a.RunEpoch(context.Background(), 0)
	if err == nil {
		t.Fatal("mismatched metrics negotiated successfully")
	}
	if !strings.Contains(err.Error(), "metric mismatch") ||
		!strings.Contains(err.Error(), `"bandwidth"`) || !strings.Contains(err.Error(), `"distance"`) {
		t.Errorf("rejection reason is not labelled with both metrics: %v", err)
	}
	// No desync: neither controller advanced, and the failure is
	// recorded — not a half-run epoch.
	if got := bwCtl.EpochIndex(); got != 0 {
		t.Errorf("initiator controller advanced to epoch %d on a rejected session", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Status().SessionsFailed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := b.Status()
	if st.SessionsFailed == 0 {
		t.Errorf("responder did not record the rejected session: %+v", st)
	}
	if st.Peers[0].Epochs != 0 {
		t.Errorf("responder controller advanced to epoch %d on a rejected session", st.Peers[0].Epochs)
	}
	if st := a.Status(); st.SessionsFailed == 0 || !strings.Contains(st.Peers[0].LastError, "metric mismatch") {
		t.Errorf("initiator status does not carry the labelled failure: %+v", st)
	}
}

// TestDialRetryBackoff proves the outbound dialer retries with backoff
// until the neighbor comes up.
func TestDialRetryBackoff(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr := startResponder(t, sys, wl)

	var attempts atomic.Int64
	a := New(Config{
		Name: "a", Timeout: 10 * time.Second,
		DialAttempts: 5, DialBackoff: time.Millisecond,
	})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial: func() (net.Conn, error) {
			if attempts.Add(1) < 3 {
				return nil, net.ErrClosed // transient failure, twice
			}
			return net.Dial("tcp", addr)
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if _, err := a.RunEpoch(context.Background(), 0); err != nil {
		t.Fatalf("epoch with flaky dialer: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("dialed %d times, want 3 (two failures, one success)", got)
	}
	// The connection is cached: another epoch must not redial.
	if _, err := a.RunEpoch(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("cached connection was redialed (%d dials)", got)
	}
}

// TestWorkloadMismatch crosses two agents configured with different
// workload seeds: the session must fail fast at Hello time with the
// workload-hash mismatch surfaced on both sides.
func TestWorkloadMismatch(t *testing.T) {
	sys := testSystem(t, 1)
	b, addr := startResponder(t, sys, testWorkloads(sys, 42))

	a := New(Config{Name: "a", Timeout: 5 * time.Second})
	if err := a.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: testWorkloads(sys, 43), // different universe
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Epoch 0 tables are empty on both sides (no flows promoted yet), so
	// the hashes agree; run it to let the registries diverge.
	if _, err := a.RunEpoch(context.Background(), 0); err != nil {
		t.Fatalf("empty epoch: %v", err)
	}
	var err error
	for epoch := 1; epoch < 4 && err == nil; epoch++ {
		_, err = a.RunEpoch(context.Background(), epoch)
	}
	if err == nil {
		t.Fatal("mismatched universes negotiated successfully")
	}
	// The universes differ in table size or hash; either way the abort
	// reason must travel back to the initiator.
	if !strings.Contains(err.Error(), "peer error") {
		t.Errorf("error does not surface the peer's abort reason: %v", err)
	}
	if st := a.Status(); st.SessionsFailed == 0 || st.Peers[0].LastError == "" {
		t.Errorf("failure not recorded in status: %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Status().SessionsFailed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := b.Status(); st.SessionsFailed == 0 {
		t.Errorf("responder did not record the aborted session: %+v", st)
	}
}

// TestUnknownPeerRejected sends a Hello naming a peer the responder is
// not configured for and expects a protocol-level rejection.
func TestUnknownPeerRejected(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr := startResponder(t, sys, wl)

	stranger := New(Config{Name: "stranger", Timeout: 5 * time.Second})
	if err := stranger.AddPeer(Peer{
		Name:      "b",
		Side:      nexit.SideA,
		Ctl:       continuous.New(sys, 10),
		Workloads: wl,
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", addr) },
	}); err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()

	_, err := stranger.RunEpoch(context.Background(), 0)
	if err == nil {
		t.Fatal("unknown peer was served")
	}
	if !strings.Contains(err.Error(), "not configured") {
		t.Errorf("rejection reason not surfaced: %v", err)
	}
}

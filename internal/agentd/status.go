package agentd

import (
	"encoding/json"
	"expvar"
	"sync"
)

// Status is the agent's introspection snapshot: the long-running
// process's answer to "what has this daemon been doing" (the paper's §6
// deployment concern, in the spirit of TerraServer's operations
// experience — make the persistent process observable). It marshals to
// JSON and is also what the expvar surface publishes.
type Status struct {
	Name              string `json:"name"`
	SessionsActive    int64  `json:"sessions_active"`
	SessionsInitiated int64  `json:"sessions_initiated"`
	SessionsServed    int64  `json:"sessions_served"`
	SessionsFailed    int64  `json:"sessions_failed"`
	// Resyncs counts epoch fast-forwards across all peers: each one is
	// a pair that healed itself after a failed session or a restart
	// (the epoch-resync handshake, DESIGN.md §7).
	Resyncs int64        `json:"resyncs"`
	Peers   []PeerStatus `json:"peers"`
}

// PeerStatus is one neighbor's slice of the snapshot.
type PeerStatus struct {
	Name      string `json:"name"`
	Initiator bool   `json:"initiator"`
	// Metric is the pair's negotiation objective (the controller's
	// continuous.Metric, as carried in wire Hellos).
	Metric string `json:"metric"`
	// Epochs counts completed negotiation epochs with this peer.
	Epochs int `json:"epochs"`
	// Sessions and Failures count completed and failed wire sessions.
	Sessions int64 `json:"sessions"`
	Failures int64 `json:"failures"`
	// Resyncs counts this pair's epoch fast-forwards (local replays
	// that caught the controller up to its peer after a failure or
	// restart).
	Resyncs int64 `json:"resyncs"`
	// Rounds is the cumulative proposal-round count across sessions.
	Rounds int64 `json:"rounds"`
	// GainUs and GainPeer are the cumulative disclosed class gains,
	// ours and the neighbor's.
	GainUs   int64 `json:"gain_us"`
	GainPeer int64 `json:"gain_peer"`
	// LedgerBalance is the pair's current credit balance (positive:
	// side A is ahead).
	LedgerBalance int    `json:"ledger_balance"`
	LastStop      string `json:"last_stop,omitempty"`
	LastError     string `json:"last_error,omitempty"`
}

// Status snapshots the agent. Safe to call concurrently with sessions.
func (a *Agent) Status() Status {
	st := Status{
		Name:              a.cfg.Name,
		SessionsActive:    a.sessionsActive.Load(),
		SessionsInitiated: a.sessionsInitiated.Load(),
		SessionsServed:    a.sessionsServed.Load(),
		SessionsFailed:    a.sessionsFailed.Load(),
		Resyncs:           a.resyncs.Load(),
	}
	for _, p := range a.peerList() {
		// Only the stats mutex is taken — never the session mutex — so
		// a snapshot cannot hang behind a stalled peer's session.
		p.stats.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			Name:          p.Name,
			Initiator:     p.initiate,
			Metric:        string(p.Ctl.Metric),
			Epochs:        p.stats.epochs,
			Sessions:      p.stats.sessions,
			Failures:      p.stats.failures,
			Resyncs:       p.stats.resyncs,
			Rounds:        p.stats.rounds,
			GainUs:        p.stats.gainUs,
			GainPeer:      p.stats.gainPeer,
			LedgerBalance: p.stats.ledger,
			LastStop:      p.stats.lastStop,
			LastError:     p.stats.lastErr,
		})
		p.stats.Unlock()
	}
	return st
}

// StatusJSON renders the snapshot as indented JSON.
func (a *Agent) StatusJSON() []byte {
	b, err := json.MarshalIndent(a.Status(), "", "  ")
	if err != nil {
		return []byte(`{"error":"status marshal failed"}`)
	}
	return b
}

// expvarMu serializes the check-then-publish below (expvar panics on
// duplicate names).
var expvarMu sync.Mutex

// PublishExpvar registers the agent's live status as an expvar under
// the given name ("agentd.<agent name>" when empty), so any expvar
// endpoint — e.g. nexitagent's -debug-addr — exposes it. Re-publishing
// an already-taken name is a no-op.
func (a *Agent) PublishExpvar(name string) {
	if name == "" {
		name = "agentd." + a.cfg.Name
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return a.Status() }))
}

package agentd

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Status is the agent's introspection snapshot: the long-running
// process's answer to "what has this daemon been doing" (the paper's §6
// deployment concern, in the spirit of TerraServer's operations
// experience — make the persistent process observable). It marshals to
// JSON and is also what the expvar surface publishes; cmd/nexitplot's
// watch mode and mesh.AggregateStatuses both consume it.
type Status struct {
	Name              string `json:"name"`
	SessionsActive    int64  `json:"sessions_active"`
	SessionsInitiated int64  `json:"sessions_initiated"`
	SessionsServed    int64  `json:"sessions_served"`
	SessionsFailed    int64  `json:"sessions_failed"`
	// Resyncs counts epoch fast-forwards across all peers: each one is
	// a pair that healed itself after a failed session or a restart
	// (the epoch-resync handshake, DESIGN.md §7).
	Resyncs int64 `json:"resyncs"`
	// DialRetries counts outbound dial attempts beyond the first of
	// each ladder — the backoff pressure the agent is under.
	DialRetries int64 `json:"dial_retries"`
	// ReplayedEpochs counts epochs reconstructed by local replay across
	// all resyncs. With snapshots configured it measures only the tails
	// since the restored snapshots — the recovery cost snapshots are
	// there to cap (DESIGN.md §11).
	ReplayedEpochs int64 `json:"replayed_epochs"`
	// SnapshotSaves and SnapshotRestores count persisted and restored
	// controller snapshots (zero without a -state-dir).
	SnapshotSaves    int64        `json:"snapshot_saves"`
	SnapshotRestores int64        `json:"snapshot_restores"`
	Wire             WireStatus   `json:"wire"`
	Peers            []PeerStatus `json:"peers"`
}

// WireStatus is the agent's cumulative wire traffic: frame and byte
// counts per direction and per-phase wire time, folded from every
// connection's nexitwire.WireStats after each session.
type WireStatus struct {
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	// Phase times are cumulative microseconds of blocking wire time.
	HelloUs   int64 `json:"hello_us"`
	PrefsUs   int64 `json:"prefs_us"`
	ProposeUs int64 `json:"propose_us"`
	CommitUs  int64 `json:"commit_us"`
}

// PeerStatus is one neighbor's slice of the snapshot.
type PeerStatus struct {
	Name      string `json:"name"`
	Initiator bool   `json:"initiator"`
	// Metric is the pair's negotiation objective (the controller's
	// continuous.Metric, as carried in wire Hellos).
	Metric string `json:"metric"`
	// Epochs counts completed negotiation epochs with this peer.
	Epochs int `json:"epochs"`
	// Sessions and Failures count completed and failed wire sessions.
	Sessions int64 `json:"sessions"`
	Failures int64 `json:"failures"`
	// Resyncs counts this pair's epoch fast-forwards (local replays
	// that caught the controller up to its peer after a failure or
	// restart); ReplayedEpochs is how many epochs those fast-forwards
	// actually replayed — tail-only when snapshots are working.
	Resyncs        int64 `json:"resyncs"`
	ReplayedEpochs int64 `json:"replayed_epochs"`
	// SnapshotRestores counts how often this pair's controller resumed
	// from a persisted snapshot instead of replaying from scratch.
	SnapshotRestores int64 `json:"snapshot_restores"`
	// Rounds is the cumulative proposal-round count across sessions.
	Rounds int64 `json:"rounds"`
	// GainUs and GainPeer are the cumulative disclosed class gains,
	// ours and the neighbor's.
	GainUs   int64 `json:"gain_us"`
	GainPeer int64 `json:"gain_peer"`
	// LedgerBalance is the pair's current credit balance (positive:
	// side A is ahead).
	LedgerBalance int    `json:"ledger_balance"`
	LastStop      string `json:"last_stop,omitempty"`
	LastError     string `json:"last_error,omitempty"`
	// Latency is the peer's session-latency histogram
	// (agentd_session_seconds{peer=...}): mergeable across peers and
	// agents, shared bucket ladder (telemetry.DefaultLatencyBuckets).
	Latency *telemetry.HistogramSnapshot `json:"latency,omitempty"`
}

// Status snapshots the agent. Safe to call concurrently with sessions:
// every telemetry cell is read atomically and only the per-peer stats
// mutex is taken — never a session mutex.
func (a *Agent) Status() Status {
	st := Status{
		Name:              a.cfg.Name,
		SessionsActive:    a.sessionsActive.Value(),
		SessionsInitiated: a.sessionsInitiated.Value(),
		SessionsServed:    a.sessionsServed.Value(),
		SessionsFailed:    a.sessionsFailed.Value(),
		Resyncs:           a.resyncs.Value(),
		DialRetries:       a.dialRetries.Value(),
		ReplayedEpochs:    a.replayedEpochs.Value(),
		SnapshotSaves:     a.snapshotSaves.Value(),
		SnapshotRestores:  a.snapshotRestores.Value(),
		Wire: WireStatus{
			FramesSent: a.wireFramesSent.Value(),
			FramesRecv: a.wireFramesRecv.Value(),
			BytesSent:  a.wireBytesSent.Value(),
			BytesRecv:  a.wireBytesRecv.Value(),
			HelloUs:    a.wireHelloUs.Value(),
			PrefsUs:    a.wirePrefsUs.Value(),
			ProposeUs:  a.wireProposeUs.Value(),
			CommitUs:   a.wireCommitUs.Value(),
		},
	}
	for _, p := range a.peerList() {
		lat := p.lat.Snapshot()
		// Only the stats mutex is taken — never the session mutex — so
		// a snapshot cannot hang behind a stalled peer's session.
		p.stats.Lock()
		st.Peers = append(st.Peers, PeerStatus{
			Name:             p.Name,
			Initiator:        p.initiate,
			Metric:           string(p.Ctl.Metric),
			Epochs:           p.stats.epochs,
			Sessions:         p.stats.sessions,
			Failures:         p.stats.failures,
			Resyncs:          p.stats.resyncs,
			ReplayedEpochs:   p.stats.replayed,
			SnapshotRestores: p.stats.snapRestores,
			Rounds:           p.stats.rounds,
			GainUs:           p.stats.gainUs,
			GainPeer:         p.stats.gainPeer,
			LedgerBalance:    p.stats.ledger,
			LastStop:         p.stats.lastStop,
			LastError:        p.stats.lastErr,
			Latency:          &lat,
		})
		p.stats.Unlock()
	}
	return st
}

// StatusJSON renders the snapshot as indented JSON.
func (a *Agent) StatusJSON() []byte {
	b, err := json.MarshalIndent(a.Status(), "", "  ")
	if err != nil {
		return []byte(`{"error":"status marshal failed"}`)
	}
	return b
}

// WriteMetrics renders the agent's telemetry in the Prometheus text
// exposition format (the -debug-addr /metrics endpoint).
func (a *Agent) WriteMetrics(w io.Writer) error {
	return a.reg.WritePrometheus(w)
}

// expvarMu serializes check-then-publish below (expvar panics on
// duplicate names); expvarAgents holds the indirection that lets a
// restarted agent re-claim its name.
var (
	expvarMu     sync.Mutex
	expvarAgents = map[string]*atomic.Pointer[Agent]{}
)

// PublishExpvar registers the agent's live status as an expvar under
// the given name ("agentd.<agent name>" when empty), so any expvar
// endpoint — e.g. nexitagent's -debug-addr — exposes it.
//
// The published func reads through an indirection: when a restarted
// agent re-publishes under a name this package already owns, the
// expvar is re-pointed at the live agent instead of serving the dead
// one's snapshot forever. A name owned by someone else entirely (a
// foreign expvar.Publish) is left alone, as before.
func (a *Agent) PublishExpvar(name string) {
	if name == "" {
		name = "agentd." + a.cfg.Name
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if holder, ok := expvarAgents[name]; ok {
		holder.Store(a)
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	holder := &atomic.Pointer[Agent]{}
	holder.Store(a)
	expvarAgents[name] = holder
	expvar.Publish(name, expvar.Func(func() any { return holder.Load().Status() }))
}

package agentd

import (
	"context"
	"expvar"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/nexit"
	"repro/internal/telemetry"
)

// A restarted agent re-publishing under its old name must take the
// expvar over: the endpoint serves the LIVE daemon's status, not the
// dead one's frozen snapshot.
func TestPublishExpvarRestartRepoints(t *testing.T) {
	const name = "test.publish.restart"
	read := func() string {
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("expvar %q not published", name)
		}
		return v.String()
	}

	gen1 := New(Config{Name: "gen1"})
	gen1.PublishExpvar(name)
	if got := read(); !strings.Contains(got, `"name":"gen1"`) {
		t.Fatalf("first publish serves %s", got)
	}

	// The process restarts the daemon: a new Agent, same expvar name.
	gen2 := New(Config{Name: "gen2"})
	gen2.PublishExpvar(name)
	if got := read(); !strings.Contains(got, `"name":"gen2"`) {
		t.Fatalf("after restart the expvar still serves the dead agent: %s", got)
	}

	// And the new agent's counters flow through immediately.
	gen2.sessionsFailed.Inc()
	if got := read(); !strings.Contains(got, `"sessions_failed":1`) {
		t.Fatalf("expvar not reading the live agent: %s", got)
	}

	// A name owned outside this package stays untouched (no panic, no
	// takeover).
	foreign := expvar.NewString("test.publish.foreign")
	foreign.Set("keep")
	New(Config{Name: "intruder"}).PublishExpvar("test.publish.foreign")
	if got := expvar.Get("test.publish.foreign").String(); got != `"keep"` {
		t.Fatalf("foreign expvar overwritten: %s", got)
	}
}

// TestStatusConcurrentWithFaultySessions drives epochs through dial
// retries, a mid-session connection kill, and a responder restart
// while hammering Status() and registry snapshots from other
// goroutines. Under -race this pins the snapshot contract: counters
// are monotone between successive reads, never torn, and at
// quiescence the per-peer latency histograms account for exactly the
// sessions the counters report.
func TestStatusConcurrentWithFaultySessions(t *testing.T) {
	const healthy, total = 2, 5
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	_, addr1, stop1 := newResponder(t, sys, wl)

	var addr atomic.Value
	addr.Store(addr1)
	var kill atomic.Bool
	var failFirstDial atomic.Bool
	a := New(Config{
		Name: "a", Timeout: 5 * time.Second,
		DialBackoff: time.Millisecond, Logf: t.Logf,
	})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) {
			if failFirstDial.CompareAndSwap(true, false) {
				return nil, net.ErrClosed // one flaky dial: exercises the retry counter
			}
			c, err := net.Dial("tcp", addr.Load().(string))
			if err != nil {
				return nil, err
			}
			return &flakyConn{Conn: c, kill: &kill}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// Concurrent observers: successive snapshots must be monotone in
	// every counter and internally consistent.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Status
		var lastLat int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := a.Status()
			if st.SessionsInitiated < last.SessionsInitiated ||
				st.SessionsFailed < last.SessionsFailed ||
				st.Resyncs < last.Resyncs ||
				st.DialRetries < last.DialRetries ||
				st.Wire.FramesSent < last.Wire.FramesSent ||
				st.Wire.BytesRecv < last.Wire.BytesRecv {
				t.Errorf("status went backwards: %+v -> %+v", last, st)
				return
			}
			if st.SessionsActive < 0 || st.SessionsActive > 1 {
				t.Errorf("sessions_active torn: %d", st.SessionsActive)
				return
			}
			lat := st.Peers[0].Latency
			if lat == nil || lat.Count < lastLat {
				t.Errorf("latency histogram went backwards: %+v", lat)
				return
			}
			lastLat = lat.Count
			// No cross-metric inequality here: counters and histograms
			// are separate atomics read at different instants, so a
			// snapshot may legitimately catch one ahead of the other.
			// Equality is asserted at quiescence below.
			last = st
		}
	}()
	wg.Add(1)
	go func() { // registry reader: snapshot + exposition under load
		defer wg.Done()
		var sb strings.Builder
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = a.Metrics().Snapshot()
			sb.Reset()
			if err := a.WriteMetrics(&sb); err != nil {
				t.Errorf("WriteMetrics: %v", err)
				return
			}
		}
	}()

	run := func(epoch int, wantErr bool) {
		t.Helper()
		_, err := a.RunEpoch(context.Background(), epoch)
		if err != nil && !wantErr {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		if err == nil && wantErr {
			t.Fatalf("epoch %d succeeded, wanted a fault", epoch)
		}
	}
	failFirstDial.Store(true) // epoch 0 dials twice
	for epoch := 0; epoch < healthy; epoch++ {
		run(epoch, false)
	}
	kill.Store(true) // mid-session connection kill: failed epoch
	run(healthy, true)
	stop1() // cold responder restart on a new address
	_, addr2, stop2 := newResponder(t, sys, wl)
	defer stop2()
	addr.Store(addr2)
	for epoch := healthy; epoch < total; epoch++ {
		run(epoch, false)
	}
	close(stop)
	wg.Wait()

	// Quiescent invariants: the histogram accounts for exactly the
	// successful sessions, and the failure/retry counters saw the
	// injected faults.
	st := a.Status()
	if st.SessionsInitiated != total {
		t.Errorf("initiated %d, want %d", st.SessionsInitiated, total)
	}
	if st.SessionsFailed == 0 {
		t.Error("killed session not counted as failure")
	}
	if st.DialRetries == 0 {
		t.Error("flaky dial not counted as retry")
	}
	if lat := st.Peers[0].Latency; lat.Count != st.SessionsInitiated+st.SessionsServed {
		t.Errorf("latency count %d != sessions %d", lat.Count, st.SessionsInitiated+st.SessionsServed)
	}
	if st.Wire.FramesSent == 0 || st.Wire.FramesRecv == 0 || st.Wire.BytesSent == 0 {
		t.Errorf("wire counters empty: %+v", st.Wire)
	}
	if st.Wire.HelloUs <= 0 || st.Wire.PrefsUs <= 0 {
		t.Errorf("wire phase times empty: %+v", st.Wire)
	}

	// The registry agrees with the status surface, and the exposition
	// carries the per-peer histogram.
	var sb strings.Builder
	if err := a.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`agentd_sessions_initiated_total{agent="a"} 5`,
		`agentd_session_seconds_count{agent="a",peer="b"} 5`,
		`agentd_session_seconds_bucket{agent="a",peer="b",le="+Inf"} 5`,
		`agentd_dial_retries_total{agent="a"}`,
		`agentd_wire_frames_total{agent="a",dir="sent"}`,
		`agentd_wire_phase_microseconds_total{agent="a",phase="prefs"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram snapshots from the status surface merge across peers
	// and agents (shared bucket ladder).
	var merged telemetry.HistogramSnapshot
	for _, p := range st.Peers {
		if err := merged.Merge(*p.Latency); err != nil {
			t.Fatalf("latency snapshots do not merge: %v", err)
		}
	}
	if merged.Count != total {
		t.Errorf("merged latency count %d, want %d", merged.Count, total)
	}
}

// Package agentd is the long-running negotiation daemon of the paper's
// §6 deployment model: one process represents one ISP and negotiates
// *continually* with *every* neighbor. Where cmd/nexitagent used to be a
// one-shot, single-pair demo, an Agent serves many neighbors at once —
// a listener accepts inbound sessions, a dialer (with retry/backoff)
// opens outbound ones, and a per-peer continuous.Controller renegotiates
// the pair's flows epoch after epoch over the nexitwire protocol.
//
// Conventions. Every neighbor pair is oriented like pairsim.System:
// Pair.A is the wire initiator (protocol side A) and Pair.B the
// responder. Between two daemons exactly one direction of sessions
// exists, so the dial graph is acyclic and bounded session limits
// cannot deadlock across agents. One connection per neighbor carries
// all epochs back to back (nexitwire session reuse); each inbound Hello
// is dispatched to the peer it names.
//
// Both endpoints must assemble identical negotiation tables each epoch
// — in deployment because both ISPs observe the same traffic, here
// because both sides derive the epoch's workload deterministically from
// the shared dataset seed (see Peer.Workloads). Mismatched tables fail
// fast at Hello time via the workload hash; a stalled or aborting peer
// surfaces as a counted, per-peer session failure rather than a hung
// daemon.
//
// Negotiation is metric-generic per peer: each peer's controller names
// its objective (continuous.Metric — distance, bandwidth, or
// Fortz–Thorup) and the agent builds the matching evaluator fresh each
// epoch and carries the metric in the wire Hello, so one daemon can
// negotiate distance with one neighbor and bandwidth with another. A
// neighbor configured for a different metric is rejected cleanly at
// session open (labelled reason, no epoch advances on either side —
// never a desync). Invariants: epochs are deterministic in (system,
// metric, seed) and a failed epoch leaves both controllers where they
// were, so the mesh harness can pin the concurrent wire outcome to the
// serial in-process reference for every metric.
//
// Failures self-heal. Because epochs are deterministic in (system,
// metric, seed), a controller that missed epochs can reconstruct them
// by local replay (continuous.Controller.SeekEpoch), and the v3 wire
// Hello carries the initiator's epoch index so both sides can tell who
// is behind: a lagging responder fast-forwards before serving, a
// lagging initiator fast-forwards before dialing, and an initiator
// that is told (via nexitwire.EpochSkewError) that its responder is
// ahead fast-forwards and retries the session once. A failed or
// restarted daemon therefore rejoins the mesh without operator
// intervention; every resync is counted in the status surface.
package agentd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/continuous"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
)

// Default daemon parameters.
const (
	// DefaultDialAttempts bounds outbound connection retries per epoch.
	DefaultDialAttempts = 5
	// DefaultDialBackoff is the first retry delay; it doubles per retry.
	DefaultDialBackoff = 20 * time.Millisecond
	// MaxDialBackoff caps the per-peer retry delay. The delay ladder
	// persists across epochs (a neighbor that has been down for ten
	// epochs is not hammered from the base delay each time) and resets
	// only on a successful session, so the cap keeps a long outage from
	// escalating into multi-minute waits once the neighbor returns.
	MaxDialBackoff = 2 * time.Second
	// MaxEpochSeek bounds how many epochs a resync may replay in one
	// step — the tail after any snapshot restore. Replay is synchronous
	// work under the peer's session lock, and the target epoch comes
	// from the other endpoint (the Hello, or a skew reject's parsed
	// reason), so without a bound a buggy or hostile peer could demand
	// a multi-billion-epoch replay — hours of CPU and a permanently
	// advanced controller. With snapshots configured the restore runs
	// first, so a legitimate outage of any length stays within the
	// bound as long as a snapshot no more than MaxEpochSeek epochs old
	// survives on disk.
	MaxEpochSeek = 100_000
	// DefaultSnapshotInterval is how many epochs pass between snapshot
	// writes when Config.Snapshots is set but no interval is given: a
	// restart then replays at most that many epochs per peer.
	DefaultSnapshotInterval = 16
	// DefaultIdleTimeout bounds how long a serving connection may sit
	// between sessions before the agent gives up on it.
	DefaultIdleTimeout = 5 * time.Minute
)

// WorkloadFunc supplies the two directional workloads of one epoch, in
// the pair's A->B orientation. Both endpoints of a pair must return
// identical flows for the same epoch (the workload hash enforces it),
// and the function must be deterministic in the epoch index alone — it
// is also the replay source for epoch resync (SeekEpoch).
type WorkloadFunc = continuous.WorkloadFunc

// Peer configures one neighbor of the agent.
type Peer struct {
	// Name is the remote agent's name, matched against inbound Hellos.
	Name string
	// Side says which side of the pair's A->B oriented system this
	// agent is. SideA initiates sessions (and needs Dial); SideB serves
	// them.
	Side nexit.Side
	// Ctl drives the pair's continuous renegotiation. Its system must
	// be oriented with this agent on Side. The controller's Metric is
	// the pair's negotiation objective: it selects the evaluator built
	// each epoch, travels in the wire Hello, and must match the
	// neighbor's configuration (mismatches reject at session open).
	Ctl *continuous.Controller
	// Workloads derives the epoch workloads shared with the neighbor.
	Workloads WorkloadFunc
	// Dial opens the transport to the neighbor (required for SideA).
	// The agent caches the connection across epochs and redials — with
	// backoff — only after a failure.
	Dial func() (net.Conn, error)
}

// Config configures an Agent.
type Config struct {
	// Name identifies this agent in Hello frames and status output.
	Name string
	// MaxSessions bounds concurrent sessions, separately for the
	// initiated and the served direction (the two bounds are separate
	// so that mutually negotiating daemons cannot deadlock on each
	// other's limits). Zero selects runtime.GOMAXPROCS(0).
	MaxSessions int
	// Timeout bounds each wire exchange within a session
	// (nexitwire.DefaultTimeout when zero).
	Timeout time.Duration
	// DialAttempts and DialBackoff shape outbound connection retries
	// (exponential backoff starting at DialBackoff).
	DialAttempts int
	DialBackoff  time.Duration
	// IdleTimeout bounds the wait for the next session on a serving
	// connection (DefaultIdleTimeout when zero).
	IdleTimeout time.Duration
	// Snapshots, when non-nil, persists per-peer controller snapshots
	// (the agent's -state-dir): every SnapshotInterval epochs a peer's
	// state is captured under its session lock and written off the hot
	// path, registered peers restore from their newest usable snapshot
	// at startup, and epoch resyncs restore before replaying so a
	// restart costs O(epochs since the last snapshot), not O(lifetime).
	// Snapshot failures degrade recovery cost, never correctness: a
	// corrupt or missing snapshot falls back to an older one, then to
	// epoch-0 replay (DESIGN.md §11).
	Snapshots *snapshot.Store
	// SnapshotInterval is the epoch distance between snapshot writes
	// (DefaultSnapshotInterval when zero; ignored without Snapshots).
	SnapshotInterval int
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Agent is one ISP's negotiation daemon.
type Agent struct {
	cfg    Config
	outSem chan struct{}
	inSem  chan struct{}

	mu    sync.Mutex
	peers map[string]*peerState
	conns map[net.Conn]struct{} // inbound connections, for Close

	closed atomic.Bool
	wg     sync.WaitGroup // inbound connection handlers
	snapWG sync.WaitGroup // in-flight async snapshot writes

	// The agent's telemetry registry (base label agent=<name>) and the
	// metric handles written on the session paths. Handles are resolved
	// once here; sessions write through them wait-free (DESIGN.md §10
	// names every metric).
	reg               *telemetry.Registry
	sessionsActive    *telemetry.Gauge
	sessionsInitiated *telemetry.Counter
	sessionsServed    *telemetry.Counter
	sessionsFailed    *telemetry.Counter
	resyncs           *telemetry.Counter
	dialRetries       *telemetry.Counter
	replayedEpochs    *telemetry.Counter
	snapshotSaves     *telemetry.Counter
	snapshotRestores  *telemetry.Counter

	// Wire-level counters, folded from each connection's WireStats
	// after every session (Conn.TakeStats).
	wireFramesSent *telemetry.Counter
	wireFramesRecv *telemetry.Counter
	wireBytesSent  *telemetry.Counter
	wireBytesRecv  *telemetry.Counter
	wireHelloUs    *telemetry.Counter
	wirePrefsUs    *telemetry.Counter
	wireProposeUs  *telemetry.Counter
	wireCommitUs   *telemetry.Counter
}

// peerState is one neighbor's runtime state. mu serializes the peer's
// sessions and all access to its controller; statistics live under
// their own mutex so Status() snapshots never wait on an in-flight
// session (sessions hold mu for their whole — possibly slow — wire
// exchange).
type peerState struct {
	Peer
	initiate bool

	// lat is the peer's session-latency histogram
	// (agentd_session_seconds{peer=...}): wall time of each successful
	// epoch session, fast-forward replay included. Its merged count
	// across peers equals sessions initiated + served — the invariant
	// the telemetry tests pin.
	lat *telemetry.Histogram

	mu sync.Mutex
	// conn is the cached outbound connection (initiator only). Caching
	// the wire Conn rather than the raw net.Conn carries the session's
	// frame buffers across epochs (DESIGN.md §9).
	conn *nexitwire.Conn
	// backoff is the next dial-retry delay. It escalates (doubling, up
	// to MaxDialBackoff) across failed attempts and epochs, and resets
	// only after a successful session, so one old failure cannot slow
	// every future redial but a persistent outage is not hammered.
	backoff time.Duration

	stats struct {
		sync.Mutex
		epochs   int
		ledger   int
		sessions int64
		failures int64
		resyncs  int64
		// replayed counts epochs reconstructed by local replay across
		// all resyncs; with snapshots working it stays well below the
		// controller's lifetime epoch count (tail-only recovery — the
		// invariant the mesh recovery tests pin).
		replayed     int64
		snapRestores int64
		snapSaves    int64
		rounds       int64
		gainUs       int64
		gainPeer     int64
		lastStop     string
		lastErr      string
	}
}

// fail records a session failure.
func (p *peerState) fail(err error) {
	p.stats.Lock()
	defer p.stats.Unlock()
	p.stats.failures++
	p.stats.lastErr = err.Error()
}

// New builds an agent from the configuration.
func New(cfg Config) *Agent {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = runtime.GOMAXPROCS(0)
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = DefaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = DefaultDialBackoff
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	reg := telemetry.NewRegistry(telemetry.Label{Key: "agent", Value: cfg.Name})
	dirSent := telemetry.Label{Key: "dir", Value: "sent"}
	dirRecv := telemetry.Label{Key: "dir", Value: "recv"}
	phase := func(v string) telemetry.Label { return telemetry.Label{Key: "phase", Value: v} }
	return &Agent{
		cfg:    cfg,
		outSem: make(chan struct{}, cfg.MaxSessions),
		inSem:  make(chan struct{}, cfg.MaxSessions),
		peers:  make(map[string]*peerState),
		conns:  make(map[net.Conn]struct{}),

		reg:               reg,
		sessionsActive:    reg.GaugeOf("agentd_sessions_active"),
		sessionsInitiated: reg.CounterOf("agentd_sessions_initiated_total"),
		sessionsServed:    reg.CounterOf("agentd_sessions_served_total"),
		sessionsFailed:    reg.CounterOf("agentd_sessions_failed_total"),
		resyncs:           reg.CounterOf("agentd_resyncs_total"),
		dialRetries:       reg.CounterOf("agentd_dial_retries_total"),
		replayedEpochs:    reg.CounterOf("agentd_replayed_epochs_total"),
		snapshotSaves:     reg.CounterOf("agentd_snapshot_saves_total"),
		snapshotRestores:  reg.CounterOf("agentd_snapshot_restores_total"),
		wireFramesSent:    reg.CounterOf("agentd_wire_frames_total", dirSent),
		wireFramesRecv:    reg.CounterOf("agentd_wire_frames_total", dirRecv),
		wireBytesSent:     reg.CounterOf("agentd_wire_bytes_total", dirSent),
		wireBytesRecv:     reg.CounterOf("agentd_wire_bytes_total", dirRecv),
		wireHelloUs:       reg.CounterOf("agentd_wire_phase_microseconds_total", phase("hello")),
		wirePrefsUs:       reg.CounterOf("agentd_wire_phase_microseconds_total", phase("prefs")),
		wireProposeUs:     reg.CounterOf("agentd_wire_phase_microseconds_total", phase("propose")),
		wireCommitUs:      reg.CounterOf("agentd_wire_phase_microseconds_total", phase("commit")),
	}
}

// Metrics returns the agent's telemetry registry — the source for the
// /metrics exposition and for mesh-wide aggregation.
func (a *Agent) Metrics() *telemetry.Registry { return a.reg }

// foldWire drains a connection's accumulated wire stats into the
// agent's counters. Called between sessions (the Conn discipline), so
// the handles absorb one delta per session, not per frame.
func (a *Agent) foldWire(c *nexitwire.Conn) {
	st := c.TakeStats()
	if st == (nexitwire.WireStats{}) {
		return
	}
	a.wireFramesSent.Add(st.FramesSent)
	a.wireFramesRecv.Add(st.FramesRecv)
	a.wireBytesSent.Add(st.BytesSent)
	a.wireBytesRecv.Add(st.BytesRecv)
	a.wireHelloUs.Add(st.HelloNanos / 1e3)
	a.wirePrefsUs.Add(st.PrefsNanos / 1e3)
	a.wireProposeUs.Add(st.ProposeNanos / 1e3)
	a.wireCommitUs.Add(st.CommitNanos / 1e3)
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.cfg.Name }

// AddPeer registers a neighbor. It must be called before Serve or
// RunEpoch involves the peer.
func (a *Agent) AddPeer(p Peer) error {
	switch {
	case p.Name == "":
		return fmt.Errorf("agentd: peer needs a name")
	case p.Ctl == nil:
		return fmt.Errorf("agentd: peer %s needs a controller", p.Name)
	case p.Workloads == nil:
		return fmt.Errorf("agentd: peer %s needs a workload source", p.Name)
	case p.Side == nexit.SideA && p.Dial == nil:
		return fmt.Errorf("agentd: peer %s: side A initiates and needs Dial", p.Name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.peers[p.Name]; dup {
		return fmt.Errorf("agentd: duplicate peer %s", p.Name)
	}
	ps := &peerState{
		Peer:     p,
		initiate: p.Side == nexit.SideA,
		lat:      a.reg.HistogramOf("agentd_session_seconds", nil, telemetry.Label{Key: "peer", Value: p.Name}),
	}
	a.peers[p.Name] = ps
	// A freshly registered peer resumes from its newest persisted
	// snapshot (a restarted daemon with -state-dir): the resync
	// handshake then only replays the tail since the snapshot instead
	// of the controller's whole lifetime. No snapshot, a corrupt store,
	// or a configuration mismatch all mean starting from wherever the
	// controller already is — usually epoch 0.
	if s := a.cfg.Snapshots; s != nil {
		if restored, err := ps.Ctl.RestoreLatest(maxInt/2, s.Peer(p.Name)); err != nil {
			a.logf("agentd %s: peer %s: snapshot restore: %v", a.cfg.Name, p.Name, err)
		} else if restored >= 0 {
			a.snapshotRestores.Inc()
			ps.stats.Lock()
			ps.stats.snapRestores++
			ps.stats.epochs = restored
			ps.stats.ledger = ps.Ctl.Ledger.Balance
			ps.stats.Unlock()
			a.logf("agentd %s: peer %s restored from snapshot at epoch %d", a.cfg.Name, p.Name, restored)
		}
	}
	return nil
}

const maxInt = int(^uint(0) >> 1)

func (a *Agent) timeout() time.Duration {
	if a.cfg.Timeout > 0 {
		return a.cfg.Timeout
	}
	return nexitwire.DefaultTimeout
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Serve accepts inbound connections on ln until the listener closes
// (return nil) or fails. Each connection is handled on its own
// goroutine and may carry many sessions; the agent dispatches every
// inbound Hello to the peer it names. The listener belongs to the
// caller; close it to stop accepting, then Close to drain.
func (a *Agent) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if a.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		a.mu.Lock()
		if a.closed.Load() {
			a.mu.Unlock()
			conn.Close()
			return nil
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handleConn(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// handleConn serves sessions on one inbound connection until EOF, idle
// timeout, or a session error.
func (a *Agent) handleConn(conn net.Conn) {
	defer conn.Close()
	// One wire Conn per transport connection: its frame buffers are
	// reused by every session the connection carries.
	c := nexitwire.NewConn(conn)
	for {
		hello, err := nexitwire.AcceptHelloConn(c, a.cfg.IdleTimeout)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				a.logf("agentd %s: inbound connection: %v", a.cfg.Name, err)
			}
			return
		}
		p := a.peer(hello.Name)
		if p == nil || p.initiate {
			a.sessionsFailed.Inc()
			reason := fmt.Sprintf("agent %s is not configured to serve peer %q", a.cfg.Name, hello.Name)
			_ = nexitwire.RejectConn(c, a.timeout(), reason)
			a.foldWire(c)
			a.logf("agentd %s: %s", a.cfg.Name, reason)
			return
		}
		a.inSem <- struct{}{}
		err = a.serveSession(p, c, hello)
		<-a.inSem
		// One fold per session (success or failure): every frame the
		// serving side exchanged lands in the wire counters.
		a.foldWire(c)
		if err != nil {
			a.sessionsFailed.Inc()
			a.logf("agentd %s: session from %s: %v", a.cfg.Name, p.Name, err)
			return
		}
	}
}

// peer looks up a registered neighbor.
func (a *Agent) peer(name string) *peerState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peers[name]
}

// peerList snapshots the registered neighbors.
func (a *Agent) peerList() []*peerState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*peerState, 0, len(a.peers))
	for _, p := range a.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// serveSession runs the responder side of one epoch: the peer's
// controller assembles the same table the initiator will propose over,
// the wire session supplies our preferences and audits the outcome, and
// the controller applies and settles the result.
//
// The Hello's version and metric are validated before anything else —
// the documented check order (DESIGN.md §7), and the guarantee that a
// mismatched peer gets its labelled version/metric reject without
// touching controller state. Then the epoch index (v3) is reconciled:
// a responder that is behind — it missed epochs to a failed session or
// a restart — fast-forwards by deterministic local replay (bounded by
// MaxEpochSeek) before serving, so the pair heals without operator
// intervention. A responder that is ahead cannot rewind; it rejects
// with the canonical epoch-skew reason so the initiator can
// fast-forward itself and retry.
func (a *Agent) serveSession(p *peerState, conn *nexitwire.Conn, hello *nexitwire.Hello) error {
	start := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	a.sessionsActive.Add(1)
	defer a.sessionsActive.Add(-1)

	// The epoch in the Hello moves controller state (the fast-forward),
	// so unlike the other universe checks — which ServeSession re-runs
	// — version and metric must be vetted before the epoch is trusted.
	if hello.Version != nexitwire.Version {
		err := fmt.Errorf("nexitwire: peer version %d, want %d", hello.Version, nexitwire.Version)
		_ = nexitwire.RejectConn(conn, a.timeout(), err.Error())
		p.fail(err)
		return fmt.Errorf("agentd: rejected session from %s: %w", p.Name, err)
	}
	if metric := hello.Metric; metric != string(p.Ctl.Metric) &&
		!(metric == "" && p.Ctl.Metric == continuous.MetricDistance) {
		err := fmt.Errorf("nexitwire: metric mismatch: peer negotiates %q, we negotiate %q",
			metric, p.Ctl.Metric)
		_ = nexitwire.RejectConn(conn, a.timeout(), err.Error())
		p.fail(err)
		return fmt.Errorf("agentd: rejected session from %s: %w", p.Name, err)
	}

	if at := p.Ctl.EpochIndex(); at > int(hello.Epoch) {
		err := &nexitwire.EpochSkewError{Initiator: int(hello.Epoch), Responder: at}
		_ = nexitwire.RejectConn(conn, a.timeout(), err.Error())
		p.fail(err)
		return fmt.Errorf("agentd: rejected session from %s: %w", p.Name, err)
	} else if at < int(hello.Epoch) {
		if err := a.seekLocked(p, int(hello.Epoch)); err != nil {
			_ = nexitwire.RejectConn(conn, a.timeout(), err.Error())
			return err
		}
	}

	wAB, wBA := p.Workloads(p.Ctl.EpochIndex())
	var rounds int
	var stopped nexit.StopReason
	p.Ctl.Negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
		resp := &nexitwire.Responder{
			Name:     a.cfg.Name,
			Metric:   string(p.Ctl.Metric),
			Epoch:    int(hello.Epoch),
			Eval:     p.Ctl.NewEvaluator(p.Side),
			Items:    items,
			Defaults: defaults,
			NumAlts:  numAlts,
			Timeout:  a.timeout(),
		}
		sess, err := resp.ServeSessionConn(conn, hello)
		if err != nil {
			return nil, err
		}
		rounds, stopped = sess.Rounds, sess.StopReason
		return &nexit.Result{
			Assign:  sess.Assign,
			GainA:   sess.GainA,
			GainB:   sess.GainB,
			Rounds:  sess.Rounds,
			Stopped: sess.StopReason,
		}, nil
	}
	rep, err := p.Ctl.Epoch(wAB, wBA)
	p.Ctl.Negotiate = nil
	if err != nil {
		p.fail(err)
		return err
	}
	p.record(rep, rounds, stopped)
	a.maybeSnapshotLocked(p)
	// Latency lands exactly where the session counter moves, so a
	// quiesced agent's histogram totals equal its session counters.
	p.lat.Observe(time.Since(start).Seconds())
	a.sessionsServed.Inc()
	return nil
}

// RunEpoch drives one renegotiation epoch with every peer this agent
// initiates to, concurrently up to the session bound, and returns the
// per-peer epoch reports keyed by peer name. Peers this agent only
// serves are untouched (their epochs advance when their initiator
// calls). Errors are joined, one per failing peer; successful peers
// still report.
//
// RunEpoch is idempotent per epoch: a peer whose controller is already
// past the requested epoch is skipped (no session, no report), so a
// caller may safely re-drive an epoch after a partial failure and only
// the peers that actually missed it negotiate. A peer that is behind —
// this agent restarted — is fast-forwarded by deterministic local
// replay first; after a reported epoch skew (the responder is ahead)
// the peer may end up past the requested epoch, in which case its
// report carries the later epoch index.
func (a *Agent) RunEpoch(ctx context.Context, epoch int) (map[string]*continuous.EpochReport, error) {
	type outcome struct {
		peer string
		rep  *continuous.EpochReport
		err  error
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out = make([]outcome, 0)
	)
	for _, p := range a.peerList() {
		if !p.initiate {
			continue
		}
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			select {
			case a.outSem <- struct{}{}:
			case <-ctx.Done():
				// A peer already past the epoch would have been skipped
				// anyway; cancellation of a no-op is not a failure.
				p.mu.Lock()
				done := p.Ctl.EpochIndex() > epoch
				p.mu.Unlock()
				if done {
					return
				}
				// A cancelled epoch is a counted, labelled failure like
				// any other, so it is visible in the status surface.
				err := fmt.Errorf("agentd: epoch %d with %s cancelled: %w", epoch, p.Name, ctx.Err())
				p.fail(err)
				a.sessionsFailed.Inc()
				mu.Lock()
				out = append(out, outcome{p.Name, nil, err})
				mu.Unlock()
				return
			}
			rep, err := a.negotiateEpoch(ctx, p, epoch)
			<-a.outSem
			mu.Lock()
			out = append(out, outcome{p.Name, rep, err})
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	reports := make(map[string]*continuous.EpochReport, len(out))
	var errs []error
	for _, o := range out {
		if o.err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", o.peer, o.err))
			continue
		}
		if o.rep != nil { // nil report: epoch already complete, skipped
			reports[o.peer] = o.rep
		}
	}
	return reports, errors.Join(errs...)
}

// NextEpoch returns the lowest epoch index any initiated peer has yet
// to run — the natural argument for the next RunEpoch call. A freshly
// restarted daemon returns 0 and heals through the resync handshake;
// pairs that resynced ahead are skipped by RunEpoch's idempotency until
// the lagging pairs catch up.
func (a *Agent) NextEpoch() int {
	next := -1
	for _, p := range a.peerList() {
		if !p.initiate {
			continue
		}
		p.mu.Lock()
		at := p.Ctl.EpochIndex()
		p.mu.Unlock()
		if next < 0 || at < next {
			next = at
		}
	}
	if next < 0 {
		return 0
	}
	return next
}

// negotiateEpoch runs the initiator side of one epoch against one peer.
// It is the initiator's half of the resync handshake: a controller
// behind the requested epoch (this daemon restarted) is fast-forwarded
// by local replay first, one already past it skips (idempotent retry),
// and a responder that reports itself ahead triggers a fast-forward to
// its epoch and a single retry.
func (a *Agent) negotiateEpoch(ctx context.Context, p *peerState, epoch int) (*continuous.EpochReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a.sessionsActive.Add(1)
	defer a.sessionsActive.Add(-1)

	if at := p.Ctl.EpochIndex(); at > epoch {
		return nil, nil // already negotiated; idempotent skip
	} else if at < epoch {
		if err := a.seekLocked(p, epoch); err != nil {
			a.sessionsFailed.Inc()
			return nil, err
		}
	}
	rep, err := a.sessionLocked(ctx, p, epoch)
	if err == nil {
		return rep, nil
	}
	var skew *nexitwire.EpochSkewError
	if errors.As(err, &skew) && skew.Responder > epoch {
		// The responder lived through epochs we missed (we restarted and
		// were driven from scratch). Catch up locally and retry once at
		// its epoch; the report returned is for that later epoch.
		if serr := a.seekLocked(p, skew.Responder); serr != nil {
			a.sessionsFailed.Inc()
			return nil, serr
		}
		return a.sessionLocked(ctx, p, skew.Responder)
	}
	return nil, err
}

// seekLocked fast-forwards the peer's controller to the given epoch:
// first a snapshot restore when a store is configured (jumping straight
// to the newest usable snapshot at or below the target), then
// deterministic local replay of the remaining tail, counting the resync
// and the epochs actually replayed. The target comes from the remote
// endpoint, so the replayed tail is bounded by MaxEpochSeek — a peer
// demanding an absurd fast-forward gets a labelled refusal, not hours
// of replay and an unrewindable controller. Callers hold p.mu.
func (a *Agent) seekLocked(p *peerState, epoch int) error {
	from := p.Ctl.EpochIndex()
	restored := -1
	if s := a.cfg.Snapshots; s != nil {
		var err error
		if restored, err = p.Ctl.RestoreLatest(epoch, s.Peer(p.Name)); err != nil {
			a.logf("agentd %s: resync with %s: snapshot restore: %v", a.cfg.Name, p.Name, err)
		} else if restored >= 0 {
			a.snapshotRestores.Inc()
		}
	}
	tailFrom := p.Ctl.EpochIndex()
	if epoch-tailFrom > MaxEpochSeek {
		err := fmt.Errorf("agentd: resync with %s: epoch %d is %d epochs ahead of %d, beyond the replay bound %d",
			p.Name, epoch, epoch-tailFrom, tailFrom, MaxEpochSeek)
		p.fail(err)
		return err
	}
	if err := p.Ctl.SeekEpoch(epoch, p.Workloads); err != nil {
		err = fmt.Errorf("agentd: resync with %s: %w", p.Name, err)
		p.fail(err)
		return err
	}
	a.resyncs.Inc()
	a.replayedEpochs.Add(int64(epoch - tailFrom))
	p.stats.Lock()
	p.stats.resyncs++
	p.stats.replayed += int64(epoch - tailFrom)
	if restored >= 0 {
		p.stats.snapRestores++
	}
	p.stats.epochs = p.Ctl.EpochIndex()
	p.stats.ledger = p.Ctl.Ledger.Balance
	p.stats.Unlock()
	if restored >= 0 {
		a.logf("agentd %s: resynced peer %s from epoch %d to %d (snapshot to %d, replayed %d)",
			a.cfg.Name, p.Name, from, epoch, restored, epoch-tailFrom)
	} else {
		a.logf("agentd %s: resynced peer %s from epoch %d to %d", a.cfg.Name, p.Name, from, epoch)
	}
	return nil
}

// maybeSnapshotLocked persists the peer's state when its epoch index
// crosses a snapshot-interval boundary. The capture (a deep copy) runs
// under the session lock the caller already holds — it must, for a
// consistent cut — but the encode and disk write run on their own
// goroutine, off the hot path; Wait drains them. A failed write only
// costs future recovery speed, so it is logged, not propagated.
func (a *Agent) maybeSnapshotLocked(p *peerState) {
	s := a.cfg.Snapshots
	if s == nil {
		return
	}
	interval := a.cfg.SnapshotInterval
	if interval <= 0 {
		interval = DefaultSnapshotInterval
	}
	if idx := p.Ctl.EpochIndex(); idx == 0 || idx%interval != 0 {
		return
	}
	st := p.Ctl.Snapshot()
	a.snapWG.Add(1)
	go func() {
		defer a.snapWG.Done()
		if err := s.Save(p.Name, st); err != nil {
			a.logf("agentd %s: snapshot of peer %s at epoch %d: %v", a.cfg.Name, p.Name, st.Epoch, err)
			return
		}
		a.snapshotSaves.Inc()
		p.stats.Lock()
		p.stats.snapSaves++
		p.stats.Unlock()
	}()
}

// sessionLocked dials (or reuses) the peer's connection and runs one
// wire session for the given epoch, with failure bookkeeping. Callers
// hold p.mu and must have the controller at exactly that epoch.
func (a *Agent) sessionLocked(ctx context.Context, p *peerState, epoch int) (*continuous.EpochReport, error) {
	start := time.Now()
	conn, err := a.ensureConnLocked(ctx, p)
	if err != nil {
		p.fail(err)
		a.sessionsFailed.Inc()
		return nil, err
	}
	wAB, wBA := p.Workloads(epoch)
	var rounds int
	var stopped nexit.StopReason
	p.Ctl.Negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
		ini := &nexitwire.Initiator{
			Name:    a.cfg.Name,
			Cfg:     cfg,
			Metric:  string(p.Ctl.Metric),
			Epoch:   epoch,
			Eval:    p.Ctl.NewEvaluator(p.Side),
			Timeout: a.timeout(),
		}
		res, err := ini.RunConn(conn, items, defaults, numAlts)
		if err != nil {
			return nil, err
		}
		rounds, stopped = res.Rounds, res.Stopped
		return res, nil
	}
	rep, err := p.Ctl.Epoch(wAB, wBA)
	p.Ctl.Negotiate = nil
	a.foldWire(conn) // drain the session's frames before any Close
	if err != nil {
		// The connection's session state is unknown; drop it so the next
		// epoch redials from scratch.
		conn.Close()
		p.conn = nil
		p.fail(err)
		a.sessionsFailed.Inc()
		return nil, err
	}
	p.record(rep, rounds, stopped)
	a.maybeSnapshotLocked(p)
	p.lat.Observe(time.Since(start).Seconds())
	p.backoff = 0 // a healthy session clears the dial-backoff ladder
	a.sessionsInitiated.Inc()
	return rep, nil
}

// ensureConnLocked returns the peer's cached connection or dials a new
// one. The retry delay escalates across attempts and epochs (peerState
// .backoff) and the waits observe ctx, so cancellation — SIGINT in the
// daemon — interrupts the ladder instead of sleeping it out. Callers
// hold p.mu.
func (a *Agent) ensureConnLocked(ctx context.Context, p *peerState) (*nexitwire.Conn, error) {
	if p.conn != nil {
		return p.conn, nil
	}
	if p.Dial == nil {
		return nil, fmt.Errorf("agentd: peer %s has no dialer", p.Name)
	}
	if p.backoff <= 0 {
		p.backoff = a.cfg.DialBackoff
	}
	var lastErr error
	for attempt := 0; attempt < a.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			a.dialRetries.Inc()
			timer := time.NewTimer(p.backoff)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, fmt.Errorf("agentd: dial %s: %w", p.Name, ctx.Err())
			}
			if p.backoff *= 2; p.backoff > MaxDialBackoff {
				p.backoff = MaxDialBackoff
			}
		}
		conn, err := p.Dial()
		if err == nil {
			p.conn = nexitwire.NewConn(conn)
			return p.conn, nil
		}
		lastErr = err
		a.logf("agentd %s: dial %s attempt %d: %v", a.cfg.Name, p.Name, attempt+1, err)
	}
	return nil, fmt.Errorf("agentd: dial %s: gave up after %d attempts: %w", p.Name, a.cfg.DialAttempts, lastErr)
}

// record folds a successful epoch into the peer's statistics. Callers
// hold p.mu (the controller snapshot requires it).
func (p *peerState) record(rep *continuous.EpochReport, rounds int, stopped nexit.StopReason) {
	epochs := p.Ctl.EpochIndex()
	ledger := p.Ctl.Ledger.Balance
	p.stats.Lock()
	defer p.stats.Unlock()
	p.stats.epochs = epochs
	p.stats.ledger = ledger
	p.stats.sessions++
	p.stats.rounds += int64(rounds)
	if p.Side == nexit.SideA {
		p.stats.gainUs += int64(rep.GainA)
		p.stats.gainPeer += int64(rep.GainB)
	} else {
		p.stats.gainUs += int64(rep.GainB)
		p.stats.gainPeer += int64(rep.GainA)
	}
	if rep.Negotiated > 0 {
		p.stats.lastStop = stopped.String()
	}
}

// Close stops the agent: the cached outbound connections are closed
// (which ends the remote neighbors' serving loops) and so are any
// inbound connections still open. Close does not wait; call Wait after
// closing the agent's listener to drain in-flight handlers.
func (a *Agent) Close() error {
	a.closed.Store(true)
	for _, p := range a.peerList() {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	a.mu.Lock()
	for conn := range a.conns {
		conn.Close()
	}
	a.mu.Unlock()
	return nil
}

// Wait blocks until every inbound connection handler has exited and
// every in-flight snapshot write has landed. Close the serving listener
// and the agent first.
func (a *Agent) Wait() {
	a.wg.Wait()
	a.snapWG.Wait()
}

// Package agentd is the long-running negotiation daemon of the paper's
// §6 deployment model: one process represents one ISP and negotiates
// *continually* with *every* neighbor. Where cmd/nexitagent used to be a
// one-shot, single-pair demo, an Agent serves many neighbors at once —
// a listener accepts inbound sessions, a dialer (with retry/backoff)
// opens outbound ones, and a per-peer continuous.Controller renegotiates
// the pair's flows epoch after epoch over the nexitwire protocol.
//
// Conventions. Every neighbor pair is oriented like pairsim.System:
// Pair.A is the wire initiator (protocol side A) and Pair.B the
// responder. Between two daemons exactly one direction of sessions
// exists, so the dial graph is acyclic and bounded session limits
// cannot deadlock across agents. One connection per neighbor carries
// all epochs back to back (nexitwire session reuse); each inbound Hello
// is dispatched to the peer it names.
//
// Both endpoints must assemble identical negotiation tables each epoch
// — in deployment because both ISPs observe the same traffic, here
// because both sides derive the epoch's workload deterministically from
// the shared dataset seed (see Peer.Workloads). Mismatched tables fail
// fast at Hello time via the workload hash; a stalled or aborting peer
// surfaces as a counted, per-peer session failure rather than a hung
// daemon.
//
// Negotiation is metric-generic per peer: each peer's controller names
// its objective (continuous.Metric — distance, bandwidth, or
// Fortz–Thorup) and the agent builds the matching evaluator fresh each
// epoch and carries the metric in the wire Hello, so one daemon can
// negotiate distance with one neighbor and bandwidth with another. A
// neighbor configured for a different metric is rejected cleanly at
// session open (labelled reason, no epoch advances on either side —
// never a desync). Invariants: epochs are deterministic in (system,
// metric, seed) and a failed epoch leaves both controllers where they
// were, so the mesh harness can pin the concurrent wire outcome to the
// serial in-process reference for every metric.
package agentd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/continuous"
	"repro/internal/nexit"
	"repro/internal/nexitwire"
	"repro/internal/traffic"
)

// Default daemon parameters.
const (
	// DefaultDialAttempts bounds outbound connection retries per epoch.
	DefaultDialAttempts = 5
	// DefaultDialBackoff is the first retry delay; it doubles per retry.
	DefaultDialBackoff = 20 * time.Millisecond
	// DefaultIdleTimeout bounds how long a serving connection may sit
	// between sessions before the agent gives up on it.
	DefaultIdleTimeout = 5 * time.Minute
)

// WorkloadFunc supplies the two directional workloads of one epoch, in
// the pair's A->B orientation. Both endpoints of a pair must return
// identical flows for the same epoch (the workload hash enforces it).
type WorkloadFunc func(epoch int) (wAB, wBA *traffic.Workload)

// Peer configures one neighbor of the agent.
type Peer struct {
	// Name is the remote agent's name, matched against inbound Hellos.
	Name string
	// Side says which side of the pair's A->B oriented system this
	// agent is. SideA initiates sessions (and needs Dial); SideB serves
	// them.
	Side nexit.Side
	// Ctl drives the pair's continuous renegotiation. Its system must
	// be oriented with this agent on Side. The controller's Metric is
	// the pair's negotiation objective: it selects the evaluator built
	// each epoch, travels in the wire Hello, and must match the
	// neighbor's configuration (mismatches reject at session open).
	Ctl *continuous.Controller
	// Workloads derives the epoch workloads shared with the neighbor.
	Workloads WorkloadFunc
	// Dial opens the transport to the neighbor (required for SideA).
	// The agent caches the connection across epochs and redials — with
	// backoff — only after a failure.
	Dial func() (net.Conn, error)
}

// Config configures an Agent.
type Config struct {
	// Name identifies this agent in Hello frames and status output.
	Name string
	// MaxSessions bounds concurrent sessions, separately for the
	// initiated and the served direction (the two bounds are separate
	// so that mutually negotiating daemons cannot deadlock on each
	// other's limits). Zero selects runtime.GOMAXPROCS(0).
	MaxSessions int
	// Timeout bounds each wire exchange within a session
	// (nexitwire.DefaultTimeout when zero).
	Timeout time.Duration
	// DialAttempts and DialBackoff shape outbound connection retries
	// (exponential backoff starting at DialBackoff).
	DialAttempts int
	DialBackoff  time.Duration
	// IdleTimeout bounds the wait for the next session on a serving
	// connection (DefaultIdleTimeout when zero).
	IdleTimeout time.Duration
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
}

// Agent is one ISP's negotiation daemon.
type Agent struct {
	cfg    Config
	outSem chan struct{}
	inSem  chan struct{}

	mu    sync.Mutex
	peers map[string]*peerState
	conns map[net.Conn]struct{} // inbound connections, for Close

	closed atomic.Bool
	wg     sync.WaitGroup // inbound connection handlers

	sessionsActive    atomic.Int64
	sessionsInitiated atomic.Int64
	sessionsServed    atomic.Int64
	sessionsFailed    atomic.Int64
}

// peerState is one neighbor's runtime state. mu serializes the peer's
// sessions and all access to its controller; statistics live under
// their own mutex so Status() snapshots never wait on an in-flight
// session (sessions hold mu for their whole — possibly slow — wire
// exchange).
type peerState struct {
	Peer
	initiate bool

	mu   sync.Mutex
	conn net.Conn // cached outbound connection (initiator only)

	stats struct {
		sync.Mutex
		epochs   int
		ledger   int
		sessions int64
		failures int64
		rounds   int64
		gainUs   int64
		gainPeer int64
		lastStop string
		lastErr  string
	}
}

// fail records a session failure.
func (p *peerState) fail(err error) {
	p.stats.Lock()
	defer p.stats.Unlock()
	p.stats.failures++
	p.stats.lastErr = err.Error()
}

// New builds an agent from the configuration.
func New(cfg Config) *Agent {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = runtime.GOMAXPROCS(0)
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = DefaultDialAttempts
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = DefaultDialBackoff
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	return &Agent{
		cfg:    cfg,
		outSem: make(chan struct{}, cfg.MaxSessions),
		inSem:  make(chan struct{}, cfg.MaxSessions),
		peers:  make(map[string]*peerState),
		conns:  make(map[net.Conn]struct{}),
	}
}

// Name returns the agent's name.
func (a *Agent) Name() string { return a.cfg.Name }

// AddPeer registers a neighbor. It must be called before Serve or
// RunEpoch involves the peer.
func (a *Agent) AddPeer(p Peer) error {
	switch {
	case p.Name == "":
		return fmt.Errorf("agentd: peer needs a name")
	case p.Ctl == nil:
		return fmt.Errorf("agentd: peer %s needs a controller", p.Name)
	case p.Workloads == nil:
		return fmt.Errorf("agentd: peer %s needs a workload source", p.Name)
	case p.Side == nexit.SideA && p.Dial == nil:
		return fmt.Errorf("agentd: peer %s: side A initiates and needs Dial", p.Name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.peers[p.Name]; dup {
		return fmt.Errorf("agentd: duplicate peer %s", p.Name)
	}
	a.peers[p.Name] = &peerState{Peer: p, initiate: p.Side == nexit.SideA}
	return nil
}

func (a *Agent) timeout() time.Duration {
	if a.cfg.Timeout > 0 {
		return a.cfg.Timeout
	}
	return nexitwire.DefaultTimeout
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Serve accepts inbound connections on ln until the listener closes
// (return nil) or fails. Each connection is handled on its own
// goroutine and may carry many sessions; the agent dispatches every
// inbound Hello to the peer it names. The listener belongs to the
// caller; close it to stop accepting, then Close to drain.
func (a *Agent) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if a.closed.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		a.mu.Lock()
		if a.closed.Load() {
			a.mu.Unlock()
			conn.Close()
			return nil
		}
		a.conns[conn] = struct{}{}
		a.mu.Unlock()
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.handleConn(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

// handleConn serves sessions on one inbound connection until EOF, idle
// timeout, or a session error.
func (a *Agent) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		hello, err := nexitwire.AcceptHello(conn, a.cfg.IdleTimeout)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				a.logf("agentd %s: inbound connection: %v", a.cfg.Name, err)
			}
			return
		}
		p := a.peer(hello.Name)
		if p == nil || p.initiate {
			a.sessionsFailed.Add(1)
			reason := fmt.Sprintf("agent %s is not configured to serve peer %q", a.cfg.Name, hello.Name)
			_ = nexitwire.Reject(conn, a.timeout(), reason)
			a.logf("agentd %s: %s", a.cfg.Name, reason)
			return
		}
		a.inSem <- struct{}{}
		err = a.serveSession(p, conn, hello)
		<-a.inSem
		if err != nil {
			a.sessionsFailed.Add(1)
			a.logf("agentd %s: session from %s: %v", a.cfg.Name, p.Name, err)
			return
		}
	}
}

// peer looks up a registered neighbor.
func (a *Agent) peer(name string) *peerState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peers[name]
}

// peerList snapshots the registered neighbors.
func (a *Agent) peerList() []*peerState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*peerState, 0, len(a.peers))
	for _, p := range a.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// serveSession runs the responder side of one epoch: the peer's
// controller assembles the same table the initiator will propose over,
// the wire session supplies our preferences and audits the outcome, and
// the controller applies and settles the result.
func (a *Agent) serveSession(p *peerState, conn net.Conn, hello *nexitwire.Hello) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	a.sessionsActive.Add(1)
	defer a.sessionsActive.Add(-1)

	wAB, wBA := p.Workloads(p.Ctl.EpochIndex())
	var rounds int
	var stopped nexit.StopReason
	p.Ctl.Negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
		resp := &nexitwire.Responder{
			Name:     a.cfg.Name,
			Metric:   string(p.Ctl.Metric),
			Eval:     p.Ctl.NewEvaluator(p.Side),
			Items:    items,
			Defaults: defaults,
			NumAlts:  numAlts,
			Timeout:  a.timeout(),
		}
		sess, err := resp.ServeSession(conn, hello)
		if err != nil {
			return nil, err
		}
		rounds, stopped = sess.Rounds, sess.StopReason
		return &nexit.Result{
			Assign:  sess.Assign,
			GainA:   sess.GainA,
			GainB:   sess.GainB,
			Rounds:  sess.Rounds,
			Stopped: sess.StopReason,
		}, nil
	}
	rep, err := p.Ctl.Epoch(wAB, wBA)
	p.Ctl.Negotiate = nil
	if err != nil {
		p.fail(err)
		return err
	}
	p.record(rep, rounds, stopped)
	a.sessionsServed.Add(1)
	return nil
}

// RunEpoch drives one renegotiation epoch with every peer this agent
// initiates to, concurrently up to the session bound, and returns the
// per-peer epoch reports keyed by peer name. Peers this agent only
// serves are untouched (their epochs advance when their initiator
// calls). Errors are joined, one per failing peer; successful peers
// still report.
func (a *Agent) RunEpoch(ctx context.Context, epoch int) (map[string]*continuous.EpochReport, error) {
	type outcome struct {
		peer string
		rep  *continuous.EpochReport
		err  error
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		out = make([]outcome, 0)
	)
	for _, p := range a.peerList() {
		if !p.initiate {
			continue
		}
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			select {
			case a.outSem <- struct{}{}:
			case <-ctx.Done():
				mu.Lock()
				out = append(out, outcome{p.Name, nil, ctx.Err()})
				mu.Unlock()
				return
			}
			rep, err := a.negotiateEpoch(p, epoch)
			<-a.outSem
			mu.Lock()
			out = append(out, outcome{p.Name, rep, err})
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	reports := make(map[string]*continuous.EpochReport, len(out))
	var errs []error
	for _, o := range out {
		if o.err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", o.peer, o.err))
			continue
		}
		reports[o.peer] = o.rep
	}
	return reports, errors.Join(errs...)
}

// negotiateEpoch runs the initiator side of one epoch against one peer.
func (a *Agent) negotiateEpoch(p *peerState, epoch int) (*continuous.EpochReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a.sessionsActive.Add(1)
	defer a.sessionsActive.Add(-1)

	if at := p.Ctl.EpochIndex(); at != epoch {
		err := fmt.Errorf("agentd: epoch skew: peer %s is at epoch %d, asked to run %d", p.Name, at, epoch)
		p.fail(err)
		a.sessionsFailed.Add(1)
		return nil, err
	}
	conn, err := a.ensureConnLocked(p)
	if err != nil {
		p.fail(err)
		a.sessionsFailed.Add(1)
		return nil, err
	}
	wAB, wBA := p.Workloads(epoch)
	var rounds int
	var stopped nexit.StopReason
	p.Ctl.Negotiate = func(cfg nexit.Config, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
		ini := &nexitwire.Initiator{
			Name:    a.cfg.Name,
			Cfg:     cfg,
			Metric:  string(p.Ctl.Metric),
			Eval:    p.Ctl.NewEvaluator(p.Side),
			Timeout: a.timeout(),
		}
		res, err := ini.Run(conn, items, defaults, numAlts)
		if err != nil {
			return nil, err
		}
		rounds, stopped = res.Rounds, res.Stopped
		return res, nil
	}
	rep, err := p.Ctl.Epoch(wAB, wBA)
	p.Ctl.Negotiate = nil
	if err != nil {
		// The connection's session state is unknown; drop it so the next
		// epoch redials from scratch.
		conn.Close()
		p.conn = nil
		p.fail(err)
		a.sessionsFailed.Add(1)
		return nil, err
	}
	p.record(rep, rounds, stopped)
	a.sessionsInitiated.Add(1)
	return rep, nil
}

// ensureConnLocked returns the peer's cached connection or dials a new
// one with exponential backoff. Callers hold p.mu.
func (a *Agent) ensureConnLocked(p *peerState) (net.Conn, error) {
	if p.conn != nil {
		return p.conn, nil
	}
	if p.Dial == nil {
		return nil, fmt.Errorf("agentd: peer %s has no dialer", p.Name)
	}
	backoff := a.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < a.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := p.Dial()
		if err == nil {
			p.conn = conn
			return conn, nil
		}
		lastErr = err
		a.logf("agentd %s: dial %s attempt %d: %v", a.cfg.Name, p.Name, attempt+1, err)
	}
	return nil, fmt.Errorf("agentd: dial %s: gave up after %d attempts: %w", p.Name, a.cfg.DialAttempts, lastErr)
}

// record folds a successful epoch into the peer's statistics. Callers
// hold p.mu (the controller snapshot requires it).
func (p *peerState) record(rep *continuous.EpochReport, rounds int, stopped nexit.StopReason) {
	epochs := p.Ctl.EpochIndex()
	ledger := p.Ctl.Ledger.Balance
	p.stats.Lock()
	defer p.stats.Unlock()
	p.stats.epochs = epochs
	p.stats.ledger = ledger
	p.stats.sessions++
	p.stats.rounds += int64(rounds)
	if p.Side == nexit.SideA {
		p.stats.gainUs += int64(rep.GainA)
		p.stats.gainPeer += int64(rep.GainB)
	} else {
		p.stats.gainUs += int64(rep.GainB)
		p.stats.gainPeer += int64(rep.GainA)
	}
	if rep.Negotiated > 0 {
		p.stats.lastStop = stopped.String()
	}
}

// Close stops the agent: the cached outbound connections are closed
// (which ends the remote neighbors' serving loops) and so are any
// inbound connections still open. Close does not wait; call Wait after
// closing the agent's listener to drain in-flight handlers.
func (a *Agent) Close() error {
	a.closed.Store(true)
	for _, p := range a.peerList() {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	a.mu.Lock()
	for conn := range a.conns {
		conn.Close()
	}
	a.mu.Unlock()
	return nil
}

// Wait blocks until every inbound connection handler has exited. Close
// the serving listener and the agent first.
func (a *Agent) Wait() { a.wg.Wait() }

package agentd

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/continuous"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/snapshot"
)

// corruptAllSnapshots flips a byte in every snapshot file under dir.
func corruptAllSnapshots(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no snapshot files to corrupt; the store never wrote")
	}
}

// newSnapResponder serves agent "b" with a snapshot store over the
// given state directory, so a later call with the same directory is a
// cold restart that resumes from the persisted snapshots.
func newSnapResponder(t *testing.T, sys *pairsim.System, wl WorkloadFunc, dir string) (*Agent, string, func()) {
	t.Helper()
	store, err := snapshot.NewStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{
		Name: "b", Timeout: 10 * time.Second, Logf: t.Logf,
		Snapshots: store, SnapshotInterval: 2,
	})
	if err := b.AddPeer(Peer{
		Name: "a", Side: nexit.SideB, Ctl: continuous.New(sys, 10), Workloads: wl,
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go b.Serve(ln)
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ln.Close()
			b.Close()
			b.Wait() // drains in-flight snapshot writes too
		})
	}
	t.Cleanup(stop)
	return b, ln.Addr().String(), stop
}

// TestResponderSnapshotRecovery is durable recovery end to end: a
// responder with a state directory lives through several epochs
// (writing snapshots every 2), dies, and is cold-restarted over the
// same directory. The restart must resume from the newest snapshot —
// visible as a snapshot restore and a tail-only replay in status, not a
// full epoch-0 replay — and every post-recovery epoch must still match
// the serial in-process reference exactly.
func TestResponderSnapshotRecovery(t *testing.T) {
	const healthy, total = 5, 7 // snapshots land at epoch indexes 2 and 4
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	dir := t.TempDir()
	b1, addr1, stop1 := newSnapResponder(t, sys, wl, dir)

	var addr atomic.Value
	addr.Store(addr1)
	a := New(Config{
		Name: "a", Timeout: 5 * time.Second,
		DialBackoff: time.Millisecond, Logf: t.Logf,
	})
	if err := a.AddPeer(Peer{
		Name: "b", Side: nexit.SideA, Ctl: continuous.New(sys, 10), Workloads: wl,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", addr.Load().(string)) },
	}); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ref := continuous.New(sys, 10)
	runEpoch := func(epoch int) {
		t.Helper()
		reports, err := a.RunEpoch(context.Background(), epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		wAB, wBA := wl(epoch)
		want, err := ref.Epoch(wAB, wBA)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports["b"], want) {
			t.Errorf("epoch %d diverged from the serial reference", epoch)
		}
	}
	for epoch := 0; epoch < healthy; epoch++ {
		runEpoch(epoch)
	}
	waitServed(t, b1, healthy)

	// Kill the responder. stop drains the agent, so both interval
	// snapshots are durably on disk before the restart.
	stop1()
	if st := b1.Status(); st.SnapshotSaves != 2 {
		t.Fatalf("first responder persisted %d snapshots, want 2", st.SnapshotSaves)
	}

	// Cold restart over the same state directory: AddPeer resumes the
	// controller from the epoch-4 snapshot before any session arrives.
	b2, addr2, _ := newSnapResponder(t, sys, wl, dir)
	addr.Store(addr2)
	if st := b2.Status(); st.SnapshotRestores != 1 || st.Peers[0].Epochs != 4 {
		t.Fatalf("restart restored %d snapshots to epoch %d, want 1 snapshot to epoch 4",
			st.SnapshotRestores, st.Peers[0].Epochs)
	}

	// The initiator's cached connection died with b1; the first attempt
	// fails and the retry heals through the fresh responder.
	if _, err := a.RunEpoch(context.Background(), healthy); err != nil {
		runEpoch(healthy) // idempotent retry after the broken-conn failure
	} else {
		wAB, wBA := wl(healthy) // keep the reference in step
		if _, err := ref.Epoch(wAB, wBA); err != nil {
			t.Fatal(err)
		}
	}
	for epoch := healthy + 1; epoch < total; epoch++ {
		runEpoch(epoch)
	}

	st := waitServed(t, b2, total-healthy)
	if st.Peers[0].Epochs != total {
		t.Errorf("restarted responder is at epoch %d, want %d", st.Peers[0].Epochs, total)
	}
	// Tail-only recovery: the resync replayed exactly the one epoch
	// between the newest snapshot (4) and the requested epoch (5) —
	// never the controller's whole lifetime.
	if st.Resyncs != 1 || st.Peers[0].Resyncs != 1 {
		t.Errorf("restarted responder counted %d/%d resyncs, want 1/1", st.Resyncs, st.Peers[0].Resyncs)
	}
	if st.ReplayedEpochs != 1 || st.Peers[0].ReplayedEpochs != 1 {
		t.Errorf("restart replayed %d/%d epochs, want tail-only 1/1 (full replay would be %d)",
			st.ReplayedEpochs, st.Peers[0].ReplayedEpochs, healthy)
	}
	if st.Peers[0].SnapshotRestores != 1 {
		t.Errorf("peer counted %d snapshot restores, want 1", st.Peers[0].SnapshotRestores)
	}
}

// TestSnapshotCorruptStateDirDegrades: an agent pointed at a state
// directory full of corrupt snapshots must come up at epoch 0 and heal
// by ordinary replay — the fallback ladder's last rung, not a crash.
func TestSnapshotCorruptStateDirDegrades(t *testing.T) {
	sys := testSystem(t, 1)
	wl := testWorkloads(sys, 42)
	dir := t.TempDir()

	// Seed the directory with snapshots, then corrupt every one.
	b1, _, stop1 := newSnapResponder(t, sys, wl, dir)
	p := b1.peer("a")
	p.mu.Lock()
	for epoch := 0; epoch < 5; epoch++ {
		if _, err := p.Ctl.Epoch(wl(epoch)); err != nil {
			t.Fatal(err)
		}
		b1.maybeSnapshotLocked(p)
	}
	p.mu.Unlock()
	stop1()
	corruptAllSnapshots(t, dir)

	b2, _, _ := newSnapResponder(t, sys, wl, dir)
	if st := b2.Status(); st.SnapshotRestores != 0 || st.Peers[0].Epochs != 0 {
		t.Fatalf("corrupt store: restored %d snapshots to epoch %d, want none and epoch 0",
			st.SnapshotRestores, st.Peers[0].Epochs)
	}
}

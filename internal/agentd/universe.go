package agentd

import (
	"fmt"
	"sync"

	"repro/internal/continuous"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// AgentName is the canonical daemon name of the ISP at dataset index
// i. Every party of a mesh — cmd/nexitagent daemons and the
// internal/mesh harness alike — must use it, since inbound sessions
// are dispatched by the name carried in the Hello.
func AgentName(i int) string { return fmt.Sprintf("isp%03d", i) }

// PairKey derives the stable drift-stream key of neighbor pair (i, j);
// every party driving the pair — both its daemons and any serial
// reference — must use the same key.
func PairKey(i, j, numISPs int) int { return i*numISPs + j }

// baseWorkloads memoizes each pair's undrifted gravity workloads. The
// base traffic is deterministic in the pair alone (epoch independent),
// yet EpochWorkloads used to rebuild it every epoch on every endpoint
// — a top allocation site in the session profile (DESIGN.md §9). The
// sync.Map slot plus per-pair sync.Once make the derivation
// exactly-once even when both endpoints of a pair race; the cached
// workloads are shared read-only (Drift copies the flows it perturbs).
var baseWorkloads sync.Map // *topology.Pair -> *basePairWorkloads

// basePairWorkloads is one pair's slot in the base-workload cache.
type basePairWorkloads struct {
	once   sync.Once
	ab, ba *traffic.Workload
}

// pairBaseWorkloads returns the pair's undrifted gravity workloads in
// both directions, computing them on first use.
func pairBaseWorkloads(pair *topology.Pair) (ab, ba *traffic.Workload) {
	e, ok := baseWorkloads.Load(pair)
	if !ok {
		e, _ = baseWorkloads.LoadOrStore(pair, new(basePairWorkloads))
	}
	w := e.(*basePairWorkloads)
	w.once.Do(func() {
		w.ab = traffic.New(pair.A, pair.B, traffic.Gravity, nil)
		w.ba = traffic.New(pair.B, pair.A, traffic.Gravity, nil)
	})
	return w.ab, w.ba
}

// EpochWorkloads deterministically derives one epoch's directional
// workloads for a pair: the gravity-model base traffic perturbed by the
// epoch's private drift stream. The stream depends only on (seed, key,
// epoch) — never on scheduling — which is what lets concurrent
// sessions reproduce a serial reference exactly, and what stands in
// for both ISPs observing the same traffic in deployment.
func EpochWorkloads(pair *topology.Pair, seed int64, key, epoch int, volatility float64) (wAB, wBA *traffic.Workload) {
	baseAB, baseBA := pairBaseWorkloads(pair)
	rng := runner.PairRand(seed, key*1_000_003+epoch)
	return continuous.Drift(baseAB, volatility, rng), continuous.Drift(baseBA, volatility, rng)
}

// Package pairsim ties a pair of neighboring ISPs to their intra-ISP
// routing tables and evaluates flow alternatives: for a flow and a choice
// of interconnection it computes the distance traversed inside each ISP,
// the links used, and per-link loads for whole assignments.
//
// In the paper's terms (§4), "an alternative corresponds to an
// interconnection for a flow"; everything the negotiation, baselines, and
// globally optimal routing need to know about an alternative is computed
// here.
package pairsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// TableCache memoizes routing tables per ISP so that the many pairs
// sharing an ISP reuse its (expensive) all-pairs computation. It is
// safe for concurrent use: the experiment runner evaluates pairs from
// many goroutines, and a per-ISP sync.Once guarantees each table is
// computed exactly once even when several pairs race on the same ISP
// (losers block until the winner's table is ready rather than
// recomputing it).
type TableCache struct {
	tables sync.Map // *topology.ISP -> *cacheEntry
}

// cacheEntry is one ISP's slot in the cache.
type cacheEntry struct {
	once  sync.Once
	table *routing.Table
}

// NewTableCache returns an empty cache.
func NewTableCache() *TableCache {
	return &TableCache{}
}

// Get returns the routing table for isp, computing it on first use.
func (c *TableCache) Get(isp *topology.ISP) *routing.Table {
	e, ok := c.tables.Load(isp)
	if !ok {
		// Miss: race to install the entry; the per-ISP Once below makes
		// the computation itself exactly-once regardless of who wins.
		e, _ = c.tables.LoadOrStore(isp, new(cacheEntry))
	}
	entry := e.(*cacheEntry)
	entry.once.Do(func() { entry.table = routing.New(isp) })
	return entry.table
}

// Warm computes the routing tables of every given ISP, sharding the
// per-ISP all-pairs Dijkstra across workers goroutines (0 =
// GOMAXPROCS). It is the cold-start path of an experiment run: tables
// are otherwise computed lazily by the first pair that touches each
// ISP, which serializes most of the Dijkstra cost behind the first few
// pairs. Warming is idempotent, safe concurrently with Get, and changes
// no result — tables depend only on the ISP.
func (c *TableCache) Warm(isps []*topology.ISP, workers int) {
	runner.ForEachIndex(len(isps), workers, func(i int) { c.Get(isps[i]) })
}

// System is a directed view of an ISP pair: traffic flows from Up
// (upstream, contains flow sources) to Down (downstream, contains flow
// destinations) across the pair's interconnections.
type System struct {
	Pair *topology.Pair // Pair.A is the upstream, Pair.B the downstream
	Up   *routing.Table // routing inside the upstream ISP
	Down *routing.Table // routing inside the downstream ISP
}

// New builds a System for traffic flowing A->B in the pair. Routing
// tables come from the cache (pass nil to compute fresh tables).
func New(pair *topology.Pair, cache *TableCache) *System {
	if cache == nil {
		cache = NewTableCache()
	}
	return &System{
		Pair: pair,
		Up:   cache.Get(pair.A),
		Down: cache.Get(pair.B),
	}
}

// Reverse returns the System for traffic flowing in the opposite
// direction (B->A). Routing tables are shared, not recomputed.
func (s *System) Reverse() *System {
	return &System{Pair: s.Pair.Reversed(), Up: s.Down, Down: s.Up}
}

// NumAlternatives returns the number of alternatives per flow (one per
// interconnection).
func (s *System) NumAlternatives() int { return len(s.Pair.Interconnections) }

// UpDistKm returns the geographic distance flow f travels inside the
// upstream ISP when using interconnection k: source PoP to the
// interconnection's upstream PoP.
func (s *System) UpDistKm(f traffic.Flow, k int) float64 {
	return s.Up.LengthKm(f.Src, s.Pair.Interconnections[k].APoP)
}

// DownDistKm returns the geographic distance flow f travels inside the
// downstream ISP when using interconnection k.
func (s *System) DownDistKm(f traffic.Flow, k int) float64 {
	return s.Down.LengthKm(s.Pair.Interconnections[k].BPoP, f.Dst)
}

// TotalDistKm returns the end-to-end geographic distance for flow f over
// interconnection k, including the interconnection link itself. This is
// the paper's §5.1 path-length metric.
func (s *System) TotalDistKm(f traffic.Flow, k int) float64 {
	return s.UpDistKm(f, k) + s.Pair.Interconnections[k].LengthKm + s.DownDistKm(f, k)
}

// UpWeight returns the routing (IGP) weight from the flow's source to
// interconnection k's upstream PoP. Early-exit routing minimizes this.
func (s *System) UpWeight(f traffic.Flow, k int) float64 {
	return s.Up.Dist(f.Src, s.Pair.Interconnections[k].APoP)
}

// DownWeight returns the routing weight from interconnection k's
// downstream PoP to the flow's destination.
func (s *System) DownWeight(f traffic.Flow, k int) float64 {
	return s.Down.Dist(s.Pair.Interconnections[k].BPoP, f.Dst)
}

// EarlyExit returns the interconnection the upstream picks under
// early-exit (hot-potato) routing: the one closest to the flow's source
// by routing weight, ties broken toward the lower interconnection index.
func (s *System) EarlyExit(f traffic.Flow) int {
	best, bestW := -1, math.Inf(1)
	for k := range s.Pair.Interconnections {
		if w := s.UpWeight(f, k); w < bestW {
			best, bestW = k, w
		}
	}
	return best
}

// LateExit returns the interconnection closest to the destination by
// routing weight — the outcome of consistently honored MEDs (Fig 1b).
func (s *System) LateExit(f traffic.Flow) int {
	best, bestW := -1, math.Inf(1)
	for k := range s.Pair.Interconnections {
		if w := s.DownWeight(f, k); w < bestW {
			best, bestW = k, w
		}
	}
	return best
}

// BestTotal returns the interconnection minimizing the end-to-end
// distance for flow f — the per-flow globally optimal choice for the
// distance metric.
func (s *System) BestTotal(f traffic.Flow) int {
	best, bestD := -1, math.Inf(1)
	for k := range s.Pair.Interconnections {
		if d := s.TotalDistKm(f, k); d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// Assignment maps flow ID -> interconnection index for a workload.
type Assignment []int

// NewAssignment allocates an assignment for n flows, initialized to -1
// (unassigned).
func NewAssignment(n int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = -1
	}
	return a
}

// Clone copies the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// AddFlowLoad adds flow f's size to every upstream link on the path from
// its source to interconnection k and every downstream link from the
// interconnection to its destination. loadUp/loadDown are indexed like
// the respective ISP's Links slice.
func (s *System) AddFlowLoad(loadUp, loadDown []float64, f traffic.Flow, k int) {
	ix := s.Pair.Interconnections[k]
	s.Up.AddLoad(loadUp, f.Src, ix.APoP, f.Size)
	s.Down.AddLoad(loadDown, ix.BPoP, f.Dst, f.Size)
}

// Loads computes per-link loads in both ISPs for the flows under the
// given assignment. Flows assigned -1 are skipped.
func (s *System) Loads(flows []traffic.Flow, assign Assignment) (loadUp, loadDown []float64) {
	loadUp = make([]float64, len(s.Up.ISP.Links))
	loadDown = make([]float64, len(s.Down.ISP.Links))
	for _, f := range flows {
		k := assign[f.ID]
		if k < 0 {
			continue
		}
		s.AddFlowLoad(loadUp, loadDown, f, k)
	}
	return loadUp, loadDown
}

// TotalDistance sums TotalDistKm over all assigned flows (unweighted by
// size, as in the paper's §5.1 metric where every PoP pair contributes
// one flow).
func (s *System) TotalDistance(flows []traffic.Flow, assign Assignment) float64 {
	var sum float64
	for _, f := range flows {
		if k := assign[f.ID]; k >= 0 {
			sum += s.TotalDistKm(f, k)
		}
	}
	return sum
}

// SplitDistance returns the distance traversed inside the upstream and
// downstream ISPs separately, summed over assigned flows.
func (s *System) SplitDistance(flows []traffic.Flow, assign Assignment) (up, down float64) {
	for _, f := range flows {
		if k := assign[f.ID]; k >= 0 {
			up += s.UpDistKm(f, k)
			down += s.DownDistKm(f, k)
		}
	}
	return up, down
}

// Validate checks that the system's interconnection endpoints resolve.
func (s *System) Validate() error {
	if err := s.Pair.Validate(); err != nil {
		return err
	}
	if s.Up.ISP != s.Pair.A || s.Down.ISP != s.Pair.B {
		return fmt.Errorf("pairsim: routing tables do not match pair ISPs")
	}
	return nil
}

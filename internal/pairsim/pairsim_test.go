package pairsim

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// figure1Pair builds the paper's Figure 1 scenario: two parallel east-west
// backbones meeting in three cities (west, mid, east). ISP A's traffic
// source sits in the west, ISP B's in the east, so early-exit from either
// side picks the interconnection nearest the source and makes the other
// ISP carry the flow the long way.
func figure1Pair() *topology.Pair {
	mk := func(name string, asn int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		cities := []struct {
			city string
			lon  float64
		}{{"west", -120}, {"mid", -100}, {"east", -80}}
		for i, c := range cities {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c.city, Loc: geo.Point{Lat: 40, Lon: c.lon}, Population: 1e6,
			})
		}
		d := geo.DistanceKm(isp.PoPs[0].Loc, isp.PoPs[1].Loc)
		isp.Links = []topology.Link{
			{A: 0, B: 1, Weight: d, LengthKm: d},
			{A: 1, B: 2, Weight: d, LengthKm: d},
		}
		return isp
	}
	return topology.NewPair(mk("ispA", 1), mk("ispB", 2))
}

func TestSystemBasics(t *testing.T) {
	pair := figure1Pair()
	if pair.NumInterconnections() != 3 {
		t.Fatalf("want 3 interconnections, got %d", pair.NumInterconnections())
	}
	s := New(pair, nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumAlternatives() != 3 {
		t.Errorf("NumAlternatives = %d", s.NumAlternatives())
	}
}

func TestEarlyLateBestExit(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	// Interconnections sorted by city: east=0, mid=1, west=2.
	f := traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 1} // west PoP -> east PoP
	if k := s.EarlyExit(f); pair.Interconnections[k].City != "west" {
		t.Errorf("EarlyExit picked %s, want west", pair.Interconnections[k].City)
	}
	if k := s.LateExit(f); pair.Interconnections[k].City != "east" {
		t.Errorf("LateExit picked %s, want east", pair.Interconnections[k].City)
	}
	// All alternatives have the same total distance on a shared line, so
	// BestTotal is the first minimizer (east, index 0).
	total := s.TotalDistKm(f, s.BestTotal(f))
	for k := 0; k < 3; k++ {
		if s.TotalDistKm(f, k) < total-1e-9 {
			t.Errorf("BestTotal missed a better alternative %d", k)
		}
	}
}

func TestDistancesAddUp(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	f := traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 1}
	for k := range pair.Interconnections {
		up, down := s.UpDistKm(f, k), s.DownDistKm(f, k)
		want := up + pair.Interconnections[k].LengthKm + down
		if got := s.TotalDistKm(f, k); math.Abs(got-want) > 1e-9 {
			t.Errorf("alt %d: TotalDistKm = %v, want %v", k, got, want)
		}
	}
	// Early exit from west means B carries the flow the full span.
	kWest := 2
	if s.UpDistKm(f, kWest) != 0 {
		t.Errorf("UpDist at source interconnection should be 0")
	}
	if s.DownDistKm(f, kWest) <= s.DownDistKm(f, 0) {
		t.Error("early exit should push distance into the downstream")
	}
}

func TestReverse(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	r := s.Reverse()
	if r.Pair.A != pair.B || r.Pair.B != pair.A {
		t.Error("Reverse did not swap ISPs")
	}
	if r.Up != s.Down || r.Down != s.Up {
		t.Error("Reverse did not swap routing tables")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	f := traffic.Flow{ID: 0, Src: 2, Dst: 0, Size: 1} // B's east -> A's west
	if k := r.EarlyExit(f); r.Pair.Interconnections[k].City != "east" {
		t.Errorf("reverse EarlyExit picked %s, want east", r.Pair.Interconnections[k].City)
	}
}

func TestLoadsAccumulate(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	w := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	assign := NewAssignment(len(w.Flows))
	for _, f := range w.Flows {
		assign[f.ID] = s.EarlyExit(f)
	}
	loadUp, loadDown := s.Loads(w.Flows, assign)
	// Early exit: upstream never carries traffic (src city == exit city
	// for every flow since every PoP city has an interconnection).
	for i, l := range loadUp {
		if l != 0 {
			t.Errorf("upstream link %d carries %v under early-exit with co-located exits", i, l)
		}
	}
	var down float64
	for _, l := range loadDown {
		down += l
	}
	if down == 0 {
		t.Error("downstream should carry load under early-exit")
	}
}

func TestLoadsSkipUnassigned(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	w := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	assign := NewAssignment(len(w.Flows))
	loadUp, loadDown := s.Loads(w.Flows, assign)
	for i := range loadUp {
		if loadUp[i] != 0 {
			t.Error("unassigned flows should contribute no load")
		}
	}
	for i := range loadDown {
		if loadDown[i] != 0 {
			t.Error("unassigned flows should contribute no load")
		}
	}
}

func TestTotalAndSplitDistance(t *testing.T) {
	pair := figure1Pair()
	s := New(pair, nil)
	w := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	assign := NewAssignment(len(w.Flows))
	for _, f := range w.Flows {
		assign[f.ID] = s.BestTotal(f)
	}
	total := s.TotalDistance(w.Flows, assign)
	up, down := s.SplitDistance(w.Flows, assign)
	var ixLen float64
	for _, f := range w.Flows {
		ixLen += pair.Interconnections[assign[f.ID]].LengthKm
	}
	if math.Abs(total-(up+down+ixLen)) > 1e-6 {
		t.Errorf("total %v != up %v + down %v + ix %v", total, up, down, ixLen)
	}
}

func TestTableCacheReuses(t *testing.T) {
	pair := figure1Pair()
	cache := NewTableCache()
	s1 := New(pair, cache)
	s2 := New(pair, cache)
	if s1.Up != s2.Up || s1.Down != s2.Down {
		t.Error("cache did not reuse tables")
	}
}

func TestAssignmentClone(t *testing.T) {
	a := NewAssignment(3)
	a[0] = 5
	b := a.Clone()
	b[1] = 7
	if a[1] != -1 {
		t.Error("Clone shares backing array")
	}
	if b[0] != 5 {
		t.Error("Clone lost data")
	}
}

package pairsim

import (
	"sync"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// TestTableCacheConcurrent hammers one cache from many goroutines (run
// under -race): every caller must observe the same table pointer per
// ISP, proving each all-pairs computation ran exactly once.
func TestTableCacheConcurrent(t *testing.T) {
	pair := figure1Pair()
	isps := []*topology.ISP{pair.A, pair.B}
	cache := NewTableCache()

	const goroutines = 32
	const gets = 200
	results := make([][]*routing.Table, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]*routing.Table, gets)
			for i := 0; i < gets; i++ {
				results[g][i] = cache.Get(isps[i%len(isps)])
			}
		}(g)
	}
	wg.Wait()

	want := []*routing.Table{cache.Get(isps[0]), cache.Get(isps[1])}
	if want[0] == want[1] {
		t.Fatal("distinct ISPs share a table")
	}
	for g := range results {
		for i, got := range results[g] {
			if got != want[i%len(isps)] {
				t.Fatalf("goroutine %d call %d got a different table instance", g, i)
			}
		}
	}
	for i, isp := range isps {
		if want[i].ISP != isp {
			t.Errorf("table %d built for wrong ISP", i)
		}
	}
}

// TestTableCacheWarm pins that warming shards the Dijkstra cost without
// changing anything observable: every later Get returns the instance
// Warm installed, for any worker count, concurrently with lazy Gets.
func TestTableCacheWarm(t *testing.T) {
	pair := figure1Pair()
	isps := []*topology.ISP{pair.A, pair.B}
	for _, workers := range []int{1, 4} {
		cache := NewTableCache()
		var lazy *routing.Table
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // lazy user racing the warm-up
			defer wg.Done()
			lazy = cache.Get(isps[0])
		}()
		cache.Warm(isps, workers)
		wg.Wait()
		if got := cache.Get(isps[0]); got != lazy {
			t.Fatalf("workers=%d: warm and lazy callers saw different tables", workers)
		}
		cache.Warm(isps, workers) // idempotent
		for i, isp := range isps {
			if cache.Get(isp).ISP != isp {
				t.Errorf("workers=%d: table %d built for wrong ISP", workers, i)
			}
		}
	}
}

// TestTableCacheConcurrentSystems exercises the cache through New, the
// way the experiment runner uses it: many goroutines building Systems
// for the same pair concurrently.
func TestTableCacheConcurrentSystems(t *testing.T) {
	pair := figure1Pair()
	cache := NewTableCache()
	var wg sync.WaitGroup
	systems := make([]*System, 16)
	for g := range systems {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			systems[g] = New(pair, cache)
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(systems); g++ {
		if systems[g].Up != systems[0].Up || systems[g].Down != systems[0].Down {
			t.Fatalf("system %d got different routing tables", g)
		}
	}
}

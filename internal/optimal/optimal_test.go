package optimal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// linePair builds two parallel n-city backbones sharing all cities, so
// the pair has n interconnections.
func linePair(n int) *topology.Pair {
	mk := func(name string, asn int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		for i := 0; i < n; i++ {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: cityName(i), Loc: geo.Point{Lat: 40, Lon: -120 + 10*float64(i)}, Population: 1e6,
			})
		}
		for i := 0; i+1 < n; i++ {
			d := geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[i+1].Loc)
			isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: d, LengthKm: d})
		}
		return isp
	}
	return topology.NewPair(mk("up", 1), mk("down", 2))
}

func cityName(i int) string { return string(rune('a'+i)) + "ville" }

func TestDistanceIsPerFlowOptimal(t *testing.T) {
	pair := linePair(4)
	s := pairsim.New(pair, nil)
	w := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	assign := Distance(s, w.Flows)
	for _, f := range w.Flows {
		got := s.TotalDistKm(f, assign[f.ID])
		for k := 0; k < s.NumAlternatives(); k++ {
			if s.TotalDistKm(f, k) < got-1e-9 {
				t.Errorf("flow %d: alternative %d beats the chosen one", f.ID, k)
			}
		}
	}
	// Optimal total distance <= early-exit total distance.
	early := pairsim.NewAssignment(len(w.Flows))
	for _, f := range w.Flows {
		early[f.ID] = s.EarlyExit(f)
	}
	if s.TotalDistance(w.Flows, assign) > s.TotalDistance(w.Flows, early)+1e-9 {
		t.Error("optimal distance worse than early-exit")
	}
}

func TestBandwidthEmptyFlows(t *testing.T) {
	pair := linePair(3)
	s := pairsim.New(pair, nil)
	fixedUp := make([]float64, len(pair.A.Links))
	fixedDown := make([]float64, len(pair.B.Links))
	capUp := []float64{1, 1}
	capDown := []float64{1, 1}
	fixedUp[0] = 0.5
	res, err := Bandwidth(s, nil, fixedUp, fixedDown, capUp, capDown)
	if err != nil {
		t.Fatal(err)
	}
	if res.MEL != 0.5 || res.MELUp != 0.5 || res.MELDown != 0 {
		t.Errorf("fixed-only MELs wrong: %+v", res)
	}
}

// integralMEL computes the realized MEL of an integral assignment.
func integralMEL(s *pairsim.System, flows []traffic.Flow, assign []int, fixedUp, fixedDown, capUp, capDown []float64) float64 {
	loadUp := append([]float64(nil), fixedUp...)
	loadDown := append([]float64(nil), fixedDown...)
	for i, f := range flows {
		ix := s.Pair.Interconnections[assign[i]]
		s.Up.AddLoad(loadUp, f.Src, ix.APoP, f.Size)
		s.Down.AddLoad(loadDown, ix.BPoP, f.Dst, f.Size)
	}
	m := melOf(loadUp, capUp)
	if d := melOf(loadDown, capDown); d > m {
		m = d
	}
	return m
}

func TestBandwidthLowerBoundsIntegral(t *testing.T) {
	// Property: the fractional optimum is <= the MEL of every integral
	// assignment (here: exhaustive over all assignments of 3 flows).
	pair := linePair(3)
	s := pairsim.New(pair, nil)
	flows := []traffic.Flow{
		{ID: 0, Src: 0, Dst: 2, Size: 1},
		{ID: 1, Src: 1, Dst: 0, Size: 2},
		{ID: 2, Src: 2, Dst: 1, Size: 1.5},
	}
	nl := len(pair.A.Links)
	fixedUp := make([]float64, nl)
	fixedDown := make([]float64, nl)
	fixedUp[0], fixedDown[1] = 0.4, 0.8
	capUp := []float64{2, 2}
	capDown := []float64{2, 2}

	res, err := Bandwidth(s, flows, fixedUp, fixedDown, capUp, capDown)
	if err != nil {
		t.Fatal(err)
	}
	na := s.NumAlternatives()
	best := math.Inf(1)
	assign := make([]int, len(flows))
	var rec func(int)
	rec = func(i int) {
		if i == len(flows) {
			if m := integralMEL(s, flows, assign, fixedUp, fixedDown, capUp, capDown); m < best {
				best = m
			}
			return
		}
		for k := 0; k < na; k++ {
			assign[i] = k
			rec(i + 1)
		}
	}
	rec(0)
	if res.MEL > best+1e-6 {
		t.Errorf("fractional optimum %v exceeds best integral %v", res.MEL, best)
	}
	// Fractions are a probability distribution per flow.
	for i, fr := range res.Fractions {
		var sum float64
		for _, x := range fr {
			if x < -1e-9 {
				t.Errorf("flow %d: negative fraction %v", i, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("flow %d: fractions sum to %v", i, sum)
		}
	}
	// Realized per-ISP MELs are consistent with the LP objective.
	if got := math.Max(res.MELUp, res.MELDown); got > res.MEL+1e-6 {
		t.Errorf("realized MEL %v exceeds LP objective %v", got, res.MEL)
	}
}

func TestBandwidthSpreadsLoad(t *testing.T) {
	// One big flow, two interconnections with tight capacity everywhere:
	// the fractional optimum should split the flow.
	pair := linePair(2)
	s := pairsim.New(pair, nil)
	flows := []traffic.Flow{{ID: 0, Src: 0, Dst: 1, Size: 2}}
	capUp := []float64{1}
	capDown := []float64{1}
	res, err := Bandwidth(s, flows, []float64{0}, []float64{0}, capUp, capDown)
	if err != nil {
		t.Fatal(err)
	}
	// Alternative 0 = interconnection at city a: path uses downstream
	// link; alternative 1 = city b: path uses upstream link. An even
	// split gives MEL 1; any integral choice gives MEL 2.
	if math.Abs(res.MEL-1) > 1e-6 {
		t.Errorf("MEL = %v, want 1 (even split)", res.MEL)
	}
	if math.Abs(res.Fractions[0][0]-0.5) > 1e-6 {
		t.Errorf("fractions = %v, want [0.5 0.5]", res.Fractions[0])
	}
}

func TestBandwidthRandomizedLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		pair := linePair(n)
		s := pairsim.New(pair, nil)
		var flows []traffic.Flow
		nf := 2 + rng.Intn(3)
		for i := 0; i < nf; i++ {
			flows = append(flows, traffic.Flow{
				ID: i, Src: rng.Intn(n), Dst: rng.Intn(n), Size: 0.5 + rng.Float64()*2,
			})
		}
		mkCaps := func(k int) []float64 {
			c := make([]float64, k)
			for i := range c {
				c[i] = 0.5 + rng.Float64()*3
			}
			return c
		}
		capUp, capDown := mkCaps(len(pair.A.Links)), mkCaps(len(pair.B.Links))
		fixedUp, fixedDown := make([]float64, len(capUp)), make([]float64, len(capDown))
		for i := range fixedUp {
			fixedUp[i] = rng.Float64()
		}
		res, err := Bandwidth(s, flows, fixedUp, fixedDown, capUp, capDown)
		if err != nil {
			t.Fatal(err)
		}
		// Sample random integral assignments; none may beat the LP.
		for trial2 := 0; trial2 < 50; trial2++ {
			assign := make([]int, nf)
			for i := range assign {
				assign[i] = rng.Intn(s.NumAlternatives())
			}
			if m := integralMEL(s, flows, assign, fixedUp, fixedDown, capUp, capDown); m < res.MEL-1e-6 {
				t.Fatalf("trial %d: integral %v beats fractional optimum %v", trial, m, res.MEL)
			}
		}
	}
}

// Package optimal computes the paper's globally optimal routing, which
// treats the two ISPs as one larger system with complete information.
//
// For the distance metric (§5.1) the optimum decomposes per flow: each
// flow independently uses the interconnection minimizing its end-to-end
// distance. For the bandwidth metric (§5.2) the paper minimizes the
// maximum increase in link load across both ISPs, allowing flows to be
// fractionally divided among interconnections for computational
// tractability; we formulate that LP exactly and solve it with the
// internal simplex solver. As in the paper, the fractional optimum is an
// upper bound on the quality of any unsplittable routing.
package optimal

import (
	"fmt"

	"repro/internal/pairsim"
	"repro/internal/simplex"
	"repro/internal/traffic"
)

// Distance returns the assignment that minimizes the total end-to-end
// distance of the flows — the globally optimal routing for the §5.1
// metric. (Each flow's optimum is independent, so this is exact.)
func Distance(s *pairsim.System, flows []traffic.Flow) pairsim.Assignment {
	maxID := -1
	for _, f := range flows {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	assign := pairsim.NewAssignment(maxID + 1)
	for _, f := range flows {
		assign[f.ID] = s.BestTotal(f)
	}
	return assign
}

// BandwidthResult is the outcome of the fractional min-max-load LP.
type BandwidthResult struct {
	// MEL is the optimal maximum excess load across both ISPs.
	MEL float64
	// MELUp and MELDown are the maximum excess loads within the
	// upstream and downstream ISP under the optimal fractional routing.
	MELUp, MELDown float64
	// Fractions[i][k] is the fraction of flows[i] routed over
	// interconnection k.
	Fractions [][]float64
}

// Bandwidth solves the fractional min-max-load problem for rerouting the
// given flows: minimize the maximum over links (in both ISPs) of
// (fixed load + rerouted load) / capacity.
//
// fixedUp/fixedDown are per-link loads from traffic that is not being
// rerouted (indexed like the respective ISP's Links slice); capUp/capDown
// are the link capacities. The LP is formulated in shifted single-phase
// form (see package simplex) so no artificial variables are needed.
func Bandwidth(s *pairsim.System, flows []traffic.Flow, fixedUp, fixedDown, capUp, capDown []float64) (*BandwidthResult, error) {
	nf := len(flows)
	na := s.NumAlternatives()
	if na == 0 {
		return nil, fmt.Errorf("optimal: pair has no interconnections")
	}
	if nf == 0 {
		r := &BandwidthResult{}
		r.MEL, r.MELUp, r.MELDown = fixedMELs(fixedUp, fixedDown, capUp, capDown)
		return r, nil
	}

	nUp := len(capUp)
	nLinks := nUp + len(capDown)
	capAll := make([]float64, 0, nLinks)
	capAll = append(capAll, capUp...)
	capAll = append(capAll, capDown...)
	fixedAll := make([]float64, 0, nLinks)
	fixedAll = append(fixedAll, fixedUp...)
	fixedAll = append(fixedAll, fixedDown...)

	// coef[l][i*na+k]: load placed on link l when flow i fully uses
	// interconnection k. Stored sparsely per (flow, alt) as subslice
	// views into the tables' CSR path indexes — the same memoized
	// indexes the nexit evaluators resolve for these interconnection
	// sets, so across a whole experiment the path structure is built
	// once per (table, endpoint set) and shared.
	apops := make([]int, na)
	bpops := make([]int, na)
	for k, ix := range s.Pair.Interconnections {
		apops[k] = ix.APoP
		bpops[k] = ix.BPoP
	}
	ixUp := s.Up.PathIndexFor(apops)
	ixDown := s.Down.PathIndexFor(bpops)
	type flowAlt struct{ up, down []int32 } // down links are offset by nUp in the joint link space
	fa := make([][]flowAlt, nf)
	for i, f := range flows {
		fa[i] = make([]flowAlt, na)
		for k := 0; k < na; k++ {
			fa[i][k] = flowAlt{up: ixUp.To(k, f.Src), down: ixDown.From(k, f.Dst)}
		}
	}

	// Baseline: every flow fully on alternative 0.
	load0 := make([]float64, nLinks)
	for i, f := range flows {
		for _, l := range fa[i][0].up {
			load0[l] += f.Size
		}
		for _, l := range fa[i][0].down {
			load0[nUp+int(l)] += f.Size
		}
	}
	t0 := 0.0
	maxFixedRatio := 0.0
	for l := 0; l < nLinks; l++ {
		if capAll[l] <= 0 {
			continue
		}
		if r := (fixedAll[l] + load0[l]) / capAll[l]; r > t0 {
			t0 = r
		}
		if r := fixedAll[l] / capAll[l]; r > maxFixedRatio {
			maxFixedRatio = r
		}
	}

	// Variables: x[i][k] for k=1..na-1 (alt 0 eliminated), then tShift.
	// Minimizing t is maximizing tShift where t = t0 - tShift.
	nv := nf*(na-1) + 1
	tCol := nv - 1
	xCol := func(i, k int) int { return i*(na-1) + (k - 1) }

	var aub [][]float64
	var bub []float64

	// Link rows: sum_i sum_{k>0} (c_{l,i,k} - c_{l,i,0}) x + cap_l*tShift
	// <= cap_l*t0 - fixed_l - load0_l.
	for l := 0; l < nLinks; l++ {
		if capAll[l] <= 0 {
			continue
		}
		row := make([]float64, nv)
		touched := false
		for i, f := range flows {
			on0 := onLink(fa[i][0].up, fa[i][0].down, l, nUp)
			for k := 1; k < na; k++ {
				onK := onLink(fa[i][k].up, fa[i][k].down, l, nUp)
				switch {
				case onK && !on0:
					row[xCol(i, k)] += f.Size
					touched = true
				case !onK && on0:
					row[xCol(i, k)] -= f.Size
					touched = true
				}
			}
		}
		if !touched {
			continue // covered by the global tShift bound below
		}
		row[tCol] = capAll[l]
		aub = append(aub, row)
		bub = append(bub, capAll[l]*t0-fixedAll[l]-load0[l])
	}

	// Global bound: t >= maxFixedRatio (links untouched by rerouting
	// cannot drop below their fixed ratio), i.e. tShift <= t0 - maxFixedRatio.
	bound := make([]float64, nv)
	bound[tCol] = 1
	aub = append(aub, bound)
	bub = append(bub, t0-maxFixedRatio)

	// Flow rows: sum_{k>0} x[i][k] <= 1.
	for i := 0; i < nf; i++ {
		row := make([]float64, nv)
		for k := 1; k < na; k++ {
			row[xCol(i, k)] = 1
		}
		aub = append(aub, row)
		bub = append(bub, 1)
	}

	c := make([]float64, nv)
	c[tCol] = -1 // maximize tShift

	sol, err := simplex.Solve(simplex.Problem{C: c, AUb: aub, BUb: bub})
	if err != nil {
		return nil, err
	}
	if sol.Status != simplex.Optimal {
		return nil, fmt.Errorf("optimal: LP status %v", sol.Status)
	}

	res := &BandwidthResult{MEL: t0 - sol.X[tCol]}
	res.Fractions = make([][]float64, nf)
	loadUp := append([]float64(nil), fixedUp...)
	loadDown := append([]float64(nil), fixedDown...)
	for i, f := range flows {
		res.Fractions[i] = make([]float64, na)
		rest := 1.0
		for k := 1; k < na; k++ {
			x := sol.X[xCol(i, k)]
			if x < 0 {
				x = 0
			}
			res.Fractions[i][k] = x
			rest -= x
		}
		if rest < 0 {
			rest = 0
		}
		res.Fractions[i][0] = rest
		for k := 0; k < na; k++ {
			frac := res.Fractions[i][k]
			if frac == 0 {
				continue
			}
			for _, l := range fa[i][k].up {
				loadUp[l] += frac * f.Size
			}
			for _, l := range fa[i][k].down {
				loadDown[l] += frac * f.Size
			}
		}
	}
	res.MELUp = melOf(loadUp, capUp)
	res.MELDown = melOf(loadDown, capDown)
	return res, nil
}

// onLink reports whether joint-space link l (down links offset by nUp)
// lies on the path described by the up/down index rows.
func onLink(up, down []int32, l, nUp int) bool {
	if l < nUp {
		for _, v := range up {
			if int(v) == l {
				return true
			}
		}
		return false
	}
	l -= nUp
	for _, v := range down {
		if int(v) == l {
			return true
		}
	}
	return false
}

func melOf(load, capv []float64) float64 {
	var m float64
	for i := range load {
		if capv[i] <= 0 {
			continue
		}
		if r := load[i] / capv[i]; r > m {
			m = r
		}
	}
	return m
}

func fixedMELs(fixedUp, fixedDown, capUp, capDown []float64) (all, up, down float64) {
	up = melOf(fixedUp, capUp)
	down = melOf(fixedDown, capDown)
	all = up
	if down > all {
		all = down
	}
	return all, up, down
}

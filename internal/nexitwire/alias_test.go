package nexitwire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// writeFrames serializes the given (type, payload) frames back to back
// the way a session would see them on the wire.
func writeFrames(t *testing.T, frames ...struct {
	typ     MsgType
	payload []byte
}) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	fw := frameWriter{w: &buf}
	for _, f := range frames {
		if err := fw.writeFrame(f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	return &buf
}

// TestReadFrameIntoReuse pins the scratch-buffer contract: the returned
// scratch is reused when the next frame fits, grown when it does not,
// and the MaxFrameSize guard survives the reuse path with its labelled
// error.
func TestReadFrameIntoReuse(t *testing.T) {
	big := make([]byte, 64)
	for i := range big {
		big[i] = byte(i)
	}
	buf := writeFrames(t,
		struct {
			typ     MsgType
			payload []byte
		}{MsgCommit, big},
		struct {
			typ     MsgType
			payload []byte
		}{MsgRevert, []byte{9, 9}},
	)

	typ, body, scratch, err := readFrameInto(buf, nil)
	if err != nil || typ != MsgCommit || !bytes.Equal(body, big) {
		t.Fatalf("first frame = %v %v (%v)", typ, body, err)
	}
	first := &scratch[0]
	typ, body, scratch, err = readFrameInto(buf, scratch)
	if err != nil || typ != MsgRevert || !bytes.Equal(body, []byte{9, 9}) {
		t.Fatalf("second frame = %v %v (%v)", typ, body, err)
	}
	if &scratch[0] != first {
		t.Error("smaller second frame did not reuse the scratch buffer")
	}

	// The oversize guard must fire before any allocation, labelled, on
	// the reuse path too.
	var over bytes.Buffer
	over.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, _, err := readFrameInto(&over, scratch); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame on reuse path: %v", err)
	}
}

// TestDecodedMessagesDoNotAliasScratch is the aliasing test the codec's
// buffer-ownership contract calls for (DESIGN.md §9): frame bodies
// alias the session's reusable read buffer, so every decoder must copy
// what it keeps. Decode messages of each kept-data kind from a scratch
// buffer, clobber the buffer as the next recv would, and verify the
// decoded messages are unaffected. Run under -race in CI alongside the
// concurrent mesh tests.
func TestDecodedMessagesDoNotAliasScratch(t *testing.T) {
	hello := &Hello{Version: Version, Name: "isp-a", Metric: "bandwidth",
		NumAlts: 4, NumItems: 7, WorkloadHash: 0x1234, Epoch: 3}
	prefs := &PrefsResponse{Prefs: [][]int8{{1, -2, 3}, {-4, 5, -6}}}
	batch := &ProposeBatch{Proposals: []AcceptRequest{
		{Round: 1, ItemID: 2, Alt: 3, PrefInitiator: -4},
		{Round: 2, ItemID: 5, Alt: 0, PrefInitiator: 7},
	}}
	buf := writeFrames(t,
		struct {
			typ     MsgType
			payload []byte
		}{MsgHello, encodeHello(hello)},
		struct {
			typ     MsgType
			payload []byte
		}{MsgPrefsResponse, encodePrefsResponse(prefs)},
		struct {
			typ     MsgType
			payload []byte
		}{MsgProposeBatch, appendProposeBatch(nil, batch)},
	)

	var scratch []byte
	clobber := func() {
		for i := range scratch {
			scratch[i] = 0xFF
		}
	}

	var body []byte
	var err error
	if _, body, scratch, err = readFrameInto(buf, scratch); err != nil {
		t.Fatal(err)
	}
	gotHello, err := decodeHello(body)
	if err != nil {
		t.Fatal(err)
	}
	clobber()
	if !reflect.DeepEqual(gotHello, hello) {
		t.Errorf("hello aliased scratch: %+v != %+v", gotHello, hello)
	}

	if _, body, scratch, err = readFrameInto(buf, scratch); err != nil {
		t.Fatal(err)
	}
	gotPrefs, err := decodePrefsResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	clobber()
	if !reflect.DeepEqual(gotPrefs, prefs) {
		t.Errorf("prefs aliased scratch: %+v != %+v", gotPrefs, prefs)
	}

	if _, body, scratch, err = readFrameInto(buf, scratch); err != nil {
		t.Fatal(err)
	}
	gotBatch, err := decodeProposeBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	clobber()
	if !reflect.DeepEqual(gotBatch, batch) {
		t.Errorf("propose batch aliased scratch: %+v != %+v", gotBatch, batch)
	}
}

// TestProposeBatchRoundtrip covers the v4 batched frames: an
// encode/decode identity for ProposeBatch and BatchAccept, and the
// decoder's labelled guard against a header claiming more proposals
// than the payload carries.
func TestProposeBatchRoundtrip(t *testing.T) {
	m := &ProposeBatch{Proposals: []AcceptRequest{
		{Round: 0, ItemID: 10, Alt: 2, PrefInitiator: 5},
		{Round: 1, ItemID: 11, Alt: 0, PrefInitiator: -5},
		{Round: 2, ItemID: 0, Alt: 65535, PrefInitiator: 127},
	}}
	got, err := decodeProposeBatch(appendProposeBatch(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("roundtrip = %+v, want %+v", got, m)
	}

	empty, err := decodeProposeBatch(appendProposeBatch(nil, &ProposeBatch{}))
	if err != nil || len(empty.Proposals) != 0 {
		t.Errorf("empty batch roundtrip = %+v (%v)", empty, err)
	}

	lying := appendProposeBatch(nil, m)[:4+proposalWireSize] // header says 3, payload has 1
	if _, err := decodeProposeBatch(lying); err == nil ||
		!strings.Contains(err.Error(), "claims") {
		t.Errorf("lying batch header not rejected: %v", err)
	}

	ba, err := decodeBatchAccept(appendBatchAccept(nil, &BatchAccept{Accepted: 42}))
	if err != nil || ba.Accepted != 42 {
		t.Errorf("batch accept roundtrip = %+v (%v)", ba, err)
	}
}

package nexitwire

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os"
	"time"

	"repro/internal/nexit"
)

// DefaultTimeout bounds each blocking wire exchange.
const DefaultTimeout = 30 * time.Second

// DefaultMetric is the objective assumed when an endpoint (or a v1
// Hello) leaves the metric unset — the paper's primary §5.1 distance
// metric. It matches continuous.MetricDistance by construction.
const DefaultMetric = "distance"

// metricName canonicalizes a possibly-empty metric label.
func metricName(m string) string {
	if m == "" {
		return DefaultMetric
	}
	return m
}

// EpochSkewError reports that a session's two endpoints are at
// different negotiation epochs. Its rendering is the canonical wire
// reason for an epoch-skew rejection: the receiving side parses it back
// into a typed error (errors.As) so a daemon can fast-forward to the
// responder's epoch and retry instead of failing forever.
type EpochSkewError struct {
	// Initiator and Responder are the two sides' epoch indices.
	Initiator, Responder int
}

// Error renders the canonical, parseable skew reason.
func (e *EpochSkewError) Error() string {
	return fmt.Sprintf("epoch skew: initiator at epoch %d, responder at epoch %d", e.Initiator, e.Responder)
}

// parseEpochSkew recovers a typed skew error from a peer's abort
// reason, when the reason is the canonical rendering above.
func parseEpochSkew(reason string) (*EpochSkewError, bool) {
	var e EpochSkewError
	n, err := fmt.Sscanf(reason, "epoch skew: initiator at epoch %d, responder at epoch %d", &e.Initiator, &e.Responder)
	if err != nil || n != 2 {
		return nil, false
	}
	return &e, true
}

// peerError surfaces a peer's abort reason, re-typing the canonical
// epoch-skew rendering so callers can errors.As it.
func peerError(reason string) error {
	if skew, ok := parseEpochSkew(reason); ok {
		return fmt.Errorf("nexitwire: peer error: %w", skew)
	}
	return fmt.Errorf("nexitwire: peer error: %s", reason)
}

// WorkloadHash fingerprints the negotiation universe (items, defaults,
// alternative count) so two agents configured differently fail fast at
// Hello time instead of negotiating nonsense.
func WorkloadHash(items []nexit.Item, defaults []int, numAlts int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (56 - 8*i))
		}
		h.Write(buf[:])
	}
	put(uint64(numAlts))
	put(uint64(len(items)))
	for i, it := range items {
		put(uint64(it.ID))
		put(uint64(it.Flow.Src))
		put(uint64(it.Flow.Dst))
		put(math.Float64bits(it.Flow.Size))
		put(uint64(it.Dir))
		put(uint64(defaults[i]))
	}
	return h.Sum64()
}

// SessionResult is what the responder learns from a completed session.
type SessionResult struct {
	Assign     []int
	GainA      int // initiator's cumulative disclosed gain
	GainB      int // responder's cumulative disclosed gain
	Rounds     int
	StopReason nexit.StopReason
}

// Initiator drives a negotiation session over a connection. It runs the
// contractually agreed round engine locally, fetching the responder's
// preferences and accept decisions over the wire.
type Initiator struct {
	Name string
	Cfg  nexit.Config
	// Metric names the negotiation objective carried in the Hello;
	// the responder must be configured for the same one (empty means
	// DefaultMetric). Eval must implement it.
	Metric string
	// Epoch is the negotiation epoch this session runs, carried in the
	// Hello (v3+). The responder must serve the same epoch; a skew is
	// rejected with a typed EpochSkewError so the behind side can
	// fast-forward deterministically and retry.
	Epoch int
	// Eval is the initiator's own evaluator (protocol side A).
	Eval nexit.Evaluator
	// Accept, when non-nil, decides the initiator's own accept/veto
	// choices; nil accepts everything (the paper's experimental mode).
	Accept func(p nexit.Proposal) bool
	// Timeout bounds each wire exchange (DefaultTimeout when zero).
	Timeout time.Duration
}

func (in *Initiator) timeout() time.Duration {
	if in.Timeout > 0 {
		return in.Timeout
	}
	return DefaultTimeout
}

// Run negotiates the items over conn and returns the engine result. The
// responder must be configured with the same items, defaults, and
// alternative count.
//
// A connection may carry many sessions back to back: every Run opens
// with a fresh Hello and ends with Done, so a long-running agent reuses
// one connection across negotiation epochs instead of redialing (the
// responder answers each Hello with ServeConn/ServeSession in turn).
func (in *Initiator) Run(conn net.Conn, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
	return in.RunConn(NewConn(conn), items, defaults, numAlts)
}

// RunConn is Run over a reusable Conn: a long-lived agent wraps each
// peer connection once and amortizes the frame buffers across all the
// sessions (epochs) it initiates on it.
func (in *Initiator) RunConn(c *Conn, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, error) {
	if in.Cfg.PrefBound > 127 {
		return nil, fmt.Errorf("nexitwire: preference bound %d exceeds the wire format's int8 classes", in.Cfg.PrefBound)
	}
	s := c.s.reset(in.timeout())

	if err := s.sendEnc(MsgHello, appendHello(s.enc[:0], &Hello{
		Version:      Version,
		Name:         in.Name,
		NumAlts:      uint16(numAlts),
		NumItems:     uint32(len(items)),
		WorkloadHash: WorkloadHash(items, defaults, numAlts),
		Metric:       metricName(in.Metric),
		Epoch:        uint32(in.Epoch),
	})); err != nil {
		return nil, err
	}
	body, err := s.expect(MsgHelloAck)
	if err != nil {
		return nil, err
	}
	ack, err := decodeHello(body)
	if err != nil {
		return nil, err
	}
	if ack.Version != Version {
		return nil, s.abort(fmt.Errorf("nexitwire: peer version %d, want %d", ack.Version, Version))
	}
	if metricName(ack.Metric) != metricName(in.Metric) {
		return nil, s.abort(fmt.Errorf("nexitwire: metric mismatch: peer negotiates %q, we negotiate %q",
			metricName(ack.Metric), metricName(in.Metric)))
	}
	if int(ack.Epoch) != in.Epoch {
		skew := &EpochSkewError{Initiator: in.Epoch, Responder: int(ack.Epoch)}
		_ = s.abort(skew)
		return nil, fmt.Errorf("nexitwire: %w", skew)
	}
	// Re-check the universe symmetrically: a responder that skipped its
	// own validation cannot drag us into a mismatched session that
	// would only surface later as a framing or audit error.
	switch {
	case int(ack.NumAlts) != numAlts:
		return nil, s.abort(fmt.Errorf("nexitwire: peer acked %d alternatives, we have %d", ack.NumAlts, numAlts))
	case int(ack.NumItems) != len(items):
		return nil, s.abort(fmt.Errorf("nexitwire: peer acked %d items, we have %d", ack.NumItems, len(items)))
	case ack.WorkloadHash != WorkloadHash(items, defaults, numAlts):
		return nil, s.abort(fmt.Errorf("nexitwire: workload hash mismatch in ack"))
	}

	remote := &remoteEvaluator{s: s, own: in.Eval, numAlts: numAlts}
	cfg := in.Cfg
	cfg.BatchAcceptHook = func(batch []nexit.Proposal) int {
		// The remote agent ratifies every proposal: when it is the
		// acceptor this is the paper's veto; when the engine proposed on
		// its behalf, ratification confirms the simulated turn. The whole
		// planned run travels in one ProposeBatch frame; the responder
		// commits the prefix it accepts, so the echoes of those commits
		// from the engine are suppressed.
		limit := len(batch)
		if remote.err != nil {
			// The session is already dead and the result will be
			// discarded (RunConn returns remote.err) — accept everything
			// so the engine winds down on the cheap all-accept path
			// instead of replanning after a veto per proposal.
			return limit
		}
		if in.Accept != nil {
			// The initiator's own accept policy vetoes proposals made on
			// the responder's turn before they are put on the wire; the
			// batch is truncated there so the responder never commits
			// past our own veto.
			for i := range batch {
				if batch[i].Proposer == nexit.SideB && !in.Accept(batch[i]) {
					limit = i
					break
				}
			}
		}
		if limit == 0 {
			return 0
		}
		accepted, err := remote.proposeBatch(batch[:limit])
		if err != nil {
			remote.err = err
			return limit // dead session: wind down, result is discarded
		}
		remote.suppress += accepted
		if accepted < limit {
			return accepted
		}
		return limit
	}

	res, err := nexit.Negotiate(cfg, in.Eval, remote, items, defaults, numAlts)
	if err != nil {
		_ = s.abort(err)
		return nil, err
	}
	if remote.err != nil {
		return nil, remote.err
	}

	done := &Done{
		Assign:     make([]uint16, len(res.Assign)),
		GainA:      int32(res.GainA),
		GainB:      int32(res.GainB),
		StopReason: uint8(res.Stopped),
		Rounds:     uint32(res.Rounds),
	}
	for i, a := range res.Assign {
		done.Assign[i] = uint16(a)
	}
	if err := s.sendEnc(MsgDone, appendDone(s.enc[:0], done)); err != nil {
		return nil, err
	}
	return res, nil
}

// remoteEvaluator proxies the responder's evaluator over the wire. Its
// Prefs call also discloses the initiator's own preferences for the same
// items, mirroring the paper's two-way information exchange and letting
// the responder audit the session.
type remoteEvaluator struct {
	s       *session
	own     nexit.Evaluator
	numAlts int
	err     error
	// suppress counts engine commits already applied responder-side by
	// a fused ProposeBatch, so they are not echoed as Commit frames.
	suppress int
	// scratch buffers reused across the session's wire calls. The rows
	// returned by Prefs alias prefRows; that is safe because the engine
	// clamps them into its own tables before the next call.
	req      PrefsRequest
	prefRows [][]int
	prefFlat []int
	batch    []AcceptRequest
}

// Prefs implements nexit.Evaluator. The returned rows are scratch,
// valid until the next Prefs call; the engine (the only caller) copies
// them immediately.
func (r *remoteEvaluator) Prefs(items []nexit.Item, defaults []int) [][]int {
	need := len(items) * r.numAlts
	if cap(r.prefFlat) < need {
		r.prefFlat = make([]int, need)
	}
	flat := r.prefFlat[:need]
	for i := range flat {
		flat[i] = 0
	}
	out := r.prefRows[:0]
	for i := 0; i < len(items); i++ {
		out = append(out, flat[i*r.numAlts:(i+1)*r.numAlts])
	}
	r.prefRows = out
	if r.err != nil {
		return out
	}
	req := &r.req
	req.ItemIDs = req.ItemIDs[:0]
	req.Defaults = req.Defaults[:0]
	for i, it := range items {
		req.ItemIDs = append(req.ItemIDs, uint32(it.ID))
		req.Defaults = append(req.Defaults, uint16(defaults[i]))
	}
	if err := r.s.sendEnc(MsgPrefsRequest, appendPrefsRequest(r.s.enc[:0], req)); err != nil {
		r.err = err
		return out
	}
	body, err := r.s.expect(MsgPrefsResponse)
	if err != nil {
		r.err = err
		return out
	}
	resp, err := decodePrefsResponse(body)
	if err != nil {
		r.err = err
		return out
	}
	if len(resp.Prefs) != len(items) {
		r.err = fmt.Errorf("nexitwire: peer sent %d pref rows for %d items", len(resp.Prefs), len(items))
		return out
	}
	for i, row := range resp.Prefs {
		if len(row) != r.numAlts {
			r.err = fmt.Errorf("nexitwire: peer sent %d classes for %d alternatives", len(row), r.numAlts)
			return out
		}
		for k, p := range row {
			out[i][k] = int(p)
		}
	}
	return out
}

// Commit implements nexit.Evaluator. Commits the responder already
// applied as part of an accepted batch are consumed silently; anything
// else (none today, but the per-item frames remain in the protocol) is
// forwarded.
func (r *remoteEvaluator) Commit(it nexit.Item, alt int) {
	if r.suppress > 0 {
		r.suppress--
		return
	}
	if r.err != nil {
		return
	}
	if err := r.s.sendEnc(MsgCommit, appendCommit(r.s.enc[:0], &Commit{ItemID: uint32(it.ID), Alt: uint16(alt)})); err != nil {
		r.err = err
	}
}

// Revert implements nexit.Reverter, forwarding terminal unwinds so the
// responder's assignment view and gain accounting stay in sync.
func (r *remoteEvaluator) Revert(it nexit.Item, alt, def int) {
	if r.err != nil {
		return
	}
	if err := r.s.sendEnc(MsgRevert, appendRevert(r.s.enc[:0], &Revert{
		ItemID: uint32(it.ID), Alt: uint16(alt), Def: uint16(def),
	})); err != nil {
		r.err = err
	}
}

// proposeBatch submits a planned run of proposals and returns how many
// leading ones the responder accepted (and committed).
func (r *remoteEvaluator) proposeBatch(batch []nexit.Proposal) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	pb := r.batch[:0]
	for i := range batch {
		p := &batch[i]
		pb = append(pb, AcceptRequest{
			Round:         uint32(p.Round),
			ItemID:        uint32(p.ItemID),
			Alt:           uint16(p.Alt),
			PrefInitiator: int8(p.PrefA),
		})
	}
	r.batch = pb
	if err := r.s.sendEnc(MsgProposeBatch, appendProposeBatch(r.s.enc[:0], &ProposeBatch{Proposals: pb})); err != nil {
		return 0, err
	}
	body, err := r.s.expect(MsgBatchAccept)
	if err != nil {
		return 0, err
	}
	resp, err := decodeBatchAccept(body)
	if err != nil {
		return 0, err
	}
	if int(resp.Accepted) > len(batch) {
		return 0, fmt.Errorf("nexitwire: peer accepted %d of %d batched proposals", resp.Accepted, len(batch))
	}
	return int(resp.Accepted), nil
}

// Responder serves one side of a negotiation: it answers preference and
// accept queries from its private evaluator and tracks the committed
// assignment.
type Responder struct {
	Name string
	// Metric names the negotiation objective this responder serves
	// (empty means DefaultMetric). A Hello naming any other metric is
	// rejected with a labelled reason before the engine runs.
	Metric string
	// Epoch is the negotiation epoch this responder serves. A Hello
	// naming a different epoch is rejected with a typed EpochSkewError
	// (a daemon fast-forwards the behind side before it gets here; the
	// check is the last line of defense against a silent desync).
	Epoch int
	// Eval is the responder's evaluator (protocol side B).
	Eval nexit.Evaluator
	// Accept, when non-nil, decides accept/veto; nil accepts everything.
	Accept func(p AcceptRequest) bool
	// Timeout bounds each wire exchange (DefaultTimeout when zero).
	Timeout time.Duration

	// Items, Defaults, and NumAlts define the negotiation universe; they
	// must match the initiator's.
	Items    []nexit.Item
	Defaults []int
	NumAlts  int
}

func (r *Responder) timeout() time.Duration {
	if r.Timeout > 0 {
		return r.Timeout
	}
	return DefaultTimeout
}

// AcceptHello reads the opening Hello of an inbound session without
// committing to a negotiation universe. A daemon serving several
// neighbors uses it to identify the calling peer (Hello.Name,
// Hello.WorkloadHash) before choosing which universe — and which
// Responder — handles the session; pass the hello on to
// Responder.ServeSession to continue. A zero timeout selects
// DefaultTimeout. io.EOF is returned unwrapped when the peer closes the
// connection cleanly between sessions.
func AcceptHello(conn net.Conn, timeout time.Duration) (*Hello, error) {
	return AcceptHelloConn(NewConn(conn), timeout)
}

// AcceptHelloConn is AcceptHello over a reusable Conn.
func AcceptHelloConn(c *Conn, timeout time.Duration) (*Hello, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	s := c.s.reset(timeout)
	t, body, err := s.recv()
	if err != nil {
		return nil, err
	}
	if t != MsgHello {
		return nil, s.unexpected(t)
	}
	return decodeHello(body)
}

// Reject answers an inbound session with an error frame and reason; a
// daemon uses it when the Hello names a peer it is not configured for.
// A zero timeout selects DefaultTimeout.
func Reject(conn net.Conn, timeout time.Duration, reason string) error {
	return RejectConn(NewConn(conn), timeout, reason)
}

// RejectConn is Reject over a reusable Conn.
func RejectConn(c *Conn, timeout time.Duration, reason string) error {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	s := c.s.reset(timeout)
	return s.sendEnc(MsgError, appendError(s.enc[:0], &ErrorMsg{Reason: reason}))
}

// ServeConn handles one session and returns the final result. It
// validates the Hello against the locally configured universe, then
// serves preference, accept, and commit frames until Done. Like
// Initiator.Run, it may be called repeatedly on one connection: each
// call consumes exactly one Hello...Done session.
func (r *Responder) ServeConn(conn net.Conn) (*SessionResult, error) {
	hello, err := AcceptHello(conn, r.timeout())
	if err != nil {
		return nil, err
	}
	return r.ServeSession(conn, hello)
}

// ServeSession handles one session whose opening Hello has already been
// read (see AcceptHello). It validates the hello against the locally
// configured universe and serves the rest of the session.
func (r *Responder) ServeSession(conn net.Conn, hello *Hello) (*SessionResult, error) {
	return r.ServeSessionConn(NewConn(conn), hello)
}

// ServeSessionConn is ServeSession over a reusable Conn; pair it with
// AcceptHelloConn on the same Conn so the whole inbound side of a
// long-lived connection shares one set of frame buffers.
func (r *Responder) ServeSessionConn(c *Conn, hello *Hello) (*SessionResult, error) {
	s := c.s.reset(r.timeout())
	wantHash := WorkloadHash(r.Items, r.Defaults, r.NumAlts)
	switch {
	case hello.Version != Version:
		return nil, s.abort(fmt.Errorf("nexitwire: peer version %d, want %d", hello.Version, Version))
	case metricName(hello.Metric) != metricName(r.Metric):
		return nil, s.abort(fmt.Errorf("nexitwire: metric mismatch: peer negotiates %q, we negotiate %q",
			metricName(hello.Metric), metricName(r.Metric)))
	case int(hello.Epoch) != r.Epoch:
		return nil, s.abort(&EpochSkewError{Initiator: int(hello.Epoch), Responder: r.Epoch})
	case int(hello.NumAlts) != r.NumAlts:
		return nil, s.abort(fmt.Errorf("nexitwire: peer has %d alternatives, we have %d", hello.NumAlts, r.NumAlts))
	case int(hello.NumItems) != len(r.Items):
		return nil, s.abort(fmt.Errorf("nexitwire: peer has %d items, we have %d", hello.NumItems, len(r.Items)))
	case hello.WorkloadHash != wantHash:
		return nil, s.abort(fmt.Errorf("nexitwire: workload hash mismatch"))
	}
	if err := s.sendEnc(MsgHelloAck, appendHello(s.enc[:0], &Hello{
		Version: Version, Name: r.Name,
		NumAlts: uint16(r.NumAlts), NumItems: uint32(len(r.Items)),
		WorkloadHash: wantHash,
		Metric:       metricName(r.Metric),
		Epoch:        uint32(r.Epoch),
	})); err != nil {
		return nil, err
	}

	assign := append([]int(nil), r.Defaults...)
	gainB := 0
	// lastPrefs remembers the classes most recently disclosed per item,
	// for accounting the cumulative gain as commits arrive. Evaluator
	// Prefs rows live on reusable scratch (see the nexit.Evaluator
	// ownership contract), so the classes are COPIED into this flat
	// session-owned buffer — a retained row pointer would be clobbered
	// by the next reassignment's Prefs call. Undisclosed or
	// out-of-range entries stay zero, matching the old map's "missing
	// row contributes nothing" accounting.
	lastPrefs := make([]int, len(r.Items)*r.NumAlts)
	lastSeen := make([]bool, len(r.Items))
	// commit fuses the bookkeeping a Commit frame (or an accepted
	// batched proposal) triggers.
	commit := func(itemID, alt int) {
		assign[itemID] = alt
		if lastSeen[itemID] && alt < r.NumAlts {
			gainB += lastPrefs[itemID*r.NumAlts+alt]
		}
		r.Eval.Commit(r.Items[itemID], alt)
	}
	// Per-request scratch, reused across the session's serve loop.
	var (
		items    []nexit.Item
		defaults []int
		resp     PrefsResponse
		respFlat []int8
	)

	for {
		t, body, err := s.recv()
		if err != nil {
			return nil, err
		}
		switch t {
		case MsgPrefsRequest:
			req, err := decodePrefsRequest(body)
			if err != nil {
				return nil, err
			}
			items = items[:0]
			defaults = defaults[:0]
			for i, id := range req.ItemIDs {
				if int(id) >= len(r.Items) {
					return nil, s.abort(fmt.Errorf("nexitwire: peer referenced unknown item %d", id))
				}
				items = append(items, r.Items[id])
				defaults = append(defaults, int(req.Defaults[i]))
			}
			prefs := r.Eval.Prefs(items, defaults)
			if need := len(prefs) * r.NumAlts; cap(respFlat) < need {
				respFlat = make([]int8, need)
			}
			resp.Prefs = resp.Prefs[:0]
			for i, row := range prefs {
				out := respFlat[i*r.NumAlts : (i+1)*r.NumAlts]
				for k := range out {
					out[k] = 0
				}
				for k := 0; k < r.NumAlts && k < len(row); k++ {
					p := row[k]
					if p > 127 {
						p = 127
					}
					if p < -128 {
						p = -128
					}
					out[k] = int8(p)
				}
				resp.Prefs = append(resp.Prefs, out)
				id := items[i].ID
				keep := lastPrefs[id*r.NumAlts : (id+1)*r.NumAlts]
				for k := range keep {
					keep[k] = 0
				}
				copy(keep, row)
				lastSeen[id] = true
			}
			if err := s.sendEnc(MsgPrefsResponse, appendPrefsResponse(s.enc[:0], &resp)); err != nil {
				return nil, err
			}
		case MsgAcceptRequest:
			req, err := decodeAcceptRequest(body)
			if err != nil {
				return nil, err
			}
			accepted := true
			if r.Accept != nil {
				accepted = r.Accept(*req)
			}
			if err := s.sendEnc(MsgAcceptResponse, appendAcceptResponse(s.enc[:0], &AcceptResponse{Accepted: accepted})); err != nil {
				return nil, err
			}
		case MsgProposeBatch:
			pb, err := decodeProposeBatch(body)
			if err != nil {
				return nil, err
			}
			// Decide the run in order, committing accepted proposals as
			// an AcceptRequest + Commit would have, and stop at the
			// first veto: the discarded tail was planned assuming the
			// vetoed proposal stood, so it is void.
			accepted := 0
			for i := range pb.Proposals {
				req := &pb.Proposals[i]
				if int(req.ItemID) >= len(r.Items) || int(req.Alt) >= r.NumAlts {
					return nil, s.abort(fmt.Errorf("nexitwire: batched proposal out of range"))
				}
				if r.Accept != nil && !r.Accept(*req) {
					break
				}
				commit(int(req.ItemID), int(req.Alt))
				accepted++
			}
			if err := s.sendEnc(MsgBatchAccept, appendBatchAccept(s.enc[:0], &BatchAccept{Accepted: uint32(accepted)})); err != nil {
				return nil, err
			}
		case MsgCommit:
			c, err := decodeCommit(body)
			if err != nil {
				return nil, err
			}
			if int(c.ItemID) >= len(r.Items) || int(c.Alt) >= r.NumAlts {
				return nil, s.abort(fmt.Errorf("nexitwire: commit out of range"))
			}
			commit(int(c.ItemID), int(c.Alt))
		case MsgRevert:
			c, err := decodeRevert(body)
			if err != nil {
				return nil, err
			}
			if int(c.ItemID) >= len(r.Items) || int(c.Alt) >= r.NumAlts || int(c.Def) >= r.NumAlts {
				return nil, s.abort(fmt.Errorf("nexitwire: revert out of range"))
			}
			if assign[c.ItemID] != int(c.Alt) {
				return nil, s.abort(fmt.Errorf("nexitwire: revert of item %d does not match committed alternative", c.ItemID))
			}
			assign[c.ItemID] = int(c.Def)
			if lastSeen[c.ItemID] {
				gainB -= lastPrefs[int(c.ItemID)*r.NumAlts+int(c.Alt)]
			}
			if rev, ok := r.Eval.(nexit.Reverter); ok {
				rev.Revert(r.Items[c.ItemID], int(c.Alt), int(c.Def))
			}
		case MsgDone:
			done, err := decodeDone(body)
			if err != nil {
				return nil, err
			}
			if len(done.Assign) != len(r.Items) {
				return nil, fmt.Errorf("nexitwire: done carries %d assignments for %d items", len(done.Assign), len(r.Items))
			}
			// Audit: the initiator's reported assignment must match the
			// commits we observed, and its claim of our gain must match
			// our own accounting.
			for i, a := range done.Assign {
				if int(a) != assign[i] {
					return nil, fmt.Errorf("nexitwire: assignment mismatch at item %d: peer says %d, we committed %d", i, a, assign[i])
				}
			}
			if int(done.GainB) != gainB {
				return nil, fmt.Errorf("nexitwire: peer reports our gain as %d, we account %d", done.GainB, gainB)
			}
			return &SessionResult{
				Assign: assign,
				GainA:  int(done.GainA),
				GainB:  gainB,
				Rounds: int(done.Rounds),

				StopReason: nexit.StopReason(done.StopReason),
			}, nil
		case MsgError:
			em, err := decodeError(body)
			if err != nil {
				return nil, err
			}
			return nil, peerError(em.Reason)
		default:
			return nil, s.unexpected(t)
		}
	}
}

// session wraps a connection with framed, deadline-bounded exchanges.
// Its buffers — the frame writer's output buffer, the encode scratch,
// and the read scratch — are reused across frames, and, when the
// session lives inside a Conn, across every session the connection
// carries. Received frame bodies alias rbuf and are only valid until
// the next recv; decoders copy everything they keep (the buffer-
// ownership contract, DESIGN.md §9).
type session struct {
	conn    net.Conn
	fw      frameWriter
	timeout time.Duration
	enc     []byte // outbound payload scratch (appendX builds on it)
	rbuf    []byte // inbound frame scratch (bodies alias it)

	// armedRead/armedWrite coarsen deadline re-arming: net.Conn
	// deadlines cost a timer update per call (net.Pipe allocates one),
	// so a deadline armed less than a quarter-timeout ago is kept. Every
	// exchange still completes or fails within [3/4, 1]x timeout.
	armedRead  time.Time
	armedWrite time.Time

	// stats accumulates frame/byte counts and per-phase wire time for
	// the connection's owner (Conn.TakeStats). Plain fields: one
	// session at a time means one writer.
	stats WireStats
}

// reset prepares the session for a (new) run of exchanges with the
// given timeout, keeping its buffers.
func (s *session) reset(timeout time.Duration) *session {
	if s.timeout != timeout {
		s.timeout = timeout
		s.armedRead, s.armedWrite = time.Time{}, time.Time{}
	}
	return s
}

func (s *session) send(t MsgType, payload []byte) error {
	now := time.Now()
	if now.Sub(s.armedWrite) > s.timeout>>2 {
		if err := s.conn.SetWriteDeadline(now.Add(s.timeout)); err != nil {
			return err
		}
		s.armedWrite = now
	}
	err := s.fw.writeFrame(t, payload)
	if err == nil {
		s.stats.observeSent(t, len(payload), time.Since(now))
	}
	return s.stallErr("send "+t.String(), err)
}

// sendEnc sends a payload built on the session's encode scratch (via
// the appendX encoders) and retains the grown buffer for the next
// message.
func (s *session) sendEnc(t MsgType, payload []byte) error {
	s.enc = payload[:0]
	return s.send(t, payload)
}

func (s *session) recv() (MsgType, []byte, error) {
	now := time.Now()
	if now.Sub(s.armedRead) > s.timeout>>2 {
		if err := s.conn.SetReadDeadline(now.Add(s.timeout)); err != nil {
			return 0, nil, err
		}
		s.armedRead = now
	}
	t, body, scratch, err := readFrameInto(s.conn, s.rbuf)
	s.rbuf = scratch
	if err == nil {
		s.stats.observeRecv(t, len(body), time.Since(now))
	}
	return t, body, s.stallErr("awaiting reply", err)
}

// stallErr labels deadline expiries with the exchange that stalled and
// the configured timeout, so "peer went silent mid-session" surfaces as
// more than a bare i/o error. errors.Is(err, os.ErrDeadlineExceeded)
// still holds on the result.
func (s *session) stallErr(op string, err error) error {
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("nexitwire: peer stalled (%s exceeded the %v exchange timeout): %w", op, s.timeout, err)
	}
	return err
}

// expect receives one frame and requires it to be of the given type. A
// peer abort (MsgError) surfaces as the peer's reason rather than a
// protocol violation.
func (s *session) expect(want MsgType) ([]byte, error) {
	t, body, err := s.recv()
	if err != nil {
		return nil, err
	}
	switch t {
	case want:
		return body, nil
	case MsgError:
		em, err := decodeError(body)
		if err != nil {
			return nil, err
		}
		return nil, peerError(em.Reason)
	default:
		return nil, s.unexpected(t)
	}
}

// unexpected reports a protocol violation.
func (s *session) unexpected(t MsgType) error {
	err := fmt.Errorf("nexitwire: unexpected %v frame", t)
	_ = s.abort(err)
	return err
}

// abort best-effort notifies the peer before failing.
func (s *session) abort(err error) error {
	_ = s.sendEnc(MsgError, appendError(s.enc[:0], &ErrorMsg{Reason: err.Error()}))
	return err
}

// Conn wraps a net.Conn with the reusable frame machinery — write
// buffer, encode scratch, read scratch — that would otherwise be
// reallocated for every session a long-lived connection carries. A
// daemon that keeps one connection per peer direction should create one
// Conn per connection and pass it to RunConn / AcceptHelloConn /
// ServeSessionConn; the net.Conn-based entry points remain as
// single-session conveniences. A Conn serves one session at a time,
// like the underlying protocol.
type Conn struct {
	s session
}

// NewConn wraps c. It does not take over lifecycle management: closing
// remains the caller's job (Close forwards for convenience).
func NewConn(c net.Conn) *Conn {
	return &Conn{s: session{conn: c, fw: frameWriter{w: c}}}
}

// NetConn returns the wrapped connection.
func (c *Conn) NetConn() net.Conn { return c.s.conn }

// Close closes the wrapped connection.
func (c *Conn) Close() error { return c.s.conn.Close() }

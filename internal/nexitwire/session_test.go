package nexitwire

import (
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/nexit"
)

// TestWireStalledPeerTimeout proves the per-exchange Timeout fires: a
// peer that completes the handshake and then goes silent must fail the
// session within the configured bound, with an error that names the
// stall and still matches os.ErrDeadlineExceeded.
func TestWireStalledPeerTimeout(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	// The stalled peer: answer the Hello (echoing it back acknowledges
	// the same universe), then swallow every frame without replying.
	go func() {
		typ, body, err := readFrame(connB)
		if err != nil || typ != MsgHello {
			return
		}
		hello, err := decodeHello(body)
		if err != nil {
			return
		}
		fw := frameWriter{w: connB}
		if err := fw.writeFrame(MsgHelloAck, encodeHello(hello)); err != nil {
			return
		}
		for {
			if _, _, err := readFrame(connB); err != nil {
				return
			}
		}
	}()

	ini := &Initiator{
		Name:    "agent-a",
		Cfg:     nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 100 * time.Millisecond,
	}
	start := time.Now()
	_, err := ini.Run(connA, items, defaults, numAlts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("session against a stalled peer succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("error does not match os.ErrDeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "stalled") || !strings.Contains(err.Error(), "100ms") {
		t.Errorf("error does not name the stall and timeout: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("timeout took %v to fire with a 100ms bound", elapsed)
	}
}

// TestWireResponderStallTimeout covers the serving side: an initiator
// that sends the Hello and nothing else must not hang the responder.
func TestWireResponderStallTimeout(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	errCh := make(chan error, 1)
	go func() {
		resp := &Responder{
			Name:     "agent-b",
			Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
			Items:    items,
			Defaults: defaults,
			NumAlts:  numAlts,
			Timeout:  100 * time.Millisecond,
		}
		_, err := resp.ServeConn(connB)
		errCh <- err
	}()

	// Send a valid Hello, read the ack, then go silent (but keep
	// draining so the responder's writes are not what blocks).
	fw := frameWriter{w: connA}
	hello := &Hello{
		Version: Version, Name: "agent-a",
		NumAlts: uint16(numAlts), NumItems: uint32(len(items)),
		WorkloadHash: WorkloadHash(items, defaults, numAlts),
	}
	if err := fw.writeFrame(MsgHello, encodeHello(hello)); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, _, err := readFrame(connA); err != nil {
				return
			}
		}
	}()

	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("responder returned success against a silent initiator")
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("error does not match os.ErrDeadlineExceeded: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("responder hung on a silent initiator")
	}
}

// TestWireSessionReuse runs several back-to-back sessions on one
// connection — the daemon's epoch pattern — and checks every session
// matches the in-process engine.
func TestWireSessionReuse(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	ref, err := nexit.Negotiate(nexit.DefaultDistanceConfig(),
		nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		items, defaults, numAlts)
	if err != nil {
		t.Fatal(err)
	}

	connA, connB := net.Pipe()
	defer connA.Close()

	const epochs = 3
	type out struct {
		res *SessionResult
		err error
	}
	ch := make(chan out, epochs+1)
	go func() {
		defer connB.Close()
		resp := &Responder{
			Name:     "agent-b",
			Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
			Items:    items,
			Defaults: defaults,
			NumAlts:  numAlts,
			Timeout:  5 * time.Second,
		}
		for {
			hello, err := AcceptHello(connB, resp.Timeout)
			if err != nil {
				ch <- out{nil, err}
				return
			}
			if hello.Name != "agent-a" {
				t.Errorf("hello names peer %q", hello.Name)
			}
			r, err := resp.ServeSession(connB, hello)
			ch <- out{r, err}
			if err != nil {
				return
			}
		}
	}()

	ini := &Initiator{
		Name:    "agent-a",
		Cfg:     nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 5 * time.Second,
	}
	for e := 0; e < epochs; e++ {
		res, err := ini.Run(connA, items, defaults, numAlts)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		sess := <-ch
		if sess.err != nil {
			t.Fatalf("epoch %d responder: %v", e, sess.err)
		}
		if !reflect.DeepEqual(res.Assign, ref.Assign) || !reflect.DeepEqual(sess.res.Assign, ref.Assign) {
			t.Errorf("epoch %d diverged from the in-process reference", e)
		}
		if sess.res.GainB != ref.GainB || res.GainA != ref.GainA {
			t.Errorf("epoch %d gains: wire (%d,%d), ref (%d,%d)",
				e, res.GainA, sess.res.GainB, ref.GainA, ref.GainB)
		}
	}

	// Closing the initiator side ends the responder loop with a clean EOF.
	connA.Close()
	last := <-ch
	if !errors.Is(last.err, io.EOF) {
		t.Errorf("responder loop ended with %v, want io.EOF", last.err)
	}
}

package nexitwire

import (
	"net"
	"testing"
	"time"

	"repro/internal/nexit"
)

// A full session's wire stats must balance: every frame one side sends
// is a frame the other receives, byte for byte, and phase time only
// accumulates in phases the session actually ran.
func TestWireStatsBalance(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	cA, cB := NewConn(connA), NewConn(connB)

	resp := &Responder{
		Name:     "agent-b",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		hello, err := AcceptHelloConn(cB, resp.Timeout)
		if err != nil {
			errCh <- err
			return
		}
		_, err = resp.ServeSessionConn(cB, hello)
		errCh <- err
	}()
	ini := &Initiator{
		Name:    "agent-a",
		Cfg:     nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 5 * time.Second,
	}
	if _, err := ini.RunConn(cA, items, defaults, numAlts); err != nil {
		t.Fatalf("initiator: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("responder: %v", err)
	}

	stA, stB := cA.TakeStats(), cB.TakeStats()
	if stA.FramesSent == 0 || stB.FramesSent == 0 {
		t.Fatalf("no frames recorded: %+v / %+v", stA, stB)
	}
	if stA.FramesSent != stB.FramesRecv || stB.FramesSent != stA.FramesRecv {
		t.Errorf("frame counts unbalanced: A %+v, B %+v", stA, stB)
	}
	if stA.BytesSent != stB.BytesRecv || stB.BytesSent != stA.BytesRecv {
		t.Errorf("byte counts unbalanced: A %+v, B %+v", stA, stB)
	}
	// Hello, prefs, and propose all ran; their blocking time must have
	// registered on the initiator (it waits for every reply).
	if stA.HelloNanos <= 0 || stA.PrefsNanos <= 0 || stA.ProposeNanos <= 0 {
		t.Errorf("initiator phase times missing: %+v", stA)
	}

	// Take is destructive: a second take sees a fresh accumulator.
	if again := cA.TakeStats(); again != (WireStats{}) {
		t.Errorf("second TakeStats = %+v, want zero", again)
	}

	merged := stA
	merged.Add(stB)
	if merged.FramesSent != stA.FramesSent+stB.FramesSent ||
		merged.BytesRecv != stA.BytesRecv+stB.BytesRecv ||
		merged.PrefsNanos != stA.PrefsNanos+stB.PrefsNanos {
		t.Errorf("Add miscounts: %+v", merged)
	}
}

// The per-frame instrumentation must not allocate: it runs inside the
// session hot path that DESIGN.md §9 stripped to near-zero allocs, and
// BENCH_runner.json's WireSession allocs/op budget assumes frames stay
// free. (The benchmark itself records the end-to-end number; this pins
// the observe calls in isolation.)
func TestWireStatsObserveDoesNotAllocate(t *testing.T) {
	var w WireStats
	if n := testing.AllocsPerRun(100, func() {
		w.observeSent(MsgProposeBatch, 512, time.Microsecond)
		w.observeRecv(MsgBatchAccept, 64, time.Microsecond)
	}); n != 0 {
		t.Fatalf("frame observation allocates %.1f objects/frame, want 0", n)
	}
}

// Every message type maps to exactly one phase bucket.
func TestWireStatsPhaseAttribution(t *testing.T) {
	var w WireStats
	w.observeSent(MsgHello, 10, time.Microsecond)
	w.observeSent(MsgPrefsResponse, 10, time.Microsecond)
	w.observeSent(MsgProposeBatch, 10, time.Microsecond)
	w.observeRecv(MsgDone, 10, time.Microsecond)
	us := int64(time.Microsecond)
	if w.HelloNanos != us || w.PrefsNanos != us || w.ProposeNanos != us || w.CommitNanos != us {
		t.Fatalf("phase attribution wrong: %+v", w)
	}
	if w.FramesSent != 3 || w.FramesRecv != 1 {
		t.Fatalf("frame counts wrong: %+v", w)
	}
	if w.BytesSent != 3*(frameOverhead+10) || w.BytesRecv != frameOverhead+10 {
		t.Fatalf("byte counts wrong: %+v", w)
	}
}

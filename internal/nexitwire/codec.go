// Package nexitwire implements the out-of-band negotiation-agent
// protocol of the paper's §6 (Figure 12): negotiation agents sit on top
// of each ISP's routing infrastructure, exchange opaque preference
// classes over a TCP connection, and drive the Nexit protocol to an
// agreed assignment that is then pushed into the routing state.
//
// The protocol is asymmetric, like a BGP session: the initiator runs the
// contractually agreed deterministic round engine (internal/nexit) and
// the responder serves its private preferences and accept/veto decisions
// over the wire. Because the full preference lists are exchanged, the
// responder can re-verify the entire transcript afterwards with
// VerifyTranscript — a mis-computing (or cheating) initiator is caught.
//
// Wire format: length-prefixed frames over any net.Conn. Each frame is
//
//	uint32 length (big endian, excludes itself)  |  uint8 type  |  payload
//
// All multi-byte integers are big endian. Preference classes are int8
// (the paper's P=10 fits comfortably).
//
// Sessions are metric-generic: the Hello names the objective being
// negotiated (distance, bandwidth, Fortz–Thorup, …) and both endpoints
// must agree or the responder rejects the session at open with a
// labelled Error frame. Together with the version and workload-hash
// checks this is the invariant the daemon layer leans on: a session
// either runs the exact universe both sides expect, or fails fast
// before either controller advances an epoch — never a silent desync.
// DESIGN.md §7 documents the full wire/metric contract.
package nexitwire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Version is the protocol version carried in Hello frames. The
	// compat rule (DESIGN.md §7): the Hello's fixed prefix through
	// WorkloadHash never changes shape, version-gated fields are only
	// ever appended (v2 added Metric, v3 added Epoch), and both
	// endpoints require an exact version match — a Hello from a
	// different version decodes far enough to read its version and is
	// then rejected with a labelled Error frame, never answered with a
	// desynced session.
	//
	// Version history: 1 = original framing; 2 = metric negotiation
	// (Hello carries the named objective, mismatches reject cleanly);
	// 3 = epoch resync (Hello carries the initiator's epoch index so a
	// restarted or lagging endpoint can fast-forward instead of staying
	// skewed forever); 4 = batched proposals (ProposeBatch/BatchAccept
	// collapse per-item accept+commit round trips into one exchange per
	// run of proposals).
	Version = 4
	// MaxFrameSize bounds incoming frames; a peer advertising more is
	// rejected rather than buffered (defense against resource
	// exhaustion, and no legitimate frame approaches it).
	MaxFrameSize = 16 << 20
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Frame types.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgPrefsRequest
	MsgPrefsResponse
	MsgAcceptRequest
	MsgAcceptResponse
	MsgCommit
	MsgRevert
	MsgDone
	MsgError
	// v4 batched frames, appended per the append-only compat rule.
	MsgProposeBatch
	MsgBatchAccept
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgPrefsRequest:
		return "prefs-request"
	case MsgPrefsResponse:
		return "prefs-response"
	case MsgAcceptRequest:
		return "accept-request"
	case MsgAcceptResponse:
		return "accept-response"
	case MsgCommit:
		return "commit"
	case MsgRevert:
		return "revert"
	case MsgDone:
		return "done"
	case MsgError:
		return "error"
	case MsgProposeBatch:
		return "propose-batch"
	case MsgBatchAccept:
		return "batch-accept"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// Hello opens a session. Both agents must agree on the negotiation
// universe — the number of alternatives and items, a hash of the
// workload, and (since v2) the named metric being negotiated — so that
// mismatched configurations fail fast with a labelled reason.
type Hello struct {
	Version      uint16
	Name         string // agent name, diagnostic only
	NumAlts      uint16
	NumItems     uint32
	WorkloadHash uint64
	// Metric names the negotiation objective (v2+; empty in v1 Hellos,
	// which DefaultMetric interprets). Both endpoints must agree, or
	// the responder rejects the session at open.
	Metric string
	// Epoch is the index of the negotiation epoch this session runs
	// (v3+; zero in older Hellos). It is the resync handshake: a
	// responder that is behind fast-forwards by deterministic local
	// replay before serving, and a responder that is ahead rejects with
	// an EpochSkewError naming both indices so the initiator can
	// fast-forward itself and retry — a restarted daemon rejoins the
	// mesh without operator intervention (DESIGN.md §7).
	Epoch uint32
}

// PrefsRequest asks the responder for its preference classes over the
// listed items (identified by negotiation item ID), with the default
// alternative of each.
type PrefsRequest struct {
	ItemIDs  []uint32
	Defaults []uint16
}

// PrefsResponse carries the responder's preference classes: one row per
// requested item, one int8 class per alternative.
type PrefsResponse struct {
	Prefs [][]int8
}

// AcceptRequest asks the responder whether it accepts a proposal.
type AcceptRequest struct {
	Round  uint32
	ItemID uint32
	Alt    uint16
	// PrefInitiator is the initiator's disclosed class for the proposed
	// alternative (the responder already knows its own).
	PrefInitiator int8
}

// AcceptResponse answers an AcceptRequest.
type AcceptResponse struct {
	Accepted bool
}

// Commit informs the responder that an item was agreed.
type Commit struct {
	ItemID uint32
	Alt    uint16
}

// Revert informs the responder that the terminal unwind moved an item
// back to its default alternative.
type Revert struct {
	ItemID uint32
	Alt    uint16 // the alternative being undone
	Def    uint16 // the default the item returns to
}

// Done closes the session with the final assignment and the initiator's
// view of the transcript for verification.
type Done struct {
	Assign     []uint16
	GainA      int32
	GainB      int32
	StopReason uint8
	Rounds     uint32
}

// ErrorMsg aborts the session with a reason.
type ErrorMsg struct {
	Reason string
}

// ProposeBatch (v4) carries a run of proposals the initiator's engine
// would make if each preceding one is accepted. The responder decides
// them in order — committing accepted proposals as if an AcceptRequest
// and a Commit had arrived back to back — and stops at its first veto,
// discarding the tail (those proposals were planned assuming the vetoed
// one stood, so they are void).
type ProposeBatch struct {
	Proposals []AcceptRequest
}

// BatchAccept answers a ProposeBatch: the responder accepted (and
// committed) the first Accepted proposals. Accepted < len(Proposals)
// means proposal [Accepted] was vetoed and the rest discarded.
type BatchAccept struct {
	Accepted uint32
}

// frameWriter serializes frames onto a writer.
type frameWriter struct {
	w   io.Writer
	buf []byte
}

func (fw *frameWriter) writeFrame(t MsgType, payload []byte) error {
	n := 1 + len(payload)
	if cap(fw.buf) < 4+n {
		fw.buf = make([]byte, 4+n)
	}
	b := fw.buf[:4+n]
	binary.BigEndian.PutUint32(b, uint32(n))
	b[4] = byte(t)
	copy(b[5:], payload)
	_, err := fw.w.Write(b)
	return err
}

// readFrame reads one frame from r into a fresh buffer.
func readFrame(r io.Reader) (MsgType, []byte, error) {
	t, body, _, err := readFrameInto(r, nil)
	return t, body, err
}

// readFrameInto reads one frame from r, reusing scratch as the read
// buffer when it is large enough. It returns the (possibly grown)
// scratch for the caller to keep for the next frame. The returned body
// ALIASES scratch: it is valid only until the next readFrameInto call
// with the same buffer, and decoders must copy what they keep (every
// decoder in this package does; wire_test.go's aliasing test pins it).
// The MaxFrameSize guard runs before any allocation, so a corrupt or
// hostile length prefix cannot make us buffer unbounded memory.
func readFrameInto(r io.Reader, scratch []byte) (MsgType, []byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, scratch, fmt.Errorf("nexitwire: empty frame")
	}
	if n > MaxFrameSize {
		return 0, nil, scratch, fmt.Errorf("nexitwire: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	body := scratch[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, scratch, err
	}
	return MsgType(body[0]), body[1:], scratch, nil
}

// --- payload encoding ------------------------------------------------

// enc is a tiny append-based encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i8(v int8)    { e.b = append(e.b, byte(v)) }
func (e *enc) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec is the matching decoder; it records the first error and returns
// zero values afterwards.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("nexitwire: truncated payload")
	}
}
func (d *dec) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *dec) u16() uint16 {
	if d.err != nil || len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}
func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *dec) i8() int8 { return int8(d.u8()) }
func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil || len(d.b) < n {
		d.fail()
		return ""
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v
}
func (d *dec) boolean() bool { return d.u8() != 0 }
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("nexitwire: %d trailing bytes in payload", len(d.b))
	}
	return nil
}

// Message marshaling.

func encodeHello(h *Hello) []byte { return appendHello(nil, h) }

func appendHello(b []byte, h *Hello) []byte {
	e := enc{b: b}
	e.u16(h.Version)
	e.str(h.Name)
	e.u16(h.NumAlts)
	e.u32(h.NumItems)
	e.u64(h.WorkloadHash)
	if h.Version >= 2 {
		e.str(h.Metric)
	}
	if h.Version >= 3 {
		e.u32(h.Epoch)
	}
	return e.b
}

func decodeHello(b []byte) (*Hello, error) {
	d := dec{b: b}
	h := &Hello{
		Version:      d.u16(),
		Name:         d.str(),
		NumAlts:      d.u16(),
		NumItems:     d.u32(),
		WorkloadHash: d.u64(),
	}
	if h.Version >= 2 {
		h.Metric = d.str()
	}
	if h.Version >= 3 {
		h.Epoch = d.u32()
	}
	if h.Version > Version {
		// A newer peer may have appended fields we do not know. Keep
		// what we parsed — without insisting on an empty remainder —
		// so the caller's version check can reject with a clean,
		// labelled reason instead of a framing error.
		if d.err != nil {
			return nil, d.err
		}
		return h, nil
	}
	return h, d.done()
}

func encodePrefsRequest(m *PrefsRequest) []byte { return appendPrefsRequest(nil, m) }

func appendPrefsRequest(b []byte, m *PrefsRequest) []byte {
	e := enc{b: b}
	e.u32(uint32(len(m.ItemIDs)))
	for i := range m.ItemIDs {
		e.u32(m.ItemIDs[i])
		e.u16(m.Defaults[i])
	}
	return e.b
}

func decodePrefsRequest(b []byte) (*PrefsRequest, error) {
	d := dec{b: b}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if n > len(b)/6+1 {
		return nil, fmt.Errorf("nexitwire: prefs request claims %d items", n)
	}
	m := &PrefsRequest{ItemIDs: make([]uint32, 0, n), Defaults: make([]uint16, 0, n)}
	for i := 0; i < n; i++ {
		m.ItemIDs = append(m.ItemIDs, d.u32())
		m.Defaults = append(m.Defaults, d.u16())
	}
	return m, d.done()
}

func encodePrefsResponse(m *PrefsResponse) []byte { return appendPrefsResponse(nil, m) }

func appendPrefsResponse(b []byte, m *PrefsResponse) []byte {
	e := enc{b: b}
	e.u32(uint32(len(m.Prefs)))
	if len(m.Prefs) > 0 {
		e.u16(uint16(len(m.Prefs[0])))
		for _, row := range m.Prefs {
			for _, p := range row {
				e.i8(p)
			}
		}
	} else {
		e.u16(0)
	}
	return e.b
}

func decodePrefsResponse(b []byte) (*PrefsResponse, error) {
	d := dec{b: b}
	rows := int(d.u32())
	cols := int(d.u16())
	if d.err != nil {
		return nil, d.err
	}
	// Guard allocations against lying headers: every row costs at least
	// max(cols, 1) payload bytes' worth of memory, and a zero-column
	// response can only legitimately have zero rows.
	if rows > len(b) || (rows > 0 && cols == 0) || (cols > 0 && rows > len(b)/cols) {
		return nil, fmt.Errorf("nexitwire: prefs response claims %dx%d classes", rows, cols)
	}
	m := &PrefsResponse{Prefs: make([][]int8, rows)}
	for i := 0; i < rows; i++ {
		m.Prefs[i] = make([]int8, cols)
		for j := 0; j < cols; j++ {
			m.Prefs[i][j] = d.i8()
		}
	}
	return m, d.done()
}

func encodeAcceptRequest(m *AcceptRequest) []byte { return appendAcceptRequest(nil, m) }

func appendAcceptRequest(b []byte, m *AcceptRequest) []byte {
	e := enc{b: b}
	e.u32(m.Round)
	e.u32(m.ItemID)
	e.u16(m.Alt)
	e.i8(m.PrefInitiator)
	return e.b
}

func decodeAcceptRequest(b []byte) (*AcceptRequest, error) {
	d := dec{b: b}
	m := &AcceptRequest{
		Round:         d.u32(),
		ItemID:        d.u32(),
		Alt:           d.u16(),
		PrefInitiator: d.i8(),
	}
	return m, d.done()
}

func encodeAcceptResponse(m *AcceptResponse) []byte { return appendAcceptResponse(nil, m) }

func appendAcceptResponse(b []byte, m *AcceptResponse) []byte {
	e := enc{b: b}
	e.boolean(m.Accepted)
	return e.b
}

func decodeAcceptResponse(b []byte) (*AcceptResponse, error) {
	d := dec{b: b}
	m := &AcceptResponse{Accepted: d.boolean()}
	return m, d.done()
}

func encodeCommit(m *Commit) []byte { return appendCommit(nil, m) }

func appendCommit(b []byte, m *Commit) []byte {
	e := enc{b: b}
	e.u32(m.ItemID)
	e.u16(m.Alt)
	return e.b
}

func decodeCommit(b []byte) (*Commit, error) {
	d := dec{b: b}
	m := &Commit{ItemID: d.u32(), Alt: d.u16()}
	return m, d.done()
}

func encodeRevert(m *Revert) []byte { return appendRevert(nil, m) }

func appendRevert(b []byte, m *Revert) []byte {
	e := enc{b: b}
	e.u32(m.ItemID)
	e.u16(m.Alt)
	e.u16(m.Def)
	return e.b
}

func decodeRevert(b []byte) (*Revert, error) {
	d := dec{b: b}
	m := &Revert{ItemID: d.u32(), Alt: d.u16(), Def: d.u16()}
	return m, d.done()
}

func encodeDone(m *Done) []byte { return appendDone(nil, m) }

func appendDone(b []byte, m *Done) []byte {
	e := enc{b: b}
	e.u32(uint32(len(m.Assign)))
	for _, a := range m.Assign {
		e.u16(a)
	}
	e.u32(uint32(m.GainA))
	e.u32(uint32(m.GainB))
	e.u8(m.StopReason)
	e.u32(m.Rounds)
	return e.b
}

func decodeDone(b []byte) (*Done, error) {
	d := dec{b: b}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	if n > len(b)/2 {
		return nil, fmt.Errorf("nexitwire: done claims %d assignments", n)
	}
	m := &Done{Assign: make([]uint16, 0, n)}
	for i := 0; i < n; i++ {
		m.Assign = append(m.Assign, d.u16())
	}
	m.GainA = int32(d.u32())
	m.GainB = int32(d.u32())
	m.StopReason = d.u8()
	m.Rounds = d.u32()
	return m, d.done()
}

func encodeError(m *ErrorMsg) []byte { return appendError(nil, m) }

func appendError(b []byte, m *ErrorMsg) []byte {
	e := enc{b: b}
	e.str(m.Reason)
	return e.b
}

func decodeError(b []byte) (*ErrorMsg, error) {
	d := dec{b: b}
	m := &ErrorMsg{Reason: d.str()}
	return m, d.done()
}

// proposalWireSize is the encoded size of one batched proposal: round
// u32 + item u32 + alt u16 + class i8.
const proposalWireSize = 11

func encodeProposeBatch(m *ProposeBatch) []byte { return appendProposeBatch(nil, m) }

func appendProposeBatch(b []byte, m *ProposeBatch) []byte {
	e := enc{b: b}
	e.u32(uint32(len(m.Proposals)))
	for i := range m.Proposals {
		p := &m.Proposals[i]
		e.u32(p.Round)
		e.u32(p.ItemID)
		e.u16(p.Alt)
		e.i8(p.PrefInitiator)
	}
	return e.b
}

func decodeProposeBatch(b []byte) (*ProposeBatch, error) {
	d := dec{b: b}
	n := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	// Guard allocations against lying headers: every claimed proposal
	// must be backed by payload bytes.
	if n > len(b)/proposalWireSize {
		return nil, fmt.Errorf("nexitwire: propose batch claims %d proposals", n)
	}
	m := &ProposeBatch{Proposals: make([]AcceptRequest, 0, n)}
	for i := 0; i < n; i++ {
		m.Proposals = append(m.Proposals, AcceptRequest{
			Round:         d.u32(),
			ItemID:        d.u32(),
			Alt:           d.u16(),
			PrefInitiator: d.i8(),
		})
	}
	return m, d.done()
}

func encodeBatchAccept(m *BatchAccept) []byte { return appendBatchAccept(nil, m) }

func appendBatchAccept(b []byte, m *BatchAccept) []byte {
	e := enc{b: b}
	e.u32(m.Accepted)
	return e.b
}

func decodeBatchAccept(b []byte) (*BatchAccept, error) {
	d := dec{b: b}
	m := &BatchAccept{Accepted: d.u32()}
	return m, d.done()
}

package nexitwire

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestDecodersNeverPanic feeds arbitrary bytes to every decoder: they
// must return errors, not panic, regardless of input (a peer can send
// anything).
func TestDecodersNeverPanic(t *testing.T) {
	decoders := []struct {
		name string
		fn   func([]byte) error
	}{
		{"hello", func(b []byte) error { _, err := decodeHello(b); return err }},
		{"prefs-request", func(b []byte) error { _, err := decodePrefsRequest(b); return err }},
		{"prefs-response", func(b []byte) error { _, err := decodePrefsResponse(b); return err }},
		{"accept-request", func(b []byte) error { _, err := decodeAcceptRequest(b); return err }},
		{"accept-response", func(b []byte) error { _, err := decodeAcceptResponse(b); return err }},
		{"commit", func(b []byte) error { _, err := decodeCommit(b); return err }},
		{"revert", func(b []byte) error { _, err := decodeRevert(b); return err }},
		{"done", func(b []byte) error { _, err := decodeDone(b); return err }},
		{"error", func(b []byte) error { _, err := decodeError(b); return err }},
		{"propose-batch", func(b []byte) error { _, err := decodeProposeBatch(b); return err }},
		{"batch-accept", func(b []byte) error { _, err := decodeBatchAccept(b); return err }},
	}
	for _, d := range decoders {
		d := d
		f := func(raw []byte) bool {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panic on %x: %v", d.name, raw, r)
				}
			}()
			_ = d.fn(raw) // error or success, never panic
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", d.name, err)
		}
	}
}

// TestFrameReaderNeverPanics drives readFrame with arbitrary byte
// streams.
func TestFrameReaderNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("readFrame panic on %x: %v", raw, r)
			}
		}()
		r := bytes.NewReader(raw)
		for {
			if _, _, err := readFrame(r); err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEncodeDecodeIdentityProperty: for structurally valid messages,
// decode(encode(m)) == m (spot-checked with randomized Done payloads,
// the most complex frame).
func TestEncodeDecodeIdentityProperty(t *testing.T) {
	f := func(assignRaw []uint16, gainA, gainB int32, reason uint8, rounds uint32) bool {
		assign := assignRaw
		if assign == nil {
			assign = []uint16{}
		}
		m := &Done{Assign: assign, GainA: gainA, GainB: gainB, StopReason: reason, Rounds: rounds}
		got, err := decodeDone(encodeDone(m))
		if err != nil {
			return false
		}
		if len(got.Assign) != len(assign) {
			return false
		}
		for i := range assign {
			if got.Assign[i] != assign[i] {
				return false
			}
		}
		return got.GainA == gainA && got.GainB == gainB &&
			got.StopReason == reason && got.Rounds == rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

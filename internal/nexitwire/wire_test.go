package nexitwire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// --- codec tests ------------------------------------------------------

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	fw := frameWriter{w: &buf}
	payload := []byte{1, 2, 3, 4, 5}
	if err := fw.writeFrame(MsgCommit, payload); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgCommit || !bytes.Equal(body, payload) {
		t.Errorf("roundtrip = %v %v", typ, body)
	}
}

func TestFrameGuards(t *testing.T) {
	// Oversized frame.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Empty frame.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("empty frame accepted")
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 9, 1, 2})
	if _, _, err := readFrame(&buf); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestHelloRoundtrip(t *testing.T) {
	for _, h := range []*Hello{
		// v1 frames carry no metric; the codec must still round-trip
		// them so old peers are identified (and version-rejected)
		// rather than choking on framing.
		{Version: 1, Name: "isp-a agent", NumAlts: 5, NumItems: 1234, WorkloadHash: 0xDEADBEEF12345678},
		{Version: 2, Name: "isp-a agent", NumAlts: 5, NumItems: 1234, WorkloadHash: 0xDEADBEEF12345678, Metric: "bandwidth"},
		{Version: 3, Name: "isp-a agent", NumAlts: 5, NumItems: 1234, WorkloadHash: 0xDEADBEEF12345678, Metric: "distance", Epoch: 97},
	} {
		got, err := decodeHello(encodeHello(h))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h, got) {
			t.Errorf("got %+v, want %+v", got, h)
		}
	}
}

// TestHelloVersionCompat pins the compat rule: a Hello from a newer
// version with unknown trailing fields still decodes (so the version
// check can reject it cleanly), while same-version trailing garbage is
// a framing error.
func TestHelloVersionCompat(t *testing.T) {
	future := append(encodeHello(&Hello{
		Version: Version + 1, Name: "isp-z", NumAlts: 3, NumItems: 9,
		WorkloadHash: 42, Metric: "distance", Epoch: 7,
	}), 0xAB, 0xCD) // a hypothetical v4 field we do not know
	h, err := decodeHello(future)
	if err != nil {
		t.Fatalf("newer-version hello with unknown fields did not decode: %v", err)
	}
	if h.Version != Version+1 || h.Metric != "distance" || h.Epoch != 7 {
		t.Errorf("decoded %+v from the future hello", h)
	}

	current := append(encodeHello(&Hello{Version: Version, Name: "isp-a", Metric: "distance"}), 0xAB)
	if _, err := decodeHello(current); err == nil {
		t.Error("same-version hello with trailing bytes decoded")
	}
}

// TestWireMetricMismatch crosses a bandwidth initiator with a
// distance responder: the responder must answer the Hello with a clean,
// labelled rejection — surfaced verbatim to the initiator — before any
// negotiation state exists on either side.
func TestWireMetricMismatch(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	resp := &Responder{
		Name:     "agent-b",
		Metric:   "distance",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  2 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := resp.ServeConn(connB)
		errCh <- err
	}()
	ini := &Initiator{
		Name: "agent-a", Cfg: nexit.DefaultDistanceConfig(),
		Metric:  "bandwidth",
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 2 * time.Second,
	}
	_, err := ini.Run(connA, items, defaults, numAlts)
	if err == nil {
		t.Fatal("initiator negotiated across a metric mismatch")
	}
	if !strings.Contains(err.Error(), "peer error") || !strings.Contains(err.Error(), "metric mismatch") {
		t.Errorf("initiator error is not the peer's labelled rejection: %v", err)
	}
	respErr := <-errCh
	if respErr == nil {
		t.Fatal("responder served a mismatched metric")
	}
	if !strings.Contains(respErr.Error(), `peer negotiates "bandwidth"`) ||
		!strings.Contains(respErr.Error(), `we negotiate "distance"`) {
		t.Errorf("responder reason does not name both metrics: %v", respErr)
	}
}

// TestWireEpochSkewRejected crosses an initiator at epoch 5 with a
// responder at epoch 9: the session must be rejected before any
// negotiation state exists, and the rejection must surface on the
// initiator as a typed *EpochSkewError carrying both indices — the
// handle a daemon needs to fast-forward and retry.
func TestWireEpochSkewRejected(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	resp := &Responder{
		Name:     "agent-b",
		Epoch:    9,
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  2 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := resp.ServeConn(connB)
		errCh <- err
	}()
	ini := &Initiator{
		Name: "agent-a", Cfg: nexit.DefaultDistanceConfig(),
		Epoch:   5,
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 2 * time.Second,
	}
	_, err := ini.Run(connA, items, defaults, numAlts)
	if err == nil {
		t.Fatal("initiator negotiated across an epoch skew")
	}
	var skew *EpochSkewError
	if !errors.As(err, &skew) {
		t.Fatalf("initiator error is not a typed epoch skew: %v", err)
	}
	if skew.Initiator != 5 || skew.Responder != 9 {
		t.Errorf("skew carries epochs (%d,%d), want (5,9)", skew.Initiator, skew.Responder)
	}
	respErr := <-errCh
	var respSkew *EpochSkewError
	if !errors.As(respErr, &respSkew) || respSkew.Initiator != 5 || respSkew.Responder != 9 {
		t.Errorf("responder error is not the typed skew: %v", respErr)
	}
}

// TestEpochSkewReasonRoundtrip pins the canonical skew rendering: the
// reason string a responder sends must parse back into the same typed
// error on the initiator, or the self-healing retry can never trigger.
func TestEpochSkewReasonRoundtrip(t *testing.T) {
	want := &EpochSkewError{Initiator: 3, Responder: 12}
	err := peerError(want.Error())
	var got *EpochSkewError
	if !errors.As(err, &got) {
		t.Fatalf("canonical reason did not re-type: %v", err)
	}
	if *got != *want {
		t.Errorf("parsed %+v, want %+v", got, want)
	}
	if _, ok := parseEpochSkew("metric mismatch: whatever"); ok {
		t.Error("unrelated reason parsed as an epoch skew")
	}
}

// TestWireVersionMismatchRejected serves a v1 Hello to a current
// responder and expects the labelled version rejection, not a decode
// failure or a hung session.
func TestWireVersionMismatchRejected(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	resp := &Responder{
		Name:     "agent-b",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  2 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := resp.ServeConn(connB)
		errCh <- err
	}()

	fw := frameWriter{w: connA}
	if err := fw.writeFrame(MsgHello, encodeHello(&Hello{
		Version: 1, Name: "old-agent",
		NumAlts: uint16(numAlts), NumItems: uint32(len(items)),
		WorkloadHash: WorkloadHash(items, defaults, numAlts),
	})); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(connA)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("responder answered a v1 hello with %v, want error", typ)
	}
	em, err := decodeError(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(em.Reason, "version 1") {
		t.Errorf("rejection reason does not name the version: %s", em.Reason)
	}
	if err := <-errCh; err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("responder error: %v", err)
	}
}

func TestPrefsRoundtrip(t *testing.T) {
	req := &PrefsRequest{ItemIDs: []uint32{3, 9, 12}, Defaults: []uint16{0, 2, 1}}
	gotReq, err := decodePrefsRequest(encodePrefsRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Errorf("request roundtrip: %+v", gotReq)
	}
	resp := &PrefsResponse{Prefs: [][]int8{{0, -3, 10}, {5, 0, -10}, {1, 2, 3}}}
	gotResp, err := decodePrefsResponse(encodePrefsResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Errorf("response roundtrip: %+v", gotResp)
	}
}

func TestPrefsResponseProperty(t *testing.T) {
	f := func(raw [][]int8) bool {
		// Normalize to rectangular with <= 8 columns.
		rows := make([][]int8, 0, len(raw))
		cols := 3
		for _, r := range raw {
			row := make([]int8, cols)
			copy(row, r)
			rows = append(rows, row)
		}
		m := &PrefsResponse{Prefs: rows}
		got, err := decodePrefsResponse(encodePrefsResponse(m))
		if err != nil {
			return false
		}
		if len(got.Prefs) != len(rows) {
			return false
		}
		for i := range rows {
			if !reflect.DeepEqual(got.Prefs[i], rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOtherMessageRoundtrips(t *testing.T) {
	ar := &AcceptRequest{Round: 7, ItemID: 42, Alt: 3, PrefInitiator: -9}
	if got, err := decodeAcceptRequest(encodeAcceptRequest(ar)); err != nil || !reflect.DeepEqual(ar, got) {
		t.Errorf("accept request: %+v %v", got, err)
	}
	for _, accepted := range []bool{true, false} {
		resp := &AcceptResponse{Accepted: accepted}
		if got, err := decodeAcceptResponse(encodeAcceptResponse(resp)); err != nil || got.Accepted != accepted {
			t.Errorf("accept response: %+v %v", got, err)
		}
	}
	c := &Commit{ItemID: 9, Alt: 2}
	if got, err := decodeCommit(encodeCommit(c)); err != nil || !reflect.DeepEqual(c, got) {
		t.Errorf("commit: %+v %v", got, err)
	}
	d := &Done{Assign: []uint16{0, 1, 2}, GainA: -5, GainB: 12, StopReason: 2, Rounds: 99}
	if got, err := decodeDone(encodeDone(d)); err != nil || !reflect.DeepEqual(d, got) {
		t.Errorf("done: %+v %v", got, err)
	}
	e := &ErrorMsg{Reason: "mismatch"}
	if got, err := decodeError(encodeError(e)); err != nil || got.Reason != "mismatch" {
		t.Errorf("error: %+v %v", got, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeHello([]byte{1}); err == nil {
		t.Error("short hello accepted")
	}
	if _, err := decodePrefsRequest([]byte{0, 0, 0, 99}); err == nil {
		t.Error("lying prefs request accepted")
	}
	if _, err := decodePrefsResponse([]byte{0, 0, 1, 0, 0, 8}); err == nil {
		t.Error("lying prefs response accepted")
	}
	if _, err := decodeCommit([]byte{1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Error("commit with trailing bytes accepted")
	}
}

// --- session tests ----------------------------------------------------

// testUniverse builds a small real negotiation setup from the generator.
func testUniverse(t *testing.T) (*pairsim.System, []nexit.Item, []int, int) {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 10
	isps, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := topology.AllPairs(isps, 2, true)
	if len(pairs) == 0 {
		t.Fatal("no pairs in test dataset")
	}
	pair := pairs[0]
	s := pairsim.New(pair, nil)
	rev := s.Reverse()
	wAB := traffic.New(pair.A, pair.B, traffic.Identical, nil)
	wBA := traffic.New(pair.B, pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	return s, items, defaults, s.NumAlternatives()
}

// runWireSession negotiates over the given connection pair and returns
// both endpoints' results.
func runWireSession(t *testing.T, connA, connB net.Conn, s *pairsim.System, items []nexit.Item, defaults []int, numAlts int) (*nexit.Result, *SessionResult) {
	t.Helper()
	resp := &Responder{
		Name:     "agent-b",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items,
		Defaults: defaults,
		NumAlts:  numAlts,
		Timeout:  5 * time.Second,
	}
	type respOut struct {
		res *SessionResult
		err error
	}
	ch := make(chan respOut, 1)
	go func() {
		r, err := resp.ServeConn(connB)
		ch <- respOut{r, err}
	}()

	ini := &Initiator{
		Name:    "agent-a",
		Cfg:     nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 5 * time.Second,
	}
	res, err := ini.Run(connA, items, defaults, numAlts)
	if err != nil {
		t.Fatalf("initiator: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatalf("responder: %v", out.err)
	}
	return res, out.res
}

// TestWireBandwidthMatchesInProcess runs a full bandwidth-metric
// session — stateful evaluators, mid-session preference reassignment —
// over the wire and pins it to the in-process engine. This is the
// non-distance wire path the daemon layer builds on.
func TestWireBandwidthMatchesInProcess(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	// Fresh stateful evaluator per use: capacities sized so that flows
	// contend (each link fits a handful of unit flows).
	mk := func(side nexit.Side) nexit.Evaluator {
		tbl := s.Up
		if side == nexit.SideB {
			tbl = s.Down
		}
		n := len(tbl.ISP.Links)
		load, capv := make([]float64, n), make([]float64, n)
		for i := range capv {
			capv[i] = 5
		}
		return nexit.NewBandwidthEvaluator(s, side, 10, load, capv)
	}
	cfg := nexit.DefaultBandwidthConfig()
	ref, err := nexit.Negotiate(cfg, mk(nexit.SideA), mk(nexit.SideB), items, defaults, numAlts)
	if err != nil {
		t.Fatal(err)
	}

	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	resp := &Responder{
		Name: "agent-b", Metric: "bandwidth",
		Eval:  mk(nexit.SideB),
		Items: items, Defaults: defaults, NumAlts: numAlts,
		Timeout: 5 * time.Second,
	}
	type respOut struct {
		res *SessionResult
		err error
	}
	ch := make(chan respOut, 1)
	go func() {
		r, err := resp.ServeConn(connB)
		ch <- respOut{r, err}
	}()
	ini := &Initiator{
		Name: "agent-a", Metric: "bandwidth",
		Cfg:  cfg,
		Eval: mk(nexit.SideA), Timeout: 5 * time.Second,
	}
	res, err := ini.Run(connA, items, defaults, numAlts)
	if err != nil {
		t.Fatalf("initiator: %v", err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatalf("responder: %v", out.err)
	}
	if !reflect.DeepEqual(ref.Assign, res.Assign) || !reflect.DeepEqual(ref.Assign, out.res.Assign) {
		t.Error("bandwidth wire session diverged from the in-process engine")
	}
	if res.GainA != ref.GainA || out.res.GainB != ref.GainB {
		t.Errorf("gains: wire (%d,%d), in-process (%d,%d)", res.GainA, out.res.GainB, ref.GainA, ref.GainB)
	}
}

func TestWireMatchesInProcess(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)

	// In-process reference run.
	ref, err := nexit.Negotiate(nexit.DefaultDistanceConfig(),
		nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		items, defaults, numAlts)
	if err != nil {
		t.Fatal(err)
	}

	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	res, sess := runWireSession(t, connA, connB, s, items, defaults, numAlts)

	if !reflect.DeepEqual(ref.Assign, res.Assign) {
		t.Error("wire negotiation diverged from in-process result")
	}
	if !reflect.DeepEqual(ref.Assign, sess.Assign) {
		t.Error("responder's assignment view diverged")
	}
	if sess.GainB != ref.GainB || res.GainA != ref.GainA {
		t.Errorf("gains: wire (%d,%d), ref (%d,%d)", res.GainA, sess.GainB, ref.GainA, ref.GainB)
	}
}

func TestWireOverTCP(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type acc struct {
		conn net.Conn
		err  error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	connA, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	defer a.conn.Close()

	res, sess := runWireSession(t, connA, a.conn, s, items, defaults, numAlts)
	if res.Negotiated == 0 {
		t.Error("nothing negotiated over TCP")
	}
	if len(sess.Assign) != len(items) {
		t.Error("responder assignment incomplete")
	}
}

func TestWireHelloMismatch(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	resp := &Responder{
		Name:     "agent-b",
		Eval:     nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Items:    items[:len(items)-1], // one item short: hash mismatch
		Defaults: defaults[:len(defaults)-1],
		NumAlts:  numAlts,
		Timeout:  2 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := resp.ServeConn(connB)
		errCh <- err
	}()
	ini := &Initiator{
		Name: "agent-a", Cfg: nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 2 * time.Second,
	}
	if _, err := ini.Run(connA, items, defaults, numAlts); err == nil {
		t.Error("initiator succeeded despite universe mismatch")
	}
	if err := <-errCh; err == nil {
		t.Error("responder accepted mismatched universe")
	}
}

func TestWireVeto(t *testing.T) {
	s, items, defaults, numAlts := testUniverse(t)
	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()

	vetoes := 0
	resp := &Responder{
		Name: "agent-b",
		Eval: nexit.NewDistanceEvaluator(s, nexit.SideB, 10),
		Accept: func(p AcceptRequest) bool {
			vetoes++
			return false // veto everything
		},
		Items: items, Defaults: defaults, NumAlts: numAlts,
		Timeout: 5 * time.Second,
	}
	done := make(chan *SessionResult, 1)
	go func() {
		r, err := resp.ServeConn(connB)
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	ini := &Initiator{
		Name: "agent-a", Cfg: nexit.DefaultDistanceConfig(),
		Eval:    nexit.NewDistanceEvaluator(s, nexit.SideA, 10),
		Timeout: 5 * time.Second,
	}
	res, err := ini.Run(connA, items, defaults, numAlts)
	if err != nil {
		t.Fatal(err)
	}
	sess := <-done
	if vetoes == 0 {
		t.Fatal("responder was never consulted")
	}
	// With everything vetoed, no item can move off its default.
	for i, a := range sess.Assign {
		if a != defaults[i] {
			t.Errorf("item %d moved to %d despite total veto", i, a)
		}
	}
	if res.GainB != 0 {
		t.Errorf("GainB = %d under total veto", res.GainB)
	}
}

func TestWirePrefBoundTooLarge(t *testing.T) {
	ini := &Initiator{Cfg: nexit.Config{PrefBound: 1000}}
	if _, err := ini.Run(nil, nil, nil, 1); err == nil ||
		!strings.Contains(err.Error(), "int8") {
		t.Errorf("oversized bound not rejected: %v", err)
	}
}

func TestWorkloadHash(t *testing.T) {
	items := []nexit.Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Src: 1, Dst: 2, Size: 1.5}, Dir: nexit.AtoB},
		{ID: 1, Flow: traffic.Flow{ID: 1, Src: 2, Dst: 1, Size: 2}, Dir: nexit.BtoA},
	}
	defaults := []int{0, 1}
	h1 := WorkloadHash(items, defaults, 3)
	if h2 := WorkloadHash(items, defaults, 3); h1 != h2 {
		t.Error("hash not deterministic")
	}
	if h2 := WorkloadHash(items, defaults, 4); h1 == h2 {
		t.Error("hash ignores numAlts")
	}
	if h2 := WorkloadHash(items, []int{1, 1}, 3); h1 == h2 {
		t.Error("hash ignores defaults")
	}
	mutated := append([]nexit.Item(nil), items...)
	mutated[0].Flow.Size = 9
	if h2 := WorkloadHash(mutated, defaults, 3); h1 == h2 {
		t.Error("hash ignores flow sizes")
	}
}

// TestWireDistanceDeltasUnused silences a potential unused import if the
// baseline package stops being needed; it also sanity-checks that the
// wire universe produces meaningful deltas.
func TestWireUniverseHasTrades(t *testing.T) {
	s, items, defaults, _ := testUniverse(t)
	dA, dB := baseline.DistanceDeltas(s, items, defaults)
	any := false
	for i := range dA {
		for k := range dA[i] {
			if dA[i][k]+dB[i][k] > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Skip("test universe has no joint gains; wire tests still valid")
	}
}

// staticItems builds n unit items with defaults at alternative 0.
func staticItems(n int) ([]nexit.Item, []int) {
	items := make([]nexit.Item, n)
	defaults := make([]int, n)
	for i := 0; i < n; i++ {
		items[i] = nexit.Item{ID: i, Flow: traffic.Flow{ID: i, Size: 1}}
	}
	return items, defaults
}

// TestWireUnwind forces the engine's terminal unwind (both trades dip B,
// B never recovers, so they revert) and checks the responder's audited
// view ends back at the defaults.
func TestWireUnwind(t *testing.T) {
	items, defaults := staticItems(3)
	// Item 0 dips B (-2) against A's +3 while B still has hope (+1 on
	// item 2); after B banks the +1, only another (+3,-2) remains, so B
	// walks away at -1 and the terminal unwind reverts item 0.
	tableA := map[int][]int{0: {0, 3}, 1: {0, 3}, 2: {0, 0}}
	tableB := map[int][]int{0: {0, -2}, 1: {0, -2}, 2: {0, 1}}
	evalA := &nexit.StaticEvaluator{NumAlts: 2, Table: tableA}
	evalB := &nexit.StaticEvaluator{NumAlts: 2, Table: tableB}

	ref, err := nexit.Negotiate(nexit.DefaultDistanceConfig(), evalA, evalB, items, defaults, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Reverted == 0 {
		t.Fatalf("scenario did not trigger the unwind: %+v", ref)
	}
	if ref.GainA < 0 || ref.GainB < 0 {
		t.Fatalf("unwind left a deficit: gains (%d,%d)", ref.GainA, ref.GainB)
	}

	connA, connB := net.Pipe()
	defer connA.Close()
	defer connB.Close()
	resp := &Responder{
		Name: "agent-b", Eval: evalB,
		Items: items, Defaults: defaults, NumAlts: 2,
		Timeout: 5 * time.Second,
	}
	ch := make(chan struct {
		res *SessionResult
		err error
	}, 1)
	go func() {
		r, err := resp.ServeConn(connB)
		ch <- struct {
			res *SessionResult
			err error
		}{r, err}
	}()
	ini := &Initiator{
		Name: "agent-a", Cfg: nexit.DefaultDistanceConfig(),
		Eval: evalA, Timeout: 5 * time.Second,
	}
	res, err := ini.Run(connA, items, defaults, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := <-ch
	if out.err != nil {
		t.Fatalf("responder audit failed: %v", out.err)
	}
	if !reflect.DeepEqual(res.Assign, out.res.Assign) {
		t.Errorf("views diverged: %v vs %v", res.Assign, out.res.Assign)
	}
	if out.res.GainB != res.GainB {
		t.Errorf("responder gain %d, initiator says %d", out.res.GainB, res.GainB)
	}
	if out.res.Assign[0] != defaults[0] {
		t.Error("the dipping trade was not reverted to its default")
	}
	if out.res.Assign[2] != 1 {
		t.Error("B's winning trade should survive the unwind")
	}
}

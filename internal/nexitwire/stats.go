package nexitwire

import "time"

// WireStats is the per-connection wire instrumentation: frame and byte
// counts per direction, and cumulative blocking time per protocol
// phase. It lives on the session scratch a Conn already owns and is
// written with plain adds — a Conn serves one session at a time (the
// protocol is strictly request/response), so there is exactly one
// writer and no atomics or allocations on the frame path. Readers use
// Conn.TakeStats, which hands the accumulated counts to the owner
// between sessions.
//
// Phase time is attributed by frame type: every blocking send or
// receive's wall time lands in the phase its frame belongs to, so the
// four phase buckets partition a session's wire time (engine compute
// between frames is not counted — it is visible as the gap between a
// session's wall clock and its wire time).
type WireStats struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	BytesRecv  int64

	// HelloNanos counts session setup: Hello and HelloAck.
	HelloNanos int64
	// PrefsNanos counts preference disclosure: PrefsRequest/Response.
	PrefsNanos int64
	// ProposeNanos counts the accept path: ProposeBatch/BatchAccept and
	// the legacy per-proposal AcceptRequest/Response.
	ProposeNanos int64
	// CommitNanos counts state installation and teardown: Commit,
	// Revert, Done, and Error frames.
	CommitNanos int64
}

// Add folds another accumulation in.
func (w *WireStats) Add(o WireStats) {
	w.FramesSent += o.FramesSent
	w.FramesRecv += o.FramesRecv
	w.BytesSent += o.BytesSent
	w.BytesRecv += o.BytesRecv
	w.HelloNanos += o.HelloNanos
	w.PrefsNanos += o.PrefsNanos
	w.ProposeNanos += o.ProposeNanos
	w.CommitNanos += o.CommitNanos
}

// phaseNanos returns the accumulator for t's protocol phase.
func (w *WireStats) phaseNanos(t MsgType) *int64 {
	switch t {
	case MsgHello, MsgHelloAck:
		return &w.HelloNanos
	case MsgPrefsRequest, MsgPrefsResponse:
		return &w.PrefsNanos
	case MsgProposeBatch, MsgBatchAccept, MsgAcceptRequest, MsgAcceptResponse:
		return &w.ProposeNanos
	default: // Commit, Revert, Done, Error
		return &w.CommitNanos
	}
}

// observeSent records one outbound frame of payloadLen body bytes.
func (w *WireStats) observeSent(t MsgType, payloadLen int, d time.Duration) {
	w.FramesSent++
	w.BytesSent += frameOverhead + int64(payloadLen)
	*w.phaseNanos(t) += int64(d)
}

// observeRecv records one inbound frame of bodyLen body bytes.
func (w *WireStats) observeRecv(t MsgType, bodyLen int, d time.Duration) {
	w.FramesRecv++
	w.BytesRecv += frameOverhead + int64(bodyLen)
	*w.phaseNanos(t) += int64(d)
}

// frameOverhead is the on-wire framing cost around a payload: the
// 4-byte length prefix plus the 1-byte type.
const frameOverhead = 5

// TakeStats returns the wire stats accumulated since the last take (or
// since the Conn was created) and resets them. A daemon calls it after
// each session and folds the delta into its telemetry; like the rest
// of a Conn it assumes the single-session-at-a-time discipline.
func (c *Conn) TakeStats() WireStats {
	st := c.s.stats
	c.s.stats = WireStats{}
	return st
}

// Package runner is the concurrent, deterministic pair-evaluation
// harness shared by every experiment driver. The paper's evaluation is
// "for each neighboring ISP pair: set up routing, negotiate, compare
// against baselines" — embarrassingly parallel across pairs once two
// invariants hold, and this package enforces both:
//
//  1. Randomness is sharded: each pair gets its own *rand.Rand derived
//     from (Options.Seed, pair index) via a splitmix64 mix, so no RNG
//     stream is threaded across pairs and the schedule of goroutines
//     cannot perturb any published number.
//  2. Reduction is ordered: results are handed to the reducer strictly
//     in pair-index order, regardless of completion order.
//
// Together these make a run with Workers=N byte-identical to a run with
// Workers=1.
package runner

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrStop may be returned by a reduce function to cancel the remaining
// work without error: in-flight pairs finish, queued pairs are skipped,
// and ForEachPair returns nil. Experiment drivers use it to honor
// MaxFailures-style caps.
var ErrStop = errors.New("runner: stop requested by reducer")

// Options configures a ForEachPair run.
type Options struct {
	// Workers is the number of goroutines evaluating pairs. Zero or
	// negative selects runtime.GOMAXPROCS(0). Results are identical for
	// every worker count.
	Workers int
	// Seed is the root of the per-pair RNG derivation (see PairRand).
	Seed int64
}

// workerCount resolves Workers against the machine and the job size.
func (o Options) workerCount(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// PairSeed derives the RNG seed for pair index idx from the root seed
// using a splitmix64-style mix, so neighboring indices get decorrelated
// streams. The derivation depends only on (seed, idx), never on worker
// count or scheduling.
func PairSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// PairRand returns the private RNG for pair index idx. Each invocation
// returns a fresh, identically seeded generator.
func PairRand(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(PairSeed(seed, idx)))
}

// PairFunc evaluates one pair. It runs concurrently with other pairs
// and must not touch shared mutable state; rng is private to the pair.
type PairFunc[P, R any] func(idx int, pair P, rng *rand.Rand) (R, error)

// ReduceFunc folds one pair's result into the caller's accumulator. It
// is called from a single goroutine, strictly in pair-index order, so
// it needs no locking. Returning ErrStop cancels the remaining pairs
// without error; any other error aborts the run.
type ReduceFunc[R any] func(idx int, res R) error

// ForEachPair evaluates fn over every pair, sharding the work across
// opt.Workers goroutines, then reduces the results in pair-index order.
// The first error — fn's or reduce's, at the lowest pair index — wins
// deterministically. See the package comment for the determinism
// contract.
func ForEachPair[P, R any](pairs []P, opt Options, fn PairFunc[P, R], reduce ReduceFunc[R]) error {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	if workers := opt.workerCount(n); workers > 1 {
		return forEachParallel(pairs, opt, workers, fn, reduce)
	}
	for i, p := range pairs {
		r, err := fn(i, p, PairRand(opt.Seed, i))
		if err != nil {
			return err
		}
		if err := reduce(i, r); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Indexed carries one pair's result together with its pair index, for
// delivery over a Stream channel.
type Indexed[R any] struct {
	Idx int
	Res R
}

// StreamRun is a running Stream evaluation. Results arrive on C in
// strict pair-index order; the channel closes when the run finishes,
// errors, or is stopped. The consumer must drain C or call Stop (both
// are safe); Err is valid once C is closed.
type StreamRun[R any] struct {
	// C delivers each pair's result exactly once, in pair-index order.
	C <-chan Indexed[R]

	stop     chan struct{}
	stopOnce sync.Once
	err      error
}

// Stop cancels the run: queued pairs are skipped, in-flight pairs
// finish and are discarded, and C closes shortly after. Stopping is not
// an error. Safe to call multiple times and concurrently with draining.
func (s *StreamRun[R]) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// Err reports the run's outcome. It must only be called after C has
// closed (the happens-before edge that makes the read safe).
func (s *StreamRun[R]) Err() error { return s.err }

// Drain stops the run, consumes any remaining results, and returns
// Err. It is the convenient way to finish a stream after a consumer
// loop exits early: without the implicit Stop, finishing would mean
// evaluating every remaining pair just to discard it.
func (s *StreamRun[R]) Drain() error {
	s.Stop()
	for range s.C {
	}
	return s.err
}

// Stream is the channel form of ForEachPair: it evaluates fn over every
// pair on the worker pool and delivers results over a channel instead
// of a reducer callback, retaining nothing — steady-state memory is
// O(workers), not O(pairs). Delivery order and the determinism contract
// are identical to ForEachPair: same per-pair RNG, results in strict
// pair-index order, first error at the lowest pair index wins.
//
//	run := runner.Stream(pairs, opt, fn)
//	for r := range run.C {
//		... // consume r.Res; call run.Stop() to cancel early
//	}
//	if err := run.Err(); err != nil { ... }
func Stream[P, R any](pairs []P, opt Options, fn PairFunc[P, R]) *StreamRun[R] {
	ch := make(chan Indexed[R])
	s := &StreamRun[R]{C: ch, stop: make(chan struct{})}
	go func() {
		s.err = ForEachPair(pairs, opt, fn, func(i int, r R) error {
			select {
			case ch <- Indexed[R]{Idx: i, Res: r}:
				return nil
			case <-s.stop:
				return ErrStop
			}
		})
		close(ch)
	}()
	return s
}

// ForEachIndex runs fn(i) for every i in [0, n) across workers
// goroutines (0 = GOMAXPROCS) and waits for completion. It is the
// cold-start sharding primitive: fn must be safe to run concurrently
// with other indices and must not depend on evaluation order (e.g.
// warming per-ISP routing tables, deriving per-pair selection keys).
func ForEachIndex(n, workers int, fn func(i int)) {
	w := Options{Workers: workers}.workerCount(n)
	if n <= 0 {
		return
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// reorderWindowPerWorker sizes the bounded claim-ahead window of the
// parallel reducer: at most this many undelivered results per worker
// may exist at once. It is the constant behind the pipeline's
// O(workers) steady-state memory contract (DESIGN.md §8): without the
// bound, one slow head-of-line pair would let fast workers race ahead
// and park O(pairs) completed results in the reorder buffer.
const reorderWindowPerWorker = 4

// forEachParallel is the Workers>1 path of ForEachPair: a work-stealing
// pool feeding a single ordering reducer through a bounded reorder
// window.
func forEachParallel[P, R any](pairs []P, opt Options, workers int, fn PairFunc[P, R], reduce ReduceFunc[R]) error {
	type slot struct {
		idx int
		res R
		err error
	}
	n := len(pairs)
	window := reorderWindowPerWorker * workers
	var (
		next     int64 = -1 // atomically claimed pair cursor
		stop     atomic.Bool
		stopOnce sync.Once
		halt     = make(chan struct{}) // closed exactly once on stop
		wg       sync.WaitGroup
		out      = make(chan slot, workers)
		// tickets caps claimed-but-not-yet-reduced pairs at window: a
		// worker takes a ticket per claim, the reducer returns it once
		// the result leaves the reorder buffer. Peak retention is
		// therefore O(workers), independent of pair-runtime skew.
		tickets = make(chan struct{}, window)
	)
	stopAll := func() {
		stopOnce.Do(func() {
			stop.Store(true)
			close(halt)
		})
	}
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				select {
				case <-tickets:
				case <-halt:
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				r, err := fn(i, pairs[i], PairRand(opt.Seed, i))
				if err != nil {
					// The run is doomed: stop claiming new pairs
					// everywhere (in-flight ones still deliver, so the
					// reducer can reach this error in index order).
					// Claims are monotonic, so every index below this
					// one was already claimed and the lowest-index
					// error still wins deterministically.
					stopAll()
				}
				out <- slot{idx: i, res: r, err: err}
				if err != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// Reorder completions into pair-index order. Every index below a
	// delivered one has been claimed by some worker and will be
	// delivered too (workers deliver before exiting on error), so the
	// cursor can always advance to the first error.
	pending := make(map[int]slot, window)
	nextIdx := 0
	var retErr error
	halted := false
	returnTicket := func() {
		select {
		case tickets <- struct{}{}:
		default: // halted drain can exceed the outstanding count; drop
		}
	}
	for s := range out {
		if halted {
			continue // drain so no worker blocks on send
		}
		pending[s.idx] = s
		for {
			cur, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			nextIdx++
			returnTicket()
			if cur.err == nil {
				cur.err = reduce(cur.idx, cur.res)
				if errors.Is(cur.err, ErrStop) {
					cur.err = nil
					halted = true
					stopAll()
					break
				}
			}
			if cur.err != nil {
				retErr = cur.err
				halted = true
				stopAll()
				break
			}
		}
	}
	return retErr
}

package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// collect runs ForEachPair over n synthetic pairs with the given worker
// count and returns the reduced (idx, value) sequence.
func collect(t *testing.T, n, workers int, seed int64) []float64 {
	t.Helper()
	pairs := make([]int, n)
	for i := range pairs {
		pairs[i] = i
	}
	var out []float64
	err := ForEachPair(pairs, Options{Workers: workers, Seed: seed},
		func(idx int, p int, rng *rand.Rand) (float64, error) {
			// Mix pair identity with the private RNG stream so any
			// cross-pair RNG sharing or misordering changes the output.
			return float64(p) + rng.Float64(), nil
		},
		func(idx int, r float64) error {
			out = append(out, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSerialParallelIdentical(t *testing.T) {
	serial := collect(t, 100, 1, 7)
	for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		parallel := collect(t, 100, workers, 7)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestReduceOrder(t *testing.T) {
	pairs := make([]int, 64)
	last := -1
	err := ForEachPair(pairs, Options{Workers: 8},
		func(idx int, p int, rng *rand.Rand) (int, error) { return idx, nil },
		func(idx int, r int) error {
			if idx != r || idx != last+1 {
				return fmt.Errorf("reduce saw idx %d (res %d) after %d", idx, r, last)
			}
			last = idx
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if last != 63 {
		t.Fatalf("reduced up to %d, want 63", last)
	}
}

func TestErrStopCancels(t *testing.T) {
	pairs := make([]int, 1000)
	var evaluated atomic.Int64
	reduced := 0
	err := ForEachPair(pairs, Options{Workers: 4},
		func(idx int, p int, rng *rand.Rand) (int, error) {
			evaluated.Add(1)
			return idx, nil
		},
		func(idx int, r int) error {
			if reduced == 10 {
				return ErrStop
			}
			reduced++
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop must not surface as an error, got %v", err)
	}
	if reduced != 10 {
		t.Fatalf("reduced %d pairs, want 10", reduced)
	}
	if n := evaluated.Load(); n == 1000 {
		t.Error("stop did not cancel queued pairs")
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	pairs := make([]int, 200)
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 8} {
		err := ForEachPair(pairs, Options{Workers: workers},
			func(idx int, p int, rng *rand.Rand) (int, error) {
				// Several pairs fail; the lowest index must win
				// regardless of completion order.
				if idx == 23 {
					return 0, fmt.Errorf("pair %d: %w", idx, wantErr)
				}
				if idx > 23 && idx%10 == 0 {
					return 0, errors.New("later failure")
				}
				return idx, nil
			},
			func(idx int, r int) error {
				if idx >= 23 {
					return fmt.Errorf("reduced index %d past the failure", idx)
				}
				return nil
			})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want pair 23's", workers, err)
		}
	}
}

func TestReduceErrorAborts(t *testing.T) {
	pairs := make([]int, 50)
	wantErr := errors.New("reduce failed")
	err := ForEachPair(pairs, Options{Workers: 4},
		func(idx int, p int, rng *rand.Rand) (int, error) { return idx, nil },
		func(idx int, r int) error {
			if idx == 5 {
				return wantErr
			}
			return nil
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want reduce's", err)
	}
}

func TestEmptyAndSmall(t *testing.T) {
	if err := ForEachPair(nil, Options{Workers: 8},
		func(idx int, p int, rng *rand.Rand) (int, error) { return 0, nil },
		func(idx int, r int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got := collect(t, 1, 8, 3)
	want := collect(t, 1, 1, 3)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("single pair: got %v, want %v", got, want)
	}
}

func TestPairSeedDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := PairSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("PairSeed(1,%d) collides with index %d", i, prev)
		}
		seen[s] = i
	}
	if PairSeed(1, 0) == PairSeed(2, 0) {
		t.Error("root seed does not change derived seeds")
	}
	if PairSeed(1, 5) != PairSeed(1, 5) {
		t.Error("PairSeed is not a pure function")
	}
}

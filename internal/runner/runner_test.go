package runner

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// collect runs ForEachPair over n synthetic pairs with the given worker
// count and returns the reduced (idx, value) sequence.
func collect(t *testing.T, n, workers int, seed int64) []float64 {
	t.Helper()
	pairs := make([]int, n)
	for i := range pairs {
		pairs[i] = i
	}
	var out []float64
	err := ForEachPair(pairs, Options{Workers: workers, Seed: seed},
		func(idx int, p int, rng *rand.Rand) (float64, error) {
			// Mix pair identity with the private RNG stream so any
			// cross-pair RNG sharing or misordering changes the output.
			return float64(p) + rng.Float64(), nil
		},
		func(idx int, r float64) error {
			out = append(out, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSerialParallelIdentical(t *testing.T) {
	serial := collect(t, 100, 1, 7)
	for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		parallel := collect(t, 100, workers, 7)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestReduceOrder(t *testing.T) {
	pairs := make([]int, 64)
	last := -1
	err := ForEachPair(pairs, Options{Workers: 8},
		func(idx int, p int, rng *rand.Rand) (int, error) { return idx, nil },
		func(idx int, r int) error {
			if idx != r || idx != last+1 {
				return fmt.Errorf("reduce saw idx %d (res %d) after %d", idx, r, last)
			}
			last = idx
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if last != 63 {
		t.Fatalf("reduced up to %d, want 63", last)
	}
}

func TestErrStopCancels(t *testing.T) {
	pairs := make([]int, 1000)
	var evaluated atomic.Int64
	reduced := 0
	err := ForEachPair(pairs, Options{Workers: 4},
		func(idx int, p int, rng *rand.Rand) (int, error) {
			evaluated.Add(1)
			return idx, nil
		},
		func(idx int, r int) error {
			if reduced == 10 {
				return ErrStop
			}
			reduced++
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop must not surface as an error, got %v", err)
	}
	if reduced != 10 {
		t.Fatalf("reduced %d pairs, want 10", reduced)
	}
	if n := evaluated.Load(); n == 1000 {
		t.Error("stop did not cancel queued pairs")
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	pairs := make([]int, 200)
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 8} {
		err := ForEachPair(pairs, Options{Workers: workers},
			func(idx int, p int, rng *rand.Rand) (int, error) {
				// Several pairs fail; the lowest index must win
				// regardless of completion order.
				if idx == 23 {
					return 0, fmt.Errorf("pair %d: %w", idx, wantErr)
				}
				if idx > 23 && idx%10 == 0 {
					return 0, errors.New("later failure")
				}
				return idx, nil
			},
			func(idx int, r int) error {
				if idx >= 23 {
					return fmt.Errorf("reduced index %d past the failure", idx)
				}
				return nil
			})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want pair 23's", workers, err)
		}
	}
}

func TestReduceErrorAborts(t *testing.T) {
	pairs := make([]int, 50)
	wantErr := errors.New("reduce failed")
	err := ForEachPair(pairs, Options{Workers: 4},
		func(idx int, p int, rng *rand.Rand) (int, error) { return idx, nil },
		func(idx int, r int) error {
			if idx == 5 {
				return wantErr
			}
			return nil
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want reduce's", err)
	}
}

func TestEmptyAndSmall(t *testing.T) {
	if err := ForEachPair(nil, Options{Workers: 8},
		func(idx int, p int, rng *rand.Rand) (int, error) { return 0, nil },
		func(idx int, r int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got := collect(t, 1, 8, 3)
	want := collect(t, 1, 1, 3)
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("single pair: got %v, want %v", got, want)
	}
}

// streamCollect drains a Stream run into an ordered slice.
func streamCollect(t *testing.T, n, workers int, seed int64) []float64 {
	t.Helper()
	pairs := make([]int, n)
	for i := range pairs {
		pairs[i] = i
	}
	run := Stream(pairs, Options{Workers: workers, Seed: seed},
		func(idx int, p int, rng *rand.Rand) (float64, error) {
			return float64(idx) + rng.Float64(), nil
		})
	var out []float64
	for r := range run.C {
		if r.Idx != len(out) {
			t.Fatalf("stream delivered idx %d out of order (want %d)", r.Idx, len(out))
		}
		out = append(out, r.Res)
	}
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamMatchesForEachPair(t *testing.T) {
	want := collect(t, 100, 1, 7)
	for _, workers := range []int{1, 2, 8} {
		got := streamCollect(t, 100, workers, 7)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: stream result[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestStreamStop(t *testing.T) {
	pairs := make([]int, 1000)
	var evaluated atomic.Int64
	run := Stream(pairs, Options{Workers: 4},
		func(idx int, p int, rng *rand.Rand) (int, error) {
			evaluated.Add(1)
			return idx, nil
		})
	got := 0
	for range run.C {
		got++
		if got == 10 {
			run.Stop()
			run.Stop() // idempotent
		}
	}
	if err := run.Drain(); err != nil {
		t.Fatalf("stop must not surface as an error, got %v", err)
	}
	if got < 10 {
		t.Fatalf("consumed %d results before stop, want >= 10", got)
	}
	if n := evaluated.Load(); n == 1000 {
		t.Error("stop did not cancel queued pairs")
	}
}

func TestStreamError(t *testing.T) {
	pairs := make([]int, 200)
	wantErr := errors.New("boom")
	run := Stream(pairs, Options{Workers: 8},
		func(idx int, p int, rng *rand.Rand) (int, error) {
			if idx == 23 {
				return 0, wantErr
			}
			return idx, nil
		})
	last := -1
	for r := range run.C {
		last = r.Idx
	}
	if !errors.Is(run.Err(), wantErr) {
		t.Fatalf("err = %v, want %v", run.Err(), wantErr)
	}
	if last >= 23 {
		t.Fatalf("stream delivered index %d past the failure", last)
	}
}

// The reorder window is bounded: a slow head-of-line pair must not let
// fast workers race ahead and park O(pairs) results in the reducer's
// pending buffer (the pipeline's O(workers) memory contract).
func TestBoundedReorderWindow(t *testing.T) {
	const n = 2000
	const workers = 4
	pairs := make([]int, n)
	var maxStarted atomic.Int64
	var reducedFirst atomic.Bool
	err := ForEachPair(pairs, Options{Workers: workers},
		func(idx int, p int, rng *rand.Rand) (int, error) {
			if !reducedFirst.Load() {
				for {
					cur := maxStarted.Load()
					if int64(idx) <= cur || maxStarted.CompareAndSwap(cur, int64(idx)) {
						break
					}
				}
			}
			if idx == 0 {
				time.Sleep(200 * time.Millisecond) // head-of-line straggler
			}
			return idx, nil
		},
		func(idx int, r int) error {
			if idx == 0 {
				reducedFirst.Store(true)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// While pair 0 blocked the reducer, claims must stay within the
	// ticket window (reorderWindowPerWorker*workers) plus scheduling
	// slack — far below the O(n) an unbounded window permits.
	limit := int64(2*reorderWindowPerWorker*workers + workers)
	if got := maxStarted.Load(); got > limit {
		t.Errorf("workers claimed up to pair %d while pair 0 was unreduced (window limit ~%d): reorder buffer is unbounded", got, limit)
	}
}

func TestForEachIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		hits := make([]atomic.Int32, 500)
		ForEachIndex(len(hits), workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, n)
			}
		}
	}
	ForEachIndex(0, 4, func(i int) { t.Error("fn called for n=0") })
}

func TestPairSeedDecorrelated(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := PairSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("PairSeed(1,%d) collides with index %d", i, prev)
		}
		seen[s] = i
	}
	if PairSeed(1, 0) == PairSeed(2, 0) {
		t.Error("root seed does not change derived seeds")
	}
	if PairSeed(1, 5) != PairSeed(1, 5) {
		t.Error("PairSeed is not a pure function")
	}
}

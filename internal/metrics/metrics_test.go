package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMEL(t *testing.T) {
	load := []float64{2, 6, 1}
	capv := []float64{2, 3, 0} // zero-capacity skipped
	if got := MEL(load, capv); got != 2 {
		t.Errorf("MEL = %v, want 2", got)
	}
	if got := MEL(nil, nil); got != 0 {
		t.Errorf("MEL(empty) = %v, want 0", got)
	}
}

func TestMaxIncreaseOnPath(t *testing.T) {
	load := []float64{1, 2, 3, 4}
	capv := []float64{2, 2, 2, 2}
	// Links 0 and 2, delta 1: ratios (1+1)/2=1, (3+1)/2=2.
	if got := MaxIncreaseOnPath(load, capv, []int{0, 2}, 1); got != 2 {
		t.Errorf("MaxIncreaseOnPath = %v, want 2", got)
	}
	if got := MaxIncreaseOnPath(load, capv, nil, 1); got != 0 {
		t.Errorf("empty path should give 0, got %v", got)
	}
}

func TestFortzThorupLinkKnownValues(t *testing.T) {
	// With capacity 1: phi(1/3) = 1/3; phi(2/3) = 1/3 + 3*(1/3) = 4/3;
	// phi(0.9) = 4/3 + 10*(0.9-2/3); phi(1) = that + 70*0.1;
	// phi(1.1) = +500*0.1; phi(1.2) = +5000*0.1.
	phi := func(u float64) float64 { return FortzThorupLink(u, 1) }
	cases := []struct{ u, want float64 }{
		{0, 0},
		{1.0 / 3, 1.0 / 3},
		{2.0 / 3, 4.0 / 3},
		{0.9, 4.0/3 + 10*(0.9-2.0/3)},
		{1.0, 4.0/3 + 10*(0.9-2.0/3) + 70*0.1},
		{1.1, 4.0/3 + 10*(0.9-2.0/3) + 70*0.1 + 500*0.1},
		{1.2, 4.0/3 + 10*(0.9-2.0/3) + 70*0.1 + 500*0.1 + 5000*0.1},
	}
	for _, c := range cases {
		if got := phi(c.u); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("phi(%v) = %v, want %v", c.u, got, c.want)
		}
	}
}

func TestFortzThorupScalesWithCapacity(t *testing.T) {
	// Cost at utilization u with capacity c equals c * cost at capacity 1.
	for _, u := range []float64{0.2, 0.5, 0.95, 1.3} {
		c1 := FortzThorupLink(u, 1)
		c10 := FortzThorupLink(u*10, 10)
		if math.Abs(c10-10*c1) > 1e-9 {
			t.Errorf("u=%v: cost(cap=10) = %v, want %v", u, c10, 10*c1)
		}
	}
}

func TestFortzThorupProperties(t *testing.T) {
	// phi is non-negative, zero capacity gives zero, and it is
	// monotonically non-decreasing and convex in load.
	f := func(rawLoad, rawCap float64) bool {
		load := math.Abs(math.Mod(rawLoad, 1000))
		capv := math.Abs(math.Mod(rawCap, 1000))
		if math.IsNaN(load) || math.IsNaN(capv) || capv == 0 {
			return true
		}
		c := FortzThorupLink(load, capv)
		cMore := FortzThorupLink(load*1.1+0.1, capv)
		if c < 0 || cMore < c-1e-12*(1+c) {
			return false
		}
		// Convexity probe: phi(mid) <= (phi(lo)+phi(hi))/2, with a
		// relative tolerance (costs reach ~1e6, where absolute 1e-9 is
		// below one ulp).
		lo, hi := load, load*1.5+1
		mid := (lo + hi) / 2
		avg := (FortzThorupLink(lo, capv) + FortzThorupLink(hi, capv)) / 2
		return FortzThorupLink(mid, capv) <= avg+1e-9*(1+math.Abs(avg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFortzThorupSum(t *testing.T) {
	load := []float64{0.5, 1}
	capv := []float64{1, 1}
	want := FortzThorupLink(0.5, 1) + FortzThorupLink(1, 1)
	if got := FortzThorup(load, capv); math.Abs(got-want) > 1e-12 {
		t.Errorf("FortzThorup = %v, want %v", got, want)
	}
	if got := FortzThorupLink(1, 0); got != 0 {
		t.Errorf("zero capacity should cost 0, got %v", got)
	}
}

func TestGainPercent(t *testing.T) {
	if got := GainPercent(200, 150); got != 25 {
		t.Errorf("GainPercent = %v, want 25", got)
	}
	if got := GainPercent(100, 120); got != -20 {
		t.Errorf("GainPercent = %v, want -20", got)
	}
	if got := GainPercent(0, 5); got != 0 {
		t.Errorf("GainPercent zero baseline = %v, want 0", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3, 1); got != 2 {
		t.Errorf("Ratio = %v, want 2", got)
	}
	if got := Ratio(6, 0, 1); got != 1 {
		t.Errorf("Ratio fallback = %v, want 1", got)
	}
}

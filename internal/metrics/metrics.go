// Package metrics implements the routing-quality metrics of the paper's
// evaluation: total path distance (§5.1), maximum excess load — MEL
// (§5.2), and the Fortz–Thorup piecewise-linear link-cost function the
// paper uses as an alternate bandwidth metric.
package metrics

import "math"

// MEL returns the maximum excess load: the maximum over links of the
// ratio of offered load to capacity. With capacities assigned
// proportionally to pre-failure load (package capacity), this is exactly
// the paper's "maximum ratio of load after and before the failure on any
// link in the topology". Links with non-positive capacity are skipped.
func MEL(load, capv []float64) float64 {
	var m float64
	for i := range load {
		if capv[i] <= 0 {
			continue
		}
		if r := load[i] / capv[i]; r > m {
			m = r
		}
	}
	return m
}

// MaxIncreaseOnPath returns the maximum, over the given links, of the
// load-to-capacity ratio after adding delta to each of those links. It is
// the per-flow quantity the paper's bandwidth preference mapping uses:
// "the maximum increase in link load along the path".
func MaxIncreaseOnPath(load, capv []float64, links []int, delta float64) float64 {
	var m float64
	for _, li := range links {
		if capv[li] <= 0 {
			continue
		}
		if r := (load[li] + delta) / capv[li]; r > m {
			m = r
		}
	}
	return m
}

// MaxIncreaseOnPath32 is MaxIncreaseOnPath over an int32 link row — the
// element type of routing.PathIndex rows, which the evaluator hot loops
// read without converting. The float operations are identical to the
// []int variant, so both produce byte-identical results for the same
// path.
func MaxIncreaseOnPath32(load, capv []float64, links []int32, delta float64) float64 {
	var m float64
	for _, li := range links {
		if capv[li] <= 0 {
			continue
		}
		if r := (load[li] + delta) / capv[li]; r > m {
			m = r
		}
	}
	return m
}

// Fortz–Thorup piecewise-linear cost (Fortz & Thorup, INFOCOM 2000):
// the cost of a link is phi(u) where u = load/capacity, with slopes that
// increase sharply as the link approaches and exceeds capacity. The paper
// lists this as the alternate ISP optimization metric for bandwidth.
var (
	ftBreaks = []float64{0, 1.0 / 3, 2.0 / 3, 9.0 / 10, 1, 11.0 / 10}
	ftSlopes = []float64{1, 3, 10, 70, 500, 5000}
)

// FortzThorupLink returns the Fortz–Thorup cost of one link with the
// given load and capacity. Cost is measured in units of capacity (the
// standard normalization). A non-positive capacity yields zero cost.
func FortzThorupLink(load, capv float64) float64 {
	if capv <= 0 {
		return 0
	}
	u := load / capv
	if u <= 0 {
		return 0
	}
	var cost float64
	for i := range ftBreaks {
		hi := math.Inf(1)
		if i+1 < len(ftBreaks) {
			hi = ftBreaks[i+1]
		}
		if u <= ftBreaks[i] {
			break
		}
		seg := math.Min(u, hi) - ftBreaks[i]
		cost += seg * ftSlopes[i]
	}
	return cost * capv
}

// FortzThorup sums the link costs over a topology.
func FortzThorup(load, capv []float64) float64 {
	var sum float64
	for i := range load {
		sum += FortzThorupLink(load[i], capv[i])
	}
	return sum
}

// GainPercent returns the percentage improvement of value over baseline
// for metrics where smaller is better: 100 * (baseline - value) /
// baseline. A zero baseline yields zero.
func GainPercent(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - value) / baseline
}

// Ratio returns value/reference, or the given fallback when the
// reference is zero. The paper's Figures 7-11 plot MEL ratios to the
// optimal MEL.
func Ratio(value, reference, fallback float64) float64 {
	if reference == 0 {
		return fallback
	}
	return value / reference
}

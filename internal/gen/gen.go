// Package gen deterministically generates the synthetic ISP dataset that
// substitutes for the 65 measured Rocketfuel PoP-level topologies used by
// the paper (see DESIGN.md §4).
//
// Each generated ISP picks PoP cities from the embedded world-city table
// with population-biased sampling (so large hubs appear in many ISPs and
// pairs of ISPs meet in multiple cities, as real ISPs do), builds a
// geographic minimum-spanning-tree backbone, and adds distance-biased
// shortcut links (Waxman-style). Link weights are proportional to
// geographic length with deterministic jitter, matching the estimated
// inter-PoP weights of the measured dataset. A small fraction of ISPs are
// generated as logical meshes, mirroring the eight mesh topologies the
// paper excludes from distance experiments.
//
// Dataset format v2: every ISP draws from a private RNG stream keyed by
// (Config.Seed, ISP index) — the same splitmix64 derivation the runner's
// per-pair streams and the experiments' keyed pair selection use — so
// generateISP is a pure function of (Config, index) and Generate shards
// across cores with output byte-identical for every worker count. The
// format bump means v1 seeds are NOT reproducible: the same Seed yields
// a different (still fully deterministic) dataset than it did before
// the bump. TestGoldenV2 pins the v2 output per ISP.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/runner"
	"repro/internal/topology"
)

// Config controls dataset generation. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	Seed    int64 // master RNG seed; everything is derived from it
	NumISPs int   // number of ISPs to generate

	MinPoPs, MaxPoPs int // PoP count range per ISP (inclusive)

	// PopulationBias is the exponent applied to city population when
	// sampling PoP locations. 0 is uniform; 1 is proportional. Higher
	// values concentrate PoPs in the biggest hubs, increasing the number
	// of interconnections between ISP pairs.
	PopulationBias float64

	// ShortcutFraction is the number of extra (non-MST) links to attempt
	// per PoP. Rocketfuel backbones have average degree ~2.5-3.5.
	ShortcutFraction float64

	// WaxmanAlpha controls how sharply shortcut probability decays with
	// distance, as a fraction of the ISP's geographic diameter.
	WaxmanAlpha float64

	// WeightJitter is the +/- fractional jitter applied to link weights
	// relative to geographic length (IGP weights track distance only
	// approximately in practice).
	WeightJitter float64

	// MeshFraction is the fraction of ISPs generated as logical meshes
	// (every PoP pair directly linked); the paper excludes such ISPs from
	// distance experiments because mesh edge lengths are not meaningful.
	MeshFraction float64

	// GlobalFraction is the fraction of ISPs with a worldwide footprint;
	// the rest are continental carriers that stay in one region with
	// occasional out-of-region PoPs.
	GlobalFraction float64

	// OutOfRegionProb is the per-PoP probability that a continental ISP
	// places a PoP outside its home region (e.g. a European carrier with
	// a New York PoP).
	OutOfRegionProb float64

	// HubBias is the per-PoP probability that the city is drawn from the
	// peering-hub set — the HubCount most-populous cities of the
	// sampling pool — instead of from the population-biased pool at
	// large. Concentrating PoPs in shared hub cities is what keeps ISP
	// pairs meeting in >=2 cities as universes grow past the paper's 65
	// ISPs: over a large city table, unconcentrated draws spread PoPs so
	// thin that eligible pair counts collapse. 0 disables the hub draw.
	// Config v2.
	HubBias float64

	// HubCount sizes the peering-hub set for HubBias draws (ignored when
	// HubBias is 0). Config v2.
	HubCount int

	// TrafficExponent is the exponent applied to metro population when
	// recording each PoP's gravity weight (topology.PoP.Population),
	// which the traffic package multiplies pairwise to size flows. 1
	// records metro populations as-is; >1 makes the resulting gravity
	// traffic matrices heavy-tailed (a few hub-to-hub elephant flows
	// dominate); <1 flattens them. Must be positive. Config v2.
	TrafficExponent float64
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments: 65 ISPs with size and density ranges matching Rocketfuel.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		NumISPs:          65,
		MinPoPs:          4,
		MaxPoPs:          36,
		PopulationBias:   0.75,
		ShortcutFraction: 0.8,
		WaxmanAlpha:      0.35,
		WeightJitter:     0.25,
		MeshFraction:     0.12,
		GlobalFraction:   0.2,
		OutOfRegionProb:  0.08,
		// Hub concentration tuned so the 330-city table keeps the
		// interconnection density (and thus negotiation quality on
		// failover) of the historical 155-city universe: 0.5/32 yields
		// ~540 directly-connected pairs at 65 ISPs, and one-shot
		// negotiated worst-case MEL stays within the stability bound
		// of converged reactive routing.
		HubBias:         0.5,
		HubCount:        32,
		TrafficExponent: 1,
	}
}

// globalSizeBoost is the extra PoPs granted to small global ISPs so a
// worldwide footprint implies scale (samplePoPs clamps the boosted size
// to the available city pool).
const globalSizeBoost = 8

// Validate checks the configuration for obvious mistakes.
func (c Config) Validate() error {
	if c.NumISPs <= 0 {
		return fmt.Errorf("gen: NumISPs must be positive")
	}
	if c.MinPoPs < 2 || c.MaxPoPs < c.MinPoPs {
		return fmt.Errorf("gen: need 2 <= MinPoPs <= MaxPoPs")
	}
	if c.MaxPoPs > len(worldCities) {
		return fmt.Errorf("gen: MaxPoPs %d exceeds city table size %d", c.MaxPoPs, len(worldCities))
	}
	if c.PopulationBias < 0 || c.WeightJitter < 0 || c.WeightJitter >= 1 {
		return fmt.Errorf("gen: PopulationBias must be >= 0 and WeightJitter in [0,1)")
	}
	if c.MeshFraction < 0 || c.MeshFraction > 1 || c.GlobalFraction < 0 || c.GlobalFraction > 1 {
		return fmt.Errorf("gen: fractions must be in [0,1]")
	}
	if c.HubBias < 0 || c.HubBias > 1 {
		return fmt.Errorf("gen: HubBias must be in [0,1]")
	}
	if c.HubBias > 0 && c.HubCount <= 0 {
		return fmt.Errorf("gen: HubBias %g needs a positive HubCount", c.HubBias)
	}
	if c.TrafficExponent <= 0 {
		return fmt.Errorf("gen: TrafficExponent must be positive (1 = metro populations as-is)")
	}
	return nil
}

// regionShare weights the home-region draw; most measured ISPs are North
// American or European carriers.
var regionShare = map[Region]float64{
	NorthAmerica: 0.42,
	Europe:       0.30,
	Asia:         0.16,
	SouthAmerica: 0.05,
	Oceania:      0.04,
	Africa:       0.03,
}

// genDomain separates the dataset-generation RNG domain from the other
// consumers that derive splitmix64 streams from the same master seed
// (the runner's per-pair streams, selectPairs' keys, agentd's epoch
// drift keys): the per-ISP root is split off the master seed first, so
// an ISP's generation stream never coincides with an experiment pair's
// even when seeds and indices collide.
const genDomain = 0x67656e32 // "gen2"

// streamSeed keys ISP index i's private RNG stream off (seed, i) via
// the runner's splitmix64 derivation. It depends only on (seed, i) —
// never on worker count or scheduling — which is what makes Generate's
// output independent of parallelism.
func streamSeed(seed int64, i int) int64 {
	return runner.PairSeed(runner.PairSeed(seed, genDomain), i)
}

// Generate produces the dataset, sharding per-ISP generation across
// GOMAXPROCS cores (format v2: each ISP draws from its own
// (Seed, index)-keyed stream, see the package comment). The same Config
// always yields the same dataset, byte for byte, at every worker
// count. Every generated ISP passes Validate.
func Generate(cfg Config) ([]*topology.ISP, error) {
	return GenerateWorkers(cfg, 0)
}

// GenerateWorkers is Generate with an explicit worker count (<=0 =
// GOMAXPROCS). Output is byte-identical for every worker count; workers
// only change wall-clock time (TestGenerateParallelParity pins this).
func GenerateWorkers(cfg Config, workers int) ([]*topology.ISP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	isps := make([]*topology.ISP, cfg.NumISPs)
	errs := make([]error, cfg.NumISPs)
	runner.ForEachIndex(cfg.NumISPs, workers, func(i int) {
		isp := generateISP(cfg, i)
		if err := isp.Validate(); err != nil {
			errs[i] = fmt.Errorf("gen: generated invalid ISP %d: %v", i, err)
			return
		}
		isps[i] = isp
	})
	// The lowest-index error wins, deterministically, regardless of
	// which worker hit it.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return isps, nil
}

// generateISP builds ISP number index. It is a pure function of
// (cfg, index): all randomness comes from the ISP's private stream, so
// ISPs can generate concurrently in any order.
func generateISP(cfg Config, index int) *topology.ISP {
	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, index)))
	isp := &topology.ISP{
		Name: fmt.Sprintf("isp%02d", index),
		ASN:  7000 + index,
	}

	global := rng.Float64() < cfg.GlobalFraction
	home := drawRegion(rng)
	// Size: log-uniform so small ISPs are common, like Rocketfuel.
	span := math.Log(float64(cfg.MaxPoPs)) - math.Log(float64(cfg.MinPoPs))
	n := int(math.Round(math.Exp(math.Log(float64(cfg.MinPoPs)) + rng.Float64()*span)))
	if n < cfg.MinPoPs {
		n = cfg.MinPoPs
	}
	if n > cfg.MaxPoPs {
		n = cfg.MaxPoPs
	}
	// Global ISPs skew larger.
	if global && n < 12 {
		n += globalSizeBoost
	}

	cities := samplePoPs(cfg, rng, home, global, n)
	for i, c := range cities {
		isp.PoPs = append(isp.PoPs, topology.PoP{
			ID: i, City: c.Name, Loc: c.Loc,
			// math.Pow(x, 1) == x exactly, so the default exponent
			// records metro populations unchanged.
			Population: math.Pow(c.Population, cfg.TrafficExponent),
		})
	}

	if rng.Float64() < cfg.MeshFraction {
		buildMesh(isp, cfg, rng)
	} else {
		buildBackbone(isp, cfg, rng)
	}
	return isp
}

// drawRegion samples a home region according to regionShare.
func drawRegion(rng *rand.Rand) Region {
	x := rng.Float64()
	var acc float64
	for r := Region(0); r < numRegions; r++ {
		acc += regionShare[r]
		if x < acc {
			return r
		}
	}
	return NorthAmerica
}

// samplePoPs draws n distinct cities with probability proportional to
// population^bias, restricted to the home region for continental ISPs
// (with occasional out-of-region PoPs). With probability HubBias each
// draw comes from the pool's peering-hub set instead (the HubCount
// most-populous cities), concentrating interconnection points the way
// real ISPs concentrate peering in a handful of hub metros. If n
// exceeds the pool — a boosted global ISP against a small table, or a
// widened region — it is clamped to the pool size rather than running
// the without-replacement draw dry.
func samplePoPs(cfg Config, rng *rand.Rand, home Region, global bool, n int) []City {
	var pool []City
	for _, c := range worldCities {
		if global || c.Region == home || rng.Float64() < cfg.OutOfRegionProb {
			pool = append(pool, c)
		}
	}
	if len(pool) < n {
		// Tiny regions (Oceania, Africa) may not have n cities; widen to
		// the whole world rather than fail.
		pool = Cities()
	}
	if n > len(pool) {
		n = len(pool)
	}
	weights := make([]float64, len(pool))
	for i, c := range pool {
		weights[i] = math.Pow(c.Population, cfg.PopulationBias)
	}
	all := newWeightedSampler(weights)
	hubs := newWeightedSampler(hubWeights(pool, weights, cfg.HubCount))
	out := make([]City, 0, n)
	for len(out) < n {
		var i int
		if cfg.HubBias > 0 && hubs.Total() > 0 && rng.Float64() < cfg.HubBias {
			i = hubs.Draw(rng)
		} else {
			i = all.Draw(rng)
		}
		out = append(out, pool[i])
		all.Zero(i) // without replacement, in both samplers
		hubs.Zero(i)
	}
	return out
}

// hubWeights restricts a pool's weight vector to its peering-hub set:
// the count most-populous cities keep their weights, everything else
// drops to zero. Ties and order are deterministic (stable sort by
// population, pool order breaking ties).
func hubWeights(pool []City, weights []float64, count int) []float64 {
	hw := make([]float64, len(pool))
	if count <= 0 {
		return hw
	}
	if count > len(pool) {
		count = len(pool)
	}
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pool[order[a]].Population > pool[order[b]].Population
	})
	for _, i := range order[:count] {
		hw[i] = weights[i]
	}
	return hw
}

// buildBackbone constructs a geographic MST plus Waxman shortcuts.
func buildBackbone(isp *topology.ISP, cfg Config, rng *rand.Rand) {
	n := len(isp.PoPs)
	dist := func(i, j int) float64 {
		return geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[j].Loc)
	}

	// Prim's MST over geographic distance.
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = dist(0, j)
		from[j] = 0
	}
	have := map[[2]int]bool{}
	addLink := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if a == b || have[key] {
			return
		}
		have[key] = true
		d := dist(a, b)
		if d < 1 {
			d = 1 // co-located PoPs still cost something to connect
		}
		jitter := 1 + (rng.Float64()*2-1)*cfg.WeightJitter
		isp.Links = append(isp.Links, topology.Link{
			A: a, B: b, Weight: d * jitter, LengthKm: d,
		})
	}
	for count := 1; count < n; count++ {
		u, ud := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < ud {
				u, ud = j, best[j]
			}
		}
		inTree[u] = true
		addLink(u, from[u])
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if d := dist(u, j); d < best[j] {
					best[j] = d
					from[j] = u
				}
			}
		}
	}

	// Diameter estimate for the Waxman decay scale.
	var diameter float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > diameter {
				diameter = d
			}
		}
	}
	if diameter <= 0 {
		diameter = 1
	}
	attempts := int(cfg.ShortcutFraction * float64(n) * 3)
	added := 0
	budget := int(cfg.ShortcutFraction * float64(n))
	for t := 0; t < attempts && added < budget; t++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		p := math.Exp(-dist(a, b) / (cfg.WaxmanAlpha * diameter))
		if rng.Float64() < p {
			before := len(isp.Links)
			addLink(a, b)
			if len(isp.Links) > before {
				added++
			}
		}
	}
}

// buildMesh links every pair of PoPs directly, producing a logical-mesh
// topology like the eight the paper excludes.
func buildMesh(isp *topology.ISP, cfg Config, rng *rand.Rand) {
	n := len(isp.PoPs)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := geo.DistanceKm(isp.PoPs[a].Loc, isp.PoPs[b].Loc)
			if d < 1 {
				d = 1
			}
			jitter := 1 + (rng.Float64()*2-1)*cfg.WeightJitter
			isp.Links = append(isp.Links, topology.Link{
				A: a, B: b, Weight: d * jitter, LengthKm: d,
			})
		}
	}
}

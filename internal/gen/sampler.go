package gen

import "math/rand"

// weightedSampler draws indices proportionally to a weight vector,
// without replacement, in O(log n) per draw: a Fenwick (binary indexed)
// tree over the weights supports prefix sums and point zeroing, and a
// draw binary-searches the tree for the smallest index whose cumulative
// weight exceeds the dart. It replaces the historical O(n) linear scan,
// which cost O(PoPs x cities) per ISP and sat on the sharded generation
// hot path once the city table and universe sizes grew.
type weightedSampler struct {
	tree      []float64 // 1-based Fenwick partial sums
	weights   []float64 // current weight per index; 0 once drawn
	total     float64   // sum of weights (kept exact via tree-free adds)
	remaining int       // count of positive entries; exact, unlike total
}

// newWeightedSampler builds a sampler over the given weights in O(n).
// Weights must be non-negative; the caller may pass a vector with any
// number of zero entries (they are simply never drawn).
func newWeightedSampler(weights []float64) *weightedSampler {
	s := &weightedSampler{
		tree:    make([]float64, len(weights)+1),
		weights: append([]float64(nil), weights...),
	}
	for i, w := range weights {
		if w < 0 {
			panic("gen: weightedSampler with negative weight")
		}
		s.total += w
		if w > 0 {
			s.remaining++
		}
		pos := i + 1
		s.tree[pos] += w
		if next := pos + (pos & -pos); next < len(s.tree) {
			s.tree[next] += s.tree[pos]
		}
	}
	return s
}

// Total reports the remaining weight mass. Because total is maintained
// by incremental subtraction, it can drift to a tiny nonzero residue
// once every entry has been drawn; Total reports exactly 0 in that case
// so callers' `Total() > 0` exhaustion guards stay sound.
func (s *weightedSampler) Total() float64 {
	if s.remaining == 0 {
		return 0
	}
	return s.total
}

// Draw picks an index with probability proportional to its current
// weight, consuming exactly one rng.Float64(). At least one weight must
// be positive; Draw panics otherwise (the caller decides when the pool
// is exhausted, exactly as with the old linear weightedDraw).
func (s *weightedSampler) Draw(rng *rand.Rand) int {
	if s.remaining == 0 {
		panic("gen: weighted draw with no positive weights")
	}
	x := rng.Float64() * s.total
	// Classic Fenwick descend: after the loop, idx counts the longest
	// prefix with cumulative weight <= x, so item idx (0-based) is the
	// smallest whose cumulative weight exceeds the dart. Zero-weight
	// items add no mass, so a dart landing exactly on their boundary
	// moves past them.
	idx := 0
	for bit := highestBit(len(s.tree) - 1); bit > 0; bit >>= 1 {
		if next := idx + bit; next < len(s.tree) && s.tree[next] <= x {
			x -= s.tree[next]
			idx = next
		}
	}
	if idx < len(s.weights) && s.weights[idx] > 0 {
		return idx
	}
	// Floating-point slack (total drifting a hair above the true tree
	// sum) can land past the end or on a zeroed index: return the last
	// positive-weight index, as the linear scan did.
	for i := len(s.weights) - 1; i >= 0; i-- {
		if s.weights[i] > 0 {
			return i
		}
	}
	panic("gen: unreachable")
}

// Zero removes index i from the pool (the without-replacement step).
// Zeroing an already-zero index is a no-op.
func (s *weightedSampler) Zero(i int) {
	w := s.weights[i]
	if w == 0 {
		return
	}
	s.weights[i] = 0
	s.total -= w
	s.remaining--
	for pos := i + 1; pos < len(s.tree); pos += pos & -pos {
		s.tree[pos] -= w
	}
}

// highestBit returns the largest power of two <= n (0 for n <= 0).
func highestBit(n int) int {
	b := 1
	if n <= 0 {
		return 0
	}
	for b<<1 <= n {
		b <<= 1
	}
	return b
}

package gen

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero isps", func(c *Config) { c.NumISPs = 0 }},
		{"min pops too small", func(c *Config) { c.MinPoPs = 1 }},
		{"max below min", func(c *Config) { c.MaxPoPs = c.MinPoPs - 1 }},
		{"max pops beyond table", func(c *Config) { c.MaxPoPs = 10000 }},
		{"negative bias", func(c *Config) { c.PopulationBias = -1 }},
		{"jitter too large", func(c *Config) { c.WeightJitter = 1.5 }},
		{"bad mesh fraction", func(c *Config) { c.MeshFraction = 2 }},
		{"bad global fraction", func(c *Config) { c.GlobalFraction = -0.1 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", c.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISPs = 10
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := topology.Write(&sa, a); err != nil {
		t.Fatal(err)
	}
	if err := topology.Write(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Error("same seed produced different datasets")
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sc strings.Builder
	if err := topology.Write(&sc, c); err != nil {
		t.Fatal(err)
	}
	if sa.String() == sc.String() {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateAllValid(t *testing.T) {
	isps, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(isps) != 65 {
		t.Fatalf("generated %d ISPs, want 65", len(isps))
	}
	cfg := DefaultConfig()
	meshes := 0
	for _, isp := range isps {
		if err := isp.Validate(); err != nil {
			t.Errorf("%s: %v", isp.Name, err)
		}
		if n := isp.NumPoPs(); n < cfg.MinPoPs || n > cfg.MaxPoPs+8 {
			t.Errorf("%s: %d PoPs outside [%d,%d+8]", isp.Name, n, cfg.MinPoPs, cfg.MaxPoPs)
		}
		if isp.IsMesh() {
			meshes++
		}
	}
	if meshes == 0 {
		t.Error("expected some mesh ISPs in the dataset")
	}
	if meshes > len(isps)/2 {
		t.Errorf("too many mesh ISPs: %d", meshes)
	}
}

func TestDatasetHasUsablePairs(t *testing.T) {
	// The experiments need: ISP pairs with >=2 interconnections
	// (distance, paper had 229) and pairs with >=3 (bandwidth, paper had
	// 247 failure cases). The synthetic dataset must produce the same
	// order of magnitude.
	isps, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := topology.AllPairs(isps, 2, true)
	if len(d) < 100 {
		t.Errorf("only %d pairs with >=2 interconnections; want >=100", len(d))
	}
	b := topology.AllPairs(isps, 3, true)
	failures := 0
	for _, p := range b {
		failures += p.NumInterconnections()
	}
	if failures < 100 {
		t.Errorf("only %d failure cases for bandwidth experiments; want >=100", failures)
	}
	t.Logf("dataset: %d distance pairs, %d bandwidth pairs, %d failure cases", len(d), len(b), failures)
}

func TestCitiesTable(t *testing.T) {
	cities := Cities()
	if len(cities) < 120 {
		t.Fatalf("city table has %d entries, want >=120", len(cities))
	}
	seen := map[string]bool{}
	for _, c := range cities {
		if c.Name == "" {
			t.Error("city with empty name")
		}
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if !c.Loc.Valid() {
			t.Errorf("%s: invalid location %v", c.Name, c.Loc)
		}
		if c.Population <= 0 {
			t.Errorf("%s: non-positive population", c.Name)
		}
		if c.Region < 0 || c.Region >= numRegions {
			t.Errorf("%s: bad region %d", c.Name, c.Region)
		}
	}
	// Mutating the returned slice must not affect the embedded table.
	cities[0].Name = "mutated"
	if Cities()[0].Name == "mutated" {
		t.Error("Cities() exposes internal state")
	}
}

func TestRegionString(t *testing.T) {
	for r := Region(0); r < numRegions; r++ {
		if r.String() == "unknown" {
			t.Errorf("region %d has no name", r)
		}
	}
	if Region(99).String() != "unknown" {
		t.Error("out-of-range region should stringify to unknown")
	}
}

func TestWeightedDraw(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISPs = 3
	cfg.Seed = 99
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("weightedDraw should panic with all-zero weights")
		}
	}()
	weightedDraw(nil, []float64{0, 0})
}

package gen

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/topology"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero isps", func(c *Config) { c.NumISPs = 0 }},
		{"min pops too small", func(c *Config) { c.MinPoPs = 1 }},
		{"max below min", func(c *Config) { c.MaxPoPs = c.MinPoPs - 1 }},
		{"max pops beyond table", func(c *Config) { c.MaxPoPs = 10000 }},
		{"negative bias", func(c *Config) { c.PopulationBias = -1 }},
		{"jitter too large", func(c *Config) { c.WeightJitter = 1.5 }},
		{"bad mesh fraction", func(c *Config) { c.MeshFraction = 2 }},
		{"bad global fraction", func(c *Config) { c.GlobalFraction = -0.1 }},
		{"hub bias above one", func(c *Config) { c.HubBias = 1.5 }},
		{"negative hub bias", func(c *Config) { c.HubBias = -0.1 }},
		{"hub bias without hubs", func(c *Config) { c.HubBias = 0.5; c.HubCount = 0 }},
		{"zero traffic exponent", func(c *Config) { c.TrafficExponent = 0 }},
		{"negative traffic exponent", func(c *Config) { c.TrafficExponent = -2 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad config", c.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISPs = 10
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	if err := topology.Write(&sa, a); err != nil {
		t.Fatal(err)
	}
	if err := topology.Write(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Error("same seed produced different datasets")
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sc strings.Builder
	if err := topology.Write(&sc, c); err != nil {
		t.Fatal(err)
	}
	if sa.String() == sc.String() {
		t.Error("different seeds produced identical datasets")
	}
}

// TestGenerateParallelParity pins the format-v2 contract: the dataset is
// byte-identical at every worker count, because each ISP draws from a
// private (Seed, index)-keyed stream and never observes scheduling.
func TestGenerateParallelParity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumISPs = 40
	want, err := GenerateWorkers(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := GenerateWorkers(cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d produced a different dataset than workers=1", workers)
		}
	}
}

// TestGenerateISPPure pins that generateISP is a pure function of
// (Config, index): regenerating any single ISP in isolation reproduces
// the one Generate built, for both the mesh and the backbone branch.
func TestGenerateISPPure(t *testing.T) {
	cfg := DefaultConfig()
	isps, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meshChecked, backboneChecked := false, false
	for i, isp := range isps {
		if isp.IsMesh() {
			meshChecked = true
		} else {
			backboneChecked = true
		}
		if solo := generateISP(cfg, i); !reflect.DeepEqual(isp, solo) {
			t.Errorf("isp %d: isolated regeneration differs from Generate", i)
		}
	}
	if !meshChecked || !backboneChecked {
		t.Errorf("dataset exercised mesh=%v backbone=%v; want both branches", meshChecked, backboneChecked)
	}
}

// TestGoldenV2 pins the v2 dataset bytes per ISP. A diff here means the
// dataset format changed: if that is intentional, regenerate with
//
//	go test ./internal/gen -run TestGoldenV2 -update
//
// and say so in the commit (v1 seeds are already not reproducible after
// the v2 bump; see the package comment).
func TestGoldenV2(t *testing.T) {
	isps, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	for _, isp := range isps {
		var buf strings.Builder
		if err := topology.Write(&buf, []*topology.ISP{isp}); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&got, "%s %x\n", isp.Name, sha256.Sum256([]byte(buf.String())))
	}
	path := filepath.Join("testdata", "v2_digests.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(isps) {
		t.Fatalf("golden has %d ISPs, dataset has %d (run with -update?)", len(want), len(isps))
	}
	for _, line := range strings.Split(strings.TrimSpace(got.String()), "\n") {
		fields := strings.Fields(line)
		if w := want[fields[0]]; w != fields[1] {
			t.Errorf("%s: digest %s, golden %s", fields[0], fields[1], w)
		}
	}
}

func TestGenerateAllValid(t *testing.T) {
	isps, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(isps) != 65 {
		t.Fatalf("generated %d ISPs, want 65", len(isps))
	}
	cfg := DefaultConfig()
	meshes := 0
	for _, isp := range isps {
		if err := isp.Validate(); err != nil {
			t.Errorf("%s: %v", isp.Name, err)
		}
		if n := isp.NumPoPs(); n < cfg.MinPoPs || n > cfg.MaxPoPs+globalSizeBoost {
			t.Errorf("%s: %d PoPs outside [%d,%d+%d]", isp.Name, n, cfg.MinPoPs, cfg.MaxPoPs, globalSizeBoost)
		}
		if isp.IsMesh() {
			meshes++
		}
	}
	if meshes == 0 {
		t.Error("expected some mesh ISPs in the dataset")
	}
	if meshes > len(isps)/2 {
		t.Errorf("too many mesh ISPs: %d", meshes)
	}
}

// TestGenerateLargeUniverse checks the scale the format bump exists for:
// every ISP of a 512-ISP universe still satisfies the full Validate
// invariant set, and names/ASNs stay unique.
func TestGenerateLargeUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("large universe in -short mode")
	}
	cfg := DefaultConfig()
	cfg.NumISPs = 512
	isps, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, isp := range isps {
		if err := isp.Validate(); err != nil {
			t.Errorf("%s: %v", isp.Name, err)
		}
		if names[isp.Name] {
			t.Errorf("duplicate ISP name %q", isp.Name)
		}
		names[isp.Name] = true
	}
	d := topology.AllPairs(isps, 2, true)
	if len(d) < 500 {
		t.Errorf("512-ISP universe has only %d eligible pairs; want >=500", len(d))
	}
}

func TestDatasetHasUsablePairs(t *testing.T) {
	// The experiments need: ISP pairs with >=2 interconnections
	// (distance, paper had 229) and pairs with >=3 (bandwidth, paper had
	// 247 failure cases). The synthetic dataset must produce the same
	// order of magnitude.
	isps, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := topology.AllPairs(isps, 2, true)
	if len(d) < 100 {
		t.Errorf("only %d pairs with >=2 interconnections; want >=100", len(d))
	}
	b := topology.AllPairs(isps, 3, true)
	failures := 0
	for _, p := range b {
		failures += p.NumInterconnections()
	}
	if failures < 100 {
		t.Errorf("only %d failure cases for bandwidth experiments; want >=100", failures)
	}
	t.Logf("dataset: %d distance pairs, %d bandwidth pairs, %d failure cases", len(d), len(b), failures)
}

func TestCitiesTable(t *testing.T) {
	cities := Cities()
	if len(cities) < 120 {
		t.Fatalf("city table has %d entries, want >=120", len(cities))
	}
	seen := map[string]bool{}
	for _, c := range cities {
		if c.Name == "" {
			t.Error("city with empty name")
		}
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if !c.Loc.Valid() {
			t.Errorf("%s: invalid location %v", c.Name, c.Loc)
		}
		if c.Population <= 0 {
			t.Errorf("%s: non-positive population", c.Name)
		}
		if c.Region < 0 || c.Region >= numRegions {
			t.Errorf("%s: bad region %d", c.Name, c.Region)
		}
	}
	// Mutating the returned slice must not affect the embedded table.
	cities[0].Name = "mutated"
	if Cities()[0].Name == "mutated" {
		t.Error("Cities() exposes internal state")
	}
}

func TestRegionString(t *testing.T) {
	for r := Region(0); r < numRegions; r++ {
		if r.String() == "unknown" {
			t.Errorf("region %d has no name", r)
		}
	}
	if Region(99).String() != "unknown" {
		t.Error("out-of-range region should stringify to unknown")
	}
}

// TestSamplePoPsRegionWidening covers the small-region fallback: when the
// home region has fewer cities than requested, the pool widens to the
// whole table and still yields n distinct cities.
func TestSamplePoPsRegionWidening(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutOfRegionProb = 0 // pool is exactly the home region
	oceania := 0
	for _, c := range Cities() {
		if c.Region == Oceania {
			oceania++
		}
	}
	n := oceania + 10
	rng := rand.New(rand.NewSource(7))
	got := samplePoPs(cfg, rng, Oceania, false, n)
	if len(got) != n {
		t.Fatalf("widened draw returned %d cities, want %d", len(got), n)
	}
	seen := map[string]bool{}
	for _, c := range got {
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestSamplePoPsExhaustionClamp is the regression test for the historical
// weightedDraw panic: asking for more PoPs than the pool holds must clamp
// to the pool instead of running the without-replacement draw dry.
func TestSamplePoPsExhaustionClamp(t *testing.T) {
	cfg := DefaultConfig()
	world := len(Cities())
	rng := rand.New(rand.NewSource(11))
	got := samplePoPs(cfg, rng, NorthAmerica, true, world+50)
	if len(got) != world {
		t.Fatalf("exhausting draw returned %d cities, want clamp to %d", len(got), world)
	}
	seen := map[string]bool{}
	for _, c := range got {
		if seen[c.Name] {
			t.Errorf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestWeightedSamplerMatchesLinearScan is the property test for the
// Fenwick-tree draw: against integer weights (whose partial sums are
// exact in float64), the tree must pick exactly the index the historical
// O(n) linear scan would have picked, draw after draw, for the same dart
// sequence.
func TestWeightedSamplerMatchesLinearScan(t *testing.T) {
	linearDraw := func(rng *rand.Rand, weights []float64) int {
		var total float64
		for _, w := range weights {
			total += w
		}
		x := rng.Float64() * total
		var acc float64
		for i, w := range weights {
			acc += w
			if x < acc && w > 0 {
				return i
			}
		}
		for i := len(weights) - 1; i >= 0; i-- {
			if weights[i] > 0 {
				return i
			}
		}
		panic("empty")
	}
	for trial := 0; trial < 50; trial++ {
		setup := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 1 + setup.Intn(97)
		weights := make([]float64, n)
		positive := 0
		for i := range weights {
			weights[i] = float64(setup.Intn(9)) // zeros included on purpose
			if weights[i] > 0 {
				positive++
			}
		}
		if positive == 0 {
			weights[setup.Intn(n)] = 3
			positive = 1
		}
		s := newWeightedSampler(weights)
		ref := append([]float64(nil), weights...)
		rngA := rand.New(rand.NewSource(int64(2000 + trial)))
		rngB := rand.New(rand.NewSource(int64(2000 + trial)))
		for draw := 0; draw < positive; draw++ {
			got := s.Draw(rngA)
			want := linearDraw(rngB, ref)
			if got != want {
				t.Fatalf("trial %d draw %d: sampler picked %d, linear scan %d", trial, draw, got, want)
			}
			s.Zero(got)
			ref[want] = 0
		}
		if s.Total() != 0 {
			t.Fatalf("trial %d: %g weight left after exhausting", trial, s.Total())
		}
	}
}

func TestWeightedSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Draw should panic with all-zero weights")
		}
	}()
	s := newWeightedSampler([]float64{0, 0})
	s.Draw(rand.New(rand.NewSource(1)))
}

// TestWeightedSamplerExhaustionExact pins that Total() reports exactly
// 0 once every positive entry has been drawn, even though the internal
// running total is maintained by incremental subtraction of weights
// (like 0.1) that are not exactly representable and so can leave a tiny
// floating-point residue. Callers guard hub-pool draws with
// `Total() > 0`; a residue sneaking through that guard used to reach
// Draw's "unreachable" panic on large universes with high HubBias.
func TestWeightedSamplerExhaustionExact(t *testing.T) {
	weights := []float64{0.1, 0.2, 0.3, 0.7, 0.9, 1.1, 0.1, 0.3}
	s := newWeightedSampler(weights)
	rng := rand.New(rand.NewSource(99))
	for range weights {
		s.Zero(s.Draw(rng))
	}
	if got := s.Total(); got != 0 {
		t.Fatalf("Total() = %g after exhausting all entries, want exactly 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Draw on an exhausted sampler should panic")
		}
	}()
	s.Draw(rng)
}

func TestWeightedSamplerRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newWeightedSampler should panic on negative weight")
		}
	}()
	newWeightedSampler([]float64{1, -1})
}

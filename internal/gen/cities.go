package gen

import "repro/internal/geo"

// City is one entry in the embedded world-city table. The table
// substitutes for the CIESIN gridded-population dataset the paper uses:
// the gravity traffic model only needs relative city weights, and the
// topology generator needs realistic geographic spread. Coordinates and
// metro populations are approximate; absolute accuracy is irrelevant
// because every metric in the evaluation is a ratio.
type City struct {
	Name       string
	Region     Region
	Loc        geo.Point
	Population float64 // metro population
}

// Region is a coarse continental region used to bias ISP footprints,
// mirroring how Rocketfuel ISPs are mostly national or continental
// carriers with a few global ones.
type Region int

// Regions of the embedded city table.
const (
	NorthAmerica Region = iota
	SouthAmerica
	Europe
	Asia
	Oceania
	Africa
	numRegions
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "north-america"
	case SouthAmerica:
		return "south-america"
	case Europe:
		return "europe"
	case Asia:
		return "asia"
	case Oceania:
		return "oceania"
	case Africa:
		return "africa"
	}
	return "unknown"
}

// Cities returns the embedded world-city table. The slice is freshly
// allocated on each call so callers may reorder it.
func Cities() []City {
	out := make([]City, len(worldCities))
	copy(out, worldCities)
	return out
}

// worldCities lists ~140 major cities. Populations are metro-area
// estimates in units of people.
var worldCities = []City{
	// North America
	{"new york", NorthAmerica, geo.Point{Lat: 40.71, Lon: -74.01}, 19.0e6},
	{"los angeles", NorthAmerica, geo.Point{Lat: 34.05, Lon: -118.24}, 13.0e6},
	{"chicago", NorthAmerica, geo.Point{Lat: 41.88, Lon: -87.63}, 9.5e6},
	{"dallas", NorthAmerica, geo.Point{Lat: 32.78, Lon: -96.80}, 7.5e6},
	{"houston", NorthAmerica, geo.Point{Lat: 29.76, Lon: -95.37}, 7.0e6},
	{"washington", NorthAmerica, geo.Point{Lat: 38.91, Lon: -77.04}, 6.3e6},
	{"philadelphia", NorthAmerica, geo.Point{Lat: 39.95, Lon: -75.17}, 6.2e6},
	{"atlanta", NorthAmerica, geo.Point{Lat: 33.75, Lon: -84.39}, 6.0e6},
	{"miami", NorthAmerica, geo.Point{Lat: 25.76, Lon: -80.19}, 6.1e6},
	{"boston", NorthAmerica, geo.Point{Lat: 42.36, Lon: -71.06}, 4.9e6},
	{"phoenix", NorthAmerica, geo.Point{Lat: 33.45, Lon: -112.07}, 4.8e6},
	{"san francisco", NorthAmerica, geo.Point{Lat: 37.77, Lon: -122.42}, 4.7e6},
	{"seattle", NorthAmerica, geo.Point{Lat: 47.61, Lon: -122.33}, 4.0e6},
	{"san diego", NorthAmerica, geo.Point{Lat: 32.72, Lon: -117.16}, 3.3e6},
	{"minneapolis", NorthAmerica, geo.Point{Lat: 44.98, Lon: -93.27}, 3.6e6},
	{"denver", NorthAmerica, geo.Point{Lat: 39.74, Lon: -104.99}, 2.9e6},
	{"st louis", NorthAmerica, geo.Point{Lat: 38.63, Lon: -90.20}, 2.8e6},
	{"tampa", NorthAmerica, geo.Point{Lat: 27.95, Lon: -82.46}, 3.1e6},
	{"baltimore", NorthAmerica, geo.Point{Lat: 39.29, Lon: -76.61}, 2.8e6},
	{"charlotte", NorthAmerica, geo.Point{Lat: 35.23, Lon: -80.84}, 2.6e6},
	{"portland", NorthAmerica, geo.Point{Lat: 45.52, Lon: -122.68}, 2.5e6},
	{"san antonio", NorthAmerica, geo.Point{Lat: 29.42, Lon: -98.49}, 2.5e6},
	{"orlando", NorthAmerica, geo.Point{Lat: 28.54, Lon: -81.38}, 2.6e6},
	{"pittsburgh", NorthAmerica, geo.Point{Lat: 40.44, Lon: -79.99}, 2.4e6},
	{"sacramento", NorthAmerica, geo.Point{Lat: 38.58, Lon: -121.49}, 2.4e6},
	{"las vegas", NorthAmerica, geo.Point{Lat: 36.17, Lon: -115.14}, 2.2e6},
	{"cincinnati", NorthAmerica, geo.Point{Lat: 39.10, Lon: -84.51}, 2.2e6},
	{"kansas city", NorthAmerica, geo.Point{Lat: 39.10, Lon: -94.58}, 2.2e6},
	{"columbus", NorthAmerica, geo.Point{Lat: 39.96, Lon: -83.00}, 2.1e6},
	{"indianapolis", NorthAmerica, geo.Point{Lat: 39.77, Lon: -86.16}, 2.1e6},
	{"cleveland", NorthAmerica, geo.Point{Lat: 41.50, Lon: -81.69}, 2.1e6},
	{"nashville", NorthAmerica, geo.Point{Lat: 36.16, Lon: -86.78}, 2.0e6},
	{"salt lake city", NorthAmerica, geo.Point{Lat: 40.76, Lon: -111.89}, 1.3e6},
	{"detroit", NorthAmerica, geo.Point{Lat: 42.33, Lon: -83.05}, 4.3e6},
	{"austin", NorthAmerica, geo.Point{Lat: 30.27, Lon: -97.74}, 2.3e6},
	{"new orleans", NorthAmerica, geo.Point{Lat: 29.95, Lon: -90.07}, 1.3e6},
	{"memphis", NorthAmerica, geo.Point{Lat: 35.15, Lon: -90.05}, 1.3e6},
	{"raleigh", NorthAmerica, geo.Point{Lat: 35.78, Lon: -78.64}, 1.4e6},
	{"oklahoma city", NorthAmerica, geo.Point{Lat: 35.47, Lon: -97.52}, 1.4e6},
	{"albuquerque", NorthAmerica, geo.Point{Lat: 35.08, Lon: -106.65}, 0.9e6},
	{"omaha", NorthAmerica, geo.Point{Lat: 41.26, Lon: -95.93}, 0.9e6},
	{"boise", NorthAmerica, geo.Point{Lat: 43.62, Lon: -116.21}, 0.7e6},
	{"toronto", NorthAmerica, geo.Point{Lat: 43.65, Lon: -79.38}, 6.2e6},
	{"montreal", NorthAmerica, geo.Point{Lat: 45.50, Lon: -73.57}, 4.2e6},
	{"vancouver", NorthAmerica, geo.Point{Lat: 49.28, Lon: -123.12}, 2.6e6},
	{"calgary", NorthAmerica, geo.Point{Lat: 51.05, Lon: -114.07}, 1.5e6},
	{"ottawa", NorthAmerica, geo.Point{Lat: 45.42, Lon: -75.70}, 1.4e6},
	{"mexico city", NorthAmerica, geo.Point{Lat: 19.43, Lon: -99.13}, 21.8e6},
	{"guadalajara", NorthAmerica, geo.Point{Lat: 20.66, Lon: -103.35}, 5.3e6},
	{"monterrey", NorthAmerica, geo.Point{Lat: 25.69, Lon: -100.32}, 5.3e6},

	// South America
	{"sao paulo", SouthAmerica, geo.Point{Lat: -23.55, Lon: -46.63}, 22.0e6},
	{"buenos aires", SouthAmerica, geo.Point{Lat: -34.60, Lon: -58.38}, 15.2e6},
	{"rio de janeiro", SouthAmerica, geo.Point{Lat: -22.91, Lon: -43.17}, 13.5e6},
	{"bogota", SouthAmerica, geo.Point{Lat: 4.71, Lon: -74.07}, 11.0e6},
	{"lima", SouthAmerica, geo.Point{Lat: -12.05, Lon: -77.04}, 10.7e6},
	{"santiago", SouthAmerica, geo.Point{Lat: -33.45, Lon: -70.67}, 6.8e6},
	{"caracas", SouthAmerica, geo.Point{Lat: 10.48, Lon: -66.90}, 2.9e6},
	{"quito", SouthAmerica, geo.Point{Lat: -0.18, Lon: -78.47}, 2.0e6},
	{"montevideo", SouthAmerica, geo.Point{Lat: -34.90, Lon: -56.16}, 1.8e6},
	{"brasilia", SouthAmerica, geo.Point{Lat: -15.79, Lon: -47.88}, 4.7e6},
	{"medellin", SouthAmerica, geo.Point{Lat: 6.24, Lon: -75.58}, 4.0e6},
	{"porto alegre", SouthAmerica, geo.Point{Lat: -30.03, Lon: -51.22}, 4.1e6},

	// Europe
	{"london", Europe, geo.Point{Lat: 51.51, Lon: -0.13}, 14.3e6},
	{"paris", Europe, geo.Point{Lat: 48.86, Lon: 2.35}, 13.0e6},
	{"madrid", Europe, geo.Point{Lat: 40.42, Lon: -3.70}, 6.7e6},
	{"barcelona", Europe, geo.Point{Lat: 41.39, Lon: 2.17}, 5.6e6},
	{"berlin", Europe, geo.Point{Lat: 52.52, Lon: 13.41}, 6.1e6},
	{"rome", Europe, geo.Point{Lat: 41.90, Lon: 12.50}, 4.3e6},
	{"milan", Europe, geo.Point{Lat: 45.46, Lon: 9.19}, 4.9e6},
	{"amsterdam", Europe, geo.Point{Lat: 52.37, Lon: 4.89}, 2.5e6},
	{"frankfurt", Europe, geo.Point{Lat: 50.11, Lon: 8.68}, 2.7e6},
	{"munich", Europe, geo.Point{Lat: 48.14, Lon: 11.58}, 2.9e6},
	{"hamburg", Europe, geo.Point{Lat: 53.55, Lon: 9.99}, 3.2e6},
	{"brussels", Europe, geo.Point{Lat: 50.85, Lon: 4.35}, 2.1e6},
	{"vienna", Europe, geo.Point{Lat: 48.21, Lon: 16.37}, 2.9e6},
	{"zurich", Europe, geo.Point{Lat: 47.38, Lon: 8.54}, 1.4e6},
	{"geneva", Europe, geo.Point{Lat: 46.20, Lon: 6.14}, 0.6e6},
	{"stockholm", Europe, geo.Point{Lat: 59.33, Lon: 18.07}, 2.4e6},
	{"copenhagen", Europe, geo.Point{Lat: 55.68, Lon: 12.57}, 2.1e6},
	{"oslo", Europe, geo.Point{Lat: 59.91, Lon: 10.75}, 1.6e6},
	{"helsinki", Europe, geo.Point{Lat: 60.17, Lon: 24.94}, 1.5e6},
	{"dublin", Europe, geo.Point{Lat: 53.35, Lon: -6.26}, 2.0e6},
	{"manchester", Europe, geo.Point{Lat: 53.48, Lon: -2.24}, 2.8e6},
	{"warsaw", Europe, geo.Point{Lat: 52.23, Lon: 21.01}, 3.1e6},
	{"prague", Europe, geo.Point{Lat: 50.08, Lon: 14.44}, 2.7e6},
	{"budapest", Europe, geo.Point{Lat: 47.50, Lon: 19.04}, 3.0e6},
	{"lisbon", Europe, geo.Point{Lat: 38.72, Lon: -9.14}, 2.9e6},
	{"athens", Europe, geo.Point{Lat: 37.98, Lon: 23.73}, 3.6e6},
	{"istanbul", Europe, geo.Point{Lat: 41.01, Lon: 28.98}, 15.8e6},
	{"moscow", Europe, geo.Point{Lat: 55.76, Lon: 37.62}, 12.6e6},
	{"st petersburg", Europe, geo.Point{Lat: 59.93, Lon: 30.34}, 5.4e6},
	{"kyiv", Europe, geo.Point{Lat: 50.45, Lon: 30.52}, 3.0e6},
	{"bucharest", Europe, geo.Point{Lat: 44.43, Lon: 26.10}, 2.3e6},
	{"lyon", Europe, geo.Point{Lat: 45.76, Lon: 4.84}, 2.3e6},
	{"marseille", Europe, geo.Point{Lat: 43.30, Lon: 5.37}, 1.9e6},
	{"turin", Europe, geo.Point{Lat: 45.07, Lon: 7.69}, 1.8e6},
	{"dusseldorf", Europe, geo.Point{Lat: 51.23, Lon: 6.77}, 1.6e6},
	{"stuttgart", Europe, geo.Point{Lat: 48.78, Lon: 9.18}, 2.8e6},

	// Asia
	{"tokyo", Asia, geo.Point{Lat: 35.68, Lon: 139.69}, 37.3e6},
	{"delhi", Asia, geo.Point{Lat: 28.61, Lon: 77.21}, 32.0e6},
	{"shanghai", Asia, geo.Point{Lat: 31.23, Lon: 121.47}, 28.5e6},
	{"beijing", Asia, geo.Point{Lat: 39.90, Lon: 116.41}, 21.3e6},
	{"mumbai", Asia, geo.Point{Lat: 19.08, Lon: 72.88}, 21.0e6},
	{"osaka", Asia, geo.Point{Lat: 34.69, Lon: 135.50}, 19.0e6},
	{"dhaka", Asia, geo.Point{Lat: 23.81, Lon: 90.41}, 22.5e6},
	{"karachi", Asia, geo.Point{Lat: 24.86, Lon: 67.01}, 16.8e6},
	{"guangzhou", Asia, geo.Point{Lat: 23.13, Lon: 113.26}, 13.9e6},
	{"shenzhen", Asia, geo.Point{Lat: 22.54, Lon: 114.06}, 12.9e6},
	{"jakarta", Asia, geo.Point{Lat: -6.21, Lon: 106.85}, 11.0e6},
	{"seoul", Asia, geo.Point{Lat: 37.57, Lon: 126.98}, 9.9e6},
	{"bangkok", Asia, geo.Point{Lat: 13.76, Lon: 100.50}, 10.9e6},
	{"hong kong", Asia, geo.Point{Lat: 22.32, Lon: 114.17}, 7.5e6},
	{"singapore", Asia, geo.Point{Lat: 1.35, Lon: 103.82}, 6.0e6},
	{"kuala lumpur", Asia, geo.Point{Lat: 3.14, Lon: 101.69}, 8.4e6},
	{"manila", Asia, geo.Point{Lat: 14.60, Lon: 120.98}, 14.4e6},
	{"taipei", Asia, geo.Point{Lat: 25.03, Lon: 121.57}, 7.0e6},
	{"bangalore", Asia, geo.Point{Lat: 12.97, Lon: 77.59}, 13.2e6},
	{"chennai", Asia, geo.Point{Lat: 13.08, Lon: 80.27}, 11.2e6},
	{"hyderabad", Asia, geo.Point{Lat: 17.39, Lon: 78.49}, 10.3e6},
	{"ho chi minh city", Asia, geo.Point{Lat: 10.82, Lon: 106.63}, 9.3e6},
	{"hanoi", Asia, geo.Point{Lat: 21.03, Lon: 105.85}, 5.1e6},
	{"tel aviv", Asia, geo.Point{Lat: 32.09, Lon: 34.78}, 4.4e6},
	{"dubai", Asia, geo.Point{Lat: 25.20, Lon: 55.27}, 3.6e6},
	{"riyadh", Asia, geo.Point{Lat: 24.71, Lon: 46.68}, 7.7e6},
	{"tehran", Asia, geo.Point{Lat: 35.69, Lon: 51.39}, 9.5e6},
	{"nagoya", Asia, geo.Point{Lat: 35.18, Lon: 136.91}, 9.5e6},
	{"fukuoka", Asia, geo.Point{Lat: 33.59, Lon: 130.40}, 5.5e6},
	{"busan", Asia, geo.Point{Lat: 35.18, Lon: 129.08}, 3.4e6},
	{"chengdu", Asia, geo.Point{Lat: 30.57, Lon: 104.07}, 16.9e6},
	{"wuhan", Asia, geo.Point{Lat: 30.59, Lon: 114.31}, 11.1e6},
	{"xian", Asia, geo.Point{Lat: 34.34, Lon: 108.94}, 12.9e6},
	{"almaty", Asia, geo.Point{Lat: 43.26, Lon: 76.93}, 2.0e6},

	// Oceania
	{"sydney", Oceania, geo.Point{Lat: -33.87, Lon: 151.21}, 5.4e6},
	{"melbourne", Oceania, geo.Point{Lat: -37.81, Lon: 144.96}, 5.2e6},
	{"brisbane", Oceania, geo.Point{Lat: -27.47, Lon: 153.03}, 2.6e6},
	{"perth", Oceania, geo.Point{Lat: -31.95, Lon: 115.86}, 2.1e6},
	{"adelaide", Oceania, geo.Point{Lat: -34.93, Lon: 138.60}, 1.4e6},
	{"auckland", Oceania, geo.Point{Lat: -36.85, Lon: 174.76}, 1.7e6},
	{"wellington", Oceania, geo.Point{Lat: -41.29, Lon: 174.78}, 0.4e6},

	// Africa
	{"cairo", Africa, geo.Point{Lat: 30.04, Lon: 31.24}, 21.8e6},
	{"lagos", Africa, geo.Point{Lat: 6.52, Lon: 3.38}, 15.4e6},
	{"kinshasa", Africa, geo.Point{Lat: -4.44, Lon: 15.27}, 15.6e6},
	{"johannesburg", Africa, geo.Point{Lat: -26.20, Lon: 28.05}, 10.0e6},
	{"nairobi", Africa, geo.Point{Lat: -1.29, Lon: 36.82}, 5.1e6},
	{"cape town", Africa, geo.Point{Lat: -33.92, Lon: 18.42}, 4.7e6},
	{"casablanca", Africa, geo.Point{Lat: 33.57, Lon: -7.59}, 3.7e6},
	{"accra", Africa, geo.Point{Lat: 5.60, Lon: -0.19}, 2.6e6},
	{"algiers", Africa, geo.Point{Lat: 36.75, Lon: 3.06}, 2.9e6},
	{"addis ababa", Africa, geo.Point{Lat: 9.01, Lon: 38.76}, 5.2e6},
	{"tunis", Africa, geo.Point{Lat: 36.81, Lon: 10.18}, 2.4e6},
	{"dakar", Africa, geo.Point{Lat: 14.72, Lon: -17.47}, 3.1e6},
}

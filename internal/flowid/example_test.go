package flowid_test

import (
	"fmt"

	"repro/internal/flowid"
)

// Example tracks a flow through the §6 lifecycle: it must stay above the
// size threshold for the stability window before the upstream announces
// it for negotiation, and it expires after going idle.
func Example() {
	reg := flowid.NewRegistry(1.0 /*threshold*/, 2 /*stable ticks*/, 3 /*idle timeout*/)
	sig := flowid.Signature{
		Src:     flowid.Prefix{Addr: 0x0A000000, Bits: 16},
		Dst:     flowid.Prefix{Addr: 0x0B010000, Bits: 16},
		Ingress: reg.NewNonce(),
	}
	for tick := 0; tick < 4; tick++ {
		if reg.Observe(sig, 2.5, tick) {
			fmt.Printf("tick %d: flow %v announced for negotiation\n", tick, sig.Src)
		}
	}
	expired := reg.Expire(10)
	fmt.Printf("after idling: %d flow(s) timed out\n", len(expired))
	// Output:
	// tick 2: flow 10.0.0.0/16 announced for negotiation
	// after idling: 1 flow(s) timed out
}

// ExampleTopFraction shows the scalability selection: the biggest flows
// covering a target share of the traffic.
func ExampleTopFraction() {
	flows := []flowid.FlowInfo{
		{Size: 60}, {Size: 25}, {Size: 10}, {Size: 5},
	}
	top := flowid.TopFraction(flows, 0.8)
	fmt.Printf("flows needed for 80%% of traffic: %d of %d\n", len(top), len(flows))
	// Output:
	// flows needed for 80% of traffic: 2 of 4
}

package flowid

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/topology"
)

func TestPrefixString(t *testing.T) {
	p := Prefix{Addr: 0x0A010000, Bits: 16}
	if got := p.String(); got != "10.1.0.0/16" {
		t.Errorf("String = %q", got)
	}
}

func TestPrefixValid(t *testing.T) {
	valid := []Prefix{
		{0, 0}, {0x0A000000, 8}, {0xC0A80100, 24}, {0xFFFFFFFF, 32},
	}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Prefix{
		{0x0A000001, 8},  // host bits set
		{0x0A000000, 33}, // bad length
		{0x0A000000, -1},
	}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: 0x0A010000, Bits: 16}
	if !p.Contains(0x0A0100FF) || !p.Contains(0x0A01FFFF) {
		t.Error("Contains misses in-prefix addresses")
	}
	if p.Contains(0x0A020000) {
		t.Error("Contains accepts out-of-prefix address")
	}
	// /0 contains everything.
	if !(Prefix{0, 0}).Contains(0xDEADBEEF) {
		t.Error("/0 should contain everything")
	}
}

func TestContainsPrefix(t *testing.T) {
	p16 := Prefix{Addr: 0x0A010000, Bits: 16}
	p24 := Prefix{Addr: 0x0A010100, Bits: 24}
	if !p16.ContainsPrefix(p24) {
		t.Error("/16 should contain its /24")
	}
	if p24.ContainsPrefix(p16) {
		t.Error("/24 must not contain its /16")
	}
	if !p16.ContainsPrefix(p16) {
		t.Error("prefix should contain itself")
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	f := func(addr uint32, bits uint8) bool {
		b := int(bits % 33)
		p := Prefix{Addr: addr, Bits: b}
		p.Addr &= p.mask() // canonicalize
		if !p.Valid() {
			return false
		}
		// The network address itself is always contained.
		return p.Contains(p.Addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testISP(n int) *topology.ISP {
	isp := &topology.ISP{Name: "t", ASN: 7042}
	for i := 0; i < n; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i, City: string(rune('a' + i)), Loc: geo.Point{Lat: float64(i)}})
	}
	for i := 0; i+1 < n; i++ {
		isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: 1, LengthKm: 1})
	}
	return isp
}

func TestPlan(t *testing.T) {
	isp := testISP(4)
	plan, err := NewPlan(isp)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ByPoP) != 4 {
		t.Fatalf("plan has %d prefixes", len(plan.ByPoP))
	}
	seen := map[Prefix]bool{}
	for i, p := range plan.ByPoP {
		if !p.Valid() || p.Bits != 16 {
			t.Errorf("PoP %d prefix %v invalid", i, p)
		}
		if seen[p] {
			t.Errorf("duplicate prefix %v", p)
		}
		seen[p] = true
		// A /24 inside the PoP's /16 resolves back to the PoP.
		sub := Prefix{Addr: p.Addr | 0x100, Bits: 24}
		pop, ok := plan.PoPFor(sub)
		if !ok || pop != i {
			t.Errorf("PoPFor(%v) = %d,%v want %d", sub, pop, ok, i)
		}
	}
	if _, ok := plan.PoPFor(Prefix{Addr: 0x01000000, Bits: 8}); ok {
		t.Error("foreign prefix resolved to a PoP")
	}
}

func TestPlanTooManyPoPs(t *testing.T) {
	isp := &topology.ISP{Name: "big", ASN: 1}
	for i := 0; i < 300; i++ {
		isp.PoPs = append(isp.PoPs, topology.PoP{ID: i})
	}
	if _, err := NewPlan(isp); err == nil {
		t.Error("oversized ISP accepted")
	}
}

func sig(i uint64) Signature {
	return Signature{
		Src:     Prefix{Addr: 0x0A000000, Bits: 16},
		Dst:     Prefix{Addr: 0x0B000000, Bits: 16},
		Ingress: i,
	}
}

func TestRegistryPromotion(t *testing.T) {
	r := NewRegistry(1.0, 3, 10)
	s := sig(r.NewNonce())
	// Below threshold: never promoted.
	for tick := 0; tick < 5; tick++ {
		if r.Observe(s, 0.5, tick) {
			t.Fatal("promoted below threshold")
		}
	}
	// Above threshold but not yet stable.
	if r.Observe(s, 2, 5) || r.Observe(s, 2, 6) || r.Observe(s, 2, 7) {
		t.Fatal("promoted before StableTicks elapsed")
	}
	if !r.Observe(s, 2, 8) {
		t.Fatal("not promoted after staying above threshold")
	}
	if r.Observe(s, 2, 9) {
		t.Fatal("promoted twice")
	}
	neg := r.Negotiable()
	if len(neg) != 1 || neg[0].Sig != s {
		t.Fatalf("Negotiable = %+v", neg)
	}
}

func TestRegistryThresholdReset(t *testing.T) {
	r := NewRegistry(1.0, 3, 10)
	s := sig(r.NewNonce())
	r.Observe(s, 2, 0)
	r.Observe(s, 2, 1)
	r.Observe(s, 0.1, 2) // dips below: stability clock resets
	r.Observe(s, 2, 3)
	r.Observe(s, 2, 4)
	if r.Observe(s, 2, 5) {
		t.Fatal("promoted despite reset clock")
	}
	if !r.Observe(s, 2, 6) {
		t.Fatal("not promoted after full stable window")
	}
}

func TestRegistryExpiry(t *testing.T) {
	r := NewRegistry(1.0, 0, 5)
	a, b := sig(r.NewNonce()), sig(r.NewNonce())
	r.Observe(a, 2, 0)
	r.Observe(b, 2, 0)
	r.Observe(b, 2, 7)
	expired := r.Expire(8)
	if len(expired) != 1 || expired[0] != a {
		t.Fatalf("Expire = %+v", expired)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestNoncesDistinct(t *testing.T) {
	r := NewRegistry(1, 0, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		n := r.NewNonce()
		if seen[n] {
			t.Fatal("nonce repeated")
		}
		seen[n] = true
	}
}

func TestNegotiableSorted(t *testing.T) {
	r := NewRegistry(1, 0, 100)
	sizes := []float64{3, 9, 1.5, 7}
	for i, s := range sizes {
		r.Observe(sig(uint64(i+1)), s, 0)
	}
	neg := r.Negotiable()
	if len(neg) != 4 {
		t.Fatalf("got %d negotiable", len(neg))
	}
	for i := 1; i < len(neg); i++ {
		if neg[i].Size > neg[i-1].Size {
			t.Fatal("not sorted by size desc")
		}
	}
}

func TestTopFraction(t *testing.T) {
	flows := []FlowInfo{
		{Sig: sig(1), Size: 50},
		{Sig: sig(2), Size: 30},
		{Sig: sig(3), Size: 15},
		{Sig: sig(4), Size: 5},
	}
	top := TopFraction(flows, 0.8)
	if len(top) != 2 { // 50+30 = 80% of 100
		t.Fatalf("TopFraction(0.8) = %d flows, want 2", len(top))
	}
	if top[0].Size != 50 || top[1].Size != 30 {
		t.Errorf("wrong flows selected: %+v", top)
	}
	if got := TopFraction(flows, 1.0); len(got) != 4 {
		t.Errorf("TopFraction(1.0) = %d flows", len(got))
	}
	if got := TopFraction(nil, 0.5); got != nil {
		t.Errorf("TopFraction(empty) = %v", got)
	}
	// Zero-size flows: no selection possible.
	if got := TopFraction([]FlowInfo{{Size: 0}}, 0.5); got != nil {
		t.Errorf("TopFraction(zero sizes) = %v", got)
	}
}

func TestTopFractionProperty(t *testing.T) {
	f := func(raw []float64, fracRaw float64) bool {
		flows := make([]FlowInfo, 0, len(raw))
		var total float64
		for i, s := range raw {
			if s < 0 || s != s || s > 1e12 {
				s = 1
			}
			flows = append(flows, FlowInfo{Sig: sig(uint64(i)), Size: s})
			total += s
		}
		frac := math.Abs(math.Mod(fracRaw, 1))
		if math.IsNaN(frac) {
			frac = 0.5
		}
		top := TopFraction(flows, frac)
		var acc float64
		for _, f := range top {
			acc += f.Size
		}
		// Selected set covers at least the requested fraction.
		return total == 0 || acc >= frac*total-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRegistryExportRestore: Restore(Export()) reconstructs the
// registry exactly — same negotiable set, same expiry behavior, same
// nonce position — and Export is deterministic despite map iteration.
func TestRegistryExportRestore(t *testing.T) {
	r := NewRegistry(1.0, 1, 2)
	sigA := Signature{Src: Prefix{Addr: 0x0A000000, Bits: 16}, Dst: Prefix{Addr: 0x0B000000, Bits: 16}, Ingress: r.NewNonce()}
	sigB := Signature{Src: Prefix{Addr: 0x0A010000, Bits: 16}, Dst: Prefix{Addr: 0x0B010000, Bits: 16}, Ingress: r.NewNonce()}
	for tick := 0; tick < 3; tick++ {
		r.Observe(sigA, 2.0, tick)
	}
	r.Observe(sigB, 0.5, 2) // below threshold, tracked but not negotiable

	flows, nonce := r.Export()
	if len(flows) != 2 || nonce != 2 {
		t.Fatalf("exported %d flows nonce %d, want 2 flows nonce 2", len(flows), nonce)
	}
	if f2, n2 := r.Export(); !reflect.DeepEqual(flows, f2) || n2 != nonce {
		t.Fatal("Export is not deterministic")
	}

	fresh := NewRegistry(1.0, 1, 2)
	fresh.Restore(flows, nonce)
	if fresh.Len() != r.Len() {
		t.Fatalf("restored registry tracks %d flows, want %d", fresh.Len(), r.Len())
	}
	if got, want := fresh.Negotiable(), r.Negotiable(); !reflect.DeepEqual(got, want) {
		t.Fatalf("negotiable set after restore = %v, want %v", got, want)
	}
	if fresh.NewNonce() != r.NewNonce() {
		t.Fatal("nonce position diverged after restore")
	}
	// Lifecycle continues identically: the idle flow expires at the
	// same tick in both registries.
	if got, want := fresh.Expire(5), r.Expire(5); !reflect.DeepEqual(got, want) {
		t.Fatalf("expiry after restore = %v, want %v", got, want)
	}
}

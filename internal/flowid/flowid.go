// Package flowid implements the flow-identification machinery of the
// paper's §6 ("Identifying flows for negotiation"): ISPs partition the
// traffic they exchange into flows identified by routing prefixes, the
// upstream signals new flows with an opaque ingress identifier and an
// estimated size, inactive flows time out, and — for scalability — only
// flows that stay above a size threshold long enough are negotiated.
//
// The types here are a control-plane model: prefixes are IPv4 CIDR
// blocks assigned per PoP (as an ISP would announce them), and the
// registry tracks flow lifecycle the way a NetFlow-fed negotiation agent
// would.
package flowid

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Addr uint32 // network address, host bits zero
	Bits int    // prefix length
}

// String renders the prefix in dotted CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		byte(p.Addr>>24), byte(p.Addr>>16), byte(p.Addr>>8), byte(p.Addr), p.Bits)
}

// Valid reports whether the prefix length is legal and the host bits are
// zero.
func (p Prefix) Valid() bool {
	if p.Bits < 0 || p.Bits > 32 {
		return false
	}
	return p.Addr&^p.mask() == 0
}

func (p Prefix) mask() uint32 {
	if p.Bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&p.mask() == p.Addr
}

// ContainsPrefix reports whether q is a (non-strict) subprefix of p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Bits >= p.Bits && p.Contains(q.Addr)
}

// Plan assigns prefixes to an ISP's PoPs: each PoP gets one /16 out of a
// per-ISP /8-like block derived from the ASN. This mirrors how the two
// ISPs of a pair would "agree on a common set of prefixes, for instance
// the union of the prefixes they announce to each other through BGP".
type Plan struct {
	ISP      *topology.ISP
	ByPoP    []Prefix
	byPrefix map[Prefix]int
}

// NewPlan builds the prefix plan for an ISP. It fails if the ISP has
// more than 256 PoPs (one /16 each inside a /8).
func NewPlan(isp *topology.ISP) (*Plan, error) {
	if len(isp.PoPs) > 256 {
		return nil, fmt.Errorf("flowid: ISP %s has %d PoPs; plan supports at most 256", isp.Name, len(isp.PoPs))
	}
	base := uint32(10+isp.ASN%200) << 24 // deterministic per-ISP /8
	p := &Plan{ISP: isp, byPrefix: make(map[Prefix]int)}
	for i := range isp.PoPs {
		pre := Prefix{Addr: base | uint32(i)<<16, Bits: 16}
		p.ByPoP = append(p.ByPoP, pre)
		p.byPrefix[pre] = i
	}
	return p, nil
}

// PoPFor returns the PoP announcing the most specific plan prefix
// containing the given prefix.
func (p *Plan) PoPFor(q Prefix) (int, bool) {
	for pre, pop := range p.byPrefix {
		if pre.ContainsPrefix(q) {
			return pop, true
		}
	}
	return -1, false
}

// Signature uniquely identifies a negotiable flow (paper §6): the most
// specific source and destination prefixes of its packets plus an opaque
// identifier for its ingress into the upstream. The upstream "chooses
// different identifiers for different flows that enter at the same
// place" to prevent information leakage, so Ingress is a per-flow nonce,
// not a PoP number.
type Signature struct {
	Src     Prefix
	Dst     Prefix
	Ingress uint64
}

// String renders the signature.
func (s Signature) String() string {
	return fmt.Sprintf("%v->%v@%x", s.Src, s.Dst, s.Ingress)
}

// Registry tracks active flows the way the upstream's negotiation agent
// would from NetFlow-style measurements. Time is modeled as integer
// ticks supplied by the caller.
type Registry struct {
	// SizeThreshold is the minimum observed size for a flow to become
	// negotiable ("to improve scalability ISPs can decide to negotiate
	// over only the set of long-lived and high-bandwidth flows").
	SizeThreshold float64
	// StableTicks is how long a flow must stay above the threshold
	// before it is announced ("the upstream will trigger a new flow only
	// if its size stays above a threshold for a certain period").
	StableTicks int
	// IdleTimeout is the number of ticks without traffic after which a
	// flow is expired.
	IdleTimeout int

	flows     map[Signature]*flowState
	nextNonce uint64
}

type flowState struct {
	size        float64
	lastSeen    int
	aboveSince  int
	everStable  bool
	negotiable  bool
	announcedAt int
}

// FlowInfo is the externally visible state of a tracked flow.
type FlowInfo struct {
	Sig        Signature
	Size       float64
	Negotiable bool
}

// NewRegistry returns a registry with the given policy knobs.
func NewRegistry(sizeThreshold float64, stableTicks, idleTimeout int) *Registry {
	return &Registry{
		SizeThreshold: sizeThreshold,
		StableTicks:   stableTicks,
		IdleTimeout:   idleTimeout,
		flows:         make(map[Signature]*flowState),
	}
}

// NewNonce returns a fresh opaque ingress identifier.
func (r *Registry) NewNonce() uint64 {
	r.nextNonce++
	return r.nextNonce
}

// Observe records traffic for a signature at the given tick and returns
// true when the observation promotes the flow to negotiable (the moment
// the upstream would signal "the arrival of a new flow" to the
// downstream).
func (r *Registry) Observe(sig Signature, size float64, tick int) bool {
	st, ok := r.flows[sig]
	if !ok {
		st = &flowState{aboveSince: -1}
		r.flows[sig] = st
	}
	st.size = size
	st.lastSeen = tick
	if size >= r.SizeThreshold {
		if st.aboveSince < 0 {
			st.aboveSince = tick
		}
		if !st.negotiable && tick-st.aboveSince >= r.StableTicks {
			st.negotiable = true
			st.everStable = true
			st.announcedAt = tick
			return true
		}
	} else {
		st.aboveSince = -1
	}
	return false
}

// Expire removes flows idle for longer than IdleTimeout and returns
// their signatures ("flows that are inactive for a certain period are
// timed out").
func (r *Registry) Expire(tick int) []Signature {
	var expired []Signature
	for sig, st := range r.flows {
		if tick-st.lastSeen > r.IdleTimeout {
			expired = append(expired, sig)
			delete(r.flows, sig)
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		a, b := expired[i], expired[j]
		if a.Src.Addr != b.Src.Addr {
			return a.Src.Addr < b.Src.Addr
		}
		if a.Dst.Addr != b.Dst.Addr {
			return a.Dst.Addr < b.Dst.Addr
		}
		return a.Ingress < b.Ingress
	})
	return expired
}

// FlowRecord is the complete lifecycle state of one tracked flow — the
// registry's per-flow mutable state, exported for snapshots. Together
// with the nonce counter (see Export) it is everything a registry
// accumulates, so Restore(Export()) reconstructs the registry exactly.
type FlowRecord struct {
	Sig         Signature
	Size        float64
	LastSeen    int
	AboveSince  int
	EverStable  bool
	Negotiable  bool
	AnnouncedAt int
}

// sigLess orders signatures canonically (src, dst, ingress).
func sigLess(a, b Signature) bool {
	if a.Src.Addr != b.Src.Addr {
		return a.Src.Addr < b.Src.Addr
	}
	if a.Src.Bits != b.Src.Bits {
		return a.Src.Bits < b.Src.Bits
	}
	if a.Dst.Addr != b.Dst.Addr {
		return a.Dst.Addr < b.Dst.Addr
	}
	if a.Dst.Bits != b.Dst.Bits {
		return a.Dst.Bits < b.Dst.Bits
	}
	return a.Ingress < b.Ingress
}

// Export returns every tracked flow in canonical signature order plus
// the nonce counter — the registry's complete mutable state (the policy
// knobs are exported fields already). Deterministic: the same registry
// always exports the same slice, whatever map iteration order did.
func (r *Registry) Export() ([]FlowRecord, uint64) {
	out := make([]FlowRecord, 0, len(r.flows))
	for sig, st := range r.flows {
		out = append(out, FlowRecord{
			Sig:         sig,
			Size:        st.size,
			LastSeen:    st.lastSeen,
			AboveSince:  st.aboveSince,
			EverStable:  st.everStable,
			Negotiable:  st.negotiable,
			AnnouncedAt: st.announcedAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return sigLess(out[i].Sig, out[j].Sig) })
	return out, r.nextNonce
}

// Restore replaces the registry's tracked flows and nonce counter with
// the given exported state: after Restore(Export()) the registry is
// observationally identical to the original (snapshot recovery's
// requirement). Duplicate signatures keep the last record.
func (r *Registry) Restore(flows []FlowRecord, nonce uint64) {
	r.flows = make(map[Signature]*flowState, len(flows))
	for _, f := range flows {
		r.flows[f.Sig] = &flowState{
			size:        f.Size,
			lastSeen:    f.LastSeen,
			aboveSince:  f.AboveSince,
			everStable:  f.EverStable,
			negotiable:  f.Negotiable,
			announcedAt: f.AnnouncedAt,
		}
	}
	r.nextNonce = nonce
}

// Negotiable lists the currently negotiable flows, largest first.
func (r *Registry) Negotiable() []FlowInfo {
	var out []FlowInfo
	for sig, st := range r.flows {
		if st.negotiable {
			out = append(out, FlowInfo{Sig: sig, Size: st.size, Negotiable: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size > out[j].Size
		}
		return out[i].Sig.Ingress < out[j].Sig.Ingress
	})
	return out
}

// Len returns the number of tracked flows.
func (r *Registry) Len() int { return len(r.flows) }

// TopFraction returns the smallest set of flows (largest first) whose
// cumulative size reaches the given fraction of the total — the paper's
// observation that "optimizing the small fraction of high-bandwidth
// flows can optimize most of the traffic".
func TopFraction(flows []FlowInfo, fraction float64) []FlowInfo {
	sorted := append([]FlowInfo(nil), flows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].Sig.Ingress < sorted[j].Sig.Ingress
	})
	var total float64
	for _, f := range sorted {
		total += f.Size
	}
	if total == 0 {
		return nil
	}
	var acc float64
	for i, f := range sorted {
		acc += f.Size
		if acc >= fraction*total {
			return sorted[:i+1]
		}
	}
	return sorted
}

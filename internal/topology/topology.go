// Package topology models PoP-level ISP networks: points of presence with
// geographic coordinates, weighted intra-ISP links, and interconnections
// between pairs of ISPs.
//
// This substrate substitutes for the measured Rocketfuel dataset used by
// the paper (65 PoP-level ISP topologies with inferred link weights). The
// types here are produced by the generator in internal/gen and consumed by
// routing, traffic, and negotiation code.
package topology

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// PoP is a point of presence: an ISP's presence in one city.
type PoP struct {
	ID         int       // index of the PoP within its ISP; equals its slice position
	City       string    // city name, unique within an ISP
	Loc        geo.Point // geographic coordinates of the city
	Population float64   // metro population, the gravity-model weight (paper §5.2)
}

// Link is an undirected intra-ISP link between two PoPs.
type Link struct {
	A, B     int     // PoP IDs, A < B by convention
	Weight   float64 // routing weight (OSPF-like); shortest paths minimize the sum of weights
	LengthKm float64 // geographic length, used by the distance metric (paper §5.1)
}

// Canonical returns the link with endpoints ordered A < B.
func (l Link) Canonical() Link {
	if l.A > l.B {
		l.A, l.B = l.B, l.A
	}
	return l
}

// ISP is a single autonomous system at PoP granularity.
type ISP struct {
	Name  string
	ASN   int
	PoPs  []PoP
	Links []Link
}

// NumPoPs returns the number of PoPs.
func (n *ISP) NumPoPs() int { return len(n.PoPs) }

// PoPByCity returns the PoP located in the given city, if any.
func (n *ISP) PoPByCity(city string) (PoP, bool) {
	for _, p := range n.PoPs {
		if p.City == city {
			return p, true
		}
	}
	return PoP{}, false
}

// Cities returns the sorted list of cities where the ISP has a PoP.
func (n *ISP) Cities() []string {
	out := make([]string, len(n.PoPs))
	for i, p := range n.PoPs {
		out[i] = p.City
	}
	sort.Strings(out)
	return out
}

// Adjacency returns, for each PoP, the list of (neighbor, link index)
// pairs. The returned structure is freshly allocated.
func (n *ISP) Adjacency() [][]Edge {
	adj := make([][]Edge, len(n.PoPs))
	for i, l := range n.Links {
		adj[l.A] = append(adj[l.A], Edge{To: l.B, Link: i})
		adj[l.B] = append(adj[l.B], Edge{To: l.A, Link: i})
	}
	return adj
}

// Edge is one direction of a link in an adjacency list.
type Edge struct {
	To   int // neighbor PoP ID
	Link int // index into ISP.Links
}

// Validate checks structural invariants: PoP IDs equal their positions,
// cities are unique, coordinates are valid, link endpoints are in range
// and canonical, there are no self-loops or duplicate links, weights and
// lengths are non-negative, and the graph is connected (for ISPs with
// more than one PoP).
func (n *ISP) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("topology: ISP has empty name")
	}
	if len(n.PoPs) == 0 {
		return fmt.Errorf("topology: ISP %s has no PoPs", n.Name)
	}
	seenCity := make(map[string]bool, len(n.PoPs))
	for i, p := range n.PoPs {
		if p.ID != i {
			return fmt.Errorf("topology: ISP %s PoP at index %d has ID %d", n.Name, i, p.ID)
		}
		if p.City == "" {
			return fmt.Errorf("topology: ISP %s PoP %d has empty city", n.Name, i)
		}
		if seenCity[p.City] {
			return fmt.Errorf("topology: ISP %s has duplicate city %q", n.Name, p.City)
		}
		seenCity[p.City] = true
		if !p.Loc.Valid() {
			return fmt.Errorf("topology: ISP %s PoP %s has invalid location %v", n.Name, p.City, p.Loc)
		}
		if p.Population < 0 {
			return fmt.Errorf("topology: ISP %s PoP %s has negative population", n.Name, p.City)
		}
	}
	seenLink := make(map[[2]int]bool, len(n.Links))
	for i, l := range n.Links {
		if l.A < 0 || l.A >= len(n.PoPs) || l.B < 0 || l.B >= len(n.PoPs) {
			return fmt.Errorf("topology: ISP %s link %d endpoints out of range", n.Name, i)
		}
		if l.A == l.B {
			return fmt.Errorf("topology: ISP %s link %d is a self-loop", n.Name, i)
		}
		if l.A > l.B {
			return fmt.Errorf("topology: ISP %s link %d not canonical (A=%d > B=%d)", n.Name, i, l.A, l.B)
		}
		key := [2]int{l.A, l.B}
		if seenLink[key] {
			return fmt.Errorf("topology: ISP %s duplicate link %d-%d", n.Name, l.A, l.B)
		}
		seenLink[key] = true
		if l.Weight < 0 || l.LengthKm < 0 {
			return fmt.Errorf("topology: ISP %s link %d has negative weight or length", n.Name, i)
		}
	}
	if !n.Connected() {
		return fmt.Errorf("topology: ISP %s is not connected", n.Name)
	}
	return nil
}

// Connected reports whether every PoP is reachable from PoP 0.
func (n *ISP) Connected() bool {
	if len(n.PoPs) <= 1 {
		return true
	}
	adj := n.Adjacency()
	seen := make([]bool, len(n.PoPs))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(n.PoPs)
}

// MeshDensityThreshold is the link-density threshold above which a
// topology is considered a logical mesh. The paper excludes eight
// Rocketfuel ISPs whose measured topologies are logical meshes, because
// geographic distance along a mesh edge does not reflect the true
// underlying path.
const MeshDensityThreshold = 0.8

// IsMesh reports whether the topology is (close to) a full mesh: the
// number of links exceeds MeshDensityThreshold times n*(n-1)/2.
func (n *ISP) IsMesh() bool {
	np := len(n.PoPs)
	if np < 3 {
		return false
	}
	full := np * (np - 1) / 2
	return float64(len(n.Links)) > MeshDensityThreshold*float64(full)
}

// TotalLinkLengthKm returns the sum of geographic lengths of all links.
func (n *ISP) TotalLinkLengthKm() float64 {
	var sum float64
	for _, l := range n.Links {
		sum += l.LengthKm
	}
	return sum
}

// Clone returns a deep copy of the ISP.
func (n *ISP) Clone() *ISP {
	c := &ISP{Name: n.Name, ASN: n.ASN}
	c.PoPs = append([]PoP(nil), n.PoPs...)
	c.Links = append([]Link(nil), n.Links...)
	return c
}

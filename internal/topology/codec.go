package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// The .topo text format is a line-oriented serialization of one or more
// ISP topologies, analogous to the Rocketfuel file formats the paper's
// dataset ships in:
//
//	isp <name> <asn>
//	pop <id> <city> <lat> <lon> <population>
//	link <a> <b> <weight> <lengthKm>
//	end
//
// Blank lines and lines starting with '#' are ignored. City names use
// underscores in place of spaces.

// Write serializes the ISPs to w in .topo format.
func Write(w io.Writer, isps []*ISP) error {
	bw := bufio.NewWriter(w)
	for _, n := range isps {
		fmt.Fprintf(bw, "isp %s %d\n", escapeCity(n.Name), n.ASN)
		for _, p := range n.PoPs {
			fmt.Fprintf(bw, "pop %d %s %.6f %.6f %.0f\n",
				p.ID, escapeCity(p.City), p.Loc.Lat, p.Loc.Lon, p.Population)
		}
		for _, l := range n.Links {
			fmt.Fprintf(bw, "link %d %d %.6f %.6f\n", l.A, l.B, l.Weight, l.LengthKm)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// Read parses .topo data from r. Each parsed ISP is validated.
func Read(r io.Reader) ([]*ISP, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		isps []*ISP
		cur  *ISP
		line int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "isp":
			if cur != nil {
				return nil, fmt.Errorf("topology: line %d: 'isp' before 'end'", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: isp wants 2 args", line)
			}
			asn, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad ASN: %v", line, err)
			}
			cur = &ISP{Name: unescapeCity(fields[1]), ASN: asn}
		case "pop":
			if cur == nil {
				return nil, fmt.Errorf("topology: line %d: 'pop' outside isp block", line)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("topology: line %d: pop wants 5 args", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			lat, err2 := strconv.ParseFloat(fields[3], 64)
			lon, err3 := strconv.ParseFloat(fields[4], 64)
			pop, err4 := strconv.ParseFloat(fields[5], 64)
			if err := firstErr(err1, err2, err3, err4); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad pop: %v", line, err)
			}
			cur.PoPs = append(cur.PoPs, PoP{
				ID: id, City: unescapeCity(fields[2]),
				Loc: geo.Point{Lat: lat, Lon: lon}, Population: pop,
			})
		case "link":
			if cur == nil {
				return nil, fmt.Errorf("topology: line %d: 'link' outside isp block", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("topology: line %d: link wants 4 args", line)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			lkm, err4 := strconv.ParseFloat(fields[4], 64)
			if err := firstErr(err1, err2, err3, err4); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad link: %v", line, err)
			}
			cur.Links = append(cur.Links, Link{A: a, B: b, Weight: w, LengthKm: lkm})
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("topology: line %d: 'end' outside isp block", line)
			}
			if err := cur.Validate(); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", line, err)
			}
			isps = append(isps, cur)
			cur = nil
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("topology: unterminated isp block %q", cur.Name)
	}
	return isps, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func escapeCity(s string) string   { return strings.ReplaceAll(s, " ", "_") }
func unescapeCity(s string) string { return strings.ReplaceAll(s, "_", " ") }

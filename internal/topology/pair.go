package topology

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// Interconnection is one inter-ISP link between a pair of ISPs. In
// practice neighboring ISPs interconnect at shared exchange points, so an
// interconnection joins the two ISPs' PoPs in the same city and its
// geographic length is (near) zero.
type Interconnection struct {
	APoP     int     // PoP ID in the first ISP
	BPoP     int     // PoP ID in the second ISP
	City     string  // city where the ISPs meet
	LengthKm float64 // geographic length of the interconnection link
}

// Pair is a pair of neighboring ISPs together with the set of
// interconnections between them. Traffic flows in both directions; the
// "upstream" ISP for a flow is the one containing its source PoP.
type Pair struct {
	A, B             *ISP
	Interconnections []Interconnection
}

// NewPair discovers the interconnections between two ISPs as the cities
// where both have a PoP, mirroring how the paper's dataset derives
// peering locations. The interconnections are sorted by city name for
// determinism.
func NewPair(a, b *ISP) *Pair {
	p := &Pair{A: a, B: b}
	bByCity := make(map[string]int, len(b.PoPs))
	for _, pop := range b.PoPs {
		bByCity[pop.City] = pop.ID
	}
	for _, pop := range a.PoPs {
		if bID, ok := bByCity[pop.City]; ok {
			p.Interconnections = append(p.Interconnections, Interconnection{
				APoP:     pop.ID,
				BPoP:     bID,
				City:     pop.City,
				LengthKm: geo.DistanceKm(pop.Loc, b.PoPs[bID].Loc),
			})
		}
	}
	sort.Slice(p.Interconnections, func(i, j int) bool {
		return p.Interconnections[i].City < p.Interconnections[j].City
	})
	return p
}

// NumInterconnections returns the number of interconnections.
func (p *Pair) NumInterconnections() int { return len(p.Interconnections) }

// Validate checks that interconnection endpoints are in range and cities
// are distinct.
func (p *Pair) Validate() error {
	if p.A == nil || p.B == nil {
		return fmt.Errorf("topology: pair with nil ISP")
	}
	seen := make(map[string]bool)
	for i, ix := range p.Interconnections {
		if ix.APoP < 0 || ix.APoP >= len(p.A.PoPs) {
			return fmt.Errorf("topology: pair %s-%s interconnection %d APoP out of range", p.A.Name, p.B.Name, i)
		}
		if ix.BPoP < 0 || ix.BPoP >= len(p.B.PoPs) {
			return fmt.Errorf("topology: pair %s-%s interconnection %d BPoP out of range", p.A.Name, p.B.Name, i)
		}
		if seen[ix.City] {
			return fmt.Errorf("topology: pair %s-%s duplicate interconnection city %q", p.A.Name, p.B.Name, ix.City)
		}
		seen[ix.City] = true
		if ix.LengthKm < 0 {
			return fmt.Errorf("topology: pair %s-%s interconnection %d negative length", p.A.Name, p.B.Name, i)
		}
	}
	return nil
}

// Reversed returns the pair with the roles of A and B swapped (and
// interconnection endpoints swapped accordingly). The underlying ISPs are
// shared, not copied.
func (p *Pair) Reversed() *Pair {
	r := &Pair{A: p.B, B: p.A}
	r.Interconnections = make([]Interconnection, len(p.Interconnections))
	for i, ix := range p.Interconnections {
		r.Interconnections[i] = Interconnection{
			APoP: ix.BPoP, BPoP: ix.APoP, City: ix.City, LengthKm: ix.LengthKm,
		}
	}
	return r
}

// WithoutInterconnection returns a copy of the pair with interconnection
// index k removed, simulating the failure scenario of paper §5.2. The
// underlying ISPs are shared.
func (p *Pair) WithoutInterconnection(k int) *Pair {
	if k < 0 || k >= len(p.Interconnections) {
		panic(fmt.Sprintf("topology: WithoutInterconnection index %d out of range", k))
	}
	r := &Pair{A: p.A, B: p.B}
	r.Interconnections = append(r.Interconnections, p.Interconnections[:k]...)
	r.Interconnections = append(r.Interconnections, p.Interconnections[k+1:]...)
	return r
}

// String identifies the pair by ISP names and interconnection count.
func (p *Pair) String() string {
	return fmt.Sprintf("%s<->%s (%d interconnections)", p.A.Name, p.B.Name, len(p.Interconnections))
}

// AllPairs forms every pair among the given ISPs that has at least
// minInterconnections interconnections and where neither topology is a
// logical mesh (the paper excludes mesh ISPs from distance experiments
// and requires >=2 interconnections for distance, >=3 for the bandwidth
// failure experiments).
func AllPairs(isps []*ISP, minInterconnections int, excludeMesh bool) []*Pair {
	var out []*Pair
	for i := 0; i < len(isps); i++ {
		if excludeMesh && isps[i].IsMesh() {
			continue
		}
		for j := i + 1; j < len(isps); j++ {
			if excludeMesh && isps[j].IsMesh() {
				continue
			}
			p := NewPair(isps[i], isps[j])
			if len(p.Interconnections) >= minInterconnections {
				out = append(out, p)
			}
		}
	}
	return out
}

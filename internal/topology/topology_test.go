package topology

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

// testISP builds a small valid ISP: a 4-PoP ring plus one chord.
func testISP(name string) *ISP {
	return &ISP{
		Name: name,
		ASN:  100,
		PoPs: []PoP{
			{ID: 0, City: "seattle", Loc: geo.Point{Lat: 47.6, Lon: -122.3}, Population: 4e6},
			{ID: 1, City: "denver", Loc: geo.Point{Lat: 39.7, Lon: -105.0}, Population: 3e6},
			{ID: 2, City: "chicago", Loc: geo.Point{Lat: 41.9, Lon: -87.6}, Population: 9e6},
			{ID: 3, City: "new york", Loc: geo.Point{Lat: 40.7, Lon: -74.0}, Population: 19e6},
		},
		Links: []Link{
			{A: 0, B: 1, Weight: 1641, LengthKm: 1641},
			{A: 1, B: 2, Weight: 1478, LengthKm: 1478},
			{A: 2, B: 3, Weight: 1145, LengthKm: 1145},
			{A: 0, B: 3, Weight: 3870, LengthKm: 3870},
			{A: 0, B: 2, Weight: 2790, LengthKm: 2790},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := testISP("a").Validate(); err != nil {
		t.Fatalf("valid ISP rejected: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ISP)
	}{
		{"empty name", func(n *ISP) { n.Name = "" }},
		{"no pops", func(n *ISP) { n.PoPs = nil; n.Links = nil }},
		{"bad pop id", func(n *ISP) { n.PoPs[1].ID = 7 }},
		{"empty city", func(n *ISP) { n.PoPs[0].City = "" }},
		{"duplicate city", func(n *ISP) { n.PoPs[1].City = "seattle" }},
		{"invalid location", func(n *ISP) { n.PoPs[2].Loc = geo.Point{Lat: 99, Lon: 0} }},
		{"negative population", func(n *ISP) { n.PoPs[0].Population = -1 }},
		{"link out of range", func(n *ISP) { n.Links[0].B = 9 }},
		{"self loop", func(n *ISP) { n.Links[0] = Link{A: 1, B: 1, Weight: 1} }},
		{"non-canonical link", func(n *ISP) { n.Links[0] = Link{A: 2, B: 0, Weight: 1} }},
		{"duplicate link", func(n *ISP) { n.Links[1] = n.Links[0] }},
		{"negative weight", func(n *ISP) { n.Links[0].Weight = -2 }},
		{"disconnected", func(n *ISP) { n.Links = n.Links[:2] }},
	}
	for _, c := range cases {
		n := testISP("x")
		c.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken ISP", c.name)
		}
	}
}

func TestConnected(t *testing.T) {
	n := testISP("a")
	if !n.Connected() {
		t.Error("ring+chords should be connected")
	}
	// Drop all links touching PoP 3.
	n.Links = []Link{{A: 0, B: 1, Weight: 1}, {A: 1, B: 2, Weight: 1}}
	if n.Connected() {
		t.Error("PoP 3 is isolated; should not be connected")
	}
	single := &ISP{Name: "s", PoPs: []PoP{{ID: 0, City: "x", Loc: geo.Point{}}}}
	if !single.Connected() {
		t.Error("single-PoP ISP is trivially connected")
	}
}

func TestCanonical(t *testing.T) {
	l := Link{A: 5, B: 2, Weight: 1}
	c := l.Canonical()
	if c.A != 2 || c.B != 5 {
		t.Errorf("Canonical = %+v", c)
	}
	if already := (Link{A: 1, B: 3}).Canonical(); already.A != 1 || already.B != 3 {
		t.Errorf("Canonical changed an already-canonical link: %+v", already)
	}
}

func TestIsMesh(t *testing.T) {
	n := testISP("a")
	n.Links = n.Links[:4] // ring: 4 links on 4 PoPs, density 4/6 < 0.8
	if n.IsMesh() {
		t.Error("ring is not above the mesh threshold")
	}
	n.Links = append(n.Links, Link{A: 0, B: 2, Weight: 1}, Link{A: 1, B: 3, Weight: 1}) // complete K4
	if !n.IsMesh() {
		t.Error("complete graph should be a mesh")
	}
	tiny := &ISP{Name: "t", PoPs: []PoP{{ID: 0, City: "a"}, {ID: 1, City: "b"}},
		Links: []Link{{A: 0, B: 1, Weight: 1}}}
	if tiny.IsMesh() {
		t.Error("2-PoP ISPs are never meshes")
	}
}

func TestPoPByCityAndCities(t *testing.T) {
	n := testISP("a")
	p, ok := n.PoPByCity("chicago")
	if !ok || p.ID != 2 {
		t.Errorf("PoPByCity(chicago) = %+v, %v", p, ok)
	}
	if _, ok := n.PoPByCity("miami"); ok {
		t.Error("PoPByCity(miami) should miss")
	}
	cities := n.Cities()
	want := []string{"chicago", "denver", "new york", "seattle"}
	for i := range want {
		if cities[i] != want[i] {
			t.Fatalf("Cities() = %v, want %v", cities, want)
		}
	}
}

func TestClone(t *testing.T) {
	n := testISP("a")
	c := n.Clone()
	c.PoPs[0].City = "mutated"
	c.Links[0].Weight = 999
	if n.PoPs[0].City == "mutated" || n.Links[0].Weight == 999 {
		t.Error("Clone shares state with original")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	n := testISP("a")
	adj := n.Adjacency()
	degSum := 0
	for _, edges := range adj {
		degSum += len(edges)
	}
	if degSum != 2*len(n.Links) {
		t.Errorf("sum of degrees = %d, want %d", degSum, 2*len(n.Links))
	}
	// Every edge u->v must have a reverse v->u over the same link.
	for u, edges := range adj {
		for _, e := range edges {
			found := false
			for _, back := range adj[e.To] {
				if back.To == u && back.Link == e.Link {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d (link %d) has no reverse", u, e.To, e.Link)
			}
		}
	}
}

func TestNewPairFindsSharedCities(t *testing.T) {
	a := testISP("a")
	b := &ISP{
		Name: "b", ASN: 200,
		PoPs: []PoP{
			{ID: 0, City: "chicago", Loc: geo.Point{Lat: 41.9, Lon: -87.6}, Population: 9e6},
			{ID: 1, City: "new york", Loc: geo.Point{Lat: 40.7, Lon: -74.0}, Population: 19e6},
			{ID: 2, City: "miami", Loc: geo.Point{Lat: 25.8, Lon: -80.2}, Population: 6e6},
		},
		Links: []Link{{A: 0, B: 1, Weight: 1145, LengthKm: 1145}, {A: 1, B: 2, Weight: 1750, LengthKm: 1750}},
	}
	p := NewPair(a, b)
	if p.NumInterconnections() != 2 {
		t.Fatalf("NumInterconnections = %d, want 2", p.NumInterconnections())
	}
	// Sorted by city: chicago before new york.
	if p.Interconnections[0].City != "chicago" || p.Interconnections[1].City != "new york" {
		t.Errorf("interconnections = %+v", p.Interconnections)
	}
	if p.Interconnections[0].APoP != 2 || p.Interconnections[0].BPoP != 0 {
		t.Errorf("chicago interconnection endpoints wrong: %+v", p.Interconnections[0])
	}
	if p.Interconnections[0].LengthKm != 0 {
		t.Errorf("same-city interconnection should have zero length, got %f", p.Interconnections[0].LengthKm)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPairReversed(t *testing.T) {
	a, b := testISP("a"), testISP("b")
	p := NewPair(a, b)
	r := p.Reversed()
	if r.A != b || r.B != a {
		t.Error("Reversed did not swap ISPs")
	}
	for i := range p.Interconnections {
		if r.Interconnections[i].APoP != p.Interconnections[i].BPoP ||
			r.Interconnections[i].BPoP != p.Interconnections[i].APoP {
			t.Errorf("interconnection %d not swapped", i)
		}
	}
}

func TestWithoutInterconnection(t *testing.T) {
	p := NewPair(testISP("a"), testISP("b")) // all 4 cities shared
	if p.NumInterconnections() != 4 {
		t.Fatalf("setup: want 4 interconnections, got %d", p.NumInterconnections())
	}
	q := p.WithoutInterconnection(1)
	if q.NumInterconnections() != 3 {
		t.Fatalf("want 3 after removal, got %d", q.NumInterconnections())
	}
	if q.Interconnections[1].City == p.Interconnections[1].City {
		t.Error("removed interconnection still present")
	}
	if p.NumInterconnections() != 4 {
		t.Error("original pair mutated")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range removal")
		}
	}()
	p.WithoutInterconnection(9)
}

func TestAllPairs(t *testing.T) {
	a, b := testISP("a"), testISP("b")
	c := &ISP{Name: "c", PoPs: []PoP{{ID: 0, City: "tokyo", Loc: geo.Point{Lat: 35.7, Lon: 139.7}}}}
	pairs := AllPairs([]*ISP{a, b, c}, 2, false)
	if len(pairs) != 1 {
		t.Fatalf("AllPairs = %d pairs, want 1", len(pairs))
	}
	if pairs[0].A.Name != "a" || pairs[0].B.Name != "b" {
		t.Errorf("unexpected pair %v", pairs[0])
	}
	// With mesh exclusion: make a a mesh.
	a.Links = append(a.Links, Link{A: 1, B: 3, Weight: 1})
	if got := AllPairs([]*ISP{a, b, c}, 2, true); len(got) != 0 {
		t.Errorf("mesh exclusion failed, got %d pairs", len(got))
	}
}

func TestCodecRoundtrip(t *testing.T) {
	isps := []*ISP{testISP("backbone one"), testISP("backbone two")}
	var sb strings.Builder
	if err := Write(&sb, isps); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Read returned %d ISPs, want 2", len(got))
	}
	for i := range isps {
		if got[i].Name != isps[i].Name || got[i].ASN != isps[i].ASN {
			t.Errorf("ISP %d header mismatch: %s/%d", i, got[i].Name, got[i].ASN)
		}
		if len(got[i].PoPs) != len(isps[i].PoPs) || len(got[i].Links) != len(isps[i].Links) {
			t.Fatalf("ISP %d size mismatch", i)
		}
		for j := range isps[i].PoPs {
			w, g := isps[i].PoPs[j], got[i].PoPs[j]
			if w.City != g.City || w.ID != g.ID || w.Population != g.Population {
				t.Errorf("ISP %d pop %d mismatch: %+v vs %+v", i, j, w, g)
			}
		}
		for j := range isps[i].Links {
			if isps[i].Links[j] != got[i].Links[j] {
				t.Errorf("ISP %d link %d mismatch", i, j)
			}
		}
	}
}

func TestCodecComments(t *testing.T) {
	input := `
# a comment
isp test 1
pop 0 city_a 10.0 20.0 100
end
`
	isps, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(isps) != 1 || isps[0].PoPs[0].City != "city a" {
		t.Errorf("parse result wrong: %+v", isps)
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"pop outside block", "pop 0 x 0 0 0\n"},
		{"link outside block", "link 0 1 1 1\n"},
		{"end outside block", "end\n"},
		{"nested isp", "isp a 1\nisp b 2\n"},
		{"bad asn", "isp a xyz\n"},
		{"bad pop arity", "isp a 1\npop 0 x 0\nend\n"},
		{"bad link number", "isp a 1\npop 0 x 0 0 0\nlink 0 q 1 1\nend\n"},
		{"unknown directive", "frob 1 2\n"},
		{"unterminated", "isp a 1\npop 0 x 0 0 0\n"},
		{"invalid topology", "isp a 1\npop 0 x 0 0 0\npop 1 y 0 1 0\nend\n"}, // disconnected
		{"unknown pop field", "isp a 1\npop z x 0 0 0\nend\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: Read accepted bad input", c.name)
		}
	}
}

func TestTotalLinkLength(t *testing.T) {
	n := testISP("a")
	want := 1641.0 + 1478 + 1145 + 3870 + 2790
	if got := n.TotalLinkLengthKm(); got != want {
		t.Errorf("TotalLinkLengthKm = %f, want %f", got, want)
	}
}

package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Example builds a CDF over per-pair gains and reads it the way the
// paper's figures are read.
func Example() {
	gains := []float64{0.5, 2, 3.5, 4, 4.5, 6, 8, 11, 14, 21}
	c := stats.NewCDF(gains)
	fmt.Printf("median gain: %.1f%%\n", c.Median())
	fmt.Printf("pairs gaining at most 5%%: %.0f%%\n", 100*c.At(5))
	fmt.Printf("pairs gaining more than 10%%: %.0f%%\n", 100*c.FractionAbove(10))
	// Output:
	// median gain: 4.5%
	// pairs gaining at most 5%: 50%
	// pairs gaining more than 10%: 30%
}

package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// This file is the streaming half of the toolkit: accumulators that
// consume one sample at a time in O(1)/bounded memory and merge, so the
// experiment pipeline can aggregate production-scale runs without
// retaining sample slices (DESIGN.md §8). Both types are deterministic:
// the state after a fixed sequence of Add/Merge calls depends on that
// sequence alone, and the runner's ordered reducer fixes the sequence,
// so streaming aggregates are byte-identical across worker counts.

// Stream accumulates count, mean, min, and max online. The zero value
// is an empty accumulator ready for use.
type Stream struct {
	n        int64
	sum      float64
	min, max float64
}

// Add folds one sample in. NaNs are dropped, mirroring NewCDF.
func (s *Stream) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
}

// Merge folds another accumulator's samples in.
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}

// N returns the number of samples folded in.
func (s *Stream) N() int64 { return s.n }

// Mean returns the arithmetic mean (0 when empty, like CDF.Mean).
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample; it panics when empty.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		panic("stats: Min of empty Stream")
	}
	return s.min
}

// Max returns the largest sample; it panics when empty.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		panic("stats: Max of empty Stream")
	}
	return s.max
}

// streamJSON is the wire form of a Stream. encoding/json round-trips
// float64 exactly (shortest-representation formatting), so a
// serialized accumulator merges bit-identically to the live one.
type streamJSON struct {
	N   int64   `json:"n"`
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// MarshalJSON serializes the accumulator for shard transport.
func (s Stream) MarshalJSON() ([]byte, error) {
	return json.Marshal(streamJSON{N: s.n, Sum: s.sum, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (s *Stream) UnmarshalJSON(data []byte) error {
	var j streamJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.N < 0 {
		return fmt.Errorf("stats: Stream with negative n %d", j.N)
	}
	s.n, s.sum, s.min, s.max = j.N, j.Sum, j.Min, j.Max
	return nil
}

// sketchCap is the default point capacity of a QuantileSketch: exact
// quantiles up to this many samples, ~32 KiB of floats, and a rank
// error that stays below 1/sketchCap per compaction level beyond it.
const sketchCap = 4096

// wpoint is one weighted point of a sketch: v stands for w original
// samples at or near v.
type wpoint struct {
	v float64
	w float64
}

// QuantileSketch estimates quantiles from a stream in bounded memory.
// Up to its capacity it simply keeps every sample, so quantiles are
// EXACT (matching CDF.Quantile's nearest-rank convention) for every
// dataset this repo ships; past the capacity it compacts: points are
// sorted and adjacent pairs collapse into one point of doubled weight,
// alternating deterministically between keeping the lower and the upper
// member. Sketches merge, so per-shard digests can be combined.
//
// The zero value is unusable; construct with NewQuantileSketch.
type QuantileSketch struct {
	cap         int
	points      []wpoint
	compactions int
	n           int64 // samples represented (sum of weights)
}

// NewQuantileSketch returns a sketch holding at most capacity points
// (0 selects the default, 4096).
func NewQuantileSketch(capacity int) *QuantileSketch {
	if capacity <= 0 {
		capacity = sketchCap
	}
	if capacity < 8 {
		capacity = 8
	}
	return &QuantileSketch{cap: capacity, points: make([]wpoint, 0, capacity+1)}
}

// Add folds one sample in. NaNs are dropped, mirroring NewCDF.
func (q *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	q.points = append(q.points, wpoint{v: x, w: 1})
	q.n++
	if len(q.points) > q.cap {
		q.compact()
	}
}

// Merge folds another sketch's points in.
func (q *QuantileSketch) Merge(o *QuantileSketch) {
	q.points = append(q.points, o.points...)
	q.n += o.n
	for len(q.points) > q.cap {
		q.compact()
	}
}

// sortPoints orders the points canonically by (value, weight). The
// weight tie-break matters: sorting happens both in compact and in
// Quantile, and a value-only comparator under an unstable sort would
// let a mid-stream quantile query permute equal-valued points and
// change the next compaction's pairing — breaking determinism in the
// Add/Merge sequence. With the canonical order, equal (v, w) points
// are interchangeable, so the state is well-defined regardless of when
// queries happen.
func (q *QuantileSketch) sortPoints() {
	sort.Slice(q.points, func(i, j int) bool {
		if q.points[i].v != q.points[j].v {
			return q.points[i].v < q.points[j].v
		}
		return q.points[i].w < q.points[j].w
	})
}

// compact halves the point count: sort canonically, collapse each
// adjacent pair into one point carrying both weights. The surviving
// value alternates between the pair's lower and upper member so the
// bias cancels across compactions; the alternation is driven by a
// counter, keeping the whole structure deterministic in the Add/Merge
// sequence.
func (q *QuantileSketch) compact() {
	q.sortPoints()
	keepUpper := q.compactions%2 == 1
	out := q.points[:0]
	for i := 0; i+1 < len(q.points); i += 2 {
		p := q.points[i]
		if keepUpper {
			p.v = q.points[i+1].v
		}
		p.w += q.points[i+1].w
		out = append(out, p)
	}
	if len(q.points)%2 == 1 {
		out = append(out, q.points[len(q.points)-1])
	}
	q.points = out
	q.compactions++
}

// N returns the number of samples represented.
func (q *QuantileSketch) N() int64 { return q.n }

// Quantile returns the estimated q-quantile (exact while no compaction
// has happened), using the same nearest-rank convention as
// CDF.Quantile. It panics on an empty sketch or out-of-range qq.
func (q *QuantileSketch) Quantile(qq float64) float64 {
	if q.n == 0 {
		panic("stats: quantile of empty QuantileSketch")
	}
	if qq < 0 || qq > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", qq))
	}
	q.sortPoints()
	target := qq * float64(q.n)
	var cum float64
	for _, p := range q.points {
		cum += p.w
		if cum >= target {
			return p.v
		}
	}
	return q.points[len(q.points)-1].v
}

// Median returns the 0.5 quantile.
func (q *QuantileSketch) Median() float64 { return q.Quantile(0.5) }

// Mean returns the weighted mean of the sketch's points, summed in
// canonical (value, weight) order. Unlike Stream.Mean — whose float
// sum depends on insertion order — this is the same float64 for any
// Add/Merge order over the same sample multiset (while uncompacted),
// which is what lets sharded runs reproduce a whole-run summary line
// byte-identically. While uncompacted it equals CDF.Mean exactly: both
// sum the same values in sorted order.
func (q *QuantileSketch) Mean() float64 {
	if q.n == 0 {
		return 0
	}
	q.sortPoints()
	var sum float64
	for _, p := range q.points {
		sum += p.v * p.w
	}
	return sum / float64(q.n)
}

// sketchJSON is the wire form of a QuantileSketch: the full point set
// (canonically sorted, so equal states serialize equally) plus the
// compaction counter that keeps merge determinism intact.
type sketchJSON struct {
	Cap         int          `json:"cap"`
	Compactions int          `json:"compactions"`
	N           int64        `json:"n"`
	Points      [][2]float64 `json:"points"`
}

// MarshalJSON serializes the sketch for shard transport. The receiver
// is a pointer because serialization canonicalizes point order first.
func (q *QuantileSketch) MarshalJSON() ([]byte, error) {
	q.sortPoints()
	pts := make([][2]float64, len(q.points))
	for i, p := range q.points {
		pts[i] = [2]float64{p.v, p.w}
	}
	return json.Marshal(sketchJSON{Cap: q.cap, Compactions: q.compactions, N: q.n, Points: pts})
}

// UnmarshalJSON restores a sketch serialized by MarshalJSON.
func (q *QuantileSketch) UnmarshalJSON(data []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Cap <= 0 {
		j.Cap = sketchCap
	}
	if j.Cap < 8 {
		j.Cap = 8
	}
	var n float64
	pts := make([]wpoint, len(j.Points))
	for i, p := range j.Points {
		pts[i] = wpoint{v: p[0], w: p[1]}
		n += p[1]
	}
	if int64(n) != j.N {
		return fmt.Errorf("stats: sketch weights sum to %v, header says %d", n, j.N)
	}
	q.cap, q.compactions, q.n, q.points = j.Cap, j.Compactions, j.N, pts
	for len(q.points) > q.cap {
		q.compact()
	}
	return nil
}

// Digest couples a Stream with a QuantileSketch: the constant-memory
// stand-in for a retained sample slice, summarizable like a CDF. The
// zero value is an empty digest ready for use (the sketch is created
// with the default capacity on first Add/Merge).
type Digest struct {
	Stream Stream
	Sketch *QuantileSketch
}

// NewDigest returns an empty digest with the default sketch capacity.
func NewDigest() *Digest {
	return &Digest{Sketch: NewQuantileSketch(0)}
}

// Add folds one sample in.
func (d *Digest) Add(x float64) {
	if d.Sketch == nil {
		d.Sketch = NewQuantileSketch(0)
	}
	d.Stream.Add(x)
	d.Sketch.Add(x)
}

// Merge folds another digest's samples in.
func (d *Digest) Merge(o *Digest) {
	if d.Sketch == nil {
		d.Sketch = NewQuantileSketch(0)
	}
	d.Stream.Merge(&o.Stream)
	if o.Sketch != nil {
		d.Sketch.Merge(o.Sketch)
	}
}

// Summary returns the one-line digest in the same format as
// Summary(CDF): n, mean, median, p90, max. While the sketch has not
// compacted, the quantiles are exact and the line matches the batch
// one up to floating-point rounding of the mean (the stream sums in
// insertion order, the CDF over sorted samples).
func (d *Digest) Summary() string {
	if d.Stream.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p90=%.3f max=%.3f",
		d.Stream.N(), d.Stream.Mean(), d.Sketch.Median(), d.Sketch.Quantile(0.9), d.Stream.Max())
}

// StableSummary is Summary with the mean drawn from the sketch instead
// of the stream. Stream.Mean sums in insertion order, so shards merged
// in a different order can disagree with a whole run in the last float
// bits; Sketch.Mean sums canonically sorted points, so (while the
// sketch is uncompacted) the line is byte-identical for ANY sharding
// of the same samples — and equal to the batch Summary(NewCDF(...))
// line, which also sums sorted samples. cmd/nexitplot's merge path
// pins exactly this.
func (d *Digest) StableSummary() string {
	if d.Stream.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p90=%.3f max=%.3f",
		d.Stream.N(), d.Sketch.Mean(), d.Sketch.Median(), d.Sketch.Quantile(0.9), d.Stream.Max())
}

// digestJSON is the wire form of a Digest: the digest summary line's
// machine-readable carrier. A digest parsed back from it merges
// exactly like the live one, which is what makes run-elsewhere /
// aggregate-here sharding work.
type digestJSON struct {
	Stream Stream          `json:"stream"`
	Sketch *QuantileSketch `json:"sketch,omitempty"`
}

// MarshalJSON serializes the digest for shard transport.
func (d *Digest) MarshalJSON() ([]byte, error) {
	return json.Marshal(digestJSON{Stream: d.Stream, Sketch: d.Sketch})
}

// UnmarshalJSON restores a digest serialized by MarshalJSON.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var j digestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	d.Stream = j.Stream
	d.Sketch = j.Sketch
	if d.Sketch == nil {
		d.Sketch = NewQuantileSketch(0)
	}
	return nil
}

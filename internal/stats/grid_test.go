package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// The GridCDF contract: for a fixed figure axis, folding samples online
// produces the exact series a retained-sample CDF renders — same float
// comparisons, same arithmetic, bit-identical points.
func TestGridCDFSeriesMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const min, max, n = -20, 40, 13
	samples := make([]float64, 0, 1203)
	g := NewGridCDF(min, max, n)
	for i := 0; i < 1200; i++ {
		x := rng.NormFloat64()*25 + 5 // spills past both axis ends
		samples = append(samples, x)
		g.Add(x)
	}
	// Exact grid-point values and a NaN must behave identically too.
	for _, x := range []float64{min, max, -15, math.NaN()} {
		samples = append(samples, x)
		g.Add(x)
	}
	c := NewCDF(samples)
	if g.N() != int64(c.N()) {
		t.Fatalf("N = %d, want %d", g.N(), c.N())
	}
	want := c.Series(min, max, n)
	got := g.Series(min, max, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Integer counts make the fold order-independent: any sharding of the
// samples merges into the same grid, hence byte-identical tables.
func TestGridCDFMergeShardParity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const min, max, n = 0, 15, 16
	whole := NewGridCDF(min, max, n)
	shardA, shardB := NewGridCDF(min, max, n), NewGridCDF(min, max, n)
	for i := 0; i < 999; i++ {
		x := rng.Float64() * 18
		whole.Add(x)
		if i%2 == 0 {
			shardA.Add(x)
		} else {
			shardB.Add(x)
		}
	}
	// Merge in the "wrong" order on purpose.
	merged := NewGridCDF(min, max, n)
	if err := merged.Merge(shardB); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(shardA); err != nil {
		t.Fatal(err)
	}
	wholeTable := FormatSeries("x", min, max, n, map[string]*GridCDF{"g": whole}, []string{"g"})
	mergedTable := FormatSeries("x", min, max, n, map[string]*GridCDF{"g": merged}, []string{"g"})
	if wholeTable != mergedTable {
		t.Fatalf("sharded table differs from whole-run table:\n%s\nvs\n%s", mergedTable, wholeTable)
	}

	if err := merged.Merge(NewGridCDF(0, 15, 8)); err == nil {
		t.Fatal("merging mismatched grids did not error")
	}
}

func TestGridCDFJSONRoundTrip(t *testing.T) {
	g := NewGridCDF(0, 6, 7)
	for _, x := range []float64{-1, 0, 0.5, 3, 6, 9} {
		g.Add(x)
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back GridCDF
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() {
		t.Fatalf("round-trip N = %d, want %d", back.N(), g.N())
	}
	want, got := g.Series(0, 6, 7), back.Series(0, 6, 7)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-trip point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// A second marshal of the restored grid is byte-identical: the wire
	// form is canonical.
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("wire form not canonical:\n%s\nvs\n%s", raw, raw2)
	}
}

func TestGridCDFSeriesWrongAxisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rendering a different axis did not panic")
		}
	}()
	NewGridCDF(0, 15, 16).Series(0, 10, 16)
}

func TestGridCDFEmpty(t *testing.T) {
	g := NewGridCDF(0, 1, 3)
	for _, p := range g.Series(0, 1, 3) {
		if p.Pct != 0 {
			t.Fatalf("empty grid rendered %+v", p)
		}
	}
}

package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// GridCDF is the constant-memory counterpart of CDF for figure
// rendering: it counts samples into the fixed x-grid a figure is
// plotted on, instead of retaining the samples. Because the figure
// axes are fixed per figure (DESIGN.md §8), the grid is known before
// the first sample arrives, and the rendered series is EXACTLY the
// one CDF.Series would produce from the retained samples — sample
// membership in a grid cell is decided by the same float comparisons,
// and the cumulative fraction is computed with the same operations in
// the same order. Counts are integers, so folds are order-independent
// and sharded runs merge into byte-identical tables.
type GridCDF struct {
	min, max float64
	gridN    int
	xs       []float64 // the grid, built with the Series formula
	counts   []int64   // len(xs)+1; counts[i] holds samples in (xs[i-1], xs[i]], last is > max
	n        int64
}

// NewGridCDF builds an empty grid over the same x positions
// CDF.Series(min, max, n) samples (n is clamped to 2, as there).
func NewGridCDF(min, max float64, n int) *GridCDF {
	if n < 2 {
		n = 2
	}
	g := &GridCDF{min: min, max: max, gridN: n}
	g.build()
	return g
}

// build derives the grid from (min, max, gridN) with the exact
// CDF.Series formula, so both sides compare samples against identical
// float64 values.
func (g *GridCDF) build() {
	g.xs = make([]float64, g.gridN)
	for i := 0; i < g.gridN; i++ {
		g.xs[i] = g.min + (g.max-g.min)*float64(i)/float64(g.gridN-1)
	}
	if g.counts == nil {
		g.counts = make([]int64, g.gridN+1)
	}
}

// Add folds one sample in. NaNs are dropped, mirroring NewCDF. Samples
// beyond the grid still count toward N (they depress every grid point's
// percentage, exactly as a retained sample above the axis would).
func (g *GridCDF) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	// The first grid point at or above x: x contributes to the
	// cumulative count from that point on. sorted-insertion semantics
	// match CDF.At's "samples <= x" exactly.
	g.counts[sort.SearchFloat64s(g.xs, x)]++
	g.n++
}

// N returns the number of samples folded in.
func (g *GridCDF) N() int64 { return g.n }

// Merge folds another grid's counts in. Both grids must cover the same
// axis; counts are integers, so merge order never changes the result.
func (g *GridCDF) Merge(o *GridCDF) error {
	if g.min != o.min || g.max != o.max || g.gridN != o.gridN {
		return fmt.Errorf("stats: merging GridCDFs over different grids ([%v,%v]x%d vs [%v,%v]x%d)",
			g.min, g.max, g.gridN, o.min, o.max, o.gridN)
	}
	for i := range g.counts {
		g.counts[i] += o.counts[i]
	}
	g.n += o.n
	return nil
}

// Series renders the grid as CDF curve points. The arguments must
// name the grid this GridCDF was built over (they exist to satisfy
// the same SeriesSource shape as CDF.Series); any other axis panics,
// because silently rendering a different grid than was counted would
// produce plausible-looking nonsense.
func (g *GridCDF) Series(min, max float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	if min != g.min || max != g.max || n != g.gridN {
		panic(fmt.Sprintf("stats: GridCDF over [%v,%v]x%d asked to render [%v,%v]x%d",
			g.min, g.max, g.gridN, min, max, n))
	}
	out := make([]Point, g.gridN)
	var cum int64
	for i, x := range g.xs {
		cum += g.counts[i]
		pct := 0.0
		if g.n > 0 {
			// Same operation order as CDF.Series: 100 * (count/total).
			pct = 100 * (float64(cum) / float64(g.n))
		}
		out[i] = Point{X: x, Pct: pct}
	}
	return out
}

// gridJSON is the wire form of a GridCDF: axis + integer counts, the
// state a sharded fold ships to the aggregator.
type gridJSON struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Grid   int     `json:"grid"`
	Counts []int64 `json:"counts"`
	N      int64   `json:"n"`
}

// MarshalJSON serializes the grid state for shard transport.
func (g *GridCDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(gridJSON{Min: g.min, Max: g.max, Grid: g.gridN, Counts: g.counts, N: g.n})
}

// UnmarshalJSON restores a grid serialized by MarshalJSON.
func (g *GridCDF) UnmarshalJSON(data []byte) error {
	var j gridJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Grid < 2 {
		return fmt.Errorf("stats: GridCDF grid %d too small", j.Grid)
	}
	if len(j.Counts) != j.Grid+1 {
		return fmt.Errorf("stats: GridCDF counts length %d, want %d", len(j.Counts), j.Grid+1)
	}
	g.min, g.max, g.gridN, g.n = j.Min, j.Max, j.Grid, j.N
	g.counts = j.Counts
	g.xs = nil
	g.build()
	return nil
}

package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Min() != 1 || c.Max() != 4 || c.Median() != 2 {
		t.Errorf("min/max/median = %v/%v/%v", c.Min(), c.Max(), c.Median())
	}
	if c.Mean() != 2.5 {
		t.Errorf("Mean = %v", c.Mean())
	}
	if got := c.FractionAbove(2); got != 0.5 {
		t.Errorf("FractionAbove(2) = %v", got)
	}
}

func TestCDFDropsNaN(t *testing.T) {
	c := NewCDF([]float64{1, math.NaN(), 2})
	if c.N() != 2 {
		t.Errorf("N = %d, want 2", c.N())
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCDF(nil).Quantile(0.5) },
		func() { NewCDF([]float64{1}).Quantile(-0.1) },
		func() { NewCDF([]float64{1}).Quantile(1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantileNearestRank(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if c.Quantile(0.5) != 30 {
		t.Errorf("median = %v", c.Quantile(0.5))
	}
	if c.Quantile(0.9) != 50 {
		t.Errorf("p90 = %v", c.Quantile(0.9))
	}
	if c.Quantile(0) != 10 {
		t.Errorf("q0 = %v", c.Quantile(0))
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		clean := make([]float64, 0, len(samples))
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(clean)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAtMatchesCount(t *testing.T) {
	f := func(samples []float64, x float64) bool {
		clean := make([]float64, 0, len(samples))
		for _, s := range samples {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				clean = append(clean, s)
			}
		}
		if math.IsNaN(x) || len(clean) == 0 {
			return true
		}
		count := 0
		for _, s := range clean {
			if s <= x {
				count++
			}
		}
		c := NewCDF(clean)
		return math.Abs(c.At(x)-float64(count)/float64(len(clean))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	c := NewCDF([]float64{0, 5, 10})
	pts := c.Series(0, 10, 3)
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[2].X != 10 {
		t.Errorf("x-grid wrong: %v", pts)
	}
	if math.Abs(pts[0].Pct-100.0/3) > 1e-9 || pts[2].Pct != 100 {
		t.Errorf("percentages wrong: %v", pts)
	}
	if got := c.Series(0, 1, 0); len(got) != 2 {
		t.Errorf("degenerate n should clamp to 2, got %d", len(got))
	}
	// Quantile consistency: Pct at Quantile(q) >= 100q.
	qs := []float64{0.1, 0.5, 0.9}
	for _, q := range qs {
		x := c.Quantile(q)
		if 100*c.At(x) < 100*q-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < %v", q, c.At(x), q)
		}
	}
	// Sorted invariants of the underlying data.
	if !sort.Float64sAreSorted(c.sorted) {
		t.Error("CDF samples not sorted")
	}
}

func TestFormatSeries(t *testing.T) {
	curves := map[string]*CDF{
		"negotiated": NewCDF([]float64{1, 2, 3}),
		"optimal":    NewCDF([]float64{1, 1, 2}),
	}
	out := FormatSeries("% gain", 0, 4, 5, curves, []string{"negotiated", "optimal"})
	if !strings.Contains(out, "negotiated") || !strings.Contains(out, "optimal") {
		t.Error("missing curve names")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 5 grid rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Error("expected a 100% entry")
	}
}

func TestSummary(t *testing.T) {
	if Summary(NewCDF(nil)) != "n=0" {
		t.Error("empty summary wrong")
	}
	s := Summary(NewCDF([]float64{1, 2, 3}))
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "median=2.000") {
		t.Errorf("summary = %q", s)
	}
}

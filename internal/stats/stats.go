// Package stats provides the small statistical toolkit the experiment
// harness uses to report results in the paper's format: cumulative
// distribution functions over ISP pairs / flows / failure cases, with
// quantiles and fixed-grid series matching the figures' axes.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied; NaNs are dropped).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, 0, len(samples))
	for _, x := range samples {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x, in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank. It
// panics on an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		panic("stats: quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range", q))
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.Quantile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, x := range c.sorted {
		sum += x
	}
	return sum / float64(len(c.sorted))
}

// FractionAbove returns the fraction of samples strictly greater than x.
func (c *CDF) FractionAbove(x float64) float64 { return 1 - c.At(x) }

// Point is one (x, cumulative-percent) sample of a rendered CDF curve.
type Point struct {
	X   float64
	Pct float64 // cumulative percentage of samples <= X, in [0, 100]
}

// Series samples the CDF at n evenly spaced x positions spanning
// [min, max], as plotted in the paper's figures.
func (c *CDF) Series(min, max float64, n int) []Point {
	if n < 2 {
		n = 2
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		x := min + (max-min)*float64(i)/float64(n-1)
		out[i] = Point{X: x, Pct: 100 * c.At(x)}
	}
	return out
}

// SeriesSource is any curve renderable on a fixed x-grid: the batch
// CDF (retained samples) and the streaming GridCDF (online counts)
// both qualify, so the same table formatter serves figure mode and the
// NDJSON fold in cmd/nexitplot.
type SeriesSource interface {
	Series(min, max float64, n int) []Point
}

// FormatSeries renders one or more named CDF curves sampled on a shared
// x-grid as an aligned text table — the textual equivalent of one paper
// figure panel.
func FormatSeries[C SeriesSource](xLabel string, min, max float64, n int, curves map[string]C, order []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%12s", xLabel)
	for _, name := range order {
		fmt.Fprintf(&sb, " %22s", name)
	}
	sb.WriteByte('\n')
	grids := make(map[string][]Point, len(curves))
	for name, c := range curves {
		grids[name] = c.Series(min, max, n)
	}
	for i := 0; i < n; i++ {
		var x float64
		for _, name := range order {
			x = grids[name][i].X
			break
		}
		fmt.Fprintf(&sb, "%12.3f", x)
		for _, name := range order {
			fmt.Fprintf(&sb, " %21.1f%%", grids[name][i].Pct)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summary returns a one-line digest of a CDF: n, mean, median, p90, max.
func Summary(c *CDF) string {
	if c.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p90=%.3f max=%.3f",
		c.N(), c.Mean(), c.Median(), c.Quantile(0.9), c.Max())
}

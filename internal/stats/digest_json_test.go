package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// The digest wire form must merge exactly like the live accumulators:
// serialize two shards, parse them back, merge, and the result is the
// whole-run digest — byte-identical wire form and summary line. This
// is the run-elsewhere / aggregate-here contract cmd/nexitplot uses.
func TestDigestJSONShardMergeEqualsWholeRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	whole := NewDigest()
	shardA, shardB := NewDigest(), NewDigest()
	samples := make([]float64, 0, 1501)
	for i := 0; i < 1501; i++ {
		x := rng.NormFloat64() * 7
		samples = append(samples, x)
		whole.Add(x)
		if i%3 == 0 {
			shardA.Add(x)
		} else {
			shardB.Add(x)
		}
	}

	// Round-trip each shard through its wire form, as a sharded run
	// would: emit on the worker, parse on the aggregator.
	parse := func(d *Digest) *Digest {
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		back := &Digest{}
		if err := json.Unmarshal(raw, back); err != nil {
			t.Fatal(err)
		}
		return back
	}
	merged := NewDigest()
	merged.Merge(parse(shardB)) // deliberately out of order
	merged.Merge(parse(shardA))

	if got, want := merged.StableSummary(), whole.StableSummary(); got != want {
		t.Fatalf("merged summary %q != whole-run %q", got, want)
	}
	// The sketches canonicalize on marshal, so the merged wire form is
	// byte-identical to the whole run's — the strongest parity we can pin.
	rawMerged, err := json.Marshal(merged.Sketch)
	if err != nil {
		t.Fatal(err)
	}
	rawWhole, err := json.Marshal(whole.Sketch)
	if err != nil {
		t.Fatal(err)
	}
	if string(rawMerged) != string(rawWhole) {
		t.Fatal("merged sketch wire form differs from whole-run sketch")
	}

	// And the stable line equals the batch CDF summary: sorted-order
	// sums on both sides.
	if got, want := whole.StableSummary(), Summary(NewCDF(samples)); got != want {
		t.Fatalf("stable summary %q != batch %q", got, want)
	}
}

func TestStreamJSONRoundTrip(t *testing.T) {
	var s Stream
	for _, x := range []float64{0.1, -3.75, 1e17, 2.000000000000004} {
		s.Add(x)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Stream
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip = %+v, want %+v", back, s)
	}
}

func TestSketchJSONRejectsCorrupt(t *testing.T) {
	var q QuantileSketch
	if err := json.Unmarshal([]byte(`{"cap":100,"n":5,"points":[[1,1]]}`), &q); err == nil {
		t.Fatal("weight/header mismatch accepted")
	}
}

func TestDigestJSONNilSketch(t *testing.T) {
	var d Digest // zero value: no sketch until first Add
	raw, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	back.Add(1) // must be usable immediately
	if back.Stream.N() != 1 || back.Sketch.N() != 1 {
		t.Fatalf("restored digest unusable: %+v", back)
	}
}

// StableSummary is order-independent where Summary is not guaranteed
// to be: feed the same samples in opposite orders.
func TestStableSummaryOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	samples := make([]float64, 700)
	for i := range samples {
		samples[i] = rng.NormFloat64()
	}
	fwd, rev := NewDigest(), NewDigest()
	for i := range samples {
		fwd.Add(samples[i])
		rev.Add(samples[len(samples)-1-i])
	}
	if fwd.StableSummary() != rev.StableSummary() {
		t.Fatalf("stable summary depends on insertion order: %q vs %q",
			fwd.StableSummary(), rev.StableSummary())
	}
}

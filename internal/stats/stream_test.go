package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestStreamMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 999)
	var s Stream
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
		s.Add(samples[i])
	}
	c := NewCDF(samples)
	if s.N() != int64(c.N()) {
		t.Fatalf("N = %d, want %d", s.N(), c.N())
	}
	if math.Abs(s.Mean()-c.Mean()) > 1e-9 {
		t.Errorf("Mean = %v, want %v", s.Mean(), c.Mean())
	}
	if s.Min() != c.Min() || s.Max() != c.Max() {
		t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min(), s.Max(), c.Min(), c.Max())
	}
}

func TestStreamNaNAndMerge(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Add(math.NaN())
	a.Add(3)
	b.Add(-2)
	a.Merge(&b)
	if a.N() != 3 {
		t.Fatalf("N = %d, want 3 (NaN dropped)", a.N())
	}
	if a.Min() != -2 || a.Max() != 3 {
		t.Errorf("Min/Max = %v/%v, want -2/3", a.Min(), a.Max())
	}
	var empty Stream
	a.Merge(&empty)
	if a.N() != 3 {
		t.Error("merging an empty stream changed the count")
	}
}

// Below its capacity the sketch keeps every sample, so quantiles are
// exact — bit-identical to the batch CDF under the same convention.
func TestQuantileSketchExactBelowCap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 100, 1001} {
		samples := make([]float64, n)
		sk := NewQuantileSketch(2000)
		for i := range samples {
			samples[i] = rng.Float64() * 100
			sk.Add(samples[i])
		}
		c := NewCDF(samples)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := sk.Quantile(q), c.Quantile(q); got != want {
				t.Fatalf("n=%d q=%v: sketch %v, CDF %v", n, q, got, want)
			}
		}
	}
}

// Past its capacity the sketch compacts; quantiles stay close in rank.
func TestQuantileSketchApproxAboveCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	samples := make([]float64, n)
	sk := NewQuantileSketch(512)
	for i := range samples {
		samples[i] = rng.NormFloat64()
		sk.Add(samples[i])
	}
	c := NewCDF(samples)
	if sk.N() != n {
		t.Fatalf("N = %d, want %d", sk.N(), n)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est := sk.Quantile(q)
		// Rank of the estimate in the true distribution must be within
		// a few percent of the requested rank.
		if rank := c.At(est); math.Abs(rank-q) > 0.05 {
			t.Errorf("q=%v: estimate %v has true rank %v", q, est, rank)
		}
	}
}

// The sketch is deterministic in the Add sequence, and merging shard
// sketches represents every sample exactly once.
func TestQuantileSketchDeterministicMerge(t *testing.T) {
	feed := func(sk *QuantileSketch, seed int64, n int) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			sk.Add(rng.Float64())
		}
	}
	a1, a2 := NewQuantileSketch(256), NewQuantileSketch(256)
	feed(a1, 1, 10000)
	feed(a2, 1, 10000)
	if a1.Quantile(0.5) != a2.Quantile(0.5) || a1.Quantile(0.9) != a2.Quantile(0.9) {
		t.Error("identical Add sequences produced different sketches")
	}

	merged := NewQuantileSketch(256)
	feed(merged, 2, 5000)
	other := NewQuantileSketch(256)
	feed(other, 3, 5000)
	merged.Merge(other)
	if merged.N() != 10000 {
		t.Fatalf("merged N = %d, want 10000", merged.N())
	}
	if got := merged.Quantile(0.5); math.Abs(got-0.5) > 0.05 {
		t.Errorf("merged median %v far from 0.5", got)
	}
}

// Querying a sketch mid-stream must not perturb its state: the
// canonical (value, weight) point order makes compaction pairing
// independent of when Quantile's internal sort runs.
func TestQuantileSketchQueryDoesNotPerturb(t *testing.T) {
	feed := func(quered bool) *QuantileSketch {
		sk := NewQuantileSketch(64)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 5000; i++ {
			// Coarse values force duplicates so unstable-sort order of
			// equal values would matter without the canonical tie-break.
			sk.Add(float64(rng.Intn(20)))
			if quered && i%37 == 0 {
				sk.Quantile(0.5)
			}
		}
		return sk
	}
	plain, queried := feed(false), feed(true)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if a, b := plain.Quantile(q), queried.Quantile(q); a != b {
			t.Fatalf("q=%v: mid-stream queries changed the sketch (%v vs %v)", q, a, b)
		}
	}
}

func TestDigestSummaryMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 300)
	d := NewDigest()
	for i := range samples {
		samples[i] = rng.Float64() * 42
		d.Add(samples[i])
	}
	if got, want := d.Summary(), Summary(NewCDF(samples)); got != want {
		t.Errorf("digest summary %q != batch summary %q", got, want)
	}
	if (&Digest{Sketch: NewQuantileSketch(0)}).Summary() != "n=0" {
		t.Error("empty digest summary")
	}
}

// The zero value of Digest is usable, like Stream's.
func TestDigestZeroValue(t *testing.T) {
	var d Digest
	if d.Summary() != "n=0" {
		t.Errorf("zero-value summary = %q", d.Summary())
	}
	d.Add(2)
	d.Add(4)
	var e Digest
	e.Merge(&d)
	var empty Digest
	e.Merge(&empty) // nil sketch on the source side
	// Nearest-rank median of {2, 4} is 2 (CDF.Quantile convention).
	if e.Stream.N() != 2 || e.Sketch.Median() != 2 {
		t.Errorf("zero-value digest misbehaved: %s", e.Summary())
	}
}

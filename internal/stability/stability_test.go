package stability

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// chainPair builds two 3-city chains (north, mid, south) meeting at
// north and south.
func chainPair(t *testing.T) *pairsim.System {
	t.Helper()
	mk := func(name string, asn int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		for i, c := range []struct {
			city string
			lat  float64
		}{{"north", 47}, {"mid", 40}, {"south", 33}} {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c.city, Loc: geo.Point{Lat: c.lat, Lon: -100}, Population: 1e6,
			})
		}
		d := geo.DistanceKm(isp.PoPs[0].Loc, isp.PoPs[1].Loc)
		isp.Links = []topology.Link{
			{A: 0, B: 1, Weight: d, LengthKm: d},
			{A: 1, B: 2, Weight: d, LengthKm: d},
		}
		return isp
	}
	pair := topology.NewPair(mk("a", 1), mk("b", 2))
	// Drop the "mid" interconnection so only north/south remain.
	for k, ix := range pair.Interconnections {
		if ix.City == "mid" {
			pair = pair.WithoutInterconnection(k)
			break
		}
	}
	return pairsim.New(pair, nil)
}

func TestConvergesWhenUncontended(t *testing.T) {
	s := chainPair(t)
	flows := []traffic.Flow{{ID: 0, Src: 1, Dst: 1, Size: 0.5}}
	sim := &Simulator{
		S: s, Flows: flows,
		FixedUp: []float64{0, 0}, FixedDown: []float64{0, 0},
		CapUp: []float64{1, 1}, CapDown: []float64{1, 1},
	}
	res := sim.Run([]int{0})
	if res.Outcome != Converged {
		t.Fatalf("outcome = %v, want converged", res.Outcome)
	}
	if res.FinalWorstMEL > 1 {
		t.Errorf("final MEL %.2f with ample capacity", res.FinalWorstMEL)
	}
}

func TestOscillatesUnderConflict(t *testing.T) {
	// The failover example's structure: two flows that B cannot tell
	// apart, where A can only tolerate one of them on the north link —
	// and whichever B pushes north, A pushes back.
	s := chainPair(t)
	// f2 from A's south PoP (exits south free; north crosses all of A),
	// f3 from A's mid PoP; both to B's mid PoP.
	f2 := traffic.Flow{ID: 0, Src: 2, Dst: 1, Size: 0.6}
	f3 := traffic.Flow{ID: 1, Src: 1, Dst: 1, Size: 0.6}
	sim := &Simulator{
		S:     s,
		Flows: []traffic.Flow{f2, f3},
		// A's backbone is partially loaded; B's south entry is tight.
		FixedUp: []float64{0.5, 0.6}, FixedDown: []float64{0, 0},
		CapUp: []float64{1.2, 1.0}, CapDown: []float64{2.0, 1.0},
		// B reacts first, as in the paper's incident; from its local
		// view f2 and f3 are identical, and it keeps picking the one A
		// must push back.
		DownstreamFirst: true,
	}
	// Start from both flows entering south (the early-exit default).
	south := 1
	if s.Pair.Interconnections[1].City != "south" {
		south = 0
	}
	res := sim.Run([]int{south, south})
	if res.Outcome == Converged && res.FinalWorstMEL > 1 {
		t.Fatalf("converged to an overloaded state: MEL %.2f", res.FinalWorstMEL)
	}
	// This instance is engineered to cycle (see examples/failover).
	if res.Outcome != Oscillated {
		t.Fatalf("outcome = %v (rounds %d), want oscillation", res.Outcome, res.Rounds)
	}
	if res.CycleLength == 0 {
		t.Error("oscillation with zero cycle length")
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{Converged, Oscillated, Exhausted} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome should stringify")
	}
}

func TestExhaustedBudget(t *testing.T) {
	s := chainPair(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 2, Dst: 1, Size: 0.6},
		{ID: 1, Src: 1, Dst: 1, Size: 0.6},
	}
	sim := &Simulator{
		S: s, Flows: flows,
		FixedUp: []float64{0.5, 0.6}, FixedDown: []float64{0, 0},
		CapUp: []float64{1.2, 1.0}, CapDown: []float64{2.0, 1.0},
		MaxRounds: 1, // too few rounds to detect the cycle
	}
	res := sim.Run([]int{1, 1})
	if res.Outcome == Converged {
		t.Fatalf("cannot converge in one round here: %+v", res)
	}
}

// Package stability simulates the reactive, unilateral routing dynamics
// that motivate the paper (§1/§2.2): after a failure, each ISP
// repeatedly re-optimizes its own network given the other's last move —
// the process that produced the two-day oscillation incident between
// two large ISPs [paper ref 12]. The simulator detects convergence
// (a fixed point where neither ISP wants to move) and oscillation
// (a revisited state), and measures how much worse the reactive outcome
// is than the negotiated one.
//
// "The joint agreement precludes the possibility of a cycle of influence
// by design" — Nexit terminates by construction; this package quantifies
// how often the default dynamics do not.
package stability

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

// Outcome classifies a reactive simulation.
type Outcome int

// Possible outcomes.
const (
	// Converged: a state was reached where neither ISP improves by
	// moving any single flow.
	Converged Outcome = iota
	// Oscillated: a previously seen state recurred — the dynamics are
	// in a cycle of influence and never settle.
	Oscillated
	// Exhausted: the round budget ran out without either verdict
	// (treated as non-converged by callers).
	Exhausted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Converged:
		return "converged"
	case Oscillated:
		return "oscillated"
	case Exhausted:
		return "exhausted"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Result reports one reactive simulation.
type Result struct {
	Outcome Outcome
	// Rounds until the verdict.
	Rounds int
	// FinalWorstMEL is max(MEL_A, MEL_B) of the final (or cycling)
	// state.
	FinalWorstMEL float64
	// CycleLength is the period of the detected cycle (0 unless
	// Oscillated).
	CycleLength int
}

// Simulator runs best-response dynamics between two ISPs over a set of
// flows: in alternating rounds, one ISP moves the single flow that most
// reduces its own MEL, ignoring the other ISP entirely.
type Simulator struct {
	S                  *pairsim.System
	Flows              []traffic.Flow
	FixedUp, FixedDown []float64
	CapUp, CapDown     []float64
	// MaxRounds bounds the simulation (default 64).
	MaxRounds int
	// DownstreamFirst has the downstream ISP react first (the paper's
	// incident: the downstream shifted traffic with MEDs in response to
	// the upstream's post-failure reroute).
	DownstreamFirst bool
}

// Run simulates from the given initial assignment (copied).
func (sim *Simulator) Run(initial []int) *Result {
	maxRounds := sim.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64
	}
	assign := append([]int(nil), initial...)
	seen := map[string]int{}
	res := &Result{}
	for round := 0; ; round++ {
		keyStr := fmt.Sprint(assign)
		if prev, ok := seen[keyStr]; ok {
			res.Outcome = Oscillated
			res.Rounds = round
			res.CycleLength = round - prev
			res.FinalWorstMEL = sim.worstMEL(assign)
			return res
		}
		seen[keyStr] = round
		if round >= maxRounds {
			res.Outcome = Exhausted
			res.Rounds = round
			res.FinalWorstMEL = sim.worstMEL(assign)
			return res
		}
		actingUpstream := round%2 == 0
		if sim.DownstreamFirst {
			actingUpstream = !actingUpstream
		}
		if !sim.bestResponse(assign, actingUpstream) {
			// Give the other side one chance before declaring a fixed
			// point.
			if !sim.bestResponse(assign, !actingUpstream) {
				res.Outcome = Converged
				res.Rounds = round
				res.FinalWorstMEL = sim.worstMEL(assign)
				return res
			}
		}
	}
}

// bestResponse moves the single flow that most reduces the acting ISP's
// own MEL; returns false if no strictly improving move exists.
func (sim *Simulator) bestResponse(assign []int, upstream bool) bool {
	current := sim.ownMEL(assign, upstream)
	bestFlow, bestAlt := -1, -1
	best := current
	for i, f := range sim.Flows {
		old := assign[f.ID]
		for k := 0; k < sim.S.NumAlternatives(); k++ {
			if k == old {
				continue
			}
			assign[f.ID] = k
			if m := sim.ownMEL(assign, upstream); m < best-1e-12 {
				best, bestFlow, bestAlt = m, i, k
			}
		}
		assign[f.ID] = old
	}
	if bestFlow < 0 {
		return false
	}
	assign[sim.Flows[bestFlow].ID] = bestAlt
	return true
}

// ownMEL computes one ISP's MEL under the assignment.
func (sim *Simulator) ownMEL(assign []int, upstream bool) float64 {
	if upstream {
		load := append([]float64(nil), sim.FixedUp...)
		for _, f := range sim.Flows {
			ix := sim.S.Pair.Interconnections[assign[f.ID]]
			sim.S.Up.AddLoad(load, f.Src, ix.APoP, f.Size)
		}
		return metrics.MEL(load, sim.CapUp)
	}
	load := append([]float64(nil), sim.FixedDown...)
	for _, f := range sim.Flows {
		ix := sim.S.Pair.Interconnections[assign[f.ID]]
		sim.S.Down.AddLoad(load, ix.BPoP, f.Dst, f.Size)
	}
	return metrics.MEL(load, sim.CapDown)
}

// worstMEL is max of the two ISPs' MELs.
func (sim *Simulator) worstMEL(assign []int) float64 {
	up := sim.ownMEL(assign, true)
	if down := sim.ownMEL(assign, false); down > up {
		return down
	}
	return up
}

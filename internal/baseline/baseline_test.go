package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

func linePair(t *testing.T) (*topology.Pair, *pairsim.System) {
	t.Helper()
	mk := func(name string, asn int) *topology.ISP {
		isp := &topology.ISP{Name: name, ASN: asn}
		for i, c := range []string{"west", "mid", "east"} {
			isp.PoPs = append(isp.PoPs, topology.PoP{
				ID: i, City: c, Loc: geo.Point{Lat: 40, Lon: -120 + 20*float64(i)}, Population: 1e6,
			})
		}
		for i := 0; i+1 < 3; i++ {
			d := geo.DistanceKm(isp.PoPs[i].Loc, isp.PoPs[i+1].Loc)
			isp.Links = append(isp.Links, topology.Link{A: i, B: i + 1, Weight: d, LengthKm: d})
		}
		return isp
	}
	pair := topology.NewPair(mk("a", 1), mk("b", 2))
	return pair, pairsim.New(pair, nil)
}

func TestEarlyAndLateExit(t *testing.T) {
	_, s := linePair(t)
	w := traffic.New(s.Pair.A, s.Pair.B, traffic.Identical, nil)
	early := EarlyExit(s, w.Flows)
	late := LateExit(s, w.Flows)
	for _, f := range w.Flows {
		// Interconnections share cities with PoPs, so early exit leaves
		// at the source city and late exit enters at the destination.
		if s.Pair.Interconnections[early[f.ID]].APoP != f.Src {
			t.Errorf("flow %d: early exit not at source", f.ID)
		}
		if s.Pair.Interconnections[late[f.ID]].BPoP != f.Dst {
			t.Errorf("flow %d: late exit not at destination", f.ID)
		}
	}
}

func TestFlowLocalStrategies(t *testing.T) {
	deltasA := [][]float64{{0, 5, -2}, {0, -1, -3}}
	deltasB := [][]float64{{0, -3, -1}, {0, -2, -4}}
	defaults := []int{0, 0}
	rng := rand.New(rand.NewSource(1))

	// FlowBothBetter: item 0 candidates = {0} (alt 1 hurts B, alt 2
	// hurts both); item 1 candidates = {0}.
	got := FlowLocal(FlowBothBetter, deltasA, deltasB, defaults, rng)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("FlowBothBetter = %v, want [0 0]", got)
	}
	// FlowPareto: item 0 candidates = {0, 1} (alt 2 worse for both);
	// item 1 candidates = {0} (both alternatives worse for both).
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		got = FlowLocal(FlowPareto, deltasA, deltasB, defaults, rng)
		counts[got[0]]++
		if got[0] == 2 {
			t.Fatal("FlowPareto picked a jointly-worse alternative")
		}
		if got[1] != 0 {
			t.Fatal("FlowPareto should keep item 1 at default")
		}
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("FlowPareto should randomize among candidates, got %v", counts)
	}
}

func TestDistanceDeltas(t *testing.T) {
	_, s := linePair(t)
	// A->B flow west->east; default = west exit (early).
	// Interconnections sorted: east(0), mid(1), west(2).
	items := []nexit.Item{
		{ID: 0, Flow: traffic.Flow{ID: 0, Src: 0, Dst: 2, Size: 1}, Dir: nexit.AtoB},
		{ID: 1, Flow: traffic.Flow{ID: 0, Src: 2, Dst: 0, Size: 1}, Dir: nexit.BtoA},
	}
	defaults := []int{2, 0}
	dA, dB := DistanceDeltas(s, items, defaults)
	// Item 0: for A, west exit is default (delta 0); east exit costs A
	// the full backbone -> negative; for B east exit saves the full
	// backbone -> positive.
	if dA[0][2] != 0 || dB[0][2] != 0 {
		t.Errorf("default deltas nonzero: %v %v", dA[0], dB[0])
	}
	if dA[0][0] >= 0 || dB[0][0] <= 0 {
		t.Errorf("item 0 east deltas: A %v B %v", dA[0][0], dB[0][0])
	}
	// Item 1 mirrors: B is upstream; its default (east) delta 0; west
	// entry good for A... west alternative k=2: A delta positive.
	if dA[1][2] <= 0 || dB[1][2] >= 0 {
		t.Errorf("item 1 west deltas: A %v B %v", dA[1][2], dB[1][2])
	}
}

func TestUnilateralUpstreamMinimizesOwnLoad(t *testing.T) {
	_, s := linePair(t)
	flows := []traffic.Flow{
		{ID: 0, Src: 0, Dst: 2, Size: 1},
		{ID: 1, Src: 0, Dst: 2, Size: 1},
	}
	nl := len(s.Pair.A.Links)
	loadUp := make([]float64, nl)
	capUp := []float64{1, 1}
	assign := UnilateralUpstream(s, flows, loadUp, capUp)
	// The upstream's cheapest choice is the west exit (own path empty).
	for _, f := range flows {
		if s.Pair.Interconnections[assign[f.ID]].City != "west" {
			t.Errorf("flow %d routed via %s, want west (zero upstream cost)",
				f.ID, s.Pair.Interconnections[assign[f.ID]].City)
		}
	}
	// Input load vector must not be mutated.
	for i, l := range loadUp {
		if l != 0 {
			t.Errorf("loadUp[%d] mutated to %v", i, l)
		}
	}
}

func TestUnilateralSpreadsWhenCongested(t *testing.T) {
	_, s := linePair(t)
	// Two flows from the mid PoP: first goes to the west exit (tie
	// decided by lowest cost; both west and east cost one link), and
	// the second should avoid the now-loaded link.
	flows := []traffic.Flow{
		{ID: 0, Src: 1, Dst: 0, Size: 1},
		{ID: 1, Src: 1, Dst: 0, Size: 1},
	}
	capUp := []float64{1, 1}
	assign := UnilateralUpstream(s, flows, make([]float64, 2), capUp)
	if assign[0] == assign[1] {
		// Both flows on the same exit would double one link's load;
		// spreading keeps max ratio at 1.
		k := assign[0]
		if s.Pair.Interconnections[k].City != "mid" {
			t.Errorf("flows stacked on %s instead of spreading", s.Pair.Interconnections[k].City)
		}
	}
}

func TestGroupNegotiate(t *testing.T) {
	_, s := linePair(t)
	wAB := traffic.New(s.Pair.A, s.Pair.B, traffic.Identical, nil)
	wBA := traffic.New(s.Pair.B, s.Pair.A, traffic.Identical, nil)
	items := nexit.Items(wAB.Flows, wBA.Flows)
	defaults := make([]int, len(items))
	rev := s.Reverse()
	for i, it := range items {
		if it.Dir == nexit.AtoB {
			defaults[i] = s.EarlyExit(it.Flow)
		} else {
			defaults[i] = rev.EarlyExit(it.Flow)
		}
	}
	cfg := nexit.DefaultDistanceConfig()
	evalA := nexit.NewDistanceEvaluator(s, nexit.SideA, 10)
	evalB := nexit.NewDistanceEvaluator(s, nexit.SideB, 10)

	whole, err := nexit.Negotiate(cfg, evalA, evalB, items, defaults, s.NumAlternatives())
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := GroupNegotiate(cfg, evalA, evalB, items, defaults, s.NumAlternatives(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != len(whole.Assign) {
		t.Fatalf("grouped assignment has %d entries, want %d", len(grouped), len(whole.Assign))
	}
	for i, a := range grouped {
		if a < 0 || a >= s.NumAlternatives() {
			t.Errorf("grouped[%d] = %d out of range", i, a)
		}
	}
	if _, err := GroupNegotiate(cfg, evalA, evalB, items, defaults, s.NumAlternatives(), 0); err == nil {
		t.Error("groups=0 accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if FlowPareto.String() != "flow-pareto" || FlowBothBetter.String() != "flow-both-better" {
		t.Error("strategy names wrong")
	}
	if FlowLocalStrategy(7).String() == "" {
		t.Error("unknown strategy should stringify")
	}
}

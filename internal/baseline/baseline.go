// Package baseline implements the non-negotiated routing strategies the
// paper compares against: early-exit (the BGP default), late-exit
// (consistently honored MEDs, Figure 1b), the flow-local strategies of
// §5.1 (flow-Pareto and flow-both-better), unilateral upstream
// optimization (§5.2, Figure 8), and negotiation over separate flow
// groups (§5.1).
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/metrics"
	"repro/internal/nexit"
	"repro/internal/pairsim"
	"repro/internal/traffic"
)

// EarlyExit assigns every flow the upstream's closest interconnection —
// today's default routing.
func EarlyExit(s *pairsim.System, flows []traffic.Flow) pairsim.Assignment {
	assign := assignmentFor(flows)
	for _, f := range flows {
		assign[f.ID] = s.EarlyExit(f)
	}
	return assign
}

// LateExit assigns every flow the interconnection closest to its
// destination — the result of MEDs honored consistently.
func LateExit(s *pairsim.System, flows []traffic.Flow) pairsim.Assignment {
	assign := assignmentFor(flows)
	for _, f := range flows {
		assign[f.ID] = s.LateExit(f)
	}
	return assign
}

func assignmentFor(flows []traffic.Flow) pairsim.Assignment {
	maxID := -1
	for _, f := range flows {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	return pairsim.NewAssignment(maxID + 1)
}

// FlowLocalStrategy selects among the flow-local strategies of §5.1.
type FlowLocalStrategy int

// Flow-local strategies: both "avoid obvious wastage at flow-level" but,
// as the paper shows in Figure 5, neither achieves the potential benefit
// of negotiating across the whole flow set.
const (
	// FlowPareto rejects alternatives that are worse than the default
	// for BOTH ISPs; anything not jointly wasteful is allowed.
	FlowPareto FlowLocalStrategy = iota
	// FlowBothBetter rejects alternatives that are worse for ANY ISP;
	// only alternatives at least as good for both are allowed.
	FlowBothBetter
)

// String names the strategy.
func (s FlowLocalStrategy) String() string {
	if s == FlowPareto {
		return "flow-pareto"
	}
	if s == FlowBothBetter {
		return "flow-both-better"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// FlowLocal applies a flow-local strategy to the negotiation items:
// independently for each flow, it picks uniformly at random among the
// alternatives satisfying the strategy's criterion (relative to the
// item's default). deltasA and deltasB give each ISP's per-item,
// per-alternative metric improvement over the default (positive =
// better), as produced by DistanceDeltas.
func FlowLocal(strategy FlowLocalStrategy, deltasA, deltasB [][]float64, defaults []int, rng *rand.Rand) []int {
	out := make([]int, len(defaults))
	for i := range defaults {
		var candidates []int
		for k := range deltasA[i] {
			dA, dB := deltasA[i][k], deltasB[i][k]
			ok := false
			switch strategy {
			case FlowPareto:
				ok = !(dA < 0 && dB < 0)
			case FlowBothBetter:
				ok = dA >= 0 && dB >= 0
			}
			if ok {
				candidates = append(candidates, k)
			}
		}
		if len(candidates) == 0 {
			out[i] = defaults[i]
			continue
		}
		out[i] = candidates[rng.Intn(len(candidates))]
	}
	return out
}

// DistanceDeltas computes, for each item and alternative, each ISP's
// distance improvement over the item's default alternative (positive =
// shorter path inside that ISP).
func DistanceDeltas(s *pairsim.System, items []nexit.Item, defaults []int) (deltasA, deltasB [][]float64) {
	rev := s.Reverse()
	na := s.NumAlternatives()
	deltasA = make([][]float64, len(items))
	deltasB = make([][]float64, len(items))
	for i, it := range items {
		deltasA[i] = make([]float64, na)
		deltasB[i] = make([]float64, na)
		for k := 0; k < na; k++ {
			var dA, dB, dA0, dB0 float64
			if it.Dir == nexit.AtoB {
				dA, dB = s.UpDistKm(it.Flow, k), s.DownDistKm(it.Flow, k)
				dA0, dB0 = s.UpDistKm(it.Flow, defaults[i]), s.DownDistKm(it.Flow, defaults[i])
			} else {
				dB, dA = rev.UpDistKm(it.Flow, k), rev.DownDistKm(it.Flow, k)
				dB0, dA0 = rev.UpDistKm(it.Flow, defaults[i]), rev.DownDistKm(it.Flow, defaults[i])
			}
			deltasA[i][k] = dA0 - dA
			deltasB[i][k] = dB0 - dB
		}
	}
	return deltasA, deltasB
}

// UnilateralUpstream reroutes the flows purely in the upstream's
// interest: processing flows in descending size, each flow takes the
// interconnection minimizing the worst load-to-capacity ratio along its
// upstream path given the loads accumulated so far. The downstream is
// not consulted — the scenario of the paper's Figure 8.
func UnilateralUpstream(s *pairsim.System, flows []traffic.Flow, loadUp, capUp []float64) pairsim.Assignment {
	assign := assignmentFor(flows)
	load := append([]float64(nil), loadUp...)
	order := append([]traffic.Flow(nil), flows...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Size > order[j].Size })
	for _, f := range order {
		bestK, bestCost := -1, 0.0
		for k := 0; k < s.NumAlternatives(); k++ {
			links := s.Up.PathLinks(f.Src, s.Pair.Interconnections[k].APoP)
			cost := metrics.MaxIncreaseOnPath(load, capUp, links, f.Size)
			if bestK == -1 || cost < bestCost {
				bestK, bestCost = k, cost
			}
		}
		assign[f.ID] = bestK
		s.Up.AddLoad(load, f.Src, s.Pair.Interconnections[bestK].APoP, f.Size)
	}
	return assign
}

// GroupNegotiate splits the items into the given number of contiguous
// groups and negotiates each group separately with fresh engine state,
// as in the paper's §5.1 ablation ("breaking down the set of flows into
// several groups and negotiating within each group separately ... does
// not provide as much benefit as negotiating over the entire set").
// Evaluators are shared across groups, so stateful (bandwidth)
// evaluators carry committed load forward.
func GroupNegotiate(cfg nexit.Config, evalA, evalB nexit.Evaluator, items []nexit.Item, defaults []int, numAlts, groups int) ([]int, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("baseline: groups must be positive")
	}
	assign := append([]int(nil), defaults...)
	size := (len(items) + groups - 1) / groups
	for start := 0; start < len(items); start += size {
		end := start + size
		if end > len(items) {
			end = len(items)
		}
		sub := make([]nexit.Item, end-start)
		subDef := make([]int, end-start)
		for i := start; i < end; i++ {
			sub[i-start] = nexit.Item{ID: i - start, Flow: items[i].Flow, Dir: items[i].Dir}
			subDef[i-start] = defaults[i]
		}
		res, err := nexit.Negotiate(cfg, evalA, evalB, sub, subDef, numAlts)
		if err != nil {
			return nil, err
		}
		for i := range sub {
			assign[start+i] = res.Assign[i]
		}
	}
	return assign, nil
}

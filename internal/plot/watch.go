package plot

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/agentd"
	"repro/internal/mesh"
)

// DecodeVars extracts agentd status snapshots from an expvar
// /debug/vars JSON document (nexitagent's -debug-addr). Any top-level
// value that carries the agentd.Status shape — an object with "name",
// "peers" and "sessions_initiated" keys — is taken as one agent;
// everything else (memstats, cmdline, foreign expvars) is skipped.
// Snapshots come back sorted by agent name so repeated polls render
// stably.
func DecodeVars(data []byte) ([]agentd.Status, error) {
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(data, &vars); err != nil {
		return nil, fmt.Errorf("plot: /debug/vars is not a JSON object: %w", err)
	}
	var out []agentd.Status
	for _, raw := range vars {
		var probe map[string]json.RawMessage
		if json.Unmarshal(raw, &probe) != nil {
			continue
		}
		if _, ok := probe["name"]; !ok {
			continue
		}
		if _, ok := probe["peers"]; !ok {
			continue
		}
		if _, ok := probe["sessions_initiated"]; !ok {
			continue
		}
		var st agentd.Status
		if err := json.Unmarshal(raw, &st); err != nil || st.Name == "" {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FormatProgress renders one watch-mode line from a mesh-wide rollup:
// the frontier, the health counters, and the latency profile. rate is
// completed sessions per second since the previous poll (negative:
// unknown, first poll).
func FormatProgress(pr mesh.Progress, rate float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "agents=%d pairs=%d epochs=%d", pr.Agents, pr.Pairs, pr.EpochMin)
	if pr.EpochMax != pr.EpochMin {
		fmt.Fprintf(&b, "..%d", pr.EpochMax)
	}
	fmt.Fprintf(&b, " sessions=%d active=%d failed=%d resyncs=%d retries=%d",
		pr.SessionsInitiated, pr.SessionsActive, pr.SessionsFailed, pr.Resyncs, pr.DialRetries)
	if rate >= 0 {
		fmt.Fprintf(&b, " rate=%.1f/s", rate)
	}
	if pr.Latency.Count > 0 {
		fmt.Fprintf(&b, " p50=%.1fms p90=%.1fms",
			1000*pr.Latency.Quantile(0.5), 1000*pr.Latency.Quantile(0.9))
	}
	return b.String()
}

// SessionRate differences two rollups taken dt seconds apart into a
// sessions-per-second figure (initiated side, so each pair session
// counts once). Returns -1 when the window is degenerate.
func SessionRate(prev, cur mesh.Progress, dtSeconds float64) float64 {
	if dtSeconds <= 0 || prev.Agents == 0 {
		return -1
	}
	d := cur.SessionsInitiated - prev.SessionsInitiated
	if d < 0 { // an agent restarted and its counters reset
		return -1
	}
	return float64(d) / dtSeconds
}

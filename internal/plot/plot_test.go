package plot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/stats"
	"repro/internal/traffic"
)

func testDataset(t *testing.T) *experiments.Dataset {
	t.Helper()
	cfg := gen.DefaultConfig()
	cfg.NumISPs = 12
	ds, err := experiments.Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testOpts() (experiments.Options, experiments.BandwidthOptions) {
	// MaxPairs keeps every per-experiment digest under the
	// QuantileSketch capacity (4096 points): the byte-parity contract
	// these tests pin holds while sketches are uncompacted, and the
	// flow-level experiment pools thousands of flow samples per pair.
	opt := experiments.Options{MaxPairs: 4, Seed: 1, Workers: 2}
	return opt, experiments.BandwidthOptions{Options: opt, Workload: traffic.Gravity, MaxFailures: 8}
}

// streamLines replays runStreaming's emission for the three figure
// experiments: one envelope per record, one summary line (with
// digests) per experiment — the NDJSON a `nexitsim -stream -fig all`
// run writes for those experiments.
func streamLines(t *testing.T, ds *experiments.Dataset, opt experiments.Options, bopt experiments.BandwidthOptions) [][]byte {
	t.Helper()
	type envelope struct {
		Experiment string `json:"experiment"`
		Index      int    `json:"index"`
		Data       any    `json:"data"`
	}
	type summary struct {
		Experiment string                   `json:"experiment"`
		Results    int                      `json:"results"`
		Series     map[string]string        `json:"series"`
		Digests    map[string]*stats.Digest `json:"digests,omitempty"`
	}
	var lines [][]byte
	emit := func(v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, b)
	}
	emitSummary := func(exp string, n int, digests map[string]*stats.Digest) {
		s := summary{Experiment: exp, Results: n, Series: map[string]string{}, Digests: digests}
		for name, d := range digests {
			s.Series[name] = d.Summary()
		}
		emit(s)
	}

	neg, opt2 := stats.NewDigest(), stats.NewDigest()
	n := 0
	err := experiments.DistanceStream(ds, opt, func(idx int, r *experiments.DistancePairResult) error {
		neg.Add(r.GainNeg)
		opt2.Add(r.GainOpt)
		n++
		emit(envelope{Experiment: "distance", Index: idx, Data: r})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	emitSummary("distance", n, map[string]*stats.Digest{"gain_negotiated": neg, "gain_optimal": opt2})

	upNeg, downNeg := stats.NewDigest(), stats.NewDigest()
	cases, err := experiments.BandwidthStream(ds, bopt, func(idx int, r *experiments.BandwidthCaseResult) error {
		upNeg.Add(r.UpNeg)
		downNeg.Add(r.DownNeg)
		emit(envelope{Experiment: "bandwidth", Index: idx, Data: r})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	emitSummary("bandwidth", cases, map[string]*stats.Digest{"up_negotiated": upNeg, "down_negotiated": downNeg})

	truthful, cheat := stats.NewDigest(), stats.NewDigest()
	n = 0
	err = experiments.DistanceCheatStream(ds, opt, func(idx int, r *experiments.CheatPairResult) error {
		truthful.Add(r.TotalTruthful)
		cheat.Add(r.TotalCheat)
		n++
		emit(envelope{Experiment: "distance-cheat", Index: idx, Data: r})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	emitSummary("distance-cheat", n, map[string]*stats.Digest{"total_truthful": truthful, "total_cheat": cheat})
	return lines
}

// batchFigures renders figures 4a through 11 exactly as cmd/nexitsim's
// figure mode prints them (same sections, tables, summary and
// decoration lines) from the batch experiment results.
func batchFigures(t *testing.T, ds *experiments.Dataset, opt experiments.Options, bopt experiments.BandwidthOptions, n int) string {
	t.Helper()
	dres, err := experiments.Distance(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := experiments.Bandwidth(ds, bopt)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := experiments.DistanceCheat(ds, opt)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	section := func(title string) { fmt.Fprintf(&b, "\n=== %s ===\n", title) }
	printSeries := func(xLabel string, min, max float64, curves map[string]*stats.CDF, order []string) {
		b.WriteString(stats.FormatSeries(xLabel, min, max, n, curves, order))
		for _, name := range order {
			fmt.Fprintf(&b, "  %s: %s\n", name, stats.Summary(curves[name]))
		}
	}

	section("Figure 4a — distance: total gain over default routing (CDF of ISP pairs)")
	fmt.Fprintf(&b, "pairs: %d\n", dres.Pairs)
	printSeries("% gain", 0, 15, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(dres.PairGainNeg),
		"optimal":    stats.NewCDF(dres.PairGainOpt),
	}, []string{"negotiated", "optimal"})

	section("Figure 4b — distance: individual ISP gain (CDF of ISPs)")
	printSeries("% gain", -20, 40, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(dres.IndGainNeg),
		"optimal":    stats.NewCDF(dres.IndGainOpt),
	}, []string{"negotiated", "optimal"})
	losers := 0
	for _, g := range dres.IndGainOpt {
		if g < 0 {
			losers++
		}
	}
	fmt.Fprintf(&b, "ISPs losing under global optimum: %d/%d (paper: roughly a third)\n",
		losers, len(dres.IndGainOpt))

	section("Figure 5 — flow-local strategies: total gain (CDF of ISP pairs)")
	printSeries("% gain", 0, 15, map[string]*stats.CDF{
		"flow-both-better": stats.NewCDF(dres.PairGainBothBetter),
		"flow-Pareto":      stats.NewCDF(dres.PairGainPareto),
	}, []string{"flow-both-better", "flow-Pareto"})

	section("Figure 6 — distance: per-flow gain (CDF of flows, all pairs pooled)")
	printSeries("% gain", 0, 60, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(dres.FlowGainNeg),
		"optimal":    stats.NewCDF(dres.FlowGainOpt),
	}, []string{"negotiated", "optimal"})
	negCDF := stats.NewCDF(dres.FlowGainNeg)
	fmt.Fprintf(&b, "flows gaining >20%%: %.1f%%   >50%%: %.1f%% (paper: 7%% and 1%%)\n",
		100*negCDF.FractionAbove(20), 100*negCDF.FractionAbove(50))

	section("Figure 7 — bandwidth: MEL relative to optimal after a failure (CDF of failure cases)")
	fmt.Fprintf(&b, "failure cases: %d\n", bres.FailureCases)
	fmt.Fprintln(&b, "upstream ISP:")
	printSeries("load ratio", 0, 6, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(bres.UpNeg),
		"default":    stats.NewCDF(bres.UpDef),
	}, []string{"negotiated", "default"})
	fmt.Fprintln(&b, "downstream ISP:")
	printSeries("load ratio", 0, 6, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(bres.DownNeg),
		"default":    stats.NewCDF(bres.DownDef),
	}, []string{"negotiated", "default"})

	section("Figure 8 — unilateral upstream optimization: downstream MEL vs default (CDF)")
	printSeries("load ratio", 1, 6, map[string]*stats.CDF{
		"upstream-optimized": stats.NewCDF(bres.UnilateralDownRatio),
	}, []string{"upstream-optimized"})
	hurt := stats.NewCDF(bres.UnilateralDownRatio).FractionAbove(2)
	fmt.Fprintf(&b, "cases where downstream MEL more than doubles: %.1f%% (paper: ~10%%)\n", 100*hurt)

	section("Figure 9 — diverse criteria: upstream bandwidth vs downstream distance")
	fmt.Fprintln(&b, "upstream ISP (MEL ratio to optimal):")
	printSeries("load ratio", 0, 6, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(bres.DiverseUpNeg),
		"default":    stats.NewCDF(bres.DiverseUpDef),
	}, []string{"negotiated", "default"})
	fmt.Fprintln(&b, "downstream ISP (distance gain over default):")
	printSeries("% gain", 0, 80, map[string]*stats.CDF{
		"negotiated": stats.NewCDF(bres.DiverseDownGain),
	}, []string{"negotiated"})

	section("Figure 10a — cheating (distance): total gain (CDF of ISP pairs)")
	fmt.Fprintf(&b, "pairs: %d\n", cres.Pairs)
	printSeries("% gain", 0, 15, map[string]*stats.CDF{
		"both truthful": stats.NewCDF(cres.TotalTruthful),
		"one cheater":   stats.NewCDF(cres.TotalCheat),
	}, []string{"both truthful", "one cheater"})
	section("Figure 10b — cheating (distance): individual gain (CDF of ISPs)")
	printSeries("% gain", 0, 15, map[string]*stats.CDF{
		"both truthful": stats.NewCDF(cres.IndTruthful),
		"cheater":       stats.NewCDF(cres.IndCheater),
		"truthful":      stats.NewCDF(cres.IndVictim),
	}, []string{"both truthful", "cheater", "truthful"})
	delta := stats.NewCDF(cres.CheaterDelta)
	fmt.Fprintf(&b, "paired effect of cheating on the cheater itself: mean %+.2f%%, hurts in %.0f%% of pairs\n",
		delta.Mean(), 100*delta.At(-1e-9))

	section("Figure 11 — cheating (bandwidth): MEL ratio to optimal (CDF of failure cases)")
	fmt.Fprintln(&b, "upstream ISP (the cheater):")
	printSeries("load ratio", 0, 6, map[string]*stats.CDF{
		"both truthful": stats.NewCDF(bres.UpNeg),
		"one cheater":   stats.NewCDF(bres.CheatUpNeg),
		"default":       stats.NewCDF(bres.UpDef),
	}, []string{"both truthful", "one cheater", "default"})
	fmt.Fprintln(&b, "downstream ISP (truthful):")
	printSeries("load ratio", 0, 6, map[string]*stats.CDF{
		"both truthful": stats.NewCDF(bres.DownNeg),
		"one cheater":   stats.NewCDF(bres.CheatDownNeg),
		"default":       stats.NewCDF(bres.DownDef),
	}, []string{"both truthful", "one cheater", "default"})
	return b.String()
}

func render(t *testing.T, f *Fold) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// diffLine fails with the first line where two renderings diverge —
// far more readable than dumping both documents.
func diffLine(t *testing.T, what, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			t.Fatalf("%s: line %d diverges:\n  got  %q\n  want %q", what, i+1, g[i], w[i])
		}
	}
	t.Fatalf("%s: lengths diverge: got %d lines, want %d", what, len(g), len(w))
}

// The fold must reproduce the batch figure sections byte for byte:
// same tables (GridCDF == CDF.Series on the fixed axes), same summary
// lines (digest sketches uncompacted at this scale), same decoration
// lines (integer counts through the same arithmetic).
func TestFoldReproducesBatchFigures(t *testing.T) {
	ds := testDataset(t)
	opt, bopt := testOpts()
	const points = 16

	fold := NewFold(points)
	for _, line := range streamLines(t, ds, opt, bopt) {
		// Records only: the batch reference has no summaries section.
		if bytes.Contains(line, []byte(`"data"`)) {
			if err := fold.AddLine(line); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := render(t, fold)
	want := batchFigures(t, ds, opt, bopt, points)
	diffLine(t, "fold vs batch", got, want)
}

// Any line-split of a run folds to the same bytes as the whole run,
// shards fed in any order — the CI merge-parity contract.
func TestFoldShardParity(t *testing.T) {
	ds := testDataset(t)
	opt, bopt := testOpts()
	lines := streamLines(t, ds, opt, bopt)

	whole := NewFold(16)
	for _, line := range lines {
		if err := whole.AddLine(line); err != nil {
			t.Fatal(err)
		}
	}
	wantOut := render(t, whole)
	if !strings.Contains(wantOut, "Streaming summaries") {
		t.Fatal("no summaries section; summary lines were not folded")
	}

	// Interleave NR%2, then feed the odd shard first.
	sharded := NewFold(16)
	for pass, want := range []int{1, 0} {
		_ = pass
		for i, line := range lines {
			if i%2 != want {
				continue
			}
			if err := sharded.AddLine(line); err != nil {
				t.Fatal(err)
			}
		}
	}
	diffLine(t, "sharded vs whole", render(t, sharded), wantOut)
}

// Lines from unknown experiments are skipped and counted, never fatal.
func TestFoldUnknownExperiment(t *testing.T) {
	f := NewFold(8)
	if err := f.AddLine([]byte(`{"experiment":"hyperspace","index":0,"data":{"x":1}}`)); err != nil {
		t.Fatalf("unknown experiment should not error: %v", err)
	}
	if f.Unknown != 1 {
		t.Fatalf("Unknown = %d, want 1", f.Unknown)
	}
	if err := f.AddLine([]byte(`   `)); err != nil {
		t.Fatalf("blank line should fold to nothing: %v", err)
	}
	if err := f.AddLine([]byte(`{broken`)); err == nil {
		t.Fatal("corrupt JSON must error")
	}
}

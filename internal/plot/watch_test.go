package plot

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/agentd"
	"repro/internal/mesh"
	"repro/internal/telemetry"
)

// DecodeVars must pick the agentd statuses out of a /debug/vars
// document and leave the stock expvars (memstats, cmdline) and foreign
// entries alone.
func TestDecodeVars(t *testing.T) {
	lat := telemetry.NewHistogram(nil)
	lat.Observe(0.002)
	snap := lat.Snapshot()
	st := agentd.Status{
		Name:              "isp002",
		SessionsInitiated: 7,
		Peers:             []agentd.PeerStatus{{Name: "isp003", Initiator: true, Epochs: 4, Latency: &snap}},
	}
	st2 := st
	st2.Name = "isp001"
	doc := map[string]any{
		"cmdline":       []string{"nexitagent", "-isp", "2"},
		"memstats":      map[string]any{"Alloc": 12345, "Frees": 6},
		"agentd.isp002": st,
		"agentd.isp001": st2,
		"lookalike":     map[string]any{"name": "x"}, // no peers/sessions keys
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVars(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "isp001" || got[1].Name != "isp002" {
		t.Fatalf("decoded %+v, want isp001 and isp002 in order", got)
	}
	if got[1].SessionsInitiated != 7 || got[1].Peers[0].Latency == nil || got[1].Peers[0].Latency.Count != 1 {
		t.Fatalf("status fields lost in transit: %+v", got[1])
	}

	if _, err := DecodeVars([]byte(`[]`)); err == nil {
		t.Fatal("a non-object document must error")
	}
}

// The progress line carries the frontier, the health counters, and the
// latency profile; the rate only when a previous poll exists.
func TestFormatProgressAndRate(t *testing.T) {
	lat := telemetry.NewHistogram(nil)
	lat.Observe(0.004)
	lat.Observe(0.004)

	pr := mesh.Progress{
		Agents: 3, Pairs: 2, EpochMin: 3, EpochMax: 4,
		SessionsInitiated: 8, SessionsFailed: 1, Resyncs: 2, DialRetries: 5,
		Latency: lat.Snapshot(),
	}
	line := FormatProgress(pr, -1)
	for _, want := range []string{"agents=3", "pairs=2", "epochs=3..4", "sessions=8", "failed=1", "resyncs=2", "retries=5", "p50=", "p90="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "rate=") {
		t.Errorf("first poll must not claim a rate: %q", line)
	}
	pr.EpochMax = 3
	if line := FormatProgress(pr, 4); !strings.Contains(line, "epochs=3 ") || !strings.Contains(line, "rate=4.0/s") {
		t.Errorf("lockstep line wrong: %q", line)
	}

	prev := mesh.Progress{Agents: 3, SessionsInitiated: 2}
	cur := mesh.Progress{Agents: 3, SessionsInitiated: 8}
	if r := SessionRate(prev, cur, 2); r != 3 {
		t.Errorf("rate = %v, want 3", r)
	}
	if r := SessionRate(mesh.Progress{}, cur, 2); r != -1 {
		t.Errorf("first-poll rate = %v, want -1", r)
	}
	if r := SessionRate(cur, prev, 2); r != -1 {
		t.Errorf("counter-reset rate = %v, want -1", r)
	}
}

// Package plot folds nexitsim -stream NDJSON back into the paper's
// figure tables, and renders live mesh progress from agentd status
// snapshots — the analysis half of the streaming pipeline (DESIGN.md
// §10). The fold is constant-memory: every curve is an online
// fixed-grid CDF (the figure axes are fixed per panel) plus a digest
// for the per-curve summary line, so a fold over a million records
// holds the same few kilobytes as a fold over ten.
//
// Because GridCDF counts are integers and digest sketches canonicalize
// before rendering, folding shards of a run in any order produces the
// same bytes as folding the whole run — the merge-parity contract CI
// pins. While digest sketches are uncompacted (n <= 4096 per curve)
// the summary lines also match the batch nexitsim figure mode
// byte-for-byte.
package plot

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// curve pairs the two constant-memory views of one figure line: the
// grid CDF renders the table, the digest renders the summary line.
type curve struct {
	grid *stats.GridCDF
	dig  *stats.Digest
}

// Series renders the curve's table points; it satisfies
// stats.SeriesSource so stats.FormatSeries accepts curves directly.
func (c *curve) Series(min, max float64, n int) []stats.Point {
	return c.grid.Series(min, max, n)
}

func (c *curve) add(v float64) {
	c.grid.Add(v)
	c.dig.Add(v)
}

// summaryAgg merges one experiment's streamed summary lines across
// shards: digests merge exactly; the legacy series strings only
// survive when a single shard contributed them.
type summaryAgg struct {
	results int
	lines   int
	digests map[string]*stats.Digest
	raw     map[string]string
}

// Fold is the streaming accumulator. Feed it NDJSON lines (records and
// summary lines, from one run or from many shards of the same run) via
// AddLine or ReadFrom, then Render the figure tables.
type Fold struct {
	points int
	curves map[string]*curve

	distPairs  int
	indLosers  int
	indN       int
	flowN      int
	flowLE20   int
	flowLE50   int
	bwCases    int
	uniLE2     int
	cheatPairs int
	deltaLEneg int
	deltaDig   *stats.Digest

	summaries map[string]*summaryAgg
	// Unknown counts lines for experiments this fold does not
	// understand (newer producers); they are skipped, not fatal.
	Unknown int
}

// NewFold returns an empty fold rendering n-point series (nexitsim's
// -points; the grids are built per-axis on first use, so n is fixed
// for the fold's lifetime).
func NewFold(n int) *Fold {
	return &Fold{
		points:    n,
		curves:    map[string]*curve{},
		deltaDig:  stats.NewDigest(),
		summaries: map[string]*summaryAgg{},
	}
}

func (f *Fold) curve(key string, min, max float64) *curve {
	c, ok := f.curves[key]
	if !ok {
		c = &curve{grid: stats.NewGridCDF(min, max, f.points), dig: stats.NewDigest()}
		f.curves[key] = c
	}
	return c
}

// ndjsonLine is the superset of the two line shapes nexitsim emits: a
// record envelope (Data set) or an experiment summary (Data absent).
type ndjsonLine struct {
	Experiment string                   `json:"experiment"`
	Data       json.RawMessage          `json:"data"`
	Results    int                      `json:"results"`
	Series     map[string]string        `json:"series"`
	Digests    map[string]*stats.Digest `json:"digests"`
}

// ReadLines folds every NDJSON line of r. Call once per shard file;
// order across shards does not matter.
func (f *Fold) ReadLines(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := f.AddLine(sc.Bytes()); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// AddLine folds one NDJSON line (a record envelope or a summary line).
// Blank lines are ignored.
func (f *Fold) AddLine(line []byte) error {
	trimmed := false
	for _, b := range line {
		if b != ' ' && b != '\t' && b != '\r' {
			trimmed = true
			break
		}
	}
	if !trimmed {
		return nil
	}
	var l ndjsonLine
	if err := json.Unmarshal(line, &l); err != nil {
		return err
	}
	if l.Data == nil {
		f.addSummary(&l)
		return nil
	}
	switch l.Experiment {
	case "distance":
		var r experiments.DistancePairResult
		if err := json.Unmarshal(l.Data, &r); err != nil {
			return err
		}
		f.addDistance(&r)
	case "bandwidth":
		var r experiments.BandwidthCaseResult
		if err := json.Unmarshal(l.Data, &r); err != nil {
			return err
		}
		f.addBandwidth(&r)
	case "distance-cheat":
		var r experiments.CheatPairResult
		if err := json.Unmarshal(l.Data, &r); err != nil {
			return err
		}
		f.addCheat(&r)
	case "destination", "scalability", "stability":
		// These records only feed their summary digests today; the
		// figure-mode extras have no fixed-axis panels to rebuild.
	default:
		f.Unknown++
	}
	return nil
}

func (f *Fold) addSummary(l *ndjsonLine) {
	agg, ok := f.summaries[l.Experiment]
	if !ok {
		agg = &summaryAgg{digests: map[string]*stats.Digest{}, raw: map[string]string{}}
		f.summaries[l.Experiment] = agg
	}
	agg.results += l.Results
	agg.lines++
	for name, d := range l.Digests {
		if have, ok := agg.digests[name]; ok {
			have.Merge(d)
		} else {
			agg.digests[name] = d
		}
	}
	for name, s := range l.Series {
		agg.raw[name] = s
	}
}

func (f *Fold) addDistance(r *experiments.DistancePairResult) {
	f.distPairs++
	f.curve("4a.negotiated", 0, 15).add(r.GainNeg)
	f.curve("4a.optimal", 0, 15).add(r.GainOpt)
	ind := f.curve("4b.negotiated", -20, 40)
	ind.add(r.IndNegA)
	ind.add(r.IndNegB)
	opt := f.curve("4b.optimal", -20, 40)
	for _, g := range [2]float64{r.IndOptA, r.IndOptB} {
		opt.add(g)
		f.indN++
		if g < 0 {
			f.indLosers++
		}
	}
	f.curve("5.both-better", 0, 15).add(r.GainBothBetter)
	f.curve("5.pareto", 0, 15).add(r.GainPareto)
	flowNeg := f.curve("6.negotiated", 0, 60)
	for _, g := range r.FlowGainNeg {
		flowNeg.add(g)
		f.flowN++
		if g <= 20 {
			f.flowLE20++
		}
		if g <= 50 {
			f.flowLE50++
		}
	}
	flowOpt := f.curve("6.optimal", 0, 60)
	for _, g := range r.FlowGainOpt {
		flowOpt.add(g)
	}
}

func (f *Fold) addBandwidth(r *experiments.BandwidthCaseResult) {
	f.bwCases++
	f.curve("7.up.negotiated", 0, 6).add(r.UpNeg)
	f.curve("7.up.default", 0, 6).add(r.UpDef)
	f.curve("7.down.negotiated", 0, 6).add(r.DownNeg)
	f.curve("7.down.default", 0, 6).add(r.DownDef)
	f.curve("8.unilateral", 1, 6).add(r.UnilateralDownRatio)
	if r.UnilateralDownRatio <= 2 {
		f.uniLE2++
	}
	f.curve("9.up.negotiated", 0, 6).add(r.DiverseUpNeg)
	f.curve("9.up.default", 0, 6).add(r.UpDef)
	f.curve("9.down.gain", 0, 80).add(r.DiverseDownGain)
	f.curve("11.up.cheat", 0, 6).add(r.CheatUp)
	f.curve("11.down.cheat", 0, 6).add(r.CheatDown)
}

func (f *Fold) addCheat(r *experiments.CheatPairResult) {
	f.cheatPairs++
	f.curve("10a.truthful", 0, 15).add(r.TotalTruthful)
	f.curve("10a.cheat", 0, 15).add(r.TotalCheat)
	ind := f.curve("10b.truthful", 0, 15)
	ind.add(r.IndTruthfulA)
	ind.add(r.IndTruthfulB)
	f.curve("10b.cheater", 0, 15).add(r.IndCheater)
	f.curve("10b.victim", 0, 15).add(r.IndVictim)
	f.deltaDig.Add(r.CheaterDelta)
	if r.CheaterDelta <= -1e-9 {
		f.deltaLEneg++
	}
}

// frac reproduces stats.CDF.At's arithmetic from an online count, so
// the decoration lines under the tables match batch output bit for
// bit: At(x) = count(<= x)/n, FractionAbove = 1 - At.
func frac(le, n int) float64 { return float64(le) / float64(n) }

// Render writes the figure sections rebuilt from the folded records —
// the same bytes nexitsim's figure mode prints for the panels the
// stream carries — followed by the merged per-experiment summary
// lines. Sections for experiments absent from the input are omitted.
func (f *Fold) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	section := func(title string) { fmt.Fprintf(bw, "\n=== %s ===\n", title) }
	series := func(xLabel string, min, max float64, keys map[string]string, order []string) {
		curves := map[string]*curve{}
		for name, key := range keys {
			curves[name] = f.curve(key, min, max)
		}
		fmt.Fprint(bw, stats.FormatSeries(xLabel, min, max, f.points, curves, order))
		for _, name := range order {
			fmt.Fprintf(bw, "  %s: %s\n", name, curves[name].dig.StableSummary())
		}
	}

	if f.distPairs > 0 {
		section("Figure 4a — distance: total gain over default routing (CDF of ISP pairs)")
		fmt.Fprintf(bw, "pairs: %d\n", f.distPairs)
		series("% gain", 0, 15, map[string]string{
			"negotiated": "4a.negotiated", "optimal": "4a.optimal",
		}, []string{"negotiated", "optimal"})

		section("Figure 4b — distance: individual ISP gain (CDF of ISPs)")
		series("% gain", -20, 40, map[string]string{
			"negotiated": "4b.negotiated", "optimal": "4b.optimal",
		}, []string{"negotiated", "optimal"})
		fmt.Fprintf(bw, "ISPs losing under global optimum: %d/%d (paper: roughly a third)\n",
			f.indLosers, f.indN)

		section("Figure 5 — flow-local strategies: total gain (CDF of ISP pairs)")
		series("% gain", 0, 15, map[string]string{
			"flow-both-better": "5.both-better", "flow-Pareto": "5.pareto",
		}, []string{"flow-both-better", "flow-Pareto"})

		section("Figure 6 — distance: per-flow gain (CDF of flows, all pairs pooled)")
		series("% gain", 0, 60, map[string]string{
			"negotiated": "6.negotiated", "optimal": "6.optimal",
		}, []string{"negotiated", "optimal"})
		fmt.Fprintf(bw, "flows gaining >20%%: %.1f%%   >50%%: %.1f%% (paper: 7%% and 1%%)\n",
			100*(1-frac(f.flowLE20, f.flowN)), 100*(1-frac(f.flowLE50, f.flowN)))
	}
	if f.bwCases > 0 {
		section("Figure 7 — bandwidth: MEL relative to optimal after a failure (CDF of failure cases)")
		fmt.Fprintf(bw, "failure cases: %d\n", f.bwCases)
		fmt.Fprintln(bw, "upstream ISP:")
		series("load ratio", 0, 6, map[string]string{
			"negotiated": "7.up.negotiated", "default": "7.up.default",
		}, []string{"negotiated", "default"})
		fmt.Fprintln(bw, "downstream ISP:")
		series("load ratio", 0, 6, map[string]string{
			"negotiated": "7.down.negotiated", "default": "7.down.default",
		}, []string{"negotiated", "default"})

		section("Figure 8 — unilateral upstream optimization: downstream MEL vs default (CDF)")
		series("load ratio", 1, 6, map[string]string{
			"upstream-optimized": "8.unilateral",
		}, []string{"upstream-optimized"})
		fmt.Fprintf(bw, "cases where downstream MEL more than doubles: %.1f%% (paper: ~10%%)\n",
			100*(1-frac(f.uniLE2, f.bwCases)))

		section("Figure 9 — diverse criteria: upstream bandwidth vs downstream distance")
		fmt.Fprintln(bw, "upstream ISP (MEL ratio to optimal):")
		series("load ratio", 0, 6, map[string]string{
			"negotiated": "9.up.negotiated", "default": "9.up.default",
		}, []string{"negotiated", "default"})
		fmt.Fprintln(bw, "downstream ISP (distance gain over default):")
		series("% gain", 0, 80, map[string]string{
			"negotiated": "9.down.gain",
		}, []string{"negotiated"})
	}
	if f.cheatPairs > 0 {
		section("Figure 10a — cheating (distance): total gain (CDF of ISP pairs)")
		fmt.Fprintf(bw, "pairs: %d\n", f.cheatPairs)
		series("% gain", 0, 15, map[string]string{
			"both truthful": "10a.truthful", "one cheater": "10a.cheat",
		}, []string{"both truthful", "one cheater"})
		section("Figure 10b — cheating (distance): individual gain (CDF of ISPs)")
		series("% gain", 0, 15, map[string]string{
			"both truthful": "10b.truthful", "cheater": "10b.cheater", "truthful": "10b.victim",
		}, []string{"both truthful", "cheater", "truthful"})
		fmt.Fprintf(bw, "paired effect of cheating on the cheater itself: mean %+.2f%%, hurts in %.0f%% of pairs\n",
			f.deltaDig.Sketch.Mean(), 100*frac(f.deltaLEneg, f.cheatPairs))
	}
	if f.bwCases > 0 {
		section("Figure 11 — cheating (bandwidth): MEL ratio to optimal (CDF of failure cases)")
		fmt.Fprintln(bw, "upstream ISP (the cheater):")
		series("load ratio", 0, 6, map[string]string{
			"both truthful": "7.up.negotiated", "one cheater": "11.up.cheat", "default": "7.up.default",
		}, []string{"both truthful", "one cheater", "default"})
		fmt.Fprintln(bw, "downstream ISP (truthful):")
		series("load ratio", 0, 6, map[string]string{
			"both truthful": "7.down.negotiated", "one cheater": "11.down.cheat", "default": "7.down.default",
		}, []string{"both truthful", "one cheater", "default"})
	}

	if len(f.summaries) > 0 {
		section("Streaming summaries (merged across shards)")
		for _, exp := range summaryOrder(f.summaries) {
			agg := f.summaries[exp]
			fmt.Fprintf(bw, "%s: %d results\n", exp, agg.results)
			for _, name := range sortedKeys(agg.digests, agg.raw) {
				if d, ok := agg.digests[name]; ok {
					fmt.Fprintf(bw, "  %s: %s\n", name, d.StableSummary())
				} else if agg.lines == 1 {
					fmt.Fprintf(bw, "  %s: %s\n", name, agg.raw[name])
				} else {
					// Legacy shards without digests cannot merge; say so
					// instead of printing one shard's numbers as the whole.
					fmt.Fprintf(bw, "  %s: (unmergeable: shards carry no digests)\n", name)
				}
			}
		}
	}
	return bw.Flush()
}

// summaryOrder lists present experiments in nexitsim's emission order,
// then any strangers alphabetically.
func summaryOrder(m map[string]*summaryAgg) []string {
	known := []string{"distance", "bandwidth", "distance-cheat", "destination", "scalability", "stability"}
	var out []string
	seen := map[string]bool{}
	for _, k := range known {
		if _, ok := m[k]; ok {
			out = append(out, k)
			seen[k] = true
		}
	}
	var rest []string
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func sortedKeys(digests map[string]*stats.Digest, raw map[string]string) []string {
	seen := map[string]bool{}
	var out []string
	for k := range digests {
		seen[k] = true
		out = append(out, k)
	}
	for k := range raw {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Package simplex is a from-scratch dense linear-programming solver used
// to compute the paper's globally optimal bandwidth routing (§5.2), which
// minimizes the maximum increase in link load while allowing flows to be
// fractionally divided among interconnections.
//
// The solver minimizes c·x subject to Aub·x <= bub, Aeq·x = beq, x >= 0,
// using the two-phase primal simplex method on a dense tableau. Pivoting
// uses Dantzig's rule (most negative reduced cost) and falls back to
// Bland's anti-cycling rule if the objective stalls, so termination is
// guaranteed. When the problem has only <= rows with non-negative
// right-hand sides, phase one is skipped entirely — the optimal-routing
// LP is formulated that way (see internal/optimal) to keep it fast.
package simplex

import (
	"fmt"
	"math"
)

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Solution is the result of Solve. X and Objective are meaningful only
// when Status == Optimal.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// Problem is an LP in the form: minimize C·x subject to
// AUb·x <= BUb, AEq·x = BEq, x >= 0.
type Problem struct {
	C   []float64
	AUb [][]float64
	BUb []float64
	AEq [][]float64
	BEq []float64
}

const (
	eps         = 1e-9
	stallWindow = 64 // pivots without improvement before switching to Bland's rule
)

// Validate checks the problem dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("simplex: empty objective")
	}
	if len(p.AUb) != len(p.BUb) {
		return fmt.Errorf("simplex: %d inequality rows but %d bounds", len(p.AUb), len(p.BUb))
	}
	if len(p.AEq) != len(p.BEq) {
		return fmt.Errorf("simplex: %d equality rows but %d bounds", len(p.AEq), len(p.BEq))
	}
	for i, row := range p.AUb {
		if len(row) != n {
			return fmt.Errorf("simplex: inequality row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	for i, row := range p.AEq {
		if len(row) != n {
			return fmt.Errorf("simplex: equality row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau is the dense simplex tableau. Rows 0..m-1 are constraints with
// the right-hand side in the last column; basis[i] is the column basic in
// row i.
type tableau struct {
	a     [][]float64 // m x (cols+1)
	basis []int
	m     int
	cols  int // number of structural+slack+artificial columns (excludes RHS)
}

// Solve runs the two-phase simplex method.
func Solve(p Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	mUb, mEq := len(p.AUb), len(p.AEq)
	m := mUb + mEq

	if m == 0 {
		// No constraints: optimum is 0 if c >= 0, else unbounded.
		for _, ci := range p.C {
			if ci < -eps {
				return &Solution{Status: Unbounded}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, n)}, nil
	}

	// Column layout: [0,n) structural, [n, n+mUb) slacks,
	// [n+mUb, n+mUb+numArt) artificials.
	numArt := 0
	needsArt := make([]bool, m)
	for i := 0; i < mUb; i++ {
		if p.BUb[i] < 0 {
			needsArt[i] = true
			numArt++
		}
	}
	for i := 0; i < mEq; i++ {
		needsArt[mUb+i] = true
		numArt++
	}
	cols := n + mUb + numArt
	t := &tableau{m: m, cols: cols, basis: make([]int, m)}
	t.a = make([][]float64, m)
	artCol := n + mUb
	for i := 0; i < m; i++ {
		row := make([]float64, cols+1)
		var src []float64
		var b float64
		if i < mUb {
			src, b = p.AUb[i], p.BUb[i]
		} else {
			src, b = p.AEq[i-mUb], p.BEq[i-mUb]
		}
		sign := 1.0
		if b < 0 {
			sign = -1
			b = -b
		}
		for j := 0; j < n; j++ {
			row[j] = sign * src[j]
		}
		if i < mUb {
			row[n+i] = sign // slack (+1, or -1 for negated rows → surplus)
		}
		row[cols] = b
		if needsArt[i] {
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		} else {
			t.basis[i] = n + i
		}
		t.a[i] = row
	}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificials.
		obj := make([]float64, cols)
		for j := n + mUb; j < cols; j++ {
			obj[j] = 1
		}
		val, status := t.optimize(obj)
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; this indicates a bug.
			return nil, fmt.Errorf("simplex: phase 1 reported unbounded")
		}
		if val > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials(n + mUb)
	}

	// Phase 2: original objective over structural + slack columns only.
	obj := make([]float64, cols)
	copy(obj, p.C)
	forbidden := n + mUb // artificial columns may not re-enter
	val, status := t.optimizeRestricted(obj, forbidden)
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i][cols]
		}
	}
	return &Solution{Status: Optimal, X: x, Objective: val}, nil
}

// optimize minimizes obj over all columns. Returns the objective value.
func (t *tableau) optimize(obj []float64) (float64, Status) {
	return t.optimizeRestricted(obj, t.cols)
}

// optimizeRestricted minimizes obj using only columns < limit as entering
// candidates.
func (t *tableau) optimizeRestricted(obj []float64, limit int) (float64, Status) {
	// Reduced costs: start from obj, then price out the current basis.
	red := make([]float64, t.cols+1)
	copy(red, obj)
	for i, b := range t.basis {
		cb := obj[b]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			red[j] -= cb * t.a[i][j]
		}
	}

	bland := false
	stall := 0
	lastObj := math.Inf(1)
	maxIter := 50 * (t.m + t.cols + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < limit; j++ {
				if red[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < limit; j++ {
				if red[j] < best {
					best = red[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return -red[t.cols], Optimal
		}
		// Leaving row: minimum ratio test, ties to smallest basis index
		// (harmless normally, required under Bland's rule).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > eps {
				r := t.a[i][t.cols] / aij
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, Unbounded
		}
		t.pivot(leave, enter, red)

		// Stall detection → Bland's rule for guaranteed termination.
		cur := -red[t.cols]
		if cur < lastObj-eps {
			lastObj = cur
			stall = 0
		} else {
			stall++
			if stall > stallWindow {
				bland = true
			}
		}
	}
	// Iteration limit under Bland's rule should be unreachable; treat as
	// optimal-so-far to avoid wedging callers.
	return -red[t.cols], Optimal
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the
// reduced-cost row.
func (t *tableau) pivot(row, col int, red []float64) {
	piv := t.a[row][col]
	inv := 1 / piv
	ar := t.a[row]
	for j := 0; j <= t.cols; j++ {
		ar[j] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j <= t.cols; j++ {
			ai[j] -= f * ar[j]
		}
	}
	if f := red[col]; f != 0 {
		for j := 0; j <= t.cols; j++ {
			red[j] -= f * ar[j]
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables (value ~0 after a
// successful phase 1) out of the basis where a non-artificial pivot
// column exists; rows that cannot pivot are redundant and are zeroed.
func (t *tableau) driveOutArtificials(firstArt int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < firstArt {
			continue
		}
		pivCol := -1
		for j := 0; j < firstArt; j++ {
			if math.Abs(t.a[i][j]) > eps {
				pivCol = j
				break
			}
		}
		if pivCol == -1 {
			// Redundant row: keep it inert.
			for j := 0; j <= t.cols; j++ {
				if j != t.basis[i] {
					t.a[i][j] = 0
				}
			}
			continue
		}
		dummy := make([]float64, t.cols+1)
		t.pivot(i, pivCol, dummy)
	}
}

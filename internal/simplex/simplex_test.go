package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestSimple2D(t *testing.T) {
	// max x+y s.t. x<=2, y<=3  → min -(x+y), optimum -5 at (2,3).
	s := solveOK(t, Problem{
		C:   []float64{-1, -1},
		AUb: [][]float64{{1, 0}, {0, 1}},
		BUb: []float64{2, 3},
	})
	if math.Abs(s.Objective+5) > 1e-6 {
		t.Errorf("objective = %v, want -5", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-3) > 1e-6 {
		t.Errorf("x = %v, want [2 3]", s.X)
	}
}

func TestClassicLP(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 → optimum 36 at (2,6).
	s := solveOK(t, Problem{
		C:   []float64{-3, -5},
		AUb: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		BUb: []float64{4, 12, 18},
	})
	if math.Abs(s.Objective+36) > 1e-6 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-6 || math.Abs(s.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want [2 6]", s.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x+2y s.t. x+y=10, x<=4 → x=4, y=6, obj 16.
	s := solveOK(t, Problem{
		C:   []float64{1, 2},
		AUb: [][]float64{{1, 0}},
		BUb: []float64{4},
		AEq: [][]float64{{1, 1}},
		BEq: []float64{10},
	})
	if math.Abs(s.Objective-16) > 1e-6 {
		t.Errorf("objective = %v, want 16", s.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5) → x=5.
	s := solveOK(t, Problem{
		C:   []float64{1},
		AUb: [][]float64{{-1}},
		BUb: []float64{-5},
	})
	if math.Abs(s.Objective-5) > 1e-6 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 3.
	s, err := Solve(Problem{
		C:   []float64{1},
		AUb: [][]float64{{1}, {-1}},
		BUb: []float64{1, -3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with x >= 0 and no upper bound.
	s, err := Solve(Problem{
		C:   []float64{-1, 0},
		AUb: [][]float64{{0, 1}},
		BUb: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	s, err := Solve(Problem{C: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Objective != 0 {
		t.Errorf("got %+v, want optimal at 0", s)
	}
	s, err = Solve(Problem{C: []float64{-1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate LP that cycles under naive Dantzig pivoting
	// (Beale's example).
	s := solveOK(t, Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		AUb: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		BUb: []float64{0, 0, 1},
	})
	if math.Abs(s.Objective+0.05) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestValidation(t *testing.T) {
	cases := []Problem{
		{},                                       // empty objective
		{C: []float64{1}, AUb: [][]float64{{1}}}, // missing bound
		{C: []float64{1}, AUb: [][]float64{{1, 2}}, BUb: []float64{1}}, // bad row width
		{C: []float64{1}, AEq: [][]float64{{1, 2}}, BEq: []float64{1}}, // bad eq width
		{C: []float64{1}, AEq: [][]float64{{1}}},                       // missing eq bound
	}
	for i, p := range cases {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: Solve accepted invalid problem", i)
		}
	}
}

// bruteForceLP exhaustively checks all basic solutions of small dense
// problems (vertex enumeration) — an independent oracle.
func bruteForceLP(c []float64, aub [][]float64, bub []float64) (float64, bool) {
	n := len(c)
	m := len(aub)
	// Enumerate subsets of active constraints of size n among
	// {constraint rows} ∪ {x_j = 0}, solve the linear system, and keep
	// feasible points.
	rows := make([][]float64, 0, m+n)
	rhs := make([]float64, 0, m+n)
	for i := 0; i < m; i++ {
		rows = append(rows, aub[i])
		rhs = append(rhs, bub[i])
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		rows = append(rows, e)
		rhs = append(rhs, 0)
	}
	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(rows, rhs, idx)
			if !ok {
				return
			}
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for i := 0; i < m; i++ {
				var dot float64
				for j := 0; j < n; j++ {
					dot += aub[i][j] * x[j]
				}
				if dot > bub[i]+1e-7 {
					return
				}
			}
			var obj float64
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func solveSquare(rows [][]float64, rhs []float64, idx []int) ([]float64, bool) {
	n := len(idx)
	a := make([][]float64, n)
	b := make([]float64, n)
	for i, r := range idx {
		a[i] = append([]float64(nil), rows[r]...)
		b[i] = rhs[r]
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv == -1 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for j := col; j < n; j++ {
			a[col][j] *= inv
		}
		b[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	return b, true
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3) // 2..4 variables
		m := 2 + rng.Intn(4) // 2..5 constraints
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		aub := make([][]float64, m)
		bub := make([]float64, m)
		for i := range aub {
			aub[i] = make([]float64, n)
			for j := range aub[i] {
				aub[i][j] = rng.Float64()*4 - 1
			}
			bub[i] = rng.Float64() * 5
		}
		// Add a box constraint so the problem is always bounded.
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		aub = append(aub, box)
		bub = append(bub, 10)

		want, found := bruteForceLP(c, aub, bub)
		if !found {
			continue
		}
		s, err := Solve(Problem{C: c, AUb: aub, BUb: bub})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v, brute force found optimum %v", trial, s.Status, want)
		}
		if math.Abs(s.Objective-want) > 1e-5 {
			t.Errorf("trial %d: objective = %v, brute force = %v", trial, s.Objective, want)
		}
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64()*2 - 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64()*2 - 0.5
			}
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, rng.Float64()*4)
		}
		box := make([]float64, n)
		for j := range box {
			box[j] = 1
		}
		p.AUb = append(p.AUb, box)
		p.BUb = append(p.BUb, 20)

		s, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue
		}
		for j, xj := range s.X {
			if xj < -1e-7 {
				t.Errorf("trial %d: x[%d] = %v negative", trial, j, xj)
			}
		}
		for i, row := range p.AUb {
			var dot float64
			for j := range row {
				dot += row[j] * s.X[j]
			}
			if dot > p.BUb[i]+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %v > %v", trial, i, dot, p.BUb[i])
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status names wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should stringify")
	}
}

// Package geo provides geographic primitives used throughout the Nexit
// simulator: points on the Earth's surface, great-circle distances, and
// simple bounding-box queries.
//
// The paper estimates intra-ISP link lengths from the geographic distance
// between PoP city coordinates (Padmanabhan & Subramanian, SIGCOMM 2001),
// so distance computations here underpin both the topology generator and
// the distance metric of Section 5.1.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean radius of the Earth in kilometers.
const EarthRadiusKm = 6371.0

// Point is a location on the Earth's surface in decimal degrees.
// Latitude is positive north, longitude positive east.
type Point struct {
	Lat float64
	Lon float64
}

// Valid reports whether p lies within the legal latitude/longitude ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the point as "lat,lon" with four decimal places.
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// radians converts degrees to radians.
func radians(deg float64) float64 { return deg * math.Pi / 180 }

// DistanceKm returns the great-circle distance between a and b in
// kilometers, computed with the haversine formula. The result is
// symmetric and non-negative, and zero iff the points coincide.
func DistanceKm(a, b Point) float64 {
	if a == b {
		return 0
	}
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Midpoint returns the geographic midpoint of a and b along the great
// circle connecting them.
func Midpoint(a, b Point) Point {
	lat1, lon1 := radians(a.Lat), radians(a.Lon)
	lat2, lon2 := radians(b.Lat), radians(b.Lon)
	dLon := lon2 - lon1
	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	return Point{Lat: lat3 * 180 / math.Pi, Lon: normalizeLon(lon3 * 180 / math.Pi)}
}

// normalizeLon wraps a longitude into [-180, 180].
func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Box is an axis-aligned bounding box in latitude/longitude space.
// It does not handle antimeridian wrap; the embedded city table avoids
// boxes that cross it.
type Box struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Contains reports whether p lies inside (or on the border of) the box.
func (b Box) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Expand grows the box to include p and returns the result.
func (b Box) Expand(p Point) Box {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// BoundingBox returns the smallest Box containing all points.
// It panics if points is empty.
func BoundingBox(points []Point) Box {
	if len(points) == 0 {
		panic("geo: BoundingBox of empty point set")
	}
	b := Box{
		MinLat: points[0].Lat, MaxLat: points[0].Lat,
		MinLon: points[0].Lon, MaxLon: points[0].Lon,
	}
	for _, p := range points[1:] {
		b = b.Expand(p)
	}
	return b
}

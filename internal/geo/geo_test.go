package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Reference distances computed with the haversine formula on a
	// sphere of radius 6371 km; tolerance 1% covers rounding of the
	// city coordinates.
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
	}{
		{"seattle-newyork", Point{47.61, -122.33}, Point{40.71, -74.01}, 3870},
		{"london-paris", Point{51.51, -0.13}, Point{48.86, 2.35}, 343},
		{"sydney-perth", Point{-33.87, 151.21}, Point{-31.95, 115.86}, 3290},
		{"equator-quarter", Point{0, 0}, Point{0, 90}, 2 * math.Pi * EarthRadiusKm / 4},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm)/c.wantKm > 0.01 {
			t.Errorf("%s: DistanceKm = %.1f, want ~%.1f", c.name, got, c.wantKm)
		}
	}
}

func TestDistanceZero(t *testing.T) {
	p := Point{12.34, 56.78}
	if d := DistanceKm(p, p); d != 0 {
		t.Errorf("DistanceKm(p,p) = %v, want 0", d)
	}
}

// clampPoint maps arbitrary float64s into valid coordinates so quick can
// explore the whole space without generating invalid points.
func clampPoint(p Point) Point {
	lat := math.Mod(p.Lat, 90)
	lon := math.Mod(p.Lon, 180)
	if math.IsNaN(lat) || math.IsInf(lat, 0) {
		lat = 0
	}
	if math.IsNaN(lon) || math.IsInf(lon, 0) {
		lon = 0
	}
	return Point{lat, lon}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndBounded(t *testing.T) {
	half := math.Pi * EarthRadiusKm // max great-circle distance
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		d := DistanceKm(a, b)
		return d >= 0 && d <= half+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c Point) bool {
		a, b, c = clampPoint(a), clampPoint(b), clampPoint(c)
		// Great-circle distance is a metric on the sphere.
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpointBetween(t *testing.T) {
	a := Point{47.61, -122.33}
	b := Point{40.71, -74.01}
	m := Midpoint(a, b)
	da, db := DistanceKm(a, m), DistanceKm(b, m)
	if math.Abs(da-db) > 1 {
		t.Errorf("midpoint not equidistant: %f vs %f", da, db)
	}
	full := DistanceKm(a, b)
	if math.Abs(da+db-full) > 1 {
		t.Errorf("midpoint off the great circle: %f + %f != %f", da, db, full)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, {47.6, -122.3}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-90.5, 0}, {0, -180.01}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{1, 2}, {-3, 7}, {5, -8}}
	b := BoundingBox(pts)
	want := Box{MinLat: -3, MaxLat: 5, MinLon: -8, MaxLon: 7}
	if b != want {
		t.Errorf("BoundingBox = %+v, want %+v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Point{6, 0}) {
		t.Error("box should not contain (6,0)")
	}
}

func TestBoundingBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty point set")
		}
	}()
	BoundingBox(nil)
}

func TestBoxExpandContains(t *testing.T) {
	f := func(a, b Point) bool {
		a, b = clampPoint(a), clampPoint(b)
		box := BoundingBox([]Point{a}).Expand(b)
		return box.Contains(a) && box.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, 180}, {-180, -180}, {190, -170}, {-190, 170}, {360, 0}, {540, 180},
	}
	for _, c := range cases {
		if got := normalizeLon(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("normalizeLon(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers Decode with arbitrary bytes. The contract
// under fuzzing is exactly the recovery contract: Decode never panics,
// and it never loads garbage silently — when it does accept input, the
// decoded state is well-formed (re-encodable) and the input was the
// canonical encoding of that state, byte for byte. Any truncation, bit
// flip, lying length, or checksum corruption therefore surfaces as an
// error the store's fallback ladder can act on.
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := Encode(testStateForFuzz())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("NXSNAP"))
	f.Add(valid[:len(valid)/2])                        // truncated
	f.Add(append(valid[:len(valid):len(valid)], 0xFF)) // trailing junk
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped) // checksum-corrupted
	lying := append([]byte(nil), valid...)
	lying[8] = 0xFF // payload length field
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data) // must not panic, whatever the input
		if err != nil {
			return
		}
		re, err := Encode(st)
		if err != nil {
			t.Fatalf("Decode accepted a state Encode rejects: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("Decode accepted non-canonical bytes: re-encoding %d bytes gave %d different bytes",
				len(data), len(re))
		}
	})
}

// testStateForFuzz seeds the corpus with a state exercising every field
// group; kept separate from testState so golden-format updates never
// silently reshape the fuzz corpus.
func testStateForFuzz() *State {
	return &State{
		Metric: "bandwidth",
		Epoch:  17,
		Registry: Registry{
			SizeThreshold: 0.5,
			StableTicks:   1,
			IdleTimeout:   3,
			Nonce:         9,
			Flows: []Flow{
				{SrcAddr: 0x0A000000, SrcBits: 16, DstAddr: 0x0B010000, DstBits: 16, Ingress: 1, Size: 2.5, LastSeen: 16, AboveSince: 12, EverStable: true, Negotiable: true, AnnouncedAt: 13},
				{SrcAddr: 0x0A010000, SrcBits: 16, DstAddr: 0x0B000000, DstBits: 16, Ingress: 2, Size: 0.25, LastSeen: 17, AboveSince: -1},
			},
		},
		Ledger: Ledger{
			Balance:   -3,
			MaxCredit: 20,
			History:   []LedgerEntry{{Session: 0, GainA: 4, GainB: 7, BalanceAfter: -3}},
		},
		Applied: []Assignment{{Dir: 0, Src: 1, Dst: 2, Alt: 1}, {Dir: 1, Src: 0, Dst: 3, Alt: 2}},
	}
}

// Package snapshot persists continuous.Controller epoch state so a
// restarted negotiation daemon recovers in O(epochs-since-snapshot)
// instead of replaying its whole lifetime from epoch 0 (ROADMAP:
// "Durable epoch state"). A snapshot captures the controller's complete
// mutable state — flow registry, credit ledger, applied assignments,
// nonce counter, epoch index — as a versioned, checksummed byte format,
// and a Store writes snapshots atomically (temp file + rename) with a
// bounded retention ladder.
//
// The determinism contract (DESIGN.md §11): restoring a snapshot and
// replaying the tail epochs must be byte-identical to a full replay
// from epoch 0. Epochs are deterministic in (system, metric, seed), so
// the contract holds exactly when the snapshot captures *all* mutable
// state; the parity tests in internal/continuous pin it per metric and
// per snapshot interval.
//
// Format v1 is canonical: one state encodes to exactly one byte string
// (maps are serialized in sorted key order, integers little-endian,
// floats as IEEE-754 bits), and Decode accepts only canonical input —
// a successful Decode re-encodes to the identical bytes. The header is
//
//	magic "NXSNAP" | version uint16 | payload length uint32 | payload | crc32 (IEEE, all preceding bytes)
//
// The compat rule is append-only, like the wire Hello's (DESIGN.md §7):
// a future version only ever appends payload fields and bumps the
// version, and a v1 reader rejects any other version by name — it never
// misparses trailing fields it does not know about. Corruption —
// truncation, bit flips, lying lengths, checksum damage — is detected
// and rejected; a corrupt snapshot is skipped in favor of an older one
// or, when none is usable, full epoch-0 replay (the fallback ladder,
// Store.LoadLatest).
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Format constants.
const (
	// Version is the snapshot format version this package writes. The
	// append-only compat rule: future versions only append payload
	// fields; readers reject every version they do not implement.
	Version = 1
	// MaxSnapshotSize bounds the payload a reader will buffer; a header
	// advertising more is corrupt or hostile, not a real snapshot.
	MaxSnapshotSize = 64 << 20
)

// magic identifies a snapshot file.
var magic = [6]byte{'N', 'X', 'S', 'N', 'A', 'P'}

// headerSize is magic + version + payload length.
const headerSize = len(magic) + 2 + 4

// ErrCorrupt labels every integrity failure — truncation, bad magic,
// checksum mismatch, lying lengths, non-canonical ordering. Callers use
// it to distinguish damage (fall back to an older snapshot) from I/O
// errors.
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrVersion labels a structurally sound snapshot written by a format
// version this reader does not implement. Unlike ErrCorrupt the bytes
// are fine — they are just from the future (or a misconfigured past) —
// but the fallback is the same: skip it, use an older snapshot or
// replay from epoch 0.
var ErrVersion = errors.New("snapshot: unsupported version")

// State is a controller's complete mutable epoch state, flattened to
// pure data. Everything a continuous.Controller accumulates across
// epochs is here; everything derived from (system, metric) alone —
// routing tables, capacities, evaluators — is deliberately absent and
// rebuilt on restore.
type State struct {
	// Metric names the negotiation objective the state was captured
	// under. Restoring onto a controller configured for a different
	// metric is rejected: the states are incomparable.
	Metric string
	// Epoch is the number of epochs processed (the index the next
	// Epoch call reports).
	Epoch uint64
	// Registry is the flow-stability registry.
	Registry Registry
	// Ledger is the credit ledger.
	Ledger Ledger
	// Applied lists the installed interconnection per flow key, in
	// canonical (Dir, Src, Dst) order.
	Applied []Assignment
}

// Registry is the persisted flowid.Registry: policy knobs, nonce
// counter, and every tracked flow in canonical signature order.
type Registry struct {
	SizeThreshold float64
	StableTicks   int64
	IdleTimeout   int64
	Nonce         uint64
	Flows         []Flow
}

// Flow is one tracked flow's full lifecycle state.
type Flow struct {
	SrcAddr     uint32
	SrcBits     uint8
	DstAddr     uint32
	DstBits     uint8
	Ingress     uint64
	Size        float64
	LastSeen    int64
	AboveSince  int64
	EverStable  bool
	Negotiable  bool
	AnnouncedAt int64
}

// Ledger is the persisted credits.Ledger.
type Ledger struct {
	Balance   int64
	MaxCredit int64
	History   []LedgerEntry
}

// LedgerEntry is one settled session.
type LedgerEntry struct {
	Session      int64
	GainA, GainB int64
	BalanceAfter int64
}

// Assignment is one applied flow-to-interconnection choice.
type Assignment struct {
	Dir      uint8 // 0 = A->B, 1 = B->A
	Src, Dst int64
	Alt      int64
}

// flowLess orders flows by full signature.
func flowLess(a, b Flow) bool {
	if a.SrcAddr != b.SrcAddr {
		return a.SrcAddr < b.SrcAddr
	}
	if a.SrcBits != b.SrcBits {
		return a.SrcBits < b.SrcBits
	}
	if a.DstAddr != b.DstAddr {
		return a.DstAddr < b.DstAddr
	}
	if a.DstBits != b.DstBits {
		return a.DstBits < b.DstBits
	}
	return a.Ingress < b.Ingress
}

// assignLess orders assignments by (Dir, Src, Dst).
func assignLess(a, b Assignment) bool {
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// Per-record encoded sizes, used both by the encoder and by the
// decoder's lying-length guard (a claimed count must fit the bytes
// actually present before anything is allocated).
const (
	flowSize   = 4 + 1 + 4 + 1 + 8 + 8 + 8 + 8 + 1 + 1 + 8
	ledgerSize = 4 * 8
	assignSize = 1 + 8 + 8 + 8
)

// Encode serializes the state as canonical format-v1 bytes: the same
// state always yields the same byte string (the golden-file tests pin
// it), and Decode(Encode(st)) round-trips exactly. Encode validates the
// canonical ordering invariants instead of sorting silently — a caller
// handing over out-of-order state has a bug worth surfacing.
func Encode(st *State) ([]byte, error) {
	for i := 1; i < len(st.Registry.Flows); i++ {
		if !flowLess(st.Registry.Flows[i-1], st.Registry.Flows[i]) {
			return nil, fmt.Errorf("snapshot: flows not in canonical signature order at index %d", i)
		}
	}
	for i := 1; i < len(st.Applied); i++ {
		if !assignLess(st.Applied[i-1], st.Applied[i]) {
			return nil, fmt.Errorf("snapshot: applied assignments not in canonical key order at index %d", i)
		}
	}
	for i := 1; i < len(st.Ledger.History); i++ {
		if st.Ledger.History[i].Session < st.Ledger.History[i-1].Session {
			return nil, fmt.Errorf("snapshot: ledger history sessions decrease at index %d", i)
		}
	}
	if len(st.Metric) > math.MaxUint16 {
		return nil, fmt.Errorf("snapshot: metric name %d bytes long", len(st.Metric))
	}

	payload := make([]byte, 0, 64+len(st.Metric)+
		len(st.Registry.Flows)*flowSize+
		len(st.Ledger.History)*ledgerSize+
		len(st.Applied)*assignSize)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(st.Metric)))
	payload = append(payload, st.Metric...)
	payload = binary.LittleEndian.AppendUint64(payload, st.Epoch)

	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(st.Registry.SizeThreshold))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(st.Registry.StableTicks))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(st.Registry.IdleTimeout))
	payload = binary.LittleEndian.AppendUint64(payload, st.Registry.Nonce)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(st.Registry.Flows)))
	for _, f := range st.Registry.Flows {
		payload = binary.LittleEndian.AppendUint32(payload, f.SrcAddr)
		payload = append(payload, f.SrcBits)
		payload = binary.LittleEndian.AppendUint32(payload, f.DstAddr)
		payload = append(payload, f.DstBits)
		payload = binary.LittleEndian.AppendUint64(payload, f.Ingress)
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(f.Size))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(f.LastSeen))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(f.AboveSince))
		payload = append(payload, encodeBool(f.EverStable), encodeBool(f.Negotiable))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(f.AnnouncedAt))
	}

	payload = binary.LittleEndian.AppendUint64(payload, uint64(st.Ledger.Balance))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(st.Ledger.MaxCredit))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(st.Ledger.History)))
	for _, e := range st.Ledger.History {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.Session))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.GainA))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.GainB))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(e.BalanceAfter))
	}

	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(st.Applied)))
	for _, a := range st.Applied {
		payload = append(payload, a.Dir)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(a.Src))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(a.Dst))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(a.Alt))
	}

	if len(payload) > MaxSnapshotSize {
		return nil, fmt.Errorf("snapshot: payload %d bytes exceeds MaxSnapshotSize", len(payload))
	}
	out := make([]byte, 0, headerSize+len(payload)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

func encodeBool(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// decoder is a bounds-checked cursor over the payload.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.err = fmt.Errorf("%w: payload truncated at offset %d (need %d bytes)", ErrCorrupt, d.off, n)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) boolByte(field string) bool {
	b := d.u8()
	if d.err == nil && b > 1 {
		d.err = fmt.Errorf("%w: %s byte %d is not a bool", ErrCorrupt, field, b)
	}
	return b == 1
}

// count reads a record count and verifies the claimed records fit the
// remaining payload — the lying-length guard: nothing is allocated on
// the say-so of a corrupt header.
func (d *decoder) count(recordSize int, what string) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(recordSize) > int64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("%w: %s count %d exceeds remaining payload", ErrCorrupt, what, n)
		return 0
	}
	return int(n)
}

// Decode parses format-v1 bytes back into a State. It is strict: bad
// magic, a version this reader does not implement, a length that
// disagrees with the data, a checksum mismatch, out-of-range field
// values, non-canonical ordering, or trailing bytes are all rejected —
// corrupt input never loads silently and never panics (the fuzz test's
// contract). On success, Encode(state) reproduces the input bytes
// exactly.
func Decode(data []byte) (*State, error) {
	if len(data) < headerSize+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any snapshot", ErrCorrupt, len(data))
	}
	if [6]byte(data[:6]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:6])
	}
	version := binary.LittleEndian.Uint16(data[6:])
	if version != Version {
		// The append-only rule makes this reject, not misparse: a v2
		// snapshot is a v1 payload plus trailing fields, and trusting the
		// v1 prefix would silently drop state. Reject by name instead.
		return nil, fmt.Errorf("%w %d (this reader implements %d)", ErrVersion, version, Version)
	}
	plen := binary.LittleEndian.Uint32(data[8:])
	if plen > MaxSnapshotSize {
		return nil, fmt.Errorf("%w: payload length %d exceeds MaxSnapshotSize", ErrCorrupt, plen)
	}
	if int(plen) != len(data)-headerSize-4 {
		return nil, fmt.Errorf("%w: payload length %d disagrees with %d data bytes", ErrCorrupt, plen, len(data)-headerSize-4)
	}
	body := data[:headerSize+int(plen)]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum %08x, computed %08x", ErrCorrupt, sum, got)
	}

	d := &decoder{buf: body[headerSize:]}
	st := &State{}
	mlen := int(d.u16())
	if d.need(mlen) {
		st.Metric = string(d.buf[d.off : d.off+mlen])
		d.off += mlen
	}
	st.Epoch = d.u64()
	if d.err == nil && st.Epoch > math.MaxInt64/2 {
		d.err = fmt.Errorf("%w: epoch %d out of range", ErrCorrupt, st.Epoch)
	}

	st.Registry.SizeThreshold = d.f64()
	st.Registry.StableTicks = d.i64()
	st.Registry.IdleTimeout = d.i64()
	st.Registry.Nonce = d.u64()
	if n := d.count(flowSize, "flow"); d.err == nil && n > 0 {
		st.Registry.Flows = make([]Flow, n)
		for i := range st.Registry.Flows {
			f := &st.Registry.Flows[i]
			f.SrcAddr = d.u32()
			f.SrcBits = d.u8()
			f.DstAddr = d.u32()
			f.DstBits = d.u8()
			f.Ingress = d.u64()
			f.Size = d.f64()
			f.LastSeen = d.i64()
			f.AboveSince = d.i64()
			f.EverStable = d.boolByte("flow everStable")
			f.Negotiable = d.boolByte("flow negotiable")
			f.AnnouncedAt = d.i64()
			if d.err == nil && (f.SrcBits > 32 || f.DstBits > 32) {
				d.err = fmt.Errorf("%w: flow %d has prefix bits beyond 32", ErrCorrupt, i)
			}
			if d.err == nil && i > 0 && !flowLess(st.Registry.Flows[i-1], *f) {
				d.err = fmt.Errorf("%w: flows out of canonical order at index %d", ErrCorrupt, i)
			}
			if d.err != nil {
				return nil, d.err
			}
		}
	}

	st.Ledger.Balance = d.i64()
	st.Ledger.MaxCredit = d.i64()
	if n := d.count(ledgerSize, "ledger entry"); d.err == nil && n > 0 {
		st.Ledger.History = make([]LedgerEntry, n)
		for i := range st.Ledger.History {
			e := &st.Ledger.History[i]
			e.Session = d.i64()
			e.GainA = d.i64()
			e.GainB = d.i64()
			e.BalanceAfter = d.i64()
			if d.err == nil && i > 0 && e.Session < st.Ledger.History[i-1].Session {
				d.err = fmt.Errorf("%w: ledger history sessions decrease at index %d", ErrCorrupt, i)
			}
			if d.err != nil {
				return nil, d.err
			}
		}
	}

	if n := d.count(assignSize, "assignment"); d.err == nil && n > 0 {
		st.Applied = make([]Assignment, n)
		for i := range st.Applied {
			a := &st.Applied[i]
			a.Dir = d.u8()
			a.Src = d.i64()
			a.Dst = d.i64()
			a.Alt = d.i64()
			if d.err == nil && a.Dir > 1 {
				d.err = fmt.Errorf("%w: assignment %d direction %d", ErrCorrupt, i, a.Dir)
			}
			if d.err == nil && i > 0 && !assignLess(st.Applied[i-1], *a) {
				d.err = fmt.Errorf("%w: assignments out of canonical order at index %d", ErrCorrupt, i)
			}
			if d.err != nil {
				return nil, d.err
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return st, nil
}

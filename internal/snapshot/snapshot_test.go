package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot file")

// testState builds a representative state from a fixed seed: varied
// flows, ledger history, and applied assignments, in canonical order.
// The same seed always yields the same state, so its encoding pins the
// v1 format byte for byte.
func testState(seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	st := &State{
		Metric: "distance",
		Epoch:  uint64(rng.Intn(1000)),
		Registry: Registry{
			SizeThreshold: 0.5,
			StableTicks:   1,
			IdleTimeout:   3,
			Nonce:         uint64(rng.Intn(100)),
		},
		Ledger: Ledger{Balance: int64(rng.Intn(41) - 20), MaxCredit: 20},
	}
	for i := 0; i < 5; i++ {
		st.Registry.Flows = append(st.Registry.Flows, Flow{
			SrcAddr:     rng.Uint32() &^ 0xFFFF,
			SrcBits:     16,
			DstAddr:     0x80000000 | (rng.Uint32() & 0x7FFF0000),
			DstBits:     16,
			Ingress:     rng.Uint64(),
			Size:        rng.Float64() * 10,
			LastSeen:    int64(rng.Intn(20)),
			AboveSince:  int64(rng.Intn(20) - 1),
			EverStable:  rng.Intn(2) == 1,
			Negotiable:  rng.Intn(2) == 1,
			AnnouncedAt: int64(rng.Intn(20)),
		})
	}
	sort.Slice(st.Registry.Flows, func(i, j int) bool {
		return flowLess(st.Registry.Flows[i], st.Registry.Flows[j])
	})
	balance := int64(0)
	for i := 0; i < 3; i++ {
		ga, gb := int64(rng.Intn(30)), int64(rng.Intn(30))
		balance += ga - gb
		st.Ledger.History = append(st.Ledger.History, LedgerEntry{
			Session: int64(i), GainA: ga, GainB: gb, BalanceAfter: balance,
		})
	}
	for i := 0; i < 4; i++ {
		st.Applied = append(st.Applied, Assignment{
			Dir: uint8(i % 2), Src: int64(i * 3), Dst: int64(rng.Intn(8)), Alt: int64(rng.Intn(4)),
		})
	}
	sort.Slice(st.Applied, func(i, j int) bool { return assignLess(st.Applied[i], st.Applied[j]) })
	return st
}

func mustEncode(t *testing.T, st *State) []byte {
	t.Helper()
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, st := range []*State{testState(42), {Metric: "bandwidth", Epoch: 7, Ledger: Ledger{MaxCredit: 20}}} {
		data := mustEncode(t, st)
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Errorf("round trip diverged:\n got  %+v\n want %+v", got, st)
		}
		re := mustEncode(t, got)
		if !bytes.Equal(re, data) {
			t.Error("re-encoding a decoded state changed the bytes; the format is not canonical")
		}
	}
}

// TestGoldenV1 pins snapshot format v1 byte for byte: the fixed-seed
// state must encode to exactly the committed golden bytes. If this test
// fails, the format changed — that requires a version bump and a new
// golden file (go test -run TestGoldenV1 -update), never a silent
// rewrite of v1.
func TestGoldenV1(t *testing.T) {
	data := mustEncode(t, testState(42))
	golden := filepath.Join("testdata", "v1.snap.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("format v1 encoding changed: got %d bytes, golden has %d; a format change needs a version bump",
			len(data), len(want))
	}
	if st, err := Decode(want); err != nil {
		t.Fatalf("golden bytes no longer decode: %v", err)
	} else if !reflect.DeepEqual(st, testState(42)) {
		t.Fatal("golden bytes decode to a different state")
	}
}

// reseal recomputes the trailing checksum after a deliberate header or
// payload edit, so tests exercise the check the edit targets instead of
// tripping the checksum first.
func reseal(data []byte) []byte {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
	return data
}

// TestVersionCompatReject is the append-only compat rule: a v2 snapshot
// — same v1 payload plus trailing fields, bumped version, valid
// checksum — must be cleanly rejected by name by a v1 reader, never
// misparsed by trusting the v1 prefix.
func TestVersionCompatReject(t *testing.T) {
	data := mustEncode(t, testState(42))
	// Forge a well-formed v2: append trailing payload fields, bump the
	// version and length, reseal the checksum.
	v2 := append(append([]byte(nil), data[:len(data)-4]...), 0xAA, 0xBB, 0xCC, 0xDD)
	binary.LittleEndian.PutUint16(v2[6:], 2)
	binary.LittleEndian.PutUint32(v2[8:], uint32(len(v2)-headerSize))
	v2 = reseal(append(v2, 0, 0, 0, 0))
	st, err := Decode(v2)
	if err == nil {
		t.Fatalf("v1 reader parsed a v2 snapshot silently: %+v", st)
	}
	if !errors.Is(err, ErrVersion) {
		t.Errorf("v2 snapshot rejected as %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("a well-formed future version is not corruption")
	}
}

// TestDecodeRejectsCorruption drives the named corruption classes
// through Decode: every one must error, none may load silently.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := mustEncode(t, testState(42))
	cases := map[string][]byte{
		"empty":        {},
		"short":        data[:headerSize],
		"truncated":    data[:len(data)-5],
		"bad magic":    reseal(append([]byte("XXSNAP"), data[6:]...)),
		"checksum":     append(data[:len(data)-1], data[len(data)-1]^0xFF),
		"extra bytes":  append(append([]byte(nil), data...), 0),
		"lying length": func() []byte { d := append([]byte(nil), data...); d[8] ^= 0xFF; return reseal(d) }(),
	}
	// A bit flip in every payload byte: the checksum (or a strict field
	// check) must catch each one.
	for i := headerSize; i < len(data)-4; i += 7 {
		d := append([]byte(nil), data...)
		d[i] ^= 0x10
		cases["bitflip"] = d
		if st, err := Decode(d); err == nil {
			t.Fatalf("bit flip at offset %d loaded silently: %+v", i, st)
		}
	}
	for name, d := range cases {
		if st, err := Decode(d); err == nil {
			t.Errorf("%s: corrupt snapshot loaded silently: %+v", name, st)
		} else if name != "empty" && !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v is not ErrCorrupt", name, err)
		}
	}
	// A lying count inside the payload (claiming more flows than the
	// bytes hold) must fail before allocating, even with a valid
	// checksum over the lie.
	d := append([]byte(nil), data...)
	off := headerSize + 2 + len("distance") + 8 + 8 + 8 + 8 + 8 // through nonce
	binary.LittleEndian.PutUint32(d[off:], 1<<30)
	if st, err := Decode(reseal(d)); err == nil {
		t.Errorf("lying flow count loaded silently: %+v", st)
	}
}

// TestEncodeRejectsNonCanonical: Encode surfaces out-of-order state
// instead of persisting something Decode would reject.
func TestEncodeRejectsNonCanonical(t *testing.T) {
	st := testState(42)
	st.Registry.Flows[0], st.Registry.Flows[1] = st.Registry.Flows[1], st.Registry.Flows[0]
	if _, err := Encode(st); err == nil {
		t.Error("Encode accepted out-of-order flows")
	}
	st = testState(42)
	st.Applied[0], st.Applied[1] = st.Applied[1], st.Applied[0]
	if _, err := Encode(st); err == nil {
		t.Error("Encode accepted out-of-order assignments")
	}
	st = testState(42)
	st.Ledger.History[0].Session = 99
	if _, err := Encode(st); err == nil {
		t.Error("Encode accepted decreasing ledger sessions")
	}
}
